// Package structures implements concurrent data structures on top of
// the PIM-STM library, the direction the paper's §5 sketches as future
// work ("leverage the PIM-STM library in order to implement
// non-transactional concurrent data-structures such as linked list or
// hashmaps"). Every structure lives in a single DPU's memory and is
// synchronized purely by transactions, so it works unchanged with all
// seven STM algorithms and both metadata tiers.
//
// All operations take the calling tasklet's *core.Tx and must run
// inside a transaction (either the caller's enclosing Atomic block —
// the structures compose — or one started internally via the *Atomic
// convenience wrappers).
package structures

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// hashKey mixes a key into a bucket index (splitmix64 finalizer).
func hashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Map is a transactional chained hash map from uint64 keys to uint64
// values, stored in MRAM. Nodes come from a fixed pool threaded through
// per-tasklet free lists, so concurrent inserts do not contend on a
// single allocator word and aborted inserts leak nothing (the pop and
// the insert commit atomically).
type Map struct {
	buckets  dpu.Addr // nBuckets head words
	nBuckets int
	pool     dpu.Addr // capacity × 3 words: [key, value, next]
	capacity int
	free     dpu.Addr // MaxTasklets free-list head words
	sizes    dpu.Addr // MaxTasklets per-tasklet size deltas
}

// NewMap allocates a map with the given bucket count (power of two) and
// node capacity, distributing the node pool across the per-tasklet
// free lists.
func NewMap(d *dpu.DPU, buckets, capacity int) (*Map, error) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("structures: bucket count must be a power of two, got %d", buckets)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("structures: capacity must be positive")
	}
	m := &Map{nBuckets: buckets, capacity: capacity}
	var err error
	if m.buckets, err = d.AllocMRAM(buckets*8, 8); err != nil {
		return nil, err
	}
	if m.pool, err = d.AllocMRAM(capacity*24, 8); err != nil {
		return nil, err
	}
	if m.free, err = d.AllocMRAM(dpu.MaxTasklets*8, 8); err != nil {
		return nil, err
	}
	if m.sizes, err = d.AllocMRAM(dpu.MaxTasklets*8, 8); err != nil {
		return nil, err
	}
	// Thread the pool round-robin across the free lists (host side).
	for i := capacity - 1; i >= 0; i-- {
		list := m.free + dpu.Addr((i%dpu.MaxTasklets)*8)
		node := m.node(i)
		d.HostWrite64(node+16, d.HostRead64(list)) // next = old head
		d.HostWrite64(list, uint64(node))
	}
	return m, nil
}

func (m *Map) node(i int) dpu.Addr { return m.pool + dpu.Addr(i*24) }

func (m *Map) bucket(key uint64) dpu.Addr {
	return m.buckets + dpu.Addr((hashKey(key)&uint64(m.nBuckets-1))*8)
}

func (m *Map) freeList(tx *core.Tx) dpu.Addr {
	return m.free + dpu.Addr(tx.Tasklet().ID*8)
}

func (m *Map) sizeWord(tx *core.Tx) dpu.Addr {
	return m.sizes + dpu.Addr(tx.Tasklet().ID*8)
}

// allocNode pops a node from the tasklet's free list, falling back to
// stealing from the other lists; it returns NilAddr when the pool is
// exhausted.
func (m *Map) allocNode(tx *core.Tx) dpu.Addr {
	own := tx.Tasklet().ID
	for i := 0; i < dpu.MaxTasklets; i++ {
		list := m.free + dpu.Addr(((own+i)%dpu.MaxTasklets)*8)
		head := dpu.Addr(tx.Read(list))
		if head == dpu.NilAddr {
			continue
		}
		tx.Write(list, tx.Read(head+16))
		return head
	}
	return dpu.NilAddr
}

// freeNode pushes a node back on the tasklet's free list.
func (m *Map) freeNode(tx *core.Tx, node dpu.Addr) {
	list := m.freeList(tx)
	tx.Write(node+16, tx.Read(list))
	tx.Write(list, uint64(node))
}

// Get returns the value stored under key.
func (m *Map) Get(tx *core.Tx, key uint64) (uint64, bool) {
	cur := dpu.Addr(tx.Read(m.bucket(key)))
	for cur != dpu.NilAddr {
		if tx.Read(cur) == key {
			return tx.Read(cur + 8), true
		}
		cur = dpu.Addr(tx.Read(cur + 16))
	}
	return 0, false
}

// Put inserts or updates key. It reports whether the key was inserted
// (false = updated in place) and returns core.ErrMapFull via error when
// the node pool is exhausted.
func (m *Map) Put(tx *core.Tx, key, value uint64) (inserted bool, err error) {
	b := m.bucket(key)
	cur := dpu.Addr(tx.Read(b))
	for cur != dpu.NilAddr {
		if tx.Read(cur) == key {
			tx.Write(cur+8, value)
			return false, nil
		}
		cur = dpu.Addr(tx.Read(cur + 16))
	}
	node := m.allocNode(tx)
	if node == dpu.NilAddr {
		return false, fmt.Errorf("structures: map pool exhausted (capacity %d)", m.capacity)
	}
	tx.Write(node, key)
	tx.Write(node+8, value)
	tx.Write(node+16, tx.Read(b))
	tx.Write(b, uint64(node))
	sz := m.sizeWord(tx)
	tx.Write(sz, tx.Read(sz)+1)
	return true, nil
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(tx *core.Tx, key uint64) bool {
	b := m.bucket(key)
	prev := dpu.NilAddr
	cur := dpu.Addr(tx.Read(b))
	for cur != dpu.NilAddr {
		if tx.Read(cur) == key {
			next := tx.Read(cur + 16)
			if prev == dpu.NilAddr {
				tx.Write(b, next)
			} else {
				tx.Write(prev+16, next)
			}
			m.freeNode(tx, cur)
			sz := m.sizeWord(tx)
			tx.Write(sz, tx.Read(sz)-1)
			return true
		}
		prev = cur
		cur = dpu.Addr(tx.Read(cur + 16))
	}
	return false
}

// Len sums the per-tasklet size deltas from the host (only meaningful
// while the DPU is idle).
func (m *Map) Len(d *dpu.DPU) int {
	var n int64
	for i := 0; i < dpu.MaxTasklets; i++ {
		n += int64(d.HostRead64(m.sizes + dpu.Addr(i*8)))
	}
	return int(n)
}

// Walk calls f for every key/value pair from the host.
func (m *Map) Walk(d *dpu.DPU, f func(key, value uint64)) {
	for b := 0; b < m.nBuckets; b++ {
		cur := dpu.Addr(d.HostRead64(m.buckets + dpu.Addr(b*8)))
		for cur != dpu.NilAddr {
			f(d.HostRead64(cur), d.HostRead64(cur+8))
			cur = dpu.Addr(d.HostRead64(cur + 16))
		}
	}
}

// Queue is a bounded transactional MPMC FIFO of 64-bit values.
type Queue struct {
	ring     dpu.Addr
	capacity int
	head     dpu.Addr // dequeue cursor
	tail     dpu.Addr // enqueue cursor
}

// NewQueue allocates a queue with the given capacity.
func NewQueue(d *dpu.DPU, capacity int) (*Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("structures: queue capacity must be positive")
	}
	q := &Queue{capacity: capacity}
	var err error
	if q.ring, err = d.AllocMRAM(capacity*8, 8); err != nil {
		return nil, err
	}
	if q.head, err = d.AllocMRAM(8, 8); err != nil {
		return nil, err
	}
	if q.tail, err = d.AllocMRAM(8, 8); err != nil {
		return nil, err
	}
	return q, nil
}

// Enqueue appends v, reporting false when the queue is full.
func (q *Queue) Enqueue(tx *core.Tx, v uint64) bool {
	head := tx.Read(q.head)
	tail := tx.Read(q.tail)
	if tail-head >= uint64(q.capacity) {
		return false
	}
	tx.Write(q.ring+dpu.Addr((tail%uint64(q.capacity))*8), v)
	tx.Write(q.tail, tail+1)
	return true
}

// Dequeue removes and returns the oldest value, reporting false when
// empty.
func (q *Queue) Dequeue(tx *core.Tx) (uint64, bool) {
	head := tx.Read(q.head)
	tail := tx.Read(q.tail)
	if head == tail {
		return 0, false
	}
	v := tx.Read(q.ring + dpu.Addr((head%uint64(q.capacity))*8))
	tx.Write(q.head, head+1)
	return v, true
}

// Len returns the queue length from the host.
func (q *Queue) Len(d *dpu.DPU) int {
	return int(d.HostRead64(q.tail) - d.HostRead64(q.head))
}

// Counter is a striped transactional counter: increments hit the
// calling tasklet's stripe (no contention), reads sum every stripe in
// one transaction (a consistent snapshot thanks to opacity).
type Counter struct {
	stripes dpu.Addr
}

// NewCounter allocates a counter.
func NewCounter(d *dpu.DPU) (*Counter, error) {
	a, err := d.AllocMRAM(dpu.MaxTasklets*8, 8)
	if err != nil {
		return nil, err
	}
	return &Counter{stripes: a}, nil
}

// Add adds delta to the calling tasklet's stripe.
func (c *Counter) Add(tx *core.Tx, delta int64) {
	s := c.stripes + dpu.Addr(tx.Tasklet().ID*8)
	tx.Write(s, uint64(int64(tx.Read(s))+delta))
}

// Value returns a consistent snapshot of the counter.
func (c *Counter) Value(tx *core.Tx) int64 {
	var v int64
	for i := 0; i < dpu.MaxTasklets; i++ {
		v += int64(tx.Read(c.stripes + dpu.Addr(i*8)))
	}
	return v
}

// HostValue sums the stripes from the host while the DPU is idle.
func (c *Counter) HostValue(d *dpu.DPU) int64 {
	var v int64
	for i := 0; i < dpu.MaxTasklets; i++ {
		v += int64(d.HostRead64(c.stripes + dpu.Addr(i*8)))
	}
	return v
}
