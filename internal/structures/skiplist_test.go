package structures

import (
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

func TestSkipListBasics(t *testing.T) {
	d, tm := newSTM(t, core.NOrec)
	s, err := NewSkipList(d, 4, 24*16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Atomic(func(tx *core.Tx) {
			for _, k := range []uint64{5, 1, 9, 3, 7} {
				ins, err := s.Add(tx, k)
				if err != nil || !ins {
					t.Errorf("add %d: %v %v", k, ins, err)
				}
			}
			if ins, _ := s.Add(tx, 5); ins {
				t.Error("duplicate add succeeded")
			}
			for _, k := range []uint64{1, 3, 5, 7, 9} {
				if !s.Contains(tx, k) {
					t.Errorf("missing %d", k)
				}
			}
			if s.Contains(tx, 4) {
				t.Error("phantom key")
			}
			if !s.Remove(tx, 5) || s.Remove(tx, 5) {
				t.Error("remove semantics broken")
			}
			if s.Contains(tx, 5) {
				t.Error("removed key still present")
			}
		})
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err != nil {
		t.Fatal(err)
	}
	if s.Len(d) != 4 {
		t.Fatalf("len = %d", s.Len(d))
	}
}

func TestSkipListValidation(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	if _, err := NewSkipList(d, 0, 16); err == nil {
		t.Fatal("zero level bound accepted")
	}
	if _, err := NewSkipList(d, 17, 16); err == nil {
		t.Fatal("excess level bound accepted")
	}
	if _, err := NewSkipList(d, 4, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// TestSkipListConcurrent: random concurrent add/remove/contains over a
// shared key space must preserve the multi-level ordering invariants
// for every algorithm family.
func TestSkipListConcurrent(t *testing.T) {
	for _, alg := range []core.Algorithm{core.NOrec, core.TinyETLWB, core.TinyETLWT, core.VRETLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			d, tm := newSTM(t, alg)
			s, err := NewSkipList(d, 4, 24*64)
			if err != nil {
				t.Fatal(err)
			}
			const tasklets, ops = 5, 50
			progs := make([]func(*dpu.Tasklet), tasklets)
			for i := range progs {
				progs[i] = func(tk *dpu.Tasklet) {
					tx := tm.NewTx(tk)
					for op := 0; op < ops; op++ {
						k := uint64(tk.RandN(64))
						switch tk.RandN(3) {
						case 0:
							tx.Atomic(func(tx *core.Tx) {
								if _, err := s.Add(tx, k); err != nil {
									t.Error(err)
								}
							})
						case 1:
							tx.Atomic(func(tx *core.Tx) { s.Remove(tx, k) })
						default:
							tx.Atomic(func(tx *core.Tx) { s.Contains(tx, k) })
						}
					}
				}
			}
			if _, err := d.Run(progs); err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(d); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSkipListOrderedIterationMatchesModel drives a deterministic op
// sequence against a Go map model and compares the sorted contents.
func TestSkipListMatchesModel(t *testing.T) {
	d, tm := newSTM(t, core.TinyCTLWB)
	// Slots are never recycled (leak-free-on-abort discipline), so the
	// single driving tasklet needs headroom for every successful add.
	s, err := NewSkipList(d, 5, 24*200)
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]bool{}
	if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		for i := 0; i < 300; i++ {
			k := uint64(tk.RandN(50))
			if tk.RandN(2) == 0 {
				var ins bool
				tx.Atomic(func(tx *core.Tx) {
					var err error
					if ins, err = s.Add(tx, k); err != nil {
						t.Error(err)
					}
				})
				if ins == model[k] {
					t.Errorf("add %d returned %v but model had %v", k, ins, model[k])
				}
				model[k] = true
			} else {
				var rem bool
				tx.Atomic(func(tx *core.Tx) { rem = s.Remove(tx, k) })
				if rem != model[k] {
					t.Errorf("remove %d returned %v but model had %v", k, rem, model[k])
				}
				delete(model, k)
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err != nil {
		t.Fatal(err)
	}
	if s.Len(d) != len(model) {
		t.Fatalf("len %d != model %d", s.Len(d), len(model))
	}
}
