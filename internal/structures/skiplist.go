package structures

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// SkipList is a transactional ordered set of uint64 keys with expected
// O(log n) operations — the ordered counterpart to Map, showing that
// pointer-heavy multi-level structures compose naturally from PIM-STM
// transactions.
//
// Node layout in MRAM: [key][level][next_0 .. next_{level-1}], i.e.
// 2+level words. Tower levels are drawn from the per-tasklet PRNG at
// slot-reservation time, so retries reuse the same node deterministically.
type SkipList struct {
	maxLevel int
	head     dpu.Addr // maxLevel head pointers (level 0 at offset 0)
	pool     dpu.Addr
	poolCap  int
	nodeSize int      // bytes per pool slot: (2 + maxLevel) * 8
	free     dpu.Addr // MaxTasklets free-slot cursors (non-wrapping)
	sizes    dpu.Addr // per-tasklet size deltas
}

// NewSkipList allocates a skip list with the given tower height bound
// and node capacity.
func NewSkipList(d *dpu.DPU, maxLevel, capacity int) (*SkipList, error) {
	if maxLevel < 1 || maxLevel > 16 {
		return nil, fmt.Errorf("structures: skiplist level bound %d out of range [1,16]", maxLevel)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("structures: capacity must be positive")
	}
	s := &SkipList{maxLevel: maxLevel, poolCap: capacity, nodeSize: (2 + maxLevel) * 8}
	var err error
	if s.head, err = d.AllocMRAM(maxLevel*8, 8); err != nil {
		return nil, err
	}
	if s.pool, err = d.AllocMRAM(capacity*s.nodeSize, 8); err != nil {
		return nil, err
	}
	if s.free, err = d.AllocMRAM(dpu.MaxTasklets*8, 8); err != nil {
		return nil, err
	}
	if s.sizes, err = d.AllocMRAM(dpu.MaxTasklets*8, 8); err != nil {
		return nil, err
	}
	// Partition the slot space statically across tasklets (cursor-based;
	// deleted nodes are unlinked but not recycled, the leak-free-on-abort
	// discipline that needs no cross-tasklet free lists).
	per := capacity / dpu.MaxTasklets
	for t := 0; t < dpu.MaxTasklets; t++ {
		d.HostWrite64(s.free+dpu.Addr(t*8), uint64(t*per))
	}
	return s, nil
}

func (s *SkipList) node(i int) dpu.Addr { return s.pool + dpu.Addr(i*s.nodeSize) }

func (s *SkipList) nextAddr(node dpu.Addr, level int) dpu.Addr {
	return node + dpu.Addr(16+level*8)
}

func (s *SkipList) headAddr(level int) dpu.Addr { return s.head + dpu.Addr(level*8) }

// drawLevel picks a geometric tower height from the tasklet PRNG.
func (s *SkipList) drawLevel(t *dpu.Tasklet) int {
	lvl := 1
	for lvl < s.maxLevel && t.RandN(4) == 0 {
		lvl++
	}
	return lvl
}

// allocNode reserves a slot from the tasklet's cursor range.
func (s *SkipList) allocNode(tx *core.Tx) (dpu.Addr, error) {
	cur := s.free + dpu.Addr(tx.Tasklet().ID*8)
	idx := tx.Read(cur)
	per := uint64(s.poolCap / dpu.MaxTasklets)
	if idx >= uint64(tx.Tasklet().ID)*per+per {
		return dpu.NilAddr, fmt.Errorf("structures: skiplist slot range of tasklet %d exhausted", tx.Tasklet().ID)
	}
	tx.Write(cur, idx+1)
	return s.node(int(idx)), nil
}

// findPreds fills preds with, per level, the last node whose key is
// < k (NilAddr meaning the head), and returns the level-0 successor.
func (s *SkipList) findPreds(tx *core.Tx, k uint64, preds []dpu.Addr) dpu.Addr {
	t := tx.Tasklet()
	prev := dpu.NilAddr
	for level := s.maxLevel - 1; level >= 0; level-- {
		var cur dpu.Addr
		if prev == dpu.NilAddr {
			cur = dpu.Addr(tx.Read(s.headAddr(level)))
		} else {
			cur = dpu.Addr(tx.Read(s.nextAddr(prev, level)))
		}
		for cur != dpu.NilAddr && tx.Read(cur) < k {
			t.Exec(2)
			prev = cur
			cur = dpu.Addr(tx.Read(s.nextAddr(cur, level)))
		}
		preds[level] = prev
		if level == 0 {
			return cur
		}
	}
	return dpu.NilAddr
}

// Contains reports membership.
func (s *SkipList) Contains(tx *core.Tx, k uint64) bool {
	preds := make([]dpu.Addr, s.maxLevel)
	cur := s.findPreds(tx, k, preds)
	return cur != dpu.NilAddr && tx.Read(cur) == k
}

// Add inserts k, reporting whether it was absent.
func (s *SkipList) Add(tx *core.Tx, k uint64) (bool, error) {
	preds := make([]dpu.Addr, s.maxLevel)
	cur := s.findPreds(tx, k, preds)
	if cur != dpu.NilAddr && tx.Read(cur) == k {
		return false, nil
	}
	node, err := s.allocNode(tx)
	if err != nil {
		return false, err
	}
	lvl := s.drawLevel(tx.Tasklet())
	tx.Write(node, k)
	tx.Write(node+8, uint64(lvl))
	for level := 0; level < lvl; level++ {
		var succ uint64
		if preds[level] == dpu.NilAddr {
			succ = tx.Read(s.headAddr(level))
			tx.Write(s.headAddr(level), uint64(node))
		} else {
			succ = tx.Read(s.nextAddr(preds[level], level))
			tx.Write(s.nextAddr(preds[level], level), uint64(node))
		}
		tx.Write(s.nextAddr(node, level), succ)
	}
	sz := s.sizes + dpu.Addr(tx.Tasklet().ID*8)
	tx.Write(sz, tx.Read(sz)+1)
	return true, nil
}

// Remove deletes k, reporting whether it was present.
func (s *SkipList) Remove(tx *core.Tx, k uint64) bool {
	preds := make([]dpu.Addr, s.maxLevel)
	cur := s.findPreds(tx, k, preds)
	if cur == dpu.NilAddr || tx.Read(cur) != k {
		return false
	}
	lvl := int(tx.Read(cur + 8))
	for level := 0; level < lvl; level++ {
		succ := tx.Read(s.nextAddr(cur, level))
		if preds[level] == dpu.NilAddr {
			tx.Write(s.headAddr(level), succ)
		} else {
			tx.Write(s.nextAddr(preds[level], level), succ)
		}
	}
	sz := s.sizes + dpu.Addr(tx.Tasklet().ID*8)
	tx.Write(sz, tx.Read(sz)-1)
	return true
}

// Len sums the per-tasklet size deltas from the host.
func (s *SkipList) Len(d *dpu.DPU) int {
	var n int64
	for i := 0; i < dpu.MaxTasklets; i++ {
		n += int64(d.HostRead64(s.sizes + dpu.Addr(i*8)))
	}
	return int(n)
}

// Verify walks level 0 from the host checking strict ordering, and
// checks every higher level is a subsequence of level 0.
func (s *SkipList) Verify(d *dpu.DPU) error {
	level0 := map[uint64]bool{}
	last := int64(-1)
	steps := 0
	for cur := dpu.Addr(d.HostRead64(s.headAddr(0))); cur != dpu.NilAddr; {
		if steps++; steps > s.poolCap+1 {
			return fmt.Errorf("cycle at level 0")
		}
		k := d.HostRead64(cur)
		if int64(k) <= last {
			return fmt.Errorf("level 0 not strictly sorted: %d after %d", k, last)
		}
		last = int64(k)
		level0[k] = true
		cur = dpu.Addr(d.HostRead64(s.nextAddr(cur, 0)))
	}
	for level := 1; level < s.maxLevel; level++ {
		lastK := int64(-1)
		steps = 0
		for cur := dpu.Addr(d.HostRead64(s.headAddr(level))); cur != dpu.NilAddr; {
			if steps++; steps > s.poolCap+1 {
				return fmt.Errorf("cycle at level %d", level)
			}
			k := d.HostRead64(cur)
			if int64(k) <= lastK {
				return fmt.Errorf("level %d not sorted", level)
			}
			if !level0[k] {
				return fmt.Errorf("level %d holds key %d missing from level 0", level, k)
			}
			lastK = int64(k)
			cur = dpu.Addr(d.HostRead64(s.nextAddr(cur, level)))
		}
	}
	if len(level0) != s.Len(d) {
		return fmt.Errorf("level-0 count %d != size counter %d", len(level0), s.Len(d))
	}
	return nil
}
