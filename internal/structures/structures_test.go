package structures

import (
	"testing"
	"testing/quick"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

func newSTM(t testing.TB, alg core.Algorithm) (*dpu.DPU, *core.TM) {
	t.Helper()
	d := dpu.New(dpu.Config{MRAMSize: 4 << 20, Seed: 9})
	tm, err := core.New(d, core.Config{Algorithm: alg, LockTableEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return d, tm
}

func TestMapBasics(t *testing.T) {
	d, tm := newSTM(t, core.NOrec)
	m, err := NewMap(d, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Atomic(func(tx *core.Tx) {
			if _, ok := m.Get(tx, 10); ok {
				t.Error("empty map had a key")
			}
			ins, err := m.Put(tx, 10, 100)
			if err != nil || !ins {
				t.Errorf("first put: %v %v", ins, err)
			}
			ins, err = m.Put(tx, 10, 200)
			if err != nil || ins {
				t.Errorf("update should not insert: %v %v", ins, err)
			}
			if v, ok := m.Get(tx, 10); !ok || v != 200 {
				t.Errorf("get = %d,%v", v, ok)
			}
			if !m.Delete(tx, 10) {
				t.Error("delete missed")
			}
			if m.Delete(tx, 10) {
				t.Error("double delete")
			}
		})
	}}); err != nil {
		t.Fatal(err)
	}
	if m.Len(d) != 0 {
		t.Fatalf("len = %d", m.Len(d))
	}
}

func TestMapPoolExhaustionAndReuse(t *testing.T) {
	d, tm := newSTM(t, core.TinyETLWB)
	m, err := NewMap(d, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Atomic(func(tx *core.Tx) {
			for k := uint64(0); k < 8; k++ {
				if _, err := m.Put(tx, k, k); err != nil {
					t.Errorf("put %d: %v", k, err)
				}
			}
			if _, err := m.Put(tx, 99, 99); err == nil {
				t.Error("pool exhaustion not reported")
			}
			// Free one, insert succeeds again (node reuse).
			m.Delete(tx, 3)
			if _, err := m.Put(tx, 99, 99); err != nil {
				t.Errorf("reuse failed: %v", err)
			}
		})
	}}); err != nil {
		t.Fatal(err)
	}
	if m.Len(d) != 8 {
		t.Fatalf("len = %d, want 8", m.Len(d))
	}
}

// TestMapConcurrentMatchesModel: concurrent per-tasklet key ranges are
// disjoint, so the final contents must equal a sequential model.
func TestMapConcurrentMatchesModel(t *testing.T) {
	for _, alg := range core.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			d, tm := newSTM(t, alg)
			m, err := NewMap(d, 128, 2048)
			if err != nil {
				t.Fatal(err)
			}
			const tasklets, opsEach = 6, 60
			progs := make([]func(*dpu.Tasklet), tasklets)
			for i := range progs {
				progs[i] = func(tk *dpu.Tasklet) {
					tx := tm.NewTx(tk)
					base := uint64(tk.ID) << 32
					for op := 0; op < opsEach; op++ {
						k := base | uint64(tk.RandN(40))
						switch tk.RandN(3) {
						case 0, 1:
							tx.Atomic(func(tx *core.Tx) {
								if _, err := m.Put(tx, k, k*3); err != nil {
									t.Error(err)
								}
							})
						default:
							tx.Atomic(func(tx *core.Tx) { m.Delete(tx, k) })
						}
					}
				}
			}
			if _, err := d.Run(progs); err != nil {
				t.Fatal(err)
			}
			// Verify: every surviving pair has value = 3×key, count
			// matches Len, and keys are globally unique.
			seen := map[uint64]bool{}
			count := 0
			m.Walk(d, func(k, v uint64) {
				count++
				if v != k*3 {
					t.Fatalf("key %d has value %d", k, v)
				}
				if seen[k] {
					t.Fatalf("duplicate key %d", k)
				}
				seen[k] = true
			})
			if count != m.Len(d) {
				t.Fatalf("walk count %d != Len %d", count, m.Len(d))
			}
		})
	}
}

// TestMapCrossTaskletVisibility: a value written by one tasklet must be
// readable by another after commit.
func TestMapCrossTaskletVisibility(t *testing.T) {
	d, tm := newSTM(t, core.VRETLWB)
	m, err := NewMap(d, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	var ok bool
	progs := []func(*dpu.Tasklet){
		func(tk *dpu.Tasklet) {
			tx := tm.NewTx(tk)
			tx.Atomic(func(tx *core.Tx) {
				_, err := m.Put(tx, 7, 77)
				if err != nil {
					t.Error(err)
				}
			})
		},
		func(tk *dpu.Tasklet) {
			tk.Exec(20000) // run after the writer
			tx := tm.NewTx(tk)
			tx.Atomic(func(tx *core.Tx) { got, ok = m.Get(tx, 7) })
		},
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 77 {
		t.Fatalf("cross-tasklet get = %d,%v", got, ok)
	}
}

func TestMapValidation(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	if _, err := NewMap(d, 100, 10); err == nil {
		t.Fatal("non-power-of-two buckets accepted")
	}
	if _, err := NewMap(d, 16, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewQueue(d, 0); err == nil {
		t.Fatal("zero queue capacity accepted")
	}
}

func TestQueueFIFO(t *testing.T) {
	d, tm := newSTM(t, core.NOrec)
	q, err := NewQueue(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Atomic(func(tx *core.Tx) {
			for i := uint64(1); i <= 8; i++ {
				if !q.Enqueue(tx, i) {
					t.Errorf("enqueue %d failed", i)
				}
			}
			if q.Enqueue(tx, 9) {
				t.Error("enqueue into full queue succeeded")
			}
			for i := uint64(1); i <= 8; i++ {
				v, ok := q.Dequeue(tx)
				if !ok || v != i {
					t.Errorf("dequeue = %d,%v want %d", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(tx); ok {
				t.Error("dequeue from empty queue succeeded")
			}
		})
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueProducersConsumers: every produced value is consumed exactly
// once across concurrent producers and consumers.
func TestQueueProducersConsumers(t *testing.T) {
	for _, alg := range []core.Algorithm{core.NOrec, core.TinyETLWB, core.VRETLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			d, tm := newSTM(t, alg)
			q, err := NewQueue(d, 16)
			if err != nil {
				t.Fatal(err)
			}
			const producers, consumers, items = 3, 3, 40
			consumed := make([][]uint64, producers+consumers)
			progs := make([]func(*dpu.Tasklet), producers+consumers)
			for i := 0; i < producers; i++ {
				id := i
				progs[i] = func(tk *dpu.Tasklet) {
					tx := tm.NewTx(tk)
					for j := 0; j < items; j++ {
						v := uint64(id*items + j + 1)
						for {
							sent := false
							tx.Atomic(func(tx *core.Tx) { sent = q.Enqueue(tx, v) })
							if sent {
								break
							}
							tk.Exec(200) // queue full: back off
						}
					}
				}
			}
			for i := 0; i < consumers; i++ {
				idx := producers + i
				progs[idx] = func(tk *dpu.Tasklet) {
					tx := tm.NewTx(tk)
					deadline := 0
					for len(consumed[tk.ID]) < items && deadline < 100000 {
						var v uint64
						var ok bool
						tx.Atomic(func(tx *core.Tx) { v, ok = q.Dequeue(tx) })
						if ok {
							consumed[tk.ID] = append(consumed[tk.ID], v)
						} else {
							tk.Exec(200)
							deadline++
						}
					}
				}
			}
			if _, err := d.Run(progs); err != nil {
				t.Fatal(err)
			}
			seen := map[uint64]bool{}
			total := 0
			for _, vs := range consumed {
				for _, v := range vs {
					if seen[v] {
						t.Fatalf("value %d consumed twice", v)
					}
					seen[v] = true
					total++
				}
			}
			if total != producers*items {
				t.Fatalf("consumed %d of %d items", total, producers*items)
			}
		})
	}
}

func TestCounter(t *testing.T) {
	d, tm := newSTM(t, core.TinyETLWT)
	c, err := NewCounter(d)
	if err != nil {
		t.Fatal(err)
	}
	const tasklets, iters = 8, 50
	progs := make([]func(*dpu.Tasklet), tasklets)
	for i := range progs {
		progs[i] = func(tk *dpu.Tasklet) {
			tx := tm.NewTx(tk)
			for j := 0; j < iters; j++ {
				tx.Atomic(func(tx *core.Tx) { c.Add(tx, 2) })
			}
			// A consistent snapshot must be a multiple of 2.
			var v int64
			tx.Atomic(func(tx *core.Tx) { v = c.Value(tx) })
			if v%2 != 0 {
				t.Errorf("snapshot %d not a multiple of the increment", v)
			}
		}
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	if got := c.HostValue(d); got != tasklets*iters*2 {
		t.Fatalf("counter = %d, want %d", got, tasklets*iters*2)
	}
}

// TestQuickMapModel drives random single-tasklet op sequences against a
// Go map model.
func TestQuickMapModel(t *testing.T) {
	check := func(script []byte) bool {
		d, tm := newSTM(t, core.TinyCTLWB)
		m, err := NewMap(d, 32, 256)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		bad := false
		if _, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
			tx := tm.NewTx(tk)
			for _, b := range script {
				k := uint64(b) % 32
				switch {
				case b&0xC0 == 0: // delete
					var got bool
					tx.Atomic(func(tx *core.Tx) { got = m.Delete(tx, k) })
					_, want := model[k]
					delete(model, k)
					if got != want {
						bad = true
					}
				case b&0x80 == 0: // get
					var got uint64
					var ok bool
					tx.Atomic(func(tx *core.Tx) { got, ok = m.Get(tx, k) })
					want, wantOK := model[k]
					if ok != wantOK || (ok && got != want) {
						bad = true
					}
				default: // put
					v := uint64(b) * 7
					tx.Atomic(func(tx *core.Tx) {
						if _, err := m.Put(tx, k, v); err != nil {
							bad = true
						}
					})
					model[k] = v
				}
			}
		}}); err != nil {
			t.Fatal(err)
		}
		if bad {
			return false
		}
		if m.Len(d) != len(model) {
			return false
		}
		ok := true
		m.Walk(d, func(k, v uint64) {
			if model[k] != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
