package harness

import (
	"strings"
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// quickOpts keeps sweeps small: one seed, three tasklet points, scaled
// workloads.
func quickOpts() Options {
	return Options{Scale: 0.25, Tasklets: []int{1, 5, 11}, Seeds: []uint64{1}}
}

func findSeries(p Panel, alg core.Algorithm) Series {
	for _, s := range p.Series {
		if s.Algorithm == alg {
			return s
		}
	}
	return Series{}
}

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 8 {
		t.Fatalf("the paper evaluates 8 single-DPU workloads, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate spec %q", s.Name)
		}
		names[s.Name] = true
		w := s.New(0.1)
		if w.Name() != s.Name {
			t.Fatalf("factory name mismatch: %q vs %q", w.Name(), s.Name)
		}
		if s.LockTableEntries&(s.LockTableEntries-1) != 0 {
			t.Fatalf("%s lock table not a power of two", s.Name)
		}
	}
	if _, err := SpecByName("ArrayBench A"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown spec should error")
	}
}

func TestRunPanelShape(t *testing.T) {
	spec, _ := SpecByName("ArrayBench B")
	panel, err := RunPanel(spec, dpu.MRAM, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Series) != len(core.Algorithms) {
		t.Fatalf("series count = %d, want %d", len(panel.Series), len(core.Algorithms))
	}
	for _, s := range panel.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%v has %d points, want 3", s.Algorithm, len(s.Points))
		}
		for _, p := range s.Points {
			if p.ThroughputTxS <= 0 {
				t.Fatalf("%v @%d tasklets has no throughput", s.Algorithm, p.Tasklets)
			}
			var sum float64
			for _, f := range p.PhaseFrac {
				sum += f
			}
			if sum < 0.95 || sum > 1.05 {
				t.Fatalf("%v phase fractions sum to %.2f", s.Algorithm, sum)
			}
		}
	}
	if panel.Best() <= 0 {
		t.Fatal("panel best not computed")
	}
}

// TestPanelDeterministicAcrossRuns: equal options must reproduce the
// exact numbers (the simulation is deterministic; the sweep must not
// introduce scheduling sensitivity).
func TestPanelDeterministicAcrossRuns(t *testing.T) {
	spec, _ := SpecByName("Linked-List HC")
	opt := Options{Scale: 0.2, Tasklets: []int{3}, Seeds: []uint64{7}}
	p1, err := RunPanel(spec, dpu.MRAM, opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := RunPanel(spec, dpu.MRAM, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Series {
		a, b := p1.Series[i].Points[0], p2.Series[i].Points[0]
		if a.ThroughputTxS != b.ThroughputTxS || a.AbortRate != b.AbortRate {
			t.Fatalf("sweep nondeterministic for %v", p1.Series[i].Algorithm)
		}
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("fig99", quickOpts()); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestFig10ExcludesLabyrinth(t *testing.T) {
	fs := figureSpecs["fig10"]
	for _, w := range fs.workloads {
		if strings.Contains(w, "Labyrinth") {
			t.Fatal("fig10 must not include Labyrinth (exceeds WRAM)")
		}
	}
	if fs.tier != dpu.WRAM {
		t.Fatal("fig10 is the WRAM study")
	}
}

// TestShapeArrayBenchA reproduces the paper's headline orderings for
// ArrayBench A (MRAM): VR-ETL variants beat Tiny by about 2x, and NOrec
// is the worst performer at high tasklet counts.
func TestShapeArrayBenchA(t *testing.T) {
	spec, _ := SpecByName("ArrayBench A")
	opt := Options{Scale: 0.3, Tasklets: []int{11}, Seeds: []uint64{1, 2}}
	panel, err := RunPanel(spec, dpu.MRAM, opt)
	if err != nil {
		t.Fatal(err)
	}
	at11 := func(a core.Algorithm) float64 { return findSeries(panel, a).Points[0].ThroughputTxS }
	vrBest := at11(core.VRETLWB)
	if v := at11(core.VRETLWT); v > vrBest {
		vrBest = v
	}
	norec := at11(core.NOrec)
	tiny := at11(core.TinyETLWB)
	if norec >= vrBest {
		t.Fatalf("paper shape: NOrec (%.0f) must trail VR-ETL (%.0f) on ArrayBench A", norec, vrBest)
	}
	if tiny >= vrBest {
		t.Fatalf("paper shape: Tiny ETL (%.0f) must trail VR-ETL (%.0f) on ArrayBench A", tiny, vrBest)
	}
	if vrBest < 1.5*norec {
		t.Fatalf("paper shape: VR-ETL should be well ahead of NOrec (got %.2fx)", vrBest/norec)
	}
}

// TestShapeArrayBenchB: the ordering flips on the high-contention
// workload — NOrec has the highest peak throughput and the VR ETL
// variants stop scaling at around 4 tasklets, peaking well below NOrec
// (paper §4.2.1: "their peak throughput is ∼40% lower than NOrec's").
func TestShapeArrayBenchB(t *testing.T) {
	spec, _ := SpecByName("ArrayBench B")
	opt := Options{Scale: 0.5, Tasklets: []int{1, 4, 11}, Seeds: []uint64{1, 2}}
	panel, err := RunPanel(spec, dpu.MRAM, opt)
	if err != nil {
		t.Fatal(err)
	}
	norec := findSeries(panel, core.NOrec).Peak()
	for _, a := range []core.Algorithm{core.VRETLWB, core.VRETLWT, core.VRCTLWB} {
		s := findSeries(panel, a)
		if s.Peak() > norec*1.05 {
			t.Fatalf("paper shape: NOrec peak (%.0f) should lead VR peak (%v %.0f) on ArrayBench B", norec, a, s.Peak())
		}
	}
	// VR ETLWB must not keep scaling to 11 tasklets.
	vr := findSeries(panel, core.VRETLWB)
	if vr.Points[2].ThroughputTxS > vr.Points[1].ThroughputTxS*1.1 {
		t.Fatalf("paper shape: VR ETLWB should stop scaling after ~4 tasklets (4→%.0f, 11→%.0f)",
			vr.Points[1].ThroughputTxS, vr.Points[2].ThroughputTxS)
	}
}

// TestShapeLinkedList: VR variants suffer upgrade aborts and trail on
// the list; the invisible-read designs dominate.
func TestShapeLinkedList(t *testing.T) {
	spec, _ := SpecByName("Linked-List HC")
	opt := Options{Scale: 0.4, Tasklets: []int{7}, Seeds: []uint64{1, 2}}
	panel, err := RunPanel(spec, dpu.MRAM, opt)
	if err != nil {
		t.Fatal(err)
	}
	at := func(a core.Algorithm) Point { return findSeries(panel, a).Points[0] }
	norec, vr := at(core.NOrec), at(core.VRETLWB)
	if vr.ThroughputTxS > norec.ThroughputTxS {
		t.Fatalf("paper shape: VR (%.0f) should trail NOrec (%.0f) on the list", vr.ThroughputTxS, norec.ThroughputTxS)
	}
	if vr.AbortRate <= norec.AbortRate {
		t.Fatalf("paper shape: VR abort rate (%.2f) should exceed NOrec's (%.2f)", vr.AbortRate, norec.AbortRate)
	}
}

// TestShapeWRAMGains: metadata in WRAM speeds up transaction-heavy
// workloads by well over 1x (paper: 2.46x–5.1x) but barely moves
// KMeans LC (paper: ~5%).
func TestShapeWRAMGains(t *testing.T) {
	opt := Options{Scale: 0.3, Tasklets: []int{5}, Seeds: []uint64{1}}
	heavy, _ := SpecByName("ArrayBench B")
	g, err := TierGain(heavy, core.NOrec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g < 1.3 {
		t.Fatalf("ArrayBench B WRAM gain = %.2fx, want well above 1x", g)
	}
	light, _ := SpecByName("KMeans LC")
	gl, err := TierGain(light, core.NOrec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if gl > g {
		t.Fatalf("KMeans LC (compute-bound, %.2fx) should gain less than ArrayBench B (%.2fx)", gl, g)
	}
}

func TestFig6Rows(t *testing.T) {
	// Restrict to a light subset through scale; full fig6 runs in the CLI.
	rows, err := Fig6(dpu.MRAM, Options{Scale: 0.12, Tasklets: []int{1, 7}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Algorithms) {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Ratios) != 8 {
			t.Fatalf("%v covers %d workloads, want 8", r.Algorithm, len(r.Ratios))
		}
		for _, v := range r.Ratios {
			if v < 0.999 {
				t.Fatalf("ratio below 1 is impossible: %v %f", r.Algorithm, v)
			}
		}
		if r.Median < 1 || r.Mean < 1 || r.Max < r.Median {
			t.Fatalf("aggregates inconsistent: %+v", r)
		}
	}
	// Sorted by mean.
	for i := 1; i < len(rows); i++ {
		if rows[i].Mean < rows[i-1].Mean {
			t.Fatal("fig6 rows not sorted by mean ratio")
		}
	}
}

// TestWRAMSpillConfiguration: ArrayBench A's ORec table exceeds WRAM,
// so in WRAM-metadata mode its lock table must spill to MRAM (paper
// appendix A) — and the sweep must still complete for every algorithm.
func TestWRAMSpillConfiguration(t *testing.T) {
	spec, _ := SpecByName("ArrayBench A")
	if !spec.SpillLockTable {
		t.Fatal("ArrayBench A must be marked for lock-table spill")
	}
	// 16384 Tiny entries × 8 B = 128 KB > 64 KB WRAM.
	if spec.LockTableEntries*8 <= dpu.DefaultWRAMSize {
		t.Fatalf("spill flag set but the table (%d B) fits WRAM", spec.LockTableEntries*8)
	}
	cfg := stmConfig(spec, core.TinyETLWB, dpu.WRAM)
	if cfg.LockTableTier == nil || *cfg.LockTableTier != dpu.MRAM {
		t.Fatal("stmConfig did not spill the lock table to MRAM")
	}
	// And without spill, creating the TM in WRAM must fail for Tiny.
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	noSpill := core.Config{Algorithm: core.TinyETLWB, MetaTier: dpu.WRAM, LockTableEntries: spec.LockTableEntries}
	if _, err := core.New(d, noSpill); err == nil {
		t.Fatal("a 128 KB lock table should not fit 64 KB WRAM")
	}
	// The spilled sweep runs.
	opt := Options{Scale: 0.05, Tasklets: []int{2}, Seeds: []uint64{1}}
	if _, err := RunPanel(spec, dpu.WRAM, opt); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMatchesPaperQuote(t *testing.T) {
	ns := LocalMRAMReadLatency()
	if ns < 200 || ns > 280 {
		t.Fatalf("local MRAM 64-bit read = %.0f ns, paper quotes 231 ns", ns)
	}
}

func TestRenderProducesTables(t *testing.T) {
	spec, _ := SpecByName("ArrayBench B")
	panel, err := RunPanel(spec, dpu.MRAM, Options{Scale: 0.1, Tasklets: []int{1, 3}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Figure{Name: "figX", Title: "test", Panels: []Panel{panel}}.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Throughput", "Abort rate", "Time breakdown", "NOrec", "Tiny ETLWB", "VR CTLWB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	RenderFig6(&sb2, "fig6a", []Fig6Row{{Algorithm: core.NOrec, Ratios: []float64{1, 1.5}, Mean: 1.25, Median: 1.25, Max: 1.5}})
	if !strings.Contains(sb2.String(), "NOrec") {
		t.Fatal("fig6 render missing algorithm")
	}
}

func TestStatsHelpers(t *testing.T) {
	if mean(nil) != 0 || stddev(nil) != 0 || stddev([]float64{1}) != 0 {
		t.Fatal("degenerate stats should be zero")
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %f", m)
	}
	if s := stddev([]float64{1, 3}); s < 1.41 || s > 1.42 {
		t.Fatalf("stddev = %f", s)
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("median odd wrong")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("median even wrong")
	}
	if median(nil) != 0 {
		t.Fatal("median nil wrong")
	}
	if maxOf([]float64{1, 5, 2}) != 5 {
		t.Fatal("maxOf wrong")
	}
	if scaleInt(100, 0.5, 1) != 50 || scaleInt(10, 0.01, 3) != 3 {
		t.Fatal("scaleInt wrong")
	}
}
