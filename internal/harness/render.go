package harness

import (
	"fmt"
	"io"
	"strings"

	"pimstm/internal/core"
)

// Render writes the figure as text tables: one throughput table, one
// abort-rate table and one time-breakdown table per panel, mirroring
// the three plot rows of Figs 4/5/9/10.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.Name, f.Title)
	for _, p := range f.Panels {
		p.Render(w)
	}
}

// Render writes one workload panel.
func (p Panel) Render(w io.Writer) {
	fmt.Fprintf(w, "\n-- %s (metadata in %s) --\n", p.Workload, p.MetaTier)

	fmt.Fprintf(w, "Throughput [x1000 tx/s] ± std\n")
	fmt.Fprintf(w, "%-12s", "tasklets")
	if len(p.Series) > 0 {
		for _, pt := range p.Series[0].Points {
			fmt.Fprintf(w, "%16d", pt.Tasklets)
		}
	}
	fmt.Fprintln(w)
	for _, s := range p.Series {
		fmt.Fprintf(w, "%-12s", s.Algorithm)
		for _, pt := range s.Points {
			fmt.Fprintf(w, "%10.2f±%-5.2f", pt.ThroughputTxS/1000, pt.Std/1000)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "Abort rate [%%]\n")
	fmt.Fprintf(w, "%-12s", "tasklets")
	if len(p.Series) > 0 {
		for _, pt := range p.Series[0].Points {
			fmt.Fprintf(w, "%8d", pt.Tasklets)
		}
	}
	fmt.Fprintln(w)
	for _, s := range p.Series {
		fmt.Fprintf(w, "%-12s", s.Algorithm)
		for _, pt := range s.Points {
			fmt.Fprintf(w, "%8.1f", pt.AbortRate*100)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "Time breakdown at %d tasklets [%% of accounted cycles]\n", lastTasklets(p))
	fmt.Fprintf(w, "%-12s", "")
	for ph := core.Phase(0); ph < core.NumPhases; ph++ {
		fmt.Fprintf(w, "%-10s", phaseAbbrev(ph))
	}
	fmt.Fprintln(w)
	for _, s := range p.Series {
		fmt.Fprintf(w, "%-12s", s.Algorithm)
		pt := s.Points[len(s.Points)-1]
		for ph := 0; ph < int(core.NumPhases); ph++ {
			fmt.Fprintf(w, "%-10.1f", pt.PhaseFrac[ph]*100)
		}
		fmt.Fprintln(w)
	}
}

func lastTasklets(p Panel) int {
	if len(p.Series) == 0 || len(p.Series[0].Points) == 0 {
		return 0
	}
	pts := p.Series[0].Points
	return pts[len(pts)-1].Tasklets
}

func phaseAbbrev(p core.Phase) string {
	switch p {
	case core.PhaseReading:
		return "Read"
	case core.PhaseWriting:
		return "Write"
	case core.PhaseValidateExec:
		return "Val(Ex)"
	case core.PhaseOtherExec:
		return "Other(Ex)"
	case core.PhaseValidateCommit:
		return "Val(Cm)"
	case core.PhaseOtherCommit:
		return "Other(Cm)"
	case core.PhaseWasted:
		return "Wasted"
	}
	return "?"
}

// RenderFig6 writes the normalized-peak-throughput distribution (Fig 6).
func RenderFig6(w io.Writer, title string, rows []Fig6Row) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "ratio best/self across workloads (1.00 = best; lower is better)\n")
	fmt.Fprintf(w, "%-12s %7s %7s %7s  %s\n", "STM", "mean", "median", "max", "per-workload ratios")
	for _, r := range rows {
		vals := make([]string, len(r.Ratios))
		for i, v := range r.Ratios {
			vals[i] = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "%-12s %7.2f %7.2f %7.2f  [%s]\n",
			r.Algorithm, r.Mean, r.Median, r.Max, strings.Join(vals, " "))
	}
}
