// Package harness runs the paper's single-DPU experiments: it sweeps
// STM algorithm × tasklet count × metadata tier × seed over the
// benchmark workloads, aggregates throughput / abort rate / time
// breakdown, and renders the series behind Figs 4, 5, 6, 9 and 10 plus
// the latency and tier-gain measurements quoted in the text.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/workloads"
)

// WorkloadSpec describes one benchmark in the sweep: a factory for
// fresh instances plus its STM sizing quirks.
type WorkloadSpec struct {
	// Name is the paper's workload name.
	Name string
	// New builds a fresh instance (workloads hold per-run state).
	New func(scale float64) workloads.Workload
	// LockTableEntries sizes the ORec table for this workload.
	LockTableEntries int
	// SpillLockTable marks workloads whose lock table exceeds WRAM in
	// WRAM-metadata mode and must live in MRAM (ArrayBench A, paper
	// appendix A).
	SpillLockTable bool
	// SupportsWRAM is false for workloads whose transactional footprint
	// exceeds WRAM entirely (Labyrinth, paper §4.2.3).
	SupportsWRAM bool
}

// scaleInt scales a workload size, keeping at least min.
func scaleInt(v int, scale float64, min int) int {
	s := int(math.Round(float64(v) * scale))
	if s < min {
		return min
	}
	return s
}

// Specs returns the paper's eight single-DPU workloads. The scale
// factor passed to New shrinks per-tasklet operation counts for quick
// runs (1.0 reproduces the paper's sizes).
func Specs() []WorkloadSpec {
	return []WorkloadSpec{
		{
			Name: "ArrayBench A",
			New: func(s float64) workloads.Workload {
				w := workloads.NewArrayBenchA()
				w.OpsPerTasklet = scaleInt(w.OpsPerTasklet, s, 2)
				return w
			},
			// 12,500 words need a table larger than WRAM can host
			// (16384 × 8 B = 128 KB).
			LockTableEntries: 16384,
			SpillLockTable:   true,
			SupportsWRAM:     true,
		},
		{
			Name: "ArrayBench B",
			New: func(s float64) workloads.Workload {
				w := workloads.NewArrayBenchB()
				w.OpsPerTasklet = scaleInt(w.OpsPerTasklet, s, 10)
				return w
			},
			LockTableEntries: 4096,
			SupportsWRAM:     true,
		},
		{
			Name: "Linked-List LC",
			New: func(s float64) workloads.Workload {
				w := workloads.NewLinkedListLC()
				w.OpsPerTasklet = scaleInt(w.OpsPerTasklet, s, 10)
				return w
			},
			LockTableEntries: 4096,
			SupportsWRAM:     true,
		},
		{
			Name: "Linked-List HC",
			New: func(s float64) workloads.Workload {
				w := workloads.NewLinkedListHC()
				w.OpsPerTasklet = scaleInt(w.OpsPerTasklet, s, 10)
				return w
			},
			LockTableEntries: 4096,
			SupportsWRAM:     true,
		},
		{
			Name: "KMeans LC",
			New: func(s float64) workloads.Workload {
				w := workloads.NewKMeansLC()
				w.TotalPoints = scaleInt(w.TotalPoints, s, 48)
				return w
			},
			LockTableEntries: 1024,
			SupportsWRAM:     true,
		},
		{
			Name: "KMeans HC",
			New: func(s float64) workloads.Workload {
				w := workloads.NewKMeansHC()
				w.TotalPoints = scaleInt(w.TotalPoints, s, 48)
				return w
			},
			LockTableEntries: 1024,
			SupportsWRAM:     true,
		},
		{
			Name: "Labyrinth S",
			New: func(s float64) workloads.Workload {
				w := workloads.NewLabyrinthS()
				w.NumPaths = scaleInt(w.NumPaths, s, 10)
				return w
			},
			LockTableEntries: 1024,
		},
		{
			Name: "Labyrinth L",
			New: func(s float64) workloads.Workload {
				w := workloads.NewLabyrinthL()
				w.NumPaths = scaleInt(w.NumPaths, s, 8)
				return w
			},
			LockTableEntries: 4096,
		},
	}
}

// SpecByName finds a workload spec.
func SpecByName(name string) (WorkloadSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("harness: unknown workload %q", name)
}

// Options control a sweep.
type Options struct {
	// Scale shrinks workload sizes (1.0 = paper sizes).
	Scale float64
	// Tasklets lists the x-axis points; defaults to {1,3,5,7,9,11}.
	Tasklets []int
	// Seeds lists DPU seeds; each seed is one "run" of the paper's
	// 10-run averaging. Defaults to {1, 2, 3}.
	Seeds []uint64
	// MRAMSize for the simulated DPUs (default 8 MB: every workload
	// fits and runs stay light).
	MRAMSize int
	// Parallelism bounds concurrent simulations (they are independent);
	// 0 means GOMAXPROCS.
	Parallelism int
}

func (o *Options) fill() {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if len(o.Tasklets) == 0 {
		o.Tasklets = []int{1, 3, 5, 7, 9, 11}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.MRAMSize == 0 {
		o.MRAMSize = 8 << 20
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Point is one aggregated sweep point: one workload, algorithm and
// tasklet count, averaged over seeds.
type Point struct {
	Tasklets int
	// ThroughputTxS is the mean committed-transactions-per-virtual-
	// second across seeds; Std its standard deviation.
	ThroughputTxS float64
	Std           float64
	// AbortRate is the mean abort ratio in [0,1].
	AbortRate float64
	// PhaseFrac is the mean fraction of accounted cycles per phase.
	PhaseFrac [core.NumPhases]float64
}

// Series is the per-algorithm curve of one workload panel.
type Series struct {
	Algorithm core.Algorithm
	Points    []Point
}

// Peak returns the maximum mean throughput of the series.
func (s Series) Peak() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.ThroughputTxS > best {
			best = p.ThroughputTxS
		}
	}
	return best
}

// Panel is one workload's full result (a column of Fig 4/5/9/10).
type Panel struct {
	Workload string
	MetaTier dpu.Tier
	Series   []Series
}

// Best returns the highest peak throughput across algorithms.
func (p Panel) Best() float64 {
	best := 0.0
	for _, s := range p.Series {
		if pk := s.Peak(); pk > best {
			best = pk
		}
	}
	return best
}

// stmConfig assembles the core.Config for one (spec, tier) pair,
// applying the paper's lock-table spill rule.
func stmConfig(spec WorkloadSpec, alg core.Algorithm, tier dpu.Tier) core.Config {
	cfg := core.Config{
		Algorithm:        alg,
		MetaTier:         tier,
		LockTableEntries: spec.LockTableEntries,
	}
	if tier == dpu.WRAM && spec.SpillLockTable {
		m := dpu.MRAM
		cfg.LockTableTier = &m
	}
	return cfg
}

// RunPanel sweeps every algorithm and tasklet count for one workload.
func RunPanel(spec WorkloadSpec, tier dpu.Tier, opt Options) (Panel, error) {
	opt.fill()
	type job struct {
		alg      core.Algorithm
		ai       int
		tasklets int
		ti       int
		seed     uint64
		si       int
	}
	var jobs []job
	for ai, alg := range core.Algorithms {
		for ti, n := range opt.Tasklets {
			for si, seed := range opt.Seeds {
				jobs = append(jobs, job{alg, ai, n, ti, seed, si})
			}
		}
	}
	// results[alg][tasklet][seed]
	results := make([][][]workloads.Result, len(core.Algorithms))
	for i := range results {
		results[i] = make([][]workloads.Result, len(opt.Tasklets))
		for j := range results[i] {
			results[i][j] = make([]workloads.Result, len(opt.Seeds))
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, opt.Parallelism)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			w := spec.New(opt.Scale)
			dcfg := dpu.Config{MRAMSize: opt.MRAMSize, Seed: j.seed}
			res, err := workloads.Run(w, dcfg, stmConfig(spec, j.alg, tier), j.tasklets)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			results[j.ai][j.ti][j.si] = res
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return Panel{}, firstErr
	}

	panel := Panel{Workload: spec.Name, MetaTier: tier}
	for ai, alg := range core.Algorithms {
		s := Series{Algorithm: alg}
		for ti, n := range opt.Tasklets {
			s.Points = append(s.Points, aggregate(n, results[ai][ti]))
		}
		panel.Series = append(panel.Series, s)
	}
	return panel, nil
}

// aggregate folds the per-seed results of one sweep point.
func aggregate(tasklets int, runs []workloads.Result) Point {
	p := Point{Tasklets: tasklets}
	var tps []float64
	var abort float64
	var phases [core.NumPhases]float64
	for _, r := range runs {
		tps = append(tps, r.ThroughputTxS)
		abort += r.Stats.AbortRate()
		total := float64(r.Stats.TotalCycles())
		if total > 0 {
			for ph := 0; ph < int(core.NumPhases); ph++ {
				phases[ph] += float64(r.Stats.Phases[ph]) / total
			}
		}
	}
	n := float64(len(runs))
	p.ThroughputTxS = mean(tps)
	p.Std = stddev(tps)
	p.AbortRate = abort / n
	for ph := range phases {
		p.PhaseFrac[ph] = phases[ph] / n
	}
	return p
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Figure is a named collection of panels (one of the paper's figures).
type Figure struct {
	Name   string
	Title  string
	Panels []Panel
}

// figureSpec lists which workloads a figure sweeps and in which tier.
var figureSpecs = map[string]struct {
	title     string
	workloads []string
	tier      dpu.Tier
}{
	"fig4":  {"Throughput, abort rate and time breakdown — metadata in MRAM (ArrayBench, Linked-List)", []string{"ArrayBench A", "ArrayBench B", "Linked-List LC", "Linked-List HC"}, dpu.MRAM},
	"fig5":  {"Throughput, abort rate and time breakdown — metadata in MRAM (KMeans, Labyrinth)", []string{"KMeans LC", "KMeans HC", "Labyrinth S", "Labyrinth L"}, dpu.MRAM},
	"fig9":  {"Throughput, abort rate and time breakdown — metadata in WRAM (ArrayBench, Linked-List)", []string{"ArrayBench A", "ArrayBench B", "Linked-List LC", "Linked-List HC"}, dpu.WRAM},
	"fig10": {"Throughput, abort rate and time breakdown — metadata in WRAM (KMeans)", []string{"KMeans LC", "KMeans HC"}, dpu.WRAM},
}

// RunFigure produces one of fig4, fig5, fig9, fig10.
func RunFigure(name string, opt Options) (Figure, error) {
	fs, ok := figureSpecs[name]
	if !ok {
		return Figure{}, fmt.Errorf("harness: unknown figure %q", name)
	}
	fig := Figure{Name: name, Title: fs.title}
	for _, wname := range fs.workloads {
		spec, err := SpecByName(wname)
		if err != nil {
			return Figure{}, err
		}
		if fs.tier == dpu.WRAM && !spec.SupportsWRAM {
			continue // Labyrinth: sets exceed WRAM (paper appendix A)
		}
		panel, err := RunPanel(spec, fs.tier, opt)
		if err != nil {
			return Figure{}, err
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig, nil
}

// Fig6Row is one algorithm's normalized-peak-throughput distribution
// across all workloads (lower is better; 1.0 = best for the workload).
type Fig6Row struct {
	Algorithm core.Algorithm
	Ratios    []float64 // one per workload, best/self
	Mean      float64
	Median    float64
	Max       float64
}

// Fig6 reproduces the distribution plot: for each algorithm, the ratio
// between the best STM's peak throughput and its own, across all
// workloads hosted in the given tier.
func Fig6(tier dpu.Tier, opt Options) ([]Fig6Row, error) {
	rows := make([]Fig6Row, len(core.Algorithms))
	for i, a := range core.Algorithms {
		rows[i].Algorithm = a
	}
	for _, spec := range Specs() {
		if tier == dpu.WRAM && !spec.SupportsWRAM {
			continue
		}
		panel, err := RunPanel(spec, tier, opt)
		if err != nil {
			return nil, err
		}
		best := panel.Best()
		for i, s := range panel.Series {
			pk := s.Peak()
			if pk <= 0 {
				return nil, fmt.Errorf("harness: %s/%v has zero peak throughput", spec.Name, s.Algorithm)
			}
			rows[i].Ratios = append(rows[i].Ratios, best/pk)
		}
	}
	for i := range rows {
		rows[i].Mean = mean(rows[i].Ratios)
		rows[i].Median = median(rows[i].Ratios)
		rows[i].Max = maxOf(rows[i].Ratios)
	}
	// Sort by mean ratio ascending, as the paper's panels order by
	// competitiveness.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Mean < rows[j].Mean })
	return rows, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// TierGain compares peak throughput with metadata in WRAM vs MRAM for
// one workload and algorithm (the §4.2.3 speedup study).
func TierGain(spec WorkloadSpec, alg core.Algorithm, opt Options) (float64, error) {
	opt.fill()
	run := func(tier dpu.Tier) (float64, error) {
		panel, err := RunPanel(WorkloadSpec{
			Name:             spec.Name,
			New:              spec.New,
			LockTableEntries: spec.LockTableEntries,
			SpillLockTable:   spec.SpillLockTable,
			SupportsWRAM:     spec.SupportsWRAM,
		}, tier, opt)
		if err != nil {
			return 0, err
		}
		for _, s := range panel.Series {
			if s.Algorithm == alg {
				return s.Peak(), nil
			}
		}
		return 0, fmt.Errorf("harness: algorithm %v missing from panel", alg)
	}
	m, err := run(dpu.MRAM)
	if err != nil {
		return 0, err
	}
	w, err := run(dpu.WRAM)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, fmt.Errorf("harness: zero MRAM throughput for %s", spec.Name)
	}
	return w / m, nil
}

// LocalMRAMReadLatency measures the 64-bit local MRAM read latency the
// paper quotes (231 ns), in nanoseconds.
func LocalMRAMReadLatency() float64 {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 16})
	a := d.MustAlloc(dpu.MRAM, 8, 8)
	var start, end uint64
	_, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
		start = t.Now()
		t.Load64(a)
		end = t.Now()
	}})
	if err != nil {
		panic(err)
	}
	return d.Seconds(end-start) * 1e9
}
