package energy

import (
	"math"
	"testing"
)

func TestDPUEnergy(t *testing.T) {
	if DPUEnergyJ(2) != 740 {
		t.Fatalf("DPU energy = %f", DPUEnergyJ(2))
	}
}

func TestCPUPowerTable(t *testing.T) {
	// Every multi-DPU workload has a calibrated draw below the DPU
	// system's 370 W TDP (that is why energy gains trail speedups).
	for _, w := range []string{"Labyrinth S", "Labyrinth M", "Labyrinth L", "KMeans LC", "KMeans HC", "other"} {
		p := CPUPowerWatts(w)
		if p <= 0 || p >= DPUSystemTDPWatts {
			t.Fatalf("%s draw %f implausible", w, p)
		}
	}
}

// TestGainReproducesFig8Pairs checks the calibration round-trips: with
// the paper's own speedups, the model returns the paper's energy gains.
func TestGainReproducesFig8Pairs(t *testing.T) {
	cases := []struct {
		workload string
		speedup  float64
		gain     float64
	}{
		{"Labyrinth S", 8.48, 5.00},
		{"Labyrinth M", 3.11, 1.31},
		{"Labyrinth L", 2.22, 0.76},
		{"KMeans LC", 6.03, 1.47},
		{"KMeans HC", 14.53, 3.45},
	}
	for _, c := range cases {
		// speedup = t_cpu / t_dpu; pick t_dpu = 1.
		got := Gain(c.workload, c.speedup, 1.0)
		if math.Abs(got-c.gain)/c.gain > 0.02 {
			t.Errorf("%s: gain %.3f, paper %.3f", c.workload, got, c.gain)
		}
	}
	// Labyrinth L must land below 1: the PIM run costs ~31.5% more
	// energy despite its 2.22x speedup (paper §4.3.3).
	if g := Gain("Labyrinth L", 2.22, 1.0); g >= 1 {
		t.Fatalf("Labyrinth L gain %.2f, want < 1", g)
	}
}

func TestGainDegenerate(t *testing.T) {
	if Gain("KMeans LC", 1, 0) != 0 {
		t.Fatal("zero DPU time should yield zero gain")
	}
}
