// Package energy models the energy accounting of the paper's §4.3.3.
//
// The UPMEM system has no energy counters, so the paper estimates DPU
// energy as the system's thermal design power (370 W when all DPUs are
// active, per Falevoz & Legriel 2023) multiplied by execution time. CPU
// energy in the paper is measured with RAPL; without RAPL access we
// substitute per-workload constant power draws calibrated from the
// paper's own (speedup, energy-gain) pairs in Fig 8 — so the *time*
// ratios come from this reproduction while the *power* ratios are the
// paper's measurements. The substitution is documented in DESIGN.md.
package energy

// DPUSystemTDPWatts is the thermal design power of the full UPMEM
// system with all DPUs active (paper §4.3.3, citing [16]).
const DPUSystemTDPWatts = 370.0

// CPUPowerWatts returns the calibrated CPU+DRAM power draw for one of
// the multi-DPU workloads. Values are derived from the paper's Fig 8:
// P_cpu = P_dpu × gain / speedup. The Labyrinth baselines run 4
// processes × 8 threads (near-full socket); KMeans runs 4 threads.
func CPUPowerWatts(workload string) float64 {
	switch workload {
	case "Labyrinth S":
		return 218
	case "Labyrinth M":
		return 156
	case "Labyrinth L":
		return 127
	case "KMeans LC":
		return 90
	case "KMeans HC":
		return 88
	default:
		return 95 // generic mid-size multi-threaded draw
	}
}

// DPUEnergyJ estimates the energy of a full-fleet DPU execution.
func DPUEnergyJ(seconds float64) float64 { return DPUSystemTDPWatts * seconds }

// CPUEnergyJ estimates the energy of the CPU baseline for a workload.
func CPUEnergyJ(workload string, seconds float64) float64 {
	return CPUPowerWatts(workload) * seconds
}

// Gain returns the energy gain E_cpu / E_dpu (values below 1 mean the
// PIM system consumed more energy, as the paper reports for
// Labyrinth L).
func Gain(workload string, cpuSeconds, dpuSeconds float64) float64 {
	if dpuSeconds <= 0 {
		return 0
	}
	return CPUEnergyJ(workload, cpuSeconds) / DPUEnergyJ(dpuSeconds)
}
