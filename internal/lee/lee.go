// Package lee implements the Lee routing algorithm (Lee, 1961) on a
// 3-D grid: breadth-first wavefront expansion from source to
// destination around occupied cells, followed by distance-descending
// backtracking. It is shared by the DPU port of the STAMP Labyrinth
// benchmark and its CPU baseline.
package lee

// Grid describes a 3-D routing grid; cells are indexed
// (z*Y + y)*X + x.
type Grid struct {
	X, Y, Z int
}

// Cells returns the number of cells.
func (g Grid) Cells() int { return g.X * g.Y * g.Z }

// Neighbors appends the 6-connected neighbors of idx to out and returns
// the extended slice (pass a reusable buffer to avoid allocation).
func (g Grid) Neighbors(idx int, out []int) []int {
	x := idx % g.X
	y := (idx / g.X) % g.Y
	z := idx / (g.X * g.Y)
	if x > 0 {
		out = append(out, idx-1)
	}
	if x < g.X-1 {
		out = append(out, idx+1)
	}
	if y > 0 {
		out = append(out, idx-g.X)
	}
	if y < g.Y-1 {
		out = append(out, idx+g.X)
	}
	if z > 0 {
		out = append(out, idx-g.X*g.Y)
	}
	if z < g.Z-1 {
		out = append(out, idx+g.X*g.Y)
	}
	return out
}

// Expand runs the BFS wavefront from src to dst, treating cells for
// which occupied returns true as walls, and returns a shortest path
// (inclusive of both endpoints, dst first) plus the number of cells
// visited (the paper's dominant non-transactional compute). It returns
// a nil path if dst is unreachable or either endpoint is occupied.
func Expand(g Grid, occupied func(int) bool, src, dst int) (path []int, visited int) {
	if src == dst || occupied(src) || occupied(dst) {
		return nil, 0
	}
	dist := make([]int32, g.Cells())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	var nbuf [6]int
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		visited++
		for _, nb := range g.Neighbors(cur, nbuf[:0]) {
			if dist[nb] != -1 || occupied(nb) {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == dst {
				found = true
				break
			}
			queue = append(queue, nb)
		}
	}
	if !found {
		return nil, visited
	}
	path = []int{dst}
	cur := dst
	for cur != src {
		for _, nb := range g.Neighbors(cur, nbuf[:0]) {
			if dist[nb] == dist[cur]-1 {
				cur = nb
				break
			}
		}
		path = append(path, cur)
	}
	return path, visited
}

// Connected reports whether the given cell set forms one 6-connected
// component containing from (used by path verification).
func Connected(g Grid, cells map[int]bool, from int) bool {
	if !cells[from] {
		return false
	}
	seen := map[int]bool{from: true}
	queue := []int{from}
	var nbuf [6]int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur, nbuf[:0]) {
			if cells[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(cells)
}
