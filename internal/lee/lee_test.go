package lee

import (
	"testing"
	"testing/quick"
)

func free(int) bool { return false }

func TestCellsAndNeighbors(t *testing.T) {
	g := Grid{X: 4, Y: 3, Z: 2}
	if g.Cells() != 24 {
		t.Fatalf("cells = %d", g.Cells())
	}
	// Corner cell has exactly 3 neighbors.
	if n := len(g.Neighbors(0, nil)); n != 3 {
		t.Fatalf("corner neighbors = %d", n)
	}
	// Interior cell of a 3x3x3 grid has 6.
	g3 := Grid{X: 3, Y: 3, Z: 3}
	center := (1*3+1)*3 + 1
	if n := len(g3.Neighbors(center, nil)); n != 6 {
		t.Fatalf("center neighbors = %d", n)
	}
}

func TestExpandStraightLine(t *testing.T) {
	g := Grid{X: 8, Y: 1, Z: 1}
	path, visited := Expand(g, free, 0, 7)
	if len(path) != 8 {
		t.Fatalf("path length = %d, want 8", len(path))
	}
	if path[0] != 7 || path[len(path)-1] != 0 {
		t.Fatalf("endpoints wrong: %v", path)
	}
	if visited == 0 {
		t.Fatal("visited not counted")
	}
}

func TestExpandAroundWall(t *testing.T) {
	// 5x3 grid with a vertical wall at x=2 except the top row.
	g := Grid{X: 5, Y: 3, Z: 1}
	wall := map[int]bool{2: true, 2 + 5: true} // (2,0) and (2,1)
	path, _ := Expand(g, func(i int) bool { return wall[i] }, 0, 4)
	if path == nil {
		t.Fatal("route exists around the wall")
	}
	if len(path) <= 5 {
		t.Fatalf("path must detour: length %d", len(path))
	}
	for _, c := range path {
		if wall[c] {
			t.Fatal("path crosses a wall")
		}
	}
}

func TestExpandUnreachable(t *testing.T) {
	g := Grid{X: 5, Y: 1, Z: 1}
	wall := map[int]bool{2: true}
	if path, _ := Expand(g, func(i int) bool { return wall[i] }, 0, 4); path != nil {
		t.Fatal("blocked route should return nil")
	}
	if path, _ := Expand(g, func(i int) bool { return i == 0 }, 0, 4); path != nil {
		t.Fatal("occupied source should return nil")
	}
	if path, _ := Expand(g, free, 3, 3); path != nil {
		t.Fatal("src == dst should return nil")
	}
}

// TestQuickExpandProperties: any returned path is a connected, wall-free
// shortest-candidate route with correct endpoints.
func TestQuickExpandProperties(t *testing.T) {
	g := Grid{X: 6, Y: 5, Z: 2}
	check := func(wallMask uint32, a, b uint16) bool {
		src := int(a) % g.Cells()
		dst := int(b) % g.Cells()
		occ := func(i int) bool {
			// Sparse deterministic walls (~1/4 of cells), never the
			// endpoints.
			if i == src || i == dst {
				return false
			}
			return (uint32(i*2654435761)^wallMask)%4 == 0
		}
		path, _ := Expand(g, occ, src, dst)
		if path == nil {
			return true // unreachable is a legal outcome
		}
		if path[0] != dst || path[len(path)-1] != src {
			return false
		}
		set := map[int]bool{}
		for _, c := range path {
			if occ(c) || set[c] {
				return false // wall hit or repeated cell
			}
			set[c] = true
		}
		// Consecutive path cells must be neighbors.
		for i := 1; i < len(path); i++ {
			ok := false
			for _, nb := range g.Neighbors(path[i-1], nil) {
				if nb == path[i] {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return Connected(g, set, src)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConnected(t *testing.T) {
	g := Grid{X: 4, Y: 1, Z: 1}
	if !Connected(g, map[int]bool{0: true, 1: true, 2: true}, 0) {
		t.Fatal("contiguous run should be connected")
	}
	if Connected(g, map[int]bool{0: true, 2: true}, 0) {
		t.Fatal("gap should disconnect")
	}
	if Connected(g, map[int]bool{1: true}, 0) {
		t.Fatal("from outside the set should be false")
	}
}
