package workload

import (
	"fmt"
	"math"

	"pimstm/internal/host"
)

// AuctionConfig parameterizes the RUBiS-style auction workload.
type AuctionConfig struct {
	// Txns is the trace length in requests (required, ≥ 1).
	Txns int
	// Rate is the mean arrival rate in requests per modeled second
	// (required, > 0).
	Rate float64
	// Seed makes the trace reproducible.
	Seed uint64
	// Bidders is the wallet population (default 32).
	Bidders int
	// Items is the number of concurrently hot auctions (default 8).
	Items int
	// InitialFunds is each wallet's starting balance (default 60);
	// eager bidders run dry, which is the natural abort path.
	InitialFunds uint64
	// BidFrac is the fraction of requests that bid; the rest view
	// (default 0.25 — the view-heavy read mix that rewards replicating
	// the hot items).
	BidFrac float64
	// MaxBid bounds a single bid amount (default 20; bids draw
	// 1..MaxBid).
	MaxBid uint64
	// ItemZipfS is the item-popularity skew (0 = uniform) — bids and
	// views concentrate on the same hot auctions.
	ItemZipfS float64
}

// Auction generates bid/view traffic over a three-region key layout:
// wallets in [0, B), per-item escrow totals in [B, B+I), per-item bid
// counters in [B+I, B+2I). A bid is one atomic transaction — a guarded
// OpSub on the bidder's wallet, an OpAdd of the amount on the item's
// escrow, and an OpAdd(+1) on its bid counter — so funds conservation
// is exact whatever commits:
//
//	Σ wallets + Σ escrow == Bidders × InitialFunds.
//
// A view reads the hot item's escrow and bid counter, the read-heavy
// side of the mix.
type Auction struct {
	cfg AuctionConfig

	trace []host.TimedTxn
}

// NewAuction validates the config and applies defaults.
func NewAuction(cfg AuctionConfig) (*Auction, error) {
	if cfg.Bidders == 0 {
		cfg.Bidders = 32
	}
	if cfg.Items == 0 {
		cfg.Items = 8
	}
	if cfg.InitialFunds == 0 {
		cfg.InitialFunds = 60
	}
	if cfg.BidFrac == 0 {
		cfg.BidFrac = 0.25
	}
	if cfg.MaxBid == 0 {
		cfg.MaxBid = 20
	}
	if cfg.Txns < 1 {
		return nil, fmt.Errorf("workload: auction needs at least one request (Txns = %d)", cfg.Txns)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: auction needs a positive arrival rate (Rate = %g)", cfg.Rate)
	}
	if cfg.Bidders < 1 || cfg.Items < 1 {
		return nil, fmt.Errorf("workload: auction needs positive Bidders/Items (%d/%d)", cfg.Bidders, cfg.Items)
	}
	if cfg.BidFrac < 0 || cfg.BidFrac > 1 {
		return nil, fmt.Errorf("workload: bid fraction %g outside [0, 1]", cfg.BidFrac)
	}
	if cfg.ItemZipfS < 0 {
		return nil, fmt.Errorf("workload: negative item skew %g", cfg.ItemZipfS)
	}
	return &Auction{cfg: cfg}, nil
}

// Key layout helpers.
func (w *Auction) walletKey(b int) uint64   { return uint64(b) }
func (w *Auction) escrowKey(i int) uint64   { return uint64(w.cfg.Bidders + i) }
func (w *Auction) bidCountKey(i int) uint64 { return uint64(w.cfg.Bidders + w.cfg.Items + i) }

// Name implements Workload.
func (w *Auction) Name() string { return "auction" }

// Preload implements Workload: funded wallets, zeroed escrow and bid
// counters.
func (w *Auction) Preload() []host.Op {
	load := make([]host.Op, 0, w.cfg.Bidders+2*w.cfg.Items)
	for b := 0; b < w.cfg.Bidders; b++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.walletKey(b), Value: w.cfg.InitialFunds})
	}
	for i := 0; i < w.cfg.Items; i++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.escrowKey(i), Value: 0})
	}
	for i := 0; i < w.cfg.Items; i++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.bidCountKey(i), Value: 0})
	}
	return load
}

// Generate implements Workload. PRNG draw order per request: arrival,
// bid coin, item rank, then (bids only) bidder and amount — fixed,
// since the trace bytes are part of the artifact contract.
func (w *Auction) Generate() ([]host.TimedTxn, error) {
	z, err := host.NewZipf(w.cfg.Items, w.cfg.ItemZipfS)
	if err != nil {
		return nil, err
	}
	rng := host.Rand64(w.cfg.Seed*0x9E3779B97F4A7C15 + 0x8CB92BA72F3D8DD7)
	out := make([]host.TimedTxn, w.cfg.Txns)
	clock := 0.0
	for n := range out {
		clock += -math.Log(1-rng.Float()) / w.cfg.Rate
		bid := rng.Float() < w.cfg.BidFrac
		item := z.Rank(rng.Float())
		if !bid {
			out[n] = host.TimedTxn{Txn: host.Txn{Ops: []host.Op{
				{Kind: host.OpGet, Key: w.escrowKey(item)},
				{Kind: host.OpGet, Key: w.bidCountKey(item)},
			}}, Arrival: clock}
			continue
		}
		bidder := int(rng.Next() % uint64(w.cfg.Bidders))
		amt := 1 + rng.Next()%w.cfg.MaxBid
		out[n] = host.TimedTxn{Txn: host.Txn{Ops: []host.Op{
			{Kind: host.OpSub, Key: w.walletKey(bidder), Value: amt},
			{Kind: host.OpAdd, Key: w.escrowKey(item), Value: amt},
			{Kind: host.OpAdd, Key: w.bidCountKey(item), Value: 1},
		}}, Arrival: clock}
	}
	w.trace = out
	return out, nil
}

// Check implements Workload. Order-independent given the commit set:
// global funds conservation, exact per-wallet balances (initial minus
// committed bids), exact per-item escrow and bid counts, and views
// must always commit and hit (nothing guards a read, and the preload
// covers every key).
func (w *Auction) Check(get func(uint64) (uint64, bool), results []host.TxnResult) error {
	if w.trace == nil {
		return fmt.Errorf("workload: auction Check before Generate")
	}
	if len(results) != len(w.trace) {
		return fmt.Errorf("workload: auction got %d results for %d requests", len(results), len(w.trace))
	}
	spent := make([]uint64, w.cfg.Bidders)
	escrow := make([]uint64, w.cfg.Items)
	bids := make([]uint64, w.cfg.Items)
	for n, t := range w.trace {
		r := results[n]
		if r.Err != nil {
			return fmt.Errorf("workload: request %d errored: %w", n, r.Err)
		}
		isBid := t.Txn.Ops[0].Kind == host.OpSub
		if !isBid {
			if !r.Committed {
				return fmt.Errorf("workload: view %d aborted", n)
			}
			for j := range r.Results {
				if !r.Results[j].OK {
					return fmt.Errorf("workload: view %d op %d missed a preloaded key", n, j)
				}
			}
			continue
		}
		if !r.Committed {
			continue // wallet ran dry — the legitimate abort path
		}
		sub := t.Txn.Ops[0]
		spent[sub.Key] += sub.Value
		item := int(t.Txn.Ops[1].Key - w.escrowKey(0))
		escrow[item] += sub.Value
		bids[item]++
	}
	var wallets, held uint64
	for b := 0; b < w.cfg.Bidders; b++ {
		v, ok := get(w.walletKey(b))
		if !ok {
			return fmt.Errorf("workload: wallet %d vanished", b)
		}
		if v != w.cfg.InitialFunds-spent[b] {
			return fmt.Errorf("workload: wallet %d = %d, want %d - committed bids %d",
				b, v, w.cfg.InitialFunds, spent[b])
		}
		wallets += v
	}
	for i := 0; i < w.cfg.Items; i++ {
		e, ok1 := get(w.escrowKey(i))
		c, ok2 := get(w.bidCountKey(i))
		if !ok1 || !ok2 {
			return fmt.Errorf("workload: item %d lost its escrow or bid counter (%v/%v)", i, ok1, ok2)
		}
		if e != escrow[i] || c != bids[i] {
			return fmt.Errorf("workload: item %d escrow/bids = %d/%d, committed %d/%d", i, e, c, escrow[i], bids[i])
		}
		held += e
	}
	if want := uint64(w.cfg.Bidders) * w.cfg.InitialFunds; wallets+held != want {
		return fmt.Errorf("workload: funds leaked: Σwallets %d + Σescrow %d != %d", wallets, held, want)
	}
	return nil
}
