package workload

import (
	"reflect"
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// serveWorkload runs one workload through the serving harness and
// returns the result with per-transaction outcomes kept.
func serveWorkload(t *testing.T, w Workload, cfg host.ServeConfig) host.ServeResult {
	t.Helper()
	trace, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = trace
	cfg.Preload = w.Preload()
	cfg.KeepResults = true
	res, err := host.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkAgainstStore(t *testing.T, w Workload, res host.ServeResult) {
	t.Helper()
	if err := w.Check(res.Store.Get, res.Results); err != nil {
		t.Fatal(err)
	}
}

// TestKVMatchesGenerateTraffic pins the KV wrapper to the historical
// generator: the serve/txnserve artifacts are built on
// host.GenerateTraffic, so the wrapper must reproduce its trace
// byte-for-byte and its preload must equal Serve's identity fill.
func TestKVMatchesGenerateTraffic(t *testing.T) {
	cfgs := []host.TrafficConfig{
		{Ops: 400, Rate: 2e5, ReadPct: 90, Keyspace: 128, ZipfS: 1.1, Seed: 42},
		{Ops: 300, Rate: 1e5, ReadPct: 50, Keyspace: 64, Seed: 7, TxnSize: 3, CrossDPU: 0.4, DPUs: 4},
		{Ops: 200, Rate: 2e5, ReadPct: 50, Keyspace: 64, Seed: 3, HotKeys: 4, HotWriteFrac: 0.5},
	}
	for _, cfg := range cfgs {
		want, err := host.GenerateTraffic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kv := NewKV(cfg)
		got, err := kv.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kv wrapper diverged from GenerateTraffic for %+v", cfg)
		}
		load := kv.Preload()
		if len(load) != cfg.Keyspace {
			t.Fatalf("kv preload %d ops, keyspace %d", len(load), cfg.Keyspace)
		}
		for k, op := range load {
			if op.Kind != host.OpPut || op.Key != uint64(k) || op.Value != uint64(k) {
				t.Fatalf("kv preload[%d] = %+v, want identity put", k, op)
			}
		}
	}
}

// TestKVServeInvariant runs the wrapper end to end: key-set
// conservation and hot-counter totals hold, and no KV transaction may
// abort.
func TestKVServeInvariant(t *testing.T) {
	kv := NewKV(host.TrafficConfig{
		Ops: 500, Rate: 2e5, ReadPct: 70, Keyspace: 128, ZipfS: 1.1, Seed: 9,
		HotKeys: 4, HotWriteFrac: 0.4,
	})
	res := serveWorkload(t, kv, host.ServeConfig{
		Map:    host.PartitionedMapConfig{DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec}},
		Submit: host.SubmitterConfig{MaxBatch: 48},
	})
	if res.Errors != 0 || res.Aborted != 0 {
		t.Fatalf("kv serve: %d errors, %d aborts", res.Errors, res.Aborted)
	}
	checkAgainstStore(t, kv, res)
}

// TestNewOrderInvariant drives the order-entry workload until popular
// items run dry: per-item conservation must hold through the aborts,
// the guard-abort accounting must match the per-transaction outcomes
// exactly (the satellite-2 plumbing), and the invariant must keep
// holding when the split-key policy is carving up the district
// counters mid-run.
func TestNewOrderInvariant(t *testing.T) {
	base := NewOrderConfig{
		Txns: 600, Rate: 2e5, Seed: 12,
		Districts: 4, Items: 32, InitialStock: 40, MaxLines: 3, ItemZipfS: 1.1,
	}
	scenarios := []struct {
		name string
		cfg  func() host.ServeConfig
	}{
		{"static", func() host.ServeConfig {
			return host.ServeConfig{
				Map:    host.PartitionedMapConfig{DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec}},
				Submit: host.SubmitterConfig{MaxBatch: 48},
			}
		}},
		{"split", func() host.ServeConfig {
			return host.ServeConfig{
				Map: host.PartitionedMapConfig{
					DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
					Placement: host.NewDirectory(4),
				},
				Submit: host.SubmitterConfig{MaxBatch: 48},
				Rebalance: &host.RebalancerConfig{
					WindowBatches: 3, TopK: 4, MinKeyOps: 8, SplitMinAddShare: 0.5,
				},
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			w, err := NewNewOrder(base)
			if err != nil {
				t.Fatal(err)
			}
			res := serveWorkload(t, w, sc.cfg())
			if res.Errors != 0 {
				t.Fatalf("%d orders errored", res.Errors)
			}
			if res.Aborted == 0 {
				t.Fatal("no order aborted; the stock-dry path was not exercised")
			}
			if res.Stats.GuardAborts != res.Aborted {
				t.Fatalf("GuardAborts %d != aborted transactions %d", res.Stats.GuardAborts, res.Aborted)
			}
			checkAgainstStore(t, w, res)
		})
	}
}

// TestAuctionInvariant drives the bid/view mix until eager wallets run
// dry: funds conservation must hold through the aborts and every view
// must hit.
func TestAuctionInvariant(t *testing.T) {
	w, err := NewAuction(AuctionConfig{
		Txns: 600, Rate: 2e5, Seed: 21,
		Bidders: 24, Items: 8, InitialFunds: 50, BidFrac: 0.4, MaxBid: 20, ItemZipfS: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := serveWorkload(t, w, host.ServeConfig{
		Map:    host.PartitionedMapConfig{DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec}},
		Submit: host.SubmitterConfig{MaxBatch: 48},
	})
	if res.Errors != 0 {
		t.Fatalf("%d requests errored", res.Errors)
	}
	if res.Aborted == 0 {
		t.Fatal("no bid aborted; the wallet-dry path was not exercised")
	}
	if res.Stats.GuardAborts != res.Aborted {
		t.Fatalf("GuardAborts %d != aborted transactions %d", res.Stats.GuardAborts, res.Aborted)
	}
	checkAgainstStore(t, w, res)
}

// TestWorkloadGenerateDeterministic pins both application generators:
// same config, same trace.
func TestWorkloadGenerateDeterministic(t *testing.T) {
	no := func() []host.TimedTxn {
		w, err := NewNewOrder(NewOrderConfig{Txns: 100, Rate: 1e5, Seed: 5, ItemZipfS: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		trace, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if !reflect.DeepEqual(no(), no()) {
		t.Fatal("neworder trace is nondeterministic")
	}
	au := func() []host.TimedTxn {
		w, err := NewAuction(AuctionConfig{Txns: 100, Rate: 1e5, Seed: 5, ItemZipfS: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		trace, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	if !reflect.DeepEqual(au(), au()) {
		t.Fatal("auction trace is nondeterministic")
	}
}

// TestCheckersCatchCorruption proves the invariant checkers are not
// vacuous: perturbing one record after the run must fail the check.
func TestCheckersCatchCorruption(t *testing.T) {
	w, err := NewNewOrder(NewOrderConfig{
		Txns: 200, Rate: 2e5, Seed: 3, Districts: 2, Items: 16, InitialStock: 30, ItemZipfS: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := serveWorkload(t, w, host.ServeConfig{
		Map:    host.PartitionedMapConfig{DPUs: 2, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec}},
		Submit: host.SubmitterConfig{MaxBatch: 32},
	})
	checkAgainstStore(t, w, res)
	// Siphon one unit of stock behind the workload's back.
	if _, err := res.Store.ApplyBatch([]host.Op{{Kind: host.OpAdd, Key: w.stockKey(0), Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(res.Store.Get, res.Results); err == nil {
		t.Fatal("checker accepted corrupted stock")
	}
}
