package workload

import (
	"reflect"
	"strconv"
	"testing"
)

// appsLikeMatrix mirrors the apps benchmark's shape: enough axes for
// interactions to matter and predicates that carve out the cells the
// harness cannot serve.
func appsLikeMatrix(minCells int) Matrix {
	atLeast := func(c Cell, axis string, n int) bool {
		v, _ := strconv.Atoi(c[axis])
		return v >= n
	}
	return Matrix{
		Axes: []Axis{
			{Name: "workload", Values: []string{"kv", "neworder", "auction"}},
			{Name: "dpus", Values: []string{"1", "4", "8"}},
			{Name: "zipf", Values: []string{"0", "1.1"}},
			{Name: "txn", Values: []string{"1", "3"}},
			{Name: "cross", Values: []string{"0", "0.5"}},
			{Name: "sched", Values: []string{"fifo", "lane"}},
			{Name: "place", Values: []string{"static", "migrate", "split"}},
			{Name: "stm", Values: []string{"norec", "tinyetlwb"}},
		},
		Predicates: []Predicate{
			{Name: "txn-shaping-is-kv-only", Reject: func(c Cell) bool {
				return c["txn"] != "1" && c["workload"] != "kv"
			}},
			{Name: "cross-needs-multiop-multidpu-kv", Reject: func(c Cell) bool {
				return c["cross"] != "0" && (c["workload"] != "kv" || c["txn"] == "1" || !atLeast(c, "dpus", 2))
			}},
			{Name: "placement-needs-multidpu", Reject: func(c Cell) bool {
				return c["place"] != "static" && !atLeast(c, "dpus", 2)
			}},
			{Name: "split-needs-rmw-traffic", Reject: func(c Cell) bool {
				return c["place"] == "split" && c["workload"] == "kv"
			}},
		},
		MinCells: minCells,
	}
}

func TestMatrixValidation(t *testing.T) {
	bad := []Matrix{
		{},
		{Axes: []Axis{{Name: "a"}}},
		{Axes: []Axis{{Name: "a", Values: []string{"x", "x"}}}},
		{Axes: []Axis{{Name: "a", Values: []string{"x"}}, {Name: "a", Values: []string{"y"}}}},
	}
	for i, m := range bad {
		if _, _, err := m.Expand(1); err == nil {
			t.Fatalf("matrix %d accepted: %+v", i, m)
		}
	}
}

// TestMatrixPredicatesExclude pins the exclusion semantics: no emitted
// cell violates a predicate, and the coverage ledger balances —
// raw == valid + Σ excluded.
func TestMatrixPredicatesExclude(t *testing.T) {
	m := appsLikeMatrix(32)
	cells, cov, err := m.Expand(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		for _, p := range m.Predicates {
			if p.Reject(c) {
				t.Fatalf("cell %s violates predicate %s", m.CellID(c), p.Name)
			}
		}
	}
	excluded := 0
	for _, n := range cov.Excluded {
		excluded += n
	}
	if cov.RawCells != cov.ValidCells+excluded {
		t.Fatalf("coverage ledger off: raw %d != valid %d + excluded %d", cov.RawCells, cov.ValidCells, excluded)
	}
	// The concrete rules the matrix exists to enforce.
	if cov.Excluded["cross-needs-multiop-multidpu-kv"] == 0 {
		t.Fatal("the cross-DPU exclusion never fired")
	}
	if cov.Excluded["split-needs-rmw-traffic"] == 0 {
		t.Fatal("the split-on-read-only exclusion never fired")
	}
}

// TestMatrixDeterministicPerSeed pins seeded expansion: identical per
// seed, cell order stable, and the selection honors the MinCells
// floor.
func TestMatrixDeterministicPerSeed(t *testing.T) {
	m := appsLikeMatrix(32)
	a, covA, err := m.Expand(11)
	if err != nil {
		t.Fatal(err)
	}
	b, covB, err := m.Expand(11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(covA, covB) {
		t.Fatal("same-seed expansions diverged")
	}
	if len(a) < 32 {
		t.Fatalf("selected %d cells, floor is 32", len(a))
	}
	if covA.Selected != len(a) {
		t.Fatalf("coverage says %d cells, got %d", covA.Selected, len(a))
	}
	if covA.PairsCovered != covA.PairsTotal {
		t.Fatalf("pairwise cover incomplete: %d of %d", covA.PairsCovered, covA.PairsTotal)
	}
	// A different seed still yields a valid complete cover.
	_, covC, err := m.Expand(12)
	if err != nil {
		t.Fatal(err)
	}
	if covC.PairsCovered != covC.PairsTotal {
		t.Fatalf("seed 12 cover incomplete: %d of %d", covC.PairsCovered, covC.PairsTotal)
	}
}

// TestMatrixAxisCompleteness pins the declaration contract from both
// sides: every declared axis value appears in at least one emitted
// cell, and a predicate that starves a value outright is an error,
// not a silent gap.
func TestMatrixAxisCompleteness(t *testing.T) {
	m := appsLikeMatrix(32)
	cells, _, err := m.Expand(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, ax := range m.Axes {
		for _, v := range ax.Values {
			found := false
			for _, c := range cells {
				if c[ax.Name] == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("axis %s=%s appears in no emitted cell", ax.Name, v)
			}
		}
	}
	starved := m
	starved.Predicates = append(starved.Predicates, Predicate{
		Name:   "no-auction",
		Reject: func(c Cell) bool { return c["workload"] == "auction" },
	})
	if _, _, err := starved.Expand(3); err == nil {
		t.Fatal("expansion accepted a fully starved axis value")
	}
}
