package workload

import (
	"fmt"
	"math"

	"pimstm/internal/host"
)

// NewOrderConfig parameterizes the TPC-C-style order-entry workload.
type NewOrderConfig struct {
	// Txns is the trace length in orders (required, ≥ 1).
	Txns int
	// Rate is the mean arrival rate in orders per modeled second
	// (required, > 0); inter-arrivals are exponential.
	Rate float64
	// Seed makes the trace reproducible.
	Seed uint64
	// Districts is the number of district counters (default 4) — the
	// hot add-only keys every order increments, the traffic shape that
	// lights up the Rebalancer's split-key policy.
	Districts int
	// Items is the catalog size (default 64).
	Items int
	// InitialStock is each item's starting stock level (default 50);
	// popular items run dry, which is the natural abort path.
	InitialStock uint64
	// MaxLines bounds the order lines per transaction (default 3; each
	// order draws 1..MaxLines lines).
	MaxLines int
	// ItemZipfS is the item-popularity skew (0 = uniform).
	ItemZipfS float64
}

// NewOrder generates order-entry transactions over a three-region key
// layout: district counters in [0, D), stock levels in [D, D+I),
// per-item ordered totals in [D+I, D+2I). Each order is one atomic
// transaction — an OpAdd(+1) on its district and, per line, a guarded
// OpSub on the item's stock paired with an OpAdd of the same quantity
// on the item's ordered total. Stock underflow aborts the whole order,
// so conservation is per-item exact whatever commits:
//
//	stock_i + ordered_i == InitialStock, for every item i.
type NewOrder struct {
	cfg NewOrderConfig

	trace []host.TimedTxn
}

// NewNewOrder validates the config and applies defaults.
func NewNewOrder(cfg NewOrderConfig) (*NewOrder, error) {
	if cfg.Districts == 0 {
		cfg.Districts = 4
	}
	if cfg.Items == 0 {
		cfg.Items = 64
	}
	if cfg.InitialStock == 0 {
		cfg.InitialStock = 50
	}
	if cfg.MaxLines == 0 {
		cfg.MaxLines = 3
	}
	if cfg.Txns < 1 {
		return nil, fmt.Errorf("workload: neworder needs at least one order (Txns = %d)", cfg.Txns)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: neworder needs a positive arrival rate (Rate = %g)", cfg.Rate)
	}
	if cfg.Districts < 1 || cfg.Items < 1 || cfg.MaxLines < 1 {
		return nil, fmt.Errorf("workload: neworder needs positive Districts/Items/MaxLines (%d/%d/%d)",
			cfg.Districts, cfg.Items, cfg.MaxLines)
	}
	if cfg.ItemZipfS < 0 {
		return nil, fmt.Errorf("workload: negative item skew %g", cfg.ItemZipfS)
	}
	return &NewOrder{cfg: cfg}, nil
}

// Key layout helpers.
func (w *NewOrder) districtKey(d int) uint64 { return uint64(d) }
func (w *NewOrder) stockKey(i int) uint64    { return uint64(w.cfg.Districts + i) }
func (w *NewOrder) orderedKey(i int) uint64  { return uint64(w.cfg.Districts + w.cfg.Items + i) }

// Name implements Workload.
func (w *NewOrder) Name() string { return "neworder" }

// Preload implements Workload: zeroed districts and ordered totals,
// stocked items.
func (w *NewOrder) Preload() []host.Op {
	load := make([]host.Op, 0, w.cfg.Districts+2*w.cfg.Items)
	for d := 0; d < w.cfg.Districts; d++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.districtKey(d), Value: 0})
	}
	for i := 0; i < w.cfg.Items; i++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.stockKey(i), Value: w.cfg.InitialStock})
	}
	for i := 0; i < w.cfg.Items; i++ {
		load = append(load, host.Op{Kind: host.OpPut, Key: w.orderedKey(i), Value: 0})
	}
	return load
}

// Generate implements Workload. PRNG draw order per order: arrival,
// district, line count, then per line item rank and quantity — fixed,
// since the trace bytes are part of the artifact contract.
func (w *NewOrder) Generate() ([]host.TimedTxn, error) {
	z, err := host.NewZipf(w.cfg.Items, w.cfg.ItemZipfS)
	if err != nil {
		return nil, err
	}
	rng := host.Rand64(w.cfg.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	out := make([]host.TimedTxn, w.cfg.Txns)
	clock := 0.0
	for n := range out {
		clock += -math.Log(1-rng.Float()) / w.cfg.Rate
		d := int(rng.Next() % uint64(w.cfg.Districts))
		lines := 1 + int(rng.Next()%uint64(w.cfg.MaxLines))
		ops := make([]host.Op, 0, 1+2*lines)
		ops = append(ops, host.Op{Kind: host.OpAdd, Key: w.districtKey(d), Value: 1})
		for l := 0; l < lines; l++ {
			item := z.Rank(rng.Float())
			qty := 1 + rng.Next()%3
			ops = append(ops,
				host.Op{Kind: host.OpSub, Key: w.stockKey(item), Value: qty},
				host.Op{Kind: host.OpAdd, Key: w.orderedKey(item), Value: qty},
			)
		}
		out[n] = host.TimedTxn{Txn: host.Txn{Ops: ops}, Arrival: clock}
	}
	w.trace = out
	return out, nil
}

// Check implements Workload. Every check is order-independent, so it
// holds under any batch-formation policy: per-item conservation
// (stock + ordered == InitialStock), exact per-item totals given the
// commit set, and district counters equal to the committed orders they
// admitted. Aborts are legitimate (stock ran dry) but must never leak
// a partial order.
func (w *NewOrder) Check(get func(uint64) (uint64, bool), results []host.TxnResult) error {
	if w.trace == nil {
		return fmt.Errorf("workload: neworder Check before Generate")
	}
	if len(results) != len(w.trace) {
		return fmt.Errorf("workload: neworder got %d results for %d orders", len(results), len(w.trace))
	}
	ordered := make([]uint64, w.cfg.Items)
	perDistrict := make([]uint64, w.cfg.Districts)
	for n, t := range w.trace {
		r := results[n]
		if r.Err != nil {
			return fmt.Errorf("workload: order %d errored: %w", n, r.Err)
		}
		if !r.Committed {
			continue
		}
		for _, op := range t.Txn.Ops {
			switch {
			case op.Kind == host.OpAdd && op.Key < uint64(w.cfg.Districts):
				perDistrict[op.Key]++
			case op.Kind == host.OpAdd:
				ordered[op.Key-w.orderedKey(0)] += op.Value
			}
		}
	}
	for i := 0; i < w.cfg.Items; i++ {
		stock, ok1 := get(w.stockKey(i))
		total, ok2 := get(w.orderedKey(i))
		if !ok1 || !ok2 {
			return fmt.Errorf("workload: item %d lost its stock or ordered record (%v/%v)", i, ok1, ok2)
		}
		if stock+total != w.cfg.InitialStock {
			return fmt.Errorf("workload: item %d broke conservation: stock %d + ordered %d != initial %d",
				i, stock, total, w.cfg.InitialStock)
		}
		if total != ordered[i] {
			return fmt.Errorf("workload: item %d ordered total %d, committed lines sum to %d", i, total, ordered[i])
		}
	}
	for d := 0; d < w.cfg.Districts; d++ {
		v, ok := get(w.districtKey(d))
		if !ok || v != perDistrict[d] {
			return fmt.Errorf("workload: district %d counter = %d,%v want %d committed orders", d, v, ok, perDistrict[d])
		}
	}
	return nil
}
