package workload

import (
	"fmt"
	"sort"
	"strings"

	"pimstm/internal/host"
)

// This file is the scenario-matrix generator: a benchmark declares its
// axes (workload, fleet size, skew, …), the value domain of each, and
// the exclusion predicates that carve out meaningless combinations
// (cross-DPU fractions on a one-DPU fleet, the split policy on
// read-only traffic). Expand turns that declaration into a covering
// cell set — every axis value and every achievable pair of axis values
// appears in at least one selected cell — so the apps benchmark sweeps
// the interaction space without paying the full cartesian product.

// Axis is one benchmark dimension and its value domain, in declared
// (and therefore artifact) order.
type Axis struct {
	Name   string
	Values []string
}

// Cell is one concrete scenario: axis name → chosen value.
type Cell map[string]string

// Predicate names one exclusion rule. Reject returns true for cells
// the rule forbids; the first rejecting predicate (declared order)
// claims the cell in the coverage accounting.
type Predicate struct {
	Name   string
	Reject func(Cell) bool
}

// Matrix is the full declaration Expand consumes.
type Matrix struct {
	Axes       []Axis
	Predicates []Predicate
	// MinCells pads the covering set with extra valid cells (seeded
	// choice) up to this floor; 0 keeps the bare pairwise cover.
	MinCells int
}

// Coverage summarizes one expansion — the artifact embeds it so a
// reader can audit what the sweep did and did not reach.
type Coverage struct {
	// RawCells is the full cartesian product size; ValidCells survives
	// the predicates; Selected is the emitted cell count.
	RawCells, ValidCells, Selected int
	// Excluded counts rejected cells per predicate name.
	Excluded map[string]int
	// PairsTotal is the number of achievable axis-value pairs (pairs no
	// valid cell exhibits are impossible by predicate and excluded);
	// PairsCovered is how many the selected cells exhibit — equal by
	// construction, kept separate so the artifact states it.
	PairsTotal, PairsCovered int
	// AxisValues echoes the declared domains, axis order preserved.
	AxisValues map[string][]string
}

// CellID renders a cell as "axis=value,…" in declared axis order — the
// stable identity used for artifact rows and sorting.
func (m Matrix) CellID(c Cell) string {
	parts := make([]string, len(m.Axes))
	for i, ax := range m.Axes {
		parts[i] = ax.Name + "=" + c[ax.Name]
	}
	return strings.Join(parts, ",")
}

func (m Matrix) validate() error {
	if len(m.Axes) == 0 {
		return fmt.Errorf("workload: matrix needs at least one axis")
	}
	seen := map[string]bool{}
	for _, ax := range m.Axes {
		if ax.Name == "" || seen[ax.Name] {
			return fmt.Errorf("workload: axis name %q empty or duplicated", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("workload: axis %q has no values", ax.Name)
		}
		vals := map[string]bool{}
		for _, v := range ax.Values {
			if v == "" || vals[v] {
				return fmt.Errorf("workload: axis %q value %q empty or duplicated", ax.Name, v)
			}
			vals[v] = true
		}
	}
	return nil
}

// pairKey identifies one (axis=value, axis=value) combination; axis
// indices are ordered, so the key is canonical.
type pairKey struct {
	axA, axB   int
	valA, valB string
}

func (m Matrix) cellPairs(c Cell) []pairKey {
	var out []pairKey
	for a := 0; a < len(m.Axes); a++ {
		for b := a + 1; b < len(m.Axes); b++ {
			out = append(out, pairKey{a, b, c[m.Axes[a].Name], c[m.Axes[b].Name]})
		}
	}
	return out
}

// Expand enumerates the cartesian product, applies the predicates,
// verifies every declared axis value survives in at least one valid
// cell (a domain value no cell can use is a declaration bug, not a
// sweep gap), and greedily selects a pairwise-covering subset, padded
// to MinCells. Deterministic per seed: the same declaration and seed
// always emit the same cells in the same order.
func (m Matrix) Expand(seed uint64) ([]Cell, Coverage, error) {
	if err := m.validate(); err != nil {
		return nil, Coverage{}, err
	}
	cov := Coverage{Excluded: map[string]int{}, AxisValues: map[string][]string{}}
	for _, ax := range m.Axes {
		cov.AxisValues[ax.Name] = append([]string(nil), ax.Values...)
	}

	// Odometer enumeration, first axis slowest — the raw order is part
	// of the determinism contract.
	var valid []Cell
	idx := make([]int, len(m.Axes))
	for {
		c := Cell{}
		for i, ax := range m.Axes {
			c[ax.Name] = ax.Values[idx[i]]
		}
		cov.RawCells++
		rejected := false
		for _, p := range m.Predicates {
			if p.Reject(c) {
				cov.Excluded[p.Name]++
				rejected = true
				break
			}
		}
		if !rejected {
			valid = append(valid, c)
		}
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(m.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	cov.ValidCells = len(valid)
	if len(valid) == 0 {
		return nil, Coverage{}, fmt.Errorf("workload: predicates rejected every cell")
	}

	// Axis-value completeness: a declared value no valid cell carries
	// can never be benchmarked — fail loudly at declaration time.
	for _, ax := range m.Axes {
		for _, v := range ax.Values {
			found := false
			for _, c := range valid {
				if c[ax.Name] == v {
					found = true
					break
				}
			}
			if !found {
				return nil, Coverage{}, fmt.Errorf("workload: axis %s=%s appears in no valid cell (predicates exclude it entirely)", ax.Name, v)
			}
		}
	}

	// The achievable pair universe.
	uncovered := map[pairKey]bool{}
	for _, c := range valid {
		for _, p := range m.cellPairs(c) {
			uncovered[p] = true
		}
	}
	cov.PairsTotal = len(uncovered)

	// Seeded scan order, then greedy max-gain selection with
	// first-in-order tie-breaking — deterministic per seed.
	order := make([]int, len(valid))
	for i := range order {
		order[i] = i
	}
	rng := host.Rand64(seed*0x9E3779B97F4A7C15 + 0xB5297A4D3F84D5B5)
	for i := len(order) - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	selected := map[int]bool{}
	for len(uncovered) > 0 {
		best, bestGain := -1, 0
		for _, i := range order {
			if selected[i] {
				continue
			}
			gain := 0
			for _, p := range m.cellPairs(valid[i]) {
				if uncovered[p] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // unreachable: every uncovered pair lives in some unselected cell
		}
		selected[best] = true
		for _, p := range m.cellPairs(valid[best]) {
			delete(uncovered, p)
		}
	}
	cov.PairsCovered = cov.PairsTotal - len(uncovered)

	// Pad with seeded extras up to the floor.
	for _, i := range order {
		if len(selected) >= m.MinCells || len(selected) == len(valid) {
			break
		}
		selected[i] = true
	}

	out := make([]Cell, 0, len(selected))
	for i := range selected {
		out = append(out, valid[i])
	}
	sort.Slice(out, func(a, b int) bool { return m.CellID(out[a]) < m.CellID(out[b]) })
	cov.Selected = len(out)
	return out, cov, nil
}
