// Package workload is the application-workload subsystem: deterministic
// transaction streams shaped like real applications (key-value serving,
// TPC-C-style order entry, RUBiS-style auctions), each paired with a
// closed-form invariant its generator guarantees and a checker that
// proves the served store still satisfies it. The streams plug into the
// serving harness through host.ServeConfig's Trace/Preload/KeepResults
// hooks, and the scenario matrix in scenario.go expands axis
// declarations into the covering cell set the apps benchmark runs.
//
// Every workload is a pure function of its config: same seed, same
// trace, same preload — so any invariant violation is reproducible from
// the cell's axis tags alone.
package workload

import (
	"fmt"

	"pimstm/internal/host"
)

// Workload is one deterministic application stream. Generate must be
// called before Check: the checker replays the generated trace against
// the per-transaction outcomes, so the two must describe the same run.
type Workload interface {
	// Name tags the workload in cell IDs and artifacts.
	Name() string
	// Preload is the initial state, applied before the serving clock
	// baseline (host.ServeConfig.Preload).
	Preload() []host.Op
	// Generate builds the trace (host.ServeConfig.Trace). Deterministic
	// per config; the trace is retained for Check.
	Generate() ([]host.TimedTxn, error)
	// Check proves the workload invariant against the served store
	// (get is the store's point lookup — logical values for split
	// keys) and the per-transaction outcomes in trace order.
	Check(get func(uint64) (uint64, bool), results []host.TxnResult) error
}

// KV is the key-value serving workload: the repo's historical
// Zipf × read-mix × Poisson traffic, wrapped behind the Workload
// interface so the generated stream is byte-identical to
// host.GenerateTraffic for the same TrafficConfig (the serve and
// txnserve artifacts pin that generator; this wrapper must never
// drift from it).
type KV struct {
	Traffic host.TrafficConfig

	trace []host.TimedTxn
}

// NewKV wraps a traffic config.
func NewKV(cfg host.TrafficConfig) *KV { return &KV{Traffic: cfg} }

// Name implements Workload.
func (k *KV) Name() string { return "kv" }

// Preload implements Workload: the identity fill Put(k, k) over the
// keyspace, exactly what host.Serve does on its nil-preload path.
func (k *KV) Preload() []host.Op {
	load := make([]host.Op, k.Traffic.Keyspace)
	for i := range load {
		load[i] = host.Op{Kind: host.OpPut, Key: uint64(i), Value: uint64(i)}
	}
	return load
}

// Generate implements Workload by delegating to host.GenerateTraffic.
func (k *KV) Generate() ([]host.TimedTxn, error) {
	trace, err := host.GenerateTraffic(k.Traffic)
	if err != nil {
		return nil, err
	}
	k.trace = trace
	return trace, nil
}

// Check implements Workload. The KV invariants are order-independent
// (batch formation may reorder transactions across scheduler lanes, so
// a trace-order value replay would over-constrain): the key set is
// conserved — no generated op deletes, so every preloaded key must
// still be present — every committed operation hit (the preload covers
// the keyspace, so a miss is a routing bug), and each hot counter the
// Zipf put stream never overwrote ends at its preload plus the
// committed increments (commutative, hence order-free).
func (k *KV) Check(get func(uint64) (uint64, bool), results []host.TxnResult) error {
	if k.trace == nil {
		return fmt.Errorf("workload: kv Check before Generate")
	}
	if len(results) != len(k.trace) {
		return fmt.Errorf("workload: kv got %d results for %d transactions", len(results), len(k.trace))
	}
	adds := make(map[uint64]uint64)
	overwritten := make(map[uint64]bool)
	for i, t := range k.trace {
		r := results[i]
		if r.Err != nil {
			return fmt.Errorf("workload: kv txn %d errored: %w", i, r.Err)
		}
		if !r.Committed {
			// Nothing in the generated mix guards: puts and gets cannot
			// abort, and the hot-counter adds land on preloaded keys.
			return fmt.Errorf("workload: kv txn %d aborted (%+v)", i, t.Txn.Ops)
		}
		for j, op := range t.Txn.Ops {
			// OpResult.OK reports insertion for puts, so only reads
			// assert presence here.
			if op.Kind == host.OpGet && j < len(r.Results) && !r.Results[j].OK {
				return fmt.Errorf("workload: kv txn %d op %d (%+v) missed a preloaded key", i, j, op)
			}
			if op.Kind == host.OpAdd {
				adds[op.Key] += op.Value
			}
			if op.Kind == host.OpPut {
				// The Zipf Put stream shares the low keys with the
				// hot-counter overlay; a put resets the running total,
				// so the counter check below only binds untouched keys.
				overwritten[op.Key] = true
			}
		}
	}
	for key := uint64(0); key < uint64(k.Traffic.Keyspace); key++ {
		v, ok := get(key)
		if !ok {
			return fmt.Errorf("workload: kv key %d vanished from the store", key)
		}
		if delta, hot := adds[key]; hot && !overwritten[key] && v != key+delta {
			return fmt.Errorf("workload: kv hot counter %d = %d, want preload %d + committed increments %d",
				key, v, key, delta)
		}
	}
	return nil
}
