package workloads

import (
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// small returns reduced-size instances of every workload so the full
// algorithm matrix stays fast; sizes preserve the workloads' structure.
func small() []Workload {
	a := NewArrayBenchA()
	a.OpsPerTasklet = 3
	b := NewArrayBenchB()
	b.OpsPerTasklet = 25
	lc := NewLinkedListLC()
	lc.OpsPerTasklet = 25
	hc := NewLinkedListHC()
	hc.OpsPerTasklet = 25
	klc := NewKMeansLC()
	klc.TotalPoints = 60
	khc := NewKMeansHC()
	khc.TotalPoints = 60
	ls := NewLabyrinthS()
	ls.NumPaths = 12
	lm := NewLabyrinthM()
	lm.NumPaths = 8
	return []Workload{a, b, lc, hc, klc, khc, ls, lm}
}

func dcfg() dpu.Config {
	return dpu.Config{MRAMSize: 8 << 20, Seed: 3}
}

// TestEveryWorkloadEveryAlgorithm is the central integration matrix:
// all 8 workload instances × all 7 STMs, with invariant verification
// built into Run.
func TestEveryWorkloadEveryAlgorithm(t *testing.T) {
	for _, alg := range core.Algorithms {
		for _, mk := range small() {
			t.Run(mk.Name()+"/"+alg.String(), func(t *testing.T) {
				res, err := Run(mk, dcfg(), core.Config{Algorithm: alg, LockTableEntries: 1024}, 4)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
				if res.ThroughputTxS <= 0 {
					t.Fatal("throughput not computed")
				}
			})
		}
	}
}

// TestWorkloadsWRAMTier runs the matrix's diagonal in WRAM metadata mode.
func TestWorkloadsWRAMTier(t *testing.T) {
	for i, mk := range small() {
		alg := core.Algorithms[i%len(core.Algorithms)]
		t.Run(mk.Name()+"/"+alg.String(), func(t *testing.T) {
			cfg := core.Config{Algorithm: alg, MetaTier: dpu.WRAM, LockTableEntries: 512}
			if _, err := Run(mk, dcfg(), cfg, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestArrayBenchConservation(t *testing.T) {
	w := NewArrayBenchB()
	w.OpsPerTasklet = 40
	d := dpu.New(dcfg())
	tm, err := core.New(d, core.Config{Algorithm: core.NOrec})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(d); err != nil {
		t.Fatal(err)
	}
	var st core.Stats
	progs := make([]func(*dpu.Tasklet), 6)
	txs := make([]*core.Tx, 6)
	for i := range progs {
		progs[i] = func(tk *dpu.Tasklet) {
			tx := tm.NewTx(tk)
			txs[tk.ID] = tx
			w.Body(tx, tk.ID, len(progs))
		}
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		st.Merge(tx.Stats())
	}
	if got, want := w.Sum(d), w.ExpectedSum(st.Commits); got != want {
		t.Fatalf("array sum %d != commits×RMWOps %d", got, want)
	}
	if st.Commits != 6*40 {
		t.Fatalf("commits = %d, want 240", st.Commits)
	}
}

func TestArrayBenchRegionSafety(t *testing.T) {
	w := NewArrayBenchA()
	w.OpsPerTasklet = 2
	res, err := Run(w, dcfg(), core.Config{Algorithm: core.TinyETLWB}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reads must dominate: 100 reads + 20 RMW per transaction.
	if res.Stats.Reads < res.Stats.Writes*5 {
		t.Fatalf("workload A should be read-heavy: %d reads, %d writes", res.Stats.Reads, res.Stats.Writes)
	}
}

func TestLinkedListSizeStaysBounded(t *testing.T) {
	w := NewLinkedListHC()
	w.OpsPerTasklet = 60
	d := dpu.New(dcfg())
	tm, err := core.New(d, core.Config{Algorithm: core.TinyETLWT})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(d); err != nil {
		t.Fatal(err)
	}
	progs := make([]func(*dpu.Tasklet), 5)
	for i := range progs {
		progs[i] = func(tk *dpu.Tasklet) {
			w.Body(tm.NewTx(tk), tk.ID, len(progs))
		}
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(d); err != nil {
		t.Fatal(err)
	}
	size := w.Size(d)
	// Balanced add/remove keeps the set in the low tens.
	if size > w.KeyRange/2 {
		t.Fatalf("list grew unboundedly: %d", size)
	}
}

func TestLinkedListSetSemantics(t *testing.T) {
	// Single tasklet, scripted: add twice (second fails), remove, then
	// contains — exercised through the transactional code paths.
	w := NewLinkedListLC()
	w.OpsPerTasklet = 1 // Body unused; we drive ops directly
	d := dpu.New(dcfg())
	tm, err := core.New(d, core.Config{Algorithm: core.NOrec})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(d); err != nil {
		t.Fatal(err)
	}
	progs := []func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		node := w.slot(0, 0)
		var added, addedAgain, removed, has, hasAfter bool
		tx.Atomic(func(tx *core.Tx) { added = w.add(tx, 7, node) })
		tx.Atomic(func(tx *core.Tx) { addedAgain = w.add(tx, 7, w.slot(0, 0)) })
		tx.Atomic(func(tx *core.Tx) { has = w.contains(tx, 7) })
		tx.Atomic(func(tx *core.Tx) { removed = w.remove(tx, 7) })
		tx.Atomic(func(tx *core.Tx) { hasAfter = w.contains(tx, 7) })
		if !added || addedAgain || !has || !removed || hasAfter {
			t.Errorf("set semantics broken: add=%v re-add=%v has=%v removed=%v hasAfter=%v",
				added, addedAgain, has, removed, hasAfter)
		}
	}}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(d); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansAssignsEveryPoint(t *testing.T) {
	w := NewKMeansHC()
	w.TotalPoints = 100
	res, err := Run(w, dcfg(), core.Config{Algorithm: core.VRETLWB, LockTableEntries: 512}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// One transaction per point per round.
	want := uint64(w.TotalPoints * w.Rounds)
	if res.Stats.Commits != want {
		t.Fatalf("commits = %d, want %d", res.Stats.Commits, want)
	}
}

func TestKMeansUnevenPartition(t *testing.T) {
	w := NewKMeansLC()
	w.TotalPoints = 47 // not divisible by tasklets
	if _, err := Run(w, dcfg(), core.Config{Algorithm: core.NOrec}, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLabyrinthRoutesPaths(t *testing.T) {
	w := NewLabyrinthS()
	w.NumPaths = 15
	res, err := Run(w, dcfg(), core.Config{Algorithm: core.NOrec}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Routed() == 0 {
		t.Fatal("no paths routed")
	}
	if w.Routed()+w.Failed() != w.NumPaths {
		t.Fatalf("jobs unaccounted: %d routed + %d failed != %d", w.Routed(), w.Failed(), w.NumPaths)
	}
	// Each job is at least one transaction (the queue pop).
	if res.Stats.Commits < uint64(w.NumPaths) {
		t.Fatalf("commits = %d, want ≥ %d", res.Stats.Commits, w.NumPaths)
	}
}

func TestLabyrinthHighContentionOverlap(t *testing.T) {
	// A tight grid with many paths forces conflicts and re-expansions;
	// the invariant checker must still hold for every algorithm family.
	for _, alg := range []core.Algorithm{core.NOrec, core.TinyETLWB, core.VRCTLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			w := &Labyrinth{name: "Labyrinth tiny", X: 8, Y: 8, Z: 2, NumPaths: 20, Seed: 11, ExpandCost: 8}
			if _, err := Run(w, dcfg(), core.Config{Algorithm: alg, LockTableEntries: 256}, 6); err != nil {
				t.Fatal(err)
			}
			if w.Routed() == 0 {
				t.Fatal("nothing routed on the tiny grid")
			}
		})
	}
}

func TestLabyrinthDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		w := NewLabyrinthS()
		w.NumPaths = 10
		res, err := Run(w, dcfg(), core.Config{Algorithm: core.TinyCTLWB}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return w.Routed(), res.Cycles
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Fatalf("nondeterministic labyrinth: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}

// TestThroughputScalesWithTasklets checks the headline scalability
// property on a low-contention workload.
func TestThroughputScalesWithTasklets(t *testing.T) {
	run := func(n int) float64 {
		w := NewKMeansLC()
		w.TotalPoints = 120
		res, err := Run(w, dcfg(), core.Config{Algorithm: core.NOrec}, n)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputTxS
	}
	t1 := run(1)
	t8 := run(8)
	if t8 < 3*t1 {
		t.Fatalf("KMeans LC should scale: 1 tasklet %.0f tx/s, 8 tasklets %.0f tx/s", t1, t8)
	}
}

// TestLabyrinthSaturates checks the paper's memory-bound saturation:
// going from 5 to 11 tasklets buys little on the large grid.
func TestLabyrinthSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("large grid is slow")
	}
	run := func(n int) float64 {
		w := NewLabyrinthL()
		w.NumPaths = 24
		res, err := Run(w, dcfg(), core.Config{Algorithm: core.NOrec}, n)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputTxS
	}
	t5 := run(5)
	t11 := run(11)
	if t11 > t5*1.6 {
		t.Fatalf("Labyrinth L should saturate near 5 tasklets: 5→%.0f, 11→%.0f tx/s", t5, t11)
	}
}

func TestSetupErrors(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 12})
	w := NewArrayBenchA()
	if err := w.Setup(d); err == nil {
		t.Fatal("ArrayBench A should not fit a 4 KB MRAM")
	}
	bad := &LinkedList{name: "bad", InitialSize: 100, KeyRange: 10, OpsPerTasklet: 1}
	if err := bad.Setup(dpu.New(dcfg())); err == nil {
		t.Fatal("invalid list shape should error")
	}
	badK := &KMeans{name: "bad", K: 0, Dims: 1, TotalPoints: 1}
	if err := badK.Setup(dpu.New(dcfg())); err == nil {
		t.Fatal("invalid kmeans shape should error")
	}
	badL := &Labyrinth{name: "bad", X: 1, Y: 1, Z: 1, NumPaths: 1}
	if err := badL.Setup(dpu.New(dcfg())); err == nil {
		t.Fatal("degenerate labyrinth should error")
	}
}
