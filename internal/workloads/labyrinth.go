package workloads

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/lee"
)

// Labyrinth is the paper's port of the STAMP Labyrinth benchmark (§4.1),
// a transactional Lee router: tasklets pop routing jobs from a shared
// queue (a short transaction — the one the paper identifies as the
// spurious-abort victim of VR designs), compute a shortest path on a
// private copy of the 3-D grid with plain bulk reads (no STM), and then
// commit the path transactionally, re-expanding whenever a concurrently
// committed path stole cells.
//
// Grids: 16×16×3 (S), 32×32×3 (M) and 128×128×3 (L); 100 paths in the
// paper's configuration.
type Labyrinth struct {
	// X, Y, Z are the grid dimensions.
	X, Y, Z int
	// NumPaths is the number of routing jobs.
	NumPaths int
	// Seed drives the deterministic job generator.
	Seed uint64
	// ExpandCost is the modeled instruction count per cell visited by
	// the wavefront expansion.
	ExpandCost int

	name string

	grid   dpu.Addr // X*Y*Z words; 0 = free, otherwise 1+jobID
	jobs   dpu.Addr // NumPaths × 2 words (src index, dst index)
	jobIdx dpu.Addr // shared queue cursor

	// routed records committed jobs (set inside the cooperatively
	// scheduled simulation, so no extra locking is needed).
	routed []bool
	// failed counts jobs dropped as unroutable.
	failed int
}

// NewLabyrinthS builds the paper's small-grid workload.
func NewLabyrinthS() *Labyrinth {
	return &Labyrinth{name: "Labyrinth S", X: 16, Y: 16, Z: 3, NumPaths: 100, Seed: 7, ExpandCost: 8}
}

// NewLabyrinthM builds the paper's medium-grid workload.
func NewLabyrinthM() *Labyrinth {
	return &Labyrinth{name: "Labyrinth M", X: 32, Y: 32, Z: 3, NumPaths: 100, Seed: 7, ExpandCost: 8}
}

// NewLabyrinthL builds the paper's large-grid workload.
func NewLabyrinthL() *Labyrinth {
	return &Labyrinth{name: "Labyrinth L", X: 128, Y: 128, Z: 3, NumPaths: 100, Seed: 7, ExpandCost: 8}
}

// Name returns the paper's workload name.
func (w *Labyrinth) Name() string { return w.name }

// Cells returns the grid size in cells.
func (w *Labyrinth) Cells() int { return w.X * w.Y * w.Z }

// geometry returns the routing-grid descriptor.
func (w *Labyrinth) geometry() lee.Grid { return lee.Grid{X: w.X, Y: w.Y, Z: w.Z} }

// Setup allocates the grid and generates NumPaths random jobs with
// distinct endpoints.
func (w *Labyrinth) Setup(d *dpu.DPU) error {
	if w.Cells() < 8 || w.NumPaths < 1 {
		return fmt.Errorf("labyrinth: degenerate configuration %dx%dx%d, %d paths", w.X, w.Y, w.Z, w.NumPaths)
	}
	var err error
	if w.grid, err = d.AllocMRAM(w.Cells()*8, 8); err != nil {
		return err
	}
	if w.jobs, err = d.AllocMRAM(w.NumPaths*16, 8); err != nil {
		return err
	}
	if w.jobIdx, err = d.AllocMRAM(8, 8); err != nil {
		return err
	}
	w.routed = make([]bool, w.NumPaths)
	w.failed = 0
	rng := w.Seed
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	used := map[int]bool{}
	pick := func() int {
		for {
			c := int(next() % uint64(w.Cells()))
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}
	for j := 0; j < w.NumPaths; j++ {
		src, dst := pick(), pick()
		d.HostWrite64(w.jobs+dpu.Addr(j*16), uint64(src))
		d.HostWrite64(w.jobs+dpu.Addr(j*16+8), uint64(dst))
	}
	return nil
}

func (w *Labyrinth) cellAddr(idx int) dpu.Addr { return w.grid + dpu.Addr(idx*8) }

// Body: pop a job, expand on a private snapshot, commit the path, retry
// expansion on conflict.
func (w *Labyrinth) Body(tx *core.Tx, taskletID, tasklets int) {
	t := tx.Tasklet()
	gridBytes := w.Cells() * 8
	snapshot := make([]byte, gridBytes)
	for {
		job := -1
		tx.Atomic(func(tx *core.Tx) {
			v := tx.Read(w.jobIdx)
			if v >= uint64(w.NumPaths) {
				job = -1
				return
			}
			tx.Write(w.jobIdx, v+1)
			job = int(v)
		})
		if job < 0 {
			return
		}
		src := int(t.Load64(w.jobs + dpu.Addr(job*16)))
		dst := int(t.Load64(w.jobs + dpu.Addr(job*16+8)))
		for {
			w.readSnapshot(t, snapshot)
			path := w.expand(t, snapshot, src, dst)
			if path == nil {
				w.failed++
				break // unroutable under the current grid: drop the job
			}
			conflict := false
			tx.Atomic(func(tx *core.Tx) {
				conflict = false
				for _, c := range path {
					if tx.Read(w.cellAddr(c)) != 0 {
						conflict = true
						return // commits read-only; we re-expand outside
					}
				}
				for _, c := range path {
					tx.Write(w.cellAddr(c), uint64(job+1))
				}
			})
			if !conflict {
				w.routed[job] = true
				break
			}
		}
	}
}

// readSnapshot copies the shared grid into the tasklet's private buffer
// with chunked bulk transfers (2 KB DMA chunks, the UPMEM maximum).
func (w *Labyrinth) readSnapshot(t *dpu.Tasklet, buf []byte) {
	const chunk = 2048
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		t.ReadBulk(buf[off:end], w.grid+dpu.Addr(off))
	}
}

// expand runs the Lee wavefront from src to dst over the private
// snapshot, treating occupied cells as walls, and returns the cell
// indices of a shortest path (inclusive of both endpoints), or nil if
// unreachable. The modeled cost is ExpandCost instructions per visited
// cell plus the backtracking pass.
func (w *Labyrinth) expand(t *dpu.Tasklet, snapshot []byte, src, dst int) []int {
	path, visited := lee.Expand(w.geometry(), func(i int) bool {
		return le64(snapshot, i) != 0
	}, src, dst)
	t.Exec(visited * w.ExpandCost)
	t.Exec(len(path) * 2)
	return path
}

// CellValue reads one grid cell from the host: 0 when free, 1+jobID
// when claimed by a committed path.
func (w *Labyrinth) CellValue(d *dpu.DPU, idx int) uint64 {
	return d.HostRead64(w.cellAddr(idx))
}

// Routed returns how many paths committed.
func (w *Labyrinth) Routed() int {
	n := 0
	for _, ok := range w.routed {
		if ok {
			n++
		}
	}
	return n
}

// Failed returns how many jobs were dropped as unroutable.
func (w *Labyrinth) Failed() int { return w.failed }

// Verify checks that committed paths do not overlap and are connected:
// every grid cell carries at most one path id, each committed path's
// cells include its endpoints and form a connected component, and no
// dropped job left cells behind.
func (w *Labyrinth) Verify(d *dpu.DPU) error {
	cells := make(map[int][]int) // jobID → cell indices
	for i := 0; i < w.Cells(); i++ {
		v := d.HostRead64(w.cellAddr(i))
		if v == 0 {
			continue
		}
		id := int(v) - 1
		if id < 0 || id >= w.NumPaths {
			return fmt.Errorf("cell %d holds invalid path id %d", i, v)
		}
		cells[id] = append(cells[id], i)
	}
	for id, cs := range cells {
		if !w.routed[id] {
			return fmt.Errorf("path %d left %d cells but never committed", id, len(cs))
		}
	}
	for id, ok := range w.routed {
		if !ok {
			continue
		}
		cs := cells[id]
		if len(cs) == 0 {
			return fmt.Errorf("committed path %d has no cells", id)
		}
		src := int(d.HostRead64(w.jobs + dpu.Addr(id*16)))
		dst := int(d.HostRead64(w.jobs + dpu.Addr(id*16+8)))
		inPath := map[int]bool{}
		for _, c := range cs {
			inPath[c] = true
		}
		if !inPath[src] || !inPath[dst] {
			return fmt.Errorf("path %d misses an endpoint", id)
		}
		if !lee.Connected(w.geometry(), inPath, src) {
			return fmt.Errorf("path %d disconnected (%d cells)", id, len(cs))
		}
	}
	return nil
}
