package workloads

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// ArrayBench is the paper's synthetic benchmark (§4.1): transactions
// manipulate an array of N 64-bit words split into a read-only region Y
// and an update region K = N−Y. Each transaction first reads ReadOps
// random words of Y, then read-modify-writes RMWOps random words of K.
//
// Workload A (N=12,500, Y=2,500, 100 reads + 20 updates) is read-heavy
// and lightly contended; workload B (N=K=10, 4 updates) is tiny and
// highly contended.
type ArrayBench struct {
	// N is the array length in words; Y the length of the read-only
	// prefix region.
	N, Y int
	// ReadOps is the number of phase-1 reads in region Y; RMWOps the
	// number of phase-2 read-modify-writes in region K.
	ReadOps, RMWOps int
	// OpsPerTasklet is the number of transactions per tasklet.
	OpsPerTasklet int
	// ComputePerOp models application instructions between accesses.
	ComputePerOp int

	name string
	base dpu.Addr
}

// NewArrayBenchA builds the paper's workload A.
func NewArrayBenchA() *ArrayBench {
	return &ArrayBench{
		name: "ArrayBench A", N: 12500, Y: 2500,
		ReadOps: 100, RMWOps: 20,
		OpsPerTasklet: 20, ComputePerOp: 4,
	}
}

// NewArrayBenchB builds the paper's workload B.
func NewArrayBenchB() *ArrayBench {
	return &ArrayBench{
		name: "ArrayBench B", N: 10, Y: 0,
		ReadOps: 0, RMWOps: 4,
		OpsPerTasklet: 200, ComputePerOp: 4,
	}
}

// Name returns the paper's workload name.
func (w *ArrayBench) Name() string { return w.name }

// Setup allocates and zeroes the array in MRAM.
func (w *ArrayBench) Setup(d *dpu.DPU) error {
	if w.N <= 0 || w.Y < 0 || w.Y >= w.N && w.RMWOps > 0 {
		return fmt.Errorf("arraybench: bad region split N=%d Y=%d", w.N, w.Y)
	}
	base, err := d.AllocMRAM(w.N*8, 8)
	if err != nil {
		return err
	}
	w.base = base
	return nil
}

func (w *ArrayBench) word(i int) dpu.Addr { return w.base + dpu.Addr(i*8) }

// Body runs OpsPerTasklet two-phase transactions.
func (w *ArrayBench) Body(tx *core.Tx, taskletID, tasklets int) {
	t := tx.Tasklet()
	k := w.N - w.Y
	for op := 0; op < w.OpsPerTasklet; op++ {
		// Pre-draw the random indices so retries replay the same
		// transaction (as a C implementation's op would).
		reads := make([]int, w.ReadOps)
		for i := range reads {
			reads[i] = t.RandN(w.Y)
		}
		updates := make([]int, w.RMWOps)
		for i := range updates {
			updates[i] = w.Y + t.RandN(k)
		}
		tx.Atomic(func(tx *core.Tx) {
			var sink uint64
			for _, idx := range reads {
				sink += tx.Read(w.word(idx))
				t.Exec(w.ComputePerOp)
			}
			for _, idx := range updates {
				v := tx.Read(w.word(idx))
				t.Exec(w.ComputePerOp)
				tx.Write(w.word(idx), v+1)
			}
			_ = sink
		})
	}
}

// Verify checks the conservation invariant: every committed transaction
// adds exactly RMWOps increments to region K, and region Y is untouched.
func (w *ArrayBench) Verify(d *dpu.DPU) error {
	var sum uint64
	for i := 0; i < w.N; i++ {
		v := d.HostRead64(w.word(i))
		if i < w.Y && v != 0 {
			return fmt.Errorf("read-only region modified at %d: %d", i, v)
		}
		sum += v
	}
	// The harness re-checks the exact count against Stats.Commits; here
	// we verify the sum is a multiple of the per-transaction increment.
	if w.RMWOps > 0 && sum%uint64(w.RMWOps) != 0 {
		return fmt.Errorf("increment sum %d not a multiple of %d (torn transaction)", sum, w.RMWOps)
	}
	return nil
}

// ExpectedSum returns the array sum implied by a number of commits, for
// external verification.
func (w *ArrayBench) ExpectedSum(commits uint64) uint64 {
	return commits * uint64(w.RMWOps)
}

// Sum reads the whole array back from the host.
func (w *ArrayBench) Sum(d *dpu.DPU) uint64 {
	var sum uint64
	for i := 0; i < w.N; i++ {
		sum += d.HostRead64(w.word(i))
	}
	return sum
}
