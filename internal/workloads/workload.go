// Package workloads ports the paper's benchmark suite (§4.1) to the
// simulated DPU and the PIM-STM API: the ArrayBench synthetic benchmark
// (workloads A and B), a transactional sorted Linked-List (low- and
// high-contention mixes), and the two STAMP applications KMeans and
// Labyrinth.
//
// Every workload is deterministic given the DPU seed: all randomness
// comes from the per-tasklet PRNGs. Each workload verifies its own
// post-run invariants so the experiment harness doubles as an
// integration test of the STM algorithms.
package workloads

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// Workload is one benchmark instance: it allocates its data on a DPU,
// provides the per-tasklet transactional body, and verifies invariants
// afterwards.
type Workload interface {
	// Name is the paper's name for the workload (e.g. "ArrayBench A").
	Name() string
	// Setup allocates and initializes application data on the DPU. It
	// must be called after the TM is created (allocation order affects
	// only addresses, not semantics).
	Setup(d *dpu.DPU) error
	// Body runs the tasklet's share of the benchmark inside the DPU
	// program, issuing transactions through tx.
	Body(tx *core.Tx, taskletID, tasklets int)
	// Verify checks post-run invariants from the host and returns a
	// descriptive error on violation.
	Verify(d *dpu.DPU) error
}

// Result captures one benchmark run.
type Result struct {
	Workload  string
	Algorithm core.Algorithm
	MetaTier  dpu.Tier
	Tasklets  int

	Stats         core.Stats
	Cycles        uint64  // virtual DPU cycles of the run
	Seconds       float64 // virtual run duration
	ThroughputTxS float64 // committed transactions per virtual second
}

// Run executes one workload on one DPU with the given STM configuration
// and tasklet count: it builds the TM, sets the workload up, launches
// the program, verifies invariants and assembles the Result.
func Run(w Workload, dcfg dpu.Config, scfg core.Config, tasklets int) (Result, error) {
	d := dpu.New(dcfg)
	tm, err := core.New(d, scfg)
	if err != nil {
		return Result{}, fmt.Errorf("workloads: creating TM: %w", err)
	}
	if err := w.Setup(d); err != nil {
		return Result{}, fmt.Errorf("workloads: setup %s: %w", w.Name(), err)
	}
	if mp, ok := w.(interface{ SetTasklets(int) }); ok {
		mp.SetTasklets(tasklets)
	}
	txs := make([]*core.Tx, tasklets)
	progs := make([]func(*dpu.Tasklet), tasklets)
	for i := range progs {
		progs[i] = func(t *dpu.Tasklet) {
			tx := tm.NewTx(t)
			txs[t.ID] = tx
			w.Body(tx, t.ID, tasklets)
		}
	}
	cycles, err := d.Run(progs)
	if err != nil {
		return Result{}, fmt.Errorf("workloads: running %s: %w", w.Name(), err)
	}
	if err := w.Verify(d); err != nil {
		return Result{}, fmt.Errorf("workloads: verify %s [%v/%v, %d tasklets]: %w",
			w.Name(), scfg.Algorithm, scfg.MetaTier, tasklets, err)
	}
	res := Result{
		Workload:  w.Name(),
		Algorithm: scfg.Algorithm,
		MetaTier:  scfg.MetaTier,
		Tasklets:  tasklets,
		Cycles:    cycles,
		Seconds:   d.Seconds(cycles),
	}
	for _, tx := range txs {
		res.Stats.Merge(tx.Stats())
	}
	if res.Seconds > 0 {
		res.ThroughputTxS = float64(res.Stats.Commits) / res.Seconds
	}
	return res, nil
}
