package workloads

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// KMeans is the paper's port of the STAMP K-means benchmark (§4.1):
// input points are partitioned across tasklets; finding the closest
// centroid is non-transactional compute, while updating the centroid
// accumulator is one small transaction per point (readset = writeset =
// Dims+1 words). The low-contention workload uses K=15 clusters, the
// high-contention one K=2, both with Dims=14.
//
// Coordinates are 16.16 fixed-point integers: the UPMEM DPU has no FPU,
// so the C implementation uses integer arithmetic as well.
type KMeans struct {
	// K is the number of clusters; Dims the point dimensionality.
	K, Dims int
	// TotalPoints is the input size, split across however many tasklets
	// run (fixed total work, as in the paper's scalability study).
	TotalPoints int
	// Rounds is the number of assignment/update rounds.
	Rounds int
	// Seed drives the deterministic input generator.
	Seed uint64
	// DistCost models the instructions per dimension per centroid of the
	// distance computation (load, subtract, shift, multiply-accumulate,
	// loop overhead on the FPU-less DPU).
	DistCost int

	name string

	points  dpu.Addr // TotalPoints × Dims fixed-point words
	centers dpu.Addr // K × Dims current centroid coordinates
	acc     dpu.Addr // K × Dims accumulator words (transactional)
	counts  dpu.Addr // K member counters (transactional)

	barrier *dpu.Barrier
}

const fixedShift = 16 // 16.16 fixed point

// NewKMeansLC builds the paper's low-contention K-means workload (K=15).
func NewKMeansLC() *KMeans {
	return &KMeans{name: "KMeans LC", K: 15, Dims: 14, TotalPoints: 480, Rounds: 3, Seed: 99, DistCost: 14}
}

// NewKMeansHC builds the paper's high-contention K-means workload (K=2).
func NewKMeansHC() *KMeans {
	return &KMeans{name: "KMeans HC", K: 2, Dims: 14, TotalPoints: 480, Rounds: 3, Seed: 99, DistCost: 14}
}

// Name returns the paper's workload name.
func (w *KMeans) Name() string { return w.name }

// SetTasklets sizes the inter-round barrier; called by workloads.Run
// and by the multi-DPU host layer before launching the program.
func (w *KMeans) SetTasklets(n int) { w.barrier = dpu.NewBarrier(n) }

// Setup allocates points, centroids and accumulators, generating the
// input deterministically around K well-separated cluster centers.
func (w *KMeans) Setup(d *dpu.DPU) error {
	if w.K < 1 || w.Dims < 1 || w.TotalPoints < 1 {
		return fmt.Errorf("kmeans: bad shape K=%d Dims=%d points=%d", w.K, w.Dims, w.TotalPoints)
	}
	var err error
	if w.points, err = d.AllocMRAM(w.TotalPoints*w.Dims*8, 8); err != nil {
		return err
	}
	if w.centers, err = d.AllocMRAM(w.K*w.Dims*8, 8); err != nil {
		return err
	}
	if w.acc, err = d.AllocMRAM(w.K*w.Dims*8, 8); err != nil {
		return err
	}
	if w.counts, err = d.AllocMRAM(w.K*8, 8); err != nil {
		return err
	}
	rng := w.Seed
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	// True cluster centers on a coarse lattice; points jitter around them.
	for p := 0; p < w.TotalPoints; p++ {
		c := p % w.K
		for dim := 0; dim < w.Dims; dim++ {
			center := int64(c*1000+dim*37) << fixedShift
			jitter := int64(next()%200) - 100
			d.HostWrite64(w.pointAddr(p, dim), uint64(center+(jitter<<(fixedShift-4))))
		}
	}
	// Initial centroids: the first K points, as in the reference code.
	for c := 0; c < w.K; c++ {
		for dim := 0; dim < w.Dims; dim++ {
			d.HostWrite64(w.centerAddr(c, dim), d.HostRead64(w.pointAddr(c, dim)))
		}
	}
	return nil
}

func (w *KMeans) pointAddr(p, dim int) dpu.Addr  { return w.points + dpu.Addr((p*w.Dims+dim)*8) }
func (w *KMeans) centerAddr(c, dim int) dpu.Addr { return w.centers + dpu.Addr((c*w.Dims+dim)*8) }
func (w *KMeans) accAddr(c, dim int) dpu.Addr    { return w.acc + dpu.Addr((c*w.Dims+dim)*8) }
func (w *KMeans) countAddr(c int) dpu.Addr       { return w.counts + dpu.Addr(c*8) }

// Body processes the tasklet's shard for each round: cache the current
// centroids privately (one bulk transfer), assign each point to its
// nearest centroid with non-transactional arithmetic, then update the
// accumulator inside a transaction. Tasklet 0 recomputes the centroids
// between rounds while the rest wait at the barrier; the final round
// leaves the accumulators in place for verification.
func (w *KMeans) Body(tx *core.Tx, taskletID, tasklets int) {
	t := tx.Tasklet()
	chunk := (w.TotalPoints + tasklets - 1) / tasklets
	lo := taskletID * chunk
	hi := lo + chunk
	if hi > w.TotalPoints {
		hi = w.TotalPoints
	}
	centersBuf := make([]byte, w.K*w.Dims*8)
	pointBuf := make([]byte, w.Dims*8)
	for round := 0; round < w.Rounds; round++ {
		t.ReadBulk(centersBuf, w.centers) // per-round private centroid cache
		for p := lo; p < hi; p++ {
			t.ReadBulk(pointBuf, w.pointAddr(p, 0))
			best, bestDist := 0, int64(0)
			for c := 0; c < w.K; c++ {
				var dist int64
				for dim := 0; dim < w.Dims; dim++ {
					pv := int64(le64(pointBuf, dim))
					cv := int64(le64(centersBuf, c*w.Dims+dim))
					diff := (pv - cv) >> fixedShift
					dist += diff * diff
				}
				t.Exec(w.DistCost * w.Dims) // distance arithmetic
				if c == 0 || dist < bestDist {
					best, bestDist = c, dist
				}
			}
			tx.Atomic(func(tx *core.Tx) {
				for dim := 0; dim < w.Dims; dim++ {
					a := w.accAddr(best, dim)
					tx.Write(a, tx.Read(a)+le64(pointBuf, dim))
				}
				cnt := w.countAddr(best)
				tx.Write(cnt, tx.Read(cnt)+1)
			})
		}
		w.barrier.Wait(t)
		if round == w.Rounds-1 {
			break // keep final accumulators for verification
		}
		if taskletID == 0 {
			w.recompute(t)
		}
		w.barrier.Wait(t)
	}
}

// recompute derives new centroids from the accumulators and zeroes them,
// using plain (non-transactional) accesses: all tasklets are parked at
// the barrier.
func (w *KMeans) recompute(t *dpu.Tasklet) {
	for c := 0; c < w.K; c++ {
		n := t.Load64(w.countAddr(c))
		if n > 0 {
			for dim := 0; dim < w.Dims; dim++ {
				sum := t.Load64(w.accAddr(c, dim))
				t.Store64(w.centerAddr(c, dim), uint64(int64(sum)/int64(n)))
			}
		}
		for dim := 0; dim < w.Dims; dim++ {
			t.Store64(w.accAddr(c, dim), 0)
		}
		t.Store64(w.countAddr(c), 0)
		t.Exec(2 * w.Dims)
	}
}

// Verify checks the conservation invariant of the final round: the
// cluster counters must add up to exactly TotalPoints (no lost or
// duplicated transactional updates), and every accumulator must be the
// sum of the points assigned to it — checked in aggregate across
// clusters, which is assignment-independent.
func (w *KMeans) Verify(d *dpu.DPU) error {
	var n uint64
	for c := 0; c < w.K; c++ {
		n += d.HostRead64(w.countAddr(c))
	}
	if n != uint64(w.TotalPoints) {
		return fmt.Errorf("cluster counts sum to %d, want %d", n, w.TotalPoints)
	}
	for dim := 0; dim < w.Dims; dim++ {
		var accSum, pointSum uint64
		for c := 0; c < w.K; c++ {
			accSum += d.HostRead64(w.accAddr(c, dim))
		}
		for p := 0; p < w.TotalPoints; p++ {
			pointSum += d.HostRead64(w.pointAddr(p, dim))
		}
		if accSum != pointSum {
			return fmt.Errorf("dim %d accumulator %d != point sum %d (torn update)", dim, accSum, pointSum)
		}
	}
	return nil
}

// SetCenters overwrites the current centroids from the host; used by
// the multi-DPU port, where the CPU merges per-DPU accumulators and
// broadcasts fresh centroids each round (paper §4.3.1).
func (w *KMeans) SetCenters(d *dpu.DPU, centers []uint64) {
	for c := 0; c < w.K; c++ {
		for dim := 0; dim < w.Dims; dim++ {
			d.HostWrite64(w.centerAddr(c, dim), centers[c*w.Dims+dim])
		}
	}
}

// Centers reads the current centroids from the host.
func (w *KMeans) Centers(d *dpu.DPU) []uint64 {
	out := make([]uint64, w.K*w.Dims)
	for i := range out {
		out[i] = d.HostRead64(w.centers + dpu.Addr(i*8))
	}
	return out
}

// Accumulators reads the per-cluster coordinate sums and member counts
// left by the final round.
func (w *KMeans) Accumulators(d *dpu.DPU) (acc []uint64, counts []uint64) {
	acc = make([]uint64, w.K*w.Dims)
	for i := range acc {
		acc[i] = d.HostRead64(w.acc + dpu.Addr(i*8))
	}
	counts = make([]uint64, w.K)
	for c := range counts {
		counts[c] = d.HostRead64(w.countAddr(c))
	}
	return acc, counts
}

// le64 reads the i-th 64-bit little-endian word of a private buffer.
func le64(b []byte, i int) uint64 {
	o := i * 8
	return uint64(b[o]) | uint64(b[o+1])<<8 | uint64(b[o+2])<<16 | uint64(b[o+3])<<24 |
		uint64(b[o+4])<<32 | uint64(b[o+5])<<40 | uint64(b[o+6])<<48 | uint64(b[o+7])<<56
}
