package workloads

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// LinkedList is the paper's concurrent sorted integer set backed by a
// singly linked list, with transactional add / remove / contains (§4.1).
// The operation mix controls contention: 90% contains in the
// low-contention (LC) workload, 50% in the high-contention (HC) one;
// adds and removes are issued in equal proportion so the size stays
// roughly constant. The list starts with InitialSize elements.
//
// Node layout in MRAM: two 64-bit words — [key, next]. Nodes come from a
// pool statically partitioned across tasklets (the TM_MALLOC discipline
// of C TM programs: allocation is not transactional state, and the slot
// for an insert is chosen before the transaction so retries reuse it).
type LinkedList struct {
	// ContainsPct is the percentage of contains operations (90 LC / 50 HC).
	ContainsPct int
	// OpsPerTasklet is the number of operations (= transactions) each
	// tasklet performs; the paper uses 100.
	OpsPerTasklet int
	// InitialSize is the number of pre-inserted elements; the paper uses 10.
	InitialSize int
	// KeyRange is the key universe size.
	KeyRange int

	name string
	head dpu.Addr // word holding the address of the first node
	pool dpu.Addr // node pool base

	poolCap int
}

// NewLinkedListLC builds the paper's low-contention list workload.
func NewLinkedListLC() *LinkedList {
	return &LinkedList{name: "Linked-List LC", ContainsPct: 90, OpsPerTasklet: 100, InitialSize: 10, KeyRange: 512}
}

// NewLinkedListHC builds the paper's high-contention list workload.
func NewLinkedListHC() *LinkedList {
	return &LinkedList{name: "Linked-List HC", ContainsPct: 50, OpsPerTasklet: 100, InitialSize: 10, KeyRange: 512}
}

// Name returns the paper's workload name.
func (w *LinkedList) Name() string { return w.name }

// Setup allocates the head word and the node pool, then inserts
// InitialSize evenly spaced keys from the host.
func (w *LinkedList) Setup(d *dpu.DPU) error {
	if w.InitialSize >= w.KeyRange {
		return fmt.Errorf("linkedlist: initial size %d exceeds key range %d", w.InitialSize, w.KeyRange)
	}
	var err error
	if w.head, err = d.AllocMRAM(8, 8); err != nil {
		return err
	}
	// Worst case: every operation of every tasklet is a successful add.
	w.poolCap = w.InitialSize + w.OpsPerTasklet*dpu.MaxTasklets
	if w.pool, err = d.AllocMRAM(w.poolCap*16, 8); err != nil {
		return err
	}
	// Host-side initial population (sorted, evenly spaced keys).
	prev := dpu.NilAddr
	for i := 0; i < w.InitialSize; i++ {
		key := uint64((i + 1) * w.KeyRange / (w.InitialSize + 1))
		node := w.nodeAddr(i)
		d.HostWrite64(node, key)
		d.HostWrite64(node+8, 0)
		if prev == dpu.NilAddr {
			d.HostWrite64(w.head, uint64(node))
		} else {
			d.HostWrite64(prev+8, uint64(node))
		}
		prev = node
	}
	return nil
}

func (w *LinkedList) nodeAddr(i int) dpu.Addr { return w.pool + dpu.Addr(i*16) }

// slot returns the pool slot reserved for one (tasklet, operation) pair.
func (w *LinkedList) slot(taskletID, op int) dpu.Addr {
	return w.nodeAddr(w.InitialSize + taskletID*w.OpsPerTasklet + op)
}

// Body performs the operation mix: ContainsPct% lookups, the remainder
// split evenly between adds and removes.
func (w *LinkedList) Body(tx *core.Tx, taskletID, tasklets int) {
	t := tx.Tasklet()
	for op := 0; op < w.OpsPerTasklet; op++ {
		r := t.RandN(100)
		key := uint64(t.RandN(w.KeyRange))
		switch {
		case r < w.ContainsPct:
			tx.Atomic(func(tx *core.Tx) { w.contains(tx, key) })
		case r < w.ContainsPct+(100-w.ContainsPct)/2:
			node := w.slot(taskletID, op)
			tx.Atomic(func(tx *core.Tx) { w.add(tx, key, node) })
		default:
			tx.Atomic(func(tx *core.Tx) { w.remove(tx, key) })
		}
	}
}

// find returns (prev, cur) such that cur is the first node with
// key >= k (cur may be nil); prev is the predecessor or NilAddr when
// cur is the head.
func (w *LinkedList) find(tx *core.Tx, k uint64) (prev, cur dpu.Addr) {
	t := tx.Tasklet()
	prev = dpu.NilAddr
	cur = dpu.Addr(tx.Read(w.head))
	for cur != dpu.NilAddr {
		key := tx.Read(cur)
		t.Exec(2)
		if key >= k {
			return prev, cur
		}
		prev = cur
		cur = dpu.Addr(tx.Read(cur + 8))
	}
	return prev, cur
}

func (w *LinkedList) contains(tx *core.Tx, k uint64) bool {
	_, cur := w.find(tx, k)
	return cur != dpu.NilAddr && tx.Read(cur) == k
}

// add inserts k using the pre-reserved node; reports whether it
// inserted.
func (w *LinkedList) add(tx *core.Tx, k uint64, node dpu.Addr) bool {
	prev, cur := w.find(tx, k)
	if cur != dpu.NilAddr && tx.Read(cur) == k {
		return false // already present
	}
	tx.Write(node, k)
	tx.Write(node+8, uint64(cur))
	if prev == dpu.NilAddr {
		tx.Write(w.head, uint64(node))
	} else {
		tx.Write(prev+8, uint64(node))
	}
	return true
}

func (w *LinkedList) remove(tx *core.Tx, k uint64) bool {
	prev, cur := w.find(tx, k)
	if cur == dpu.NilAddr || tx.Read(cur) != k {
		return false // absent
	}
	next := tx.Read(cur + 8)
	if prev == dpu.NilAddr {
		tx.Write(w.head, next)
	} else {
		tx.Write(prev+8, next)
	}
	return true
}

// Verify walks the list from the host: it must be sorted, duplicate-free
// and within the key range — any torn insert or lost unlink breaks one
// of these.
func (w *LinkedList) Verify(d *dpu.DPU) error {
	seen := map[uint64]bool{}
	cur := dpu.Addr(d.HostRead64(w.head))
	last := int64(-1)
	steps := 0
	for cur != dpu.NilAddr {
		if steps++; steps > w.poolCap {
			return fmt.Errorf("cycle in list after %d nodes", steps)
		}
		key := d.HostRead64(cur)
		if int64(key) <= last {
			return fmt.Errorf("list not strictly sorted: %d after %d", key, last)
		}
		if key >= uint64(w.KeyRange) {
			return fmt.Errorf("key %d outside range %d", key, w.KeyRange)
		}
		if seen[key] {
			return fmt.Errorf("duplicate key %d", key)
		}
		seen[key] = true
		last = int64(key)
		cur = dpu.Addr(d.HostRead64(cur + 8))
	}
	return nil
}

// Size walks the list from the host and returns its length.
func (w *LinkedList) Size(d *dpu.DPU) int {
	n := 0
	for cur := dpu.Addr(d.HostRead64(w.head)); cur != dpu.NilAddr; cur = dpu.Addr(d.HostRead64(cur + 8)) {
		n++
	}
	return n
}
