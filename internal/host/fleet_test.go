package host

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"pimstm/internal/dpu"
)

// fixedRound builds a transfer-heavy synthetic round whose kernel takes
// exactly k modeled seconds on every DPU.
func fixedRound(k float64, scatterBytes, gatherBytes int) RoundSpec {
	return RoundSpec{
		ScatterBytes: scatterBytes,
		GatherBytes:  gatherBytes,
		Program:      func(id int, _ *dpu.DPU) (float64, error) { return k, nil },
	}
}

func runRounds(t *testing.T, mode ExecMode, rounds []RoundSpec) FleetStats {
	t.Helper()
	f, err := NewFleet(FleetOptions{DPUs: 8, Sample: 2}, mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rounds {
		if err := f.Round(r); err != nil {
			t.Fatal(err)
		}
	}
	return f.Drain()
}

// TestPipelinedBeatsLockstep is the modeled wall-clock comparison the
// Fleet exists for: the same sequence of rounds, executed once with the
// lockstep host loop and once with double-buffered pipelining, must be
// strictly faster pipelined — the transfers hide behind the kernels.
func TestPipelinedBeatsLockstep(t *testing.T) {
	var rounds []RoundSpec
	for i := 0; i < 10; i++ {
		// 1 ms kernels vs ~0.3 ms per transfer: plenty to hide.
		rounds = append(rounds, fixedRound(1e-3, 4096, 4096))
	}
	lock := runRounds(t, Lockstep, rounds)
	pipe := runRounds(t, Pipelined, rounds)

	if pipe.WallSeconds >= lock.WallSeconds {
		t.Fatalf("pipelined (%.6fs) must beat lockstep (%.6fs)", pipe.WallSeconds, lock.WallSeconds)
	}
	// Both modes do the same physical work.
	if pipe.LaunchSeconds != lock.LaunchSeconds || pipe.TransferSeconds != lock.TransferSeconds {
		t.Fatalf("work accounting differs: %+v vs %+v", pipe, lock)
	}
	// The pipelined run knows its own lockstep-equivalent cost.
	if math.Abs(pipe.LockstepSeconds-lock.WallSeconds) > 1e-12 {
		t.Fatalf("LockstepSeconds %.6f != lockstep wall %.6f", pipe.LockstepSeconds, lock.WallSeconds)
	}
	// With kernels longer than scatter+gather, steady-state rounds cost
	// one kernel each: wall ≈ scatter0 + Σ kernels + gatherN.
	ideal := TransferSeconds(8, 4096) + 10*1e-3 + TransferSeconds(8, 4096)
	if math.Abs(pipe.WallSeconds-ideal) > 1e-9 {
		t.Fatalf("pipelined wall %.6f, ideal overlap %.6f", pipe.WallSeconds, ideal)
	}
}

func TestLockstepScheduleIsSerial(t *testing.T) {
	rounds := []RoundSpec{fixedRound(2e-3, 1024, 2048), fixedRound(3e-3, 1024, 2048)}
	s := runRounds(t, Lockstep, rounds)
	want := 2*TransferSeconds(8, 1024) + 2*TransferSeconds(8, 2048) + 5e-3
	if math.Abs(s.WallSeconds-want) > 1e-12 {
		t.Fatalf("lockstep wall %.6f, want %.6f", s.WallSeconds, want)
	}
	if s.LockstepSeconds != s.WallSeconds {
		t.Fatal("in lockstep mode LockstepSeconds must equal WallSeconds")
	}
	if s.Rounds != 2 {
		t.Fatalf("rounds = %d", s.Rounds)
	}
}

func TestFleetStatsBreakdown(t *testing.T) {
	f, err := NewFleet(FleetOptions{DPUs: 4, Exact: true}, Pipelined, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Round(fixedRound(5e-4, 256, 256)); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Drain()
	if math.Abs(s.QuiescentSeconds-(s.WallSeconds-s.LaunchSeconds)) > 1e-12 {
		t.Fatalf("quiescent window accounting broken: %+v", s)
	}
	if s.LaunchSeconds != 3*5e-4 {
		t.Fatalf("launch seconds = %.6f", s.LaunchSeconds)
	}
	rs := f.RoundStats()
	if len(rs) != 3 {
		t.Fatalf("round stats = %d", len(rs))
	}
	for i, r := range rs {
		if r.End <= r.Start || r.Launch != 5e-4 {
			t.Fatalf("round %d stats degenerate: %+v", i, r)
		}
		if i > 0 && rs[i].Start < rs[i-1].Start {
			t.Fatalf("rounds out of order: %+v", rs)
		}
	}
	// Stats is a non-destructive snapshot: calling it twice agrees.
	if f.Stats() != f.Stats() {
		t.Fatal("Stats must be idempotent")
	}
}

// TestFleetTransferOnlyAndEmptyRounds: a nil Program models a pure
// quiescent-window host access; zero-byte transfers are free.
func TestFleetTransferOnlyAndEmptyRounds(t *testing.T) {
	f, err := NewFleet(FleetOptions{DPUs: 16, Sample: 2}, Lockstep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Round(RoundSpec{Involved: 3, GatherBytes: 64}); err != nil {
		t.Fatal(err)
	}
	s := f.Drain()
	if want := TransferSeconds(3, 64); s.WallSeconds != want || s.LaunchSeconds != 0 {
		t.Fatalf("transfer-only round: %+v, want wall %.6f", s, want)
	}
	if err := f.Round(RoundSpec{}); err != nil {
		t.Fatal(err)
	}
	if got := f.Drain(); got.WallSeconds != s.WallSeconds {
		t.Fatalf("empty round must be free: %.6f → %.6f", s.WallSeconds, got.WallSeconds)
	}
}

func TestFleetPersistentDPUsAndErrors(t *testing.T) {
	if _, err := NewFleet(FleetOptions{}, Lockstep, nil); err == nil {
		t.Fatal("zero DPUs accepted")
	}
	boom := errors.New("boom")
	if _, err := NewFleet(FleetOptions{DPUs: 2, Exact: true}, Lockstep,
		func(id int) (*dpu.DPU, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("factory error lost: %v", err)
	}

	f, err := NewFleet(FleetOptions{DPUs: 3, Exact: true}, Pipelined,
		func(id int) (*dpu.DPU, error) {
			return dpu.New(dpu.Config{MRAMSize: 1 << 20, Seed: uint64(id) + 1}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || len(f.SimulatedIDs()) != 3 || f.DPU(1) == nil || f.DPU(99) != nil {
		t.Fatalf("fleet shape wrong: size=%d ids=%v", f.Size(), f.SimulatedIDs())
	}
	if f.Mode() != Pipelined || f.Mode().String() != "pipelined" || Lockstep.String() != "lockstep" {
		t.Fatal("mode naming wrong")
	}
	// A program error aborts the round.
	err = f.Round(RoundSpec{Program: func(id int, d *dpu.DPU) (float64, error) {
		if id == 2 {
			return 0, boom
		}
		return 1e-6, nil
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("program error lost: %v", err)
	}
	// IDs restricts which DPUs run.
	var ran int32
	if err := f.Round(RoundSpec{IDs: []int{0, 2}, Program: func(id int, d *dpu.DPU) (float64, error) {
		atomic.AddInt32(&ran, 1)
		if d == nil {
			t.Error("persistent DPU missing")
		}
		return 1e-6, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("IDs subset ran %d programs", ran)
	}
}

// TestFleetInvolvedDefaultsToIDs: a round restricted to explicit IDs
// must charge transfers for exactly those DPUs, not the whole fleet —
// the over-credited rank-parallel bandwidth bugfix.
func TestFleetInvolvedDefaultsToIDs(t *testing.T) {
	f, err := NewFleet(FleetOptions{DPUs: 16, Sample: 4}, Lockstep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Round(RoundSpec{IDs: []int{0, 8}, GatherBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Drain().WallSeconds, TransferSeconds(2, 4096); got != want {
		t.Fatalf("IDs-restricted round charged %.9fs, want two-DPU transfer %.9fs", got, want)
	}
	// An explicit Involved still wins over len(IDs).
	f2, err := NewFleet(FleetOptions{DPUs: 16, Sample: 4}, Lockstep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Round(RoundSpec{Involved: 5, IDs: []int{0}, GatherBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	if got, want := f2.Drain().WallSeconds, TransferSeconds(5, 4096); got != want {
		t.Fatalf("explicit Involved overridden: %.9fs, want %.9fs", got, want)
	}
}

// TestFleetAdvanceTo anchors rounds at modeled times — the serving
// layer's flush-time hook.
func TestFleetAdvanceTo(t *testing.T) {
	f, err := NewFleet(FleetOptions{DPUs: 8, Sample: 2}, Lockstep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Round(fixedRound(1e-3, 1024, 1024)); err != nil {
		t.Fatal(err)
	}
	w1 := f.Stats().WallSeconds
	f.AdvanceTo(w1 - 1e-4) // the clock never moves backwards
	if f.Stats().WallSeconds != w1 {
		t.Fatal("AdvanceTo into the past moved the clock")
	}
	f.AdvanceTo(w1 + 5e-3)
	if err := f.Round(fixedRound(1e-3, 1024, 1024)); err != nil {
		t.Fatal(err)
	}
	want := w1 + 5e-3 + 2*TransferSeconds(8, 1024) + 1e-3
	if got := f.Drain().WallSeconds; math.Abs(got-want) > 1e-12 {
		t.Fatalf("anchored round ends at %.9fs, want %.9fs", got, want)
	}

	// Pipelined: an idle window drains the pending gather, and the
	// advanced time becomes the wall clock.
	p, err := NewFleet(FleetOptions{DPUs: 8, Sample: 2}, Pipelined, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Round(fixedRound(1e-3, 1024, 1024)); err != nil {
		t.Fatal(err)
	}
	idle := p.Stats().WallSeconds + 10e-3
	p.AdvanceTo(idle)
	if got := p.Stats().WallSeconds; got != idle {
		t.Fatalf("idle advance: wall %.9fs, want %.9fs", got, idle)
	}
}

// TestFleetPipelineRace hammers a pipelined fleet with real DPU kernels
// across many rounds so `go test -race` exercises the cross-goroutine
// paths (parallelFor fan-out, per-id result slots, clock updates).
func TestFleetPipelineRace(t *testing.T) {
	f, err := NewFleet(FleetOptions{DPUs: 8, Exact: true, Parallelism: 8}, Pipelined,
		func(id int) (*dpu.DPU, error) {
			return dpu.New(dpu.Config{MRAMSize: 1 << 20, Seed: uint64(id) + 1}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]uint64, 8)
	for round := 0; round < 6; round++ {
		err := f.Round(RoundSpec{
			ScatterBytes: 128,
			GatherBytes:  128,
			Program: func(id int, d *dpu.DPU) (float64, error) {
				d.ResetRun()
				cycles, err := d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
					for i := 0; i < 50; i++ {
						tk.Exec(100)
						sums[id]++
					}
				}})
				if err != nil {
					return 0, err
				}
				return d.Seconds(cycles), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s := f.Drain()
	for id, v := range sums {
		if v != 300 {
			t.Fatalf("dpu %d ran %d increments, want 300", id, v)
		}
	}
	if s.Rounds != 6 || s.WallSeconds <= 0 || s.WallSeconds > s.LockstepSeconds*(1+1e-9) {
		t.Fatalf("pipelined stats implausible: %+v", s)
	}
}
