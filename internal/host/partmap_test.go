package host

import (
	"testing"

	"pimstm/internal/core"
)

func newPM(t *testing.T, dpus int) *PartitionedMap {
	t.Helper()
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestPartitionedMapValidation(t *testing.T) {
	if _, err := NewPartitionedMap(PartitionedMapConfig{Buckets: 64, Capacity: 64, Tasklets: 4}); err == nil {
		t.Fatal("zero DPUs accepted")
	}
	if _, err := NewPartitionedMap(PartitionedMapConfig{DPUs: 2, Buckets: 64, Capacity: 64}); err == nil {
		t.Fatal("zero tasklets accepted")
	}
	if _, err := NewPartitionedMap(PartitionedMapConfig{DPUs: 2, Buckets: 63, Capacity: 64, Tasklets: 4}); err == nil {
		t.Fatal("bad bucket count accepted")
	}
}

func TestPartitionedMapBatch(t *testing.T) {
	pm := newPM(t, 4)
	var ops []Op
	for k := uint64(0); k < 100; k++ {
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: k * 10})
	}
	res, err := pm.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	if pm.Len() != 100 {
		t.Fatalf("len = %d", pm.Len())
	}
	if pm.BatchSeconds <= 0 {
		t.Fatal("batch time not accounted")
	}

	// Mixed batch: gets see the puts, deletes remove.
	ops = nil
	for k := uint64(0); k < 100; k += 2 {
		ops = append(ops, Op{Kind: OpGet, Key: k})
		ops = append(ops, Op{Kind: OpDelete, Key: k + 1})
	}
	res, err = pm.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ops); i += 2 {
		get, del := res[i], res[i+1]
		if !get.OK || get.Value != ops[i].Key*10 {
			t.Fatalf("get %d = %+v", ops[i].Key, get)
		}
		if !del.OK {
			t.Fatalf("delete %d missed", ops[i+1].Key)
		}
	}
	if pm.Len() != 50 {
		t.Fatalf("len after deletes = %d", pm.Len())
	}
	// Keys survive across batches on the same memory image.
	if v, ok := pm.Get(0); !ok || v != 0 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
	if _, ok := pm.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestPartitionedMapRoutingSpread(t *testing.T) {
	pm := newPM(t, 8)
	counts := make([]int, 8)
	for k := uint64(0); k < 4000; k++ {
		counts[pm.owner(k)]++
	}
	for i, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("partition %d holds %d of 4000 keys: router skewed", i, c)
		}
	}
}

// TestApplyBatchSkewCharged is the skew regression test: a batch whose
// keys all live on one partition must model strictly more transfer
// time than a uniform batch of equal size. Under the pre-fix model —
// average-bucket payload plus a lone DPU credited with the aggregate
// bandwidth — both batches cost exactly the same and hot partitions
// were free.
func TestApplyBatchSkewCharged(t *testing.T) {
	const n = 64
	probe := newPM(t, 4)
	byOwner := make([][]uint64, 4)
	for k := uint64(0); ; k++ {
		o := probe.owner(k)
		if len(byOwner[o]) < n {
			byOwner[o] = append(byOwner[o], k)
		}
		if len(byOwner[0]) == n && len(byOwner[1]) >= n/4 &&
			len(byOwner[2]) >= n/4 && len(byOwner[3]) >= n/4 {
			break
		}
	}
	hotKeys := byOwner[0][:n]
	var uniKeys []uint64
	for o := 0; o < 4; o++ {
		uniKeys = append(uniKeys, byOwner[o][:n/4]...)
	}

	run := func(keys []uint64) FleetStats {
		pm := newPM(t, 4)
		ops := make([]Op, len(keys))
		for i, k := range keys {
			ops[i] = Op{Kind: OpPut, Key: k, Value: k}
		}
		if _, err := pm.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		return pm.Stats()
	}
	hot := run(hotKeys)
	uni := run(uniKeys)
	if hot.TransferSeconds <= uni.TransferSeconds {
		t.Fatalf("100%%-hot batch transfers (%.6fs) must cost strictly more than uniform (%.6fs)",
			hot.TransferSeconds, uni.TransferSeconds)
	}
	// The hot batch pays exactly the worst-case-bucket payload over one
	// DPU's link; the uniform batch spreads it across four.
	wantHot := TransferSeconds(1, 24*n) + TransferSeconds(1, 16*n)
	if got := hot.TransferSeconds; got < wantHot-1e-12 || got > wantHot+1e-12 {
		t.Fatalf("hot batch transfers %.9fs, want %.9fs", got, wantHot)
	}
	wantUni := TransferSeconds(4, 24*n/4) + TransferSeconds(4, 16*n/4)
	if got := uni.TransferSeconds; got < wantUni-1e-12 || got > wantUni+1e-12 {
		t.Fatalf("uniform batch transfers %.9fs, want %.9fs", got, wantUni)
	}
}

// TestCrossDPUTransfer: the CPU-coordinated multi-DPU atomic update of
// §5's future-work sketch must conserve the total.
func TestCrossDPUTransfer(t *testing.T) {
	pm := newPM(t, 4)
	// Find two keys on different DPUs.
	a, b := uint64(1), uint64(2)
	for pm.owner(b) == pm.owner(a) {
		b++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: a, Value: 1000},
		{Kind: OpPut, Key: b, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := pm.TransferBetween(a, b, 300)
	if err != nil || !ok {
		t.Fatalf("transfer failed: %v %v", ok, err)
	}
	va, _ := pm.Get(a)
	vb, _ := pm.Get(b)
	if va != 700 || vb != 800 {
		t.Fatalf("balances = %d,%d want 700,800", va, vb)
	}
	// Underflow refused without changes.
	ok, err = pm.TransferBetween(a, b, 10000)
	if err != nil || ok {
		t.Fatalf("underflow accepted: %v %v", ok, err)
	}
	va, _ = pm.Get(a)
	vb, _ = pm.Get(b)
	if va+vb != 1500 {
		t.Fatalf("total not conserved: %d", va+vb)
	}
	// Missing key refused.
	if ok, _ := pm.TransferBetween(999999, a, 1); ok {
		t.Fatal("transfer from missing key accepted")
	}
}

// TestApplyTransfersCoalesced: a whole batch of cross-DPU moves must
// cost two fleet rounds (one coalesced gather, one coalesced writeback)
// instead of four 331 µs CPU-mediated words per move.
func TestApplyTransfersCoalesced(t *testing.T) {
	pm := newPM(t, 4)
	var ops []Op
	for k := uint64(0); k < 32; k++ {
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: 1000})
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()

	var ts []Transfer
	for k := uint64(0); k < 16; k++ {
		ts = append(ts, Transfer{From: k, To: k + 16, Amount: 100})
	}
	ts = append(ts,
		Transfer{From: 0, To: 1, Amount: 100000}, // underflow: refused
		Transfer{From: 424242, To: 0, Amount: 1}, // missing key: refused
	)
	ok, err := pm.ApplyTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if !ok[i] {
			t.Fatalf("transfer %d refused", i)
		}
	}
	if ok[16] || ok[17] {
		t.Fatalf("bad transfers accepted: %v", ok[16:])
	}
	total := uint64(0)
	for k := uint64(0); k < 32; k++ {
		v, present := pm.Get(k)
		if !present {
			t.Fatalf("key %d lost", k)
		}
		total += v
	}
	if total != 32*1000 {
		t.Fatalf("total not conserved: %d", total)
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("coalesced batch took %d fleet rounds, want 2", got)
	}
	// The coalesced window must undercut the per-word §3.1 path: 4
	// CPU-mediated words per applied move.
	perWord := float64(4*16) * InterDPUWordLatencySeconds
	if got := after.WallSeconds - before.WallSeconds; got >= perWord {
		t.Fatalf("coalesced transfers cost %.3f ms, per-word path would be %.3f ms", got*1e3, perWord*1e3)
	}
	// Both directions move 16-byte key+value records (the host-side
	// Walk reads both), sized by the worst-case per-DPU bucket. Every
	// touched key was dirtied here, so gather and writeback charge the
	// same payload.
	buckets := map[int]int{}
	maxWords := 0
	for k := uint64(0); k < 32; k++ {
		buckets[pm.owner(k)]++
		if buckets[pm.owner(k)] > maxWords {
			maxWords = buckets[pm.owner(k)]
		}
	}
	wantXfer := 2 * TransferSeconds(len(buckets), 16*maxWords)
	if got := after.TransferSeconds - before.TransferSeconds; got < wantXfer-1e-12 || got > wantXfer+1e-12 {
		t.Fatalf("transfer window charged %.9fs, want symmetric 16-byte records: %.9fs", got, wantXfer)
	}

	// Empty batch is free.
	if ok, err := pm.ApplyTransfers(nil); err != nil || len(ok) != 0 {
		t.Fatalf("empty transfer batch: %v %v", ok, err)
	}
	if pm.Stats() != after {
		t.Fatal("empty transfer batch charged time")
	}

	// A batch where every transfer is refused still gathered its
	// snapshot, and BatchSeconds must reflect that window's delta.
	refused, err := pm.ApplyTransfers([]Transfer{{From: 424242, To: 0, Amount: 1}})
	if err != nil || refused[0] {
		t.Fatalf("refused-only batch: %v %v", refused, err)
	}
	if pm.BatchSeconds <= 0 {
		t.Fatal("refused-only batch did not account its gather window")
	}
}

// TestPartitionedMapPipelineBeatsLockstep streams the same batch
// sequence through both modes: identical functional results, strictly
// smaller modeled wall clock pipelined.
func TestPartitionedMapPipelineBeatsLockstep(t *testing.T) {
	run := func(mode ExecMode) (FleetStats, []OpResult) {
		pm, err := NewPartitionedMap(PartitionedMapConfig{
			DPUs: 4, Buckets: 64, Capacity: 512, Tasklets: 4,
			STM: core.Config{Algorithm: core.NOrec}, Mode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		var last []OpResult
		for b := 0; b < 6; b++ {
			var ops []Op
			for k := uint64(0); k < 64; k++ {
				if b == 0 {
					ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
				} else {
					ops = append(ops, Op{Kind: OpGet, Key: k})
				}
			}
			if last, err = pm.ApplyBatch(ops); err != nil {
				t.Fatal(err)
			}
		}
		return pm.Stats(), last
	}
	lock, lockRes := run(Lockstep)
	pipe, pipeRes := run(Pipelined)
	if pipe.WallSeconds >= lock.WallSeconds {
		t.Fatalf("pipelined serving (%.6fs) must beat lockstep (%.6fs)", pipe.WallSeconds, lock.WallSeconds)
	}
	if d := pipe.LockstepSeconds - lock.WallSeconds; d > 1e-9 || d < -1e-9 {
		t.Fatalf("lockstep-equivalent mismatch: %.9f vs %.9f", pipe.LockstepSeconds, lock.WallSeconds)
	}
	for i := range lockRes {
		if lockRes[i] != pipeRes[i] {
			t.Fatalf("mode changed results at %d: %+v vs %+v", i, lockRes[i], pipeRes[i])
		}
	}
}

func TestPartitionedMapDeterministic(t *testing.T) {
	run := func() (int, float64) {
		pm := newPM(t, 3)
		var ops []Op
		for k := uint64(0); k < 60; k++ {
			ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
		}
		if _, err := pm.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		return pm.Len(), pm.BatchSeconds
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Fatalf("nondeterministic store: (%d,%g) vs (%d,%g)", l1, s1, l2, s2)
	}
}
