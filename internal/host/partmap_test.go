package host

import (
	"testing"

	"pimstm/internal/core"
)

func newPM(t *testing.T, dpus int) *PartitionedMap {
	t.Helper()
	pm, err := NewPartitionedMap(dpus, 64, 512, 4, core.Config{Algorithm: core.NOrec})
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestPartitionedMapValidation(t *testing.T) {
	if _, err := NewPartitionedMap(0, 64, 64, 4, core.Config{}); err == nil {
		t.Fatal("zero DPUs accepted")
	}
	if _, err := NewPartitionedMap(2, 64, 64, 0, core.Config{}); err == nil {
		t.Fatal("zero tasklets accepted")
	}
	if _, err := NewPartitionedMap(2, 63, 64, 4, core.Config{}); err == nil {
		t.Fatal("bad bucket count accepted")
	}
}

func TestPartitionedMapBatch(t *testing.T) {
	pm := newPM(t, 4)
	var ops []Op
	for k := uint64(0); k < 100; k++ {
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: k * 10})
	}
	res, err := pm.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	if pm.Len() != 100 {
		t.Fatalf("len = %d", pm.Len())
	}
	if pm.BatchSeconds <= 0 {
		t.Fatal("batch time not accounted")
	}

	// Mixed batch: gets see the puts, deletes remove.
	ops = nil
	for k := uint64(0); k < 100; k += 2 {
		ops = append(ops, Op{Kind: OpGet, Key: k})
		ops = append(ops, Op{Kind: OpDelete, Key: k + 1})
	}
	res, err = pm.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ops); i += 2 {
		get, del := res[i], res[i+1]
		if !get.OK || get.Value != ops[i].Key*10 {
			t.Fatalf("get %d = %+v", ops[i].Key, get)
		}
		if !del.OK {
			t.Fatalf("delete %d missed", ops[i+1].Key)
		}
	}
	if pm.Len() != 50 {
		t.Fatalf("len after deletes = %d", pm.Len())
	}
	// Keys survive across batches on the same memory image.
	if v, ok := pm.Get(0); !ok || v != 0 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
	if _, ok := pm.Get(1); ok {
		t.Fatal("deleted key still present")
	}
}

func TestPartitionedMapRoutingSpread(t *testing.T) {
	pm := newPM(t, 8)
	counts := make([]int, 8)
	for k := uint64(0); k < 4000; k++ {
		counts[pm.owner(k)]++
	}
	for i, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("partition %d holds %d of 4000 keys: router skewed", i, c)
		}
	}
}

// TestCrossDPUTransfer: the CPU-coordinated multi-DPU atomic update of
// §5's future-work sketch must conserve the total.
func TestCrossDPUTransfer(t *testing.T) {
	pm := newPM(t, 4)
	// Find two keys on different DPUs.
	a, b := uint64(1), uint64(2)
	for pm.owner(b) == pm.owner(a) {
		b++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: a, Value: 1000},
		{Kind: OpPut, Key: b, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := pm.TransferBetween(a, b, 300)
	if err != nil || !ok {
		t.Fatalf("transfer failed: %v %v", ok, err)
	}
	va, _ := pm.Get(a)
	vb, _ := pm.Get(b)
	if va != 700 || vb != 800 {
		t.Fatalf("balances = %d,%d want 700,800", va, vb)
	}
	// Underflow refused without changes.
	ok, err = pm.TransferBetween(a, b, 10000)
	if err != nil || ok {
		t.Fatalf("underflow accepted: %v %v", ok, err)
	}
	va, _ = pm.Get(a)
	vb, _ = pm.Get(b)
	if va+vb != 1500 {
		t.Fatalf("total not conserved: %d", va+vb)
	}
	// Missing key refused.
	if ok, _ := pm.TransferBetween(999999, a, 1); ok {
		t.Fatal("transfer from missing key accepted")
	}
}

func TestPartitionedMapDeterministic(t *testing.T) {
	run := func() (int, float64) {
		pm := newPM(t, 3)
		var ops []Op
		for k := uint64(0); k < 60; k++ {
			ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
		}
		if _, err := pm.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		return pm.Len(), pm.BatchSeconds
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Fatalf("nondeterministic store: (%d,%g) vs (%d,%g)", l1, s1, l2, s2)
	}
}
