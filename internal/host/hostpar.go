package host

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the parallel host engine of ApplyTxns: the per-worker
// scratch arenas, the bounded dispatch helper, and the engine variants
// of the host-side batch phases (transaction classification, the
// execute round's per-key write analysis, and sampled-mode shadow-shard
// application). The engine is selected by PartitionedMapConfig.
// HostParallelism != 1; HostParallelism == 1 keeps the historical
// serial implementations verbatim as the differential reference (and
// as the baseline the scale artifact's host_speedup is measured
// against). Every engine phase must produce byte-identical modeled
// results to the reference:
//
//   - Classification pass 1 writes metas[i] disjointly per transaction,
//     so striping it over workers changes nothing.
//   - The per-key fold tables (classK, keyW) are built per worker over
//     contiguous transaction stripes and merged in stripe order, which
//     reconstructs exactly the batch-order sequential fold: firstT is
//     the first stripe's first toucher, written/anySer are ORs, put
//     counts are sums, and the final-value state (fk/lastPut) is
//     last-stripe-wins among stripes that set it.
//   - Shadow shards are per-DPU-disjoint and every client transaction
//     routes to exactly one DPU, so parallel shard application writes
//     results[] disjointly; shadow-failure keys are staged per worker
//     and merged as a set union (markStale is idempotent), and a fatal
//     commit-unit failure reports the smallest failing DPU id — the
//     same id the ascending serial sweep would stop at, because shards
//     are state-disjoint. (After a fatal error the engine may have
//     applied later shards the serial sweep would have skipped; the
//     batch error aborts the run either way, so that state is
//     unobservable.)
//
// What stays serial by design: unit routing (replica read spreading
// and put-group tasklet-pin allocation are batch-order-sensitive),
// the union-find loop (it folds over the merged key table), scheduler
// state machines, and all directory mutation.

// hostWorker is one engine worker's private scratch: evaluation state
// for multi-op shadow units, the remote-operand view of kernel-applied
// units, staged shadow-failure keys, the worker's first fatal error
// (with the smallest DPU id that raised it), and the stripe-local fold
// tables of the parallel classify/keyW builds.
type hostWorker struct {
	eval   evalScratch
	rem    remView
	failed []uint64
	err    error
	errID  int

	classK map[uint64]classInfo
	anySer bool

	keyW     map[uint64]keyWrite
	wrote    []uint64
	hasUnits bool

	_ [64]byte // keep workers off each other's cache lines
}

// hostPar is the engine's dispatch state on the PartitionedMap.
type hostPar struct {
	w      []hostWorker
	cursor atomic.Int64
}

// Work-scaling floors: a parallel dispatch is only worth its goroutine
// handoffs when every worker gets at least this much work.
const (
	minShardsPerWorker = 64
	minTxnsPerWorker   = 512
	shardChunk         = 16
)

// scaleWorkers bounds the dispatch width to keep per-worker work above
// the floor (never below one worker).
func scaleWorkers(workers, items, perWorker int) int {
	if max := (items + perWorker - 1) / perWorker; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runWorkers runs f(0..n-1) on n-1 spawned goroutines plus the calling
// goroutine (worker 0), and returns when all have finished. Workers
// coordinate their work split themselves (fixed stripes or the shared
// atomic cursor).
func runWorkers(n int, f func(wid int)) {
	if n <= 1 {
		f(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for wid := 1; wid < n; wid++ {
		go func(wid int) {
			defer wg.Done()
			f(wid)
		}(wid)
	}
	f(0)
	wg.Wait()
}

// HostWorkers reports the effective host-side worker count: 1 on the
// serial reference path, the resolved HostParallelism otherwise.
func (pm *PartitionedMap) HostWorkers() int {
	if pm.hostSerial {
		return 1
	}
	return pm.hostWorkers
}

// ownerFast is the engine's devirtualized owner routing: the static
// hash inlined when the placement is the stateless StaticHash (the
// common sweep configuration), the placement interface otherwise. The
// serial reference keeps the interface call so its measured cost stays
// representative of the historical implementation.
func (pm *PartitionedMap) ownerFast(key uint64) int {
	if n := pm.staticN; n > 0 {
		h := key
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		return int(h % uint64(n))
	}
	return pm.place.Owner(key)
}

// classifyTxnsPar is the engine's classifyTxns: pass 1 striped over
// workers (disjoint metas writes), the conflict pass built per stripe
// and merged in stripe order, and the union-find unchanged. Single-op
// transactions — the serving hot shape — classify without the generic
// per-op loop.
func (pm *PartitionedMap) classifyTxnsPar(txns []Txn, coordinateAll bool) []txnMeta {
	sc := &pm.sc
	if cap(sc.metas) < len(txns) {
		sc.metas = make([]txnMeta, len(txns))
	}
	metas := sc.metas[:len(txns)]
	n := len(txns)
	workers := scaleWorkers(pm.hostWorkers, n, minTxnsPerWorker)
	anyTxnSerializing := false
	if workers <= 1 {
		anyTxnSerializing = pm.classifyStripe(txns, metas, 0, n, coordinateAll)
	} else {
		runWorkers(workers, func(wid int) {
			lo, hi := wid*n/workers, (wid+1)*n/workers
			pm.par.w[wid].anySer = pm.classifyStripe(txns, metas, lo, hi, coordinateAll)
		})
		for wid := 0; wid < workers; wid++ {
			if pm.par.w[wid].anySer {
				anyTxnSerializing = true
			}
		}
	}
	if coordinateAll || !anyTxnSerializing {
		return metas
	}
	if workers <= 1 {
		pm.buildClassK(txns, metas)
	} else {
		pm.buildClassKPar(txns, metas, workers)
	}
	pm.resolveGroups(txns, metas)
	return metas
}

// classifyStripe fills metas[lo:hi] and reports whether the stripe
// holds a serializing transaction.
func (pm *PartitionedMap) classifyStripe(txns []Txn, metas []txnMeta, lo, hi int, coordinateAll bool) bool {
	anySer := false
	for i := lo; i < hi; i++ {
		m := &metas[i]
		ops := txns[i].Ops
		if len(ops) == 1 {
			// Single op: its owner is the sole DPU and only a guarded
			// RMW serializes — no generic loop needed.
			ser := isRMW(ops[0].Kind)
			*m = txnMeta{group: -1, soleDPU: pm.ownerFast(ops[0].Key), coordinated: coordinateAll, serializing: ser}
			if ser {
				anySer = true
			}
			continue
		}
		*m = txnMeta{group: -1, soleDPU: -1, coordinated: coordinateAll}
		if len(ops) == 0 {
			continue
		}
		m.soleDPU, m.serializing = classifyOps(ops, pm.ownerFn)
		m.cross = m.soleDPU < 0
		if m.serializing {
			anySer = true
		}
	}
	return anySer
}

// buildClassKPar builds the conflict pass's per-key table from
// per-worker stripe tables merged in stripe order: the first stripe
// containing a key contributes its first toucher (the global batch
// first), and written/anySer fold as ORs.
func (pm *PartitionedMap) buildClassKPar(txns []Txn, metas []txnMeta, workers int) {
	sc := &pm.sc
	n := len(txns)
	runWorkers(workers, func(wid int) {
		w := &pm.par.w[wid]
		if w.classK == nil {
			w.classK = make(map[uint64]classInfo)
		} else {
			clear(w.classK)
		}
		for i := wid * n / workers; i < (wid+1)*n/workers; i++ {
			ser := metas[i].serializing
			for _, op := range txns[i].Ops {
				ci, ok := w.classK[op.Key]
				if !ok {
					ci.firstT = int32(i)
				}
				if op.Kind != OpGet {
					ci.written = true
				}
				if ser {
					ci.anySer = true
				}
				w.classK[op.Key] = ci
			}
		}
	})
	clear(sc.classK)
	for wid := 0; wid < workers; wid++ {
		for k, ci := range pm.par.w[wid].classK {
			ex, ok := sc.classK[k]
			if !ok {
				sc.classK[k] = ci
				continue
			}
			ex.written = ex.written || ci.written
			ex.anySer = ex.anySer || ci.anySer
			sc.classK[k] = ex
		}
	}
}

// buildKeyWPar builds the execute round's per-key write analysis from
// per-worker stripe folds merged in stripe order. The merge
// reconstructs the sequential fold exactly: put counts sum, the
// delete/wrote flags OR, and the statically-known-final-value state
// (fk, lastPut) is taken from the last stripe whose ops set it —
// fkUnset marks a stripe that never did. It also commits empty
// transactions (a disjoint per-transaction write) and reports whether
// any stripe routed units. wroteKeys order is per-stripe batch order,
// a permutation of the serial order; its only consumer sorts first.
func (pm *PartitionedMap) buildKeyWPar(txns []Txn, metas []txnMeta, results []TxnResult, workers int) bool {
	sc := &pm.sc
	n := len(txns)
	runWorkers(workers, func(wid int) {
		w := &pm.par.w[wid]
		if w.keyW == nil {
			w.keyW = make(map[uint64]keyWrite)
		} else {
			clear(w.keyW)
		}
		w.wrote = w.wrote[:0]
		w.hasUnits = false
		for i := wid * n / workers; i < (wid+1)*n/workers; i++ {
			if metas[i].coordinated {
				continue
			}
			ops := txns[i].Ops
			if len(ops) == 0 {
				results[i].Committed = true
				continue
			}
			w.hasUnits = true
			foldKeyW(w.keyW, &w.wrote, ops)
		}
	})
	wroteKeys := sc.wroteKeys[:0]
	hasUnits := false
	for wid := 0; wid < workers; wid++ {
		w := &pm.par.w[wid]
		hasUnits = hasUnits || w.hasUnits
		for _, k := range w.wrote {
			kw := w.keyW[k]
			ex, ok := sc.keyW[k]
			if !ok {
				sc.keyW[k] = kw
				wroteKeys = append(wroteKeys, k)
				continue
			}
			ex.puts += kw.puts
			ex.dels = ex.dels || kw.dels
			ex.delsCommit = ex.delsCommit || kw.delsCommit
			if kw.fk != fkUnset {
				ex.fk, ex.lastPut = kw.fk, kw.lastPut
			}
			sc.keyW[k] = ex
		}
	}
	sc.wroteKeys = wroteKeys
	return hasUnits
}

// foldKeyW folds one transaction's write ops into a keyW table — the
// per-key state machine of the execute round's pass 1, shared by the
// engine's striped and inline builds.
func foldKeyW(keyW map[uint64]keyWrite, wrote *[]uint64, ops []Op) {
	guarded := false
	for _, op := range ops {
		if isRMW(op.Kind) {
			guarded = true
		}
	}
	for _, op := range ops {
		if op.Kind == OpGet {
			continue
		}
		kw := keyW[op.Key]
		if !kw.wrote {
			kw.wrote = true
			*wrote = append(*wrote, op.Key)
		}
		switch op.Kind {
		case OpPut:
			kw.puts++
			if guarded {
				kw.fk = fkFalse
			} else {
				kw.lastPut = op.Value
				kw.fk = fkTrue
			}
		case OpDelete:
			kw.dels = true
			if guarded {
				kw.fk = fkFalse
			} else {
				kw.delsCommit = true
			}
		case OpAdd, OpSub:
			kw.fk = fkFalse
		}
		keyW[op.Key] = kw
	}
}

// shadowApplyEngine applies the unsimulated DPUs' routed units to their
// shadow shards across the worker pool. Shards are per-DPU-disjoint
// and each client transaction's results land on exactly one DPU, so
// workers never write the same result slot; shadow-failure keys are
// staged per worker and merged into the batch's failure set afterwards
// (set union — the serial set is built in a different order but is the
// same set). A commit-unit store failure is fatal for the batch: every
// worker keeps scanning and records its smallest failing DPU id, and
// the merge reports the global minimum — the id the ascending serial
// sweep would have stopped at.
func (pm *PartitionedMap) shadowApplyEngine(involved []int, per [][]routedUnit, results []TxnResult) error {
	sc := &pm.sc
	n := len(involved)
	workers := scaleWorkers(pm.hostWorkers, n, minShardsPerWorker)
	if workers <= 1 {
		w := &pm.par.w[0]
		w.failed = w.failed[:0]
		for _, id := range involved {
			if pm.sim[id] {
				continue
			}
			if err := pm.shadowRunUnitsFast(w, id, per[id], results); err != nil {
				return err
			}
		}
		for _, k := range w.failed {
			sc.shadowFailed[k] = true
		}
		return nil
	}
	pm.par.cursor.Store(0)
	runWorkers(workers, func(wid int) {
		w := &pm.par.w[wid]
		w.failed = w.failed[:0]
		w.err, w.errID = nil, -1
		for {
			hi := int(pm.par.cursor.Add(shardChunk))
			lo := hi - shardChunk
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			for _, id := range involved[lo:hi] {
				if pm.sim[id] {
					continue
				}
				if err := pm.shadowRunUnitsFast(w, id, per[id], results); err != nil {
					if w.err == nil || id < w.errID {
						w.err, w.errID = err, id
					}
				}
			}
		}
	})
	var firstErr error
	firstID := -1
	for wid := 0; wid < workers; wid++ {
		w := &pm.par.w[wid]
		if w.err != nil && (firstErr == nil || w.errID < firstID) {
			firstErr, firstID = w.err, w.errID
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for wid := 0; wid < workers; wid++ {
		for _, k := range pm.par.w[wid].failed {
			sc.shadowFailed[k] = true
		}
	}
	return nil
}

// shadowRunUnitsFast is the engine's shadowRunUnits: identical
// semantics (routed order, guarded aborts, capacity failures, flush
// rollback, operand-table-first resolution for kernel-applied units),
// but running out of the worker's private scratch, iterating units in
// place, staging failure keys on the worker, and taking a dedicated
// fast path for the plain single-op client units that dominate sampled
// serving.
func (pm *PartitionedMap) shadowRunUnitsFast(w *hostWorker, id int, units []routedUnit, results []TxnResult) error {
	sh := pm.shadow[id]
	for ui := range units {
		u := &units[ui]
		if u.ti < 0 || (len(u.ops) == 1 && !isRMW(u.ops[0].Kind)) {
			op := &u.ops[0]
			if op.Kind == OpGet {
				// Hottest shape: a routed single read.
				v, ok := sh[op.Key]
				if u.ti >= 0 {
					r := &results[u.ti]
					r.Results[0] = OpResult{Value: v, OK: ok}
					r.Committed = true
					r.Err = nil
				}
				continue
			}
			var res OpResult
			switch op.Kind {
			case OpPut:
				ins, err := pm.shadowPut(id, op.Key, op.Value)
				res.OK, res.Err = ins, err
			case OpDelete:
				res.OK = pm.shadowDelete(id, op.Key)
			}
			if u.ti >= 0 {
				results[u.ti].Results[0] = res
				results[u.ti].Committed = res.Err == nil
				results[u.ti].Err = res.Err
			} else if res.Err != nil {
				if u.kind == unitCommit {
					return fmt.Errorf("host: writeback commit on dpu %d: %w", id, res.Err)
				}
				w.failed = append(w.failed, op.Key)
			}
			continue
		}
		pm.shadowEvalUnit(w, id, u, results)
	}
	return nil
}

// shadowEvalUnit runs one transactional unit — guards, overlay
// evaluation, flush with rollback, operand-table-first resolution for
// kernel-applied units — against a shadow shard out of the worker's
// private scratch. Shared between the routed sweep above and the fused
// route's inline apply of single-op RMWs.
func (pm *PartitionedMap) shadowEvalUnit(w *hostWorker, id int, u *routedUnit, results []TxnResult) {
	sh := pm.shadow[id]
	ops := u.ops
	var lk keyLookup = stateLookup(sh)
	if u.kind == unitApply {
		w.rem.rem = u.rem
		w.rem.next = sh
		lk = &w.rem
	}
	res := results[u.ti].Results
	for r := range res {
		res[r] = OpResult{}
	}
	order, ok := w.eval.run(ops, res, lk)
	var flushErr error
	if ok {
		flushed := 0
		for _, k := range order {
			if w.eval.writes[k].del {
				pm.shadowDelete(id, k)
				flushed++
				continue
			}
			if _, err := pm.shadowPut(id, k, w.eval.writes[k].val); err != nil {
				flushErr = err
				break
			}
			flushed++
		}
		if flushErr != nil {
			for r := flushed - 1; r >= 0; r-- {
				k := order[r]
				p := w.eval.prior[k]
				if p.del {
					pm.shadowDelete(id, k)
					continue
				}
				pm.shadowPut(id, k, p.val)
			}
		}
	}
	results[u.ti].Committed = ok && flushErr == nil
	results[u.ti].Err = flushErr
}
