package host

import "sort"

// This file is the pluggable batch-formation layer between the
// Submitter's admission queue and PartitionedMap.ApplyTxns. A Scheduler
// owns the pending transactions and decides when they leave as batches;
// the Submitter stays the transport (queue, futures, clock anchoring,
// stats) and applies whatever the scheduler emits, in order.
//
// Three policies ship:
//
//   - FIFOScheduler — the historical single pending lane, extracted
//     verbatim from the pre-scheduler Submitter so the default serving
//     path (and every BENCH artifact produced through it) is
//     byte-identical.
//   - LaneScheduler — classifies each transaction at admission as
//     confined (all keys on one DPU) or coordinated (keys spanning
//     DPUs) and batches the two lanes separately, so batches stay
//     homogeneous: a confined batch coalesces into the execute round's
//     two handshakes and never pays the coordination rounds a stray
//     cross-DPU transaction would drag in, and a coordinated batch
//     skips the execute round entirely. A starvation bound keeps the
//     sparse lane from being parked behind a busy one.
//   - AdaptiveScheduler — a LaneScheduler whose confined-lane MaxBatch
//     is retuned after every applied batch by AIMD against the
//     observed kernel-vs-handshake ratio (the ROADMAP's adaptive
//     MaxBatch item): handshake-bound batches grow the lane to
//     amortize the ~300 µs rounds, kernel-bound batches shrink it to
//     cut queueing latency.

// The default batching bounds, shared by SubmitterConfig.fill,
// NewFIFOScheduler and LaneConfig.fill so the three entry points can
// never drift apart.
const (
	defaultMaxBatch        = 64
	defaultMaxDelaySeconds = 300e-6
)

// Lane classifies a transaction (or a formed batch) for batch
// formation. The classification mirrors ApplyTxns's execution tiers —
// both sides use the same classifyOps analysis, so the scheduler and
// the store cannot disagree about which transactions coordinate.
type Lane int

const (
	// LaneMixed labels batches formed without lane segregation (the
	// FIFO policy); individual transactions are never mixed.
	LaneMixed Lane = iota
	// LaneConfined: every key is owned by one DPU, so the transaction
	// commits as a native PIM-STM transaction inside that DPU's batch
	// kernel.
	LaneConfined
	// LaneCoordinated: the keys span DPUs, so the transaction pays the
	// CPU-coordinated snapshot-gather and writeback-scatter rounds.
	LaneCoordinated
)

// String names the lane for tables and stats.
func (l Lane) String() string {
	switch l {
	case LaneConfined:
		return "confined"
	case LaneCoordinated:
		return "coordinated"
	default:
		return "mixed"
	}
}

// SchedTxn is one admitted transaction as schedulers see it. The
// resolution handle is the Submitter's; schedulers only group and
// order SchedTxns, they never resolve them.
type SchedTxn struct {
	Txn     Txn
	Arrival float64
	fut     *Future
}

// SchedBatch is one formed batch leaving a Scheduler.
type SchedBatch struct {
	Txns []SchedTxn
	// At is the modeled flush time the policy chose (a size flush uses
	// the triggering arrival, a delay flush the expired deadline). The
	// Submitter clamps it up to the newest arrival in the batch — a
	// transaction cannot be scattered before it arrives.
	At float64
	// Reason says why the batch left the scheduler.
	Reason FlushReason
	// Lane labels the batch: LaneConfined/LaneCoordinated under a
	// lane-segregating policy, LaneMixed under FIFO.
	Lane Lane
}

// ops totals the batch's operations.
func (b *SchedBatch) ops() int {
	n := 0
	for _, t := range b.Txns {
		n += len(t.Txn.Ops)
	}
	return n
}

// BatchFeedback is the applied batch's modeled cost decomposition, fed
// back to the scheduler after every flush: the execute/coordination
// kernels' launch time versus the host↔DPU transfer-engine time (the
// per-round ~300 µs handshakes plus payload). Adaptive schedulers tune
// themselves on the ratio; static ones ignore it.
type BatchFeedback struct {
	// Ops applied in the batch.
	Ops int
	// KernelSeconds is the window's summed kernel launch time.
	KernelSeconds float64
	// HandshakeSeconds is the window's summed transfer-engine time.
	HandshakeSeconds float64
	// WallSeconds is the window's wall-clock delta on the fleet clock.
	WallSeconds float64
}

// Scheduler is the pluggable batch-formation policy of a Submitter.
// Implementations are single-goroutine state machines driven by the
// Submitter's flusher (never call them concurrently) and must be pure
// functions of the admitted transaction stream — order, arrivals, op
// counts — so a deterministic stream yields a deterministic schedule.
// A scheduler instance is stateful and must not be shared between
// submitters.
type Scheduler interface {
	// Name labels the policy in stats, benches and artifacts.
	Name() string
	// Admit hands the scheduler one accepted transaction and returns
	// the batches that became due, in flush order: first any pending
	// deadlines the new arrival proves expired (possibly several), then
	// a size flush if the admission filled a lane.
	Admit(t SchedTxn) []SchedBatch
	// Drain flushes everything pending (an explicit Flush or Close), in
	// flush order.
	Drain() []SchedBatch
	// Observe feeds one applied batch's modeled cost back to the
	// policy, in flush order, before the next Admit.
	Observe(b SchedBatch, fb BatchFeedback)
}

// laneClassified is implemented by schedulers that classify
// transactions against a store's placement; NewSubmitter binds the
// store's classifier so the scheduler and ApplyTxns agree by
// construction. An explicitly configured Classify function wins.
type laneClassified interface {
	bindClassifier(classify func(Txn) Lane)
}

// fifoLane is one FIFO pending lane: the historical Submitter batching
// state machine (flush at MaxBatch ops, or when a later arrival proves
// the oldest pending transaction waited past MaxDelay on the modeled
// clock), extracted so FIFOScheduler uses one and LaneScheduler two.
type fifoLane struct {
	maxBatch int
	maxDelay float64
	label    Lane

	pending []SchedTxn
	ops     int
	// oldest is the minimum arrival in the pending lane: with
	// concurrent clients the admission order need not follow arrival
	// order, and the MaxDelay bound is on the oldest transaction, not
	// on whichever happened to enqueue first.
	oldest float64
}

// expire emits the delay flushes a new arrival at `now` proves due:
// the lane's deadline fired at oldest+maxDelay, shipping everything
// that had arrived by then — possibly several times over if the new
// arrival is far ahead.
func (l *fifoLane) expire(now float64) []SchedBatch {
	var out []SchedBatch
	for len(l.pending) > 0 && now > l.oldest+l.maxDelay {
		deadline := l.oldest + l.maxDelay
		var due, rest []SchedTxn
		for _, t := range l.pending {
			if t.Arrival <= deadline {
				due = append(due, t)
			} else {
				rest = append(rest, t)
			}
		}
		out = append(out, SchedBatch{Txns: due, At: deadline, Reason: FlushDelay, Lane: l.label})
		l.pending = rest
		l.oldest = minSchedArrival(rest)
		l.ops = 0
		for _, t := range rest {
			l.ops += len(t.Txn.Ops)
		}
	}
	return out
}

// admit appends one transaction and returns the size flush it
// triggered, if any.
func (l *fifoLane) admit(t SchedTxn) *SchedBatch {
	if len(l.pending) == 0 || t.Arrival < l.oldest {
		l.oldest = t.Arrival
	}
	l.pending = append(l.pending, t)
	l.ops += len(t.Txn.Ops)
	if l.ops >= l.maxBatch {
		b := SchedBatch{Txns: l.pending, At: t.Arrival, Reason: FlushSize, Lane: l.label}
		l.pending, l.ops = nil, 0
		return &b
	}
	return nil
}

// flushAll empties the lane as one batch at the given time (nil when
// the lane is empty).
func (l *fifoLane) flushAll(at float64, reason FlushReason) *SchedBatch {
	if len(l.pending) == 0 {
		return nil
	}
	b := SchedBatch{Txns: l.pending, At: at, Reason: reason, Lane: l.label}
	l.pending, l.ops = nil, 0
	return &b
}

// minSchedArrival returns the smallest arrival in the lane (0 if
// empty).
func minSchedArrival(ts []SchedTxn) float64 {
	if len(ts) == 0 {
		return 0
	}
	min := ts[0].Arrival
	for _, t := range ts[1:] {
		if t.Arrival < min {
			min = t.Arrival
		}
	}
	return min
}

// FIFOScheduler is the default policy: one pending lane holding every
// accepted transaction in admission order, flushed at MaxBatch ops or
// once the oldest pending transaction has waited MaxDelaySeconds on
// the modeled clock. It is the pre-scheduler Submitter's batching
// logic extracted verbatim — the default serving path through it is
// byte-identical to the historical one (regression-pinned against the
// committed BENCH artifacts).
type FIFOScheduler struct {
	lane fifoLane
}

// NewFIFOScheduler builds the policy. Non-positive arguments take the
// SubmitterConfig defaults (64 ops, 300 µs).
func NewFIFOScheduler(maxBatch int, maxDelaySeconds float64) *FIFOScheduler {
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	if maxDelaySeconds <= 0 {
		maxDelaySeconds = defaultMaxDelaySeconds
	}
	return &FIFOScheduler{lane: fifoLane{maxBatch: maxBatch, maxDelay: maxDelaySeconds, label: LaneMixed}}
}

// Name labels the policy.
func (f *FIFOScheduler) Name() string { return "fifo" }

// Admit implements Scheduler.
func (f *FIFOScheduler) Admit(t SchedTxn) []SchedBatch {
	out := f.lane.expire(t.Arrival)
	if b := f.lane.admit(t); b != nil {
		out = append(out, *b)
	}
	return out
}

// Drain implements Scheduler: the remainder leaves as one batch at the
// oldest pending arrival.
func (f *FIFOScheduler) Drain() []SchedBatch {
	if b := f.lane.flushAll(f.lane.oldest, FlushDrain); b != nil {
		return []SchedBatch{*b}
	}
	return nil
}

// Observe implements Scheduler (FIFO ignores feedback).
func (f *FIFOScheduler) Observe(SchedBatch, BatchFeedback) {}

// LaneConfig tunes one lane of a LaneScheduler. Zero fields take the
// FIFO defaults (64 ops, 300 µs).
type LaneConfig struct {
	// MaxBatch flushes the lane once it holds this many operations.
	MaxBatch int
	// MaxDelaySeconds bounds how long the lane's oldest transaction may
	// wait on the modeled clock.
	MaxDelaySeconds float64
}

func (c *LaneConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultMaxBatch
	}
	if c.MaxDelaySeconds <= 0 {
		c.MaxDelaySeconds = defaultMaxDelaySeconds
	}
}

// LaneSchedulerConfig parameterizes a LaneScheduler.
type LaneSchedulerConfig struct {
	// Confined and Coordinated tune the two lanes independently.
	Confined, Coordinated LaneConfig
	// StarvationBatches is the starvation bound: after this many
	// confined batches flush while coordinated transactions wait, the
	// coordinated lane is flushed with the next one regardless of its
	// own size and delay bounds, so a trickle of cross-DPU traffic is
	// never parked behind a confined flood (default 4; negative
	// disables the bound — the lane then relies on its MaxDelay alone).
	StarvationBatches int
	// Classify overrides the transaction classifier (tests and
	// stores-free use). Nil means NewSubmitter binds the store's
	// PartitionedMap.LaneOf, which shares ApplyTxns's owner analysis.
	Classify func(Txn) Lane
}

// LaneScheduler batches confined and coordinated transactions
// separately so every batch is homogeneous: confined batches coalesce
// into the execute round's two handshakes, coordinated batches into
// the snapshot-gather and writeback-scatter pair, and no batch pays
// all rounds at once the way a mixed FIFO batch does. Classification
// happens at admission against the store's current placement; a
// migration between admission and flush can strand a transaction in
// the wrong lane, which costs a heterogeneous batch (ApplyTxns
// re-derives the truth) but never correctness.
//
// Each lane keeps the FIFO state machine — per-lane MaxBatch/MaxDelay,
// oldest-arrival delay bounds — and every arrival drives the deadline
// checks of both lanes, so a lane with no successor traffic of its own
// still flushes once any later transaction proves its deadline passed.
// The StarvationBatches bound additionally ships waiting coordinated
// transactions after too many confined flushes.
type LaneScheduler struct {
	cfg      LaneSchedulerConfig
	classify func(Txn) Lane
	conf     fifoLane
	coord    fifoLane

	// sinceCoord counts confined flushes emitted while coordinated
	// transactions wait; starved totals the starvation-bound flushes.
	sinceCoord int
	starved    int
}

// NewLaneScheduler builds the policy. Zero config fields take the
// documented defaults.
func NewLaneScheduler(cfg LaneSchedulerConfig) *LaneScheduler {
	cfg.Confined.fill()
	cfg.Coordinated.fill()
	if cfg.StarvationBatches == 0 {
		cfg.StarvationBatches = 4
	}
	return &LaneScheduler{
		cfg:      cfg,
		classify: cfg.Classify,
		conf:     fifoLane{maxBatch: cfg.Confined.MaxBatch, maxDelay: cfg.Confined.MaxDelaySeconds, label: LaneConfined},
		coord:    fifoLane{maxBatch: cfg.Coordinated.MaxBatch, maxDelay: cfg.Coordinated.MaxDelaySeconds, label: LaneCoordinated},
	}
}

// Name labels the policy.
func (l *LaneScheduler) Name() string { return "lane" }

// bindClassifier installs the store's classifier unless the config
// already provided one.
func (l *LaneScheduler) bindClassifier(classify func(Txn) Lane) {
	if l.classify == nil {
		l.classify = classify
	}
}

// Starved reports how many coordinated batches the starvation bound
// forced out.
func (l *LaneScheduler) Starved() int { return l.starved }

// push appends one due batch, maintaining the starvation counter: a
// confined flush while coordinated transactions wait brings the bound
// closer, and hitting it ships the coordinated lane immediately after.
func (l *LaneScheduler) push(out []SchedBatch, b SchedBatch) []SchedBatch {
	out = append(out, b)
	switch b.Lane {
	case LaneCoordinated:
		l.sinceCoord = 0
	case LaneConfined:
		if len(l.coord.pending) == 0 {
			l.sinceCoord = 0
			break
		}
		l.sinceCoord++
		if l.cfg.StarvationBatches > 0 && l.sinceCoord >= l.cfg.StarvationBatches {
			if sb := l.coord.flushAll(b.At, FlushDelay); sb != nil {
				out = append(out, *sb)
				l.starved++
			}
			l.sinceCoord = 0
		}
	}
	return out
}

// Admit implements Scheduler: the arrival first proves expired
// deadlines on both lanes (merged in deadline order), then joins its
// own lane, possibly filling it.
func (l *LaneScheduler) Admit(t SchedTxn) []SchedBatch {
	due := append(l.conf.expire(t.Arrival), l.coord.expire(t.Arrival)...)
	sort.SliceStable(due, func(i, j int) bool { return due[i].At < due[j].At })
	var out []SchedBatch
	for _, b := range due {
		out = l.push(out, b)
	}
	lane := &l.conf
	if l.classify(t.Txn) == LaneCoordinated {
		lane = &l.coord
	}
	if b := lane.admit(t); b != nil {
		out = l.push(out, *b)
	}
	return out
}

// Drain implements Scheduler: both lanes empty, confined first. The
// starvation accounting is bypassed — a drain empties the coordinated
// lane unconditionally anyway, and routing it through the bound would
// mislabel the flush as FlushDelay (and overcount Starved).
func (l *LaneScheduler) Drain() []SchedBatch {
	var out []SchedBatch
	if b := l.conf.flushAll(l.conf.oldest, FlushDrain); b != nil {
		out = append(out, *b)
	}
	if b := l.coord.flushAll(l.coord.oldest, FlushDrain); b != nil {
		out = append(out, *b)
	}
	l.sinceCoord = 0
	return out
}

// Observe implements Scheduler (the static lane policy ignores
// feedback).
func (l *LaneScheduler) Observe(SchedBatch, BatchFeedback) {}

// setConfinedMaxBatch retunes the confined lane's size bound (the
// adaptive controller's knob).
func (l *LaneScheduler) setConfinedMaxBatch(n int) { l.conf.maxBatch = n }

// confinedMaxBatch reads the confined lane's current size bound.
func (l *LaneScheduler) confinedMaxBatch() int { return l.conf.maxBatch }

// AdaptiveConfig tunes the AIMD MaxBatch controller. Zero fields take
// the documented defaults.
type AdaptiveConfig struct {
	// Floor and Ceiling clamp the confined lane's MaxBatch (defaults
	// 16 and 1024 ops). The initial bound is the lane config's
	// MaxBatch, clamped into this range.
	Floor, Ceiling int
	// TargetRatio is the kernel-vs-handshake ratio the controller aims
	// for (default 1): a batch whose kernel seconds fall below
	// TargetRatio × its handshake seconds is handshake-bound — the
	// fixed ~300 µs rounds dominate — and the lane grows to amortize
	// them.
	TargetRatio float64
	// Headroom (default 2) sets the shrink threshold at
	// Headroom × TargetRatio: only batches that far past kernel-bound
	// shrink the lane, so the controller does not oscillate inside the
	// band.
	Headroom float64
	// Step is the additive increase in ops per handshake-bound batch
	// (default 16).
	Step int
	// Shrink is the multiplicative decrease factor applied per
	// strongly kernel-bound batch, in (0, 1) (default 0.5).
	Shrink float64
}

func (c *AdaptiveConfig) fill() {
	if c.Floor <= 0 {
		c.Floor = 16
	}
	if c.Ceiling <= 0 {
		c.Ceiling = 1024
	}
	if c.Ceiling < c.Floor {
		c.Ceiling = c.Floor
	}
	if c.TargetRatio <= 0 {
		c.TargetRatio = 1
	}
	if c.Headroom <= 1 {
		c.Headroom = 2
	}
	if c.Step <= 0 {
		c.Step = 16
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		c.Shrink = 0.5
	}
}

// AdaptiveScheduler is a LaneScheduler whose confined-lane MaxBatch is
// retuned after every applied confined batch by AIMD against the
// observed kernel-vs-handshake ratio from the fleet's round stats:
// additive increase while batches are handshake-bound (growing batches
// amortizes the fixed ~300 µs rounds), multiplicative decrease once
// the kernel dominates well past the target (smaller batches then cut
// queueing latency without losing throughput). The bound is clamped to
// [Floor, Ceiling]; feedback is a pure function of the modeled clock,
// so the controller's trajectory is deterministic per trace.
type AdaptiveScheduler struct {
	*LaneScheduler
	acfg AdaptiveConfig
}

// NewAdaptiveScheduler builds the controller over a fresh
// LaneScheduler.
func NewAdaptiveScheduler(lane LaneSchedulerConfig, cfg AdaptiveConfig) *AdaptiveScheduler {
	cfg.fill()
	a := &AdaptiveScheduler{LaneScheduler: NewLaneScheduler(lane), acfg: cfg}
	a.setConfinedMaxBatch(clampInt(a.confinedMaxBatch(), cfg.Floor, cfg.Ceiling))
	return a
}

// Name labels the policy.
func (a *AdaptiveScheduler) Name() string { return "adaptive" }

// MaxBatch reports the controller's current confined-lane bound.
func (a *AdaptiveScheduler) MaxBatch() int { return a.confinedMaxBatch() }

// Observe implements Scheduler: one AIMD step per applied confined
// batch.
func (a *AdaptiveScheduler) Observe(b SchedBatch, fb BatchFeedback) {
	if b.Lane != LaneConfined || fb.HandshakeSeconds <= 0 {
		return
	}
	ratio := fb.KernelSeconds / fb.HandshakeSeconds
	mb := a.confinedMaxBatch()
	switch {
	case ratio < a.acfg.TargetRatio:
		mb += a.acfg.Step
	case ratio > a.acfg.TargetRatio*a.acfg.Headroom:
		mb = int(float64(mb) * a.acfg.Shrink)
	default:
		return
	}
	a.setConfinedMaxBatch(clampInt(mb, a.acfg.Floor, a.acfg.Ceiling))
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
