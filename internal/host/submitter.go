package host

import (
	"errors"
	"sync"
)

// ErrSubmitterClosed is the sentinel returned by Submit, Flush and a
// repeated Close once the submitter has been closed.
var ErrSubmitterClosed = errors.New("host: submitter closed")

// SubmitterConfig tunes the adaptive batcher. Zero fields take the
// documented defaults.
type SubmitterConfig struct {
	// MaxBatch flushes the pending batch as soon as it holds this many
	// operations across its transactions (default 64). It parameterizes
	// the default FIFOScheduler; an explicit Scheduler brings its own
	// bounds and ignores it.
	MaxBatch int
	// MaxDelaySeconds bounds, on the modeled clock, how long the oldest
	// pending transaction may wait before the batch flushes (default
	// 300 µs — about one transfer handshake). Like MaxBatch it
	// parameterizes the default FIFOScheduler only.
	MaxDelaySeconds float64
	// Queue is the bounded admission queue: Submit blocks once this
	// many accepted transactions await batching (default 4 × MaxBatch).
	// The bound caps real memory, not the modeled arrival process — a
	// transaction admitted late still carries its open-loop arrival
	// stamp, so the backpressure shows up as modeled queueing delay.
	Queue int
	// Scheduler is the batch-formation policy (nil = a FIFOScheduler
	// over MaxBatch/MaxDelaySeconds, the historical single pending
	// lane). Schedulers are stateful: one instance per submitter. A
	// lane-segregating scheduler without an explicit classifier is
	// bound to the store's LaneOf at construction.
	Scheduler Scheduler
}

func (c *SubmitterConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultMaxBatch
	}
	if c.MaxDelaySeconds <= 0 {
		c.MaxDelaySeconds = defaultMaxDelaySeconds
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
}

// Future resolves one submitted Txn: its per-op results and one modeled
// commit latency for the transaction as a unit (batch completion on the
// fleet clock minus the transaction's arrival, i.e. queue wait + batch
// wall clock, in TxnResult.LatencySeconds).
type Future struct {
	done chan struct{}
	res  TxnResult
}

// Wait blocks until the transaction's batch has been applied and
// returns its TxnResult.
func (f *Future) Wait() TxnResult {
	<-f.done
	return f.res
}

// FlushReason says why a batch left the submitter.
type FlushReason int

// Flush reasons.
const (
	// FlushSize: the batch reached MaxBatch ops.
	FlushSize FlushReason = iota
	// FlushDelay: a later arrival pushed the oldest pending transaction
	// past MaxDelaySeconds on the modeled clock.
	FlushDelay
	// FlushDrain: an explicit Flush or Close drained the remainder.
	FlushDrain
)

// SubmitterStats counts the batcher's decisions. Valid snapshot any
// time; totals are final once Close has returned.
type SubmitterStats struct {
	// Submitted ops batched and applied, across Txns transactions, in
	// Batches applied batches.
	Submitted, Txns, Batches int
	// SizeFlushes, DelayFlushes and DrainFlushes split Batches by
	// FlushReason.
	SizeFlushes, DelayFlushes, DrainFlushes int
	// MaxBatchOps is the largest batch applied, in ops.
	MaxBatchOps int
	// ConfinedBatches and CoordinatedBatches split Batches by lane
	// under a lane-segregating scheduler (both zero under FIFO, whose
	// batches are unlaned).
	ConfinedBatches, CoordinatedBatches int
	// GatherSeconds, ApplySeconds and WritebackSeconds accumulate every
	// applied batch's coordinated-commit phase split (ApplyTxnsStats):
	// prepare gathers, kernel apply-program cycles, and writeback
	// transfer time, on the modeled clock. All zero for a workload that
	// never coordinates.
	GatherSeconds, ApplySeconds, WritebackSeconds float64
	// GuardAborts accumulates every applied batch's guard-aborted
	// transactions (ApplyTxnsStats.GuardAborts): clean aborts on a
	// missing key or an OpSub underflow, with no store-level error.
	GuardAborts int
	// HostClassifySeconds, HostRouteSeconds, HostShadowSeconds and
	// HostCompileSeconds accumulate the batches' REAL machine wall-clock
	// per host-side phase (ApplyTxnsStats.Host*Seconds) — simulator
	// speed, not modeled time. They vary run to run, so every
	// byte-identity comparison of serving results must zero them first
	// (see ServeResult.ZeroHostClock).
	HostClassifySeconds float64
	HostRouteSeconds    float64
	HostShadowSeconds   float64
	HostCompileSeconds  float64
}

// ZeroHostClock clears the real-time host phase counters so two runs'
// stats can be compared for byte identity. Every modeled-clock field
// stays untouched.
func (s *SubmitterStats) ZeroHostClock() {
	s.HostClassifySeconds = 0
	s.HostRouteSeconds = 0
	s.HostShadowSeconds = 0
	s.HostCompileSeconds = 0
}

// submitMsg is one queue entry: a transaction with its future, or a
// flush barrier (txn future nil, barrier non-nil).
type submitMsg struct {
	txn     Txn
	arrival float64
	fut     *Future
	barrier chan struct{}
}

// Submitter is a goroutine-safe serving front-end over a
// PartitionedMap: many clients Submit transactions — ordered groups of
// Ops over arbitrary keys; a single op is just a 1-op Txn — and a
// pluggable Scheduler batches them (the default FIFOScheduler flushes
// at MaxBatch ops or once the oldest pending transaction has waited
// MaxDelaySeconds on the modeled clock); the submitter applies each
// emitted batch and resolves each transaction's Future with its per-op
// results and one modeled commit latency.
//
// Arrival times are modeled seconds relative to the submitter's
// creation (the open-loop traffic clock); the underlying fleet clock
// is advanced so a batch never starts before its flush time. Flush
// decisions are a pure function of the transaction stream (order,
// arrivals, op counts, the scheduler's bounds), never of real time, so
// a deterministic stream yields a deterministic schedule — a
// transaction with no successor traffic stays pending until Flush or
// Close.
//
// The PartitionedMap must not be used directly while the submitter is
// open; one flusher goroutine owns it (and drives the scheduler, so
// Scheduler implementations need no locking).
type Submitter struct {
	pm    *PartitionedMap
	cfg   SubmitterConfig
	sched Scheduler
	base  float64 // fleet clock at creation; arrivals are offsets from it

	mu     sync.RWMutex // guards closed vs. channel send
	closed bool

	ch   chan submitMsg
	done chan struct{}

	statsMu sync.Mutex
	stats   SubmitterStats
	err     error // first ApplyTxns error

	// txnScratch is flush's reusable batch slice; owned by the single
	// flusher goroutine, and ApplyTxns does not retain its argument.
	txnScratch []Txn
}

// NewSubmitter starts the serving front-end over pm. Close it to drain
// pending transactions and stop the flusher.
func NewSubmitter(pm *PartitionedMap, cfg SubmitterConfig) *Submitter {
	cfg.fill()
	sched := cfg.Scheduler
	if sched == nil {
		sched = NewFIFOScheduler(cfg.MaxBatch, cfg.MaxDelaySeconds)
	}
	if lc, ok := sched.(laneClassified); ok {
		lc.bindClassifier(pm.LaneOf)
	}
	s := &Submitter{
		pm:    pm,
		cfg:   cfg,
		sched: sched,
		base:  pm.fleet.Stats().WallSeconds,
		ch:    make(chan submitMsg, cfg.Queue),
		done:  make(chan struct{}),
	}
	go s.run()
	return s
}

// Submit enqueues one transaction that arrived at the given modeled
// time (seconds since the submitter was created) and returns its
// Future. It blocks while the admission queue is full (backpressure)
// and is safe from many goroutines. After Close it returns
// ErrSubmitterClosed instead of panicking on the closed queue; empty
// transactions are rejected.
func (s *Submitter) Submit(txn Txn, arrival float64) (*Future, error) {
	if len(txn.Ops) == 0 {
		return nil, errors.New("host: empty transaction")
	}
	f := &Future{done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrSubmitterClosed
	}
	s.ch <- submitMsg{txn: txn, arrival: arrival, fut: f}
	s.mu.RUnlock()
	return f, nil
}

// Flush forces the pending batch out (reason FlushDrain) and returns
// once it has been applied. A no-op when nothing is pending; after
// Close it returns ErrSubmitterClosed.
func (s *Submitter) Flush() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrSubmitterClosed
	}
	b := make(chan struct{})
	s.ch <- submitMsg{barrier: b}
	s.mu.RUnlock()
	<-b
	return nil
}

// Close drains every pending transaction, stops the flusher and
// returns the first batch-application error (nil normally). A second
// Close returns ErrSubmitterClosed instead of panicking on the closed
// queue.
func (s *Submitter) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return ErrSubmitterClosed
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	<-s.done
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.err
}

// Stats snapshots the batching counters.
func (s *Submitter) Stats() SubmitterStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// run is the flusher: it owns the PartitionedMap (a Fleet is not safe
// for concurrent rounds) and drives the scheduler — every queue
// message becomes an Admit or Drain, and the batches the policy emits
// are applied in order.
func (s *Submitter) run() {
	defer close(s.done)
	for msg := range s.ch {
		if msg.barrier != nil {
			s.flushAll(s.sched.Drain())
			close(msg.barrier)
			continue
		}
		s.flushAll(s.sched.Admit(SchedTxn{Txn: msg.txn, Arrival: msg.arrival, fut: msg.fut}))
	}
	s.flushAll(s.sched.Drain())
}

// flushAll applies the scheduler's emitted batches in flush order.
func (s *Submitter) flushAll(batches []SchedBatch) {
	for _, b := range batches {
		if len(b.Txns) > 0 {
			s.flush(b)
		}
	}
}

// flush applies one batch at its modeled flush time (clamped to the
// newest arrival it contains — transactions cannot be scattered before
// they arrive), resolves the futures, and feeds the window's modeled
// cost back to the scheduler. Batch completion is the fleet wall clock
// after the window's rounds, which counts the batch's gather as
// draining immediately; per-transaction latency is completion minus
// arrival.
func (s *Submitter) flush(b SchedBatch) {
	at := b.At
	txns := s.txnScratch[:0]
	ops := 0
	for _, m := range b.Txns {
		txns = append(txns, m.Txn)
		ops += len(m.Txn.Ops)
		if m.Arrival > at {
			at = m.Arrival
		}
	}
	s.txnScratch = txns
	s.pm.fleet.AdvanceTo(s.base + at)
	res, err := s.pm.ApplyTxns(txns)
	complete := s.pm.fleet.Stats().WallSeconds
	for i, m := range b.Txns {
		if err != nil {
			m.fut.res = TxnResult{Err: err, Results: make([]OpResult, len(m.Txn.Ops))}
		} else {
			m.fut.res = res[i]
		}
		m.fut.res.LatencySeconds = complete - (s.base + m.Arrival)
		close(m.fut.done)
	}
	if err == nil {
		// Snapshot the window's cost split before the rebalancer can run
		// placement rounds over it; the feedback must describe this batch
		// alone. An errored apply leaves the Batch* fields on the
		// previous window, so it feeds nothing back.
		s.sched.Observe(b, BatchFeedback{
			Ops:              ops,
			KernelSeconds:    s.pm.BatchLaunchSeconds,
			HandshakeSeconds: s.pm.BatchTransferSeconds,
			WallSeconds:      s.pm.BatchSeconds,
		})
	}

	// Load stats just reached the rebalancer (ApplyTxns observes every
	// routed batch); let it act in the quiescent window between batches,
	// where its migration and promotion rounds delay only later traffic.
	// Under a lane scheduler it thereby sees per-lane batches — each
	// homogeneous flush is one observation.
	var rebErr error
	if err == nil {
		_, rebErr = s.pm.MaybeRebalance()
	}

	s.statsMu.Lock()
	s.stats.Submitted += ops
	s.stats.Txns += len(b.Txns)
	s.stats.Batches++
	if err == nil {
		s.stats.GatherSeconds += s.pm.BatchPhases.GatherSeconds
		s.stats.ApplySeconds += s.pm.BatchPhases.ApplySeconds
		s.stats.WritebackSeconds += s.pm.BatchPhases.WritebackSeconds
		s.stats.GuardAborts += s.pm.BatchPhases.GuardAborts
		s.stats.HostClassifySeconds += s.pm.BatchPhases.HostClassifySeconds
		s.stats.HostRouteSeconds += s.pm.BatchPhases.HostRouteSeconds
		s.stats.HostShadowSeconds += s.pm.BatchPhases.HostShadowSeconds
		s.stats.HostCompileSeconds += s.pm.BatchPhases.HostCompileSeconds
	}
	if ops > s.stats.MaxBatchOps {
		s.stats.MaxBatchOps = ops
	}
	switch b.Reason {
	case FlushSize:
		s.stats.SizeFlushes++
	case FlushDelay:
		s.stats.DelayFlushes++
	default:
		s.stats.DrainFlushes++
	}
	switch b.Lane {
	case LaneConfined:
		s.stats.ConfinedBatches++
	case LaneCoordinated:
		s.stats.CoordinatedBatches++
	}
	if err == nil {
		err = rebErr
	}
	if err != nil && s.err == nil {
		s.err = err
	}
	s.statsMu.Unlock()
}
