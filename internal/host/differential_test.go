package host

import (
	"fmt"
	"testing"

	"pimstm/internal/core"
)

// The differential safety net for the placement refactor: randomized
// op/transfer streams run through a PartitionedMap under every
// placement — static hash, directory, directory with an aggressive
// rebalancer forcing replication, and one forcing migration — and every
// result must match a plain host-side reference map. Batches use
// distinct keys (each op in a batch is an independent concurrent
// transaction, so same-key intra-batch order is unspecified by design);
// transfers may repeat keys freely because ApplyTransfers applies them
// in order.

// diffStep is one step of a generated stream.
type diffStep struct {
	ops []Op
	ts  []Transfer
}

// genStream builds a deterministic randomized stream over the keyspace.
func genStream(seed uint64, steps, keyspace int) []diffStep {
	rng := Rand64(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	// Zipf-ish key picker: half the draws concentrate on 4 hot keys so
	// the rebalancing variants actually act.
	pick := func() uint64 {
		if rng.Next()%2 == 0 {
			return rng.Next() % 4
		}
		return rng.Next() % uint64(keyspace)
	}
	out := make([]diffStep, steps)
	for s := range out {
		if rng.Next()%10 < 7 {
			n := int(8 + rng.Next()%25)
			used := make(map[uint64]bool)
			var ops []Op
			for len(ops) < n {
				k := pick()
				if used[k] {
					continue
				}
				used[k] = true
				switch rng.Next() % 10 {
				case 0:
					ops = append(ops, Op{Kind: OpDelete, Key: k})
				case 1, 2, 3:
					ops = append(ops, Op{Kind: OpPut, Key: k, Value: rng.Next() % 1000})
				default:
					ops = append(ops, Op{Kind: OpGet, Key: k})
				}
			}
			out[s] = diffStep{ops: ops}
			continue
		}
		n := int(1 + rng.Next()%6)
		ts := make([]Transfer, n)
		for i := range ts {
			ts[i] = Transfer{From: pick(), To: pick(), Amount: rng.Next() % 200}
		}
		out[s] = diffStep{ts: ts}
	}
	return out
}

// refApply runs one step against the reference map, returning the
// expected per-op results and transfer outcomes.
func refApply(ref map[uint64]uint64, step diffStep) ([]OpResult, []bool) {
	if step.ops != nil {
		res := make([]OpResult, len(step.ops))
		for i, op := range step.ops {
			switch op.Kind {
			case OpGet:
				res[i].Value, res[i].OK = ref[op.Key], false
				if _, ok := ref[op.Key]; ok {
					res[i].OK = true
				}
			case OpPut:
				_, exists := ref[op.Key]
				ref[op.Key] = op.Value
				res[i].OK = !exists
			case OpDelete:
				_, res[i].OK = ref[op.Key]
				delete(ref, op.Key)
			}
		}
		return res, nil
	}
	ok := make([]bool, len(step.ts))
	for i, t := range step.ts {
		from, fok := ref[t.From]
		_, tok := ref[t.To]
		if !fok || !tok || from < t.Amount {
			continue
		}
		ref[t.From] -= t.Amount
		ref[t.To] += t.Amount
		ok[i] = true
	}
	return nil, ok
}

func TestDifferentialPlacements(t *testing.T) {
	const (
		dpus     = 4
		keyspace = 48
		steps    = 30
	)
	variants := []struct {
		name  string
		build func() (*PartitionedMap, error)
	}{
		{"static", func() (*PartitionedMap, error) {
			return NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec},
			})
		}},
		{"directory", func() (*PartitionedMap, error) {
			return NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
		}},
		// Aggressive control planes: tiny windows, no per-key floor to
		// speak of, and a write-share split forcing one variant to
		// replicate everything hot and the other to migrate it.
		{"directory+replicate", func() (*PartitionedMap, error) {
			pm, err := NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
			if err != nil {
				return nil, err
			}
			_, err = NewRebalancer(pm, RebalancerConfig{
				WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
				Replicas: 2, ReplicateMaxWriteShare: 1.0, CooldownWindows: 1,
			})
			return pm, err
		}},
		{"directory+migrate", func() (*PartitionedMap, error) {
			pm, err := NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
			if err != nil {
				return nil, err
			}
			_, err = NewRebalancer(pm, RebalancerConfig{
				WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
				Replicas: 2, ReplicateMaxWriteShare: 1e-9, CooldownWindows: 1,
			})
			return pm, err
		}},
	}

	for seed := uint64(1); seed <= 3; seed++ {
		stream := genStream(seed, steps, keyspace)
		for _, v := range variants {
			t.Run(fmt.Sprintf("seed%d/%s", seed, v.name), func(t *testing.T) {
				pm, err := v.build()
				if err != nil {
					t.Fatal(err)
				}
				ref := make(map[uint64]uint64)
				for si, step := range stream {
					wantRes, wantOK := refApply(ref, step)
					if step.ops != nil {
						got, err := pm.ApplyBatch(step.ops)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						for i := range got {
							if got[i].Err != nil {
								t.Fatalf("step %d op %d errored: %v", si, i, got[i].Err)
							}
							if got[i] != wantRes[i] {
								t.Fatalf("step %d op %d (%+v): got %+v want %+v",
									si, i, step.ops[i], got[i], wantRes[i])
							}
						}
						if _, err := pm.MaybeRebalance(); err != nil {
							t.Fatalf("step %d rebalance: %v", si, err)
						}
					} else {
						got, err := pm.ApplyTransfers(step.ts)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						for i := range got {
							if got[i] != wantOK[i] {
								t.Fatalf("step %d transfer %d (%+v): got %v want %v",
									si, i, step.ts[i], got[i], wantOK[i])
							}
						}
					}
				}
				// Final state: every key agrees with the reference.
				if pm.Len() != len(ref) {
					t.Fatalf("final len %d, reference %d", pm.Len(), len(ref))
				}
				for k := uint64(0); k < keyspace; k++ {
					want, wantOK := ref[k]
					got, gotOK := pm.Get(k)
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("final key %d: got %d,%v want %d,%v", k, got, gotOK, want, wantOK)
					}
				}
				// Replicated reads agree too: one more all-Get pass.
				var gets []Op
				for k := uint64(0); k < keyspace; k++ {
					gets = append(gets, Op{Kind: OpGet, Key: k})
				}
				res, err := pm.ApplyBatch(gets)
				if err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < keyspace; k++ {
					want, wantOK := ref[k]
					if res[k].OK != wantOK || (wantOK && res[k].Value != want) {
						t.Fatalf("replicated read of key %d: got %d,%v want %d,%v",
							k, res[k].Value, res[k].OK, want, wantOK)
					}
				}
			})
		}
	}
}
