package host

import (
	"fmt"
	"testing"

	"pimstm/internal/core"
)

// The differential safety net for the placement and Txn refactors:
// randomized op/transfer/transaction streams run through a
// PartitionedMap under every placement — static hash, directory,
// directory with an aggressive rebalancer forcing replication, and one
// forcing migration — and every result must match a plain host-side
// reference map. Single-op batches use distinct keys (each op is an
// independent concurrent transaction, so same-key intra-batch order is
// unspecified by design); transfers and multi-op transactions may
// repeat keys freely, because both serialize deterministically in
// batch order — so the transaction steps deliberately overlap keys,
// mix guarded RMWs with puts and deletes, and straddle whatever keys
// the rebalancer variants have migrated or replicated.

// diffStep is one step of a generated stream.
type diffStep struct {
	ops  []Op
	ts   []Transfer
	txns []Txn
}

// genStream builds a deterministic randomized stream over the keyspace.
func genStream(seed uint64, steps, keyspace int) []diffStep {
	rng := Rand64(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	// Zipf-ish key picker: half the draws concentrate on 4 hot keys so
	// the rebalancing variants actually act.
	pick := func() uint64 {
		if rng.Next()%2 == 0 {
			return rng.Next() % 4
		}
		return rng.Next() % uint64(keyspace)
	}
	out := make([]diffStep, steps)
	for s := range out {
		switch draw := rng.Next() % 10; {
		case draw < 5:
			n := int(8 + rng.Next()%25)
			used := make(map[uint64]bool)
			var ops []Op
			for len(ops) < n {
				k := pick()
				if used[k] {
					continue
				}
				used[k] = true
				switch rng.Next() % 10 {
				case 0:
					ops = append(ops, Op{Kind: OpDelete, Key: k})
				case 1, 2, 3:
					ops = append(ops, Op{Kind: OpPut, Key: k, Value: rng.Next() % 1000})
				default:
					ops = append(ops, Op{Kind: OpGet, Key: k})
				}
			}
			out[s] = diffStep{ops: ops}
		case draw < 7:
			n := int(1 + rng.Next()%6)
			ts := make([]Transfer, n)
			for i := range ts {
				ts[i] = Transfer{From: pick(), To: pick(), Amount: rng.Next() % 200}
			}
			out[s] = diffStep{ts: ts}
		default:
			// Multi-key transaction batch: 2–4 ops per txn, keys free
			// to collide across txns (batch order serializes them) and
			// to land on migrated or replicated keys.
			n := int(1 + rng.Next()%5)
			txns := make([]Txn, n)
			for i := range txns {
				size := int(2 + rng.Next()%3)
				ops := make([]Op, size)
				for j := range ops {
					k := pick()
					switch rng.Next() % 10 {
					case 0:
						ops[j] = Op{Kind: OpDelete, Key: k}
					case 1, 2:
						ops[j] = Op{Kind: OpPut, Key: k, Value: rng.Next() % 1000}
					case 3, 4:
						ops[j] = Op{Kind: OpAdd, Key: k, Value: rng.Next() % 100}
					case 5, 6:
						ops[j] = Op{Kind: OpSub, Key: k, Value: rng.Next() % 100}
					default:
						ops[j] = Op{Kind: OpGet, Key: k}
					}
				}
				txns[i] = Txn{Ops: ops}
			}
			out[s] = diffStep{txns: txns}
		}
	}
	return out
}

// refApplyTxn is the independent reference evaluator for one
// transaction: ops run in order against a working copy, a failing
// guard discards everything, and a commit replaces the reference
// state. Results mirror the store's contract — ops after a failing
// guard stay zero.
func refApplyTxn(ref map[uint64]uint64, txn Txn) ([]OpResult, bool) {
	res := make([]OpResult, len(txn.Ops))
	work := make(map[uint64]uint64, len(ref))
	for k, v := range ref {
		work[k] = v
	}
	for j, op := range txn.Ops {
		switch op.Kind {
		case OpGet:
			v, ok := work[op.Key]
			res[j].Value, res[j].OK = v, ok
		case OpPut:
			_, ok := work[op.Key]
			res[j].OK = !ok
			work[op.Key] = op.Value
		case OpDelete:
			_, res[j].OK = work[op.Key]
			delete(work, op.Key)
		case OpAdd:
			v, ok := work[op.Key]
			if !ok {
				return res, false
			}
			work[op.Key] = v + op.Value
			res[j].Value, res[j].OK = v+op.Value, true
		case OpSub:
			v, ok := work[op.Key]
			if !ok || v < op.Value {
				return res, false
			}
			work[op.Key] = v - op.Value
			res[j].Value, res[j].OK = v-op.Value, true
		}
	}
	for k := range ref {
		delete(ref, k)
	}
	for k, v := range work {
		ref[k] = v
	}
	return res, true
}

// refApply runs one step against the reference map, returning the
// expected per-op results and transfer outcomes.
func refApply(ref map[uint64]uint64, step diffStep) ([]OpResult, []bool) {
	if step.ops != nil {
		res := make([]OpResult, len(step.ops))
		for i, op := range step.ops {
			switch op.Kind {
			case OpGet:
				res[i].Value, res[i].OK = ref[op.Key], false
				if _, ok := ref[op.Key]; ok {
					res[i].OK = true
				}
			case OpPut:
				_, exists := ref[op.Key]
				ref[op.Key] = op.Value
				res[i].OK = !exists
			case OpDelete:
				_, res[i].OK = ref[op.Key]
				delete(ref, op.Key)
			}
		}
		return res, nil
	}
	ok := make([]bool, len(step.ts))
	for i, t := range step.ts {
		from, fok := ref[t.From]
		_, tok := ref[t.To]
		if !fok || !tok || from < t.Amount {
			continue
		}
		ref[t.From] -= t.Amount
		ref[t.To] += t.Amount
		ok[i] = true
	}
	return nil, ok
}

// TestDifferentialKernelCommit pins the kernel-side commit against the
// independent host reference under every placement × scheduler × Sample
// setting: randomized multi-key transaction streams are admitted
// through a real Scheduler instance (the same Admit/Drain/Observe
// protocol the Submitter drives), every emitted batch is applied and
// compared transaction by transaction in batch order, and the final
// store state must equal the reference map. The stream deliberately
// mixes single-owner write sets with cross-DPU reads (the kernel-apply
// fast path), writes spanning owners (the two-round multi-owner
// commit), and overlapping conflict groups, so both commit paths — and
// their sampled-fleet shadow twins — face the same adversarial keys.
func TestDifferentialKernelCommit(t *testing.T) {
	const (
		dpus     = 4
		keyspace = 48
		txnCount = 120
	)
	genTxns := func(seed uint64, owner func(uint64) int) []Txn {
		rng := Rand64(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
		pick := func() uint64 {
			if rng.Next()%2 == 0 {
				return rng.Next() % 4
			}
			return rng.Next() % uint64(keyspace)
		}
		// sameOwnerKey draws a key with the same static-hash owner as k,
		// biasing streams toward single-owner write sets.
		sameOwnerKey := func(k uint64) uint64 {
			for attempt := 0; attempt < 16; attempt++ {
				c := pick()
				if owner(c) == owner(k) {
					return c
				}
			}
			return k
		}
		txns := make([]Txn, txnCount)
		for i := range txns {
			size := int(2 + rng.Next()%3)
			ops := make([]Op, size)
			kernelShaped := rng.Next()%2 == 0
			base := pick()
			for j := range ops {
				k := pick()
				kind := rng.Next() % 10
				if kernelShaped && kind < 7 {
					// Writes share base's owner; reads roam — the
					// kernel-apply classification when placement agrees.
					k = sameOwnerKey(base)
				}
				switch kind {
				case 0:
					ops[j] = Op{Kind: OpDelete, Key: k}
				case 1, 2:
					ops[j] = Op{Kind: OpPut, Key: k, Value: rng.Next() % 1000}
				case 3, 4:
					ops[j] = Op{Kind: OpAdd, Key: k, Value: rng.Next() % 100}
				case 5, 6:
					ops[j] = Op{Kind: OpSub, Key: k, Value: rng.Next() % 100}
				default:
					ops[j] = Op{Kind: OpGet, Key: k}
				}
			}
			txns[i] = Txn{Ops: ops}
		}
		return txns
	}
	schedulers := map[string]func(pm *PartitionedMap) Scheduler{
		"fifo": func(*PartitionedMap) Scheduler { return NewFIFOScheduler(24, 300e-6) },
		"lane": func(pm *PartitionedMap) Scheduler {
			s := NewLaneScheduler(LaneSchedulerConfig{
				Confined:    LaneConfig{MaxBatch: 24, MaxDelaySeconds: 300e-6},
				Coordinated: LaneConfig{MaxBatch: 48, MaxDelaySeconds: 600e-6},
			})
			s.bindClassifier(pm.LaneOf)
			return s
		},
		"adaptive": func(pm *PartitionedMap) Scheduler {
			s := NewAdaptiveScheduler(LaneSchedulerConfig{
				Confined:    LaneConfig{MaxBatch: 24, MaxDelaySeconds: 300e-6},
				Coordinated: LaneConfig{MaxBatch: 48, MaxDelaySeconds: 600e-6},
			}, AdaptiveConfig{})
			s.bindClassifier(pm.LaneOf)
			return s
		},
	}
	placements := map[string]func() Placement{
		"static":    func() Placement { return nil },
		"directory": func() Placement { return NewDirectory(dpus) },
	}
	for placeName, place := range placements {
		for schedName, mkSched := range schedulers {
			for _, sample := range []int{0, 2} {
				name := fmt.Sprintf("%s/%s/sample%d", placeName, schedName, sample)
				t.Run(name, func(t *testing.T) {
					pm, err := NewPartitionedMap(PartitionedMapConfig{
						DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
						STM: core.Config{Algorithm: core.NOrec}, Placement: place(),
						Sample: sample,
					})
					if err != nil {
						t.Fatal(err)
					}
					var reb *Rebalancer
					if placeName == "directory" {
						// An aggressive control plane keeps migrating and
						// replicating the hot keys under the stream, so
						// owners shift mid-run.
						if reb, err = NewRebalancer(pm, RebalancerConfig{
							WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
							Replicas: 2, ReplicateMaxWriteShare: 0.5, CooldownWindows: 1,
						}); err != nil {
							t.Fatal(err)
						}
						_ = reb
					}
					ref := make(map[uint64]uint64)
					// Preload half the keyspace so guarded RMWs both hit
					// and miss.
					var load []Txn
					for k := uint64(0); k < keyspace; k += 2 {
						load = append(load, Txn{Ops: []Op{{Kind: OpPut, Key: k, Value: k}}})
						ref[k] = k
					}
					if _, err := pm.ApplyTxns(load); err != nil {
						t.Fatal(err)
					}
					sched := mkSched(pm)
					applyBatch := func(b SchedBatch) {
						if len(b.Txns) == 0 {
							return
						}
						txns := make([]Txn, len(b.Txns))
						for i := range b.Txns {
							txns[i] = b.Txns[i].Txn
						}
						got, err := pm.ApplyTxns(txns)
						if err != nil {
							t.Fatalf("batch apply: %v", err)
						}
						for i, txn := range txns {
							wantRes, wantOK := refApplyTxn(ref, txn)
							if got[i].Err != nil {
								t.Fatalf("txn %d errored: %v", i, got[i].Err)
							}
							if got[i].Committed != wantOK {
								t.Fatalf("txn %d (%+v): committed %v want %v",
									i, txn.Ops, got[i].Committed, wantOK)
							}
							for j := range wantRes {
								if got[i].Results[j] != wantRes[j] {
									t.Fatalf("txn %d op %d (%+v): got %+v want %+v",
										i, j, txn.Ops[j], got[i].Results[j], wantRes[j])
								}
							}
						}
						sched.Observe(b, BatchFeedback{
							Ops:              len(txns),
							KernelSeconds:    pm.BatchLaunchSeconds,
							HandshakeSeconds: pm.BatchTransferSeconds,
							WallSeconds:      pm.BatchSeconds,
						})
						if _, err := pm.MaybeRebalance(); err != nil {
							t.Fatalf("rebalance: %v", err)
						}
					}
					txns := genTxns(7, pm.owner)
					for i, txn := range txns {
						for _, b := range sched.Admit(SchedTxn{Txn: txn, Arrival: float64(i) * 1e-5}) {
							applyBatch(b)
						}
					}
					for _, b := range sched.Drain() {
						applyBatch(b)
					}
					if pm.TxnsCoordinated == 0 {
						t.Fatal("stream never coordinated; the kernel-commit path was not exercised")
					}
					for k := uint64(0); k < keyspace; k++ {
						want, wantOK := ref[k]
						got, gotOK := pm.Get(k)
						if gotOK != wantOK || (gotOK && got != want) {
							t.Fatalf("final key %d: got %d,%v want %d,%v", k, got, gotOK, want, wantOK)
						}
					}
				})
			}
		}
	}
}

func TestDifferentialPlacements(t *testing.T) {
	const (
		dpus     = 4
		keyspace = 48
		steps    = 30
	)
	variants := []struct {
		name  string
		build func() (*PartitionedMap, error)
	}{
		{"static", func() (*PartitionedMap, error) {
			return NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec},
			})
		}},
		{"directory", func() (*PartitionedMap, error) {
			return NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
		}},
		// Aggressive control planes: tiny windows, no per-key floor to
		// speak of, and a write-share split forcing one variant to
		// replicate everything hot and the other to migrate it.
		{"directory+replicate", func() (*PartitionedMap, error) {
			pm, err := NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
			if err != nil {
				return nil, err
			}
			_, err = NewRebalancer(pm, RebalancerConfig{
				WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
				Replicas: 2, ReplicateMaxWriteShare: 1.0, CooldownWindows: 1,
			})
			return pm, err
		}},
		{"directory+migrate", func() (*PartitionedMap, error) {
			pm, err := NewPartitionedMap(PartitionedMapConfig{
				DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
				STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(dpus),
			})
			if err != nil {
				return nil, err
			}
			_, err = NewRebalancer(pm, RebalancerConfig{
				WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
				Replicas: 2, ReplicateMaxWriteShare: 1e-9, CooldownWindows: 1,
			})
			return pm, err
		}},
	}

	for seed := uint64(1); seed <= 3; seed++ {
		stream := genStream(seed, steps, keyspace)
		for _, v := range variants {
			t.Run(fmt.Sprintf("seed%d/%s", seed, v.name), func(t *testing.T) {
				pm, err := v.build()
				if err != nil {
					t.Fatal(err)
				}
				ref := make(map[uint64]uint64)
				for si, step := range stream {
					if step.txns != nil {
						// Serial batch-order reference: the conflict
						// rule guarantees intersecting transactions
						// commit in batch order, and disjoint ones
						// commute.
						got, err := pm.ApplyTxns(step.txns)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						for i, txn := range step.txns {
							wantRes, wantOK := refApplyTxn(ref, txn)
							if got[i].Err != nil {
								t.Fatalf("step %d txn %d errored: %v", si, i, got[i].Err)
							}
							if got[i].Committed != wantOK {
								t.Fatalf("step %d txn %d (%+v): committed %v want %v",
									si, i, txn.Ops, got[i].Committed, wantOK)
							}
							for j := range wantRes {
								if got[i].Results[j] != wantRes[j] {
									t.Fatalf("step %d txn %d op %d (%+v): got %+v want %+v",
										si, i, j, txn.Ops[j], got[i].Results[j], wantRes[j])
								}
							}
						}
						if _, err := pm.MaybeRebalance(); err != nil {
							t.Fatalf("step %d rebalance: %v", si, err)
						}
						continue
					}
					wantRes, wantOK := refApply(ref, step)
					if step.ops != nil {
						got, err := pm.ApplyBatch(step.ops)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						for i := range got {
							if got[i].Err != nil {
								t.Fatalf("step %d op %d errored: %v", si, i, got[i].Err)
							}
							if got[i] != wantRes[i] {
								t.Fatalf("step %d op %d (%+v): got %+v want %+v",
									si, i, step.ops[i], got[i], wantRes[i])
							}
						}
						if _, err := pm.MaybeRebalance(); err != nil {
							t.Fatalf("step %d rebalance: %v", si, err)
						}
					} else {
						got, err := pm.ApplyTransfers(step.ts)
						if err != nil {
							t.Fatalf("step %d: %v", si, err)
						}
						for i := range got {
							if got[i] != wantOK[i] {
								t.Fatalf("step %d transfer %d (%+v): got %v want %v",
									si, i, step.ts[i], got[i], wantOK[i])
							}
						}
					}
				}
				// Final state: every key agrees with the reference.
				if pm.Len() != len(ref) {
					t.Fatalf("final len %d, reference %d", pm.Len(), len(ref))
				}
				for k := uint64(0); k < keyspace; k++ {
					want, wantOK := ref[k]
					got, gotOK := pm.Get(k)
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("final key %d: got %d,%v want %d,%v", k, got, gotOK, want, wantOK)
					}
				}
				// Replicated reads agree too: one more all-Get pass.
				var gets []Op
				for k := uint64(0); k < keyspace; k++ {
					gets = append(gets, Op{Kind: OpGet, Key: k})
				}
				res, err := pm.ApplyBatch(gets)
				if err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < keyspace; k++ {
					want, wantOK := ref[k]
					if res[k].OK != wantOK || (wantOK && res[k].Value != want) {
						t.Fatalf("replicated read of key %d: got %d,%v want %d,%v",
							k, res[k].Value, res[k].OK, want, wantOK)
					}
				}
			})
		}
	}
}
