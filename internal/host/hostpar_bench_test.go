package host

import (
	"slices"
	"testing"

	"pimstm/internal/core"
)

// Host-side microbenchmarks for the phases the parallel engine touches,
// each runnable on the serial reference path (HostParallelism 1), the
// GOMAXPROCS engine (0), and an explicit 4-worker engine — `make bench`
// runs them all, and ReportAllocs keeps the allocation budgets visible
// next to the timings.

var benchPaths = []struct {
	name string
	par  int
}{
	{"serial-ref", 1},
	{"engine", 0},
	{"engine-w4", 4},
}

// benchClassifyTxns builds the classification workload: 1024
// transactions, 70% single-op serving shapes and 30% two-op cross-DPU
// guarded RMWs, so the bench pays both classify passes and the
// union-find (anySer is true and conflicts exist).
func benchClassifyTxns(b *testing.B, par int) {
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 64, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, HostParallelism: par,
	})
	if err != nil {
		b.Fatal(err)
	}
	txns := make([]Txn, 1024)
	for i := range txns {
		k := uint64(i*2654435761) % 4096
		switch i % 10 {
		case 0, 1, 2:
			txns[i] = Txn{Ops: []Op{
				{Kind: OpAdd, Key: k, Value: 1},
				{Kind: OpAdd, Key: (k + 2048) % 4096, Value: 1},
			}}
		case 3, 4:
			txns[i] = Txn{Ops: []Op{{Kind: OpPut, Key: k, Value: k}}}
		default:
			txns[i] = Txn{Ops: []Op{{Kind: OpGet, Key: k}}}
		}
	}
	pm.classifyTxns(txns, false) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.classifyTxns(txns, false)
	}
}

func BenchmarkClassifyTxns(b *testing.B) {
	for _, p := range benchPaths {
		b.Run(p.name, func(b *testing.B) { benchClassifyTxns(b, p.par) })
	}
}

// benchApplyTxnsSampledHost is the scale experiment's hot loop in
// miniature: a 256-DPU fleet with only 2 DPUs cycle-simulated, serving
// 1024-txn batches of guarded adds. Kernel simulation is a rounding
// error at this sample, so the measurement is the host side end to
// end — classify, unit routing, shadow application, stats.
func benchApplyTxnsSampledHost(b *testing.B, par int) {
	const keyspace = 4096
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 256, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Mode: Pipelined,
		Sample: 2, HostParallelism: par,
	})
	if err != nil {
		b.Fatal(err)
	}
	var load []Op
	for k := uint64(0); k < keyspace; k++ {
		load = append(load, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		b.Fatal(err)
	}
	txns := make([]Txn, 1024)
	for i := range txns {
		txns[i] = Txn{Ops: []Op{{Kind: OpAdd, Key: uint64(i*2654435761) % keyspace, Value: 1}}}
	}
	if _, err := pm.ApplyTxns(txns); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.ApplyTxns(txns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyTxnsSampledHost(b *testing.B) {
	for _, p := range benchPaths {
		b.Run(p.name, func(b *testing.B) { benchApplyTxnsSampledHost(b, p.par) })
	}
}

// benchShadowFixture fabricates the shadow-application input of one
// execute round on a 256-DPU fleet with 8 simulated DPUs: 1024 routed
// single-op client units (75% reads, 25% guarded adds) spread over the
// ~248 shadow shards, with their per-txn result slabs.
func benchShadowFixture(b *testing.B, par int) (*PartitionedMap, []int, [][]routedUnit, []TxnResult) {
	const keyspace = 4096
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 256, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Mode: Pipelined,
		Sample: 8, HostParallelism: par,
	})
	if err != nil {
		b.Fatal(err)
	}
	var load []Op
	for k := uint64(0); k < keyspace; k++ {
		load = append(load, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		b.Fatal(err)
	}
	per := make([][]routedUnit, 256)
	results := make([]TxnResult, 1024)
	var involved []int
	for i := range results {
		k := uint64(i*2654435761) % keyspace
		id := pm.owner(k)
		if pm.sim[id] {
			continue
		}
		op := Op{Kind: OpGet, Key: k}
		if i%4 == 0 {
			op = Op{Kind: OpAdd, Key: k, Value: 1}
		}
		if len(per[id]) == 0 {
			involved = append(involved, id)
		}
		per[id] = append(per[id], routedUnit{ops: []Op{op}, ti: i, group: -1})
		results[i].Results = make([]OpResult, 1)
	}
	slices.Sort(involved)
	return pm, involved, per, results
}

// BenchmarkShadowRunUnits compares the serial shadow sweep with the
// engine's worker-pool application over the same fabricated round.
func BenchmarkShadowRunUnits(b *testing.B) {
	b.Run("serial-ref", func(b *testing.B) {
		pm, involved, per, results := benchShadowFixture(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, id := range involved {
				if err := pm.shadowRunUnits(id, per[id], results); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, p := range benchPaths[1:] {
		b.Run(p.name, func(b *testing.B) {
			pm, involved, per, results := benchShadowFixture(b, p.par)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pm.shadowApplyEngine(involved, per, results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
