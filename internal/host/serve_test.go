package host

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"pimstm/internal/core"
)

// sameTrace compares two traces structurally (Txn holds a slice, so
// the structs are not directly comparable).
func sameTrace(a, b []TimedTxn) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || len(a[i].Txn.Ops) != len(b[i].Txn.Ops) {
			return false
		}
		for j := range a[i].Txn.Ops {
			if a[i].Txn.Ops[j] != b[i].Txn.Ops[j] {
				return false
			}
		}
	}
	return true
}

// TestGenerateTrafficDeterministic: same seed ⇒ identical txn stream
// (the satellite determinism requirement for the serve bench).
func TestGenerateTrafficDeterministic(t *testing.T) {
	cfg := TrafficConfig{Ops: 500, Rate: 1e5, ReadPct: 80, Keyspace: 128, ZipfS: 1.2, Seed: 7}
	a, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 500 {
		t.Fatalf("trace length %d", len(a))
	}
	if !sameTrace(a, b) {
		t.Fatal("same-seed runs diverged")
	}
	cfg.Seed = 8
	c, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sameTrace(a, c) {
		t.Fatal("different seeds produced an identical trace")
	}

	reads := 0
	for i, tt := range a {
		if i > 0 && tt.Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals regress at %d", i)
		}
		if len(tt.Txn.Ops) != 1 {
			t.Fatalf("default TxnSize must yield 1-op txns, got %d", len(tt.Txn.Ops))
		}
		op := tt.Txn.Ops[0]
		if op.Key >= 128 {
			t.Fatalf("key %d outside keyspace", op.Key)
		}
		if op.Kind == OpGet {
			reads++
		}
	}
	if reads < 350 || reads > 450 {
		t.Fatalf("read mix off: %d/500 gets at 80%%", reads)
	}
	// Mean inter-arrival must track 1/Rate.
	mean := a[len(a)-1].Arrival / float64(len(a))
	if mean < 0.5e-5 || mean > 2e-5 {
		t.Fatalf("mean inter-arrival %g at rate 1e5", mean)
	}

	if _, err := GenerateTraffic(TrafficConfig{Rate: 1, Keyspace: 1}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := GenerateTraffic(TrafficConfig{Ops: 1, Keyspace: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := GenerateTraffic(TrafficConfig{Ops: 1, Rate: 1}); err == nil {
		t.Fatal("zero keyspace accepted")
	}
	if _, err := GenerateTraffic(TrafficConfig{Ops: 1, Rate: 1, Keyspace: 8, TxnSize: 3}); err == nil {
		t.Fatal("multi-op traffic without a fleet size accepted")
	}
	if _, err := GenerateTraffic(TrafficConfig{Ops: 1, Rate: 1, Keyspace: 8, TxnSize: 3, DPUs: 4, CrossDPU: 1.5}); err == nil {
		t.Fatal("cross-DPU fraction above 1 accepted")
	}
}

// TestTrafficConfigValidation is the up-front bounds satellite: every
// out-of-range knob fails Validate with a descriptive error naming the
// knob, instead of surfacing deep in the shaper or being silently
// ignored, and the legitimate shapes all pass.
func TestTrafficConfigValidation(t *testing.T) {
	valid := TrafficConfig{Ops: 10, Rate: 1e5, ReadPct: 50, Keyspace: 64, TxnSize: 2, CrossDPU: 0.5, DPUs: 4}
	cases := []struct {
		name    string
		mutate  func(*TrafficConfig)
		wantErr string // substring of the error ("" = must pass)
	}{
		{"valid multi-op", func(c *TrafficConfig) {}, ""},
		{"valid single-op default", func(c *TrafficConfig) { c.TxnSize, c.CrossDPU, c.DPUs = 0, 0, 0 }, ""},
		{"valid explicit single-op", func(c *TrafficConfig) { c.TxnSize, c.CrossDPU = 1, 0 }, ""},
		{"valid confined multi-op", func(c *TrafficConfig) { c.CrossDPU = 0 }, ""},
		{"valid cross extremes", func(c *TrafficConfig) { c.CrossDPU = 1 }, ""},
		{"zero ops", func(c *TrafficConfig) { c.Ops = 0 }, "at least one transaction"},
		{"negative rate", func(c *TrafficConfig) { c.Rate = -1 }, "positive arrival rate"},
		{"zero keyspace", func(c *TrafficConfig) { c.Keyspace = 0 }, "at least one key"},
		{"negative zipf", func(c *TrafficConfig) { c.ZipfS = -0.5 }, "zipf"},
		{"negative txn size", func(c *TrafficConfig) { c.TxnSize = -2 }, "transaction size"},
		{"cross below zero", func(c *TrafficConfig) { c.CrossDPU = -0.1 }, "outside [0, 1]"},
		{"cross above one", func(c *TrafficConfig) { c.CrossDPU = 1.01 }, "outside [0, 1]"},
		{"cross on single-op txns", func(c *TrafficConfig) { c.TxnSize = 1 }, "multi-op transactions"},
		{"cross on defaulted single-op txns", func(c *TrafficConfig) { c.TxnSize = 0 }, "multi-op transactions"},
		{"multi-op without fleet size", func(c *TrafficConfig) { c.DPUs = 0 }, "fleet size"},
		{"cross on one DPU", func(c *TrafficConfig) { c.DPUs = 1 }, "at least two DPUs"},
		{"valid hot counters", func(c *TrafficConfig) {
			c.TxnSize, c.CrossDPU, c.DPUs = 0, 0, 0
			c.HotKeys, c.HotWriteFrac = 4, 0.6
		}, ""},
		{"negative hot keys", func(c *TrafficConfig) { c.HotKeys = -1 }, "negative hot-counter count"},
		{"hot write frac below zero", func(c *TrafficConfig) { c.HotWriteFrac = -0.1 }, "outside [0, 1]"},
		{"hot write frac above one", func(c *TrafficConfig) { c.HotWriteFrac = 1.5 }, "outside [0, 1]"},
		{"hot writes without counters", func(c *TrafficConfig) {
			c.TxnSize, c.CrossDPU, c.DPUs = 0, 0, 0
			c.HotWriteFrac = 0.5
		}, "needs HotKeys ≥ 1"},
		{"hot writes on multi-op txns", func(c *TrafficConfig) {
			c.HotKeys, c.HotWriteFrac = 4, 0.5
		}, "single-op traffic"},
		{"hot counters exceed keyspace", func(c *TrafficConfig) {
			c.TxnSize, c.CrossDPU, c.DPUs = 0, 0, 0
			c.HotKeys, c.HotWriteFrac = 65, 0.5
		}, "exceed the keyspace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				// Validate passing means generation proceeds past the
				// knob checks.
				if _, err := GenerateTraffic(cfg); err != nil {
					t.Fatalf("generation failed on validated config: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("bad config accepted: %+v", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the knob (want %q)", err, tc.wantErr)
			}
			if _, gerr := GenerateTraffic(cfg); gerr == nil || gerr.Error() != err.Error() {
				t.Fatalf("GenerateTraffic must fail the same validation: %v vs %v", gerr, err)
			}
		})
	}
}

// TestGenerateTrafficTxnShapes: the TxnSize/CrossDPU knobs hold — every
// transaction carries exactly TxnSize ops, a CrossDPU=1 trace spans ≥ 2
// DPUs in every transaction, and a CrossDPU=0 trace never does.
func TestGenerateTrafficTxnShapes(t *testing.T) {
	const dpus = 4
	span := func(tt TimedTxn) int {
		owners := map[int]bool{}
		for _, op := range tt.Txn.Ops {
			owners[hashOwner(op.Key, dpus)] = true
		}
		return len(owners)
	}
	base := TrafficConfig{Ops: 300, Rate: 1e5, ReadPct: 50, Keyspace: 256, ZipfS: 1.0, Seed: 5, TxnSize: 3, DPUs: dpus}

	confined := base
	confined.CrossDPU = 0
	trace, err := GenerateTraffic(confined)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range trace {
		if len(tt.Txn.Ops) != 3 {
			t.Fatalf("txn %d carries %d ops, want 3", i, len(tt.Txn.Ops))
		}
		if span(tt) != 1 {
			t.Fatalf("confined txn %d spans %d DPUs", i, span(tt))
		}
	}

	crossing := base
	crossing.CrossDPU = 1
	trace, err = GenerateTraffic(crossing)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range trace {
		if span(tt) < 2 {
			t.Fatalf("cross-DPU txn %d confined to one DPU: %+v", i, tt.Txn.Ops)
		}
	}

	// Determinism holds for the multi-op generator too.
	again, err := GenerateTraffic(crossing)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrace(trace, again) {
		t.Fatal("same-seed multi-op runs diverged")
	}
}

// TestZipfSkew: higher exponents concentrate mass on low ranks; s = 0
// is uniform.
func TestZipfSkew(t *testing.T) {
	count := func(s float64) []int {
		z, err := NewZipf(64, s)
		if err != nil {
			t.Fatal(err)
		}
		rng := Rand64(99)
		counts := make([]int, 64)
		for i := 0; i < 20000; i++ {
			counts[z.Rank(rng.Float())]++
		}
		return counts
	}
	uni := count(0)
	for r, c := range uni {
		if c < 150 || c > 500 {
			t.Fatalf("uniform rank %d drew %d of 20000", r, c)
		}
	}
	hot := count(1.5)
	if hot[0] < 5000 {
		t.Fatalf("zipf 1.5 head rank drew only %d of 20000", hot[0])
	}
	if hot[63] >= hot[0]/10 {
		t.Fatalf("zipf tail (%d) not far below head (%d)", hot[63], hot[0])
	}
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("empty zipf accepted")
	}
	if _, err := NewZipf(4, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("p50 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("p100 = %g", q)
	}
	if q := Quantile(xs, 0.01); q != 1 {
		t.Fatalf("p1 = %g", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func serveCfg(mode ExecMode, rate float64, zipfS float64) ServeConfig {
	return ServeConfig{
		Map: PartitionedMapConfig{
			DPUs: 4, Tasklets: 4,
			STM: core.Config{Algorithm: core.NOrec}, Mode: mode,
		},
		Submit: SubmitterConfig{MaxBatch: 32, MaxDelaySeconds: 300e-6},
		Traffic: TrafficConfig{
			Ops: 600, Rate: rate, ReadPct: 90, Keyspace: 256, ZipfS: zipfS, Seed: 3,
		},
	}
}

// TestServeDeterministicAndPipelined: the full serving run is a pure
// function of its config, and at a saturating arrival rate the
// pipelined fleet's tail latency beats lockstep.
func TestServeDeterministicAndPipelined(t *testing.T) {
	const rate = 2e5 // past lockstep capacity at 32-op batches
	pipe, err := Serve(serveCfg(Pipelined, rate, 1.1))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Serve(serveCfg(Pipelined, rate, 1.1))
	if err != nil {
		t.Fatal(err)
	}
	pipe.ZeroHostClock()
	again.ZeroHostClock()
	if !reflect.DeepEqual(pipe, again) {
		t.Fatalf("same-seed serve runs diverged:\n%+v\n%+v", pipe, again)
	}
	if pipe.Errors != 0 || pipe.Ops != 600 || pipe.Batches == 0 {
		t.Fatalf("degenerate run: %+v", pipe)
	}
	if !(pipe.P50 > 0 && pipe.P50 <= pipe.P95 && pipe.P95 <= pipe.P99) {
		t.Fatalf("percentiles disordered: %+v", pipe)
	}
	if pipe.OpsPerSecond <= 0 {
		t.Fatalf("throughput: %+v", pipe)
	}

	lock, err := Serve(serveCfg(Lockstep, rate, 1.1))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.P99 >= lock.P99 {
		t.Fatalf("pipelined p99 %.6fs must beat lockstep %.6fs at the same arrival rate",
			pipe.P99, lock.P99)
	}
	if pipe.OpsPerSecond <= lock.OpsPerSecond {
		t.Fatalf("pipelined throughput %.0f must beat lockstep %.0f",
			pipe.OpsPerSecond, lock.OpsPerSecond)
	}
}

// TestServeSkewHurtsLatency: with the skew-aware transfer model, hot
// keys concentrate payload on one partition and the modeled tail grows
// — the end-to-end consequence of the ApplyBatch bugfix.
func TestServeSkewHurtsLatency(t *testing.T) {
	const rate = 1.5e5
	uniform, err := Serve(serveCfg(Pipelined, rate, 0))
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Serve(serveCfg(Pipelined, rate, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if skewed.P99 <= uniform.P99 {
		t.Fatalf("hot-key skew should raise modeled p99: uniform %.6fs, zipf-2 %.6fs",
			uniform.P99, skewed.P99)
	}
	if math.IsNaN(skewed.P99) || math.IsNaN(uniform.P99) {
		t.Fatal("NaN latency")
	}
}

// TestGenerateTrafficHotCounters pins the hot-counter overlay: an
// armed overlay emits roughly HotWriteFrac unit adds confined to the
// first HotKeys keys, a disarmed one consumes the PRNG identically to
// the historical generator (so every pre-overlay trace and bench
// artifact stays byte-identical), and the whole thing is
// deterministic.
func TestGenerateTrafficHotCounters(t *testing.T) {
	base := TrafficConfig{Ops: 2000, Rate: 1e5, ReadPct: 50, Keyspace: 64, ZipfS: 1.0, Seed: 9}
	plain, err := GenerateTraffic(base)
	if err != nil {
		t.Fatal(err)
	}
	disarmed := base
	disarmed.HotKeys = 4 // HotWriteFrac stays 0: the overlay is off
	off, err := GenerateTraffic(disarmed)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrace(plain, off) {
		t.Fatal("a disarmed overlay changed the trace")
	}

	armed := base
	armed.HotKeys, armed.HotWriteFrac = 4, 0.6
	hot, err := GenerateTraffic(armed)
	if err != nil {
		t.Fatal(err)
	}
	again, err := GenerateTraffic(armed)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrace(hot, again) {
		t.Fatal("hot-counter trace is nondeterministic")
	}
	adds := 0
	for i, tt := range hot {
		if len(tt.Txn.Ops) != 1 {
			t.Fatalf("txn %d is not single-op", i)
		}
		op := tt.Txn.Ops[0]
		if op.Kind != OpAdd {
			continue
		}
		adds++
		if op.Key >= 4 || op.Value != 1 {
			t.Fatalf("txn %d: hot add %+v outside the counter set", i, op)
		}
	}
	frac := float64(adds) / float64(len(hot))
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("hot-add fraction %.3f far from the configured 0.6", frac)
	}
	// The Poisson arrival process is still the same law: the first
	// arrival precedes any overlay draw, and the stream stays ordered.
	if hot[0].Arrival != plain[0].Arrival {
		t.Fatalf("first arrival moved: %g vs %g", hot[0].Arrival, plain[0].Arrival)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Arrival < hot[i-1].Arrival {
			t.Fatalf("arrivals regress at %d", i)
		}
	}
}

// TestServeHotCountersSplit is the end-to-end wiring check of the
// split policy under the serving harness: hot-counter traffic through
// a Directory store with the add-share trigger armed splits the
// counters mid-run, stays deterministic, and serves every transaction
// (adds always land on preloaded keys, so nothing aborts).
func TestServeHotCountersSplit(t *testing.T) {
	run := func() ServeResult {
		res, err := Serve(ServeConfig{
			Map: PartitionedMapConfig{
				DPUs: 4, Tasklets: 4,
				STM:       core.Config{Algorithm: core.NOrec},
				Placement: NewDirectory(4),
			},
			Submit: SubmitterConfig{MaxBatch: 64},
			Traffic: TrafficConfig{
				Ops: 1200, Rate: 2e5, ReadPct: 50, Keyspace: 128, Seed: 5,
				HotKeys: 4, HotWriteFrac: 0.6,
			},
			Rebalance: &RebalancerConfig{
				WindowBatches: 3, TopK: 4, MinKeyOps: 8,
				SplitMinAddShare: 0.5,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	a.ZeroHostClock()
	b.ZeroHostClock()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic hot-counter serve:\n%+v\n%+v", a, b)
	}
	if a.Errors != 0 || a.Aborted != 0 {
		t.Fatalf("%d errors, %d aborts serving guarded counters", a.Errors, a.Aborted)
	}
	if a.Rebalance.KeysSplit == 0 {
		t.Fatalf("the serving loop never split a counter: %+v", a.Rebalance)
	}
}
