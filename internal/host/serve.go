package host

import (
	"fmt"
	"math"
	"sort"
)

// This file is the open-loop serving harness on top of the Submitter:
// a deterministic traffic generator (Zipf key popularity × read mix ×
// Poisson arrivals) and a driver that streams one generated trace
// through a fresh PartitionedMap, reporting modeled throughput and
// latency percentiles. Everything is a pure function of the config —
// same seed, same bytes out — so the serve bench artifact is
// reproducible run to run.

// Rand64 is the repo's deterministic xorshift64* PRNG — the single
// home of the recurrence every deterministic trace generator uses
// (serving traffic, the multidpu sweep, the CPU baselines).
type Rand64 uint64

// Next returns the next 64-bit variate.
func (r *Rand64) Next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = Rand64(x)
	return x * 0x2545F4914F6CDD1D
}

// Float returns a uniform float64 in [0, 1).
func (r *Rand64) Float() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Zipf samples ranks in [0, n) with probability ∝ (rank+1)^-s via the
// precomputed CDF, so any skew exponent s ≥ 0 works (s = 0 is uniform)
// and sampling is deterministic given the caller's uniform variates.
type Zipf struct {
	cum []float64
}

// NewZipf builds the sampler for n ranks at skew s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("host: zipf needs at least one rank")
	}
	if s < 0 {
		return nil, fmt.Errorf("host: negative zipf exponent %g", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum}, nil
}

// Rank maps a uniform variate u in [0, 1) to a rank (0 = hottest).
func (z *Zipf) Rank(u float64) int {
	return sort.SearchFloat64s(z.cum, u)
}

// TrafficConfig parameterizes one deterministic open-loop trace.
type TrafficConfig struct {
	// Ops is the trace length in transactions (required, ≥ 1); each
	// transaction carries TxnSize operations, so with the default
	// TxnSize of 1 this is the historical op count.
	Ops int
	// Rate is the mean arrival rate in transactions per modeled second
	// (required, > 0); inter-arrivals are exponential (Poisson stream).
	Rate float64
	// ReadPct of ops are Gets; the rest are Puts of a random value.
	ReadPct int
	// Keyspace is the number of distinct keys (required, ≥ 1); key k
	// has popularity rank k.
	Keyspace int
	// ZipfS is the key-popularity skew exponent (0 = uniform).
	ZipfS float64
	// Seed makes the trace reproducible.
	Seed uint64
	// TxnSize is the exact number of operations per transaction
	// (default 1 — the historical single-op stream, bit-identical to
	// the pre-Txn generator).
	TxnSize int
	// CrossDPU is the fraction of multi-op transactions whose keys
	// deliberately span at least two DPUs; the rest are confined to the
	// first key's owner DPU. Only meaningful when TxnSize ≥ 2; needs
	// DPUs ≥ 2.
	CrossDPU float64
	// DPUs is the fleet size the trace will be served on (static-hash
	// routing), required when TxnSize ≥ 2. Serve fills it from the
	// store config automatically.
	DPUs int
	// HotKeys and HotWriteFrac overlay a write-heavy hot-counter stream
	// on the single-op trace: each arrival is, with probability
	// HotWriteFrac, an OpAdd(+1) on one of the first HotKeys keys
	// (uniformly) instead of the usual Zipf-sampled Get/Put — the
	// commutative contention that drives the Rebalancer's split-key
	// trigger, without relying on Zipf tails. HotWriteFrac 0 (the
	// default) leaves the trace bit-identical to the historical
	// generator. Only meaningful on single-op traces (TxnSize ≤ 1), and
	// HotKeys must fit inside Keyspace so the serve preload covers the
	// counters (a guarded OpAdd aborts on a missing key).
	HotKeys      int
	HotWriteFrac float64
}

// TimedTxn is one generated transaction with its modeled arrival time.
type TimedTxn struct {
	Txn Txn
	// Arrival is modeled seconds from the start of the trace;
	// non-decreasing along the trace.
	Arrival float64
}

// Validate checks every TrafficConfig bound up front with a
// descriptive error, so a misconfigured sweep fails at the knob that
// is wrong instead of deep inside the shaper (or, worse, silently: a
// CrossDPU fraction on a single-op trace used to be ignored, and a
// positive fraction on a 1-DPU fleet surfaced only as a key-placement
// error). A zero TxnSize is the documented single-op default and
// passes.
func (cfg *TrafficConfig) Validate() error {
	if cfg.Ops < 1 {
		return fmt.Errorf("host: traffic needs at least one transaction (Ops = %d)", cfg.Ops)
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("host: traffic needs a positive arrival rate (Rate = %g)", cfg.Rate)
	}
	if cfg.Keyspace < 1 {
		return fmt.Errorf("host: traffic needs at least one key (Keyspace = %d)", cfg.Keyspace)
	}
	if cfg.ZipfS < 0 {
		return fmt.Errorf("host: negative zipf exponent %g", cfg.ZipfS)
	}
	if cfg.TxnSize < 0 {
		return fmt.Errorf("host: bad transaction size %d (need ≥ 1; 0 defaults to 1)", cfg.TxnSize)
	}
	if cfg.CrossDPU < 0 || cfg.CrossDPU > 1 {
		return fmt.Errorf("host: cross-DPU fraction %g outside [0, 1]", cfg.CrossDPU)
	}
	if cfg.CrossDPU > 0 && cfg.TxnSize <= 1 {
		// TxnSize 0 defaults to the single-op stream, which would
		// silently drop the fraction.
		return fmt.Errorf("host: cross-DPU fraction %g needs multi-op transactions (TxnSize ≥ 2, have %d)", cfg.CrossDPU, cfg.TxnSize)
	}
	if cfg.TxnSize >= 2 {
		if cfg.DPUs < 1 {
			return fmt.Errorf("host: multi-op traffic needs the fleet size (DPUs)")
		}
		if cfg.CrossDPU > 0 && cfg.DPUs < 2 {
			return fmt.Errorf("host: cross-DPU fraction %g needs a fleet of at least two DPUs (have %d)", cfg.CrossDPU, cfg.DPUs)
		}
	}
	if cfg.HotKeys < 0 {
		return fmt.Errorf("host: negative hot-counter count %d", cfg.HotKeys)
	}
	if cfg.HotWriteFrac < 0 || cfg.HotWriteFrac > 1 {
		return fmt.Errorf("host: hot-counter write fraction %g outside [0, 1]", cfg.HotWriteFrac)
	}
	if cfg.HotWriteFrac > 0 {
		if cfg.HotKeys < 1 {
			return fmt.Errorf("host: hot-counter write fraction %g needs HotKeys ≥ 1", cfg.HotWriteFrac)
		}
		if cfg.TxnSize > 1 {
			return fmt.Errorf("host: hot-counter stream needs single-op traffic (TxnSize ≤ 1, have %d)", cfg.TxnSize)
		}
	}
	if cfg.HotKeys > cfg.Keyspace {
		return fmt.Errorf("host: %d hot counters exceed the keyspace %d (the preload must cover them)", cfg.HotKeys, cfg.Keyspace)
	}
	return nil
}

// GenerateTraffic builds the open-loop trace: arrivals keep their
// schedule regardless of how fast the store drains them — that is what
// makes queueing delay visible in the modeled latencies. With
// TxnSize ≥ 2 each arrival is a multi-key transaction: its first key is
// Zipf-sampled, and the rest are drawn either from the same DPU's
// keys (confined) or forced to span DPUs (a CrossDPU-fraction coin),
// so the cross-DPU coordination cost is a controlled knob.
func GenerateTraffic(cfg TrafficConfig) ([]TimedTxn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TxnSize == 0 {
		cfg.TxnSize = 1
	}
	z, err := NewZipf(cfg.Keyspace, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	rng := Rand64(cfg.Seed*0x9E3779B97F4A7C15 + 1)
	out := make([]TimedTxn, cfg.Ops)
	clock := 0.0

	if cfg.TxnSize == 1 {
		// The historical generator, consuming the PRNG identically so
		// every pre-Txn trace (and artifact) stays byte-identical: the
		// hot-counter branch is guarded on HotWriteFrac > 0 before any
		// variate is drawn, so an unset overlay changes nothing.
		for i := range out {
			clock += -math.Log(1-rng.Float()) / cfg.Rate
			if cfg.HotWriteFrac > 0 && rng.Float() < cfg.HotWriteFrac {
				op := Op{Kind: OpAdd, Key: rng.Next() % uint64(cfg.HotKeys), Value: 1}
				out[i] = TimedTxn{Txn: Txn{Ops: []Op{op}}, Arrival: clock}
				continue
			}
			key := uint64(z.Rank(rng.Float()))
			op := Op{Kind: OpPut, Key: key, Value: rng.Next()}
			if int(rng.Next()%100) < cfg.ReadPct {
				op = Op{Kind: OpGet, Key: key}
			}
			out[i] = TimedTxn{Txn: Txn{Ops: []Op{op}}, Arrival: clock}
		}
		return out, nil
	}

	shape, err := newTxnShaper(cfg, z)
	if err != nil {
		return nil, err
	}
	for i := range out {
		clock += -math.Log(1-rng.Float()) / cfg.Rate
		spanning := rng.Float() < cfg.CrossDPU
		ops := make([]Op, 0, cfg.TxnSize)
		mkOp := func(key uint64) Op {
			op := Op{Kind: OpPut, Key: key, Value: rng.Next()}
			if int(rng.Next()%100) < cfg.ReadPct {
				op = Op{Kind: OpGet, Key: key}
			}
			return op
		}
		first := uint64(z.Rank(rng.Float()))
		ops = append(ops, mkOp(first))
		home := hashOwner(first, cfg.DPUs)
		owners := map[int]bool{home: true}
		taken := map[uint64]bool{first: true}
		for j := 1; j < cfg.TxnSize; j++ {
			var key uint64
			switch {
			case !spanning:
				key = shape.sampleOn(home, taken, &rng)
			case j == cfg.TxnSize-1 && len(owners) == 1:
				// Last chance to honor the spanning coin: draw the key
				// from a different DPU's keys.
				key = shape.sampleOff(home, taken, &rng)
			default:
				key = shape.sampleAny(taken, &rng)
			}
			taken[key] = true
			owners[hashOwner(key, cfg.DPUs)] = true
			ops = append(ops, mkOp(key))
		}
		out[i] = TimedTxn{Txn: Txn{Ops: ops}, Arrival: clock}
	}
	return out, nil
}

// txnShaper samples keys conditioned on their owner DPU: per-DPU key
// lists with renormalized Zipf CDFs, so confined and spanning
// transactions stay faithful to the configured popularity skew.
type txnShaper struct {
	z     *Zipf
	keys  map[int][]uint64  // owner → its keys, popularity order
	cum   map[int][]float64 // owner → renormalized Zipf CDF
	dpus  []int             // DPUs owning at least one key, ascending
	byDPU map[int]int       // owner → index into dpus
}

func newTxnShaper(cfg TrafficConfig, z *Zipf) (*txnShaper, error) {
	s := &txnShaper{
		z:     z,
		keys:  make(map[int][]uint64),
		cum:   make(map[int][]float64),
		byDPU: make(map[int]int),
	}
	weights := make(map[int][]float64)
	for k := 0; k < cfg.Keyspace; k++ {
		o := hashOwner(uint64(k), cfg.DPUs)
		s.keys[o] = append(s.keys[o], uint64(k))
		weights[o] = append(weights[o], math.Pow(float64(k+1), -cfg.ZipfS))
	}
	for o, ws := range weights {
		total := 0.0
		cum := make([]float64, len(ws))
		for i, w := range ws {
			total += w
			cum[i] = total
		}
		for i := range cum {
			cum[i] /= total
		}
		s.cum[o] = cum
	}
	for o := 0; o < cfg.DPUs; o++ {
		if len(s.keys[o]) > 0 {
			s.byDPU[o] = len(s.dpus)
			s.dpus = append(s.dpus, o)
		}
	}
	if cfg.CrossDPU > 0 && len(s.dpus) < 2 {
		return nil, fmt.Errorf("host: cross-DPU transactions need keys on at least two DPUs (have %d)", len(s.dpus))
	}
	return s, nil
}

// sampleOn draws a key owned by DPU o, avoiding taken keys best-effort
// (up to 8 redraws; a tiny partition may repeat keys, which a
// transaction tolerates).
func (s *txnShaper) sampleOn(o int, taken map[uint64]bool, rng *Rand64) uint64 {
	cum, keys := s.cum[o], s.keys[o]
	var key uint64
	for attempt := 0; attempt < 8; attempt++ {
		key = keys[sort.SearchFloat64s(cum, rng.Float())]
		if !taken[key] {
			return key
		}
	}
	return key
}

// sampleOff draws a key owned by any DPU other than o.
func (s *txnShaper) sampleOff(o int, taken map[uint64]bool, rng *Rand64) uint64 {
	others := make([]int, 0, len(s.dpus))
	for _, d := range s.dpus {
		if d != o {
			others = append(others, d)
		}
	}
	d := others[int(rng.Next()%uint64(len(others)))]
	return s.sampleOn(d, taken, rng)
}

// sampleAny draws from the global Zipf, avoiding taken keys
// best-effort.
func (s *txnShaper) sampleAny(taken map[uint64]bool, rng *Rand64) uint64 {
	var key uint64
	for attempt := 0; attempt < 8; attempt++ {
		key = uint64(s.z.Rank(rng.Float()))
		if !taken[key] {
			return key
		}
	}
	return key
}

// Quantile returns the q-quantile (0 < q ≤ 1) of xs by the
// nearest-rank method. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ServeConfig is one serving scenario: a store, a batcher, a traffic
// trace, optionally an adaptive placement control plane.
type ServeConfig struct {
	// Map builds the PartitionedMap. Zero Buckets/Capacity default to
	// 256 buckets and 4 × the traffic keyspace.
	Map PartitionedMapConfig
	// Submit tunes the adaptive batcher.
	Submit SubmitterConfig
	// Traffic is the open-loop trace to serve.
	Traffic TrafficConfig
	// Rebalance, when non-nil, attaches a Rebalancer after the load
	// phase (requires Map.Placement to be a *Directory); the submitter
	// drives it between flushed batches.
	Rebalance *RebalancerConfig
	// Scheduler, when non-nil, builds the run's batch-formation policy
	// (nil = the default FIFOScheduler over Submit's
	// MaxBatch/MaxDelaySeconds). A factory rather than an instance:
	// schedulers are stateful and every Serve call needs a fresh one.
	Scheduler func() Scheduler
	// Trace, when non-nil, is served verbatim instead of a trace
	// generated from Traffic — the hook application workloads use to
	// inject their own transaction streams. Arrivals must be
	// non-decreasing. Traffic.Keyspace still sizes the store defaults
	// and the identity preload.
	Trace []TimedTxn
	// Preload, when non-nil, replaces the identity preload (Put(k, k)
	// for every key below Traffic.Keyspace) with an explicit op list
	// applied before the clock baseline — how workloads install their
	// initial state (stock levels, wallets, …).
	Preload []Op
	// KeepResults retains every transaction's TxnResult (trace order)
	// and the served store on the result — the hooks invariant checkers
	// need. Off by default; serving benchmarks don't pay the memory.
	KeepResults bool
}

// ServeResult is the modeled outcome of one serving run.
type ServeResult struct {
	// Ops served across Txns transactions, in Batches applied batches.
	Ops, Txns, Batches int
	// MakespanSeconds spans load completion (the traffic clock's zero)
	// to the last batch completion on the modeled clock.
	MakespanSeconds float64
	// OpsPerSecond is Ops / MakespanSeconds.
	OpsPerSecond float64
	// P50/P95/P99 are modeled per-transaction commit-latency percentiles
	// in seconds (queue wait + batch wall clock).
	P50, P95, P99 float64
	// MeanBatchOps is the average applied batch size in ops.
	MeanBatchOps float64
	// Stats are the submitter's flush counters.
	Stats SubmitterStats
	// Rebalance are the control-plane counters (zero without a
	// rebalancer).
	Rebalance RebalancerStats
	// Errors counts transactions that resolved with a non-nil Err;
	// Aborted counts clean guard aborts (Committed false, no error).
	Errors, Aborted int
	// CoordinatedTxns counts the transactions that needed CPU
	// coordination (cross-DPU conflict groups).
	CoordinatedTxns int
	// SimulatedDPUs is how many of the fleet's DPUs were actually
	// simulated: equal to Map.DPUs in exact mode, the clamped sample
	// size in sampled-fleet mode (Map.Sample > 0).
	SimulatedDPUs int
	// SplitReconciles counts the split-key epoch reconciliations the
	// run paid (always zero unless the rebalancer's split policy is
	// armed and triggered).
	SplitReconciles int
	// HostSeconds is the REAL machine wall-clock the simulator spent in
	// the serving phase's host-side batch work (classify + route +
	// shadow + compile, summed from Stats.Host*Seconds) — simulator
	// speed, not modeled time. It varies run to run and across machines;
	// byte-identity comparisons must go through ZeroHostClock first.
	HostSeconds float64
	// HostWorkers is the store's effective host-side worker count
	// (1 on the serial reference path, the resolved HostParallelism
	// otherwise) — recorded so artifacts are interpretable across
	// machines.
	HostWorkers int
	// Results are the per-transaction outcomes in trace order; nil
	// unless ServeConfig.KeepResults is set.
	Results []TxnResult
	// Store is the served map after the run, for post-run state checks
	// (invariants); nil unless ServeConfig.KeepResults is set.
	Store *PartitionedMap
}

// ZeroHostClock zeroes every real-time (machine wall-clock) field of
// the result — HostSeconds, HostWorkers and the Stats.Host*Seconds
// accumulators — leaving only modeled fields. Identical configs give
// identical results only modulo these fields (real time differs run to
// run), so byte-identity tests compare ZeroHostClock'd copies.
func (r *ServeResult) ZeroHostClock() {
	r.HostSeconds = 0
	r.HostWorkers = 0
	r.Stats.ZeroHostClock()
}

// Serve preloads the keyspace, streams the generated trace through a
// Submitter in arrival order, and reports modeled throughput and
// latency. Deterministic: identical configs give identical results
// modulo the real-time host-clock fields (see ZeroHostClock).
func Serve(cfg ServeConfig) (ServeResult, error) {
	if cfg.Traffic.TxnSize > 1 && cfg.Traffic.DPUs == 0 {
		cfg.Traffic.DPUs = cfg.Map.DPUs
	}
	trace := cfg.Trace
	if trace == nil {
		var err error
		if trace, err = GenerateTraffic(cfg.Traffic); err != nil {
			return ServeResult{}, err
		}
	}
	if cfg.Map.Buckets == 0 {
		cfg.Map.Buckets = 256
	}
	if cfg.Map.Capacity == 0 {
		cfg.Map.Capacity = 4 * cfg.Traffic.Keyspace
		if n := 4 * len(cfg.Preload); n > cfg.Map.Capacity {
			cfg.Map.Capacity = n
		}
	}
	pm, err := NewPartitionedMap(cfg.Map)
	if err != nil {
		return ServeResult{}, err
	}

	// Load phase: populate every key so Gets hit, then baseline the
	// clock — the serving numbers exclude the load. An explicit Preload
	// replaces the identity fill.
	load := cfg.Preload
	if load == nil {
		load = make([]Op, cfg.Traffic.Keyspace)
		for k := range load {
			load[k] = Op{Kind: OpPut, Key: uint64(k), Value: uint64(k)}
		}
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		return ServeResult{}, err
	}
	base := pm.Stats().WallSeconds
	coordBase := pm.TxnsCoordinated

	// The control plane attaches after the load so the bulk preload
	// does not count as observed traffic.
	var reb *Rebalancer
	if cfg.Rebalance != nil {
		if reb, err = NewRebalancer(pm, *cfg.Rebalance); err != nil {
			return ServeResult{}, err
		}
	}

	scfg := cfg.Submit
	if cfg.Scheduler != nil {
		scfg.Scheduler = cfg.Scheduler()
	}
	s := NewSubmitter(pm, scfg)
	futs := make([]*Future, len(trace))
	for i, t := range trace {
		if futs[i], err = s.Submit(t.Txn, t.Arrival); err != nil {
			return ServeResult{}, err
		}
	}
	if err := s.Close(); err != nil {
		return ServeResult{}, err
	}

	res := ServeResult{Txns: len(trace), Stats: s.Stats(), SimulatedDPUs: pm.SimulatedDPUs()}
	res.SplitReconciles = pm.SplitReconciles
	res.HostWorkers = pm.HostWorkers()
	res.HostSeconds = res.Stats.HostClassifySeconds + res.Stats.HostRouteSeconds +
		res.Stats.HostShadowSeconds + res.Stats.HostCompileSeconds
	res.Ops = res.Stats.Submitted
	res.Batches = res.Stats.Batches
	res.CoordinatedTxns = pm.TxnsCoordinated - coordBase
	if reb != nil {
		res.Rebalance = reb.Stats()
	}
	if cfg.KeepResults {
		res.Results = make([]TxnResult, 0, len(futs))
		res.Store = pm
	}
	lats := make([]float64, len(futs))
	for i, f := range futs {
		r := f.Wait()
		if r.Err != nil {
			res.Errors++
		} else if !r.Committed {
			res.Aborted++
		}
		lats[i] = r.LatencySeconds
		if cfg.KeepResults {
			res.Results = append(res.Results, r)
		}
	}
	sort.Float64s(lats)
	res.P50 = quantileSorted(lats, 0.50)
	res.P95 = quantileSorted(lats, 0.95)
	res.P99 = quantileSorted(lats, 0.99)
	res.MakespanSeconds = pm.Stats().WallSeconds - base
	if res.MakespanSeconds > 0 {
		res.OpsPerSecond = float64(res.Ops) / res.MakespanSeconds
	}
	if res.Batches > 0 {
		res.MeanBatchOps = float64(res.Ops) / float64(res.Batches)
	}
	return res, nil
}
