package host

import (
	"fmt"
	"sort"
)

// RebalancerConfig tunes the adaptive placement control plane. Zero
// fields take the documented defaults.
type RebalancerConfig struct {
	// WindowBatches is the sliding observation window: a decision is
	// considered every this many applied batches (default 8).
	WindowBatches int
	// TopK bounds how many hot keys one decision may promote or
	// migrate (default 4).
	TopK int
	// MinKeyOps is the hysteresis floor per key: a key is hot only if
	// the window routed at least this many ops to it (default 8).
	MinKeyOps int
	// Trigger is the per-DPU hysteresis: the hottest DPU must carry
	// more than Trigger × the mean window load before anything moves,
	// so uniform traffic never churns (default 1.25).
	Trigger float64
	// Replicas is the copy count a promoted key gets (default
	// min(3, DPUs−1)).
	Replicas int
	// ReplicateMaxWriteShare splits the two remedies: a hot key whose
	// window write share is at or below this is read-mostly and gets
	// replicated; above it the key is write-heavy and is migrated to
	// the least-loaded DPU instead (default 0.05).
	ReplicateMaxWriteShare float64
	// CooldownWindows keeps a key untouched for this many decision
	// windows after it was migrated, promoted or de-promoted, damping
	// oscillation (default 4).
	CooldownWindows int
	// ColdKeyOps is the de-promotion floor: a replicated key is cold in
	// a window that routed fewer than this many ops to it (default 1 —
	// only keys with no observed traffic are cold; negative disables
	// de-promotion entirely).
	ColdKeyOps int
	// ColdWindows is how many consecutive cold windows a replicated key
	// must accumulate before its copies are dropped (default 2).
	ColdWindows int
	// SplitMinAddShare enables the third remedy, split-key execution
	// (split.go), and sets its trigger: a hot write-heavy key whose
	// window traffic is at least this fraction commutative RMWs (OpAdd
	// and OpSub) is entered into the split state instead of migrating —
	// its adds and covered subs then run on per-DPU delta shards in the
	// confined lane, and only non-commutative accesses pay an epoch
	// reconciliation. 0 (the default) disables splitting entirely, which
	// keeps every historical artifact byte-identical.
	SplitMinAddShare float64
	// SplitColdWindows is the split↔unsplit hysteresis: a split key
	// whose traffic stops qualifying (below MinKeyOps, or add share
	// under SplitMinAddShare) for this many consecutive windows is
	// reconciled and unsplit (default 2).
	SplitColdWindows int
}

func (c *RebalancerConfig) fill(dpus int) {
	if c.WindowBatches <= 0 {
		c.WindowBatches = 8
	}
	if c.TopK <= 0 {
		c.TopK = 4
	}
	if c.MinKeyOps <= 0 {
		c.MinKeyOps = 8
	}
	if c.Trigger <= 0 {
		c.Trigger = 1.25
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > dpus-1 {
		c.Replicas = dpus - 1
	}
	if c.ReplicateMaxWriteShare <= 0 {
		c.ReplicateMaxWriteShare = 0.05
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 4
	}
	if c.ColdKeyOps == 0 {
		c.ColdKeyOps = 1
	}
	if c.ColdWindows <= 0 {
		c.ColdWindows = 2
	}
	if c.SplitColdWindows <= 0 {
		c.SplitColdWindows = 2
	}
}

// KernelBoundServingRebalance is the documented preset the rebalance
// experiment and examples/rebalance share, tuned for large kernel-bound
// serving batches: one decision may touch many keys and spread them
// wide (the per-decision rounds amortize over the batch kernels), and
// the raised trigger stops the control plane once the fleet is
// balanced. window is the decision window in batches.
func KernelBoundServingRebalance(window int) RebalancerConfig {
	return RebalancerConfig{
		WindowBatches: window,
		TopK:          48,
		Replicas:      7,
		MinKeyOps:     12,
		Trigger:       1.4,
	}
}

// RebalancerStats counts the control plane's observations and actions.
type RebalancerStats struct {
	// BatchesObserved and WindowsEvaluated count the input side;
	// WindowsActed how many evaluations moved anything.
	BatchesObserved, WindowsEvaluated, WindowsActed int
	// KeysReplicated and KeysMigrated total the remedies applied;
	// KeysDepromoted counts cold keys whose replicas were dropped.
	KeysReplicated, KeysMigrated, KeysDepromoted int
	// KeysSplit and KeysUnsplit total the split-key remedy: keys entered
	// into split-key execution, and split keys torn down again after
	// their commutative traffic dried up.
	KeysSplit, KeysUnsplit int
}

// keyLoad accumulates one key's window traffic. adds counts the subset
// of writes that are commutative guarded RMWs — OpAdd and OpSub — the
// split-key trigger's signal (ddtxn-style: a key whose conflicts come
// from commutative increments or decrements splits instead of
// migrating).
type keyLoad struct {
	reads, writes, adds int
}

// Rebalancer is the adaptive placement control plane over a
// PartitionedMap with a Directory placement (Doppel-style special-
// casing of contended keys, LazyPIM-style replication of hot read
// data). It observes every applied batch's routing — per-DPU op counts
// and per-key read/write mixes — over a sliding window, and between
// quiescent windows promotes the top-k hot keys of the hottest DPU to
// read replicas (read-mostly keys) or migrates them to the least-loaded
// DPU (write-heavy keys), with hysteresis so uniform traffic never
// churns. Every remedy executes as paid fleet rounds through
// ReplicateKeys/MigrateKeys.
//
// A Rebalancer is driven by whoever owns the store: the Submitter calls
// MaybeRebalance after each flush; direct ApplyBatch users call it
// themselves. It is not goroutine-safe on its own — it inherits the
// PartitionedMap's single-owner discipline.
type Rebalancer struct {
	pm  *PartitionedMap
	cfg RebalancerConfig

	batches int
	dpuOps  []int
	keys    map[uint64]*keyLoad
	window  int            // decision windows elapsed
	cooled  map[uint64]int // key → window index when it may move again
	// coldRuns counts a replicated key's consecutive cold windows; at
	// ColdWindows the key is de-promoted.
	coldRuns map[uint64]int
	// splitRuns counts a split key's consecutive non-qualifying windows;
	// at SplitColdWindows the key is reconciled and unsplit.
	splitRuns map[uint64]int

	stats RebalancerStats
}

// NewRebalancer attaches a rebalancer to pm, which must have been built
// with a *Directory placement (the overrides and replica sets live
// there). At most one rebalancer can be attached to a store.
func NewRebalancer(pm *PartitionedMap, cfg RebalancerConfig) (*Rebalancer, error) {
	if pm.dir == nil {
		return nil, fmt.Errorf("host: rebalancer needs a Directory placement")
	}
	if pm.reb != nil {
		return nil, fmt.Errorf("host: store already has a rebalancer")
	}
	cfg.fill(pm.DPUs())
	r := &Rebalancer{
		pm:        pm,
		cfg:       cfg,
		dpuOps:    make([]int, pm.DPUs()),
		keys:      make(map[uint64]*keyLoad),
		cooled:    make(map[uint64]int),
		coldRuns:  make(map[uint64]int),
		splitRuns: make(map[uint64]int),
	}
	pm.reb = r
	return r, nil
}

// Stats snapshots the control-plane counters.
func (r *Rebalancer) Stats() RebalancerStats { return r.stats }

// observe records one applied transaction batch: the client ops (by
// transaction, guarded RMWs counting as writes) and the per-DPU routed
// op counts (replica spreading, shadow maintenance and coordinated
// gather sources included).
func (r *Rebalancer) observe(txns []Txn, routed []int) {
	for i := range txns {
		for _, op := range txns[i].Ops {
			l := r.keys[op.Key]
			if l == nil {
				l = &keyLoad{}
				r.keys[op.Key] = l
			}
			if op.Kind == OpGet {
				l.reads++
			} else {
				l.writes++
				if isRMW(op.Kind) {
					l.adds++
				}
			}
		}
	}
	for id, n := range routed {
		r.dpuOps[id] += n
	}
	r.batches++
	r.stats.BatchesObserved++
}

// Step evaluates the window if it is full: split keys whose commutative
// traffic dried up are reconciled and unsplit, cold replicated keys are
// de-promoted (their copies dropped in one paid round), then at most
// one placement decision runs — replicate the read-mostly hot keys of
// the hottest DPU, split the commutative write-heavy ones, migrate the
// rest. It reports whether anything moved.
func (r *Rebalancer) Step() (bool, error) {
	if r.batches < r.cfg.WindowBatches {
		return false, nil
	}
	unsplit, err := r.unsplitCold()
	dropped := false
	if err == nil {
		dropped, err = r.depromote()
	}
	acted := false
	if err == nil {
		acted, err = r.decide()
	}
	r.reset()
	return unsplit || dropped || acted, err
}

// unsplitCold is the split-key teardown hysteresis: a split key stays
// split while its window traffic keeps qualifying (MinKeyOps ops with
// SplitMinAddShare of them adds); once it stops qualifying for
// SplitColdWindows consecutive windows it is reconciled and unsplit in
// one paid round, so the shards (and their reconciliation tax on
// non-commutative accesses) never outlive the hot counter.
func (r *Rebalancer) unsplitCold() (bool, error) {
	if r.cfg.SplitMinAddShare <= 0 {
		return false, nil
	}
	split := r.pm.dir.splitKeys()
	live := make(map[uint64]bool, len(split))
	var drops []uint64
	for _, k := range split {
		live[k] = true
		ops, adds := 0, 0
		if l := r.keys[k]; l != nil {
			ops = l.reads + l.writes
			adds = l.adds
		}
		if ops >= r.cfg.MinKeyOps && float64(adds) >= r.cfg.SplitMinAddShare*float64(ops) {
			delete(r.splitRuns, k)
			continue
		}
		if until, cooling := r.cooled[k]; cooling && r.window < until {
			continue
		}
		r.splitRuns[k]++
		if r.splitRuns[k] < r.cfg.SplitColdWindows {
			continue
		}
		delete(r.splitRuns, k)
		drops = append(drops, k)
	}
	// Keys unsplit elsewhere (a batch delete reconciles and tears down)
	// have no run to keep counting.
	for k := range r.splitRuns {
		if !live[k] {
			delete(r.splitRuns, k)
		}
	}
	if len(drops) == 0 {
		return false, nil
	}
	if err := r.pm.UnsplitKeys(drops); err != nil {
		return false, err
	}
	for _, k := range drops {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
	}
	r.stats.KeysUnsplit += len(drops)
	return true, nil
}

// depromote drops the replicas of keys whose window load fell below the
// cold threshold for ColdWindows consecutive windows, so traffic that
// shifts away from a once-hot key does not leave its copies (and their
// write-through shadow puts) behind forever.
func (r *Rebalancer) depromote() (bool, error) {
	if r.cfg.ColdKeyOps < 0 {
		return false, nil
	}
	replicated := r.pm.dir.replicatedKeys()
	live := make(map[uint64]bool, len(replicated))
	var drops []uint64
	for _, k := range replicated {
		live[k] = true
		ops := 0
		if l := r.keys[k]; l != nil {
			ops = l.reads + l.writes
		}
		if ops >= r.cfg.ColdKeyOps {
			delete(r.coldRuns, k)
			continue
		}
		if until, cooling := r.cooled[k]; cooling && r.window < until {
			continue
		}
		r.coldRuns[k]++
		if r.coldRuns[k] < r.cfg.ColdWindows {
			continue
		}
		delete(r.coldRuns, k)
		drops = append(drops, k)
	}
	// Keys that lost their copies elsewhere (deletes, migration) have
	// no run to keep counting.
	for k := range r.coldRuns {
		if !live[k] {
			delete(r.coldRuns, k)
		}
	}
	if len(drops) == 0 {
		return false, nil
	}
	if err := r.pm.DropReplicaKeys(drops); err != nil {
		return false, err
	}
	for _, k := range drops {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
	}
	r.stats.KeysDepromoted += len(drops)
	return true, nil
}

// reset opens a fresh observation window and prunes expired cooldowns
// (the map would otherwise grow toward the keyspace over a long run).
func (r *Rebalancer) reset() {
	r.batches = 0
	for i := range r.dpuOps {
		r.dpuOps[i] = 0
	}
	r.keys = make(map[uint64]*keyLoad)
	r.window++
	for k, until := range r.cooled {
		if r.window >= until {
			delete(r.cooled, k)
		}
	}
}

// decide is one evaluation of a full window.
func (r *Rebalancer) decide() (bool, error) {
	r.stats.WindowsEvaluated++
	n := r.pm.DPUs()
	if n < 2 {
		return false, nil
	}
	total := 0
	hot := 0
	for id, ops := range r.dpuOps {
		total += ops
		if ops > r.dpuOps[hot] {
			hot = id
		}
	}
	mean := float64(total) / float64(n)
	if total == 0 || float64(r.dpuOps[hot]) <= r.cfg.Trigger*mean {
		return false, nil
	}

	// The fleet's heavy hitters, hottest first, hysteresis-filtered.
	// The trigger fires on one overloaded DPU, but the remedy considers
	// every hot key: spreading any heavy hitter lowers the worst-case
	// bucket wherever the next skewed batch lands.
	type hotKey struct {
		key  uint64
		ops  int
		load *keyLoad
	}
	var cands []hotKey
	for key, l := range r.keys {
		ops := l.reads + l.writes
		if ops < r.cfg.MinKeyOps {
			continue
		}
		if until, cooling := r.cooled[key]; cooling && r.window < until {
			continue
		}
		if r.pm.dir.isSplit(key) {
			// Already remedied; unsplitCold owns its lifecycle.
			continue
		}
		cands = append(cands, hotKey{key: key, ops: ops, load: l})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ops != cands[j].ops {
			return cands[i].ops > cands[j].ops
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > r.cfg.TopK {
		cands = cands[:r.cfg.TopK]
	}

	// Split the remedies. adjusted tracks planned load so several
	// migrations do not pile onto one target.
	adjusted := make([]float64, n)
	for id, ops := range r.dpuOps {
		adjusted[id] = float64(ops)
	}
	reps := make(map[uint64][]int)
	moves := make(map[uint64]int)
	var splits []uint64
	for _, c := range cands {
		owner := r.pm.owner(c.key)
		// A hot key dominated by commutative RMWs (adds and subs)
		// splits, checked before either classical remedy: replicas are
		// useless for a write stream (every RMW would invalidate them),
		// and migration just relocates the bottleneck kernel, while
		// per-DPU delta shards spread the RMWs over the whole fleet's
		// confined lanes (Doppel's remedy for commutative contention).
		if r.cfg.SplitMinAddShare > 0 && n >= 2 && c.key < splitKeyLimit &&
			float64(c.load.adds) >= r.cfg.SplitMinAddShare*float64(c.ops) {
			if adjusted[owner] <= mean {
				continue
			}
			splits = append(splits, c.key)
			per := float64(c.ops) / float64(n)
			adjusted[owner] -= float64(c.ops) - per
			for id := 0; id < n; id++ {
				if id != owner {
					adjusted[id] += per
				}
			}
			continue
		}
		writeShare := float64(c.load.writes) / float64(c.ops)
		if writeShare <= r.cfg.ReplicateMaxWriteShare {
			if targets := r.replicaTargets(c.key, owner, adjusted); len(targets) > 0 {
				reps[c.key] = targets
				// Reads spread over owner + existing + new copies. The
				// observed window loads already reflect the old spread,
				// so the owner and each existing copy shed only the
				// dilution delta while each new target picks up a full
				// new-spread share (the deltas sum to zero).
				reads := float64(c.load.reads)
				have := r.pm.dir.allReplicas(c.key)
				oldSpread := float64(1 + len(have))
				newSpread := float64(1 + len(have) + len(targets))
				delta := reads * (1/oldSpread - 1/newSpread)
				adjusted[owner] -= delta
				for _, t := range have {
					adjusted[t] -= delta
				}
				for _, t := range targets {
					adjusted[t] += reads / newSpread
				}
			}
			continue
		}
		// Write-heavy keys only move off an overloaded home.
		if adjusted[owner] <= mean {
			continue
		}
		dst := coldest(adjusted, owner)
		if dst < 0 {
			continue
		}
		moves[c.key] = dst
		adjusted[owner] -= float64(c.ops)
		adjusted[dst] += float64(c.ops)
	}
	if len(reps) == 0 && len(moves) == 0 && len(splits) == 0 {
		return false, nil
	}
	// A key holding replica copies when the split trigger fires resolves
	// deterministically: its copies are dropped in one paid round first,
	// then the key splits — never both states at once (SplitKeys rejects
	// replicated keys outright, so the ordering is load-bearing).
	var dropFirst []uint64
	for _, k := range splits {
		if len(r.pm.dir.allReplicas(k)) > 0 {
			dropFirst = append(dropFirst, k)
		}
	}
	if len(dropFirst) > 0 {
		if err := r.pm.DropReplicaKeys(dropFirst); err != nil {
			return false, err
		}
	}
	// One coalesced placement change: both remedies share a single
	// gather + scatter round pair, so a decision costs two handshakes.
	if err := r.pm.ApplyPlacement(moves, reps); err != nil {
		return false, err
	}
	if len(splits) > 0 {
		if err := r.pm.SplitKeys(splits); err != nil {
			return false, err
		}
	}
	r.stats.KeysReplicated += len(reps)
	r.stats.KeysMigrated += len(moves)
	r.stats.KeysSplit += len(splits)
	for k := range reps {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
		delete(r.coldRuns, k) // a fresh promotion restarts cold counting
	}
	for k := range moves {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
	}
	for _, k := range splits {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
		delete(r.coldRuns, k)
	}
	r.stats.WindowsActed++
	return true, nil
}

// replicaTargets picks up to cfg.Replicas copy holders for key: the
// least-loaded DPUs that are neither the owner nor already copies.
// Existing copies count against the budget (a fully replicated key
// yields no new targets, so re-evaluation is a no-op, not churn).
func (r *Rebalancer) replicaTargets(key uint64, owner int, adjusted []float64) []int {
	have := r.pm.dir.allReplicas(key)
	budget := r.cfg.Replicas - len(have)
	if budget <= 0 {
		return nil
	}
	taken := make(map[int]bool, len(have)+1)
	taken[owner] = true
	for _, id := range have {
		taken[id] = true
	}
	order := make([]int, 0, len(adjusted))
	for id := range adjusted {
		if !taken[id] {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if adjusted[order[i]] != adjusted[order[j]] {
			return adjusted[order[i]] < adjusted[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > budget {
		order = order[:budget]
	}
	sort.Ints(order)
	return order
}

// coldest returns the least-loaded DPU other than exclude (−1 if none).
func coldest(adjusted []float64, exclude int) int {
	best := -1
	for id, load := range adjusted {
		if id == exclude {
			continue
		}
		if best < 0 || load < adjusted[best] ||
			(load == adjusted[best] && id < best) {
			best = id
		}
	}
	return best
}
