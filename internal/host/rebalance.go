package host

import (
	"fmt"
	"sort"
)

// RebalancerConfig tunes the adaptive placement control plane. Zero
// fields take the documented defaults.
type RebalancerConfig struct {
	// WindowBatches is the sliding observation window: a decision is
	// considered every this many applied batches (default 8).
	WindowBatches int
	// TopK bounds how many hot keys one decision may promote or
	// migrate (default 4).
	TopK int
	// MinKeyOps is the hysteresis floor per key: a key is hot only if
	// the window routed at least this many ops to it (default 8).
	MinKeyOps int
	// Trigger is the per-DPU hysteresis: the hottest DPU must carry
	// more than Trigger × the mean window load before anything moves,
	// so uniform traffic never churns (default 1.25).
	Trigger float64
	// Replicas is the copy count a promoted key gets (default
	// min(3, DPUs−1)).
	Replicas int
	// ReplicateMaxWriteShare splits the two remedies: a hot key whose
	// window write share is at or below this is read-mostly and gets
	// replicated; above it the key is write-heavy and is migrated to
	// the least-loaded DPU instead (default 0.05).
	ReplicateMaxWriteShare float64
	// CooldownWindows keeps a key untouched for this many decision
	// windows after it was migrated, promoted or de-promoted, damping
	// oscillation (default 4).
	CooldownWindows int
	// ColdKeyOps is the de-promotion floor: a replicated key is cold in
	// a window that routed fewer than this many ops to it (default 1 —
	// only keys with no observed traffic are cold; negative disables
	// de-promotion entirely).
	ColdKeyOps int
	// ColdWindows is how many consecutive cold windows a replicated key
	// must accumulate before its copies are dropped (default 2).
	ColdWindows int
}

func (c *RebalancerConfig) fill(dpus int) {
	if c.WindowBatches <= 0 {
		c.WindowBatches = 8
	}
	if c.TopK <= 0 {
		c.TopK = 4
	}
	if c.MinKeyOps <= 0 {
		c.MinKeyOps = 8
	}
	if c.Trigger <= 0 {
		c.Trigger = 1.25
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Replicas > dpus-1 {
		c.Replicas = dpus - 1
	}
	if c.ReplicateMaxWriteShare <= 0 {
		c.ReplicateMaxWriteShare = 0.05
	}
	if c.CooldownWindows <= 0 {
		c.CooldownWindows = 4
	}
	if c.ColdKeyOps == 0 {
		c.ColdKeyOps = 1
	}
	if c.ColdWindows <= 0 {
		c.ColdWindows = 2
	}
}

// KernelBoundServingRebalance is the documented preset the rebalance
// experiment and examples/rebalance share, tuned for large kernel-bound
// serving batches: one decision may touch many keys and spread them
// wide (the per-decision rounds amortize over the batch kernels), and
// the raised trigger stops the control plane once the fleet is
// balanced. window is the decision window in batches.
func KernelBoundServingRebalance(window int) RebalancerConfig {
	return RebalancerConfig{
		WindowBatches: window,
		TopK:          48,
		Replicas:      7,
		MinKeyOps:     12,
		Trigger:       1.4,
	}
}

// RebalancerStats counts the control plane's observations and actions.
type RebalancerStats struct {
	// BatchesObserved and WindowsEvaluated count the input side;
	// WindowsActed how many evaluations moved anything.
	BatchesObserved, WindowsEvaluated, WindowsActed int
	// KeysReplicated and KeysMigrated total the remedies applied;
	// KeysDepromoted counts cold keys whose replicas were dropped.
	KeysReplicated, KeysMigrated, KeysDepromoted int
}

// keyLoad accumulates one key's window traffic.
type keyLoad struct {
	reads, writes int
}

// Rebalancer is the adaptive placement control plane over a
// PartitionedMap with a Directory placement (Doppel-style special-
// casing of contended keys, LazyPIM-style replication of hot read
// data). It observes every applied batch's routing — per-DPU op counts
// and per-key read/write mixes — over a sliding window, and between
// quiescent windows promotes the top-k hot keys of the hottest DPU to
// read replicas (read-mostly keys) or migrates them to the least-loaded
// DPU (write-heavy keys), with hysteresis so uniform traffic never
// churns. Every remedy executes as paid fleet rounds through
// ReplicateKeys/MigrateKeys.
//
// A Rebalancer is driven by whoever owns the store: the Submitter calls
// MaybeRebalance after each flush; direct ApplyBatch users call it
// themselves. It is not goroutine-safe on its own — it inherits the
// PartitionedMap's single-owner discipline.
type Rebalancer struct {
	pm  *PartitionedMap
	cfg RebalancerConfig

	batches int
	dpuOps  []int
	keys    map[uint64]*keyLoad
	window  int            // decision windows elapsed
	cooled  map[uint64]int // key → window index when it may move again
	// coldRuns counts a replicated key's consecutive cold windows; at
	// ColdWindows the key is de-promoted.
	coldRuns map[uint64]int

	stats RebalancerStats
}

// NewRebalancer attaches a rebalancer to pm, which must have been built
// with a *Directory placement (the overrides and replica sets live
// there). At most one rebalancer can be attached to a store.
func NewRebalancer(pm *PartitionedMap, cfg RebalancerConfig) (*Rebalancer, error) {
	if pm.dir == nil {
		return nil, fmt.Errorf("host: rebalancer needs a Directory placement")
	}
	if pm.reb != nil {
		return nil, fmt.Errorf("host: store already has a rebalancer")
	}
	cfg.fill(pm.DPUs())
	r := &Rebalancer{
		pm:       pm,
		cfg:      cfg,
		dpuOps:   make([]int, pm.DPUs()),
		keys:     make(map[uint64]*keyLoad),
		cooled:   make(map[uint64]int),
		coldRuns: make(map[uint64]int),
	}
	pm.reb = r
	return r, nil
}

// Stats snapshots the control-plane counters.
func (r *Rebalancer) Stats() RebalancerStats { return r.stats }

// observe records one applied transaction batch: the client ops (by
// transaction, guarded RMWs counting as writes) and the per-DPU routed
// op counts (replica spreading, shadow maintenance and coordinated
// gather sources included).
func (r *Rebalancer) observe(txns []Txn, routed []int) {
	for i := range txns {
		for _, op := range txns[i].Ops {
			l := r.keys[op.Key]
			if l == nil {
				l = &keyLoad{}
				r.keys[op.Key] = l
			}
			if op.Kind == OpGet {
				l.reads++
			} else {
				l.writes++
			}
		}
	}
	for id, n := range routed {
		r.dpuOps[id] += n
	}
	r.batches++
	r.stats.BatchesObserved++
}

// Step evaluates the window if it is full: cold replicated keys are
// de-promoted first (their copies dropped in one paid round), then at
// most one placement decision runs — replicate the read-mostly hot keys
// of the hottest DPU, migrate the write-heavy ones. It reports whether
// anything moved.
func (r *Rebalancer) Step() (bool, error) {
	if r.batches < r.cfg.WindowBatches {
		return false, nil
	}
	dropped, err := r.depromote()
	acted := false
	if err == nil {
		acted, err = r.decide()
	}
	r.reset()
	return acted || dropped, err
}

// depromote drops the replicas of keys whose window load fell below the
// cold threshold for ColdWindows consecutive windows, so traffic that
// shifts away from a once-hot key does not leave its copies (and their
// write-through shadow puts) behind forever.
func (r *Rebalancer) depromote() (bool, error) {
	if r.cfg.ColdKeyOps < 0 {
		return false, nil
	}
	replicated := r.pm.dir.replicatedKeys()
	live := make(map[uint64]bool, len(replicated))
	var drops []uint64
	for _, k := range replicated {
		live[k] = true
		ops := 0
		if l := r.keys[k]; l != nil {
			ops = l.reads + l.writes
		}
		if ops >= r.cfg.ColdKeyOps {
			delete(r.coldRuns, k)
			continue
		}
		if until, cooling := r.cooled[k]; cooling && r.window < until {
			continue
		}
		r.coldRuns[k]++
		if r.coldRuns[k] < r.cfg.ColdWindows {
			continue
		}
		delete(r.coldRuns, k)
		drops = append(drops, k)
	}
	// Keys that lost their copies elsewhere (deletes, migration) have
	// no run to keep counting.
	for k := range r.coldRuns {
		if !live[k] {
			delete(r.coldRuns, k)
		}
	}
	if len(drops) == 0 {
		return false, nil
	}
	if err := r.pm.DropReplicaKeys(drops); err != nil {
		return false, err
	}
	for _, k := range drops {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
	}
	r.stats.KeysDepromoted += len(drops)
	return true, nil
}

// reset opens a fresh observation window and prunes expired cooldowns
// (the map would otherwise grow toward the keyspace over a long run).
func (r *Rebalancer) reset() {
	r.batches = 0
	for i := range r.dpuOps {
		r.dpuOps[i] = 0
	}
	r.keys = make(map[uint64]*keyLoad)
	r.window++
	for k, until := range r.cooled {
		if r.window >= until {
			delete(r.cooled, k)
		}
	}
}

// decide is one evaluation of a full window.
func (r *Rebalancer) decide() (bool, error) {
	r.stats.WindowsEvaluated++
	n := r.pm.DPUs()
	if n < 2 {
		return false, nil
	}
	total := 0
	hot := 0
	for id, ops := range r.dpuOps {
		total += ops
		if ops > r.dpuOps[hot] {
			hot = id
		}
	}
	mean := float64(total) / float64(n)
	if total == 0 || float64(r.dpuOps[hot]) <= r.cfg.Trigger*mean {
		return false, nil
	}

	// The fleet's heavy hitters, hottest first, hysteresis-filtered.
	// The trigger fires on one overloaded DPU, but the remedy considers
	// every hot key: spreading any heavy hitter lowers the worst-case
	// bucket wherever the next skewed batch lands.
	type hotKey struct {
		key  uint64
		ops  int
		load *keyLoad
	}
	var cands []hotKey
	for key, l := range r.keys {
		ops := l.reads + l.writes
		if ops < r.cfg.MinKeyOps {
			continue
		}
		if until, cooling := r.cooled[key]; cooling && r.window < until {
			continue
		}
		cands = append(cands, hotKey{key: key, ops: ops, load: l})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ops != cands[j].ops {
			return cands[i].ops > cands[j].ops
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > r.cfg.TopK {
		cands = cands[:r.cfg.TopK]
	}

	// Split the remedies. adjusted tracks planned load so several
	// migrations do not pile onto one target.
	adjusted := make([]float64, n)
	for id, ops := range r.dpuOps {
		adjusted[id] = float64(ops)
	}
	reps := make(map[uint64][]int)
	moves := make(map[uint64]int)
	for _, c := range cands {
		owner := r.pm.owner(c.key)
		writeShare := float64(c.load.writes) / float64(c.ops)
		if writeShare <= r.cfg.ReplicateMaxWriteShare {
			if targets := r.replicaTargets(c.key, owner, adjusted); len(targets) > 0 {
				reps[c.key] = targets
				// Reads spread over owner + existing + new copies. The
				// observed window loads already reflect the old spread,
				// so the owner and each existing copy shed only the
				// dilution delta while each new target picks up a full
				// new-spread share (the deltas sum to zero).
				reads := float64(c.load.reads)
				have := r.pm.dir.allReplicas(c.key)
				oldSpread := float64(1 + len(have))
				newSpread := float64(1 + len(have) + len(targets))
				delta := reads * (1/oldSpread - 1/newSpread)
				adjusted[owner] -= delta
				for _, t := range have {
					adjusted[t] -= delta
				}
				for _, t := range targets {
					adjusted[t] += reads / newSpread
				}
			}
			continue
		}
		// Write-heavy keys only move off an overloaded home.
		if adjusted[owner] <= mean {
			continue
		}
		dst := coldest(adjusted, owner)
		if dst < 0 {
			continue
		}
		moves[c.key] = dst
		adjusted[owner] -= float64(c.ops)
		adjusted[dst] += float64(c.ops)
	}
	if len(reps) == 0 && len(moves) == 0 {
		return false, nil
	}
	// One coalesced placement change: both remedies share a single
	// gather + scatter round pair, so a decision costs two handshakes.
	if err := r.pm.ApplyPlacement(moves, reps); err != nil {
		return false, err
	}
	r.stats.KeysReplicated += len(reps)
	r.stats.KeysMigrated += len(moves)
	for k := range reps {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
		delete(r.coldRuns, k) // a fresh promotion restarts cold counting
	}
	for k := range moves {
		r.cooled[k] = r.window + r.cfg.CooldownWindows
	}
	r.stats.WindowsActed++
	return true, nil
}

// replicaTargets picks up to cfg.Replicas copy holders for key: the
// least-loaded DPUs that are neither the owner nor already copies.
// Existing copies count against the budget (a fully replicated key
// yields no new targets, so re-evaluation is a no-op, not churn).
func (r *Rebalancer) replicaTargets(key uint64, owner int, adjusted []float64) []int {
	have := r.pm.dir.allReplicas(key)
	budget := r.cfg.Replicas - len(have)
	if budget <= 0 {
		return nil
	}
	taken := make(map[int]bool, len(have)+1)
	taken[owner] = true
	for _, id := range have {
		taken[id] = true
	}
	order := make([]int, 0, len(adjusted))
	for id := range adjusted {
		if !taken[id] {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if adjusted[order[i]] != adjusted[order[j]] {
			return adjusted[order[i]] < adjusted[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > budget {
		order = order[:budget]
	}
	sort.Ints(order)
	return order
}

// coldest returns the least-loaded DPU other than exclude (−1 if none).
func coldest(adjusted []float64, exclude int) int {
	best := -1
	for id, load := range adjusted {
		if id == exclude {
			continue
		}
		if best < 0 || load < adjusted[best] ||
			(load == adjusted[best] && id < best) {
			best = id
		}
	}
	return best
}
