package host

import (
	"reflect"
	"testing"

	"pimstm/internal/core"
)

// keysOnDPUs returns two keys owned by two different DPUs of an n-DPU
// static hash fleet, so tests can build confined and cross-DPU
// transactions deterministically.
func keysOnDPUs(t *testing.T, n int) (k0, k1 uint64) {
	t.Helper()
	first := hashOwner(0, n)
	for k := uint64(1); k < 1<<12; k++ {
		if hashOwner(k, n) != first {
			return 0, k
		}
	}
	t.Fatal("static hash put every probe key on one DPU")
	return 0, 0
}

// TestFIFOSchedulerExplicitMatchesDefault: passing an explicit
// FIFOScheduler is the same serving path as the nil default — the
// extraction changed where the policy lives, not what it does.
func TestFIFOSchedulerExplicitMatchesDefault(t *testing.T) {
	drive := func(sched Scheduler) ([]TxnResult, SubmitterStats, float64) {
		pm := newPM(t, 4)
		s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3, Scheduler: sched})
		var futs []*Future
		for k := uint64(0); k < 30; k++ {
			arr := float64(k) * 150e-6
			futs = append(futs, submit(t, s, one(Op{Kind: OpPut, Key: k, Value: k}), arr))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		res := make([]TxnResult, len(futs))
		for i, f := range futs {
			res[i] = f.Wait()
		}
		return res, s.Stats(), pm.Stats().WallSeconds
	}

	defRes, defStats, defWall := drive(nil)
	expRes, expStats, expWall := drive(NewFIFOScheduler(8, 1e-3))
	defStats.ZeroHostClock()
	expStats.ZeroHostClock()
	if defStats != expStats {
		t.Fatalf("stats diverged: default %+v, explicit %+v", defStats, expStats)
	}
	if defWall != expWall {
		t.Fatalf("modeled wall clocks diverged: %g vs %g", defWall, expWall)
	}
	for i := range defRes {
		if defRes[i].LatencySeconds != expRes[i].LatencySeconds || defRes[i].Committed != expRes[i].Committed {
			t.Fatalf("txn %d diverged: %+v vs %+v", i, defRes[i], expRes[i])
		}
	}
	if defStats.ConfinedBatches != 0 || defStats.CoordinatedBatches != 0 {
		t.Fatalf("FIFO batches must be unlaned: %+v", defStats)
	}
}

// TestLaneOfAgreesWithApplyTxns: the scheduler's admission classifier
// and the store's execution-time analysis share classifyOps, so a
// transaction is LaneCoordinated exactly when applying it alone
// coordinates it.
func TestLaneOfAgreesWithApplyTxns(t *testing.T) {
	pm := newPM(t, 4)
	k0, k1 := keysOnDPUs(t, 4)
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: k0, Value: 1}, {Kind: OpPut, Key: k1, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	cases := []Txn{
		one(Op{Kind: OpGet, Key: k0}),
		one(Op{Kind: OpPut, Key: k1, Value: 9}),
		{Ops: []Op{{Kind: OpPut, Key: k0, Value: 2}, {Kind: OpGet, Key: k0}}},
		{Ops: []Op{{Kind: OpAdd, Key: k0, Value: 1}, {Kind: OpSub, Key: k1, Value: 1}}},
		{Ops: []Op{{Kind: OpPut, Key: k0, Value: 3}, {Kind: OpPut, Key: k1, Value: 4}}},
	}
	for i, txn := range cases {
		lane := pm.LaneOf(txn)
		before := pm.TxnsCoordinated
		if _, err := pm.ApplyTxns([]Txn{txn}); err != nil {
			t.Fatal(err)
		}
		coordinated := pm.TxnsCoordinated > before
		if coordinated != (lane == LaneCoordinated) {
			t.Fatalf("case %d: LaneOf says %v but ApplyTxns coordinated=%v", i, lane, coordinated)
		}
	}
}

// TestLaneSchedulerHomogeneousBatches: a mixed stream through a
// LaneScheduler flushes homogeneous batches — confined transactions
// never pay coordination, even when they share written keys with
// cross-DPU transactions that would drag them into a conflict group
// inside one FIFO batch.
func TestLaneSchedulerHomogeneousBatches(t *testing.T) {
	k0, k1 := keysOnDPUs(t, 4)
	mixed := func(i int) (Txn, bool) {
		if i%4 == 3 {
			// Cross-DPU writer sharing k0 with the confined traffic: in
			// a mixed batch its conflict group swallows the k0 writers.
			return Txn{Ops: []Op{{Kind: OpPut, Key: k0, Value: uint64(i)}, {Kind: OpPut, Key: k1, Value: uint64(i)}}}, true
		}
		return one(Op{Kind: OpPut, Key: k0, Value: uint64(i)}), false
	}
	drive := func(sched Scheduler) (SubmitterStats, int) {
		pm := newPM(t, 4)
		s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3, Scheduler: sched})
		var futs []*Future
		cross := 0
		for i := 0; i < 40; i++ {
			txn, isCross := mixed(i)
			if isCross {
				cross++
			}
			futs = append(futs, submit(t, s, txn, float64(i)*100e-6))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		for i, f := range futs {
			if res := f.Wait(); res.Err != nil || !res.Committed {
				t.Fatalf("txn %d: %+v", i, res)
			}
		}
		if cross != 10 {
			t.Fatalf("stream shape changed: %d cross txns", cross)
		}
		return s.Stats(), pm.TxnsCoordinated
	}

	_, fifoCoord := drive(nil)
	laneStats, laneCoord := drive(NewLaneScheduler(LaneSchedulerConfig{
		Confined:    LaneConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3},
		Coordinated: LaneConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3},
	}))

	if laneStats.ConfinedBatches == 0 || laneStats.CoordinatedBatches == 0 {
		t.Fatalf("both lanes must flush: %+v", laneStats)
	}
	if laneStats.ConfinedBatches+laneStats.CoordinatedBatches != laneStats.Batches {
		t.Fatalf("lane batches must partition Batches: %+v", laneStats)
	}
	// Homogeneous batches coordinate exactly the cross transactions;
	// mixed FIFO batches drag the conflicting confined writers along.
	if laneCoord != 10 {
		t.Fatalf("lane scheduling coordinated %d txns, want exactly the 10 cross ones", laneCoord)
	}
	if fifoCoord <= laneCoord {
		t.Fatalf("FIFO should drag conflicting confined txns into coordination: fifo %d vs lane %d", fifoCoord, laneCoord)
	}
}

// TestLaneSchedulerStarvationBound: a trickle of coordinated traffic
// behind a confined flood is shipped by the starvation bound, not
// parked until its distant delay deadline.
func TestLaneSchedulerStarvationBound(t *testing.T) {
	classify := func(txn Txn) Lane {
		if txn.Ops[0].Key == 999 {
			return LaneCoordinated
		}
		return LaneConfined
	}
	l := NewLaneScheduler(LaneSchedulerConfig{
		Confined:          LaneConfig{MaxBatch: 4, MaxDelaySeconds: 1},
		Coordinated:       LaneConfig{MaxBatch: 1 << 20, MaxDelaySeconds: 1e9},
		StarvationBatches: 3,
		Classify:          classify,
	})

	if got := l.Admit(SchedTxn{Txn: one(Op{Kind: OpGet, Key: 999}), Arrival: 0}); len(got) != 0 {
		t.Fatalf("lone coordinated txn flushed immediately: %+v", got)
	}
	var flushed []SchedBatch
	for i := 0; i < 12; i++ { // 12 confined 1-op txns = 3 size flushes of 4
		flushed = append(flushed, l.Admit(SchedTxn{Txn: one(Op{Kind: OpGet, Key: uint64(i)}), Arrival: float64(i+1) * 1e-6})...)
	}
	var lanes []Lane
	for _, b := range flushed {
		lanes = append(lanes, b.Lane)
	}
	if len(flushed) != 4 {
		t.Fatalf("want 3 confined size flushes + 1 starved coordinated flush, got %d (%v)", len(flushed), lanes)
	}
	for i := 0; i < 3; i++ {
		if flushed[i].Lane != LaneConfined || flushed[i].Reason != FlushSize {
			t.Fatalf("flush %d: %v/%v", i, flushed[i].Lane, flushed[i].Reason)
		}
	}
	starved := flushed[3]
	if starved.Lane != LaneCoordinated || starved.Reason != FlushDelay || len(starved.Txns) != 1 {
		t.Fatalf("starved flush wrong: %+v", starved)
	}
	if l.Starved() != 1 {
		t.Fatalf("starved counter = %d", l.Starved())
	}
	// The bound resets: the next confined flushes run the count anew.
	if got := l.Drain(); len(got) != 0 {
		t.Fatalf("drain of empty lanes flushed %d batches", len(got))
	}
}

// TestAdaptiveSchedulerAIMDConvergence: the controller grows the
// confined lane's MaxBatch to the ceiling under handshake-bound
// feedback, shrinks it to the floor under kernel-bound feedback, and
// never leaves [Floor, Ceiling] — the deterministic AIMD trajectory
// the acceptance criteria require.
func TestAdaptiveSchedulerAIMDConvergence(t *testing.T) {
	mk := func() *AdaptiveScheduler {
		return NewAdaptiveScheduler(LaneSchedulerConfig{
			Confined: LaneConfig{MaxBatch: 64},
			Classify: func(Txn) Lane { return LaneConfined },
		}, AdaptiveConfig{Floor: 16, Ceiling: 256, Step: 16})
	}
	confined := SchedBatch{Lane: LaneConfined}

	a := mk()
	// Handshake-bound: kernels tiny next to the ~300 µs rounds.
	for i := 0; i < 64; i++ {
		if got := a.MaxBatch(); got < 16 || got > 256 {
			t.Fatalf("step %d: MaxBatch %d left [16, 256]", i, got)
		}
		a.Observe(confined, BatchFeedback{Ops: 8, KernelSeconds: 10e-6, HandshakeSeconds: 600e-6})
	}
	if a.MaxBatch() != 256 {
		t.Fatalf("handshake-bound feedback must grow to the ceiling, got %d", a.MaxBatch())
	}
	// Kernel-bound: the batch kernels dwarf the handshakes.
	for i := 0; i < 64; i++ {
		a.Observe(confined, BatchFeedback{Ops: 4096, KernelSeconds: 30e-3, HandshakeSeconds: 700e-6})
		if got := a.MaxBatch(); got < 16 || got > 256 {
			t.Fatalf("shrink step %d: MaxBatch %d left [16, 256]", i, got)
		}
	}
	if a.MaxBatch() != 16 {
		t.Fatalf("kernel-bound feedback must shrink to the floor, got %d", a.MaxBatch())
	}

	b := mk()
	// Inside the AIMD band nothing moves; coordinated batches and
	// rebalancer-free feedback never touch the knob either.
	b.Observe(confined, BatchFeedback{Ops: 64, KernelSeconds: 450e-6, HandshakeSeconds: 300e-6})
	b.Observe(SchedBatch{Lane: LaneCoordinated}, BatchFeedback{Ops: 64, KernelSeconds: 0, HandshakeSeconds: 600e-6})
	b.Observe(confined, BatchFeedback{Ops: 0, KernelSeconds: 0, HandshakeSeconds: 0})
	if b.MaxBatch() != 64 {
		t.Fatalf("in-band feedback moved MaxBatch to %d", b.MaxBatch())
	}
}

// TestAdaptiveServeConverges: end to end on the modeled clock, a
// handshake-bound open-loop trace (small transactions, thin batches)
// grows the confined MaxBatch off its floor, deterministically per
// seed.
func TestAdaptiveServeConverges(t *testing.T) {
	run := func() (ServeResult, int) {
		var a *AdaptiveScheduler
		res, err := Serve(ServeConfig{
			Map:    PartitionedMapConfig{DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec}, Mode: Pipelined},
			Submit: SubmitterConfig{MaxBatch: 16, MaxDelaySeconds: 200e-6},
			Traffic: TrafficConfig{
				Ops: 600, Rate: 1.5e5, ReadPct: 80, Keyspace: 256, ZipfS: 0.8, Seed: 3,
			},
			Scheduler: func() Scheduler {
				a = NewAdaptiveScheduler(LaneSchedulerConfig{
					Confined:    LaneConfig{MaxBatch: 16, MaxDelaySeconds: 200e-6},
					Coordinated: LaneConfig{MaxBatch: 16, MaxDelaySeconds: 200e-6},
				}, AdaptiveConfig{Floor: 16, Ceiling: 512, Step: 16})
				return a
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, a.MaxBatch()
	}
	res1, mb1 := run()
	res2, mb2 := run()
	res1.ZeroHostClock()
	res2.ZeroHostClock()
	if mb1 != mb2 || !reflect.DeepEqual(res1, res2) {
		t.Fatalf("adaptive serving must be deterministic per seed:\n%+v (MaxBatch %d)\n%+v (MaxBatch %d)", res1, mb1, res2, mb2)
	}
	if mb1 <= 16 {
		t.Fatalf("handshake-bound trace must grow MaxBatch off the floor, still %d", mb1)
	}
	if res1.Errors > 0 || res1.Stats.Batches == 0 {
		t.Fatalf("degenerate run: %+v", res1)
	}
}

// TestSubmitterFlushReasonAccounting is the flush-reason satellite: for
// every scheduler, SizeFlushes + DelayFlushes + DrainFlushes must equal
// Batches, and each trigger must fire for its own reason — a size-filled
// lane, a proven delay deadline, and a Close drain.
func TestSubmitterFlushReasonAccounting(t *testing.T) {
	k0, k1 := keysOnDPUs(t, 4)
	lane := func() LaneSchedulerConfig {
		return LaneSchedulerConfig{
			Confined:    LaneConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3},
			Coordinated: LaneConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3},
		}
	}
	cases := []struct {
		name  string
		sched func() Scheduler
	}{
		{"fifo", func() Scheduler { return nil }},
		{"lane", func() Scheduler { return NewLaneScheduler(lane()) }},
		{"adaptive", func() Scheduler {
			return NewAdaptiveScheduler(lane(), AdaptiveConfig{Floor: 8, Ceiling: 64, Step: 8})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pm := newPM(t, 4)
			s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3, Scheduler: tc.sched()})
			var futs []*Future
			// 8 back-to-back confined 1-op txns: one size flush under
			// every policy.
			for k := uint64(0); k < 8; k++ {
				futs = append(futs, submit(t, s, one(Op{Kind: OpPut, Key: k, Value: k}), float64(k)*1e-6))
			}
			// 3 txns parked at t=10ms (one of them cross-DPU, so the
			// lane policies hold pending work in both lanes)...
			futs = append(futs,
				submit(t, s, one(Op{Kind: OpPut, Key: 100, Value: 1}), 10e-3),
				submit(t, s, Txn{Ops: []Op{{Kind: OpPut, Key: k0, Value: 1}, {Kind: OpPut, Key: k1, Value: 1}}}, 10e-3),
				submit(t, s, one(Op{Kind: OpPut, Key: 101, Value: 2}), 10e-3))
			// ...until t=20ms proves their 1 ms deadline: delay flushes.
			// The trigger itself drains on Close.
			futs = append(futs, submit(t, s, one(Op{Kind: OpGet, Key: 0}), 20e-3))
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			for i, f := range futs {
				if res := f.Wait(); res.Err != nil || !res.Committed {
					t.Fatalf("txn %d: %+v", i, res)
				}
			}
			st := s.Stats()
			if st.SizeFlushes+st.DelayFlushes+st.DrainFlushes != st.Batches {
				t.Fatalf("flush reasons must sum to Batches: %+v", st)
			}
			if st.SizeFlushes == 0 || st.DelayFlushes == 0 || st.DrainFlushes == 0 {
				t.Fatalf("every trigger must fire: %+v", st)
			}
			if st.Txns != len(futs) || st.Submitted != 13 {
				t.Fatalf("accounting off: %+v", st)
			}
			if tc.name != "fifo" {
				if st.ConfinedBatches+st.CoordinatedBatches != st.Batches {
					t.Fatalf("lane batches must partition Batches: %+v", st)
				}
				if st.CoordinatedBatches == 0 {
					t.Fatalf("the cross txn must flush as a coordinated batch: %+v", st)
				}
			}
		})
	}
}

// TestLaneServeWithRebalancerDeterministic: the rebalancer's
// observation hook is driven by flushes, so under a lane scheduler it
// sees per-lane homogeneous batches — and the whole loop stays
// deterministic.
func TestLaneServeWithRebalancerDeterministic(t *testing.T) {
	run := func() ServeResult {
		reb := RebalancerConfig{WindowBatches: 3, TopK: 8, MinKeyOps: 4, Trigger: 1.1}
		res, err := Serve(ServeConfig{
			Map: PartitionedMapConfig{
				DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
				Mode: Pipelined, Placement: NewDirectory(4),
			},
			Submit:    SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
			Rebalance: &reb,
			Traffic: TrafficConfig{
				Ops: 500, Rate: 2e5, ReadPct: 90, Keyspace: 256, ZipfS: 1.2, Seed: 11,
				TxnSize: 2, CrossDPU: 0.3, DPUs: 4,
			},
			Scheduler: func() Scheduler {
				return NewLaneScheduler(LaneSchedulerConfig{
					Confined:    LaneConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
					Coordinated: LaneConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	a.ZeroHostClock()
	b.ZeroHostClock()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lane serving with rebalancer diverged:\n%+v\n%+v", a, b)
	}
	if a.Errors > 0 || a.Stats.ConfinedBatches == 0 || a.Stats.CoordinatedBatches == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.Rebalance.BatchesObserved != a.Stats.Batches {
		t.Fatalf("rebalancer must observe every flushed batch: %+v vs %+v", a.Rebalance, a.Stats)
	}
}
