package host

import (
	"sync"
	"time"

	"pimstm/internal/core"
	"pimstm/internal/cpustm"
	"pimstm/internal/dpu"
	"pimstm/internal/lee"
	"pimstm/internal/workloads"
)

// LabyrinthFleetConfig shapes the multi-DPU Labyrinth of §4.3.1: each
// DPU solves an independent routing instance; the CPU dispatches inputs
// and collects the routed grids. Per the paper, the DPU side uses NOrec
// with metadata in MRAM (the sets exceed WRAM).
type LabyrinthFleetConfig struct {
	// X, Y, Z select the grid (16×16×3 S, 32×32×3 M, 128×128×3 L).
	X, Y, Z int
	// PathsPerInstance is the job count per DPU instance (paper: 100).
	PathsPerInstance int
	// Seed drives the deterministic instance generators.
	Seed uint64
}

func (c *LabyrinthFleetConfig) fill() {
	if c.X == 0 {
		c.X, c.Y, c.Z = 16, 16, 3
	}
	if c.PathsPerInstance == 0 {
		c.PathsPerInstance = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// LabyrinthFleetResult reports one multi-DPU Labyrinth execution.
type LabyrinthFleetResult struct {
	// DPUSeconds is the slowest simulated instance (instances run in
	// parallel, one per DPU).
	DPUSeconds float64
	// TransferSeconds models job dispatch and grid collection.
	TransferSeconds float64
	// TotalSeconds is the end-to-end PIM-side time.
	TotalSeconds float64
	// Routed counts committed paths across simulated instances.
	Routed int
	// Pipeline is the fleet's modeled-time breakdown (a single
	// scatter → launch → gather round; each DPU solves an independent
	// instance).
	Pipeline FleetStats
}

// RunLabyrinthFleet executes the multi-DPU Labyrinth flow as one fleet
// round: jobs scatter down (16 B each), every DPU solves its instance,
// the routed grids gather up (8 B per cell).
func RunLabyrinthFleet(cfg LabyrinthFleetConfig, opt FleetOptions) (LabyrinthFleetResult, error) {
	cfg.fill()
	fleet, err := NewFleet(opt, Lockstep, nil)
	if err != nil {
		return LabyrinthFleetResult{}, err
	}
	opt = fleet.opt // filled defaults
	ids := fleet.SimulatedIDs()
	routed := make([]int, len(ids))
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	cells := cfg.X * cfg.Y * cfg.Z
	err = fleet.Round(RoundSpec{
		ScatterBytes: cfg.PathsPerInstance * 16,
		GatherBytes:  cells * 8,
		Program: func(id int, _ *dpu.DPU) (float64, error) {
			w := &workloads.Labyrinth{
				X: cfg.X, Y: cfg.Y, Z: cfg.Z,
				NumPaths:   cfg.PathsPerInstance,
				Seed:       cfg.Seed + uint64(id)*2654435761,
				ExpandCost: 8,
			}
			res, err := workloads.Run(w, dpu.Config{MRAMSize: 8 << 20, Seed: uint64(id) + cfg.Seed},
				core.Config{Algorithm: core.NOrec, MetaTier: dpu.MRAM}, opt.Tasklets)
			if err != nil {
				return 0, err
			}
			routed[idx[id]] = w.Routed()
			return res.Seconds, nil
		},
	})
	if err != nil {
		return LabyrinthFleetResult{}, err
	}
	var out LabyrinthFleetResult
	for i := range routed {
		out.Routed += routed[i]
	}
	out.Pipeline = fleet.Drain()
	out.DPUSeconds = out.Pipeline.LaunchSeconds
	out.TransferSeconds = out.Pipeline.TransferSeconds
	out.TotalSeconds = out.Pipeline.WallSeconds
	return out, nil
}

// LabyrinthCPUInstance solves one routing instance with the cpustm
// NOrec baseline on `threads` host threads (the paper uses 8 threads
// per instance, 4 instances in parallel) and returns the measured
// seconds and the number of routed paths.
func LabyrinthCPUInstance(g lee.Grid, numPaths, threads int, seed uint64) (seconds float64, routedPaths int) {
	if threads <= 0 {
		threads = 8
	}
	cells := g.Cells()
	mem := cpustm.NewMem(cells + 1) // + job cursor
	tm := cpustm.New(mem)
	jobCursor := cells

	// Deterministic jobs, mirroring the DPU instance generator.
	rng := Rand64(seed | 1)
	next := rng.Next
	used := map[int]bool{}
	pick := func() int {
		for {
			c := int(next() % uint64(cells))
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}
	jobs := make([][2]int, numPaths)
	for j := range jobs {
		jobs[j] = [2]int{pick(), pick()}
	}

	var routedCount sync.Map
	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := tm.NewTx()
			snapshot := make([]uint64, cells)
			for {
				job := -1
				tx.Atomic(func(tx *cpustm.Tx) {
					v := tx.Read(jobCursor)
					if v >= uint64(numPaths) {
						job = -1
						return
					}
					tx.Write(jobCursor, v+1)
					job = int(v)
				})
				if job < 0 {
					return
				}
				src, dst := jobs[job][0], jobs[job][1]
				for {
					for i := 0; i < cells; i++ {
						snapshot[i] = mem.Load(i)
					}
					path, _ := lee.Expand(g, func(i int) bool { return snapshot[i] != 0 }, src, dst)
					if path == nil {
						break
					}
					conflict := false
					tx.Atomic(func(tx *cpustm.Tx) {
						conflict = false
						for _, c := range path {
							if tx.Read(c) != 0 {
								conflict = true
								return
							}
						}
						for _, c := range path {
							tx.Write(c, uint64(job+1))
						}
					})
					if !conflict {
						routedCount.Store(job, true)
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	n := 0
	routedCount.Range(func(_, _ any) bool { n++; return true })
	return elapsed, n
}

// LabyrinthCPUSecondsPerInstance calibrates the CPU baseline: seconds
// to solve one instance with the given thread count.
func LabyrinthCPUSecondsPerInstance(g lee.Grid, numPaths, threads int) float64 {
	s, _ := LabyrinthCPUInstance(g, numPaths, threads, 42)
	return s
}
