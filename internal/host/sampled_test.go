package host

import (
	"fmt"
	"math"
	"testing"

	"pimstm/internal/core"
)

// sampledServeCfg is one serving scenario used by the exact-vs-sampled
// comparison: small enough that exact mode is cheap, busy enough that
// every path (confined, coordinated, guarded RMW via OpAdd batches from
// the traffic mix) is exercised.
func sampledServeCfg(sample int, zipfS, cross float64) ServeConfig {
	return ServeConfig{
		Map: PartitionedMapConfig{
			DPUs: 4, Buckets: 64, Capacity: 2048, Tasklets: 4, Sample: sample,
			STM: core.Config{Algorithm: core.NOrec},
		},
		Submit: SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 1e-3},
		Traffic: TrafficConfig{
			Ops: 400, Rate: 50e3, ReadPct: 50, Keyspace: 256,
			ZipfS: zipfS, Seed: 7, TxnSize: 2, CrossDPU: cross,
		},
	}
}

// TestSampledFleetMatchesExact is the sampled-fleet error-bound gate:
// across a skew × cross-fraction grid, serving the same trace on a
// 4-DPU fleet with only 2 DPUs simulated must (a) return exactly the
// same transaction outcomes as the exact run — shadow shards execute
// unsimulated DPUs' ops host-side, so commits, aborts, errors and
// coordination counts are not approximated — and (b) keep the modeled
// throughput and p99 latency within 10% of exact, the bound the scale
// experiment's headline numbers rely on.
func TestSampledFleetMatchesExact(t *testing.T) {
	const bound = 0.10
	for _, zipfS := range []float64{0, 1.2} {
		for _, cross := range []float64{0, 0.5} {
			t.Run(fmt.Sprintf("zipf=%g/cross=%g", zipfS, cross), func(t *testing.T) {
				exact, err := Serve(sampledServeCfg(0, zipfS, cross))
				if err != nil {
					t.Fatal(err)
				}
				sampled, err := Serve(sampledServeCfg(2, zipfS, cross))
				if err != nil {
					t.Fatal(err)
				}
				if exact.SimulatedDPUs != 4 || sampled.SimulatedDPUs != 2 {
					t.Fatalf("simulated DPUs: exact %d (want 4), sampled %d (want 2)",
						exact.SimulatedDPUs, sampled.SimulatedDPUs)
				}
				// Outcomes are exact, not approximated.
				if sampled.Ops != exact.Ops || sampled.Txns != exact.Txns ||
					sampled.Batches != exact.Batches ||
					sampled.Errors != exact.Errors || sampled.Aborted != exact.Aborted ||
					sampled.CoordinatedTxns != exact.CoordinatedTxns {
					t.Fatalf("sampled outcomes diverge from exact:\nexact   %+v\nsampled %+v", exact, sampled)
				}
				// Timing is modeled: simulated representatives plus the
				// calibrated analytic charge must track the exact fleet.
				if relErr := math.Abs(sampled.OpsPerSecond-exact.OpsPerSecond) / exact.OpsPerSecond; relErr > bound {
					t.Errorf("ops/s off by %.1f%%: exact %.0f, sampled %.0f (bound %.0f%%)",
						100*relErr, exact.OpsPerSecond, sampled.OpsPerSecond, 100*bound)
				}
				if relErr := math.Abs(sampled.P99-exact.P99) / exact.P99; relErr > bound {
					t.Errorf("p99 off by %.1f%%: exact %.3gs, sampled %.3gs (bound %.0f%%)",
						100*relErr, exact.P99, sampled.P99, 100*bound)
				}
			})
		}
	}
}

// TestSampledConfigValidation pins the config surface: a negative
// sample is rejected, and Sample on the PartitionedMap cannot be
// combined with an exact fleet any other way (Sample 0 IS exact mode).
func TestSampledConfigValidation(t *testing.T) {
	cfg := PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 512, Tasklets: 4, Sample: -1,
		STM: core.Config{Algorithm: core.NOrec},
	}
	if _, err := NewPartitionedMap(cfg); err == nil {
		t.Fatal("negative Sample accepted")
	}
	cfg.Sample = 8 // clamped to the fleet: all 4 simulated, exact semantics
	pm, err := NewPartitionedMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pm.SimulatedDPUs() != 4 || pm.sampled {
		t.Fatalf("Sample ≥ DPUs must clamp to exact: simulated %d, sampled %v",
			pm.SimulatedDPUs(), pm.sampled)
	}
}

// TestFleetExactSampleRejected pins the FleetOptions contradiction
// fixed alongside the sampled-fleet work: Exact says "simulate every
// DPU", so combining it with a Sample bound is a configuration error
// with a descriptive message, not a silent override.
func TestFleetExactSampleRejected(t *testing.T) {
	_, err := NewFleet(FleetOptions{DPUs: 8, Tasklets: 2, Exact: true, Sample: 3}, Lockstep, nil)
	if err == nil {
		t.Fatal("Exact+Sample accepted")
	}
}
