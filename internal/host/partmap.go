package host

import (
	"fmt"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/structures"
)

// PartitionedMap is a key-value store distributed across a fleet of
// DPUs — the data-structure direction the paper's §5 sketches as future
// work. Keys are routed to their owner DPU by hash; operations on keys
// of one DPU run as transactions inside that DPU (PIM-STM regulates the
// intra-DPU concurrency); operations spanning DPUs are coordinated by
// the CPU while the involved DPUs are idle, "albeit sequentially"
// exactly as §3.1 describes, and charged the CPU-mediated transfer
// latency.
//
// The store processes operations in batches, matching the UPMEM
// execution model: the CPU may only touch DPU memory between kernel
// launches, so it buckets a batch by owner DPU, launches one program
// per DPU that applies its share with tasklet parallelism, and then
// performs the cross-DPU operations during the quiescent window.
type PartitionedMap struct {
	dpus []*dpu.DPU
	tms  []*core.TM
	maps []*structures.Map

	tasklets int

	// BatchSeconds accumulates the modeled wall time of every batch:
	// slowest DPU per launch plus transfer costs.
	BatchSeconds float64
}

// OpKind selects a batch operation.
type OpKind int

// Batch operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
)

// Op is one keyed operation in a batch.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
}

// OpResult is the outcome of one Op.
type OpResult struct {
	// Value is the read value for OpGet.
	Value uint64
	// OK reports presence (Get/Delete) or insertion (Put).
	OK bool
	// Err is non-nil when e.g. the owner DPU's pool is exhausted.
	Err error
}

// NewPartitionedMap builds a store over nDPUs simulated DPUs with the
// given per-DPU bucket count and node capacity, running ops with the
// given tasklet parallelism per DPU.
func NewPartitionedMap(nDPUs, buckets, capacity, tasklets int, stm core.Config) (*PartitionedMap, error) {
	if nDPUs < 1 {
		return nil, fmt.Errorf("host: partitioned map needs at least one DPU")
	}
	if tasklets < 1 || tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("host: bad tasklet count %d", tasklets)
	}
	pm := &PartitionedMap{tasklets: tasklets}
	for i := 0; i < nDPUs; i++ {
		d := dpu.New(dpu.Config{MRAMSize: 8 << 20, Seed: uint64(i) + 1})
		tm, err := core.New(d, stm)
		if err != nil {
			return nil, err
		}
		m, err := structures.NewMap(d, buckets, capacity)
		if err != nil {
			return nil, err
		}
		pm.dpus = append(pm.dpus, d)
		pm.tms = append(pm.tms, tm)
		pm.maps = append(pm.maps, m)
	}
	return pm, nil
}

// DPUs returns the fleet size.
func (pm *PartitionedMap) DPUs() int { return len(pm.dpus) }

// owner routes a key to its DPU.
func (pm *PartitionedMap) owner(key uint64) int {
	h := key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(len(pm.dpus)))
}

// ApplyBatch routes the batch, launches one program per involved DPU,
// and returns per-op results in order. The modeled batch time (slowest
// DPU plus scatter/gather transfers) accumulates in BatchSeconds.
func (pm *PartitionedMap) ApplyBatch(ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	perDPU := make(map[int][]int) // dpu → indices into ops
	for i, op := range ops {
		o := pm.owner(op.Key)
		perDPU[o] = append(perDPU[o], i)
	}

	var slowest float64
	// Deterministic order; DPU runs are independent of each other, so a
	// simple loop keeps results reproducible (each DPU is itself
	// deterministic).
	for id := 0; id < len(pm.dpus); id++ {
		idxs, ok := perDPU[id]
		if !ok {
			continue
		}
		d := pm.dpus[id]
		tm := pm.tms[id]
		m := pm.maps[id]
		d.ResetRun()
		n := pm.tasklets
		if n > len(idxs) {
			n = len(idxs)
		}
		progs := make([]func(*dpu.Tasklet), n)
		for ti := 0; ti < n; ti++ {
			mine := make([]int, 0, len(idxs)/n+1)
			for j := ti; j < len(idxs); j += n {
				mine = append(mine, idxs[j])
			}
			progs[ti] = func(t *dpu.Tasklet) {
				tx := tm.NewTx(t)
				for _, oi := range mine {
					op := ops[oi]
					switch op.Kind {
					case OpGet:
						tx.Atomic(func(tx *core.Tx) {
							results[oi].Value, results[oi].OK = m.Get(tx, op.Key)
						})
					case OpPut:
						tx.Atomic(func(tx *core.Tx) {
							ins, err := m.Put(tx, op.Key, op.Value)
							results[oi].OK, results[oi].Err = ins, err
						})
					case OpDelete:
						tx.Atomic(func(tx *core.Tx) {
							results[oi].OK = m.Delete(tx, op.Key)
						})
					}
				}
			}
		}
		cycles, err := d.Run(progs)
		if err != nil {
			return nil, fmt.Errorf("host: batch on dpu %d: %w", id, err)
		}
		if s := d.Seconds(cycles); s > slowest {
			slowest = s
		}
	}
	// Scatter the ops down and gather the results up (one batch each
	// way across the involved DPUs).
	pm.BatchSeconds += slowest +
		TransferSeconds(len(perDPU), 24*len(ops)/max(1, len(perDPU))) +
		TransferSeconds(len(perDPU), 16*len(ops)/max(1, len(perDPU)))
	return results, nil
}

// TransferBetween atomically moves `amount` from the value under keyFrom
// to the value under keyTo, even when the two keys live on different
// DPUs: the CPU performs the read-modify-writes while both DPUs are
// idle (the sequential CPU-coordination escape hatch of §3.1), charging
// one CPU-mediated word access per touched key. It reports false
// without changes if either key is missing or underflows.
func (pm *PartitionedMap) TransferBetween(keyFrom, keyTo, amount uint64) (bool, error) {
	fromDPU, toDPU := pm.owner(keyFrom), pm.owner(keyTo)
	from, okF := pm.hostGet(fromDPU, keyFrom)
	to, okT := pm.hostGet(toDPU, keyTo)
	pm.BatchSeconds += 2 * InterDPUWordLatencySeconds
	if !okF || !okT || from < amount {
		return false, nil
	}
	if err := pm.hostPut(fromDPU, keyFrom, from-amount); err != nil {
		return false, err
	}
	if err := pm.hostPut(toDPU, keyTo, to+amount); err != nil {
		return false, err
	}
	pm.BatchSeconds += 2 * InterDPUWordLatencySeconds
	return true, nil
}

// hostGet reads a key directly from an idle DPU.
func (pm *PartitionedMap) hostGet(id int, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	pm.maps[id].Walk(pm.dpus[id], func(k, val uint64) {
		if k == key {
			v, ok = val, true
		}
	})
	return v, ok
}

// hostPut updates a key on an idle DPU through a one-off single-tasklet
// program (the value must already exist; inserts go through ApplyBatch).
func (pm *PartitionedMap) hostPut(id int, key, value uint64) error {
	d := pm.dpus[id]
	tm := pm.tms[id]
	m := pm.maps[id]
	d.ResetRun()
	_, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
		tx := tm.NewTx(t)
		tx.Atomic(func(tx *core.Tx) {
			if _, err := m.Put(tx, key, value); err != nil {
				panic(err)
			}
		})
	}})
	return err
}

// Get reads a key from the host (between batches).
func (pm *PartitionedMap) Get(key uint64) (uint64, bool) {
	return pm.hostGet(pm.owner(key), key)
}

// Len sums the sizes of every partition.
func (pm *PartitionedMap) Len() int {
	n := 0
	for i, m := range pm.maps {
		n += m.Len(pm.dpus[i])
	}
	return n
}
