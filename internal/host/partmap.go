package host

import (
	"fmt"
	"sort"
	"sync"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/structures"
)

// PartitionedMap is a key-value store distributed across a fleet of
// DPUs — the data-structure direction the paper's §5 sketches as future
// work. Keys are routed to their owner DPU by a pluggable Placement
// (static hash by default, an adaptive Directory with migration and
// read replicas optionally); operations on keys of one DPU run as
// transactions inside that DPU (PIM-STM regulates the intra-DPU
// concurrency); operations spanning DPUs are coordinated by the CPU
// while the involved DPUs are idle, exactly as §3.1 describes — but
// coalesced per quiescent window into batched transfers instead of
// issued one 331 µs CPU-mediated word at a time.
//
// The store processes operations in batches through a Fleet, matching
// the UPMEM execution model: the CPU may only touch DPU memory between
// kernel launches, so it buckets a batch by target DPU, launches one
// program per involved DPU that applies its share with tasklet
// parallelism, and charges the scatter/gather through the fleet's
// transfer pipeline. In Pipelined mode consecutive batches overlap:
// while the fleet executes batch b, the host streams batch b+1 down and
// batch b-1's results up.
//
// With a Directory placement, replica maintenance rides the same
// machinery: reads of a replicated key spread over the owner and its
// fresh copies, writes invalidate or update the copies through shadow
// operations coalesced into the batch's own round, and stale copies are
// refreshed by shadow writes in a later batch — so replication is never
// modeled as free.
type PartitionedMap struct {
	fleet *Fleet
	tms   []*core.TM
	maps  []*structures.Map

	tasklets int

	place Placement
	// dir is place when it is a *Directory (nil otherwise); the data
	// plane needs the mutable view to maintain replica freshness.
	dir *Directory
	// reb, when attached, observes every applied batch and acts
	// between quiescent windows (see MaybeRebalance).
	reb *Rebalancer

	// BatchSeconds is the modeled wall-clock delta of the last
	// ApplyBatch/ApplyTransfers call (what that batch added to the
	// fleet clock; see Stats for the cumulative breakdown).
	BatchSeconds float64
}

// PartitionedMapConfig parameterizes a store. Zero fields take the
// documented defaults.
type PartitionedMapConfig struct {
	// DPUs is the fleet size (required, ≥ 1).
	DPUs int
	// Buckets and Capacity size each per-DPU hash map partition.
	Buckets, Capacity int
	// Tasklets is the intra-DPU parallelism per batch (required,
	// 1..dpu.MaxTasklets).
	Tasklets int
	// STM selects the algorithm and metadata tier inside each DPU.
	STM core.Config
	// Mode schedules the host↔DPU transfers (default Pipelined).
	Mode ExecMode
	// MRAMSize per DPU; 0 = 8 MiB.
	MRAMSize int
	// Placement routes keys to DPUs (nil = NewStaticHash(DPUs), the
	// seed behavior). Pass a *Directory to enable per-key overrides
	// and hot-key read replicas.
	Placement Placement
}

// OpKind selects a batch operation.
type OpKind int

// Batch operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
)

// Op is one keyed operation in a batch.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
}

// OpResult is the outcome of one Op.
type OpResult struct {
	// Value is the read value for OpGet.
	Value uint64
	// OK reports presence (Get/Delete) or insertion (Put).
	OK bool
	// Err is non-nil when e.g. the owner DPU's pool is exhausted.
	Err error
}

// Transfer is one cross-DPU atomic move: Amount is debited from the
// value under From and credited to the value under To.
type Transfer struct {
	From, To uint64
	Amount   uint64
}

// routedOp is one operation bucketed onto a DPU: a client op carrying
// its result index, or a replica-maintenance shadow op (ri < 0) —
// an invalidation delete, a write-through update or a stale-copy
// refresh riding the batch's scatter. grouped ops (the puts of a
// replicated key) are pinned to one tasklet in batch order, so the
// owner's final value is the batch's last put — the value the copies
// are written with.
type routedOp struct {
	op      Op
	ri      int
	grouped bool
}

// NewPartitionedMap builds a store over cfg.DPUs simulated DPUs. The
// fleet is always exact (every DPU simulated) because the stored data
// must be numerically correct.
func NewPartitionedMap(cfg PartitionedMapConfig) (*PartitionedMap, error) {
	if cfg.DPUs < 1 {
		return nil, fmt.Errorf("host: partitioned map needs at least one DPU")
	}
	if cfg.Tasklets < 1 || cfg.Tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("host: bad tasklet count %d", cfg.Tasklets)
	}
	if cfg.MRAMSize == 0 {
		cfg.MRAMSize = 8 << 20
	}
	if cfg.Placement == nil {
		cfg.Placement = NewStaticHash(cfg.DPUs)
	}
	if err := validatePlacement(cfg.Placement, cfg.DPUs); err != nil {
		return nil, err
	}
	pm := &PartitionedMap{
		tasklets: cfg.Tasklets,
		tms:      make([]*core.TM, cfg.DPUs),
		maps:     make([]*structures.Map, cfg.DPUs),
		place:    cfg.Placement,
	}
	pm.dir, _ = cfg.Placement.(*Directory)
	fleet, err := NewFleet(
		FleetOptions{DPUs: cfg.DPUs, Tasklets: cfg.Tasklets, Exact: true},
		cfg.Mode,
		func(id int) (*dpu.DPU, error) {
			d := dpu.New(dpu.Config{MRAMSize: cfg.MRAMSize, Seed: uint64(id) + 1})
			tm, err := core.New(d, cfg.STM)
			if err != nil {
				return nil, err
			}
			m, err := structures.NewMap(d, cfg.Buckets, cfg.Capacity)
			if err != nil {
				return nil, err
			}
			pm.tms[id] = tm
			pm.maps[id] = m
			return d, nil
		})
	if err != nil {
		return nil, err
	}
	pm.fleet = fleet
	return pm, nil
}

// DPUs returns the fleet size.
func (pm *PartitionedMap) DPUs() int { return pm.fleet.Size() }

// Placement returns the routing policy the store was built with.
func (pm *PartitionedMap) Placement() Placement { return pm.place }

// Stats snapshots the fleet's modeled timing (launch, transfer,
// quiescent-window and wall seconds, plus the lockstep-equivalent cost
// for pipeline-gain comparisons).
func (pm *PartitionedMap) Stats() FleetStats { return pm.fleet.Stats() }

// owner routes a key to its authoritative DPU.
func (pm *PartitionedMap) owner(key uint64) int { return pm.place.Owner(key) }

// batchPlan is what routeBatch hands ApplyBatch: the per-DPU buckets
// plus the directory mutations to apply once the round has succeeded
// (mutating the directory before the shadow ops physically ran would
// leave it ahead of DPU state if the round errors).
type batchPlan struct {
	perDPU map[int][]routedOp
	// dropAfter keys lose their replica bookkeeping (the round deleted
	// the copies); freshAfter keys become fresh (the round wrote the
	// copies); throughPut keys were written through and must re-stale
	// if their owner put errored.
	dropAfter, freshAfter []uint64
	throughPut            map[uint64]bool
}

// routeBatch buckets a batch by target DPU, spreading reads of
// replicated keys over the owner and its fresh copies, and appends the
// replica-maintenance shadow ops the batch implies (invalidation
// deletes, write-through updates, stale refreshes).
func (pm *PartitionedMap) routeBatch(ops []Op) batchPlan {
	plan := batchPlan{perDPU: make(map[int][]routedOp)}
	perDPU := plan.perDPU
	if pm.dir == nil {
		for i, op := range ops {
			o := pm.place.Owner(op.Key)
			perDPU[o] = append(perDPU[o], routedOp{op: op, ri: i})
		}
		return plan
	}

	// Pass 1: which keys does this batch write, and how? lastPut is the
	// batch's final put value per key — the value write-through carries
	// to the copies.
	puts := make(map[uint64]int)
	lastPut := make(map[uint64]uint64)
	dels := make(map[uint64]bool)
	for _, op := range ops {
		switch op.Kind {
		case OpPut:
			puts[op.Key]++
			lastPut[op.Key] = op.Value
		case OpDelete:
			dels[op.Key] = true
		}
	}
	written := func(k uint64) bool { return puts[k] > 0 || dels[k] }

	// Pass 2: route the client ops. Reads of a replicated key that was
	// fresh at batch start round-robin over the owner and its copies —
	// concurrent puts are fine (a read serializes before or after them
	// either way, and pass 3 keeps the end states converged), but a
	// delete pins the key's reads to the owner, and a stale entry
	// (hidden by Replicas) pins them too, because a stale copy would
	// leak a value overwritten in an earlier batch. Puts of a
	// replicated key are grouped onto one owner tasklet so the batch
	// order decides the final value deterministically.
	for i, op := range ops {
		o := pm.place.Owner(op.Key)
		ro := routedOp{op: op, ri: i}
		switch op.Kind {
		case OpGet:
			if !dels[op.Key] {
				if reps := pm.place.Replicas(op.Key); len(reps) > 0 {
					if t := i % (len(reps) + 1); t > 0 {
						o = reps[t-1]
					}
				}
			}
		case OpPut:
			ro.grouped = puts[op.Key] > 1 && len(pm.dir.allReplicas(op.Key)) > 0 && !dels[op.Key]
		}
		perDPU[o] = append(perDPU[o], ro)
	}

	// Pass 3: shadow ops for written replicated keys, coalesced into
	// this batch's round. A delete anywhere invalidates (the copies are
	// deleted and forgotten); puts write through — the copies get the
	// batch's last put value, which pass 2's grouping guarantees is
	// also the owner's final value — and stay fresh.
	plan.throughPut = make(map[uint64]bool)
	for _, k := range writtenKeys(puts, dels) {
		copies := pm.dir.allReplicas(k)
		if len(copies) == 0 {
			continue
		}
		if dels[k] {
			for _, r := range copies {
				perDPU[r] = append(perDPU[r], routedOp{op: Op{Kind: OpDelete, Key: k}, ri: -1})
			}
			plan.dropAfter = append(plan.dropAfter, k)
			continue
		}
		for _, r := range copies {
			perDPU[r] = append(perDPU[r], routedOp{op: Op{Kind: OpPut, Key: k, Value: lastPut[k]}, ri: -1})
		}
		// Owner and copies converge on lastPut[k], so a stale entry
		// becomes fresh again for free.
		plan.freshAfter = append(plan.freshAfter, k)
		plan.throughPut[k] = true
	}

	// Pass 4: refresh the stale copies this batch does not write, with
	// the owner's pre-batch value read in the quiescent window. Their
	// reads stayed on the owner in pass 2 (Replicas hides stale
	// entries), so the refresh commits race-free.
	for _, k := range pm.dir.staleKeys() {
		if written(k) {
			continue
		}
		v, ok := pm.hostGet(pm.place.Owner(k), k)
		copies := pm.dir.allReplicas(k)
		if !ok {
			// The owner lost the key (a failed write path); delete the
			// orphan copies rather than resurrect them.
			for _, r := range copies {
				perDPU[r] = append(perDPU[r], routedOp{op: Op{Kind: OpDelete, Key: k}, ri: -1})
			}
			plan.dropAfter = append(plan.dropAfter, k)
			continue
		}
		for _, r := range copies {
			perDPU[r] = append(perDPU[r], routedOp{op: Op{Kind: OpPut, Key: k, Value: v}, ri: -1})
		}
		plan.freshAfter = append(plan.freshAfter, k)
	}
	return plan
}

// writtenKeys merges the put and delete key sets, ascending.
func writtenKeys(puts map[uint64]int, dels map[uint64]bool) []uint64 {
	seen := make(map[uint64]bool, len(puts)+len(dels))
	for k := range puts {
		seen[k] = true
	}
	for k := range dels {
		seen[k] = true
	}
	return sortedKeys(seen)
}

// ApplyBatch routes the batch, launches one program per involved DPU
// through the fleet pipeline, and returns per-op results in order.
// Results are functionally valid immediately; on the modeled clock the
// batch's gather may still be in flight (Pipelined mode) — Stats always
// accounts for the drain, and BatchSeconds reports this batch's delta.
func (pm *PartitionedMap) ApplyBatch(ops []Op) ([]OpResult, error) {
	wallBefore := pm.fleet.Stats().WallSeconds
	results := make([]OpResult, len(ops))
	plan := pm.routeBatch(ops)
	perDPU := plan.perDPU
	involved := sortedKeys(perDPU)

	// Shadow-op put failures (a replica map out of capacity) leave that
	// copy behind the owner; the programs record the keys so the
	// directory can re-stale them after the round.
	var shadowMu sync.Mutex
	shadowFailed := make(map[uint64]bool)

	// RoundSpec carries a per-involved-DPU payload and the round takes
	// the slowest DPU either way, so charge the worst-case bucket: a
	// skewed batch pays for its hot partition instead of averaging it
	// away across the involved set. Shadow ops are part of the bucket —
	// replica maintenance is paid, not free.
	maxOps := 0
	for _, idxs := range perDPU {
		if len(idxs) > maxOps {
			maxOps = len(idxs)
		}
	}

	err := pm.fleet.Round(RoundSpec{
		Involved:     len(involved),
		ScatterBytes: 24 * maxOps,
		GatherBytes:  16 * maxOps,
		IDs:          involved,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			idxs := perDPU[id]
			tm := pm.tms[id]
			m := pm.maps[id]
			d.ResetRun()
			n := pm.tasklets
			if n > len(idxs) {
				n = len(idxs)
			}
			// Stripe ops over tasklets by position; grouped ops (the
			// puts of one replicated key) are pinned to a single
			// tasklet so they commit in batch order.
			lists := make([][]int, n)
			groupTasklet := make(map[uint64]int)
			groups := 0
			for j := range idxs {
				if idxs[j].grouped {
					ti, ok := groupTasklet[idxs[j].op.Key]
					if !ok {
						ti = groups % n
						groupTasklet[idxs[j].op.Key] = ti
						groups++
					}
					lists[ti] = append(lists[ti], j)
					continue
				}
				lists[j%n] = append(lists[j%n], j)
			}
			progs := make([]func(*dpu.Tasklet), n)
			for ti := 0; ti < n; ti++ {
				mine := lists[ti]
				progs[ti] = func(t *dpu.Tasklet) {
					tx := tm.NewTx(t)
					for _, j := range mine {
						ro := idxs[j]
						op := ro.op
						var res OpResult
						switch op.Kind {
						case OpGet:
							tx.Atomic(func(tx *core.Tx) {
								res.Value, res.OK = m.Get(tx, op.Key)
							})
						case OpPut:
							tx.Atomic(func(tx *core.Tx) {
								ins, err := m.Put(tx, op.Key, op.Value)
								res.OK, res.Err = ins, err
							})
						case OpDelete:
							tx.Atomic(func(tx *core.Tx) {
								res.OK = m.Delete(tx, op.Key)
							})
						}
						if ro.ri >= 0 {
							results[ro.ri] = res
						} else if res.Err != nil {
							shadowMu.Lock()
							shadowFailed[op.Key] = true
							shadowMu.Unlock()
						}
					}
				}
			}
			cycles, err := d.Run(progs)
			if err != nil {
				return 0, fmt.Errorf("host: batch on dpu %d: %w", id, err)
			}
			return d.Seconds(cycles), nil
		},
	})
	if err != nil {
		return nil, err
	}
	if pm.dir != nil {
		// The shadow ops physically ran; commit the deferred directory
		// mutations, then re-stale any key whose copies or owner put
		// failed (the copy set is behind or ahead of the owner — a
		// later batch refreshes it from the owner).
		for _, k := range plan.dropAfter {
			pm.dir.dropReplicas(k)
		}
		for _, k := range plan.freshAfter {
			pm.dir.markFresh(k)
		}
		for k := range shadowFailed {
			pm.dir.markStale(k)
		}
		for i, op := range ops {
			if op.Kind == OpPut && plan.throughPut[op.Key] && results[i].Err != nil {
				pm.dir.markStale(op.Key)
			}
		}
	}
	if pm.reb != nil {
		routed := make([]int, pm.fleet.Size())
		for id, idxs := range perDPU {
			routed[id] = len(idxs)
		}
		pm.reb.observe(ops, routed)
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return results, nil
}

// MaybeRebalance runs one decision step of the attached Rebalancer if
// its observation window is full, executing any promotions and
// migrations as paid fleet rounds in the current quiescent window. It
// reports whether the rebalancer acted. A no-op without a rebalancer.
func (pm *PartitionedMap) MaybeRebalance() (bool, error) {
	if pm.reb == nil {
		return false, nil
	}
	return pm.reb.Step()
}

// ApplyTransfers executes a batch of cross-DPU atomic moves in one
// quiescent window. Instead of 331 µs CPU-mediated reads per word, the
// host gathers every touched word from the involved DPUs in one batched
// transfer, applies the read-modify-writes against that snapshot in
// transfer order, and scatters the changed words back with one
// writeback program per involved DPU. ok[i] reports whether transfer i
// applied (both keys present and no underflow at its turn). Replica
// copies of changed keys go stale and are refreshed by a later batch.
func (pm *PartitionedMap) ApplyTransfers(ts []Transfer) ([]bool, error) {
	ok := make([]bool, len(ts))
	if len(ts) == 0 {
		pm.BatchSeconds = 0
		return ok, nil
	}
	wallBefore := pm.fleet.Stats().WallSeconds

	// Collect the distinct keys per owner DPU.
	keyDPU := make(map[uint64]int)
	perDPU := make(map[int][]uint64)
	addKey := func(k uint64) {
		if _, dup := keyDPU[k]; dup {
			return
		}
		o := pm.owner(k)
		keyDPU[k] = o
		perDPU[o] = append(perDPU[o], k)
	}
	for _, t := range ts {
		addKey(t.From)
		addKey(t.To)
	}
	involved := sortedKeys(perDPU)

	// Gather: one coalesced batched read of all touched words across
	// the involved DPUs (the fleet is quiescent between rounds).
	maxWords := 0
	for _, ks := range perDPU {
		if len(ks) > maxWords {
			maxWords = len(ks)
		}
	}
	// The host-side Walk reads key and value, so the gather moves the
	// same 16-byte records the writeback scatter does.
	if err := pm.fleet.Round(RoundSpec{
		Involved:    len(involved),
		GatherBytes: 16 * maxWords,
	}); err != nil {
		return nil, err
	}
	snapshot := make(map[uint64]uint64, len(keyDPU))
	present := make(map[uint64]bool, len(keyDPU))
	for _, id := range involved {
		pm.maps[id].Walk(pm.fleet.DPU(id), func(k, v uint64) {
			if _, want := keyDPU[k]; want && keyDPU[k] == id {
				snapshot[k] = v
				present[k] = true
			}
		})
	}

	// Apply the moves on the host against the snapshot, in order.
	dirty := make(map[uint64]bool)
	for i, t := range ts {
		if !present[t.From] || !present[t.To] || snapshot[t.From] < t.Amount {
			continue
		}
		snapshot[t.From] -= t.Amount
		snapshot[t.To] += t.Amount
		dirty[t.From], dirty[t.To] = true, true
		ok[i] = true
	}
	if len(dirty) == 0 {
		pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore // the gather still ran
		return ok, nil
	}

	// Scatter: write the changed words back, one coalesced program per
	// involved DPU applying all of its updates.
	writeback := make(map[int][]uint64) // dpu → changed keys
	maxDirty := 0
	for k := range dirty {
		id := keyDPU[k]
		writeback[id] = append(writeback[id], k)
	}
	wbIDs := sortedKeys(writeback)
	for _, id := range wbIDs {
		sort.Slice(writeback[id], func(a, b int) bool { return writeback[id][a] < writeback[id][b] })
		if len(writeback[id]) > maxDirty {
			maxDirty = len(writeback[id])
		}
	}
	if err := pm.fleet.Round(RoundSpec{
		Involved:     len(wbIDs),
		ScatterBytes: 16 * maxDirty,
		IDs:          wbIDs,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			tm := pm.tms[id]
			m := pm.maps[id]
			keys := writeback[id]
			d.ResetRun()
			var putErr error
			cycles, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
				tx := tm.NewTx(t)
				tx.Atomic(func(tx *core.Tx) {
					putErr = nil // fresh attempt after an abort
					for _, k := range keys {
						if _, err := m.Put(tx, k, snapshot[k]); err != nil {
							putErr = err
							return
						}
					}
				})
			}})
			if err != nil {
				return 0, err
			}
			if putErr != nil {
				return 0, fmt.Errorf("host: writeback on dpu %d: %w", id, putErr)
			}
			return d.Seconds(cycles), nil
		},
	}); err != nil {
		return nil, err
	}
	if pm.dir != nil {
		for k := range dirty {
			pm.dir.markStale(k)
		}
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return ok, nil
}

// TransferBetween atomically moves `amount` from the value under
// keyFrom to the value under keyTo — a single-element ApplyTransfers.
// It reports false without changes if either key is missing or the
// source would underflow.
func (pm *PartitionedMap) TransferBetween(keyFrom, keyTo, amount uint64) (bool, error) {
	ok, err := pm.ApplyTransfers([]Transfer{{From: keyFrom, To: keyTo, Amount: amount}})
	if err != nil {
		return false, err
	}
	return ok[0], nil
}

// MigrateKeys rehomes each key to its destination DPU, as two modeled
// fleet rounds in the current quiescent window: one coalesced gather of
// the migrating 16-byte records from their source DPUs, then one
// scatter round that writes each record on its destination and deletes
// it from its source. Requires a Directory placement (the overrides
// live there). Keys already home, or missing from their source, are
// skipped. BatchSeconds reports the migration window's delta.
func (pm *PartitionedMap) MigrateKeys(moves map[uint64]int) error {
	return pm.ApplyPlacement(moves, nil)
}

// ReplicateKeys promotes each key to hot-key read replicas on the given
// DPUs: one coalesced gather of the records from their owners, then one
// scatter round writing the copies. Existing copies are rewritten too
// (which is what refreshes a stale entry at promotion time), the owner
// is never a copy of itself, and keys missing from their owner are
// skipped. Requires a Directory placement. BatchSeconds reports the
// promotion window's delta.
func (pm *PartitionedMap) ReplicateKeys(reps map[uint64][]int) error {
	return pm.ApplyPlacement(nil, reps)
}

// ApplyPlacement executes one coalesced placement change — key
// migrations and replica promotions together — as exactly two modeled
// fleet rounds: one gather of every touched record from its current
// owner, one scatter round applying all destination puts, replica
// copies and source deletes. Coalescing matters because each round
// costs a ~300 µs handshake: the control plane pays two of them per
// decision, not two per remedy. Requires a Directory placement.
func (pm *PartitionedMap) ApplyPlacement(moves map[uint64]int, reps map[uint64][]int) error {
	if pm.dir == nil {
		return fmt.Errorf("host: placement changes need a Directory placement")
	}
	wallBefore := pm.fleet.Stats().WallSeconds
	perSrc := make(map[int][]uint64)
	srcOf := make(map[uint64]int)
	targets := make(map[uint64][]int)
	addSrc := func(k uint64) {
		if _, seen := srcOf[k]; seen {
			return
		}
		src := pm.owner(k)
		srcOf[k] = src
		perSrc[src] = append(perSrc[src], k)
	}
	for _, k := range sortedKeys(moves) {
		dst := moves[k]
		if dst < 0 || dst >= pm.fleet.Size() {
			return fmt.Errorf("host: migration of key %d to DPU %d out of range", k, dst)
		}
		if pm.owner(k) == dst {
			continue
		}
		addSrc(k)
	}
	for _, k := range sortedKeys(reps) {
		owner := pm.owner(k)
		if dst, moving := moves[k]; moving && dst != owner {
			// One decision may not migrate and replicate the same key;
			// the copy set would chase the moving owner.
			return fmt.Errorf("host: key %d both migrated and replicated in one placement change", k)
		}
		set := make(map[int]bool)
		for _, r := range pm.dir.allReplicas(k) {
			set[r] = true
		}
		for _, r := range reps[k] {
			if r < 0 || r >= pm.fleet.Size() {
				return fmt.Errorf("host: replica of key %d on DPU %d out of range", k, r)
			}
			if r != owner {
				set[r] = true
			}
		}
		if len(set) == 0 {
			continue
		}
		targets[k] = sortedKeys(set)
		addSrc(k)
	}
	if len(srcOf) == 0 {
		pm.BatchSeconds = 0
		return nil
	}
	vals, err := pm.gatherRecords(perSrc)
	if err != nil {
		return err
	}

	putOn := make(map[int][]uint64)
	delOn := make(map[int][]uint64)
	moved := make(map[uint64]int)
	copied := make(map[uint64][]int)
	for _, k := range sortedKeys(srcOf) {
		if _, ok := vals[k]; !ok {
			continue // key vanished from its owner; nothing to move or copy
		}
		if dst, moving := moves[k]; moving && dst != srcOf[k] {
			putOn[dst] = append(putOn[dst], k)
			delOn[srcOf[k]] = append(delOn[srcOf[k]], k)
			moved[k] = dst
		}
		if set, ok := targets[k]; ok {
			for _, r := range set {
				putOn[r] = append(putOn[r], k)
			}
			copied[k] = set
		}
	}
	if len(moved) == 0 && len(copied) == 0 {
		pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
		return nil
	}
	if err := pm.mutateRound(putOn, vals, delOn); err != nil {
		return err
	}
	for k, dst := range moved {
		pm.dir.setOwner(k, dst)
	}
	for k, set := range copied {
		pm.dir.setReplicas(k, set)
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return nil
}

// gatherRecords runs one coalesced gather round over the per-source key
// lists and returns the values read host-side in the quiescent window.
// Keys missing from their source are absent from the result.
func (pm *PartitionedMap) gatherRecords(perSrc map[int][]uint64) (map[uint64]uint64, error) {
	srcIDs := sortedKeys(perSrc)
	maxRec := 0
	for _, ks := range perSrc {
		if len(ks) > maxRec {
			maxRec = len(ks)
		}
	}
	if err := pm.fleet.Round(RoundSpec{
		Involved:    len(srcIDs),
		GatherBytes: 16 * maxRec,
	}); err != nil {
		return nil, err
	}
	vals := make(map[uint64]uint64)
	for _, id := range srcIDs {
		want := make(map[uint64]bool, len(perSrc[id]))
		for _, k := range perSrc[id] {
			want[k] = true
		}
		pm.maps[id].Walk(pm.fleet.DPU(id), func(k, v uint64) {
			if want[k] {
				vals[k] = v
			}
		})
	}
	return vals, nil
}

// mutateRound runs one scatter round that puts vals[k] for every key of
// putOn[id] and deletes every key of delOn[id], one coalesced program
// per involved DPU. The per-DPU payload is 16 bytes per put record and
// 8 bytes per delete message; the round charges the worst-case DPU.
func (pm *PartitionedMap) mutateRound(putOn map[int][]uint64, vals map[uint64]uint64, delOn map[int][]uint64) error {
	ids := make(map[int]bool)
	maxBytes := 0
	for id := range putOn {
		ids[id] = true
	}
	for id := range delOn {
		ids[id] = true
	}
	involved := sortedKeys(ids)
	for _, id := range involved {
		if b := 16*len(putOn[id]) + 8*len(delOn[id]); b > maxBytes {
			maxBytes = b
		}
	}
	return pm.fleet.Round(RoundSpec{
		Involved:     len(involved),
		ScatterBytes: maxBytes,
		IDs:          involved,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			tm := pm.tms[id]
			m := pm.maps[id]
			puts, dels := putOn[id], delOn[id]
			d.ResetRun()
			var putErr error
			cycles, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
				tx := tm.NewTx(t)
				tx.Atomic(func(tx *core.Tx) {
					putErr = nil // fresh attempt after an abort
					for _, k := range puts {
						if _, err := m.Put(tx, k, vals[k]); err != nil {
							putErr = err
							return
						}
					}
					for _, k := range dels {
						m.Delete(tx, k)
					}
				})
			}})
			if err != nil {
				return 0, err
			}
			if putErr != nil {
				return 0, fmt.Errorf("host: placement mutation on dpu %d: %w", id, putErr)
			}
			return d.Seconds(cycles), nil
		},
	})
}

// hostGet reads a key directly from an idle DPU.
func (pm *PartitionedMap) hostGet(id int, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	pm.maps[id].Walk(pm.fleet.DPU(id), func(k, val uint64) {
		if k == key {
			v, ok = val, true
		}
	})
	return v, ok
}

// Get reads a key from the host (between batches), always from its
// authoritative owner.
func (pm *PartitionedMap) Get(key uint64) (uint64, bool) {
	return pm.hostGet(pm.owner(key), key)
}

// Len counts the distinct keys stored: the sizes of every partition
// minus the physical replica copies the directory tracks.
func (pm *PartitionedMap) Len() int {
	n := 0
	for i, m := range pm.maps {
		n += m.Len(pm.fleet.DPU(i))
	}
	if pm.dir != nil {
		n -= pm.dir.replicaCopies()
	}
	return n
}

// sortedKeys returns the map's keys in ascending order (deterministic
// iteration for fleets and writebacks).
func sortedKeys[K int | uint64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
