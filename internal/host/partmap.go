package host

import (
	"fmt"
	"sort"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/structures"
)

// PartitionedMap is a key-value store distributed across a fleet of
// DPUs — the data-structure direction the paper's §5 sketches as future
// work. Keys are routed to their owner DPU by hash; operations on keys
// of one DPU run as transactions inside that DPU (PIM-STM regulates the
// intra-DPU concurrency); operations spanning DPUs are coordinated by
// the CPU while the involved DPUs are idle, exactly as §3.1 describes —
// but coalesced per quiescent window into batched transfers instead of
// issued one 331 µs CPU-mediated word at a time.
//
// The store processes operations in batches through a Fleet, matching
// the UPMEM execution model: the CPU may only touch DPU memory between
// kernel launches, so it buckets a batch by owner DPU, launches one
// program per involved DPU that applies its share with tasklet
// parallelism, and charges the scatter/gather through the fleet's
// transfer pipeline. In Pipelined mode consecutive batches overlap:
// while the fleet executes batch b, the host streams batch b+1 down and
// batch b-1's results up.
type PartitionedMap struct {
	fleet *Fleet
	tms   []*core.TM
	maps  []*structures.Map

	tasklets int

	// BatchSeconds mirrors the fleet's modeled wall clock after every
	// operation (kept as a field for convenience; see Stats for the
	// full launch/transfer/quiescent breakdown).
	BatchSeconds float64
}

// PartitionedMapConfig parameterizes a store. Zero fields take the
// documented defaults.
type PartitionedMapConfig struct {
	// DPUs is the fleet size (required, ≥ 1).
	DPUs int
	// Buckets and Capacity size each per-DPU hash map partition.
	Buckets, Capacity int
	// Tasklets is the intra-DPU parallelism per batch (required,
	// 1..dpu.MaxTasklets).
	Tasklets int
	// STM selects the algorithm and metadata tier inside each DPU.
	STM core.Config
	// Mode schedules the host↔DPU transfers (default Pipelined).
	Mode ExecMode
	// MRAMSize per DPU; 0 = 8 MiB.
	MRAMSize int
}

// OpKind selects a batch operation.
type OpKind int

// Batch operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
)

// Op is one keyed operation in a batch.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
}

// OpResult is the outcome of one Op.
type OpResult struct {
	// Value is the read value for OpGet.
	Value uint64
	// OK reports presence (Get/Delete) or insertion (Put).
	OK bool
	// Err is non-nil when e.g. the owner DPU's pool is exhausted.
	Err error
}

// Transfer is one cross-DPU atomic move: Amount is debited from the
// value under From and credited to the value under To.
type Transfer struct {
	From, To uint64
	Amount   uint64
}

// NewPartitionedMap builds a store over cfg.DPUs simulated DPUs. The
// fleet is always exact (every DPU simulated) because the stored data
// must be numerically correct.
func NewPartitionedMap(cfg PartitionedMapConfig) (*PartitionedMap, error) {
	if cfg.DPUs < 1 {
		return nil, fmt.Errorf("host: partitioned map needs at least one DPU")
	}
	if cfg.Tasklets < 1 || cfg.Tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("host: bad tasklet count %d", cfg.Tasklets)
	}
	if cfg.MRAMSize == 0 {
		cfg.MRAMSize = 8 << 20
	}
	pm := &PartitionedMap{
		tasklets: cfg.Tasklets,
		tms:      make([]*core.TM, cfg.DPUs),
		maps:     make([]*structures.Map, cfg.DPUs),
	}
	fleet, err := NewFleet(
		FleetOptions{DPUs: cfg.DPUs, Tasklets: cfg.Tasklets, Exact: true},
		cfg.Mode,
		func(id int) (*dpu.DPU, error) {
			d := dpu.New(dpu.Config{MRAMSize: cfg.MRAMSize, Seed: uint64(id) + 1})
			tm, err := core.New(d, cfg.STM)
			if err != nil {
				return nil, err
			}
			m, err := structures.NewMap(d, cfg.Buckets, cfg.Capacity)
			if err != nil {
				return nil, err
			}
			pm.tms[id] = tm
			pm.maps[id] = m
			return d, nil
		})
	if err != nil {
		return nil, err
	}
	pm.fleet = fleet
	return pm, nil
}

// DPUs returns the fleet size.
func (pm *PartitionedMap) DPUs() int { return pm.fleet.Size() }

// Stats snapshots the fleet's modeled timing (launch, transfer,
// quiescent-window and wall seconds, plus the lockstep-equivalent cost
// for pipeline-gain comparisons).
func (pm *PartitionedMap) Stats() FleetStats { return pm.fleet.Stats() }

// owner routes a key to its DPU.
func (pm *PartitionedMap) owner(key uint64) int {
	h := key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(len(pm.maps)))
}

// ApplyBatch routes the batch, launches one program per involved DPU
// through the fleet pipeline, and returns per-op results in order.
// Results are functionally valid immediately; on the modeled clock the
// batch's gather may still be in flight (Pipelined mode) — Stats and
// BatchSeconds always account for the drain.
func (pm *PartitionedMap) ApplyBatch(ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	perDPU := make(map[int][]int) // dpu → indices into ops
	for i, op := range ops {
		o := pm.owner(op.Key)
		perDPU[o] = append(perDPU[o], i)
	}
	involved := sortedKeys(perDPU)

	// RoundSpec carries a per-involved-DPU payload and the round takes
	// the slowest DPU either way, so charge the worst-case bucket: a
	// skewed batch pays for its hot partition instead of averaging it
	// away across the involved set.
	maxOps := 0
	for _, idxs := range perDPU {
		if len(idxs) > maxOps {
			maxOps = len(idxs)
		}
	}

	err := pm.fleet.Round(RoundSpec{
		Involved:     len(involved),
		ScatterBytes: 24 * maxOps,
		GatherBytes:  16 * maxOps,
		IDs:          involved,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			idxs := perDPU[id]
			tm := pm.tms[id]
			m := pm.maps[id]
			d.ResetRun()
			n := pm.tasklets
			if n > len(idxs) {
				n = len(idxs)
			}
			progs := make([]func(*dpu.Tasklet), n)
			for ti := 0; ti < n; ti++ {
				mine := make([]int, 0, len(idxs)/n+1)
				for j := ti; j < len(idxs); j += n {
					mine = append(mine, idxs[j])
				}
				progs[ti] = func(t *dpu.Tasklet) {
					tx := tm.NewTx(t)
					for _, oi := range mine {
						op := ops[oi]
						switch op.Kind {
						case OpGet:
							tx.Atomic(func(tx *core.Tx) {
								results[oi].Value, results[oi].OK = m.Get(tx, op.Key)
							})
						case OpPut:
							tx.Atomic(func(tx *core.Tx) {
								ins, err := m.Put(tx, op.Key, op.Value)
								results[oi].OK, results[oi].Err = ins, err
							})
						case OpDelete:
							tx.Atomic(func(tx *core.Tx) {
								results[oi].OK = m.Delete(tx, op.Key)
							})
						}
					}
				}
			}
			cycles, err := d.Run(progs)
			if err != nil {
				return 0, fmt.Errorf("host: batch on dpu %d: %w", id, err)
			}
			return d.Seconds(cycles), nil
		},
	})
	if err != nil {
		return nil, err
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds
	return results, nil
}

// ApplyTransfers executes a batch of cross-DPU atomic moves in one
// quiescent window. Instead of 331 µs CPU-mediated reads per word, the
// host gathers every touched word from the involved DPUs in one batched
// transfer, applies the read-modify-writes against that snapshot in
// transfer order, and scatters the changed words back with one
// writeback program per involved DPU. ok[i] reports whether transfer i
// applied (both keys present and no underflow at its turn).
func (pm *PartitionedMap) ApplyTransfers(ts []Transfer) ([]bool, error) {
	ok := make([]bool, len(ts))
	if len(ts) == 0 {
		return ok, nil
	}

	// Collect the distinct keys per owner DPU.
	keyDPU := make(map[uint64]int)
	perDPU := make(map[int][]uint64)
	addKey := func(k uint64) {
		if _, dup := keyDPU[k]; dup {
			return
		}
		o := pm.owner(k)
		keyDPU[k] = o
		perDPU[o] = append(perDPU[o], k)
	}
	for _, t := range ts {
		addKey(t.From)
		addKey(t.To)
	}
	involved := sortedKeys(perDPU)

	// Gather: one coalesced batched read of all touched words across
	// the involved DPUs (the fleet is quiescent between rounds).
	maxWords := 0
	for _, ks := range perDPU {
		if len(ks) > maxWords {
			maxWords = len(ks)
		}
	}
	// The host-side Walk reads key and value, so the gather moves the
	// same 16-byte records the writeback scatter does.
	if err := pm.fleet.Round(RoundSpec{
		Involved:    len(involved),
		GatherBytes: 16 * maxWords,
	}); err != nil {
		return nil, err
	}
	snapshot := make(map[uint64]uint64, len(keyDPU))
	present := make(map[uint64]bool, len(keyDPU))
	for _, id := range involved {
		pm.maps[id].Walk(pm.fleet.DPU(id), func(k, v uint64) {
			if _, want := keyDPU[k]; want && keyDPU[k] == id {
				snapshot[k] = v
				present[k] = true
			}
		})
	}

	// Apply the moves on the host against the snapshot, in order.
	dirty := make(map[uint64]bool)
	for i, t := range ts {
		if !present[t.From] || !present[t.To] || snapshot[t.From] < t.Amount {
			continue
		}
		snapshot[t.From] -= t.Amount
		snapshot[t.To] += t.Amount
		dirty[t.From], dirty[t.To] = true, true
		ok[i] = true
	}
	if len(dirty) == 0 {
		pm.BatchSeconds = pm.fleet.Stats().WallSeconds // the gather still ran
		return ok, nil
	}

	// Scatter: write the changed words back, one coalesced program per
	// involved DPU applying all of its updates.
	writeback := make(map[int][]uint64) // dpu → changed keys
	maxDirty := 0
	for k := range dirty {
		id := keyDPU[k]
		writeback[id] = append(writeback[id], k)
	}
	wbIDs := sortedKeys(writeback)
	for _, id := range wbIDs {
		sort.Slice(writeback[id], func(a, b int) bool { return writeback[id][a] < writeback[id][b] })
		if len(writeback[id]) > maxDirty {
			maxDirty = len(writeback[id])
		}
	}
	if err := pm.fleet.Round(RoundSpec{
		Involved:     len(wbIDs),
		ScatterBytes: 16 * maxDirty,
		IDs:          wbIDs,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			tm := pm.tms[id]
			m := pm.maps[id]
			keys := writeback[id]
			d.ResetRun()
			var putErr error
			cycles, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
				tx := tm.NewTx(t)
				tx.Atomic(func(tx *core.Tx) {
					putErr = nil // fresh attempt after an abort
					for _, k := range keys {
						if _, err := m.Put(tx, k, snapshot[k]); err != nil {
							putErr = err
							return
						}
					}
				})
			}})
			if err != nil {
				return 0, err
			}
			if putErr != nil {
				return 0, fmt.Errorf("host: writeback on dpu %d: %w", id, putErr)
			}
			return d.Seconds(cycles), nil
		},
	}); err != nil {
		return nil, err
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds
	return ok, nil
}

// TransferBetween atomically moves `amount` from the value under
// keyFrom to the value under keyTo — a single-element ApplyTransfers.
// It reports false without changes if either key is missing or the
// source would underflow.
func (pm *PartitionedMap) TransferBetween(keyFrom, keyTo, amount uint64) (bool, error) {
	ok, err := pm.ApplyTransfers([]Transfer{{From: keyFrom, To: keyTo, Amount: amount}})
	if err != nil {
		return false, err
	}
	return ok[0], nil
}

// hostGet reads a key directly from an idle DPU.
func (pm *PartitionedMap) hostGet(id int, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	pm.maps[id].Walk(pm.fleet.DPU(id), func(k, val uint64) {
		if k == key {
			v, ok = val, true
		}
	})
	return v, ok
}

// Get reads a key from the host (between batches).
func (pm *PartitionedMap) Get(key uint64) (uint64, bool) {
	return pm.hostGet(pm.owner(key), key)
}

// Len sums the sizes of every partition.
func (pm *PartitionedMap) Len() int {
	n := 0
	for i, m := range pm.maps {
		n += m.Len(pm.fleet.DPU(i))
	}
	return n
}

// sortedKeys returns the map's keys in ascending order (deterministic
// iteration for fleets and writebacks).
func sortedKeys[K int | uint64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
