package host

import (
	"fmt"
	"runtime"
	"slices"
	"sort"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/structures"
)

// PartitionedMap is a key-value store distributed across a fleet of
// DPUs — the data-structure direction the paper's §5 sketches as future
// work. Keys are routed to their owner DPU by a pluggable Placement
// (static hash by default, an adaptive Directory with migration and
// read replicas optionally); operations on keys of one DPU run as
// transactions inside that DPU (PIM-STM regulates the intra-DPU
// concurrency); operations spanning DPUs are coordinated by the CPU
// while the involved DPUs are idle, exactly as §3.1 describes — but
// coalesced per quiescent window into batched transfers instead of
// issued one 331 µs CPU-mediated word at a time.
//
// The store processes operations in batches through a Fleet, matching
// the UPMEM execution model: the CPU may only touch DPU memory between
// kernel launches, so it buckets a batch by target DPU, launches one
// program per involved DPU that applies its share with tasklet
// parallelism, and charges the scatter/gather through the fleet's
// transfer pipeline. In Pipelined mode consecutive batches overlap:
// while the fleet executes batch b, the host streams batch b+1 down and
// batch b-1's results up.
//
// With a Directory placement, replica maintenance rides the same
// machinery: reads of a replicated key spread over the owner and its
// fresh copies, writes invalidate or update the copies through shadow
// operations coalesced into the batch's own round, and stale copies are
// refreshed by shadow writes in a later batch — so replication is never
// modeled as free.
//
// With Sample > 0 the store runs in sampled-fleet mode: only the
// sample's representative DPUs are cycle-simulated, while every other
// DPU keeps its key state in a cheap host-side shadow shard (same
// capacity bound, same guarded-RMW/replica/migration semantics — all
// results stay exact) and its kernel time is charged analytically from
// the calibrated per-op cycle rate. Transfer costs are unchanged: a
// round still pays for every involved DPU under the worst-bucket and
// per-link-cap rules. That is what lets sweeps reach the paper's 2500
// DPUs at millions of modeled ops/s without simulating 2500 DPUs.
type PartitionedMap struct {
	fleet *Fleet
	tms   []*core.TM
	maps  []*structures.Map

	tasklets int

	// Sampled-fleet state. sim flags the cycle-simulated ids; shadow
	// holds the host-side key state of every unsimulated DPU (nil in
	// exact mode); shadowCap mirrors the per-partition node-pool
	// capacity; opCycles is the calibrated per-operation kernel cycle
	// rate the analytic charge uses, refreshed from every round with
	// simulated work; applyCycles is its writeback-kernel sibling — the
	// per-compiled-instruction rate of the kernel-side commit round.
	sampled     bool
	sim         []bool
	shadow      []map[uint64]uint64
	shadowCap   int
	opCycles    float64
	applyCycles float64

	// sc is the reusable per-batch scratch of the ApplyTxns hot path
	// and exec the persistent per-simulated-DPU kernel contexts; both
	// exist so a steady-state batch allocates (nearly) nothing.
	sc   batchScratch
	exec map[int]*dpuExec

	// Host-parallel engine state (hostpar.go): the resolved worker
	// count, whether the serial reference path is selected instead, the
	// static-hash fan-in of the engine's devirtualized owner routing
	// (0 when the placement is not a plain StaticHash), the owner
	// closure bound once for classifyOps, and the per-worker scratch
	// arenas with their dispatch cursor.
	hostWorkers int
	hostSerial  bool
	staticN     int
	ownerFn     func(uint64) int
	par         hostPar

	place Placement
	// dir is place when it is a *Directory (nil otherwise); the data
	// plane needs the mutable view to maintain replica freshness.
	dir *Directory
	// reb, when attached, observes every applied batch and acts
	// between quiescent windows (see MaybeRebalance).
	reb *Rebalancer

	// splitTrack is the host's exact view of every delta shard's
	// balance, keyed by shard key: seeded at zero by SplitKeys, set
	// exactly at every reconciliation fold, adjusted by committed
	// rewritten ops post-batch, and deleted on unsplit. The sub-rewrite
	// coverage check (split.go) reads it to prove a batch's pending
	// subtractions cannot underflow their shards.
	splitTrack map[uint64]uint64

	// BatchSeconds is the modeled wall-clock delta of the last
	// ApplyTxns/ApplyBatch/ApplyTransfers call (what that window added
	// to the fleet clock; see Stats for the cumulative breakdown).
	BatchSeconds float64
	// BatchLaunchSeconds and BatchTransferSeconds split the last
	// ApplyTxns window's cost into kernel launch time and host↔DPU
	// transfer-engine time (handshakes + payload) — the
	// kernel-vs-handshake signal the adaptive batch scheduler feeds on.
	BatchLaunchSeconds, BatchTransferSeconds float64
	// TxnsApplied and TxnsCoordinated count the transactions processed
	// so far and how many of them needed CPU coordination (cross-DPU
	// conflict groups routed through snapshot/writeback rounds).
	TxnsApplied, TxnsCoordinated int
	// SplitReconciles counts the split-key epoch reconciliations paid so
	// far: one per key per merge round folding its per-DPU delta shards
	// into the home value (see split.go).
	SplitReconciles int
	// BatchPhases breaks the last ApplyTxns window's coordination cost
	// into gather, kernel-apply, and writeback-transfer phases — the
	// per-phase attribution the bench artifacts record.
	BatchPhases ApplyTxnsStats

	// mutPut/mutVals/mutDel is the in-flight mutateLists context read
	// by the persistent mutate-round programs; execProgFn and mutProgFn
	// are the Round program values, bound once so the hot path never
	// re-creates a method closure.
	mutPut, mutDel *dpuKeyLists
	mutVals        map[uint64]uint64
	execProgFn     func(id int, d *dpu.DPU) (float64, error)
	mutProgFn      func(id int, d *dpu.DPU) (float64, error)
	wbProgFn       func(id int, d *dpu.DPU) (float64, error)
}

// PartitionedMapConfig parameterizes a store. Zero fields take the
// documented defaults.
type PartitionedMapConfig struct {
	// DPUs is the fleet size (required, ≥ 1).
	DPUs int
	// Buckets and Capacity size each per-DPU hash map partition.
	Buckets, Capacity int
	// Tasklets is the intra-DPU parallelism per batch (required,
	// 1..dpu.MaxTasklets).
	Tasklets int
	// STM selects the algorithm and metadata tier inside each DPU.
	STM core.Config
	// Mode schedules the host↔DPU transfers (default Pipelined).
	Mode ExecMode
	// MRAMSize per DPU; 0 = 8 MiB.
	MRAMSize int
	// Placement routes keys to DPUs (nil = NewStaticHash(DPUs), the
	// seed behavior). Pass a *Directory to enable per-key overrides
	// and hot-key read replicas.
	Placement Placement
	// Sample, when > 0, runs the store in sampled-fleet mode: only
	// min(Sample, DPUs) representative DPUs — spread deterministically
	// as ids[i] = i·DPUs/Sample — are cycle-simulated, while the rest
	// keep their exact key state in host-side shadow shards and charge
	// their kernel time analytically from a calibrated per-op cycle
	// rate (transfer costs still pay for every involved DPU). Results
	// stay exact; only the kernel-time model of unsimulated DPUs is
	// approximate. 0 simulates every DPU — the exact mode every
	// pre-sampling artifact uses.
	Sample int
	// HostParallelism bounds the worker pool of the host-side batch
	// phases (transaction classification, per-key write analysis,
	// sampled shadow-shard application) and of the fleet's DPU
	// simulations. 0 resolves to GOMAXPROCS. 1 selects the historical
	// serial implementations verbatim — the differential reference the
	// parallel engine must match byte-identically on every modeled
	// artifact. Any other value runs the engine with that many workers
	// (a 1-worker engine is HostParallelism on a single-CPU GOMAXPROCS).
	HostParallelism int
}

// OpKind selects a batch operation.
type OpKind int

// Batch operation kinds. OpGet, OpPut and OpDelete are the plain map
// operations; OpAdd and OpSub are guarded read-modify-writes for use
// inside a Txn — OpAdd fails when the key is missing, OpSub also when
// the subtraction would underflow, and a failing guard aborts the whole
// transaction (nothing applies).
const (
	OpGet OpKind = iota
	OpPut
	OpDelete
	OpAdd
	OpSub
)

// Op is one keyed operation in a transaction or batch. For OpAdd and
// OpSub, Value is the delta applied to the stored value.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value uint64
}

// OpResult is the outcome of one Op.
type OpResult struct {
	// Value is the read value for OpGet.
	Value uint64
	// OK reports presence (Get/Delete) or insertion (Put).
	OK bool
	// Err is non-nil when e.g. the owner DPU's pool is exhausted.
	Err error
}

// Transfer is one cross-DPU atomic move: Amount is debited from the
// value under From and credited to the value under To.
type Transfer struct {
	From, To uint64
	Amount   uint64
}

// NewPartitionedMap builds a store over cfg.DPUs DPUs. With Sample 0
// the fleet is exact (every DPU simulated, the mode in which the stored
// data is bit-for-bit what real hardware would hold); with Sample > 0
// only the representative sample is simulated and the rest run as
// host-side shadow shards charged analytically — see
// PartitionedMapConfig.Sample.
func NewPartitionedMap(cfg PartitionedMapConfig) (*PartitionedMap, error) {
	if cfg.DPUs < 1 {
		return nil, fmt.Errorf("host: partitioned map needs at least one DPU")
	}
	if cfg.Tasklets < 1 || cfg.Tasklets > dpu.MaxTasklets {
		return nil, fmt.Errorf("host: bad tasklet count %d", cfg.Tasklets)
	}
	if cfg.Sample < 0 {
		return nil, fmt.Errorf("host: negative DPU sample %d", cfg.Sample)
	}
	if cfg.HostParallelism < 0 {
		return nil, fmt.Errorf("host: negative host parallelism %d", cfg.HostParallelism)
	}
	if cfg.MRAMSize == 0 {
		cfg.MRAMSize = 8 << 20
	}
	if cfg.Placement == nil {
		cfg.Placement = NewStaticHash(cfg.DPUs)
	}
	if err := validatePlacement(cfg.Placement, cfg.DPUs); err != nil {
		return nil, err
	}
	pm := &PartitionedMap{
		tasklets: cfg.Tasklets,
		tms:      make([]*core.TM, cfg.DPUs),
		maps:     make([]*structures.Map, cfg.DPUs),
		place:    cfg.Placement,
	}
	pm.dir, _ = cfg.Placement.(*Directory)
	pm.hostSerial = cfg.HostParallelism == 1
	pm.hostWorkers = cfg.HostParallelism
	if pm.hostWorkers == 0 {
		pm.hostWorkers = runtime.GOMAXPROCS(0)
	}
	pm.ownerFn = pm.owner
	if _, static := cfg.Placement.(*StaticHash); static {
		pm.staticN = cfg.DPUs
	}
	if !pm.hostSerial {
		pm.par.w = make([]hostWorker, pm.hostWorkers)
	}
	fo := FleetOptions{DPUs: cfg.DPUs, Tasklets: cfg.Tasklets, Parallelism: cfg.HostParallelism}
	if cfg.Sample > 0 {
		fo.Sample = cfg.Sample
	} else {
		fo.Exact = true
	}
	fleet, err := NewFleet(fo, cfg.Mode,
		func(id int) (*dpu.DPU, error) {
			d := dpu.New(dpu.Config{MRAMSize: cfg.MRAMSize, Seed: uint64(id) + 1})
			tm, err := core.New(d, cfg.STM)
			if err != nil {
				return nil, err
			}
			m, err := structures.NewMap(d, cfg.Buckets, cfg.Capacity)
			if err != nil {
				return nil, err
			}
			pm.tms[id] = tm
			pm.maps[id] = m
			return d, nil
		})
	if err != nil {
		return nil, err
	}
	pm.fleet = fleet
	simIDs := fleet.ids
	pm.sim = make([]bool, cfg.DPUs)
	for _, id := range simIDs {
		pm.sim[id] = true
	}
	pm.sampled = len(simIDs) < cfg.DPUs
	if pm.sampled {
		pm.shadow = make([]map[uint64]uint64, cfg.DPUs)
		for id := range pm.shadow {
			if !pm.sim[id] {
				pm.shadow[id] = make(map[uint64]uint64)
			}
		}
		pm.shadowCap = cfg.Capacity
		rate, err := calibrateOpCycles(cfg)
		if err != nil {
			return nil, fmt.Errorf("host: sampled-fleet calibration: %w", err)
		}
		pm.opCycles = rate
		applyRate, err := calibrateApplyCycles(cfg)
		if err != nil {
			return nil, fmt.Errorf("host: sampled-fleet apply calibration: %w", err)
		}
		pm.applyCycles = applyRate
	}
	pm.sc.init(cfg.DPUs)
	pm.exec = make(map[int]*dpuExec, len(simIDs))
	for _, id := range simIDs {
		pm.exec[id] = newDPUExec(pm, id)
	}
	pm.execProgFn = pm.runExecProgram
	pm.mutProgFn = pm.runMutProgram
	pm.wbProgFn = pm.runWbProgram
	return pm, nil
}

// SimulatedDPUs reports how many of the fleet's DPUs are cycle-
// simulated: the fleet size in exact mode, the sample size in sampled
// mode.
func (pm *PartitionedMap) SimulatedDPUs() int { return len(pm.fleet.ids) }

// DPUs returns the fleet size.
func (pm *PartitionedMap) DPUs() int { return pm.fleet.Size() }

// Placement returns the routing policy the store was built with.
func (pm *PartitionedMap) Placement() Placement { return pm.place }

// Stats snapshots the fleet's modeled timing (launch, transfer,
// quiescent-window and wall seconds, plus the lockstep-equivalent cost
// for pipeline-gain comparisons).
func (pm *PartitionedMap) Stats() FleetStats { return pm.fleet.Stats() }

// owner routes a key to its authoritative DPU.
func (pm *PartitionedMap) owner(key uint64) int { return pm.place.Owner(key) }

// ApplyBatch routes a batch of independent single operations — each op
// its own 1-op transaction, the ApplyTxns degenerate case — and returns
// per-op results in order. It preserves the pre-Txn semantics exactly:
// every op is an independent concurrent transaction, so same-key order
// within a batch is unspecified (replicated-key puts excepted, which
// serialize on one owner tasklet), and the round charges the worst-case
// per-DPU bucket. Results are functionally valid immediately; on the
// modeled clock the batch's gather may still be in flight (Pipelined
// mode) — Stats always accounts for the drain, and BatchSeconds reports
// this batch's delta.
func (pm *PartitionedMap) ApplyBatch(ops []Op) ([]OpResult, error) {
	txns := make([]Txn, len(ops))
	for i, op := range ops {
		txns[i] = Txn{Ops: []Op{op}}
	}
	tres, err := pm.ApplyTxns(txns)
	if err != nil {
		return nil, err
	}
	results := make([]OpResult, len(ops))
	for i := range tres {
		results[i] = tres[i].Results[0]
	}
	return results, nil
}

// MaybeRebalance runs one decision step of the attached Rebalancer if
// its observation window is full, executing any promotions and
// migrations as paid fleet rounds in the current quiescent window. It
// reports whether the rebalancer acted. A no-op without a rebalancer.
func (pm *PartitionedMap) MaybeRebalance() (bool, error) {
	if pm.reb == nil {
		return false, nil
	}
	return pm.reb.Step()
}

// ApplyTransfers executes a batch of cross-DPU atomic moves in one
// quiescent window, each transfer a 2-key transaction — a guarded
// debit of From (OpSub, aborting on a missing key or underflow) and a
// credit of To (OpAdd, aborting on a missing key) — applied in batch
// order. All transfers are CPU-coordinated regardless of placement
// (the historical contract): the touched records ride one coalesced
// snapshot gather, the host applies the read-modify-writes against the
// snapshot, and the changed 16-byte records ride one coalesced
// writeback scatter — never 331 µs CPU-mediated words. ok[i] reports
// whether transfer i committed. Replica copies of changed keys go
// stale and are refreshed by a later batch.
func (pm *PartitionedMap) ApplyTransfers(ts []Transfer) ([]bool, error) {
	ok := make([]bool, len(ts))
	if len(ts) == 0 {
		pm.BatchSeconds = 0
		return ok, nil
	}
	txns := make([]Txn, len(ts))
	for i, t := range ts {
		txns[i] = Txn{Ops: []Op{
			{Kind: OpSub, Key: t.From, Value: t.Amount},
			{Kind: OpAdd, Key: t.To, Value: t.Amount},
		}}
	}
	res, err := pm.applyTxns(txns, true)
	if err != nil {
		return nil, err
	}
	for i := range res {
		ok[i] = res[i].Committed
	}
	return ok, nil
}

// TransferBetween atomically moves `amount` from the value under
// keyFrom to the value under keyTo — a single-element ApplyTransfers.
// It reports false without changes if either key is missing or the
// source would underflow.
func (pm *PartitionedMap) TransferBetween(keyFrom, keyTo, amount uint64) (bool, error) {
	ok, err := pm.ApplyTransfers([]Transfer{{From: keyFrom, To: keyTo, Amount: amount}})
	if err != nil {
		return false, err
	}
	return ok[0], nil
}

// MigrateKeys rehomes each key to its destination DPU, as two modeled
// fleet rounds in the current quiescent window: one coalesced gather of
// the migrating 16-byte records from their source DPUs, then one
// scatter round that writes each record on its destination and deletes
// it from its source. Requires a Directory placement (the overrides
// live there). Keys already home, or missing from their source, are
// skipped. BatchSeconds reports the migration window's delta.
func (pm *PartitionedMap) MigrateKeys(moves map[uint64]int) error {
	return pm.ApplyPlacement(moves, nil)
}

// ReplicateKeys promotes each key to hot-key read replicas on the given
// DPUs: one coalesced gather of the records from their owners, then one
// scatter round writing the copies. Existing copies are rewritten too
// (which is what refreshes a stale entry at promotion time), the owner
// is never a copy of itself, and keys missing from their owner are
// skipped. Requires a Directory placement. BatchSeconds reports the
// promotion window's delta.
func (pm *PartitionedMap) ReplicateKeys(reps map[uint64][]int) error {
	return pm.ApplyPlacement(nil, reps)
}

// DropReplicaKeys de-promotes keys: every physical replica copy of the
// given keys is deleted in one paid coalesced scatter round on the copy
// holders, and the directory forgets them — the reverse of
// ReplicateKeys, used by the Rebalancer when a once-hot key goes cold
// so the directory does not grow monotonically. Keys without copies are
// skipped; with nothing to drop the call is free. Requires a Directory
// placement. BatchSeconds reports the window's delta.
func (pm *PartitionedMap) DropReplicaKeys(keys []uint64) error {
	if pm.dir == nil {
		return fmt.Errorf("host: replica de-promotion needs a Directory placement")
	}
	wallBefore := pm.fleet.Stats().WallSeconds
	delOn := make(map[int][]uint64)
	var dropped []uint64
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		copies := pm.dir.allReplicas(k)
		if len(copies) == 0 {
			continue
		}
		for _, r := range copies {
			delOn[r] = append(delOn[r], k)
		}
		dropped = append(dropped, k)
	}
	if len(dropped) == 0 {
		pm.BatchSeconds = 0
		return nil
	}
	for _, id := range sortedKeys(delOn) {
		sort.Slice(delOn[id], func(a, b int) bool { return delOn[id][a] < delOn[id][b] })
	}
	if err := pm.mutateRound(nil, nil, delOn); err != nil {
		return err
	}
	for _, k := range dropped {
		pm.dir.dropReplicas(k)
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return nil
}

// ApplyPlacement executes one coalesced placement change — key
// migrations and replica promotions together — as exactly two modeled
// fleet rounds: one gather of every touched record from its current
// owner, one scatter round applying all destination puts, replica
// copies and source deletes. Coalescing matters because each round
// costs a ~300 µs handshake: the control plane pays two of them per
// decision, not two per remedy. Requires a Directory placement.
func (pm *PartitionedMap) ApplyPlacement(moves map[uint64]int, reps map[uint64][]int) error {
	if pm.dir == nil {
		return fmt.Errorf("host: placement changes need a Directory placement")
	}
	wallBefore := pm.fleet.Stats().WallSeconds
	perSrc := make(map[int][]uint64)
	srcOf := make(map[uint64]int)
	targets := make(map[uint64][]int)
	addSrc := func(k uint64) {
		if _, seen := srcOf[k]; seen {
			return
		}
		src := pm.owner(k)
		srcOf[k] = src
		perSrc[src] = append(perSrc[src], k)
	}
	for _, k := range sortedKeys(moves) {
		dst := moves[k]
		if dst < 0 || dst >= pm.fleet.Size() {
			return fmt.Errorf("host: migration of key %d to DPU %d out of range", k, dst)
		}
		if pm.owner(k) == dst {
			continue
		}
		addSrc(k)
	}
	for _, k := range sortedKeys(reps) {
		owner := pm.owner(k)
		if dst, moving := moves[k]; moving && dst != owner {
			// One decision may not migrate and replicate the same key;
			// the copy set would chase the moving owner.
			return fmt.Errorf("host: key %d both migrated and replicated in one placement change", k)
		}
		set := make(map[int]bool)
		for _, r := range pm.dir.allReplicas(k) {
			set[r] = true
		}
		for _, r := range reps[k] {
			if r < 0 || r >= pm.fleet.Size() {
				return fmt.Errorf("host: replica of key %d on DPU %d out of range", k, r)
			}
			if r != owner {
				set[r] = true
			}
		}
		if len(set) == 0 {
			continue
		}
		targets[k] = sortedKeys(set)
		addSrc(k)
	}
	if len(srcOf) == 0 {
		pm.BatchSeconds = 0
		return nil
	}
	vals, err := pm.gatherRecords(perSrc)
	if err != nil {
		return err
	}

	putOn := make(map[int][]uint64)
	delOn := make(map[int][]uint64)
	moved := make(map[uint64]int)
	copied := make(map[uint64][]int)
	for _, k := range sortedKeys(srcOf) {
		if _, ok := vals[k]; !ok {
			continue // key vanished from its owner; nothing to move or copy
		}
		if dst, moving := moves[k]; moving && dst != srcOf[k] {
			putOn[dst] = append(putOn[dst], k)
			delOn[srcOf[k]] = append(delOn[srcOf[k]], k)
			moved[k] = dst
		}
		if set, ok := targets[k]; ok {
			for _, r := range set {
				putOn[r] = append(putOn[r], k)
			}
			copied[k] = set
		}
	}
	if len(moved) == 0 && len(copied) == 0 {
		pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
		return nil
	}
	if err := pm.mutateRound(putOn, vals, delOn); err != nil {
		return err
	}
	for k, dst := range moved {
		pm.dir.setOwner(k, dst)
	}
	for k, set := range copied {
		pm.dir.setReplicas(k, set)
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return nil
}

// gatherRecords runs one coalesced gather round over the per-source key
// lists and returns the values read host-side in the quiescent window.
// Keys missing from their source are absent from the result. This is
// the control-plane entry; the serving hot path calls gatherRound with
// its persistent scratch directly.
func (pm *PartitionedMap) gatherRecords(perSrc map[int][]uint64) (map[uint64]uint64, error) {
	lists := &pm.sc.ctlSrc
	lists.reset()
	for id, ks := range perSrc {
		for _, k := range ks {
			lists.add(id, k)
		}
	}
	vals := make(map[uint64]uint64)
	if err := pm.gatherRound(lists, vals); err != nil {
		return nil, err
	}
	return vals, nil
}

// gatherRound is the gather core: one transfer round charged by the
// worst per-source bucket, then host-side reads of every listed key —
// from the simulated DPU's map, or straight from the shadow shard of an
// unsimulated one. Values land in out; keys missing from their source
// are left absent.
func (pm *PartitionedMap) gatherRound(perSrc *dpuKeyLists, out map[uint64]uint64) error {
	srcIDs := perSrc.sortedIDs()
	maxRec := 0
	for _, id := range srcIDs {
		if n := len(perSrc.lists[id]); n > maxRec {
			maxRec = n
		}
	}
	if err := pm.fleet.Round(RoundSpec{
		Involved:    len(srcIDs),
		GatherBytes: 16 * maxRec,
	}); err != nil {
		return err
	}
	for _, id := range srcIDs {
		ks := perSrc.lists[id]
		if pm.isShadow(id) {
			sh := pm.shadow[id]
			for _, k := range ks {
				if v, ok := sh[k]; ok {
					out[k] = v
				}
			}
			continue
		}
		want := pm.sc.want
		clear(want)
		for _, k := range ks {
			want[k] = true
		}
		pm.maps[id].Walk(pm.fleet.DPU(id), func(k, v uint64) {
			if want[k] {
				out[k] = v
			}
		})
	}
	return nil
}

// mutateRound runs one scatter round that puts vals[k] for every key of
// putOn[id] and deletes every key of delOn[id] — the control-plane
// entry over mutateLists.
func (pm *PartitionedMap) mutateRound(putOn map[int][]uint64, vals map[uint64]uint64, delOn map[int][]uint64) error {
	sc := &pm.sc
	sc.ctlPut.reset()
	sc.ctlDel.reset()
	for id, ks := range putOn {
		for _, k := range ks {
			sc.ctlPut.add(id, k)
		}
	}
	for id, ks := range delOn {
		for _, k := range ks {
			sc.ctlDel.add(id, k)
		}
	}
	return pm.mutateLists(&sc.ctlPut, vals, &sc.ctlDel)
}

// mutateLists is the mutation core: one coalesced program per involved
// DPU, 16 bytes of scatter payload per put record and 8 per delete
// message, charged by the worst-case bucket. Simulated DPUs run the
// persistent single-tasklet mutate program; shadow shards apply the
// same puts and deletes host-side, with the worst shadow bucket charged
// analytically through the round's kernel floor.
func (pm *PartitionedMap) mutateLists(put *dpuKeyLists, vals map[uint64]uint64, del *dpuKeyLists) error {
	sc := &pm.sc
	inv := sc.mutInvolved[:0]
	inv = append(inv, put.touched...)
	for _, id := range del.touched {
		if len(put.lists[id]) == 0 {
			inv = append(inv, id)
		}
	}
	slices.Sort(inv)
	sc.mutInvolved = inv
	maxBytes, maxShadowOps := 0, 0
	for _, id := range inv {
		if b := 16*len(put.lists[id]) + 8*len(del.lists[id]); b > maxBytes {
			maxBytes = b
		}
		if pm.isShadow(id) {
			if ops := len(put.lists[id]) + len(del.lists[id]); ops > maxShadowOps {
				maxShadowOps = ops
			}
		}
	}
	pm.mutPut, pm.mutVals, pm.mutDel = put, vals, del
	spec := RoundSpec{
		Involved:     len(inv),
		ScatterBytes: maxBytes,
		IDs:          inv,
		Program:      pm.mutProgFn,
	}
	if pm.sampled {
		ids := sc.mutSimIDs[:0]
		for _, id := range inv {
			if pm.sim[id] {
				ids = append(ids, id)
			}
		}
		sc.mutSimIDs = ids
		spec.IDs = ids
		spec.AnalyticKernelSeconds = dpu.EstimateKernelSeconds(pm.opCycles, maxShadowOps, 0)
	}
	if err := pm.fleet.Round(spec); err != nil {
		return err
	}
	if pm.sampled {
		for _, id := range inv {
			if pm.sim[id] {
				continue
			}
			for _, k := range put.lists[id] {
				if _, err := pm.shadowPut(id, k, vals[k]); err != nil {
					return fmt.Errorf("host: placement mutation on dpu %d: %w", id, err)
				}
			}
			for _, k := range del.lists[id] {
				pm.shadowDelete(id, k)
			}
		}
	}
	return nil
}

// runMutProgram is the Round program of mutateLists on one simulated
// DPU: it relaunches the DPU's persistent single-tasklet mutate kernel.
func (pm *PartitionedMap) runMutProgram(id int, d *dpu.DPU) (float64, error) {
	e := pm.exec[id]
	d.ResetRun()
	e.mutErr = nil
	cycles, err := d.Run(e.muProg)
	if err != nil {
		return 0, err
	}
	if e.mutErr != nil {
		return 0, fmt.Errorf("host: placement mutation on dpu %d: %w", id, e.mutErr)
	}
	return d.Seconds(cycles), nil
}

// runMutate is the body of the persistent mutate kernel: one STM
// transaction applying this DPU's put and delete lists in order.
func (e *dpuExec) runMutate(t *dpu.Tasklet) {
	pm := e.pm
	m := pm.maps[e.id]
	puts, dels, vals := pm.mutPut.lists[e.id], pm.mutDel.lists[e.id], pm.mutVals
	tx := e.txFor(0, t)
	tx.Atomic(func(tx *core.Tx) {
		e.mutErr = nil // fresh attempt after an abort
		for _, k := range puts {
			if _, err := m.Put(tx, k, vals[k]); err != nil {
				e.mutErr = err
				return
			}
		}
		for _, k := range dels {
			m.Delete(tx, k)
		}
	})
}

// hostGet reads a key directly from an idle DPU (or its shadow shard).
func (pm *PartitionedMap) hostGet(id int, key uint64) (uint64, bool) {
	if pm.isShadow(id) {
		return pm.shadowGet(id, key)
	}
	var v uint64
	var ok bool
	pm.maps[id].Walk(pm.fleet.DPU(id), func(k, val uint64) {
		if k == key {
			v, ok = val, true
		}
	})
	return v, ok
}

// Get reads a key from the host (between batches), always from its
// authoritative owner. A split key's logical value is its home base
// plus every per-DPU delta shard — what a reconciliation would fold.
func (pm *PartitionedMap) Get(key uint64) (uint64, bool) {
	v, ok := pm.hostGet(pm.owner(key), key)
	if ok && pm.dir != nil && pm.dir.isSplit(key) {
		for d := 0; d < pm.fleet.Size(); d++ {
			if sv, sok := pm.hostGet(d, shardKeyFor(key, d)); sok {
				v += sv
			}
		}
	}
	return v, ok
}

// Len counts the distinct keys stored: the sizes of every partition
// (simulated map or shadow shard) minus the physical replica copies the
// directory tracks.
func (pm *PartitionedMap) Len() int {
	n := 0
	for i, m := range pm.maps {
		if pm.isShadow(i) {
			n += len(pm.shadow[i])
			continue
		}
		n += m.Len(pm.fleet.DPU(i))
	}
	if pm.dir != nil {
		n -= pm.dir.replicaCopies()
		// Every split key holds one delta shard per DPU — bookkeeping
		// records, not client keys.
		n -= pm.dir.splitCount() * pm.fleet.Size()
	}
	return n
}

// sortedKeys returns the map's keys in ascending order (deterministic
// iteration for fleets and writebacks).
func sortedKeys[K int | uint64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
