package host

import (
	"fmt"
	"sort"
)

// Placement routes keys to DPUs for a PartitionedMap. The data plane
// asks three questions: how many DPUs the policy routes over, which DPU
// holds the authoritative copy of a key, and which additional DPUs (if
// any) currently hold a read-serviceable replica. Writes always go to
// the owner; reads may be spread over the owner and its replicas.
//
// Implementations must be deterministic pure functions of their own
// state — routing is part of the modeled schedule, and the bench
// artifacts are byte-reproducible only if routing is too.
type Placement interface {
	// Size is the fleet size the placement routes over.
	Size() int
	// Owner is the authoritative home DPU of key.
	Owner(key uint64) int
	// Replicas lists the DPUs besides the owner that currently hold a
	// valid read replica of key (nil for unreplicated keys). The
	// returned slice is owned by the placement and must not be mutated.
	//
	// Replica maintenance (write-through, invalidation, refresh) is a
	// protocol between PartitionedMap and *Directory specifically;
	// other implementations must return nil here — a custom placement
	// customizes ownership routing only, never replication.
	Replicas(key uint64) []int
}

// hashOwner is the static key→DPU hash (splitmix64-style finalizer)
// every placement falls back to. It is the seed routing function, so
// changing it would invalidate every existing artifact.
func hashOwner(key uint64, n int) int {
	h := key
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return int(h % uint64(n))
}

// StaticHash is the default placement: pure `hash % N` routing, no
// overrides, no replicas. It is stateless, so a PartitionedMap built on
// it behaves byte-identically to the pre-placement-refactor store.
type StaticHash struct {
	n int
}

// NewStaticHash builds the static placement over n DPUs.
func NewStaticHash(n int) *StaticHash { return &StaticHash{n: n} }

// Size implements Placement.
func (s *StaticHash) Size() int { return s.n }

// Owner implements Placement.
func (s *StaticHash) Owner(key uint64) int { return hashOwner(key, s.n) }

// Replicas implements Placement: a static placement never replicates.
func (s *StaticHash) Replicas(key uint64) []int { return nil }

// dirEntry is the directory's per-key record. A key gets an entry only
// once the control plane overrides its home or replicates it; every
// other key routes through the static hash.
type dirEntry struct {
	// owner overrides the hash home when ≥ 0.
	owner int
	// replicas are DPUs holding a physical copy besides the owner,
	// sorted ascending.
	replicas []int
	// stale marks the replica copies out of date (a write hit the
	// owner since the last refresh): reads route to the owner until
	// the next batch refreshes the copies.
	stale bool
}

// DirectoryStats counts the directory's state and maintenance traffic.
type DirectoryStats struct {
	// Overrides is the number of keys homed away from their hash DPU;
	// ReplicatedKeys the number of keys with live replicas;
	// ReplicaCopies the total physical replica records.
	Overrides, ReplicatedKeys, ReplicaCopies int
	// Invalidations counts replica drops (deletes and write storms),
	// Refreshes the stale-copy refreshes ridden on later batches.
	Invalidations, Refreshes int
	// SplitKeys is the number of keys currently in the split state
	// (per-DPU delta shards absorbing commutative adds locally).
	SplitKeys int
}

// Directory is the adaptive placement: a host-side routing table over
// the static hash with per-key owner overrides (migration) and hot-key
// read replicas with invalidation-on-write (LazyPIM-style). The
// directory itself is pure host state — every data movement it implies
// (migrating a key, copying it to a replica, refreshing or deleting a
// stale copy) is executed and charged by the PartitionedMap as fleet
// rounds or shadow ops inside batches, never for free.
type Directory struct {
	n       int
	entries map[uint64]*dirEntry
	// splits marks keys in the split state: the home record still holds
	// the base value, and every DPU holds a per-DPU delta shard (a
	// physical map entry under shardKeyFor) absorbing commutative adds
	// locally. Split state is tracked apart from entries so the gc of a
	// key's owner/replica record never forgets that its shards exist.
	splits map[uint64]bool
	stats  DirectoryStats
}

// NewDirectory builds an empty directory over n DPUs. With no entries
// it routes exactly like NewStaticHash(n).
func NewDirectory(n int) *Directory {
	return &Directory{n: n, entries: make(map[uint64]*dirEntry), splits: make(map[uint64]bool)}
}

// Size implements Placement.
func (d *Directory) Size() int { return d.n }

// Owner implements Placement.
func (d *Directory) Owner(key uint64) int {
	if e := d.entries[key]; e != nil && e.owner >= 0 {
		return e.owner
	}
	return hashOwner(key, d.n)
}

// Replicas implements Placement: only fresh copies serve reads.
func (d *Directory) Replicas(key uint64) []int {
	if e := d.entries[key]; e != nil && !e.stale {
		return e.replicas
	}
	return nil
}

// Stats snapshots the directory counters.
func (d *Directory) Stats() DirectoryStats {
	s := d.stats
	s.Overrides, s.ReplicatedKeys, s.ReplicaCopies = 0, 0, 0
	for _, e := range d.entries {
		if e.owner >= 0 {
			s.Overrides++
		}
		if len(e.replicas) > 0 {
			s.ReplicatedKeys++
			s.ReplicaCopies += len(e.replicas)
		}
	}
	s.SplitKeys = len(d.splits)
	return s
}

// entry returns (creating if needed) the record for key.
func (d *Directory) entry(key uint64) *dirEntry {
	e := d.entries[key]
	if e == nil {
		e = &dirEntry{owner: -1}
		d.entries[key] = e
	}
	return e
}

// gc drops the entry when it no longer says anything.
func (d *Directory) gc(key uint64) {
	if e := d.entries[key]; e != nil && e.owner < 0 && len(e.replicas) == 0 {
		delete(d.entries, key)
	}
}

// setOwner records a migration: key now lives on dpu. A replica on the
// new home stops being a replica (its copy is the primary now), and a
// migration back to the hash home clears the override entirely so the
// directory does not accrete no-op entries.
func (d *Directory) setOwner(key uint64, dpu int) {
	e := d.entry(key)
	e.owner = dpu
	if dpu == hashOwner(key, d.n) {
		e.owner = -1
	}
	e.replicas = removeInt(e.replicas, dpu)
	d.gc(key)
}

// setReplicas records the full fresh replica set of key (the copies
// were just written with the owner's current value).
func (d *Directory) setReplicas(key uint64, dpus []int) {
	e := d.entry(key)
	e.replicas = append(e.replicas[:0], dpus...)
	sort.Ints(e.replicas)
	e.stale = false
	d.gc(key)
}

// allReplicas lists the DPUs physically holding a copy of key besides
// the owner, fresh or stale (the set invalidations must reach).
func (d *Directory) allReplicas(key uint64) []int {
	if e := d.entries[key]; e != nil {
		return e.replicas
	}
	return nil
}

// markStale flags key's copies out of date after a write to the owner.
func (d *Directory) markStale(key uint64) {
	if e := d.entries[key]; e != nil && len(e.replicas) > 0 && !e.stale {
		e.stale = true
		d.stats.Invalidations++
	}
}

// markFresh clears the stale flag after the copies were refreshed.
func (d *Directory) markFresh(key uint64) {
	if e := d.entries[key]; e != nil && e.stale {
		e.stale = false
		d.stats.Refreshes++
	}
}

// dropReplicas forgets key's replicas (the physical copies were, or are
// being, deleted by the caller).
func (d *Directory) dropReplicas(key uint64) {
	if e := d.entries[key]; e != nil && len(e.replicas) > 0 {
		e.replicas = nil
		e.stale = false
		d.stats.Invalidations++
		d.gc(key)
	}
}

// staleKeys lists the keys whose copies need a refresh, ascending.
func (d *Directory) staleKeys() []uint64 {
	var out []uint64
	for k, e := range d.entries {
		if e.stale && len(e.replicas) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// replicatedKeys lists the keys holding physical copies (fresh or
// stale), ascending — the candidate set for replica de-promotion.
func (d *Directory) replicatedKeys() []uint64 {
	var out []uint64
	for k, e := range d.entries {
		if len(e.replicas) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// setSplit marks key as split; clearSplit forgets it. The physical
// shard entries and their owner overrides are the PartitionedMap's to
// create and tear down (SplitKeys / UnsplitKeys) — the directory only
// remembers which client keys are in the state.
func (d *Directory) setSplit(key uint64)   { d.splits[key] = true }
func (d *Directory) clearSplit(key uint64) { delete(d.splits, key) }

// isSplit reports whether key is in the split state.
func (d *Directory) isSplit(key uint64) bool { return d.splits[key] }

// splitCount is the number of split keys — the data plane's cheap "any
// splits at all?" guard before per-op isSplit lookups.
func (d *Directory) splitCount() int { return len(d.splits) }

// splitKeys lists the split keys ascending (deterministic iteration for
// control-plane sweeps and reconciliation rounds).
func (d *Directory) splitKeys() []uint64 {
	out := make([]uint64, 0, len(d.splits))
	for k := range d.splits {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// replicaCopies is the total number of physical replica records.
func (d *Directory) replicaCopies() int {
	n := 0
	for _, e := range d.entries {
		n += len(e.replicas)
	}
	return n
}

// removeInt returns xs without v, preserving order.
func removeInt(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// validatePlacement checks a config's placement against its fleet size.
func validatePlacement(p Placement, dpus int) error {
	if p.Size() != dpus {
		return fmt.Errorf("host: placement routes over %d DPUs, fleet has %d", p.Size(), dpus)
	}
	return nil
}
