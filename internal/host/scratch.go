package host

import (
	"fmt"
	"slices"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/structures"
)

// This file holds the allocation-free machinery of the serving hot
// path: the per-batch scratch owned by PartitionedMap (maps are cleared
// with clear(), which keeps their buckets; slices are re-sliced to
// zero length), the persistent per-simulated-DPU kernel contexts, the
// host-side shadow shards of sampled-fleet mode, and the calibration
// microbench that seeds the analytic per-op cycle rate. A steady-state
// ApplyTxns batch reuses all of it and allocates almost nothing.

// dpuKeyLists buckets keys by DPU id with O(touched) reset: lists is
// fleet-sized and touched records which ids hold keys this batch.
type dpuKeyLists struct {
	lists   [][]uint64
	touched []int
}

func (p *dpuKeyLists) ensure(n int) {
	if len(p.lists) < n {
		p.lists = make([][]uint64, n)
	}
}

func (p *dpuKeyLists) reset() {
	for _, id := range p.touched {
		p.lists[id] = p.lists[id][:0]
	}
	p.touched = p.touched[:0]
}

func (p *dpuKeyLists) add(id int, k uint64) {
	if len(p.lists[id]) == 0 {
		p.touched = append(p.touched, id)
	}
	p.lists[id] = append(p.lists[id], k)
}

// sortedIDs sorts the touched ids in place and returns them.
func (p *dpuKeyLists) sortedIDs() []int {
	slices.Sort(p.touched)
	return p.touched
}

// keyLookup is the store view evalScratch.run reads through — an
// interface (with pointer- or map-shaped implementations) rather than a
// closure so the hot path does not allocate a closure per transaction.
type keyLookup interface {
	Lookup(k uint64) (uint64, bool)
}

// stateLookup reads a host-side key/value map: the coordinated
// snapshot in phase 2, or a shadow shard in sampled mode.
type stateLookup map[uint64]uint64

func (s stateLookup) Lookup(k uint64) (uint64, bool) { v, ok := s[k]; return v, ok }

// mapLookup reads the on-DPU hash map through an open STM transaction.
type mapLookup struct {
	m  *structures.Map
	tx *core.Tx
}

func (v *mapLookup) Lookup(k uint64) (uint64, bool) { return v.m.Get(v.tx, k) }

// kernelView is the store view of a kernel-side apply program: keys
// snapshotted by the prepare round resolve from the program's
// scattered operand table (paying the MRAM operand fetch), everything
// else reads the executing DPU's own partition through the open STM
// transaction. The operand table carries every off-home key of the
// program — present or not — so a remote miss can never fall through
// to a physically co-located record (e.g. a replica copy hosted by the
// same DPU).
type kernelView struct {
	local mapLookup
	rem   []dpu.ApplyOperand
	t     *dpu.Tasklet
}

func (v *kernelView) Lookup(k uint64) (uint64, bool) {
	for i := range v.rem {
		if v.rem[i].Key == k {
			v.t.FetchApplyOperand()
			return v.rem[i].Val, v.rem[i].Present
		}
	}
	return v.local.Lookup(k)
}

// remView is kernelView's host-side twin for shadow shards: the same
// operand-table-first resolution order against the shard map, with no
// cycle charges (the round charged the bucket analytically).
type remView struct {
	rem  []dpu.ApplyOperand
	next stateLookup
}

func (v *remView) Lookup(k uint64) (uint64, bool) {
	for i := range v.rem {
		if v.rem[i].Key == k {
			return v.rem[i].Val, v.rem[i].Present
		}
	}
	return v.next.Lookup(k)
}

// evalScratch is the reusable state of one transaction evaluation:
// write order, overlay and pre-txn images. One lives per (DPU, tasklet
// slot) for the parallel kernels plus one on the batch scratch for the
// host-applied phases.
type evalScratch struct {
	order  []uint64
	writes map[uint64]txnWrite
	prior  map[uint64]txnWrite
	view   mapLookup
	// kview and decoded serve the kernel-apply path: the remote-operand
	// view and the op scratch the compiled program decodes into.
	kview   kernelView
	decoded []Op
}

// decodeProg decodes a compiled apply program into the evaluator's op
// scratch. The kernel-apply path executes the decoded program rather
// than the host's original op slice, so what runs is exactly what the
// commit round's scatter carried; compile∘decode is the identity, which
// is what keeps kernel-applied outcomes bit-identical to host-applied
// ones.
func (es *evalScratch) decodeProg(prog []dpu.ApplyInstr) []Op {
	es.decoded = es.decoded[:0]
	for _, in := range prog {
		es.decoded = append(es.decoded, opForInstr(in))
	}
	return es.decoded
}

// run executes the ordered ops of one transaction against the lookup
// view with all-or-nothing semantics: reads see earlier writes of the
// same transaction through the overlay, guarded ops (OpAdd/OpSub) abort
// the transaction when their key is missing or the subtraction would
// underflow, and nothing is applied to the view itself. It returns the
// written keys in first-write order (valid until the next run; final
// and pre-txn images stay readable in writes and prior) and whether the
// transaction commits; per-op results are written into results, which
// the caller zeroes between attempts. Deletes of keys that were never
// present net out of the write set, so a writeback never pays for
// deleting nothing.
func (es *evalScratch) run(ops []Op, results []OpResult, lk keyLookup) ([]uint64, bool) {
	if es.writes == nil {
		es.writes = make(map[uint64]txnWrite, 8)
		es.prior = make(map[uint64]txnWrite, 8)
	}
	es.order = es.order[:0]
	clear(es.writes)
	clear(es.prior)
	for j := range ops {
		op := ops[j]
		res := &results[j]
		switch op.Kind {
		case OpGet:
			res.Value, res.OK = es.read(op.Key, lk)
		case OpPut:
			_, present := es.read(op.Key, lk)
			res.OK = !present
			es.write(op.Key, txnWrite{val: op.Value}, lk)
		case OpDelete:
			_, res.OK = es.read(op.Key, lk)
			es.write(op.Key, txnWrite{del: true}, lk)
		case OpAdd:
			v, present := es.read(op.Key, lk)
			if !present {
				return nil, false
			}
			res.Value, res.OK = v+op.Value, true
			es.write(op.Key, txnWrite{val: v + op.Value}, lk)
		case OpSub:
			v, present := es.read(op.Key, lk)
			if !present || v < op.Value {
				return nil, false
			}
			res.Value, res.OK = v-op.Value, true
			es.write(op.Key, txnWrite{val: v - op.Value}, lk)
		}
	}
	out := es.order[:0]
	for _, k := range es.order {
		if es.writes[k].del && es.prior[k].del {
			delete(es.writes, k)
			continue
		}
		out = append(out, k)
	}
	return out, true
}

func (es *evalScratch) read(k uint64, lk keyLookup) (uint64, bool) {
	if w, ok := es.writes[k]; ok {
		if w.del {
			return 0, false
		}
		return w.val, true
	}
	return lk.Lookup(k)
}

func (es *evalScratch) write(k uint64, w txnWrite, lk keyLookup) {
	if _, seen := es.writes[k]; !seen {
		es.order = append(es.order, k)
		v, present := lk.Lookup(k)
		es.prior[k] = txnWrite{val: v, del: !present}
	}
	es.writes[k] = w
}

// classInfo is classifyTxns' per-key analysis: the first transaction
// touching the key (read or write, in batch order), whether any
// transaction writes it, and whether a serializing party touches it.
type classInfo struct {
	firstT  int32
	written bool
	anySer  bool
}

// keyWrite is executeRound's per-key write analysis (pass 1), the
// struct-of-maps consolidation of the seed's puts/lastPut/dels/
// delsCommit/wrote/finalKnown maps.
type keyWrite struct {
	puts    int
	lastPut uint64
	// fk mirrors the seed's finalKnown three-state: unset (the key has
	// no statically classified writer yet), known (a guard-free put
	// whose batch-final value is lastPut), or unknown (a guarded or
	// read-modify-write writer).
	fk         uint8
	dels       bool
	delsCommit bool
	wrote      bool
}

const (
	fkUnset uint8 = iota
	fkTrue
	fkFalse
)

// batchScratch is PartitionedMap's reusable per-batch state. Everything
// here is logically dead between ApplyTxns calls; it persists only so
// the next batch does not reallocate it.
type batchScratch struct {
	metas       []txnMeta
	coordinated []int

	// classifyTxns.
	classK    map[uint64]classInfo
	parent    []int
	size      []int
	coordRoot []bool

	// Coordination phases 1/2/4.
	keySet       map[uint64]bool
	coordKeys    []uint64
	srcOf        map[uint64]int
	bucket       map[int]int
	replicated   []uint64
	perSrc       dpuKeyLists
	want         map[uint64]bool
	state        map[uint64]uint64
	startPresent map[uint64]bool
	dirty        map[uint64]bool
	dirtyKeys    []uint64
	coordWritten map[uint64]bool
	eval         evalScratch
	wbPut, wbDel dpuKeyLists

	// Kernel-side commit (the writeback round). rootHasWrite/rootOwner
	// classify each conflict group's write set (indexed by group root);
	// wbPerDPU buckets the round's apply and commit units; wbInstrs and
	// remOps are the compiled-program and operand slabs the units hold
	// capacity-clipped views into; wbInstrBuckets counts each DPU's
	// apply instructions for the analytic charge and its refresh.
	rootHasWrite   []bool
	rootOwner      []int
	wbPerDPU       [][]routedUnit
	wbTouched      []int
	wbSimIDs       []int
	wbInstrBuckets []int
	wbInstrs       []dpu.ApplyInstr
	remOps         []dpu.ApplyOperand
	shadowRem      remView

	// Execute round.
	perDPU       [][]routedUnit
	dpuTouched   []int
	simInvolved  []int
	keyW         map[uint64]keyWrite
	wroteKeys    []uint64
	putGroups    map[uint64]int
	dropAfter    []uint64
	freshAfter   []uint64
	staleAfter   []uint64
	throughPut   map[uint64]bool
	shadowFailed map[uint64]bool
	execBuckets  []int
	shadowOps    []Op
	curResults   []TxnResult
	routed       []int

	// Control-plane wrappers and mutateLists.
	ctlSrc, ctlPut, ctlDel dpuKeyLists
	mutInvolved            []int
	mutSimIDs              []int

	// Split-key execution (split.go). splitTouch flags how the batch
	// touches each split key; splitRecon/splitDrop list the keys forced
	// to reconcile (and, for drops, unsplit); splitSrc/splitVals are the
	// reconciliation gather scratch; splitTxns/splitOps hold the
	// rewritten batch — client transactions are never mutated in place.
	// The sub-rewrite machinery: splitTargets caches each transaction's
	// tentative shard target, splitPend tallies the batch's pending
	// rewritten subtractions per shard key, splitSubOK marks the keys
	// whose subs rewrite (covered or provisioned), splitProv the keys
	// the fold provisioned with escrow, and splitRewrites records every
	// rewritten op so committed ones update pm.splitTrack post-batch.
	splitTouch    map[uint64]uint8
	splitRecon    []uint64
	splitDrop     []uint64
	splitSrc      dpuKeyLists
	splitVals     map[uint64]uint64
	splitTxns     []Txn
	splitOps      []Op
	splitTargets  []int
	splitPend     map[uint64]uint64
	splitSubOK    map[uint64]bool
	splitProv     map[uint64]bool
	splitRewrites []splitRewriteRec
}

// splitRewriteRec records one rewritten split-key op: which transaction
// carried it, the shard key it landed on, and its signed delta. After
// the batch executes, committed records adjust the host's exact
// shard-balance view (pm.splitTrack); aborted transactions applied
// nothing and adjust nothing.
type splitRewriteRec struct {
	ti   int32
	sub  bool
	skey uint64
	val  uint64
}

func (sc *batchScratch) init(dpus int) {
	sc.classK = make(map[uint64]classInfo)
	sc.keySet = make(map[uint64]bool)
	sc.srcOf = make(map[uint64]int)
	sc.bucket = make(map[int]int)
	sc.want = make(map[uint64]bool)
	sc.state = make(map[uint64]uint64)
	sc.startPresent = make(map[uint64]bool)
	sc.dirty = make(map[uint64]bool)
	sc.coordWritten = make(map[uint64]bool)
	sc.keyW = make(map[uint64]keyWrite)
	sc.putGroups = make(map[uint64]int)
	sc.throughPut = make(map[uint64]bool)
	sc.shadowFailed = make(map[uint64]bool)
	sc.perDPU = make([][]routedUnit, dpus)
	sc.wbPerDPU = make([][]routedUnit, dpus)
	sc.execBuckets = make([]int, dpus)
	sc.wbInstrBuckets = make([]int, dpus)
	sc.routed = make([]int, dpus)
	sc.dpuTouched = make([]int, 0, dpus)
	sc.wbTouched = make([]int, 0, dpus)
	sc.wbSimIDs = make([]int, 0, dpus)
	sc.simInvolved = make([]int, 0, dpus)
	sc.mutInvolved = make([]int, 0, dpus)
	sc.mutSimIDs = make([]int, 0, dpus)
	sc.perSrc.ensure(dpus)
	sc.wbPut.ensure(dpus)
	sc.wbDel.ensure(dpus)
	sc.ctlSrc.ensure(dpus)
	sc.ctlPut.ensure(dpus)
	sc.ctlDel.ensure(dpus)
	sc.splitTouch = make(map[uint64]uint8)
	sc.splitVals = make(map[uint64]uint64)
	sc.splitSrc.ensure(dpus)
	sc.splitPend = make(map[uint64]uint64)
	sc.splitSubOK = make(map[uint64]bool)
	sc.splitProv = make(map[uint64]bool)
}

// addUnit buckets one routed unit onto a DPU, tracking touched ids for
// the O(touched) reset.
func (sc *batchScratch) addUnit(id int, u routedUnit) {
	if len(sc.perDPU[id]) == 0 {
		sc.dpuTouched = append(sc.dpuTouched, id)
	}
	sc.perDPU[id] = append(sc.perDPU[id], u)
}

// shadowOp appends one replica-maintenance op to the batch slab and
// returns a capacity-clipped one-element view of it. The slab may
// reallocate as it grows; earlier views keep pointing at the old
// backing, whose contents are immutable for the rest of the batch.
func (sc *batchScratch) shadowOp(op Op) []Op {
	sc.shadowOps = append(sc.shadowOps, op)
	n := len(sc.shadowOps)
	return sc.shadowOps[n-1 : n : n]
}

// addWbUnit buckets one writeback-round unit onto a DPU, tracking
// touched ids for the O(touched) reset.
func (sc *batchScratch) addWbUnit(id int, u routedUnit) {
	if len(sc.wbPerDPU[id]) == 0 {
		sc.wbTouched = append(sc.wbTouched, id)
	}
	sc.wbPerDPU[id] = append(sc.wbPerDPU[id], u)
}

// applyOpFor maps a host op kind to its apply-program opcode.
func applyOpFor(k OpKind) dpu.ApplyOp {
	switch k {
	case OpGet:
		return dpu.ApplyGet
	case OpPut:
		return dpu.ApplyPut
	case OpDelete:
		return dpu.ApplyDelete
	case OpAdd:
		return dpu.ApplyAdd
	default:
		return dpu.ApplySub
	}
}

// opForInstr decodes one apply instruction back into the host op the
// kernel evaluator executes.
func opForInstr(in dpu.ApplyInstr) Op {
	var k OpKind
	switch in.Op {
	case dpu.ApplyGet:
		k = OpGet
	case dpu.ApplyPut:
		k = OpPut
	case dpu.ApplyDelete:
		k = OpDelete
	case dpu.ApplyAdd:
		k = OpAdd
	default:
		k = OpSub
	}
	return Op{Kind: k, Key: in.Key, Value: in.Val}
}

// compileApply compiles one transaction's ordered ops into packed apply
// instructions on the batch slab and returns a capacity-clipped view —
// the same reallocation rule as shadowOp, so earlier programs stay
// valid as the slab grows.
func (sc *batchScratch) compileApply(ops []Op) []dpu.ApplyInstr {
	start := len(sc.wbInstrs)
	for _, op := range ops {
		sc.wbInstrs = append(sc.wbInstrs, dpu.ApplyInstr{Op: applyOpFor(op.Kind), Key: op.Key, Val: op.Value})
	}
	n := len(sc.wbInstrs)
	return sc.wbInstrs[start:n:n]
}

// remOperands builds one apply program's remote-operand table: one
// record per distinct off-home key the program touches, carrying the
// pre-batch value (and presence) the prepare round gathered. Every
// off-home key must appear — present or not — so the kernel view never
// falls through to the executing DPU's partition for a remote key.
func (sc *batchScratch) remOperands(ops []Op, home int, owner func(uint64) int, state map[uint64]uint64) []dpu.ApplyOperand {
	start := len(sc.remOps)
	for _, op := range ops {
		if owner(op.Key) == home {
			continue
		}
		dup := false
		for _, r := range sc.remOps[start:] {
			if r.Key == op.Key {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		v, ok := state[op.Key]
		sc.remOps = append(sc.remOps, dpu.ApplyOperand{Key: op.Key, Val: v, Present: ok})
	}
	n := len(sc.remOps)
	return sc.remOps[start:n:n]
}

// commitUnit builds one single-op writeback commit unit (a put or
// delete decided host-side by a multi-owner group's prepare phase),
// compiled like any other apply program.
func (sc *batchScratch) commitUnit(op Op) routedUnit {
	ops := sc.shadowOp(op)
	return routedUnit{ops: ops, ti: -1, group: -1, kind: unitCommit, prog: sc.compileApply(ops)}
}

// appendMapKeys appends the map's keys to dst and sorts the result
// ascending — sortedKeys without the per-call allocation.
func appendMapKeys[K int | uint64, V any](dst []K, m map[K]V) []K {
	for k := range m {
		dst = append(dst, k)
	}
	slices.Sort(dst)
	return dst
}

// ensureInts returns *s resized to n (reallocating only on growth);
// contents are unspecified and must be initialized by the caller.
func ensureInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

// ufFind is path-halving find over the parent slice.
func ufFind(parent []int, i int) int {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// dpuExec is the persistent kernel context of one simulated DPU: unit
// striping scratch, the tasklet program closures (built once — Round
// relaunches them every batch), per-slot reusable STM transaction
// descriptors and evaluation scratch, and the mutate-round program.
type dpuExec struct {
	pm *PartitionedMap
	id int

	lists        [][]int
	groupTasklet map[int]int
	progs        []func(*dpu.Tasklet)
	tx           []*core.Tx
	eval         []evalScratch

	// units is the unit list of the round in flight — the execute
	// round's client/shadow units or the writeback round's apply/commit
	// units; runUnitProgram sets it before relaunching the programs.
	units []routedUnit
	// wbErr records a commit unit's store-level failure (a partition
	// out of capacity); unlike a client transaction's per-txn error, a
	// failed commit of prepared writes fails the whole batch, matching
	// the historical host-side writeback.
	wbErr error
	// failed stages the keys whose shadow ops hit store-level failures
	// this round; executeRound merges the stages into the batch's
	// shadowFailed set after the round, replacing the old global mutex
	// (tasklets of one DPU serialize cooperatively, and each round's
	// DPUs own disjoint contexts, so the staging needs no lock).
	failed []uint64

	muProg []func(*dpu.Tasklet)
	mutErr error

	// lastSeconds is the modeled duration of this DPU's last execute
	// kernel, read by the sampled fleet's calibration refresh.
	lastSeconds float64
}

func newDPUExec(pm *PartitionedMap, id int) *dpuExec {
	e := &dpuExec{
		pm:           pm,
		id:           id,
		lists:        make([][]int, pm.tasklets),
		groupTasklet: make(map[int]int),
		progs:        make([]func(*dpu.Tasklet), pm.tasklets),
		tx:           make([]*core.Tx, pm.tasklets),
		eval:         make([]evalScratch, pm.tasklets),
	}
	for ti := range e.progs {
		ti := ti
		e.progs[ti] = func(t *dpu.Tasklet) { e.runTasklet(ti, t) }
	}
	e.muProg = []func(*dpu.Tasklet){func(t *dpu.Tasklet) { e.runMutate(t) }}
	return e
}

// txFor returns the slot's reusable transaction descriptor, rebuilding
// it only when the underlying pooled tasklet changed (a DPU Reset).
func (e *dpuExec) txFor(ti int, t *dpu.Tasklet) *core.Tx {
	tx := e.tx[ti]
	if tx == nil || tx.Tasklet() != t {
		tx = e.pm.tms[e.id].NewTx(t)
		e.tx[ti] = tx
	}
	return tx
}

// shadowGet/shadowPut/shadowDelete are the host-side shard operations
// of sampled-fleet mode. They mirror structures.Map semantics exactly,
// including the fixed node-pool capacity: an insert into a full shard
// fails like an exhausted pool, so a sampled run hits capacity errors
// on the same batches an exact run would.

func (pm *PartitionedMap) shadowGet(id int, k uint64) (uint64, bool) {
	v, ok := pm.shadow[id][k]
	return v, ok
}

func (pm *PartitionedMap) shadowPut(id int, k, v uint64) (bool, error) {
	sh := pm.shadow[id]
	if _, ok := sh[k]; ok {
		sh[k] = v
		return false, nil
	}
	if len(sh) >= pm.shadowCap {
		return false, fmt.Errorf("host: shadow partition %d pool exhausted (capacity %d)", id, pm.shadowCap)
	}
	sh[k] = v
	return true, nil
}

func (pm *PartitionedMap) shadowDelete(id int, k uint64) bool {
	sh := pm.shadow[id]
	if _, ok := sh[k]; !ok {
		return false
	}
	delete(sh, k)
	return true
}

// isShadow reports whether id's key state lives in a host-side shadow
// shard rather than a simulated DPU.
func (pm *PartitionedMap) isShadow(id int) bool { return pm.sampled && !pm.sim[id] }

// calibrateOpCycles measures the analytic per-operation kernel cycle
// rate on a scratch DPU built exactly like the fleet's: it loads a
// small working set, then runs cfg.Tasklets tasklets of mixed
// single-op STM transactions (the executeRound unit shape) and divides
// the kernel cycles by the operations executed. The sampled fleet
// seeds its charge from this rate and refreshes it from every round
// with simulated work, so the estimate tracks the live workload.
func calibrateOpCycles(cfg PartitionedMapConfig) (float64, error) {
	d := dpu.New(dpu.Config{MRAMSize: cfg.MRAMSize, Seed: 1})
	tm, err := core.New(d, cfg.STM)
	if err != nil {
		return 0, err
	}
	m, err := structures.NewMap(d, cfg.Buckets, cfg.Capacity)
	if err != nil {
		return 0, err
	}
	keys := 64
	if cfg.Capacity < keys {
		keys = cfg.Capacity
	}
	var loadErr error
	if _, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
		tx := tm.NewTx(t)
		tx.Atomic(func(tx *core.Tx) {
			loadErr = nil
			for k := 0; k < keys; k++ {
				if _, err := m.Put(tx, uint64(k), uint64(k)); err != nil {
					loadErr = err
					return
				}
			}
		})
	}}); err != nil {
		return 0, err
	}
	if loadErr != nil {
		return 0, loadErr
	}
	d.ResetRun()
	n := cfg.Tasklets
	const opsPer = 16
	progs := make([]func(*dpu.Tasklet), n)
	for ti := 0; ti < n; ti++ {
		ti := ti
		progs[ti] = func(t *dpu.Tasklet) {
			tx := tm.NewTx(t)
			for j := 0; j < opsPer; j++ {
				k := uint64((ti*opsPer + j) % keys)
				if j%2 == 0 {
					tx.Atomic(func(tx *core.Tx) { m.Get(tx, k) })
				} else {
					tx.Atomic(func(tx *core.Tx) { m.Put(tx, k, k) })
				}
			}
		}
	}
	cycles, err := d.Run(progs)
	if err != nil {
		return 0, err
	}
	return float64(cycles) / float64(n*opsPer), nil
}

// calibrateApplyCycles measures the analytic per-instruction cycle
// rate of the writeback apply kernels on a scratch DPU: each tasklet
// streams an apply-shaped instruction mix — the MRAM instruction fetch
// every compiled instruction pays, then the STM mutation it decodes
// into — and the kernel cycles divide by the instructions executed.
// The sampled fleet seeds its apply-phase charge from this rate and
// refreshes it from every writeback round with simulated work.
func calibrateApplyCycles(cfg PartitionedMapConfig) (float64, error) {
	d := dpu.New(dpu.Config{MRAMSize: cfg.MRAMSize, Seed: 2})
	tm, err := core.New(d, cfg.STM)
	if err != nil {
		return 0, err
	}
	m, err := structures.NewMap(d, cfg.Buckets, cfg.Capacity)
	if err != nil {
		return 0, err
	}
	keys := 64
	if cfg.Capacity < keys {
		keys = cfg.Capacity
	}
	var loadErr error
	if _, err := d.Run([]func(*dpu.Tasklet){func(t *dpu.Tasklet) {
		tx := tm.NewTx(t)
		tx.Atomic(func(tx *core.Tx) {
			loadErr = nil
			for k := 0; k < keys; k++ {
				if _, err := m.Put(tx, uint64(k), uint64(k)); err != nil {
					loadErr = err
					return
				}
			}
		})
	}}); err != nil {
		return 0, err
	}
	if loadErr != nil {
		return 0, loadErr
	}
	d.ResetRun()
	n := cfg.Tasklets
	const instrsPer = 16
	progs := make([]func(*dpu.Tasklet), n)
	for ti := 0; ti < n; ti++ {
		ti := ti
		progs[ti] = func(t *dpu.Tasklet) {
			tx := tm.NewTx(t)
			for j := 0; j < instrsPer; j++ {
				k := uint64((ti*instrsPer + j) % keys)
				t.FetchApplyInstr()
				switch j % 3 {
				case 0:
					tx.Atomic(func(tx *core.Tx) { m.Get(tx, k) })
				case 1:
					tx.Atomic(func(tx *core.Tx) { m.Put(tx, k, k) })
				default:
					tx.Atomic(func(tx *core.Tx) {
						if v, ok := m.Get(tx, k); ok {
							m.Put(tx, k, v+1)
						}
					})
				}
			}
		}
	}
	cycles, err := d.Run(progs)
	if err != nil {
		return 0, err
	}
	return float64(cycles) / float64(n*instrsPer), nil
}
