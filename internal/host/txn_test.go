package host

import (
	"testing"

	"pimstm/internal/core"
)

// TestTxnSingleDPUAtomicity: a transaction confined to one DPU runs as
// one native PIM-STM transaction inside the batch kernel — one fleet
// round, later ops see earlier writes, and a failing guard aborts the
// whole group.
func TestTxnSingleDPUAtomicity(t *testing.T) {
	pm := newPM(t, 4)
	keys := make([]uint64, 0, 3)
	for k := uint64(0); len(keys) < 3; k++ {
		if pm.owner(k) == 0 {
			keys = append(keys, k)
		}
	}
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: keys[0], Value: 100}}); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()

	// Read-modify-write across three same-DPU keys, with intra-txn
	// visibility: the Get sees the Put of the op before it.
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpSub, Key: keys[0], Value: 30},
		{Kind: OpPut, Key: keys[1], Value: 30},
		{Kind: OpGet, Key: keys[1]},
		{Kind: OpDelete, Key: keys[2]},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if !r.Committed || r.Err != nil {
		t.Fatalf("single-DPU txn: %+v", r)
	}
	if r.Results[0].Value != 70 || !r.Results[0].OK {
		t.Fatalf("sub result: %+v", r.Results[0])
	}
	if !r.Results[1].OK {
		t.Fatalf("put result: %+v", r.Results[1])
	}
	if r.Results[2].Value != 30 || !r.Results[2].OK {
		t.Fatalf("get must see the txn's own put: %+v", r.Results[2])
	}
	if r.Results[3].OK {
		t.Fatalf("delete of a missing key reported present: %+v", r.Results[3])
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 1 {
		t.Fatalf("single-DPU txn took %d rounds, want 1 (no CPU coordination)", got)
	}
	if pm.TxnsCoordinated != 0 {
		t.Fatalf("single-DPU txn counted as coordinated")
	}

	// A failing guard aborts the whole transaction: the put before it
	// must not apply.
	res, err = pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpPut, Key: keys[2], Value: 999},
		{Kind: OpSub, Key: keys[0], Value: 1000}, // underflow: 70 < 1000
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("underflowing txn committed: %+v", res[0])
	}
	if _, ok := pm.Get(keys[2]); ok {
		t.Fatal("aborted txn leaked a put")
	}
	if v, _ := pm.Get(keys[0]); v != 70 {
		t.Fatalf("aborted txn changed the guarded key: %d", v)
	}
}

// TestTxnCrossDPUCoordination: a transaction spanning DPUs rides the
// coalesced snapshot/writeback rounds — two rounds when it writes, one
// when read-only — and commits atomically across the partitions.
func TestTxnCrossDPUCoordination(t *testing.T) {
	pm := newPM(t, 4)
	a, b := uint64(1), uint64(2)
	for pm.owner(b) == pm.owner(a) {
		b++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: a, Value: 1000},
		{Kind: OpPut, Key: b, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()

	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpSub, Key: a, Value: 300},
		{Kind: OpAdd, Key: b, Value: 300},
		{Kind: OpGet, Key: b},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed {
		t.Fatalf("cross-DPU txn refused: %+v", res[0])
	}
	if res[0].Results[2].Value != 800 {
		t.Fatalf("get inside txn = %+v, want 800", res[0].Results[2])
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("cross-DPU write txn took %d rounds, want 2 (gather + writeback)", got)
	}
	if pm.TxnsCoordinated != 1 {
		t.Fatalf("coordinated count = %d", pm.TxnsCoordinated)
	}
	if va, _ := pm.Get(a); va != 700 {
		t.Fatalf("a = %d", va)
	}
	if vb, _ := pm.Get(b); vb != 800 {
		t.Fatalf("b = %d", vb)
	}

	// Read-only cross-DPU txn: one gather round, nothing written back.
	before = pm.Stats()
	res, err = pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpGet, Key: a},
		{Kind: OpGet, Key: b},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed || res[0].Results[0].Value != 700 || res[0].Results[1].Value != 800 {
		t.Fatalf("read-only cross txn: %+v", res[0])
	}
	if got := pm.Stats().Rounds - before.Rounds; got != 1 {
		t.Fatalf("read-only cross txn took %d rounds, want 1 (gather only)", got)
	}
}

// TestTxnConflictSerialization: transactions intersecting on a written
// key serialize deterministically in batch order — the earlier one's
// effects are visible to the later one, whichever DPUs are involved.
func TestTxnConflictSerialization(t *testing.T) {
	pm := newPM(t, 4)
	k := uint64(3)
	other := uint64(4)
	for pm.owner(other) == pm.owner(k) {
		other++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: k, Value: 0},
		{Kind: OpPut, Key: other, Value: 0},
	}); err != nil {
		t.Fatal(err)
	}

	// Put before Sub in batch order: the Sub sees 10 and commits.
	res, err := pm.ApplyTxns([]Txn{
		{Ops: []Op{{Kind: OpPut, Key: k, Value: 10}}},
		{Ops: []Op{{Kind: OpSub, Key: k, Value: 10}, {Kind: OpAdd, Key: other, Value: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed || !res[1].Committed {
		t.Fatalf("batch-order serialization broke: %+v / %+v", res[0], res[1])
	}
	if v, _ := pm.Get(k); v != 0 {
		t.Fatalf("k = %d after put+sub, want 0", v)
	}
	if v, _ := pm.Get(other); v != 10 {
		t.Fatalf("other = %d, want 10", v)
	}

	// Sub before Put: the Sub sees 0, aborts; the Put still applies.
	res, err = pm.ApplyTxns([]Txn{
		{Ops: []Op{{Kind: OpSub, Key: k, Value: 10}, {Kind: OpAdd, Key: other, Value: 10}}},
		{Ops: []Op{{Kind: OpPut, Key: k, Value: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("sub of an empty balance committed: %+v", res[0])
	}
	if !res[1].Committed {
		t.Fatalf("independent put dragged down: %+v", res[1])
	}
	if v, _ := pm.Get(k); v != 10 {
		t.Fatalf("k = %d, want 10", v)
	}
	if v, _ := pm.Get(other); v != 10 {
		t.Fatalf("other = %d, want 10 (aborted txn must not credit)", v)
	}
}

// TestTransferBetweenCostUnchanged is the wrapper-parity regression:
// TransferBetween is now a 2-key transaction, but its semantics and
// modeled cost must match the historical host-mediated path exactly —
// two fleet rounds, symmetric 16-byte records, worst-case bucket.
func TestTransferBetweenCostUnchanged(t *testing.T) {
	pm := newPM(t, 4)
	a, b := uint64(1), uint64(2)
	for pm.owner(b) == pm.owner(a) {
		b++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: a, Value: 1000},
		{Kind: OpPut, Key: b, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()
	ok, err := pm.TransferBetween(a, b, 300)
	if err != nil || !ok {
		t.Fatalf("transfer: %v %v", ok, err)
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("transfer took %d rounds, want 2", got)
	}
	// Historical model: one gather and one writeback of one 16-byte
	// record per involved DPU (the two keys live on distinct DPUs).
	want := 2 * TransferSeconds(2, 16)
	if got := after.TransferSeconds - before.TransferSeconds; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("transfer charged %.9fs, historical model is %.9fs", got, want)
	}

	// Same-DPU pair: both records ride one DPU's link, gather and
	// writeback each carry the 2-record bucket.
	c := a + 1
	for pm.owner(c) != pm.owner(a) || c == a {
		c++
	}
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: c, Value: 100}}); err != nil {
		t.Fatal(err)
	}
	before = pm.Stats()
	if ok, err := pm.TransferBetween(a, c, 50); err != nil || !ok {
		t.Fatalf("same-DPU transfer: %v %v", ok, err)
	}
	after = pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("same-DPU transfer took %d rounds, want 2", got)
	}
	want = 2 * TransferSeconds(1, 16*2)
	if got := after.TransferSeconds - before.TransferSeconds; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("same-DPU transfer charged %.9fs, historical model is %.9fs", got, want)
	}
}

// TestTxnReplicaAwareGather is the satellite cost regression: when a
// cross-DPU transaction reads keys whose fresh replicas sit on an
// already-involved DPU, the snapshot gather balances its buckets over
// the copies and models strictly less transfer time than the
// owner-only gather — with identical results.
func TestTxnReplicaAwareGather(t *testing.T) {
	run := func(replicate bool) (FleetStats, FleetStats, []TxnResult) {
		pm, _ := newDirPM(t, 4)
		hot := keysOwnedBy(pm.Placement(), 0, 3)
		cold := keysOwnedBy(pm.Placement(), 1, 1)[0]
		var load []Op
		for i, k := range hot {
			load = append(load, Op{Kind: OpPut, Key: k, Value: uint64(100 + i)})
		}
		load = append(load, Op{Kind: OpPut, Key: cold, Value: 200})
		if _, err := pm.ApplyBatch(load); err != nil {
			t.Fatal(err)
		}
		if replicate {
			// Two of the three DPU-0 keys get fresh copies on DPU 1 —
			// the DPU the transaction involves anyway.
			if err := pm.ReplicateKeys(map[uint64][]int{hot[1]: {1}, hot[2]: {1}}); err != nil {
				t.Fatal(err)
			}
		}
		before := pm.Stats()
		res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
			{Kind: OpGet, Key: hot[0]},
			{Kind: OpGet, Key: hot[1]},
			{Kind: OpGet, Key: hot[2]},
			{Kind: OpGet, Key: cold},
		}}})
		if err != nil {
			t.Fatal(err)
		}
		return before, pm.Stats(), res
	}

	beforeRep, afterRep, resRep := run(true)
	beforeOwn, afterOwn, resOwn := run(false)
	for i := range resRep[0].Results {
		if resRep[0].Results[i] != resOwn[0].Results[i] {
			t.Fatalf("replica-aware gather changed result %d: %+v vs %+v",
				i, resRep[0].Results[i], resOwn[0].Results[i])
		}
	}
	gotRep := afterRep.TransferSeconds - beforeRep.TransferSeconds
	gotOwn := afterOwn.TransferSeconds - beforeOwn.TransferSeconds
	// Owner-only: buckets {dpu0: 3, dpu1: 1} → worst case 3 records.
	// Replica-aware: one replicated read moves to DPU 1 → {2, 2}.
	wantOwn := TransferSeconds(2, 16*3)
	wantRep := TransferSeconds(2, 16*2)
	if gotOwn < wantOwn-1e-12 || gotOwn > wantOwn+1e-12 {
		t.Fatalf("owner-only gather charged %.9fs, want %.9fs", gotOwn, wantOwn)
	}
	if gotRep < wantRep-1e-12 || gotRep > wantRep+1e-12 {
		t.Fatalf("replica-aware gather charged %.9fs, want %.9fs", gotRep, wantRep)
	}
	if gotRep >= gotOwn {
		t.Fatalf("fresh replicas must shrink the gather: %.9fs vs %.9fs", gotRep, gotOwn)
	}
}

// TestTxnStaleReplicaPinsGather: only fresh copies may serve a
// coordinated read — after a write stales the copies, the gather goes
// back to the owner.
func TestTxnStaleReplicaPinsGather(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	hot := keysOwnedBy(dir, 0, 2)
	cold := keysOwnedBy(dir, 1, 1)[0]
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: hot[0], Value: 1},
		{Kind: OpPut, Key: hot[1], Value: 2},
		{Kind: OpPut, Key: cold, Value: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReplicateKeys(map[uint64][]int{hot[1]: {1}}); err != nil {
		t.Fatal(err)
	}
	// A transfer writes hot[1], staling its copy on DPU 1.
	if ok, err := pm.TransferBetween(hot[0], hot[1], 1); err != nil || !ok {
		t.Fatalf("transfer: %v %v", ok, err)
	}
	if dir.Replicas(hot[1]) != nil {
		t.Fatal("stale copy still serving")
	}
	// The coordinated read of hot[1] must come from the owner (value 3,
	// not the stale copy's 2).
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpGet, Key: hot[1]},
		{Kind: OpGet, Key: cold},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Results[0].Value != 3 {
		t.Fatalf("coordinated read served a stale copy: %+v", res[0].Results[0])
	}
}

// TestTxnFlushFailureRollsBack: a store-level failure mid-flush (the
// partition out of capacity) must not tear the transaction — the
// already-flushed writes are rolled back to their pre-txn images, so
// Committed=false really means nothing applied.
func TestTxnFlushFailureRollsBack(t *testing.T) {
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 2, Buckets: 64, Capacity: 4, Tasklets: 2,
		STM: core.Config{Algorithm: core.NOrec},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill DPU 0's node pool completely.
	var keys []uint64
	for k := uint64(0); len(keys) < 4; k++ {
		if pm.owner(k) == 0 {
			keys = append(keys, k)
		}
	}
	var load []Op
	for i, k := range keys {
		load = append(load, Op{Kind: OpPut, Key: k, Value: uint64(100 + i)})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	newKey := keys[3] + 1
	for pm.owner(newKey) != 0 {
		newKey++
	}
	// The first put updates in place and flushes fine; the second needs
	// a node the pool cannot provide.
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpPut, Key: keys[0], Value: 999},
		{Kind: OpPut, Key: newKey, Value: 1},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed || res[0].Err == nil {
		t.Fatalf("capacity failure must abort the txn: %+v", res[0])
	}
	if v, ok := pm.Get(keys[0]); !ok || v != 100 {
		t.Fatalf("torn transaction: key %d = %d,%v, want the pre-txn 100", keys[0], v, ok)
	}
	if _, ok := pm.Get(newKey); ok {
		t.Fatal("failed put left the new key behind")
	}
}

// TestTxnFlushFailureStalesWriteThrough: when a transaction that wrote
// through to replica copies fails at flush (owner rolled back, copies
// already carry the new value), the copies must go stale — reads never
// see the value that never committed.
func TestTxnFlushFailureStalesWriteThrough(t *testing.T) {
	dir := NewDirectory(4)
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 4, Tasklets: 2,
		STM: core.Config{Algorithm: core.NOrec}, Placement: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOwnedBy(dir, 0, 4)
	var load []Op
	for i, k := range keys {
		load = append(load, Op{Kind: OpPut, Key: k, Value: uint64(100 + i)})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReplicateKeys(map[uint64][]int{keys[0]: {1}}); err != nil {
		t.Fatal(err)
	}
	newKey := keys[3] + 1
	for pm.owner(newKey) != 0 {
		newKey++
	}
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpPut, Key: keys[0], Value: 999},
		{Kind: OpPut, Key: newKey, Value: 1},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("capacity failure committed: %+v", res[0])
	}
	// Every read — this batch and the next — must see the pre-txn
	// value; a fresh copy carrying 999 would leak through round-robin.
	for round := 0; round < 2; round++ {
		got, err := pm.ApplyBatch([]Op{
			{Kind: OpGet, Key: keys[0]}, {Kind: OpGet, Key: keys[0]}, {Kind: OpGet, Key: keys[0]},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if !r.OK || r.Value != 100 {
				t.Fatalf("round %d get %d = %+v, want the committed 100", round, i, r)
			}
		}
	}
}

// TestTxnAbortedDeleteKeepsReplicas: a delete inside a transaction that
// aborts on a guard must not invalidate the key's replica copies — the
// copies go stale (conservative) and are refreshed, not destroyed.
func TestTxnAbortedDeleteKeepsReplicas(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	keys := keysOwnedBy(dir, 0, 2)
	hot, missing := keys[0], keys[1]
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: hot, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReplicateKeys(map[uint64][]int{hot: {1, 2}}); err != nil {
		t.Fatal(err)
	}
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpDelete, Key: hot},
		{Kind: OpSub, Key: missing, Value: 1}, // guard fails: txn aborts
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed {
		t.Fatalf("aborted delete committed: %+v", res[0])
	}
	if v, ok := pm.Get(hot); !ok || v != 42 {
		t.Fatalf("aborted delete removed the key: %d,%v", v, ok)
	}
	if got := dir.allReplicas(hot); len(got) != 2 {
		t.Fatalf("aborted delete destroyed the replicas: %v", got)
	}
	// A refresh batch restores the copies to fresh service.
	if _, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: hot}}); err != nil {
		t.Fatal(err)
	}
	if got := dir.Replicas(hot); len(got) != 2 {
		t.Fatalf("copies not refreshed after the aborted delete: %v", got)
	}
	got, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: hot}, {Kind: OpGet, Key: hot}, {Kind: OpGet, Key: hot}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if !r.OK || r.Value != 42 {
			t.Fatalf("replicated get %d = %+v", i, r)
		}
	}
}

// TestApplyTxnsDeterministic: mixed single-DPU and cross-DPU batches
// are a pure function of their input.
func TestApplyTxnsDeterministic(t *testing.T) {
	run := func() (int, float64) {
		pm := newPM(t, 3)
		var load []Op
		for k := uint64(0); k < 40; k++ {
			load = append(load, Op{Kind: OpPut, Key: k, Value: 100})
		}
		if _, err := pm.ApplyBatch(load); err != nil {
			t.Fatal(err)
		}
		txns := []Txn{
			{Ops: []Op{{Kind: OpGet, Key: 1}}},
			{Ops: []Op{{Kind: OpSub, Key: 2, Value: 5}, {Kind: OpAdd, Key: 30, Value: 5}}},
			{Ops: []Op{{Kind: OpPut, Key: 3, Value: 7}}},
			{Ops: []Op{{Kind: OpDelete, Key: 4}, {Kind: OpPut, Key: 5, Value: 9}}},
		}
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
		return pm.Len(), pm.BatchSeconds
	}
	l1, s1 := run()
	l2, s2 := run()
	if l1 != l2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%g) vs (%d,%g)", l1, s1, l2, s2)
	}
}

// TestApplyTxnsEmpty: an empty batch and empty transactions are free
// and trivially committed.
func TestApplyTxnsEmpty(t *testing.T) {
	pm := newPM(t, 2)
	res, err := pm.ApplyTxns(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	if pm.BatchSeconds != 0 {
		t.Fatal("empty batch charged time")
	}
	res, err = pm.ApplyTxns([]Txn{{}})
	if err != nil || len(res) != 1 {
		t.Fatalf("empty txn: %v %v", res, err)
	}
}

// TestKernelCommitProtocol pins the kernel-side commit's observable
// protocol: a conflict group whose write set lives on one DPU takes the
// kernel-apply fast path (gather + commit round, apply cycles charged
// on-DPU), guard aborts roll back inside the kernel, a group writing
// across owners pays the same two rounds through the prepare/commit
// protocol, and the coordinateAll compatibility mode still applies
// host-side for free (its ApplySeconds stays zero — the honesty caveat
// the phase split exists to expose).
func TestKernelCommitProtocol(t *testing.T) {
	pm := newPM(t, 4)
	// w and w2 share an owner (the write set's home); r lives elsewhere
	// (the cross-DPU read that forces coordination).
	w := uint64(0)
	home := pm.owner(w)
	w2, r := w, w
	for w2 == w || pm.owner(w2) != home {
		w2++
	}
	for pm.owner(r) == home {
		r++
	}
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: w, Value: 100},
		{Kind: OpPut, Key: w2, Value: 200},
		{Kind: OpPut, Key: r, Value: 7},
	}); err != nil {
		t.Fatal(err)
	}

	// Single-owner write set + remote read: kernel-applied, two rounds.
	before := pm.Stats()
	res, err := pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpAdd, Key: w, Value: 1},
		{Kind: OpPut, Key: w2, Value: 201},
		{Kind: OpGet, Key: r},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed || res[0].Results[0].Value != 101 || res[0].Results[2].Value != 7 {
		t.Fatalf("kernel-applied txn: %+v", res[0])
	}
	if got := pm.Stats().Rounds - before.Rounds; got != 2 {
		t.Fatalf("kernel-applied txn took %d rounds, want 2 (gather + commit)", got)
	}
	ph := pm.BatchPhases
	if ph.GatherSeconds <= 0 || ph.ApplySeconds <= 0 || ph.WritebackSeconds <= 0 {
		t.Fatalf("kernel-applied phase split degenerate: %+v", ph)
	}
	if va, _ := pm.Get(w); va != 101 {
		t.Fatalf("w = %d", va)
	}
	if vb, _ := pm.Get(w2); vb != 201 {
		t.Fatalf("w2 = %d", vb)
	}

	// A failing guard aborts inside the kernel: nothing applies.
	res, err = pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpSub, Key: w, Value: 1000}, // underflows
		{Kind: OpPut, Key: w2, Value: 999},
		{Kind: OpGet, Key: r},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Committed || res[0].Err != nil {
		t.Fatalf("underflowing kernel-applied txn: %+v", res[0])
	}
	if va, _ := pm.Get(w); va != 101 {
		t.Fatalf("aborted txn mutated w: %d", va)
	}
	if vb, _ := pm.Get(w2); vb != 201 {
		t.Fatalf("aborted txn mutated w2: %d", vb)
	}

	// Writes spanning owners: the two-round multi-owner prepare/commit,
	// also charging apply cycles (the commit units run in-kernel).
	before = pm.Stats()
	res, err = pm.ApplyTxns([]Txn{{Ops: []Op{
		{Kind: OpSub, Key: w, Value: 10},
		{Kind: OpAdd, Key: r, Value: 10},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Committed {
		t.Fatalf("multi-owner txn: %+v", res[0])
	}
	if got := pm.Stats().Rounds - before.Rounds; got != 2 {
		t.Fatalf("multi-owner txn took %d rounds, want 2 (prepare + commit)", got)
	}
	ph = pm.BatchPhases
	if ph.GatherSeconds <= 0 || ph.ApplySeconds <= 0 || ph.WritebackSeconds <= 0 {
		t.Fatalf("multi-owner phase split degenerate: %+v", ph)
	}
	if va, _ := pm.Get(w); va != 91 {
		t.Fatalf("w = %d", va)
	}
	if vr, _ := pm.Get(r); vr != 17 {
		t.Fatalf("r = %d", vr)
	}

	// coordinateAll (ApplyTransfers) keeps the historical host-applied
	// writeback: gather and writeback are paid, apply cycles are not.
	if ok, err := pm.TransferBetween(w, r, 5); err != nil || !ok {
		t.Fatalf("transfer: %v %v", ok, err)
	}
	ph = pm.BatchPhases
	if ph.GatherSeconds <= 0 || ph.WritebackSeconds <= 0 {
		t.Fatalf("transfer phase split degenerate: %+v", ph)
	}
	if ph.ApplySeconds != 0 {
		t.Fatalf("coordinateAll charged apply cycles %g, want 0 (host-applied)", ph.ApplySeconds)
	}
}
