package host

import (
	"fmt"
	"testing"

	"pimstm/internal/core"
)

// newSplitPM builds a Directory-backed map with the whole keyspace
// preloaded (value = key), the shape every split test starts from: a
// split key must be present at its home, and guarded adds must hit.
func newSplitPM(t *testing.T, dpus, keyspace, sample int) (*PartitionedMap, *Directory, map[uint64]uint64) {
	t.Helper()
	dir := NewDirectory(dpus)
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: dpus, Buckets: 64, Capacity: 1024, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Placement: dir,
		Sample: sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[uint64]uint64, keyspace)
	load := make([]Op, keyspace)
	for k := 0; k < keyspace; k++ {
		load[k] = Op{Kind: OpPut, Key: uint64(k), Value: uint64(k)}
		ref[uint64(k)] = uint64(k)
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	return pm, dir, ref
}

// shardSum reads every delta shard of key k host-side (no paid rounds).
func shardSum(pm *PartitionedMap, k uint64) uint64 {
	var sum uint64
	for d := 0; d < pm.fleet.Size(); d++ {
		if v, ok := pm.hostGet(d, shardKeyFor(k, d)); ok {
			sum += v
		}
	}
	return sum
}

// shardCount counts the physical shard records of key k.
func shardCount(pm *PartitionedMap, k uint64) int {
	n := 0
	for d := 0; d < pm.fleet.Size(); d++ {
		if _, ok := pm.hostGet(d, shardKeyFor(k, d)); ok {
			n++
		}
	}
	return n
}

func TestSplitKeysLifecycle(t *testing.T) {
	// A static placement has nowhere to record the split state.
	static := newPM(t, 4)
	if err := static.SplitKeys([]uint64{1}); err == nil {
		t.Fatal("static placement accepted a split")
	}
	if err := static.UnsplitKeys([]uint64{1}); err == nil {
		t.Fatal("static placement accepted an unsplit")
	}

	// Splitting over one DPU is meaningless — there is nothing to shard.
	one, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 1, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Placement: NewDirectory(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := one.SplitKeys([]uint64{1}); err == nil {
		t.Fatal("single-DPU fleet accepted a split")
	}

	pm, dir, _ := newSplitPM(t, 4, 16, 0)
	// Keys at or above 2^40 cannot pack a shard id.
	if err := pm.SplitKeys([]uint64{splitKeyLimit}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	// A replicated key must drop its copies first (the deterministic
	// replicate→split transition the Rebalancer implements).
	if err := pm.ReplicateKeys(map[uint64][]int{2: {(pm.owner(2) + 1) % 4}}); err != nil {
		t.Fatal(err)
	}
	if len(dir.allReplicas(2)) == 0 {
		t.Fatal("replica promotion did not land")
	}
	if err := pm.SplitKeys([]uint64{2}); err == nil {
		t.Fatal("replicated key accepted for splitting")
	}
	// Missing keys are skipped, not manufactured.
	if err := pm.SplitKeys([]uint64{400}); err != nil {
		t.Fatal(err)
	}
	if dir.isSplit(400) {
		t.Fatal("absent key entered the split state")
	}

	lenBefore := pm.Len()
	if err := pm.SplitKeys([]uint64{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if pm.BatchSeconds <= 0 {
		t.Fatal("splitting was modeled as free")
	}
	if ds := dir.Stats(); ds.SplitKeys != 2 {
		t.Fatalf("split-key count = %d, want 2", ds.SplitKeys)
	}
	if shardCount(pm, 0) != 4 || shardCount(pm, 1) != 4 {
		t.Fatalf("shards not seeded on every DPU: %d, %d", shardCount(pm, 0), shardCount(pm, 1))
	}
	if pm.Len() != lenBefore {
		t.Fatalf("Len counts shard bookkeeping: %d, want %d", pm.Len(), lenBefore)
	}
	// Re-splitting a split key is a free no-op.
	if err := pm.SplitKeys([]uint64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if pm.BatchSeconds != 0 {
		t.Fatal("idempotent re-split charged a round")
	}

	// Pure adds absorb into local shards: the home value stays put, the
	// logical Get sums home + shards.
	var adds []Txn
	var total uint64
	for i := 0; i < 12; i++ {
		v := uint64(1 + i%3)
		adds = append(adds, Txn{Ops: []Op{{Kind: OpAdd, Key: uint64(i % 2), Value: v}}})
		if i%2 == 0 {
			total += v
		}
	}
	res, err := pm.ApplyTxns(adds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if !res[i].Committed || res[i].Err != nil {
			t.Fatalf("add %d did not commit: %+v", i, res[i])
		}
	}
	if v, ok := pm.Get(0); !ok || v != total {
		t.Fatalf("Get(0) = %d,%v want %d", v, ok, total)
	}
	if shardSum(pm, 0) != total {
		t.Fatalf("shards of key 0 hold %d, want %d", shardSum(pm, 0), total)
	}
	if home, _ := pm.hostGet(pm.owner(0), 0); home != 0 {
		t.Fatalf("home value moved without a reconciliation: %d", home)
	}

	// A read forces the paid epoch reconciliation: deltas fold into the
	// home value, shards zero, the key stays split.
	recBefore := pm.SplitReconciles
	got, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].OK || got[0].Value != total {
		t.Fatalf("reconciled read = %+v, want %d", got[0], total)
	}
	if pm.SplitReconciles != recBefore+1 {
		t.Fatalf("SplitReconciles = %d, want %d", pm.SplitReconciles, recBefore+1)
	}
	if home, _ := pm.hostGet(pm.owner(0), 0); home != total {
		t.Fatalf("home value after the merge = %d, want %d", home, total)
	}
	if shardSum(pm, 0) != 0 {
		t.Fatalf("shards not zeroed after the merge: %d", shardSum(pm, 0))
	}
	if !dir.isSplit(0) {
		t.Fatal("reconciliation tore down the split state")
	}

	// A delete reconciles and unsplits; the key can then be recreated as
	// an ordinary record.
	if res, err := pm.ApplyTxns([]Txn{{Ops: []Op{{Kind: OpDelete, Key: 1}}}}); err != nil || !res[0].Committed {
		t.Fatalf("delete of a split key: %+v %v", res, err)
	}
	if dir.isSplit(1) || shardCount(pm, 1) != 0 {
		t.Fatalf("delete left split residue: split=%v shards=%d", dir.isSplit(1), shardCount(pm, 1))
	}
	if _, ok := pm.Get(1); ok {
		t.Fatal("deleted split key still present")
	}
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: 1, Value: 77}}); err != nil {
		t.Fatal(err)
	}
	if v, ok := pm.Get(1); !ok || v != 77 {
		t.Fatalf("recreated key = %d,%v", v, ok)
	}

	// UnsplitKeys folds and tears down; unknown keys are skipped free.
	if err := pm.UnsplitKeys([]uint64{0, 1, 9}); err != nil {
		t.Fatal(err)
	}
	if dir.splitCount() != 0 || shardCount(pm, 0) != 0 {
		t.Fatalf("unsplit left residue: %d keys, %d shards", dir.splitCount(), shardCount(pm, 0))
	}
	if v, ok := pm.Get(0); !ok || v != total {
		t.Fatalf("Get(0) after unsplit = %d,%v want %d", v, ok, total)
	}
	if pm.Len() != lenBefore {
		t.Fatalf("Len after the full cycle = %d, want %d", pm.Len(), lenBefore)
	}
	if err := pm.UnsplitKeys([]uint64{0}); err != nil {
		t.Fatal(err)
	}
	if pm.BatchSeconds != 0 {
		t.Fatal("unsplitting nothing charged a round")
	}
}

// genSplitStream is the adversarial trace for the split differential: a
// heavy commutative-add stream over 4 hot counters, laced with the
// accesses that force reconciliations (reads, puts, guarded subs),
// delete/recreate churn that tears the split state down mid-stream, and
// cold background traffic. Multi-op transactions ride adds alongside
// cold work so the shard-target selection (the DPU the transaction
// already touches) is exercised too.
func genSplitStream(seed uint64, count int, keyspace uint64) []Txn {
	rng := Rand64(seed*0x9E3779B97F4A7C15 + 0xA24BAED4963EE407)
	hot := func() uint64 { return rng.Next() % 4 }
	cold := func() uint64 { return 4 + rng.Next()%(keyspace-4) }
	txns := make([]Txn, count)
	for i := range txns {
		switch draw := rng.Next() % 20; {
		case draw < 10: // pure hot-counter increment — the rewrite target
			txns[i] = Txn{Ops: []Op{{Kind: OpAdd, Key: hot(), Value: 1 + rng.Next()%5}}}
		case draw < 13: // an add riding along confined cold work
			txns[i] = Txn{Ops: []Op{
				{Kind: OpPut, Key: cold(), Value: rng.Next() % 1000},
				{Kind: OpAdd, Key: hot(), Value: 1 + rng.Next()%5},
			}}
		case draw < 15: // non-commutative read → epoch reconciliation
			txns[i] = Txn{Ops: []Op{{Kind: OpGet, Key: hot()}}}
		case draw < 16: // guarded decrement → reconciliation, may abort
			txns[i] = Txn{Ops: []Op{{Kind: OpSub, Key: hot(), Value: rng.Next() % 50}}}
		case draw < 17: // delete/recreate churn → mid-stream unsplit
			if rng.Next()%2 == 0 {
				txns[i] = Txn{Ops: []Op{{Kind: OpDelete, Key: hot()}}}
			} else {
				txns[i] = Txn{Ops: []Op{{Kind: OpPut, Key: hot(), Value: rng.Next() % 100}}}
			}
		default: // cold background traffic
			ops := make([]Op, 2)
			for j := range ops {
				k := cold()
				switch rng.Next() % 3 {
				case 0:
					ops[j] = Op{Kind: OpGet, Key: k}
				case 1:
					ops[j] = Op{Kind: OpPut, Key: k, Value: rng.Next() % 1000}
				default:
					ops[j] = Op{Kind: OpAdd, Key: k, Value: rng.Next() % 10}
				}
			}
			txns[i] = Txn{Ops: ops}
		}
	}
	return txns
}

// TestDifferentialSplitReconcile pins split-key execution against the
// host reference across scheduler × sampled-fleet × control-plane mode:
// the adversarial stream runs through a real Scheduler, every batch is
// compared transaction by transaction, and after every batch the
// logical value of each hot counter (home + Σ shards) must equal the
// reference — the reconciliation invariant. Commit/abort outcomes are
// always exact; the one documented deviation is the reported Value of a
// rewritten add (its local shard, not the logical counter), which is
// skipped for keys split at check time. The run ends with a full
// unsplit and an exact state/len comparison.
func TestDifferentialSplitReconcile(t *testing.T) {
	const (
		dpus     = 4
		keyspace = 48
		txnCount = 160
	)
	hotKeys := []uint64{0, 1, 2, 3}
	schedulers := map[string]func(pm *PartitionedMap) Scheduler{
		"fifo": func(*PartitionedMap) Scheduler { return NewFIFOScheduler(24, 300e-6) },
		"lane": func(pm *PartitionedMap) Scheduler {
			s := NewLaneScheduler(LaneSchedulerConfig{
				Confined:    LaneConfig{MaxBatch: 24, MaxDelaySeconds: 300e-6},
				Coordinated: LaneConfig{MaxBatch: 48, MaxDelaySeconds: 600e-6},
			})
			s.bindClassifier(pm.LaneOf)
			return s
		},
		"adaptive": func(pm *PartitionedMap) Scheduler {
			s := NewAdaptiveScheduler(LaneSchedulerConfig{
				Confined:    LaneConfig{MaxBatch: 24, MaxDelaySeconds: 300e-6},
				Coordinated: LaneConfig{MaxBatch: 48, MaxDelaySeconds: 600e-6},
			}, AdaptiveConfig{})
			s.bindClassifier(pm.LaneOf)
			return s
		},
	}
	for _, mode := range []string{"manual", "rebalancer"} {
		for schedName, mkSched := range schedulers {
			for _, sample := range []int{0, 2} {
				name := fmt.Sprintf("%s/%s/sample%d", mode, schedName, sample)
				t.Run(name, func(t *testing.T) {
					pm, dir, ref := newSplitPM(t, dpus, keyspace, sample)
					var reb *Rebalancer
					var err error
					if mode == "manual" {
						if err := pm.SplitKeys(hotKeys); err != nil {
							t.Fatal(err)
						}
					} else {
						// The add-share trigger must find the hot counters
						// on its own; an aggressive window keeps it acting
						// throughout the stream.
						if reb, err = NewRebalancer(pm, RebalancerConfig{
							WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
							Replicas: 2, ReplicateMaxWriteShare: 0.25,
							SplitMinAddShare: 0.5, CooldownWindows: 1,
						}); err != nil {
							t.Fatal(err)
						}
					}
					sched := mkSched(pm)
					sawShardDelta := false
					batches := 0
					applyBatch := func(b SchedBatch) {
						if len(b.Txns) == 0 {
							return
						}
						txns := make([]Txn, len(b.Txns))
						for i := range b.Txns {
							txns[i] = b.Txns[i].Txn
						}
						got, err := pm.ApplyTxns(txns)
						if err != nil {
							t.Fatalf("batch apply: %v", err)
						}
						for i, txn := range txns {
							wantRes, wantOK := refApplyTxn(ref, txn)
							if got[i].Err != nil {
								t.Fatalf("txn %d errored: %v", i, got[i].Err)
							}
							if got[i].Committed != wantOK {
								t.Fatalf("txn %d (%+v): committed %v want %v",
									i, txn.Ops, got[i].Committed, wantOK)
							}
							for j := range wantRes {
								gr, wr := got[i].Results[j], wantRes[j]
								if gr.OK != wr.OK {
									t.Fatalf("txn %d op %d (%+v): OK %v want %v",
										i, j, txn.Ops[j], gr.OK, wr.OK)
								}
								if op := txn.Ops[j]; (isRMW(op.Kind) || op.Kind == OpGet) && dir.isSplit(op.Key) {
									// The documented deviations: a rewritten
									// add or sub reports its local shard's
									// value, and a read sharing a batch with
									// rewritten adds reports the reconciled
									// epoch value rather than the batch-order
									// running value. The post-batch
									// logical-value check below still pins
									// state exactness.
									continue
								}
								if gr.Value != wr.Value {
									t.Fatalf("txn %d op %d (%+v): got %+v want %+v",
										i, j, txn.Ops[j], gr, wr)
								}
							}
						}
						// The reconciliation invariant, after every batch:
						// home + Σ shards == host reference for every hot
						// counter, split or not.
						for _, k := range hotKeys {
							want, wantOK := ref[k]
							gotV, gotOK := pm.Get(k)
							if gotOK != wantOK || (gotOK && gotV != want) {
								t.Fatalf("batch %d: logical value of key %d = %d,%v want %d,%v",
									batches, k, gotV, gotOK, want, wantOK)
							}
							if dir.isSplit(k) && shardSum(pm, k) != 0 {
								sawShardDelta = true
							}
						}
						batches++
						sched.Observe(b, BatchFeedback{
							Ops:              len(txns),
							KernelSeconds:    pm.BatchLaunchSeconds,
							HandshakeSeconds: pm.BatchTransferSeconds,
							WallSeconds:      pm.BatchSeconds,
						})
						if _, err := pm.MaybeRebalance(); err != nil {
							t.Fatalf("rebalance: %v", err)
						}
						if mode == "manual" && batches%6 == 0 {
							// Re-enter any counters the delete churn tore
							// down (absent ones are skipped).
							if err := pm.SplitKeys(hotKeys); err != nil {
								t.Fatal(err)
							}
						}
					}
					stream := genSplitStream(11, txnCount, keyspace)
					for i, txn := range stream {
						for _, b := range sched.Admit(SchedTxn{Txn: txn, Arrival: float64(i) * 1e-5}) {
							applyBatch(b)
						}
					}
					for _, b := range sched.Drain() {
						applyBatch(b)
					}
					if pm.SplitReconciles == 0 {
						t.Fatal("the stream never paid a reconciliation; the merge path was not exercised")
					}
					if !sawShardDelta {
						t.Fatal("no add was ever absorbed into a shard; the rewrite path was not exercised")
					}
					if mode == "rebalancer" && reb.Stats().KeysSplit == 0 {
						t.Fatalf("the add-share trigger never split a key: %+v", reb.Stats())
					}
					// Tear down and compare exactly.
					if err := pm.UnsplitKeys(dir.splitKeys()); err != nil {
						t.Fatal(err)
					}
					if pm.Len() != len(ref) {
						t.Fatalf("final len %d, reference %d", pm.Len(), len(ref))
					}
					for k := uint64(0); k < keyspace; k++ {
						want, wantOK := ref[k]
						got, gotOK := pm.Get(k)
						if gotOK != wantOK || (gotOK && got != want) {
							t.Fatalf("final key %d: got %d,%v want %d,%v", k, got, gotOK, want, wantOK)
						}
					}
				})
			}
		}
	}
}

// genSubStream is the sub-dominated trace for the guarded-decrement
// differential: small stock decrements dominate 4 hot counters,
// replenishment adds and occasional reads keep the escrow being
// re-proven across epoch folds, and oversized decrements force genuine
// underflow aborts (the suppressed exact path). Order-line
// transactions ride a decrement alongside confined cold work so the
// shard-target selection is exercised for subs too.
func genSubStream(seed uint64, count int, keyspace uint64) []Txn {
	rng := Rand64(seed*0x9E3779B97F4A7C15 + 0x5851F42D4C957F2D)
	hot := func() uint64 { return rng.Next() % 4 }
	cold := func() uint64 { return 4 + rng.Next()%(keyspace-4) }
	txns := make([]Txn, count)
	for i := range txns {
		switch draw := rng.Next() % 40; {
		case draw < 18: // pure stock decrement — the sub-rewrite target
			txns[i] = Txn{Ops: []Op{{Kind: OpSub, Key: hot(), Value: 1 + rng.Next()%4}}}
		case draw < 24: // order line: a decrement riding confined cold work
			txns[i] = Txn{Ops: []Op{
				{Kind: OpPut, Key: cold(), Value: rng.Next() % 1000},
				{Kind: OpSub, Key: hot(), Value: 1 + rng.Next()%4},
			}}
		case draw < 30: // replenishment increment
			txns[i] = Txn{Ops: []Op{{Kind: OpAdd, Key: hot(), Value: rng.Next() % 8}}}
		case draw < 31: // oversized decrement → guaranteed underflow abort
			txns[i] = Txn{Ops: []Op{{Kind: OpSub, Key: hot(), Value: 50000 + rng.Next()%5000}}}
		case draw < 33: // non-commutative read → epoch reconciliation
			txns[i] = Txn{Ops: []Op{{Kind: OpGet, Key: hot()}}}
		default: // cold background traffic
			txns[i] = Txn{Ops: []Op{{Kind: OpGet, Key: cold()}}}
		}
	}
	return txns
}

// TestDifferentialSplitSubRewrite pins the escrowed guarded-decrement
// path against the host reference: a sub-dominated stream over split
// stock counters must keep exact commit/abort parity (underflow aborts
// included), keep the logical value (home + Σ shards) exact after
// every batch, and — the point of the escrow — execute at least one
// decrement-bearing batch without paying a reconciliation. Guard-abort
// accounting is recounted against per-transaction outcomes, and in
// rebalancer mode the RMW-share trigger must discover and split the
// sub-dominated counters on its own.
func TestDifferentialSplitSubRewrite(t *testing.T) {
	const (
		dpus     = 4
		keyspace = 48
		txnCount = 240
		stock    = 4000
	)
	hotKeys := []uint64{0, 1, 2, 3}
	for _, mode := range []string{"manual", "rebalancer"} {
		for _, sample := range []int{0, 2} {
			name := fmt.Sprintf("%s/sample%d", mode, sample)
			t.Run(name, func(t *testing.T) {
				pm, dir, ref := newSplitPM(t, dpus, keyspace, sample)
				// Stock up the hot counters so small decrements stay
				// covered while the oversized ones still underflow.
				restock := make([]Op, 0, len(hotKeys))
				for _, k := range hotKeys {
					restock = append(restock, Op{Kind: OpPut, Key: k, Value: stock})
					ref[k] = stock
				}
				if _, err := pm.ApplyBatch(restock); err != nil {
					t.Fatal(err)
				}
				var reb *Rebalancer
				var err error
				if mode == "manual" {
					if err := pm.SplitKeys(hotKeys); err != nil {
						t.Fatal(err)
					}
				} else {
					if reb, err = NewRebalancer(pm, RebalancerConfig{
						WindowBatches: 2, TopK: 4, MinKeyOps: 2, Trigger: 1.01,
						Replicas: 2, ReplicateMaxWriteShare: 0.25,
						SplitMinAddShare: 0.5, CooldownWindows: 1,
					}); err != nil {
						t.Fatal(err)
					}
				}
				sched := NewFIFOScheduler(12, 300e-6)
				var (
					batches         int
					coveredBatches  int
					guardAbortsAcc  int
					guardAbortsSeen int
				)
				applyBatch := func(b SchedBatch) {
					if len(b.Txns) == 0 {
						return
					}
					txns := make([]Txn, len(b.Txns))
					for i := range b.Txns {
						txns[i] = b.Txns[i].Txn
					}
					hotSub := false
					for _, txn := range txns {
						for _, op := range txn.Ops {
							if op.Kind == OpSub && dir.isSplit(op.Key) {
								hotSub = true
							}
						}
					}
					recBefore := pm.SplitReconciles
					got, err := pm.ApplyTxns(txns)
					if err != nil {
						t.Fatalf("batch apply: %v", err)
					}
					guardAbortsAcc += pm.BatchPhases.GuardAborts
					if hotSub && pm.SplitReconciles == recBefore {
						coveredBatches++
					}
					for i, txn := range txns {
						wantRes, wantOK := refApplyTxn(ref, txn)
						if got[i].Err != nil {
							t.Fatalf("txn %d errored: %v", i, got[i].Err)
						}
						if got[i].Committed != wantOK {
							t.Fatalf("txn %d (%+v): committed %v want %v",
								i, txn.Ops, got[i].Committed, wantOK)
						}
						if !got[i].Committed {
							guardAbortsSeen++
						}
						for j := range wantRes {
							gr, wr := got[i].Results[j], wantRes[j]
							if gr.OK != wr.OK {
								t.Fatalf("txn %d op %d (%+v): OK %v want %v",
									i, j, txn.Ops[j], gr.OK, wr.OK)
							}
							if op := txn.Ops[j]; (isRMW(op.Kind) || op.Kind == OpGet) && dir.isSplit(op.Key) {
								continue // documented value deviations, as above
							}
							if gr.Value != wr.Value {
								t.Fatalf("txn %d op %d (%+v): got %+v want %+v",
									i, j, txn.Ops[j], gr, wr)
							}
						}
					}
					for _, k := range hotKeys {
						want, wantOK := ref[k]
						gotV, gotOK := pm.Get(k)
						if gotOK != wantOK || (gotOK && gotV != want) {
							t.Fatalf("batch %d: logical value of key %d = %d,%v want %d,%v",
								batches, k, gotV, gotOK, want, wantOK)
						}
					}
					batches++
					sched.Observe(b, BatchFeedback{
						Ops:           len(txns),
						KernelSeconds: pm.BatchLaunchSeconds,
						WallSeconds:   pm.BatchSeconds,
					})
					if _, err := pm.MaybeRebalance(); err != nil {
						t.Fatalf("rebalance: %v", err)
					}
				}
				stream := genSubStream(17, txnCount, keyspace)
				for i, txn := range stream {
					for _, b := range sched.Admit(SchedTxn{Txn: txn, Arrival: float64(i) * 1e-5}) {
						applyBatch(b)
					}
				}
				for _, b := range sched.Drain() {
					applyBatch(b)
				}
				if coveredBatches == 0 {
					t.Fatal("every decrement-bearing batch paid a reconciliation; the escrow never amortized")
				}
				if guardAbortsSeen == 0 {
					t.Fatal("the oversized decrements never aborted; the guard path was not exercised")
				}
				if guardAbortsAcc != guardAbortsSeen {
					t.Fatalf("GuardAborts accounting = %d, recount of aborted txns = %d",
						guardAbortsAcc, guardAbortsSeen)
				}
				if mode == "rebalancer" && reb.Stats().KeysSplit == 0 {
					t.Fatalf("the RMW-share trigger never split a sub-dominated key: %+v", reb.Stats())
				}
				// Tear down and compare exactly.
				if err := pm.UnsplitKeys(dir.splitKeys()); err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < keyspace; k++ {
					want, wantOK := ref[k]
					got, gotOK := pm.Get(k)
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("final key %d: got %d,%v want %d,%v", k, got, gotOK, want, wantOK)
					}
				}
			})
		}
	}
}

// TestSplitPolicyInteractions is the remedy-transition table: a key
// that already holds replicas (or a migration override) when the
// commutative-add trigger fires must resolve deterministically — the
// replicas drop in the same control step that splits the key, never
// both states at once, and a migration override simply stays as the
// split key's home. Each scenario drives the real Rebalancer through
// the earlier remedy first, then flips the traffic to pure adds.
func TestSplitPolicyInteractions(t *testing.T) {
	const dpus = 4
	scenarios := []struct {
		name string
		// maxWriteShare picks the first remedy (1.0 replicates the
		// read phase, ~0 migrates the write phase).
		maxWriteShare float64
		// phase1 emits the batch that provokes the first remedy; nil
		// skips straight to the adds.
		phase1 func(key uint64) []Op
		// settled checks the first remedy landed.
		settled func(dir *Directory, key uint64) bool
	}{
		{
			name:          "replicate-then-split",
			maxWriteShare: 1.0,
			phase1: func(key uint64) []Op {
				ops := make([]Op, 16)
				for i := range ops {
					ops[i] = Op{Kind: OpGet, Key: key}
				}
				return ops
			},
			settled: func(dir *Directory, key uint64) bool { return len(dir.Replicas(key)) > 0 },
		},
		{
			name:          "migrate-then-split",
			maxWriteShare: 1e-9,
			phase1: func(key uint64) []Op {
				ops := make([]Op, 16)
				for i := range ops {
					ops[i] = Op{Kind: OpPut, Key: key, Value: uint64(i)}
				}
				return ops
			},
			settled: func(dir *Directory, key uint64) bool { return dir.Owner(key) != hashOwner(key, dpus) },
		},
		{
			name:          "direct-split",
			maxWriteShare: 1.0,
			phase1:        nil,
			settled:       nil,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			pm, dir, _ := newSplitPM(t, dpus, 16, 0)
			key := keysOwnedBy(dir, 0, 1)[0]
			reb, err := NewRebalancer(pm, RebalancerConfig{
				WindowBatches: 1, TopK: 2, MinKeyOps: 4, Trigger: 1.01,
				Replicas: 2, ReplicateMaxWriteShare: sc.maxWriteShare,
				SplitMinAddShare: 0.5, CooldownWindows: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			step := func(ops []Op) {
				t.Helper()
				if _, err := pm.ApplyBatch(ops); err != nil {
					t.Fatal(err)
				}
				if _, err := pm.MaybeRebalance(); err != nil {
					t.Fatal(err)
				}
				// The exclusivity invariant, after every control step.
				if dir.isSplit(key) && len(dir.allReplicas(key)) > 0 {
					t.Fatal("key is split and replicated at once")
				}
			}
			if sc.phase1 != nil {
				for w := 0; w < 4 && !sc.settled(dir, key); w++ {
					step(sc.phase1(key))
				}
				if !sc.settled(dir, key) {
					t.Fatal("first remedy never landed")
				}
			}
			ownerBefore := dir.Owner(key)
			// Phase 1 may have overwritten the preload value; the add
			// phase counts up from whatever it left.
			base, ok := pm.Get(key)
			if !ok {
				t.Fatal("key vanished during the first remedy")
			}
			var added uint64
			addBatch := func() []Op {
				ops := make([]Op, 16)
				for i := range ops {
					ops[i] = Op{Kind: OpAdd, Key: key, Value: 1}
					added++
				}
				return ops
			}
			for w := 0; w < 6 && !dir.isSplit(key); w++ {
				step(addBatch())
			}
			if !dir.isSplit(key) {
				t.Fatalf("add-dominated key never split: %+v", reb.Stats())
			}
			if got := dir.allReplicas(key); len(got) != 0 {
				t.Fatalf("split key still holds replicas: %v", got)
			}
			if s := reb.Stats(); s.KeysSplit != 1 {
				t.Fatalf("split not counted once: %+v", s)
			}
			if dir.Owner(key) != ownerBefore {
				t.Fatalf("splitting moved the home: %d → %d", ownerBefore, dir.Owner(key))
			}
			// One more add window: a split key is out of the candidate
			// pool, so the control plane stays quiet.
			acted := reb.Stats().WindowsActed
			step(addBatch())
			if reb.Stats().WindowsActed != acted {
				t.Fatal("split key churned again under the same traffic")
			}
			// The counter survived every transition.
			if v, ok := pm.Get(key); !ok || v != base+added {
				t.Fatalf("counter = %d,%v want %d", v, ok, base+added)
			}
		})
	}
}

// TestSplitUnsplitHysteresis: when the commutative traffic dries up,
// the key leaves the split state only after SplitColdWindows straight
// disqualifying windows — and uniform traffic with the split trigger
// armed never churns at all.
func TestSplitUnsplitHysteresis(t *testing.T) {
	pm, dir, _ := newSplitPM(t, 4, 16, 0)
	key := keysOwnedBy(dir, 0, 1)[0]
	reb, err := NewRebalancer(pm, RebalancerConfig{
		WindowBatches: 1, TopK: 2, MinKeyOps: 4, Trigger: 1.01,
		Replicas: 2, SplitMinAddShare: 0.5, SplitColdWindows: 2,
		CooldownWindows: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addBatch := make([]Op, 16)
	for i := range addBatch {
		addBatch[i] = Op{Kind: OpAdd, Key: key, Value: 1}
	}
	var totalAdds uint64
	for w := 0; w < 6 && !dir.isSplit(key); w++ {
		if _, err := pm.ApplyBatch(addBatch); err != nil {
			t.Fatal(err)
		}
		totalAdds += 16
		if _, err := pm.MaybeRebalance(); err != nil {
			t.Fatal(err)
		}
	}
	if !dir.isSplit(key) {
		t.Fatal("key never split")
	}

	// Traffic shifts to reads elsewhere; the split must survive the
	// first cold window (hysteresis) and drop after the second.
	elsewhere := keysOwnedBy(dir, 1, 1)[0]
	coldBatch := make([]Op, 8)
	for i := range coldBatch {
		coldBatch[i] = Op{Kind: OpGet, Key: elsewhere}
	}
	windows := 0
	for w := 0; w < 8 && dir.isSplit(key); w++ {
		if _, err := pm.ApplyBatch(coldBatch); err != nil {
			t.Fatal(err)
		}
		if _, err := pm.MaybeRebalance(); err != nil {
			t.Fatal(err)
		}
		windows++
	}
	if dir.isSplit(key) {
		t.Fatal("cold split key never torn down")
	}
	if windows < 2 {
		t.Fatalf("split dropped after %d cold windows, want the %d-window hysteresis", windows, 2)
	}
	if s := reb.Stats(); s.KeysUnsplit != 1 {
		t.Fatalf("unsplit not counted: %+v", s)
	}
	if shardCount(pm, key) != 0 {
		t.Fatal("unsplit left shard records behind")
	}
	// Every add landed — on the home before the split, on shards after —
	// and the teardown folded them all back in.
	if v, ok := pm.Get(key); !ok || v != key+totalAdds {
		t.Fatalf("counter = %d,%v want %d", v, ok, key+totalAdds)
	}

	// Uniform traffic with the trigger armed: no remedy ever fires.
	pm2, dir2, _ := newSplitPM(t, 4, 256, 0)
	reb2, err := NewRebalancer(pm2, RebalancerConfig{
		WindowBatches: 2, SplitMinAddShare: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := Rand64(7)
	for b := 0; b < 8; b++ {
		var ops []Op
		for i := 0; i < 64; i++ {
			k := rng.Next() % 256
			if rng.Next()%2 == 0 {
				ops = append(ops, Op{Kind: OpAdd, Key: k, Value: 1})
			} else {
				ops = append(ops, Op{Kind: OpGet, Key: k})
			}
		}
		if _, err := pm2.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if acted, err := pm2.MaybeRebalance(); err != nil {
			t.Fatal(err)
		} else if acted {
			t.Fatalf("uniform add traffic churned at batch %d", b)
		}
	}
	if s := reb2.Stats(); s.KeysSplit != 0 || s.KeysUnsplit != 0 {
		t.Fatalf("uniform traffic split keys: %+v", s)
	}
	if dir2.splitCount() != 0 {
		t.Fatal("directory holds splits under uniform traffic")
	}
}

// TestApplyTransfersHostSideCostModel pins the legacy coordinate-all
// cost model DESIGN.md §5.4 documents: ApplyTransfers evaluates and
// commits host-side between kernel launches, so a transfer batch
// charges its snapshot gather and its commit scatter but zero apply
// kernel cycles — ApplySeconds stays exactly 0 while both neighbors
// are paid. The kernel-side commit (and the split reconciliation fold)
// are the only writers of ApplySeconds.
func TestApplyTransfersHostSideCostModel(t *testing.T) {
	pm := newPM(t, 4)
	var load []Op
	for k := uint64(0); k < 8; k++ {
		load = append(load, Op{Kind: OpPut, Key: k, Value: 1000})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	ok, err := pm.ApplyTransfers([]Transfer{
		{From: 0, To: 1, Amount: 10},
		{From: 2, To: 3, Amount: 20},
		{From: 4, To: 5, Amount: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ok {
		if !ok[i] {
			t.Fatalf("transfer %d failed", i)
		}
	}
	ph := pm.BatchPhases
	if ph.ApplySeconds != 0 {
		t.Fatalf("host-side transfers charged %.12fs of apply kernel time; the legacy path runs on the CPU between launches", ph.ApplySeconds)
	}
	if ph.GatherSeconds <= 0 {
		t.Fatal("transfer batch gathered for free")
	}
	if ph.WritebackSeconds <= 0 {
		t.Fatal("transfer batch committed for free")
	}
}
