package host

import (
	"reflect"
	"testing"

	"pimstm/internal/core"
)

func TestRebalancerValidation(t *testing.T) {
	static := newPM(t, 4)
	if _, err := NewRebalancer(static, RebalancerConfig{}); err == nil {
		t.Fatal("rebalancer accepted a static placement")
	}
	pm, _ := newDirPM(t, 4)
	if _, err := NewRebalancer(pm, RebalancerConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRebalancer(pm, RebalancerConfig{}); err == nil {
		t.Fatal("second rebalancer accepted")
	}
}

// TestRebalancerUniformNeverChurns is the hysteresis guarantee: under
// a uniform key spread the hottest DPU never clears the trigger, so
// the control plane takes no action, charges no rounds, and the store
// stays byte-equivalent to static routing.
func TestRebalancerUniformNeverChurns(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	reb, err := NewRebalancer(pm, RebalancerConfig{WindowBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := Rand64(7)
	for b := 0; b < 8; b++ {
		var ops []Op
		for i := 0; i < 64; i++ {
			k := rng.Next() % 256 // uniform
			if rng.Next()%100 < 90 {
				ops = append(ops, Op{Kind: OpGet, Key: k})
			} else {
				ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
			}
		}
		if _, err := pm.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		if acted, err := pm.MaybeRebalance(); err != nil {
			t.Fatal(err)
		} else if acted {
			t.Fatalf("uniform traffic churned at batch %d", b)
		}
	}
	s := reb.Stats()
	if s.WindowsEvaluated == 0 {
		t.Fatal("windows never evaluated")
	}
	if s.WindowsActed != 0 || s.KeysReplicated != 0 || s.KeysMigrated != 0 {
		t.Fatalf("uniform traffic moved data: %+v", s)
	}
	if ds := dir.Stats(); ds.Overrides != 0 || ds.ReplicatedKeys != 0 {
		t.Fatalf("directory populated under uniform traffic: %+v", ds)
	}
}

// TestRebalancerActsOnSkew: a single-DPU hot spot with a read-mostly
// hot key and a write-heavy hot key gets both remedies — the read key
// replicated, the write key migrated off the hot DPU — and the load
// actually spreads (the same skewed batch afterwards has a smaller
// worst-case bucket).
func TestRebalancerActsOnSkew(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	readKey := keysOwnedBy(dir, 0, 2)[0]
	writeKey := keysOwnedBy(dir, 0, 2)[1]
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: readKey, Value: 11},
		{Kind: OpPut, Key: writeKey, Value: 22},
	}); err != nil {
		t.Fatal(err)
	}
	reb, err := NewRebalancer(pm, RebalancerConfig{
		WindowBatches: 2, TopK: 2, MinKeyOps: 4, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	skewed := func() []Op {
		var ops []Op
		for i := 0; i < 24; i++ {
			ops = append(ops, Op{Kind: OpGet, Key: readKey})
		}
		for i := 0; i < 12; i++ {
			ops = append(ops, Op{Kind: OpPut, Key: writeKey, Value: uint64(i)})
		}
		return ops
	}
	var acted bool
	for b := 0; b < 2; b++ {
		if _, err := pm.ApplyBatch(skewed()); err != nil {
			t.Fatal(err)
		}
		a, err := pm.MaybeRebalance()
		if err != nil {
			t.Fatal(err)
		}
		acted = acted || a
	}
	if !acted {
		t.Fatal("skewed window did not trigger the rebalancer")
	}
	s := reb.Stats()
	if s.KeysReplicated != 1 {
		t.Fatalf("read-mostly key not replicated: %+v", s)
	}
	if s.KeysMigrated != 1 {
		t.Fatalf("write-heavy key not migrated: %+v", s)
	}
	if len(dir.Replicas(readKey)) != 2 {
		t.Fatalf("replicas of read key = %v", dir.Replicas(readKey))
	}
	if dir.Owner(writeKey) == 0 {
		t.Fatal("write key still homed on the hot DPU")
	}

	// The remedies shrink the worst-case bucket of the same batch: 24
	// reads spread 8/8/8 and 12 writes moved away leave max 12 instead
	// of 36 on DPU 0.
	pre := pm.Stats().TransferSeconds
	if _, err := pm.ApplyBatch(skewed()); err != nil {
		t.Fatal(err)
	}
	got := pm.Stats().TransferSeconds - pre
	before := TransferSeconds(1, 24*36) + TransferSeconds(1, 16*36)
	if got >= before {
		t.Fatalf("post-rebalance batch transfers %.9fs, static hot path was %.9fs", got, before)
	}

	// The values survived the shuffle (the write key's value is
	// whichever put committed last; presence is the invariant).
	if v, ok := pm.Get(readKey); !ok || v != 11 {
		t.Fatalf("read key = %d,%v", v, ok)
	}
	if _, ok := pm.Get(writeKey); !ok {
		t.Fatal("write key lost in migration")
	}
}

// TestRebalancerDepromotesColdKeys: a promoted key whose traffic moves
// away is de-promoted — its copies physically deleted in one paid
// round, the directory entry dropped — so the directory no longer grows
// monotonically. Reads of the de-promoted key still serve correctly
// from the owner.
func TestRebalancerDepromotesColdKeys(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	hot := keysOwnedBy(dir, 0, 1)[0]
	elsewhere := keysOwnedBy(dir, 1, 1)[0]
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: hot, Value: 42},
		{Kind: OpPut, Key: elsewhere, Value: 7},
	}); err != nil {
		t.Fatal(err)
	}
	reb, err := NewRebalancer(pm, RebalancerConfig{
		WindowBatches: 1, TopK: 2, MinKeyOps: 4, Replicas: 2,
		CooldownWindows: 1, ColdKeyOps: 1, ColdWindows: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: hammer the hot key until it is replicated.
	hotBatch := make([]Op, 16)
	for i := range hotBatch {
		hotBatch[i] = Op{Kind: OpGet, Key: hot}
	}
	for w := 0; w < 2 && len(dir.Replicas(hot)) == 0; w++ {
		if _, err := pm.ApplyBatch(hotBatch); err != nil {
			t.Fatal(err)
		}
		if _, err := pm.MaybeRebalance(); err != nil {
			t.Fatal(err)
		}
	}
	if len(dir.Replicas(hot)) != 2 {
		t.Fatalf("hot key not promoted: %v", dir.Replicas(hot))
	}
	lenWithCopies := pm.Len()

	// Phase 2: traffic shifts entirely away; after the cooldown plus
	// ColdWindows cold windows the copies must be dropped.
	coldBatch := make([]Op, 8)
	for i := range coldBatch {
		coldBatch[i] = Op{Kind: OpGet, Key: elsewhere}
	}
	rounds := pm.Stats().Rounds
	for w := 0; w < 6 && len(dir.allReplicas(hot)) > 0; w++ {
		if _, err := pm.ApplyBatch(coldBatch); err != nil {
			t.Fatal(err)
		}
		if _, err := pm.MaybeRebalance(); err != nil {
			t.Fatal(err)
		}
	}
	if got := dir.allReplicas(hot); len(got) != 0 {
		t.Fatalf("cold key still holds copies: %v", got)
	}
	if s := reb.Stats(); s.KeysDepromoted != 1 {
		t.Fatalf("de-promotion not counted: %+v", s)
	}
	if pm.Len() != lenWithCopies {
		t.Fatalf("len = %d after de-promotion, want %d (copies deleted, key kept)", pm.Len(), lenWithCopies)
	}
	if pm.Stats().Rounds == rounds {
		t.Fatal("de-promotion modeled as free")
	}
	// The key itself survives and serves from its owner.
	if v, ok := pm.Get(hot); !ok || v != 42 {
		t.Fatalf("de-promoted key = %d,%v", v, ok)
	}
	res, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: hot}})
	if err != nil || !res[0].OK || res[0].Value != 42 {
		t.Fatalf("read after de-promotion: %+v %v", res, err)
	}

	// Disabled de-promotion never drops copies.
	pm2, dir2 := newDirPM(t, 4)
	if _, err := pm2.ApplyBatch([]Op{{Kind: OpPut, Key: hot, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := pm2.ReplicateKeys(map[uint64][]int{hot: {1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRebalancer(pm2, RebalancerConfig{
		WindowBatches: 1, ColdKeyOps: -1, ColdWindows: 1, CooldownWindows: 1,
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if _, err := pm2.ApplyBatch(coldBatch); err != nil {
			t.Fatal(err)
		}
		if _, err := pm2.MaybeRebalance(); err != nil {
			t.Fatal(err)
		}
	}
	if len(dir2.allReplicas(hot)) != 1 {
		t.Fatalf("disabled de-promotion still dropped copies: %v", dir2.allReplicas(hot))
	}
}

// TestServeWithRebalancerDeterministic: the whole serving pipeline with
// the control plane in the loop stays a pure function of its config.
func TestServeWithRebalancerDeterministic(t *testing.T) {
	run := func() ServeResult {
		res, err := Serve(ServeConfig{
			Map: PartitionedMapConfig{
				DPUs: 4, Tasklets: 4,
				STM:       core.Config{Algorithm: core.NOrec},
				Placement: NewDirectory(4),
			},
			Submit: SubmitterConfig{MaxBatch: 64},
			Traffic: TrafficConfig{
				Ops: 600, Rate: 2e5, ReadPct: 95, Keyspace: 128, ZipfS: 1.2, Seed: 3,
			},
			Rebalance: &RebalancerConfig{WindowBatches: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	a.ZeroHostClock()
	b.ZeroHostClock()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic serve with rebalancer:\n%+v\n%+v", a, b)
	}
	if a.Errors != 0 {
		t.Fatalf("%d ops errored", a.Errors)
	}
	if a.Rebalance.BatchesObserved == 0 {
		t.Fatal("rebalancer never observed the traffic")
	}
}
