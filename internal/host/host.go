// Package host implements the CPU-side orchestration of the paper's
// multi-DPU study (§4.3): it launches fleets of simulated DPUs, models
// CPU-mediated data transfers, runs the CPU baselines (NOrec on host
// threads via internal/cpustm), and assembles the speedup and energy
// series of Figs 7 and 8.
//
// Because the DPUs are deterministic and independent, a fleet of n
// identical shards is simulated by running a sample of distinct-seed
// DPUs in parallel and taking the slowest as the fleet's round time;
// pass Exact to simulate every DPU (used by the correctness tests and
// the end-to-end examples).
//
// All multi-DPU execution goes through the Fleet executor (fleet.go):
// rounds of scatter → launch → gather whose modeled clock either
// serializes the phases (Lockstep, the paper's host loop) or overlaps
// batched transfers with kernel execution (Pipelined, double-buffered
// SimplePIM-style scheduling). FleetStats breaks the wall clock into
// launch, transfer and quiescent-window time and carries the
// lockstep-equivalent cost so the pipelining gain is always reportable.
package host

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Transfer-model constants, calibrated to the paper's measurements.
const (
	// InterDPUWordLatencySeconds is the measured cost of a CPU-mediated
	// inter-DPU read of one 64-bit word (paper §3.1: 331 µs vs 231 ns
	// for a local MRAM read).
	InterDPUWordLatencySeconds = 331e-6
	// xferBatchOverheadSeconds is the fixed cost of one host↔DPU batch
	// transfer (driver + rank handshake), the dominant part of the
	// 331 µs word read.
	xferBatchOverheadSeconds = 300e-6
	// xferAggregateBW is the aggregate host↔DPU copy bandwidth across
	// ranks in bytes/second.
	xferAggregateBW = 6.7e9
	// xferPerDPUBW is the sustainable copy bandwidth of a single DPU's
	// MRAM link in bytes/second. The aggregate bandwidth is only
	// reachable with many DPUs streaming in parallel; a batch whose
	// payload concentrates on few DPUs is gated by this per-link rate.
	xferPerDPUBW = 0.6e9
)

// TransferSeconds models one batched host↔DPU copy of bytesPerDPU bytes
// to or from each of n DPUs. Transfers to distinct ranks proceed in
// parallel up to the aggregate bandwidth, but each DPU's MRAM link
// sustains at most xferPerDPUBW — so the payload term is the slower of
// the aggregate-bandwidth bound and the single-link bound. Without the
// link bound a batch aimed at one hot DPU would be credited the whole
// fleet's bandwidth and skew would model as free.
func TransferSeconds(n, bytesPerDPU int) float64 {
	if n < 1 {
		n = 1
	}
	total := float64(n) * float64(bytesPerDPU)
	payload := total / xferAggregateBW
	if link := float64(bytesPerDPU) / xferPerDPUBW; link > payload {
		payload = link
	}
	return xferBatchOverheadSeconds + payload
}

// InterDPURead64Seconds returns the modeled latency of reading a 64-bit
// word of another DPU through the CPU, for the §3.1 latency comparison.
func InterDPURead64Seconds() float64 { return InterDPUWordLatencySeconds }

// FleetOptions control a multi-DPU run.
type FleetOptions struct {
	// DPUs is the fleet size n.
	DPUs int
	// Tasklets per DPU (the paper uses the per-workload optimum).
	Tasklets int
	// Sample bounds how many distinct-seed DPUs are actually simulated
	// per round; 0 picks min(n, 4), and a Sample ≥ DPUs is clamped to
	// DPUs (every DPU simulated). The simulated ids are spread across
	// the fleet by the deterministic rule ids[i] = i·DPUs/Sample
	// (id 0 always included), so a sample sees representatives from
	// every region of the id space. Setting Sample together with Exact
	// is a configuration error: Exact means "simulate every DPU", which
	// contradicts bounding the sample (NewFleet rejects the combination
	// rather than silently ignoring one of the two).
	Sample int
	// Exact simulates every DPU (needed when the merged output must be
	// numerically correct, e.g. in the examples and correctness tests).
	Exact bool
	// Parallelism bounds concurrent DPU simulations; 0 = GOMAXPROCS.
	Parallelism int
}

func (o *FleetOptions) fill() error {
	if o.DPUs <= 0 {
		return fmt.Errorf("host: fleet needs at least one DPU")
	}
	if o.Exact && o.Sample > 0 {
		return fmt.Errorf("host: FleetOptions sets both Exact and Sample %d: Exact simulates every one of the %d DPUs, so a sample bound contradicts it — drop Sample (or drop Exact to simulate a %d-DPU sample)",
			o.Sample, o.DPUs, o.Sample)
	}
	if o.Tasklets <= 0 {
		o.Tasklets = 11
	}
	if o.Sample <= 0 {
		o.Sample = 4
	}
	if o.Sample > o.DPUs {
		o.Sample = o.DPUs
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// simulated returns the DPU ids to actually simulate: all of them
// under Exact (or when the clamped Sample covers the fleet), otherwise
// Sample ids spread deterministically by ids[i] = i·DPUs/Sample — the
// rule documented on FleetOptions.Sample and Fleet.SimulatedIDs.
func (o *FleetOptions) simulated() []int {
	n := o.Sample
	if o.Exact {
		n = o.DPUs
	}
	ids := make([]int, n)
	if n == o.DPUs {
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	for i := range ids {
		ids[i] = i * o.DPUs / n
	}
	return ids
}

// parallelFor runs f(i) for each id with bounded parallelism, returning
// the first error.
func parallelFor(ids []int, parallelism int, f func(id int) error) error {
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, id := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(id int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := f(id); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	return firstErr
}

// parallelForN runs f(0..n-1) with the work striped over a fixed pool
// of min(n, parallelism) workers pulling from an atomic cursor. Unlike
// parallelFor it spawns one goroutine per worker rather than one per
// item, so a hot loop calling it every batch stays cheap.
func parallelForN(n, parallelism int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
