package host

import (
	"fmt"
	"sync"
	"time"

	"pimstm/internal/core"
	"pimstm/internal/cpustm"
	"pimstm/internal/dpu"
	"pimstm/internal/workloads"
)

// KMeansFleetConfig shapes the multi-DPU KMeans of §4.3.1: the CPU
// distributes disjoint point shards to the DPUs, each DPU accumulates
// into a private centroid copy, and the CPU merges between rounds. Per
// the paper, the DPU side uses NOrec with metadata in WRAM and both
// sides run the same number of rounds.
type KMeansFleetConfig struct {
	// K is the cluster count (15 for the LC workload, 2 for HC).
	K int
	// Dims is the point dimensionality (14 in the paper).
	Dims int
	// PointsPerDPU is the shard size (the paper assigns 200K per DPU;
	// the default harness scales this down).
	PointsPerDPU int
	// Rounds as in the paper: 3.
	Rounds int
	// Seed drives the deterministic shard generators.
	Seed uint64
}

func (c *KMeansFleetConfig) fill() {
	if c.K == 0 {
		c.K = 15
	}
	if c.Dims == 0 {
		c.Dims = 14
	}
	if c.PointsPerDPU == 0 {
		c.PointsPerDPU = 2000
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// KMeansFleetResult reports one multi-DPU KMeans execution.
type KMeansFleetResult struct {
	// DPUSeconds is the simulated DPU compute time: the sum over rounds
	// of the slowest DPU's round time.
	DPUSeconds float64
	// TransferSeconds models the centroid broadcast and accumulator
	// gather of every round.
	TransferSeconds float64
	// TotalSeconds is the end-to-end PIM-side time.
	TotalSeconds float64
	// Pipeline is the fleet's full modeled-time breakdown (the KMeans
	// rounds are data-dependent — the merged centroids of round r feed
	// round r+1 — so the fleet runs in Lockstep mode and WallSeconds
	// equals TotalSeconds).
	Pipeline FleetStats
	// Centers holds the merged final centroids (numerically exact only
	// with FleetOptions.Exact).
	Centers []uint64
	// Commits counts committed transactions across simulated DPUs.
	Commits uint64
	// TotalPoints is DPUs × PointsPerDPU.
	TotalPoints int
}

// shard builds the per-DPU single-round workload instance.
func (c KMeansFleetConfig) shard(dpuID int, round int) *workloads.KMeans {
	w := workloads.NewKMeansLC()
	w.K = c.K
	w.Dims = c.Dims
	w.TotalPoints = c.PointsPerDPU
	w.Rounds = 1
	w.Seed = c.Seed + uint64(dpuID)*2654435761 + uint64(round)
	return w
}

// RunKMeansFleet executes the multi-DPU KMeans flow through a Lockstep
// Fleet: the rounds carry a true data dependency (the centroids merged
// from round r's gather are round r+1's broadcast), so transfers cannot
// hide behind kernels and every round is scatter → launch → gather on
// the critical path.
func RunKMeansFleet(cfg KMeansFleetConfig, opt FleetOptions) (KMeansFleetResult, error) {
	cfg.fill()
	fleet, err := NewFleet(opt, Lockstep, nil)
	if err != nil {
		return KMeansFleetResult{}, err
	}
	opt = fleet.opt // filled defaults
	res := KMeansFleetResult{TotalPoints: cfg.PointsPerDPU * opt.DPUs}
	ids := fleet.SimulatedIDs()

	gatherBytes := (cfg.K*cfg.Dims + cfg.K) * 8
	broadcastBytes := cfg.K * cfg.Dims * 8

	var centers []uint64 // global centroids, broadcast each round
	for round := 0; round < cfg.Rounds; round++ {
		type dpuOut struct {
			acc     []uint64
			counts  []uint64
			commits uint64
		}
		outs := make([]dpuOut, len(ids))
		idx := make(map[int]int, len(ids))
		for i, id := range ids {
			idx[id] = i
		}
		err := fleet.Round(RoundSpec{
			ScatterBytes: broadcastBytes,
			GatherBytes:  gatherBytes,
			Program: func(id int, _ *dpu.DPU) (float64, error) {
				w := cfg.shard(id, round)
				d := dpu.New(dpu.Config{MRAMSize: 8 << 20, Seed: uint64(id)*7919 + uint64(round) + cfg.Seed})
				tm, err := core.New(d, core.Config{Algorithm: core.NOrec, MetaTier: dpu.WRAM})
				if err != nil {
					return 0, err
				}
				if err := w.Setup(d); err != nil {
					return 0, err
				}
				if centers != nil {
					w.SetCenters(d, centers)
				}
				txs := make([]*core.Tx, opt.Tasklets)
				progs := make([]func(*dpu.Tasklet), opt.Tasklets)
				for i := range progs {
					progs[i] = func(t *dpu.Tasklet) {
						tx := tm.NewTx(t)
						txs[t.ID] = tx
						w.Body(tx, t.ID, opt.Tasklets)
					}
				}
				w.SetTasklets(opt.Tasklets)
				cycles, err := d.Run(progs)
				if err != nil {
					return 0, err
				}
				if err := w.Verify(d); err != nil {
					return 0, err
				}
				acc, counts := w.Accumulators(d)
				var commits uint64
				for _, tx := range txs {
					commits += tx.Stats().Commits
				}
				outs[idx[id]] = dpuOut{acc: acc, counts: counts, commits: commits}
				return d.Seconds(cycles), nil
			},
		})
		if err != nil {
			return KMeansFleetResult{}, err
		}
		for _, o := range outs {
			res.Commits += o.commits
		}

		// Merge accumulators; scale the sample up to the fleet when not
		// exact (timing fidelity only — the examples use Exact).
		mergedAcc := make([]uint64, cfg.K*cfg.Dims)
		mergedCnt := make([]uint64, cfg.K)
		for _, o := range outs {
			for i, v := range o.acc {
				mergedAcc[i] += v
			}
			for i, v := range o.counts {
				mergedCnt[i] += v
			}
		}
		if !opt.Exact && len(ids) < opt.DPUs {
			f := uint64(opt.DPUs / len(ids))
			for i := range mergedAcc {
				mergedAcc[i] *= f
			}
			for i := range mergedCnt {
				mergedCnt[i] *= f
			}
		}
		centers = make([]uint64, cfg.K*cfg.Dims)
		for c := 0; c < cfg.K; c++ {
			n := mergedCnt[c]
			for d := 0; d < cfg.Dims; d++ {
				if n > 0 {
					centers[c*cfg.Dims+d] = uint64(int64(mergedAcc[c*cfg.Dims+d]) / int64(n))
				}
			}
		}
	}
	res.Centers = centers
	res.Pipeline = fleet.Drain()
	res.DPUSeconds = res.Pipeline.LaunchSeconds
	res.TransferSeconds = res.Pipeline.TransferSeconds
	res.TotalSeconds = res.Pipeline.WallSeconds
	return res, nil
}

// KMeansCPUBaseline measures the paper's CPU-side comparator: the same
// sharded KMeans executed with the cpustm NOrec on real host threads
// (the paper's optimum is 4 threads). It returns the measured seconds
// for `points` inputs over `rounds` rounds.
func KMeansCPUBaseline(k, dims, points, rounds, threads int, seed uint64) (seconds float64, err error) {
	if threads <= 0 {
		threads = 4
	}
	// Memory layout: [k*dims accumulators][k counts]; centroids are read
	// non-transactionally from a plain snapshot, as on the DPU.
	mem := cpustm.NewMem(k*dims + k)
	tm := cpustm.New(mem)
	pts := make([]int64, points*dims)
	rng := Rand64(seed | 1)
	next := rng.Next
	for p := 0; p < points; p++ {
		c := p % k
		for d := 0; d < dims; d++ {
			pts[p*dims+d] = int64(c*1000+d*37)<<16 + (int64(next()%200)-100)<<12
		}
	}
	centers := make([]int64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			centers[c*dims+d] = pts[c*dims+d]
		}
	}

	start := time.Now()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		chunk := (points + threads - 1) / threads
		for th := 0; th < threads; th++ {
			lo := th * chunk
			hi := lo + chunk
			if hi > points {
				hi = points
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				tx := tm.NewTx()
				for p := lo; p < hi; p++ {
					best, bestDist := 0, int64(0)
					for c := 0; c < k; c++ {
						var dist int64
						for d := 0; d < dims; d++ {
							diff := (pts[p*dims+d] - centers[c*dims+d]) >> 16
							dist += diff * diff
						}
						if c == 0 || dist < bestDist {
							best, bestDist = c, dist
						}
					}
					tx.Atomic(func(tx *cpustm.Tx) {
						for d := 0; d < dims; d++ {
							i := best*dims + d
							tx.Write(i, tx.Read(i)+uint64(pts[p*dims+d]))
						}
						cnt := k*dims + best
						tx.Write(cnt, tx.Read(cnt)+1)
					})
				}
			}(lo, hi)
		}
		wg.Wait()
		// Merge: new centroids from accumulators, then reset.
		for c := 0; c < k; c++ {
			n := mem.Load(k*dims + c)
			for d := 0; d < dims; d++ {
				if n > 0 {
					centers[c*dims+d] = int64(mem.Load(c*dims+d)) / int64(n)
				}
				mem.Store(c*dims+d, 0)
			}
			mem.Store(k*dims+c, 0)
		}
	}
	return time.Since(start).Seconds(), nil
}

// KMeansCPUSecondsPerPoint calibrates the CPU baseline once and returns
// seconds per (point × round), so fleet-scale CPU times extrapolate
// linearly (the computation is embarrassingly linear in the input).
func KMeansCPUSecondsPerPoint(k, dims, threads int) (float64, error) {
	const calibPoints, calibRounds = 20000, 2
	s, err := KMeansCPUBaseline(k, dims, calibPoints, calibRounds, threads, 42)
	if err != nil {
		return 0, err
	}
	per := s / float64(calibPoints*calibRounds)
	if per <= 0 {
		return 0, fmt.Errorf("host: CPU calibration produced non-positive cost")
	}
	return per, nil
}
