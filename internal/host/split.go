package host

import (
	"fmt"
	"slices"

	"pimstm/internal/dpu"
)

// This file is split-key execution — the Rebalancer's third remedy
// beyond replicate and migrate, for hot keys dominated by commutative
// read-modify-writes (Doppel-style). A split key K keeps its base value
// at its home owner, and every DPU d of the fleet holds a local delta
// shard: a physical map entry under shardKeyFor(K, d), homed at d by a
// directory owner override, so the entire existing machinery (simulated
// kernels, sampled shadow shards, capacity bounds, worst-bucket
// charging, gather/mutate rounds) handles shards as ordinary keys.
//
// The per-batch protocol (splitRewrite):
//
//   - A batch touching K only through OpAdd rewrites each add into an
//     add on the delta shard of whichever DPU the transaction already
//     touches — the adds commute, so absorbing them locally is exact —
//     turning what would be cross-DPU coordination into confined-lane
//     kernel work. The logical value of K is home + Σ shards.
//   - A batch touching K only through OpAdd/OpSub also rewrites its
//     subs, but only when the host's exact shard-balance view
//     (splitTrack) proves every shard covers its pending subtractions —
//     subtraction commutes, and coverage rules out the underflow the
//     guard exists for, so the rewritten guard can never fire where the
//     reference guard would not (and vice versa: the logical value is
//     at least any one shard's balance). A covered sub batch pays no
//     reconciliation at all.
//   - An uncovered sub batch reconciles, and the fold provisions
//     escrow when the folded total T still covers the batch's pending
//     subs: each shard is seeded with its pending amount plus an equal
//     share of half the surplus, the home keeps the rest, and the subs
//     stay rewritten — future covered batches then run reconcile-free
//     until the escrow drains. When T cannot cover the pending subs
//     (genuine underflow is in play) the fold zeroes the shards and the
//     batch runs the key unrewritten — adds included — preserving exact
//     batch-order guard semantics.
//   - Any other non-commutative access forces a paid epoch
//     reconciliation at batch start: one coalesced gather of home +
//     shards, then one writeback-style apply round folding the deltas
//     into the home value and zeroing the shards. The key stays split.
//   - After reconciling, a batch that WRITES K non-commutatively
//     (OpPut) runs the key unrewritten — subs included, since their
//     underflow guard observes the value — preserving exact batch-order
//     semantics for the write and every add around it.
//   - A batch that only READS K (OpGet) keeps its adds rewritten: the
//     reads observe the epoch value the reconciliation just folded,
//     serializing before the batch's adds — Doppel's epoch semantics
//     for reads of split data, and a legal serializable outcome — so
//     one stray read does not collapse a whole batch of commutative
//     traffic back onto the home DPU.
//   - OpDelete reconciles like a write and additionally unsplits the
//     key (shards deleted, overrides cleared), so delete-then-add
//     within one batch keeps exact reference semantics.
//
// Reconciliation is charged honestly: the gather pays the usual 16-byte
// records, and the fold round runs compiled single-op apply programs
// through the writeback kernels (real cycles on simulated DPUs, the
// calibrated per-instruction rate for sampled shadow shards).
//
// Two documented deviations, both value-level only: the OpResult.Value
// of a rewritten add or sub is the post-op value of its local shard,
// not of the logical counter — the global sum is unknowable without
// paying the reconciliation the rewrite exists to avoid — and the
// OpResult.Value of a read sharing a batch with rewritten adds is the
// reconciled epoch value, not the batch-order running value.
// Committed/abort semantics are unchanged (split keys are always
// present at home, and so are their shards; subs only rewrite when
// coverage proves the guard outcome matches the reference's).

const (
	// shardKeyFlag tags delta-shard keys; shardKeyShift packs the DPU id
	// above the client key bits.
	shardKeyFlag  = uint64(1) << 63
	shardKeyShift = 40
	// splitKeyLimit bounds the splittable client keyspace: shard keys
	// pack the DPU id at bit 40 and the tag at bit 63, so only keys
	// below 2^40 can split. Keys at or above the limit simply stay
	// unsplit (the Rebalancer never proposes them).
	splitKeyLimit = uint64(1) << shardKeyShift
)

// shardKeyFor is the delta shard of a split key on DPU d.
func shardKeyFor(key uint64, d int) uint64 {
	return shardKeyFlag | uint64(d)<<shardKeyShift | key
}

// splitTouch flags: how a batch touches one split key.
const (
	splitTouchAdd uint8 = 1 << iota
	splitTouchRead
	splitTouchWrite
	splitTouchDelete
	splitTouchSub
)

// splitRewritable reports whether a batch's adds on a split key stay
// rewritten onto delta shards: yes unless the batch also writes the key
// non-commutatively (reads only force the epoch reconciliation, not the
// rewrite suppression). A key whose subs end up suppressed additionally
// suppresses its adds — see splitRewrite's rewriteOp — because a
// suppressed sub behaves like a write (its guard observes the home
// value, which must reflect every add before it in batch order).
func splitRewritable(f uint8) bool {
	return f&splitTouchAdd != 0 && f&(splitTouchWrite|splitTouchDelete) == 0
}

// subCandidate reports whether a batch's subs on a split key are
// rewrite candidates: the key is touched only through OpAdd/OpSub this
// batch. Any read, write or delete alongside a sub falls back to the
// suppress-and-reconcile protocol, whose batch-order guard semantics
// are exact by construction.
func subCandidate(f uint8) bool {
	return f&splitTouchSub != 0 && f&(splitTouchRead|splitTouchWrite|splitTouchDelete) == 0
}

// SplitKeys enters each key into the split state: one paid gather round
// checks presence at the home owners, then one paid scatter round seeds
// a zero-delta shard on every DPU, with a directory owner override
// homing each shard at its DPU. Requires a Directory placement and a
// fleet of at least two. Keys already split or missing from their home
// are skipped; keys outside the splittable range or still holding
// replica copies are errors — the control plane must drop a key's
// replicas before splitting it, which is what makes the
// replicate→split transition deterministic (never both states at once).
// BatchSeconds reports the window's delta.
func (pm *PartitionedMap) SplitKeys(keys []uint64) error {
	if pm.dir == nil {
		return fmt.Errorf("host: split-key execution needs a Directory placement")
	}
	n := pm.fleet.Size()
	if n < 2 {
		return fmt.Errorf("host: splitting needs at least two DPUs")
	}
	wallBefore := pm.fleet.Stats().WallSeconds
	var cands []uint64
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] || pm.dir.isSplit(k) {
			continue
		}
		seen[k] = true
		if k >= splitKeyLimit {
			return fmt.Errorf("host: key %d outside the splittable range (< 2^%d)", k, shardKeyShift)
		}
		if len(pm.dir.allReplicas(k)) > 0 {
			return fmt.Errorf("host: key %d still holds replica copies; drop them before splitting", k)
		}
		cands = append(cands, k)
	}
	if len(cands) == 0 {
		pm.BatchSeconds = 0
		return nil
	}
	// Splitting a missing key would manufacture it (adds guard on their
	// shard's own presence once rewritten), so absent keys are skipped,
	// like ApplyPlacement skips vanished ones.
	perSrc := make(map[int][]uint64)
	for _, k := range cands {
		perSrc[pm.owner(k)] = append(perSrc[pm.owner(k)], k)
	}
	vals, err := pm.gatherRecords(perSrc)
	if err != nil {
		return err
	}
	putOn := make(map[int][]uint64)
	shardVals := make(map[uint64]uint64)
	var split []uint64
	for _, k := range cands {
		if _, ok := vals[k]; !ok {
			continue
		}
		split = append(split, k)
		for d := 0; d < n; d++ {
			skey := shardKeyFor(k, d)
			putOn[d] = append(putOn[d], skey)
			shardVals[skey] = 0
		}
	}
	if len(split) > 0 {
		if err := pm.mutateRound(putOn, shardVals, nil); err != nil {
			return err
		}
		if pm.splitTrack == nil {
			pm.splitTrack = make(map[uint64]uint64)
		}
		for _, k := range split {
			for d := 0; d < n; d++ {
				pm.dir.setOwner(shardKeyFor(k, d), d)
				pm.splitTrack[shardKeyFor(k, d)] = 0
			}
			pm.dir.setSplit(k)
		}
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return nil
}

// UnsplitKeys reconciles and leaves the split state: the pending shard
// deltas fold into each key's home value and the shards are deleted,
// all through the paid reconciliation rounds. Keys not currently split
// are skipped. BatchSeconds reports the window's delta; the per-phase
// BatchPhases attribution is left untouched (this is a control-plane
// window, not an ApplyTxns batch).
func (pm *PartitionedMap) UnsplitKeys(keys []uint64) error {
	if pm.dir == nil {
		return fmt.Errorf("host: split-key execution needs a Directory placement")
	}
	var drop []uint64
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if !seen[k] && pm.dir.isSplit(k) {
			seen[k] = true
			drop = append(drop, k)
		}
	}
	if len(drop) == 0 {
		pm.BatchSeconds = 0
		return nil
	}
	slices.Sort(drop)
	wallBefore := pm.fleet.Stats().WallSeconds
	phases := pm.BatchPhases
	err := pm.reconcileSplitKeys(nil, drop, false)
	pm.BatchPhases = phases
	if err != nil {
		return err
	}
	pm.BatchSeconds = pm.fleet.Stats().WallSeconds - wallBefore
	return nil
}

// reconcileSplitKeys is the epoch merge: one coalesced gather of every
// key's home record and per-DPU delta shards, then one writeback-style
// apply round that folds each key's deltas into its home value and
// zeroes the shards (stay) or deletes them and clears the split state
// (drop). Both lists must hold currently-split keys. The fold units are
// single-op commit records executed by the writeback kernels — real
// apply cycles on simulated DPUs, the calibrated per-instruction rate
// for sampled shadow shards — and the phase deltas accumulate into
// BatchPhases like any other coordination round.
//
// With provision set (only from splitRewrite, whose splitPend tally is
// fresh for this batch), a staying key whose folded total covers its
// pending rewritten subtractions redistributes the total as escrow
// instead of zero-folding: each shard gets its pending amount plus an
// equal share of half the surplus, the home keeps the rest, and the key
// is marked in splitProv so the batch's subs stay rewritten. The
// splitTrack balances are set exactly at every fold either way.
func (pm *PartitionedMap) reconcileSplitKeys(stay, drop []uint64, provision bool) error {
	sc := &pm.sc
	n := pm.fleet.Size()
	if len(stay)+len(drop) == 0 {
		return nil
	}
	src := &sc.splitSrc
	src.reset()
	addKey := func(k uint64) {
		src.add(pm.owner(k), k)
		for d := 0; d < n; d++ {
			src.add(d, shardKeyFor(k, d))
		}
	}
	for _, k := range stay {
		addKey(k)
	}
	for _, k := range drop {
		addKey(k)
	}
	vals := sc.splitVals
	clear(vals)
	gatherBefore := pm.fleet.Stats().WallSeconds
	if err := pm.gatherRound(src, vals); err != nil {
		return err
	}
	pm.BatchPhases.GatherSeconds += pm.fleet.Stats().WallSeconds - gatherBefore

	// The fold round reuses the writeback-round buckets; it always runs
	// before executeRound/writebackRound touch them within a batch, and
	// both reset the buckets at entry.
	for _, id := range sc.wbTouched {
		sc.wbPerDPU[id] = sc.wbPerDPU[id][:0]
		sc.wbInstrBuckets[id] = 0
	}
	sc.wbTouched = sc.wbTouched[:0]
	sc.wbInstrs = sc.wbInstrs[:0]
	fold := func(k uint64, unsplit bool) {
		var delta uint64
		for d := 0; d < n; d++ {
			delta += vals[shardKeyFor(k, d)]
		}
		if provision && !unsplit {
			var pend uint64
			for d := 0; d < n; d++ {
				pend += sc.splitPend[shardKeyFor(k, d)]
			}
			if total := vals[k] + delta; pend > 0 && total >= pend {
				// Escrow provisioning: the total covers the batch's
				// pending subs, so instead of folding everything home the
				// fold seeds each shard with its pending amount plus an
				// equal headroom share of half the surplus. Σ alloc ≤
				// total by construction, so the home remainder never
				// underflows, and pm.Get (home + Σ shards) still reads
				// the exact logical value.
				head := (total - pend) / uint64(2*n)
				rest := total
				for d := 0; d < n; d++ {
					skey := shardKeyFor(k, d)
					alloc := sc.splitPend[skey] + head
					rest -= alloc
					if vals[skey] != alloc {
						sc.addWbUnit(d, sc.commitUnit(Op{Kind: OpPut, Key: skey, Value: alloc}))
					}
					pm.splitTrack[skey] = alloc
				}
				if vals[k] != rest {
					sc.addWbUnit(pm.owner(k), sc.commitUnit(Op{Kind: OpPut, Key: k, Value: rest}))
				}
				sc.splitProv[k] = true
				return
			}
		}
		if delta > 0 {
			// Split keys are always present at home (SplitKeys checks
			// presence, deletes unsplit first), so the fold is a put of
			// base + Σ deltas.
			sc.addWbUnit(pm.owner(k), sc.commitUnit(Op{Kind: OpPut, Key: k, Value: vals[k] + delta}))
		}
		for d := 0; d < n; d++ {
			skey := shardKeyFor(k, d)
			if unsplit {
				sc.addWbUnit(d, sc.commitUnit(Op{Kind: OpDelete, Key: skey}))
				delete(pm.splitTrack, skey)
			} else {
				if vals[skey] != 0 {
					sc.addWbUnit(d, sc.commitUnit(Op{Kind: OpPut, Key: skey, Value: 0}))
				}
				if pm.splitTrack != nil {
					pm.splitTrack[skey] = 0
				}
			}
		}
	}
	for _, k := range stay {
		fold(k, false)
	}
	for _, k := range drop {
		fold(k, true)
	}
	if err := pm.runSplitFoldRound(); err != nil {
		return err
	}
	for _, k := range drop {
		for d := 0; d < n; d++ {
			skey := shardKeyFor(k, d)
			pm.dir.setOwner(skey, hashOwner(skey, n)) // clears the override
		}
		pm.dir.clearSplit(k)
	}
	pm.SplitReconciles += len(stay) + len(drop)
	return nil
}

// runSplitFoldRound launches the reconciliation's bucketed commit units
// through the writeback kernels, charged like writebackRound: worst
// per-DPU instruction-stream scatter on the wire, real kernel cycles on
// simulated DPUs, the calibrated apply rate (refreshed from this
// round's simulated work) for shadow shards.
func (pm *PartitionedMap) runSplitFoldRound() error {
	sc := &pm.sc
	if len(sc.wbTouched) == 0 {
		return nil
	}
	before := pm.fleet.Stats()
	slices.Sort(sc.wbTouched)
	involved := sc.wbTouched
	maxScatter, maxShadowInstrs := 0, 0
	for _, id := range involved {
		bytes, instrs := 0, 0
		for _, u := range sc.wbPerDPU[id] {
			bytes += len(u.prog) * dpu.ApplyInstrBytes
			instrs += len(u.prog)
		}
		sc.wbInstrBuckets[id] = instrs
		if bytes > maxScatter {
			maxScatter = bytes
		}
		if pm.isShadow(id) && instrs > maxShadowInstrs {
			maxShadowInstrs = instrs
		}
	}
	spec := RoundSpec{
		Involved:     len(involved),
		ScatterBytes: maxScatter,
		IDs:          involved,
		Program:      pm.wbProgFn,
	}
	if pm.sampled {
		simIDs := sc.wbSimIDs[:0]
		for _, id := range involved {
			if pm.sim[id] {
				simIDs = append(simIDs, id)
			}
		}
		sc.wbSimIDs = simIDs
		spec.IDs = simIDs
		spec.AnalyticKernelSeconds = dpu.EstimateApplyKernelSeconds(pm.applyCycles, maxShadowInstrs, 0)
	}
	if err := pm.fleet.Round(spec); err != nil {
		return err
	}
	if pm.sampled {
		for _, id := range involved {
			if pm.sim[id] {
				continue
			}
			// All fold units are single-op commit records (ti < 0), so
			// the shadow runner never touches transaction results.
			if err := pm.shadowRunUnits(id, sc.wbPerDPU[id], nil); err != nil {
				return err
			}
		}
		var simSecs float64
		simInstrs := 0
		for _, id := range sc.wbSimIDs {
			simSecs += pm.exec[id].lastSeconds
			simInstrs += sc.wbInstrBuckets[id]
		}
		if simInstrs > 0 && simSecs > 0 {
			pm.applyCycles = simSecs * dpu.DefaultClockHz / float64(simInstrs)
		}
	}
	after := pm.fleet.Stats()
	pm.BatchPhases.ApplySeconds += after.LaunchSeconds - before.LaunchSeconds
	if wb := (after.WallSeconds - before.WallSeconds) - (after.LaunchSeconds - before.LaunchSeconds); wb > 0 {
		pm.BatchPhases.WritebackSeconds += wb
	}
	return nil
}

// splitRewrite is the batch pre-pass of split-key execution — see the
// protocol at the top of this file. It returns the batch to execute:
// the original slice when nothing qualifies for rewriting, or a scratch
// copy whose qualifying adds target delta shards (client transactions
// are never mutated in place). In coordinateAll mode (ApplyTransfers)
// nothing is ever rewritten — every touched split key reconciles and
// the batch runs on the historical host-coordinated path verbatim.
func (pm *PartitionedMap) splitRewrite(txns []Txn, coordinateAll bool) ([]Txn, error) {
	sc := &pm.sc
	dir := pm.dir
	clear(sc.splitTouch)
	sc.splitRewrites = sc.splitRewrites[:0]
	touched := false
	for i := range txns {
		for _, op := range txns[i].Ops {
			if !dir.isSplit(op.Key) {
				continue
			}
			touched = true
			f := sc.splitTouch[op.Key]
			switch {
			case op.Kind == OpAdd && !coordinateAll:
				f |= splitTouchAdd
			case op.Kind == OpSub && !coordinateAll:
				f |= splitTouchSub
			case op.Kind == OpGet:
				f |= splitTouchRead
			case op.Kind == OpDelete:
				f |= splitTouchWrite | splitTouchDelete
			default:
				f |= splitTouchWrite
			}
			sc.splitTouch[op.Key] = f
		}
	}
	if !touched {
		return txns, nil
	}
	n := pm.fleet.Size()

	// Tentative rewrite view and shard targets, computed once per
	// transaction assuming every candidate add and sub rewrites. The
	// targets stay fixed even when a key's subs are later suppressed
	// (coverage failed and the fold could not provision escrow):
	// recomputing them would shift other keys' pending-sub tallies
	// between shards after coverage was already decided, which could
	// manufacture the underflow coverage just ruled out. For batches
	// without sub candidates the tentative view coincides with the
	// final one, so this pass reproduces the historical add-only
	// targets exactly.
	tentative := func(op Op) bool {
		f := sc.splitTouch[op.Key]
		switch op.Kind {
		case OpAdd:
			return splitRewritable(f)
		case OpSub:
			return subCandidate(f)
		}
		return false
	}
	anySub := false
	for _, f := range sc.splitTouch {
		if subCandidate(f) {
			anySub = true
			break
		}
	}
	targets := ensureInts(&sc.splitTargets, len(txns))
	clear(sc.splitPend)
	for i := range txns {
		// Shard target: the owner of the transaction's first op that is
		// not itself rewritten — the DPU the transaction already
		// touches, keeping it confined. Pure counter transactions
		// spread round-robin by batch position.
		target := -1
		for _, op := range txns[i].Ops {
			if tentative(op) {
				continue
			}
			target = pm.owner(op.Key)
			break
		}
		if target < 0 {
			target = i % n
		}
		targets[i] = target
		if anySub {
			for _, op := range txns[i].Ops {
				if op.Kind == OpSub && subCandidate(sc.splitTouch[op.Key]) {
					sc.splitPend[shardKeyFor(op.Key, target)] += op.Value
				}
			}
		}
	}

	// Coverage: a candidate key's subs rewrite without any reconcile
	// when every shard's tracked balance covers its pending
	// subtraction. Uncovered candidates reconcile, and the fold decides
	// between escrow provisioning (subs stay rewritten) and the exact
	// zero-fold suppression.
	clear(sc.splitSubOK)
	clear(sc.splitProv)
	if anySub {
		for k, f := range sc.splitTouch {
			if !subCandidate(f) {
				continue
			}
			covered := true
			for d := 0; d < n; d++ {
				skey := shardKeyFor(k, d)
				if p := sc.splitPend[skey]; p > 0 && pm.splitTrack[skey] < p {
					covered = false
					break
				}
			}
			if covered {
				sc.splitSubOK[k] = true
			}
		}
	}
	recon, drops := sc.splitRecon[:0], sc.splitDrop[:0]
	for k, f := range sc.splitTouch {
		switch {
		case f&splitTouchDelete != 0:
			drops = append(drops, k)
		case f&(splitTouchRead|splitTouchWrite) != 0:
			recon = append(recon, k)
		case subCandidate(f) && !sc.splitSubOK[k]:
			recon = append(recon, k)
		}
	}
	slices.Sort(recon)
	slices.Sort(drops)
	sc.splitRecon, sc.splitDrop = recon, drops
	if len(recon) > 0 || len(drops) > 0 {
		if err := pm.reconcileSplitKeys(recon, drops, !coordinateAll); err != nil {
			return nil, err
		}
	}
	for k := range sc.splitProv {
		sc.splitSubOK[k] = true
	}

	// The final rewrite view: adds rewrite as before unless the key's
	// subs were suppressed (a suppressed sub observes the home value,
	// so the adds before it must land there too); subs rewrite exactly
	// when covered or provisioned.
	rewriteOp := func(op Op) bool {
		f := sc.splitTouch[op.Key]
		switch op.Kind {
		case OpAdd:
			return splitRewritable(f) && (f&splitTouchSub == 0 || sc.splitSubOK[op.Key])
		case OpSub:
			return sc.splitSubOK[op.Key]
		}
		return false
	}
	rewrite := false
	for k, f := range sc.splitTouch {
		if sc.splitSubOK[k] || (splitRewritable(f) && f&splitTouchSub == 0) {
			rewrite = true
			break
		}
	}
	if !rewrite || coordinateAll {
		return txns, nil
	}
	work := append(sc.splitTxns[:0], txns...)
	sc.splitOps = sc.splitOps[:0]
	for i := range work {
		ops := work[i].Ops
		needs := false
		for _, op := range ops {
			if rewriteOp(op) {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		target := targets[i]
		start := len(sc.splitOps)
		for _, op := range ops {
			if rewriteOp(op) {
				skey := shardKeyFor(op.Key, target)
				sc.splitRewrites = append(sc.splitRewrites, splitRewriteRec{
					ti: int32(i), sub: op.Kind == OpSub, skey: skey, val: op.Value,
				})
				op.Key = skey
			}
			sc.splitOps = append(sc.splitOps, op)
		}
		end := len(sc.splitOps)
		work[i].Ops = sc.splitOps[start:end:end]
	}
	sc.splitTxns = work
	return work, nil
}
