package host

import (
	"fmt"
	"io"

	"pimstm/internal/energy"
	"pimstm/internal/lee"
)

// Fig7Point is one x-axis point of Fig 7: fleet size and the speedup of
// the PIM execution over the CPU baseline, with the Fleet's modeled
// launch/transfer breakdown alongside.
type Fig7Point struct {
	DPUs       int
	DPUSeconds float64
	CPUSeconds float64
	Speedup    float64
	// TransferSeconds and QuiescentSeconds break DPUSeconds' wall clock
	// down: host↔DPU engine time and total host-owned window time.
	TransferSeconds  float64
	QuiescentSeconds float64
}

// Fig7Series is one workload curve of Fig 7.
type Fig7Series struct {
	Workload string
	Points   []Fig7Point
}

// Fig7Options parameterize the multi-DPU sweep.
type Fig7Options struct {
	// DPUCounts lists the fleet sizes; defaults to the paper's axis
	// {1, 500, 1000, 1500, 2000, 2500}.
	DPUCounts []int
	// PointsPerDPU scales the KMeans shards (paper: 200K).
	PointsPerDPU int
	// PathsPerInstance scales the Labyrinth instances (paper: 100).
	PathsPerInstance int
	// Tasklets per DPU.
	Tasklets int
	// CPUThreadsKMeans / CPUThreadsLabyrinth are the baseline thread
	// counts (paper's optima: 4 and 8).
	CPUThreadsKMeans    int
	CPUThreadsLabyrinth int
	// LabyrinthCPUParallel is how many instances the CPU solves
	// concurrently (paper: 4 processes to fill 32 hardware threads).
	LabyrinthCPUParallel int
}

func (o *Fig7Options) fill() {
	if len(o.DPUCounts) == 0 {
		o.DPUCounts = []int{1, 500, 1000, 1500, 2000, 2500}
	}
	if o.PointsPerDPU == 0 {
		o.PointsPerDPU = 2000
	}
	if o.PathsPerInstance == 0 {
		o.PathsPerInstance = 40
	}
	if o.Tasklets == 0 {
		o.Tasklets = 11
	}
	if o.CPUThreadsKMeans == 0 {
		o.CPUThreadsKMeans = 4
	}
	if o.CPUThreadsLabyrinth == 0 {
		o.CPUThreadsLabyrinth = 8
	}
	if o.LabyrinthCPUParallel == 0 {
		o.LabyrinthCPUParallel = 4
	}
}

// kmeansVariants describes the two Fig 7a curves.
var kmeansVariants = []struct {
	name string
	k    int
}{
	{"KMeans LC", 15},
	{"KMeans HC", 2},
}

// labyrinthVariants describes the three Fig 7b curves.
var labyrinthVariants = []struct {
	name    string
	x, y, z int
}{
	{"Labyrinth S", 16, 16, 3},
	{"Labyrinth M", 32, 32, 3},
	{"Labyrinth L", 128, 128, 3},
}

// Fig7KMeans produces the Fig 7a speedup curves. The CPU baseline is
// calibrated once per variant (its cost is exactly linear in the total
// input size) and the DPU fleet is simulated per fleet size.
func Fig7KMeans(opt Fig7Options) ([]Fig7Series, error) {
	opt.fill()
	var out []Fig7Series
	for _, v := range kmeansVariants {
		perPoint, err := KMeansCPUSecondsPerPoint(v.k, 14, opt.CPUThreadsKMeans)
		if err != nil {
			return nil, err
		}
		s := Fig7Series{Workload: v.name}
		for _, n := range opt.DPUCounts {
			cfg := KMeansFleetConfig{K: v.k, Dims: 14, PointsPerDPU: opt.PointsPerDPU, Rounds: 3}
			res, err := RunKMeansFleet(cfg, FleetOptions{DPUs: n, Tasklets: opt.Tasklets})
			if err != nil {
				return nil, err
			}
			cpu := perPoint * float64(res.TotalPoints) * float64(cfg.Rounds)
			s.Points = append(s.Points, Fig7Point{
				DPUs:             n,
				DPUSeconds:       res.TotalSeconds,
				CPUSeconds:       cpu,
				Speedup:          cpu / res.TotalSeconds,
				TransferSeconds:  res.Pipeline.TransferSeconds,
				QuiescentSeconds: res.Pipeline.QuiescentSeconds,
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig7Labyrinth produces the Fig 7b speedup curves. Each DPU solves an
// independent instance; the CPU solves LabyrinthCPUParallel instances
// concurrently with CPUThreadsLabyrinth threads each.
func Fig7Labyrinth(opt Fig7Options) ([]Fig7Series, error) {
	opt.fill()
	var out []Fig7Series
	for _, v := range labyrinthVariants {
		g := lee.Grid{X: v.x, Y: v.y, Z: v.z}
		perInstance := LabyrinthCPUSecondsPerInstance(g, opt.PathsPerInstance, opt.CPUThreadsLabyrinth)
		s := Fig7Series{Workload: v.name}
		for _, n := range opt.DPUCounts {
			cfg := LabyrinthFleetConfig{X: v.x, Y: v.y, Z: v.z, PathsPerInstance: opt.PathsPerInstance}
			res, err := RunLabyrinthFleet(cfg, FleetOptions{DPUs: n, Tasklets: opt.Tasklets})
			if err != nil {
				return nil, err
			}
			batches := (n + opt.LabyrinthCPUParallel - 1) / opt.LabyrinthCPUParallel
			cpu := perInstance * float64(batches)
			s.Points = append(s.Points, Fig7Point{
				DPUs:             n,
				DPUSeconds:       res.TotalSeconds,
				CPUSeconds:       cpu,
				Speedup:          cpu / res.TotalSeconds,
				TransferSeconds:  res.Pipeline.TransferSeconds,
				QuiescentSeconds: res.Pipeline.QuiescentSeconds,
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig8Row is one bar pair of Fig 8: speedup and energy gain at the full
// fleet for one workload.
type Fig8Row struct {
	Workload   string
	Speedup    float64
	EnergyGain float64
}

// Fig8 reproduces the full-fleet (paper: 2500 DPUs) speedup and energy
// comparison for all five multi-DPU workloads.
func Fig8(dpus int, opt Fig7Options) ([]Fig8Row, error) {
	opt.fill()
	opt.DPUCounts = []int{dpus}
	var rows []Fig8Row
	lab, err := Fig7Labyrinth(opt)
	if err != nil {
		return nil, err
	}
	km, err := Fig7KMeans(opt)
	if err != nil {
		return nil, err
	}
	for _, s := range append(lab, km...) {
		p := s.Points[0]
		rows = append(rows, Fig8Row{
			Workload:   s.Workload,
			Speedup:    p.Speedup,
			EnergyGain: energy.Gain(s.Workload, p.CPUSeconds, p.DPUSeconds),
		})
	}
	return rows, nil
}

// RenderFig7 writes the speedup curves as a table.
func RenderFig7(w io.Writer, title string, series []Fig7Series) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s", "#DPUs")
	for _, p := range series[0].Points {
		fmt.Fprintf(w, "%12d", p.DPUs)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Workload)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%12.3f", p.Speedup)
		}
		fmt.Fprintln(w)
	}
}

// RenderFig8 writes the speedup/energy bars as a table.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "== fig8: speedup and energy gains at full fleet ==\n")
	fmt.Fprintf(w, "%-14s %10s %12s\n", "workload", "speedup", "energy gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.2f %12.2f\n", r.Workload, r.Speedup, r.EnergyGain)
	}
}
