package host

import (
	"errors"
	"sync"
	"testing"

	"pimstm/internal/core"
)

// submit is the test shorthand: a Submit that must be accepted.
func submit(t *testing.T, s *Submitter, txn Txn, arrival float64) *Future {
	t.Helper()
	f, err := s.Submit(txn, arrival)
	if err != nil {
		t.Fatalf("submit rejected: %v", err)
	}
	return f
}

// one wraps a single op as the 1-op transaction the API requires.
func one(op Op) Txn { return Txn{Ops: []Op{op}} }

// TestSubmitterAdaptiveBatching drives a deterministic txn stream and
// checks every flush trigger: size, modeled delay, and drain.
func TestSubmitterAdaptiveBatching(t *testing.T) {
	pm := newPM(t, 4)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3})

	var futs []*Future
	// 8 back-to-back 1-op txns fill a batch: size flush.
	for k := uint64(0); k < 8; k++ {
		futs = append(futs, submit(t, s, one(Op{Kind: OpPut, Key: k, Value: k * 10}), float64(k)*1e-6))
	}
	// 3 txns at t=10ms wait alone...
	for k := uint64(8); k < 11; k++ {
		futs = append(futs, submit(t, s, one(Op{Kind: OpPut, Key: k, Value: k * 10}), 10e-3))
	}
	// ...until a txn at t=20ms proves their 1 ms deadline passed: delay
	// flush of the 3, then the straggler drains on Close.
	futs = append(futs, submit(t, s, one(Op{Kind: OpGet, Key: 0}), 20e-3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for i, f := range futs[:11] {
		res := f.Wait()
		if res.Err != nil || !res.Committed || !res.Results[0].OK {
			t.Fatalf("put %d: %+v", i, res)
		}
		if res.LatencySeconds <= 0 {
			t.Fatalf("txn %d modeled latency %g", i, res.LatencySeconds)
		}
	}
	if res := futs[11].Wait(); !res.Results[0].OK || res.Results[0].Value != 0 {
		t.Fatalf("get after puts: %+v", res)
	}

	st := s.Stats()
	if st.Submitted != 12 || st.Txns != 12 || st.Batches != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.SizeFlushes != 1 || st.DelayFlushes != 1 || st.DrainFlushes != 1 {
		t.Fatalf("flush reasons: %+v", st)
	}
	if st.MaxBatchOps != 8 {
		t.Fatalf("max batch = %d", st.MaxBatchOps)
	}

	// Within the delay-flushed batch all txns arrived together and
	// completed together; the size-flushed batch's first txn waited
	// longer than its last.
	lat0 := futs[0].Wait().LatencySeconds
	lat7 := futs[7].Wait().LatencySeconds
	if lat0 <= lat7 {
		t.Fatalf("older txn must model more wait: %g vs %g", lat0, lat7)
	}
}

// TestSubmitterCountsOpsNotTxns: MaxBatch is an op bound, so two 4-op
// transactions fill an 8-op batch.
func TestSubmitterCountsOpsNotTxns(t *testing.T) {
	pm := newPM(t, 4)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1})
	mk := func(base uint64) Txn {
		var ops []Op
		for k := base; k < base+4; k++ {
			ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
		}
		return Txn{Ops: ops}
	}
	f1 := submit(t, s, mk(0), 1e-6)
	f2 := submit(t, s, mk(4), 2e-6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range []*Future{f1, f2} {
		res := f.Wait()
		if res.Err != nil || !res.Committed || len(res.Results) != 4 {
			t.Fatalf("txn %d: %+v", i, res)
		}
	}
	st := s.Stats()
	if st.Submitted != 8 || st.Txns != 2 || st.SizeFlushes != 1 {
		t.Fatalf("two 4-op txns must size-flush an 8-op batch: %+v", st)
	}
}

// TestSubmitterDelayBoundsOldestArrival: with concurrent clients the
// queue order need not follow arrival order; the MaxDelay bound must
// track the oldest *arrival*, and a delay flush ships only the txns
// that had arrived by the deadline.
func TestSubmitterDelayBoundsOldestArrival(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6})
	late := submit(t, s, one(Op{Kind: OpPut, Key: 1, Value: 1}), 10e-3) // enqueued first, arrives later
	old := submit(t, s, one(Op{Kind: OpPut, Key: 2, Value: 2}), 0)      // the true oldest
	trig := submit(t, s, one(Op{Kind: OpPut, Key: 3, Value: 3}), 1e-3)  // proves old's deadline passed
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	res := old.Wait()
	if res.Err != nil || !res.Results[0].OK {
		t.Fatalf("oldest txn: %+v", res)
	}
	// Keyed off queue order the oldest txn would ride the 10 ms
	// straggler's batch; keyed off arrival it flushes at its 300 µs
	// deadline plus one batch wall clock.
	if res.LatencySeconds > 5e-3 {
		t.Fatalf("oldest txn waited %.3f ms, deadline was 0.3 ms", res.LatencySeconds*1e3)
	}
	for _, f := range []*Future{late, trig} {
		if r := f.Wait(); r.Err != nil || !r.Results[0].OK || r.LatencySeconds <= 0 {
			t.Fatalf("straggler unresolved: %+v", r)
		}
	}
	if st := s.Stats(); st.DelayFlushes != 1 || st.Txns != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSubmitterMatchesApplyTxns: the front-end is a scheduler, not a
// different store — results agree with direct transaction application,
// multi-key cross-DPU transactions included.
func TestSubmitterMatchesApplyTxns(t *testing.T) {
	var txns []Txn
	for i := 0; i < 30; i++ {
		switch i % 4 {
		case 0:
			txns = append(txns, one(Op{Kind: OpPut, Key: uint64(i), Value: uint64(i) * 7}))
		case 1:
			txns = append(txns, one(Op{Kind: OpGet, Key: uint64(i - 1)}))
		case 2:
			txns = append(txns, Txn{Ops: []Op{
				{Kind: OpPut, Key: uint64(i), Value: uint64(i)},
				{Kind: OpPut, Key: uint64(i + 100), Value: uint64(i + 100)},
			}})
		default:
			txns = append(txns, Txn{Ops: []Op{
				{Kind: OpSub, Key: uint64(i - 1), Value: 1},
				{Kind: OpAdd, Key: uint64(i + 99), Value: 1},
			}})
		}
	}

	direct := newPM(t, 3)
	var want []TxnResult
	for _, txn := range txns {
		// One txn per batch: the submitter's per-batch transactions see
		// the same sequential order.
		res, err := direct.ApplyTxns([]Txn{txn})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res[0])
	}

	pm := newPM(t, 3)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 1})
	var futs []*Future
	for i, txn := range txns {
		futs = append(futs, submit(t, s, txn, float64(i)*1e-6))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		got := f.Wait()
		if got.Committed != want[i].Committed || !errors.Is(got.Err, want[i].Err) {
			t.Fatalf("txn %d: submitter %+v, direct %+v", i, got, want[i])
		}
		for j := range got.Results {
			if got.Results[j] != want[i].Results[j] {
				t.Fatalf("txn %d op %d: submitter %+v, direct %+v", i, j, got.Results[j], want[i].Results[j])
			}
		}
	}
	if pm.Len() != direct.Len() {
		t.Fatalf("stores diverged: %d vs %d", pm.Len(), direct.Len())
	}
}

// TestSubmitterConcurrentClients hammers Submit from many goroutines
// (the -race target of the acceptance criteria).
func TestSubmitterConcurrentClients(t *testing.T) {
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 256, Capacity: 2048, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 16, MaxDelaySeconds: 1e-3, Queue: 8})

	const clients, each = 8, 50
	futs := make([][]*Future, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := uint64(c*each + i)
				f, err := s.Submit(one(Op{Kind: OpPut, Key: key, Value: key}), float64(i)*1e-6)
				if err != nil {
					t.Errorf("client %d submit: %v", c, err)
					return
				}
				futs[c] = append(futs[c], f)
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for c := range futs {
		for i, f := range futs[c] {
			if res := f.Wait(); res.Err != nil || !res.Results[0].OK || res.LatencySeconds < 0 {
				t.Fatalf("client %d txn %d: %+v", c, i, res)
			}
		}
	}
	if pm.Len() != clients*each {
		t.Fatalf("store holds %d of %d keys", pm.Len(), clients*each)
	}
}

// TestSubmitterBackpressure: a tiny admission queue must throttle, not
// deadlock or drop.
func TestSubmitterBackpressure(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 2, Queue: 1})
	var futs []*Future
	for k := uint64(0); k < 20; k++ {
		futs = append(futs, submit(t, s, one(Op{Kind: OpPut, Key: k, Value: k}), float64(k)*1e-6))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if res := f.Wait(); res.Err != nil || !res.Results[0].OK {
			t.Fatalf("txn %d: %+v", i, res)
		}
	}
	if pm.Len() != 20 {
		t.Fatalf("len = %d", pm.Len())
	}
}

// TestSubmitterClosedSentinels: Flush forces the pending batch; after
// Close, Submit, Flush and a second Close all return ErrSubmitterClosed
// instead of panicking on the closed queue.
func TestSubmitterClosedSentinels(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 64})
	f := submit(t, s, one(Op{Kind: OpPut, Key: 1, Value: 11}), 0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if res := f.Wait(); res.Err != nil || !res.Results[0].OK {
		t.Fatalf("flushed txn unresolved: %+v", res)
	}
	if st := s.Stats(); st.DrainFlushes != 1 || st.Batches != 1 {
		t.Fatalf("flush not counted: %+v", st)
	}
	if err := s.Flush(); err != nil { // empty flush is a no-op
		t.Fatal(err)
	}
	if _, err := s.Submit(Txn{}, 0); err == nil {
		t.Fatal("empty transaction accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrSubmitterClosed) {
		t.Fatalf("second Close returned %v, want ErrSubmitterClosed", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrSubmitterClosed) {
		t.Fatalf("Flush after Close returned %v, want ErrSubmitterClosed", err)
	}
	if _, err := s.Submit(one(Op{Kind: OpGet, Key: 1}), 1); !errors.Is(err, ErrSubmitterClosed) {
		t.Fatalf("Submit after Close returned %v, want ErrSubmitterClosed", err)
	}
}
