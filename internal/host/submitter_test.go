package host

import (
	"errors"
	"sync"
	"testing"

	"pimstm/internal/core"
)

// TestSubmitterAdaptiveBatching drives a deterministic op stream and
// checks every flush trigger: size, modeled delay, and drain.
func TestSubmitterAdaptiveBatching(t *testing.T) {
	pm := newPM(t, 4)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 8, MaxDelaySeconds: 1e-3})

	var futs []*Future
	// 8 back-to-back ops fill a batch: size flush.
	for k := uint64(0); k < 8; k++ {
		futs = append(futs, s.Submit(Op{Kind: OpPut, Key: k, Value: k * 10}, float64(k)*1e-6))
	}
	// 3 ops at t=10ms wait alone...
	for k := uint64(8); k < 11; k++ {
		futs = append(futs, s.Submit(Op{Kind: OpPut, Key: k, Value: k * 10}, 10e-3))
	}
	// ...until an op at t=20ms proves their 1 ms deadline passed: delay
	// flush of the 3, then the straggler drains on Close.
	futs = append(futs, s.Submit(Op{Kind: OpGet, Key: 0}, 20e-3))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for i, f := range futs[:11] {
		res, lat := f.Wait()
		if res.Err != nil || !res.OK {
			t.Fatalf("put %d: %+v", i, res)
		}
		if lat <= 0 {
			t.Fatalf("op %d modeled latency %g", i, lat)
		}
	}
	if res, _ := futs[11].Wait(); !res.OK || res.Value != 0 {
		t.Fatalf("get after puts: %+v", res)
	}

	st := s.Stats()
	if st.Submitted != 12 || st.Batches != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.SizeFlushes != 1 || st.DelayFlushes != 1 || st.DrainFlushes != 1 {
		t.Fatalf("flush reasons: %+v", st)
	}
	if st.MaxBatchOps != 8 {
		t.Fatalf("max batch = %d", st.MaxBatchOps)
	}

	// Within the delay-flushed batch all ops arrived together and
	// completed together; the size-flushed batch's first op waited
	// longer than its last.
	_, lat0 := futs[0].Wait()
	_, lat7 := futs[7].Wait()
	if lat0 <= lat7 {
		t.Fatalf("older op must model more wait: %g vs %g", lat0, lat7)
	}
}

// TestSubmitterDelayBoundsOldestArrival: with concurrent clients the
// queue order need not follow arrival order; the MaxDelay bound must
// track the oldest *arrival*, and a delay flush ships only the ops
// that had arrived by the deadline.
func TestSubmitterDelayBoundsOldestArrival(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6})
	late := s.Submit(Op{Kind: OpPut, Key: 1, Value: 1}, 10e-3) // enqueued first, arrives later
	old := s.Submit(Op{Kind: OpPut, Key: 2, Value: 2}, 0)      // the true oldest
	trig := s.Submit(Op{Kind: OpPut, Key: 3, Value: 3}, 1e-3)  // proves old's deadline passed
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	res, lat := old.Wait()
	if res.Err != nil || !res.OK {
		t.Fatalf("oldest op: %+v", res)
	}
	// Keyed off queue order the oldest op would ride the 10 ms
	// straggler's batch; keyed off arrival it flushes at its 300 µs
	// deadline plus one batch wall clock.
	if lat > 5e-3 {
		t.Fatalf("oldest op waited %.3f ms, deadline was 0.3 ms", lat*1e3)
	}
	for _, f := range []*Future{late, trig} {
		if r, l := f.Wait(); r.Err != nil || !r.OK || l <= 0 {
			t.Fatalf("straggler unresolved: %+v", r)
		}
	}
	if st := s.Stats(); st.DelayFlushes != 1 || st.Submitted != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSubmitterMatchesApplyBatch: the front-end is a scheduler, not a
// different store — results agree with a direct batch.
func TestSubmitterMatchesApplyBatch(t *testing.T) {
	ops := make([]Op, 40)
	for i := range ops {
		switch i % 3 {
		case 0:
			ops[i] = Op{Kind: OpPut, Key: uint64(i), Value: uint64(i) * 7}
		case 1:
			ops[i] = Op{Kind: OpGet, Key: uint64(i - 1)}
		default:
			ops[i] = Op{Kind: OpDelete, Key: uint64(i - 2)}
		}
	}

	direct := newPM(t, 3)
	want := make([]OpResult, 0, len(ops))
	for _, op := range ops {
		// One op per batch: the submitter's per-batch transactions see
		// the same sequential order.
		res, err := direct.ApplyBatch([]Op{op})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res[0])
	}

	pm := newPM(t, 3)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 1})
	var futs []*Future
	for i, op := range ops {
		futs = append(futs, s.Submit(op, float64(i)*1e-6))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		got, _ := f.Wait()
		if got != want[i] {
			t.Fatalf("op %d: submitter %+v, direct %+v", i, got, want[i])
		}
	}
	if pm.Len() != direct.Len() {
		t.Fatalf("stores diverged: %d vs %d", pm.Len(), direct.Len())
	}
}

// TestSubmitterConcurrentClients hammers Submit from many goroutines
// (the -race target of the acceptance criteria).
func TestSubmitterConcurrentClients(t *testing.T) {
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 256, Capacity: 2048, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 16, MaxDelaySeconds: 1e-3, Queue: 8})

	const clients, each = 8, 50
	futs := make([][]*Future, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := uint64(c*each + i)
				futs[c] = append(futs[c], s.Submit(Op{Kind: OpPut, Key: key, Value: key}, float64(i)*1e-6))
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for c := range futs {
		for i, f := range futs[c] {
			if res, lat := f.Wait(); res.Err != nil || !res.OK || lat < 0 {
				t.Fatalf("client %d op %d: %+v", c, i, res)
			}
		}
	}
	if pm.Len() != clients*each {
		t.Fatalf("store holds %d of %d keys", pm.Len(), clients*each)
	}
}

// TestSubmitterBackpressure: a tiny admission queue must throttle, not
// deadlock or drop.
func TestSubmitterBackpressure(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 2, Queue: 1})
	var futs []*Future
	for k := uint64(0); k < 20; k++ {
		futs = append(futs, s.Submit(Op{Kind: OpPut, Key: k, Value: k}, float64(k)*1e-6))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if res, _ := f.Wait(); res.Err != nil || !res.OK {
			t.Fatalf("op %d: %+v", i, res)
		}
	}
	if pm.Len() != 20 {
		t.Fatalf("len = %d", pm.Len())
	}
}

// TestSubmitterFlushAndClose: Flush forces the pending batch, Close is
// idempotent, and late Submits resolve with ErrSubmitterClosed.
func TestSubmitterFlushAndClose(t *testing.T) {
	pm := newPM(t, 2)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 64})
	f := s.Submit(Op{Kind: OpPut, Key: 1, Value: 11}, 0)
	s.Flush()
	if res, _ := f.Wait(); res.Err != nil || !res.OK {
		t.Fatalf("flushed op unresolved: %+v", res)
	}
	if st := s.Stats(); st.DrainFlushes != 1 || st.Batches != 1 {
		t.Fatalf("flush not counted: %+v", st)
	}
	s.Flush() // empty flush is a no-op
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	s.Flush() // flush after close is a no-op
	late := s.Submit(Op{Kind: OpGet, Key: 1}, 1)
	if res, _ := late.Wait(); !errors.Is(res.Err, ErrSubmitterClosed) {
		t.Fatalf("late submit resolved %+v", res)
	}
}
