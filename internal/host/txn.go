package host

import (
	"fmt"
	"sync"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// This file is the transactional serving core: host.Txn is the unit of
// submission everywhere — a client submits ordered groups of Ops over
// arbitrary keys, and the store commits each group atomically. The two
// execution tiers mirror the paper's cost cliff:
//
//   - A transaction whose keys all live on one DPU runs as a single
//     PIM-STM transaction inside that DPU's batch kernel — multi-key
//     atomicity is exactly what the STM gives natively, so it costs no
//     more than the ops themselves.
//   - A transaction spanning DPUs is CPU-coordinated in the quiescent
//     window (§3.1): its keys ride one coalesced snapshot gather, the
//     host applies the read-modify-writes against the snapshot in batch
//     order, and the changed records ride one coalesced writeback
//     scatter — the ApplyTransfers machinery generalized to arbitrary
//     op groups.
//
// Conflicts inside one batch serialize deterministically: transactions
// that share a key one of them writes — where at least one party is
// multi-op or carries a guarded read-modify-write — execute in batch
// order (the one-tasklet-per-key rule generalized to one tasklet per
// conflict group; cross-DPU groups serialize on the host). Between
// plain single-op transactions the PR 2/3 semantics are preserved
// verbatim: each op is an independent concurrent transaction, reads of
// replicated keys spread over fresh copies, and same-key order within a
// batch is unspecified — which keeps every pre-Txn artifact
// byte-identical.

// Txn is an ordered group of operations committed atomically: all of
// its writes apply, or — when a guarded op (OpAdd/OpSub) fails — none
// do. Later ops observe earlier ops' effects within the transaction,
// and the read results are returned to the client as a unit.
type Txn struct {
	Ops []Op
}

// NewTxn builds a transaction over the given ops.
func NewTxn(ops ...Op) Txn { return Txn{Ops: ops} }

// TxnResult is the outcome of one Txn.
type TxnResult struct {
	// Results holds one OpResult per op, in order. When the transaction
	// aborted, ops after the failing guard are zero.
	Results []OpResult
	// Committed reports whether the transaction's writes applied. A
	// guarded op that fails (missing key, underflow) aborts the whole
	// transaction.
	Committed bool
	// LatencySeconds is the modeled commit latency (queue wait + batch
	// wall clock) when the transaction went through a Submitter; zero
	// for direct ApplyTxns calls.
	LatencySeconds float64
	// Err is the first store-level error the transaction hit (e.g. a
	// partition out of capacity).
	Err error
}

// txnWrite is one pending write in an evaluating transaction's overlay.
type txnWrite struct {
	val uint64
	del bool
}

// evalTxn executes the ordered ops of one transaction against a store
// view with all-or-nothing semantics: reads see earlier writes of the
// same transaction through the overlay, guarded ops (OpAdd/OpSub) abort
// the transaction when their key is missing or the subtraction would
// underflow, and nothing is applied to the view itself. It returns the
// written keys in first-write order, their final images, the pre-txn
// images (what a failed flush must restore), and whether the
// transaction commits; per-op results are written into results (which
// the caller zeroes between attempts). Deletes of keys that were never
// present net out of the write set, so a writeback never pays for
// deleting nothing.
func evalTxn(ops []Op, results []OpResult, lookup func(uint64) (uint64, bool)) ([]uint64, map[uint64]txnWrite, map[uint64]txnWrite, bool) {
	var order []uint64
	writes := make(map[uint64]txnWrite, len(ops))
	prior := make(map[uint64]txnWrite, len(ops))
	read := func(k uint64) (uint64, bool) {
		if w, ok := writes[k]; ok {
			if w.del {
				return 0, false
			}
			return w.val, true
		}
		return lookup(k)
	}
	write := func(k uint64, w txnWrite) {
		if _, seen := writes[k]; !seen {
			order = append(order, k)
			v, present := lookup(k)
			prior[k] = txnWrite{val: v, del: !present}
		}
		writes[k] = w
	}
	for j := range ops {
		op := ops[j]
		res := &results[j]
		switch op.Kind {
		case OpGet:
			res.Value, res.OK = read(op.Key)
		case OpPut:
			_, present := read(op.Key)
			res.OK = !present
			write(op.Key, txnWrite{val: op.Value})
		case OpDelete:
			_, res.OK = read(op.Key)
			write(op.Key, txnWrite{del: true})
		case OpAdd:
			v, present := read(op.Key)
			if !present {
				return nil, nil, nil, false
			}
			res.Value, res.OK = v+op.Value, true
			write(op.Key, txnWrite{val: v + op.Value})
		case OpSub:
			v, present := read(op.Key)
			if !present || v < op.Value {
				return nil, nil, nil, false
			}
			res.Value, res.OK = v-op.Value, true
			write(op.Key, txnWrite{val: v - op.Value})
		}
	}
	out := order[:0]
	for _, k := range order {
		if writes[k].del && prior[k].del {
			delete(writes, k)
			continue
		}
		out = append(out, k)
	}
	return out, writes, prior, true
}

// isRMW reports whether the op kind is a guarded read-modify-write.
func isRMW(k OpKind) bool { return k == OpAdd || k == OpSub }

// classifyOps is the shared owner analysis: the single DPU owning
// every key of the op group (-1 when the keys span DPUs), and whether
// the group is serializing (multi-op, or carrying a guarded RMW — the
// transactions that impose batch-order serialization on every
// transaction sharing a written key with them). Both ApplyTxns's
// conflict grouping and the lane schedulers classify through this one
// function, so the store and the scheduler cannot disagree about which
// transactions coordinate.
func classifyOps(ops []Op, owner func(uint64) int) (soleDPU int, serializing bool) {
	if len(ops) == 0 {
		return -1, false
	}
	serializing = len(ops) > 1
	soleDPU = owner(ops[0].Key)
	for _, op := range ops {
		if isRMW(op.Kind) {
			serializing = true
		}
		if soleDPU >= 0 && owner(op.Key) != soleDPU {
			soleDPU = -1
		}
	}
	return soleDPU, serializing
}

// LaneOf classifies one transaction against the store's current
// placement: LaneConfined when a single DPU owns every key (the
// transaction commits natively inside that DPU's batch kernel),
// LaneCoordinated when the keys span DPUs (it pays the CPU-coordinated
// snapshot and writeback rounds). This is the classifier NewSubmitter
// binds into lane-segregating schedulers; it shares classifyOps with
// ApplyTxns, so a batch the scheduler labels confined never
// coordinates on its own (only a placement change between admission
// and flush, or an empty transaction, can shift a lane).
func (pm *PartitionedMap) LaneOf(txn Txn) Lane {
	if sole, _ := classifyOps(txn.Ops, pm.owner); sole < 0 && len(txn.Ops) > 0 {
		return LaneCoordinated
	}
	return LaneConfined
}

// txnMeta is applyTxns' per-transaction routing analysis.
type txnMeta struct {
	// soleDPU is the single owner DPU of every key (-1 when cross).
	soleDPU int
	// serializing transactions impose batch-order serialization on
	// every transaction they share a written key with: multi-op groups
	// (their atomicity needs an order) and guarded RMW ops (their
	// outcome depends on one).
	serializing bool
	cross       bool
	coordinated bool
	// group pins on-DPU conflict groups to one tasklet (-1 ungrouped).
	group int
}

// classifyTxns analyzes every transaction and resolves the batch's
// conflict groups: transactions sharing a key at least one of them
// writes — with a serializing party involved — are unioned, and a group
// containing a cross-DPU transaction is coordinated as a whole (its
// single-DPU members cannot run inside their DPU without racing the
// host-applied writes). With coordinateAll every transaction is
// coordinated regardless (the ApplyTransfers compatibility mode, which
// keeps that path's cost model bit-for-bit). A batch of plain single
// ops — the ApplyBatch hot path — takes the early exit and allocates
// nothing per transaction.
func (pm *PartitionedMap) classifyTxns(txns []Txn, coordinateAll bool) []txnMeta {
	metas := make([]txnMeta, len(txns))
	anyTxnSerializing := false
	for i := range txns {
		m := &metas[i]
		m.group = -1
		m.soleDPU = -1
		m.coordinated = coordinateAll
		ops := txns[i].Ops
		if len(ops) == 0 {
			continue
		}
		m.soleDPU, m.serializing = classifyOps(ops, pm.owner)
		m.cross = m.soleDPU < 0
		if m.serializing {
			anyTxnSerializing = true
		}
	}
	// No serializing transaction ⇒ no multi-op or RMW party anywhere,
	// so no conflict groups and nothing cross-DPU: done.
	if coordinateAll || !anyTxnSerializing {
		return metas
	}

	// Second pass, only for batches that can actually conflict: which
	// transactions touch each key, is it written, and is a serializing
	// party involved?
	touchers := make(map[uint64][]int)
	written := make(map[uint64]bool)
	anySerializing := make(map[uint64]bool)
	for i := range txns {
		ops := txns[i].Ops
		var seen map[uint64]bool
		if len(ops) > 1 {
			seen = make(map[uint64]bool, len(ops))
		}
		for _, op := range ops {
			if op.Kind != OpGet {
				written[op.Key] = true
			}
			if seen != nil {
				if seen[op.Key] {
					continue
				}
				seen[op.Key] = true
			}
			touchers[op.Key] = append(touchers[op.Key], i)
			if metas[i].serializing {
				anySerializing[op.Key] = true
			}
		}
	}

	// Union-find over transaction indexes, in deterministic key order.
	parent := make([]int, len(txns))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra // the smallest txn index roots its group
	}
	for _, k := range sortedKeys(touchers) {
		if !written[k] || !anySerializing[k] {
			continue
		}
		list := touchers[k]
		for _, i := range list[1:] {
			union(list[0], i)
		}
	}

	// A group is coordinated when any member spans DPUs; group size
	// decides whether on-DPU members need a tasklet pin.
	size := make([]int, len(txns))
	coordRoot := make([]bool, len(txns))
	for i := range txns {
		r := find(i)
		size[r]++
		if metas[i].cross {
			coordRoot[r] = true
		}
	}
	for i := range txns {
		r := find(i)
		if coordRoot[r] {
			metas[i].coordinated = true
			continue
		}
		if size[r] > 1 {
			metas[i].group = r
		}
	}
	return metas
}

// gatherSources picks the gather source DPU for every key the
// coordinated transactions touch. Writes are always applied at the
// owner, but the read side may be served by any fresh replica — so the
// selector balances the per-DPU gather buckets: each key reads from
// whichever candidate (owner or fresh copy) currently holds the
// smallest bucket, preferring the owner on ties. A fresh replica on an
// already-involved DPU thereby shrinks the round's worst-case bucket,
// which is what the skew-aware transfer model charges.
func (pm *PartitionedMap) gatherSources(keys []uint64) map[uint64]int {
	srcOf := make(map[uint64]int, len(keys))
	bucket := make(map[int]int)
	var replicated []uint64
	for _, k := range keys {
		if len(pm.place.Replicas(k)) == 0 {
			o := pm.owner(k)
			srcOf[k] = o
			bucket[o]++
			continue
		}
		replicated = append(replicated, k)
	}
	for _, k := range replicated {
		o := pm.owner(k)
		best := o
		for _, r := range pm.place.Replicas(k) {
			if bucket[r] < bucket[best] || (bucket[r] == bucket[best] && best != o && r < best) {
				best = r
			}
		}
		srcOf[k] = best
		bucket[best]++
	}
	return srcOf
}

// ApplyTxns executes one batch of transactions in a single quiescent
// window and returns per-transaction results in order. Single-DPU
// transactions run as native PIM-STM transactions inside their owner's
// batch kernel; cross-DPU transactions (and every transaction in their
// conflict group) are CPU-coordinated through one coalesced snapshot
// gather and one coalesced writeback scatter. Intersecting transactions
// with a serializing party commit in batch order; plain single-op
// transactions keep the concurrent per-op semantics of ApplyBatch.
// BatchSeconds reports the whole window's wall-clock delta.
func (pm *PartitionedMap) ApplyTxns(txns []Txn) ([]TxnResult, error) {
	return pm.applyTxns(txns, false)
}

// applyTxns is ApplyTxns plus the coordinateAll compatibility mode used
// by ApplyTransfers: every transaction is host-coordinated, preserving
// the historical two-round gather/writeback cost model exactly.
func (pm *PartitionedMap) applyTxns(txns []Txn, coordinateAll bool) ([]TxnResult, error) {
	results := make([]TxnResult, len(txns))
	totalOps := 0
	for i := range txns {
		totalOps += len(txns[i].Ops)
	}
	backing := make([]OpResult, totalOps)
	for i := range txns {
		n := len(txns[i].Ops)
		results[i].Results, backing = backing[:n:n], backing[n:]
	}
	if len(txns) == 0 {
		pm.BatchSeconds = 0
		pm.BatchLaunchSeconds, pm.BatchTransferSeconds = 0, 0
		return results, nil
	}
	before := pm.fleet.Stats()
	wallBefore := before.WallSeconds
	metas := pm.classifyTxns(txns, coordinateAll)

	var coordinated []int
	for i := range metas {
		if metas[i].coordinated {
			coordinated = append(coordinated, i)
		}
	}

	// Phase 1: one coalesced snapshot gather of every key the
	// coordinated transactions touch, from replica-aware sources.
	var srcOf map[uint64]int
	state := make(map[uint64]uint64)
	if len(coordinated) > 0 {
		keySet := make(map[uint64]bool)
		for _, ti := range coordinated {
			for _, op := range txns[ti].Ops {
				keySet[op.Key] = true
			}
		}
		coordKeys := sortedKeys(keySet)
		srcOf = pm.gatherSources(coordKeys)
		perSrc := make(map[int][]uint64)
		for _, k := range coordKeys {
			perSrc[srcOf[k]] = append(perSrc[srcOf[k]], k)
		}
		vals, err := pm.gatherRecords(perSrc)
		if err != nil {
			return nil, err
		}
		state = vals
	}

	// Phase 2: host-apply the coordinated transactions against the
	// snapshot, in batch order — the deterministic serialization the
	// conflict rule promises. Dirty keys remember their pre-batch
	// presence so a net-nothing delete never pays writeback.
	startPresent := make(map[uint64]bool)
	dirty := make(map[uint64]bool)
	for _, ti := range coordinated {
		order, writes, _, ok := evalTxn(txns[ti].Ops, results[ti].Results,
			func(k uint64) (uint64, bool) { v, ok := state[k]; return v, ok })
		results[ti].Committed = ok
		if !ok {
			continue
		}
		for _, k := range order {
			if !dirty[k] {
				_, startPresent[k] = state[k]
				dirty[k] = true
			}
			if writes[k].del {
				delete(state, k)
			} else {
				state[k] = writes[k].val
			}
		}
	}

	// Phase 3: the execute round — on-DPU transactions plus replica
	// maintenance, charged by the worst-case per-DPU bucket.
	coordWritten := make(map[uint64]bool)
	for _, ti := range coordinated {
		for _, op := range txns[ti].Ops {
			if op.Kind != OpGet {
				coordWritten[op.Key] = true
			}
		}
	}
	if err := pm.executeRound(txns, metas, results, coordWritten); err != nil {
		return nil, err
	}

	// Phase 4: one coalesced writeback scatter of the coordinated dirty
	// records — puts to their owners, deletes for vanished keys and the
	// replica copies of deleted keys.
	dirtyKeys := sortedKeys(dirty)
	wbKeys := dirtyKeys[:0]
	for _, k := range dirtyKeys {
		if _, ok := state[k]; ok || startPresent[k] {
			wbKeys = append(wbKeys, k)
		}
	}
	if len(wbKeys) > 0 {
		putOn := make(map[int][]uint64)
		delOn := make(map[int][]uint64)
		var dropAfter, staleAfter []uint64
		for _, k := range wbKeys {
			o := pm.owner(k)
			if _, ok := state[k]; ok {
				putOn[o] = append(putOn[o], k)
				if pm.dir != nil && len(pm.dir.allReplicas(k)) > 0 {
					// Copies go stale and a later batch refreshes them
					// from the owner — same protocol as transfers.
					staleAfter = append(staleAfter, k)
				}
				continue
			}
			delOn[o] = append(delOn[o], k)
			if pm.dir != nil {
				for _, r := range pm.dir.allReplicas(k) {
					delOn[r] = append(delOn[r], k)
				}
				dropAfter = append(dropAfter, k)
			}
		}
		if err := pm.mutateRound(putOn, state, delOn); err != nil {
			return nil, err
		}
		for _, k := range dropAfter {
			pm.dir.dropReplicas(k)
		}
		for _, k := range staleAfter {
			pm.dir.markStale(k)
		}
	}

	pm.TxnsApplied += len(txns)
	pm.TxnsCoordinated += len(coordinated)
	if pm.reb != nil {
		routed := make([]int, pm.fleet.Size())
		for id, units := range pm.lastExecBuckets {
			routed[id] = units
		}
		for _, ti := range coordinated {
			for _, op := range txns[ti].Ops {
				if op.Kind == OpGet {
					routed[srcOf[op.Key]]++
				} else {
					routed[pm.owner(op.Key)]++
				}
			}
		}
		pm.reb.observe(txns, routed)
	}
	after := pm.fleet.Stats()
	pm.BatchSeconds = after.WallSeconds - wallBefore
	pm.BatchLaunchSeconds = after.LaunchSeconds - before.LaunchSeconds
	pm.BatchTransferSeconds = after.TransferSeconds - before.TransferSeconds
	return results, nil
}

// routedUnit is one unit of execute-round work bucketed onto a DPU: a
// client transaction carrying its result index, or a single-op
// replica-maintenance shadow (ti < 0). Units sharing a group id are
// pinned to one tasklet and commit in batch order.
type routedUnit struct {
	ops   []Op
	ti    int
	group int
}

// executeRound routes the on-DPU transactions (plus the replica
// maintenance their writes imply) and launches one program per involved
// DPU. It is the generalization of the PR 2/3 ApplyBatch round and is
// bit-for-bit identical to it when every transaction is a plain single
// op: same routing, same replica read spreading, same tasklet striping,
// same 24-byte-scatter/16-byte-gather worst-case-bucket charging.
func (pm *PartitionedMap) executeRound(txns []Txn, metas []txnMeta, results []TxnResult, coordWritten map[uint64]bool) error {
	pm.lastExecBuckets = nil
	perDPU := make(map[int][]routedUnit)

	// Pass 1: how do the on-DPU transactions write? lastPut is the
	// batch's final put value per key; a key whose final value cannot be
	// known statically (written by a guarded or multi-op transaction)
	// cannot be written through and goes stale instead. Deletes from
	// guarded transactions may abort, so only guard-free deletes
	// (delsCommit) invalidate copies in-round — a conditional delete
	// just stales them, and the next window's refresh either restores
	// or reaps the copies depending on what actually committed.
	puts := make(map[uint64]int)
	lastPut := make(map[uint64]uint64)
	dels := make(map[uint64]bool)
	delsCommit := make(map[uint64]bool)
	wrote := make(map[uint64]bool)
	finalKnown := make(map[uint64]bool)
	hasUnits := false
	for i := range txns {
		if metas[i].coordinated {
			continue
		}
		if len(txns[i].Ops) == 0 {
			results[i].Committed = true // an empty transaction commits trivially
			continue
		}
		hasUnits = true
		guarded := false
		for _, op := range txns[i].Ops {
			if isRMW(op.Kind) {
				guarded = true
			}
		}
		for _, op := range txns[i].Ops {
			switch op.Kind {
			case OpPut:
				puts[op.Key]++
				wrote[op.Key] = true
				if guarded {
					finalKnown[op.Key] = false
				} else {
					lastPut[op.Key] = op.Value
					finalKnown[op.Key] = true
				}
			case OpDelete:
				dels[op.Key] = true
				wrote[op.Key] = true
				if guarded {
					finalKnown[op.Key] = false
				} else {
					delsCommit[op.Key] = true
				}
			case OpAdd, OpSub:
				wrote[op.Key] = true
				finalKnown[op.Key] = false
			}
		}
	}
	if !hasUnits {
		return nil
	}

	// Pass 2: route the client transactions. Single-op reads of a
	// replicated key that was fresh at batch start round-robin over the
	// owner and its copies (a delete pins them to the owner); single-op
	// puts of a replicated key with siblings are pinned to one owner
	// tasklet so batch order decides the final value; conflict groups
	// are pinned as a whole.
	// putGroups allocates the tasklet-pin ids of the legacy
	// replicated-put rule; the ids are negative below -1 so they can
	// never collide with conflict-group roots (transaction indexes).
	putGroups := make(map[uint64]int)
	for i := range txns {
		if metas[i].coordinated || len(txns[i].Ops) == 0 {
			continue
		}
		unit := routedUnit{ops: txns[i].Ops, ti: i, group: metas[i].group}
		target := metas[i].soleDPU
		if len(unit.ops) == 1 && unit.group < 0 {
			op := unit.ops[0]
			switch op.Kind {
			case OpGet:
				if !dels[op.Key] {
					if reps := pm.place.Replicas(op.Key); len(reps) > 0 {
						if t := i % (len(reps) + 1); t > 0 {
							target = reps[t-1]
						}
					}
				}
			case OpPut:
				if pm.dir != nil && puts[op.Key] > 1 && len(pm.dir.allReplicas(op.Key)) > 0 && !dels[op.Key] {
					id, ok := putGroups[op.Key]
					if !ok {
						id = -2 - len(putGroups)
						putGroups[op.Key] = id
					}
					unit.group = id
				}
			}
		}
		perDPU[target] = append(perDPU[target], unit)
	}

	// Pass 3: shadow ops for written replicated keys, coalesced into
	// this round. A guaranteed delete invalidates; statically-known
	// puts write through the batch's last value; everything else
	// (guarded or multi-op writers, conditional deletes) leaves the
	// copies stale for a later refresh or reap.
	var dropAfter, freshAfter, staleAfter []uint64
	throughPut := make(map[uint64]bool)
	if pm.dir != nil {
		for _, k := range sortedKeys(wrote) {
			copies := pm.dir.allReplicas(k)
			if len(copies) == 0 {
				continue
			}
			if delsCommit[k] {
				for _, r := range copies {
					perDPU[r] = append(perDPU[r], routedUnit{ops: []Op{{Kind: OpDelete, Key: k}}, ti: -1, group: -1})
				}
				dropAfter = append(dropAfter, k)
				continue
			}
			if dels[k] || !finalKnown[k] {
				staleAfter = append(staleAfter, k)
				continue
			}
			for _, r := range copies {
				perDPU[r] = append(perDPU[r], routedUnit{ops: []Op{{Kind: OpPut, Key: k, Value: lastPut[k]}}, ti: -1, group: -1})
			}
			freshAfter = append(freshAfter, k)
			throughPut[k] = true
		}

		// Pass 4: refresh the stale copies this window does not write,
		// with the owner's pre-batch value read in the quiescent window.
		for _, k := range pm.dir.staleKeys() {
			if wrote[k] || dels[k] || coordWritten[k] {
				continue
			}
			v, ok := pm.hostGet(pm.place.Owner(k), k)
			copies := pm.dir.allReplicas(k)
			if !ok {
				for _, r := range copies {
					perDPU[r] = append(perDPU[r], routedUnit{ops: []Op{{Kind: OpDelete, Key: k}}, ti: -1, group: -1})
				}
				dropAfter = append(dropAfter, k)
				continue
			}
			for _, r := range copies {
				perDPU[r] = append(perDPU[r], routedUnit{ops: []Op{{Kind: OpPut, Key: k, Value: v}}, ti: -1, group: -1})
			}
			freshAfter = append(freshAfter, k)
		}
	}

	involved := sortedKeys(perDPU)
	var shadowMu sync.Mutex
	shadowFailed := make(map[uint64]bool)

	// The round takes the slowest DPU, so charge the worst-case bucket
	// in operations — shadow maintenance included, multi-op
	// transactions counted op by op.
	maxOps := 0
	pm.lastExecBuckets = make(map[int]int, len(involved))
	for id, units := range perDPU {
		ops := 0
		for _, u := range units {
			ops += len(u.ops)
		}
		pm.lastExecBuckets[id] = ops
		if ops > maxOps {
			maxOps = ops
		}
	}

	err := pm.fleet.Round(RoundSpec{
		Involved:     len(involved),
		ScatterBytes: 24 * maxOps,
		GatherBytes:  16 * maxOps,
		IDs:          involved,
		Program: func(id int, d *dpu.DPU) (float64, error) {
			units := perDPU[id]
			tm := pm.tms[id]
			m := pm.maps[id]
			d.ResetRun()
			n := pm.tasklets
			if n > len(units) {
				n = len(units)
			}
			// Stripe units over tasklets by position; grouped units (a
			// conflict group, or the puts of one replicated key) are
			// pinned to a single tasklet so they commit in batch order.
			lists := make([][]int, n)
			groupTasklet := make(map[int]int)
			groups := 0
			for j := range units {
				if units[j].group != -1 {
					ti, ok := groupTasklet[units[j].group]
					if !ok {
						ti = groups % n
						groupTasklet[units[j].group] = ti
						groups++
					}
					lists[ti] = append(lists[ti], j)
					continue
				}
				lists[j%n] = append(lists[j%n], j)
			}
			progs := make([]func(*dpu.Tasklet), n)
			for ti := 0; ti < n; ti++ {
				mine := lists[ti]
				progs[ti] = func(t *dpu.Tasklet) {
					tx := tm.NewTx(t)
					for _, j := range mine {
						u := units[j]
						if u.ti < 0 || (len(u.ops) == 1 && !isRMW(u.ops[0].Kind)) {
							// Plain single op (or shadow): one STM
							// transaction per op, the PR 2 path.
							op := u.ops[0]
							var res OpResult
							switch op.Kind {
							case OpGet:
								tx.Atomic(func(tx *core.Tx) {
									res.Value, res.OK = m.Get(tx, op.Key)
								})
							case OpPut:
								tx.Atomic(func(tx *core.Tx) {
									ins, err := m.Put(tx, op.Key, op.Value)
									res.OK, res.Err = ins, err
								})
							case OpDelete:
								tx.Atomic(func(tx *core.Tx) {
									res.OK = m.Delete(tx, op.Key)
								})
							}
							if u.ti >= 0 {
								results[u.ti].Results[0] = res
								results[u.ti].Committed = res.Err == nil
								results[u.ti].Err = res.Err
							} else if res.Err != nil {
								shadowMu.Lock()
								shadowFailed[op.Key] = true
								shadowMu.Unlock()
							}
							continue
						}
						// Transactional unit: evaluate the whole group
						// of ops with all-or-nothing semantics inside
						// one STM transaction, then flush the overlay.
						// A flush failure (a partition out of
						// capacity) rolls the already-flushed writes
						// back to their pre-txn images, so the abort
						// stays all-or-nothing.
						res := results[u.ti].Results
						var committed bool
						var flushErr error
						tx.Atomic(func(tx *core.Tx) {
							flushErr = nil // fresh attempt after an abort
							for r := range res {
								res[r] = OpResult{}
							}
							order, writes, prior, ok := evalTxn(u.ops, res,
								func(k uint64) (uint64, bool) { return m.Get(tx, k) })
							committed = ok
							if !ok {
								return
							}
							flushed := 0
							for _, k := range order {
								if writes[k].del {
									m.Delete(tx, k)
									flushed++
									continue
								}
								if _, err := m.Put(tx, k, writes[k].val); err != nil {
									flushErr = err
									break
								}
								flushed++
							}
							if flushErr == nil {
								return
							}
							for r := flushed - 1; r >= 0; r-- {
								k := order[r]
								p := prior[k]
								if p.del {
									m.Delete(tx, k) // the put allocated it; free it again
									continue
								}
								// Restoring an overwritten or deleted
								// record reuses its slot (the failed
								// put allocated nothing), so this put
								// cannot itself run out of capacity.
								m.Put(tx, k, p.val)
							}
						})
						results[u.ti].Committed = committed && flushErr == nil
						results[u.ti].Err = flushErr
					}
				}
			}
			cycles, err := d.Run(progs)
			if err != nil {
				return 0, fmt.Errorf("host: batch on dpu %d: %w", id, err)
			}
			return d.Seconds(cycles), nil
		},
	})
	if err != nil {
		return err
	}
	if pm.dir != nil {
		// The shadow ops physically ran; commit the deferred directory
		// mutations, then re-stale any key whose copies or owner put
		// failed (the copy set is behind or ahead of the owner — a later
		// batch refreshes it from the owner).
		for _, k := range dropAfter {
			pm.dir.dropReplicas(k)
		}
		for _, k := range freshAfter {
			pm.dir.markFresh(k)
		}
		for _, k := range staleAfter {
			pm.dir.markStale(k)
		}
		for k := range shadowFailed {
			pm.dir.markStale(k)
		}
		for i := range txns {
			if metas[i].coordinated {
				continue
			}
			// Transactional units record store-level failures at the
			// txn level (their flush rolled back, so the owner kept its
			// old value while the copies got the write-through image);
			// single-op units record them per op.
			failed := results[i].Err != nil
			for j, op := range txns[i].Ops {
				if op.Kind == OpPut && throughPut[op.Key] &&
					(failed || results[i].Results[j].Err != nil) {
					pm.dir.markStale(op.Key)
				}
			}
		}
	}
	return nil
}
