package host

import (
	"fmt"
	"slices"
	"time"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// This file is the transactional serving core: host.Txn is the unit of
// submission everywhere — a client submits ordered groups of Ops over
// arbitrary keys, and the store commits each group atomically. The two
// execution tiers mirror the paper's cost cliff:
//
//   - A transaction whose keys all live on one DPU runs as a single
//     PIM-STM transaction inside that DPU's batch kernel — multi-key
//     atomicity is exactly what the STM gives natively, so it costs no
//     more than the ops themselves.
//   - A transaction spanning DPUs is coordinated in the quiescent
//     window (§3.1), but the committed writes execute in the kernels,
//     not on the host. A conflict group whose write set lives on one
//     DPU takes the single-owner fast path: a prepare round gathers the
//     group's off-home operands, and the group's transactions are
//     compiled into per-(DPU, tasklet-slot) apply programs the home
//     DPU's writeback kernel executes in batch order — guarded
//     RMWs, rollback and all — paying real kernel cycles. A group
//     whose writes span owners commits through the two-round
//     prepare/commit protocol: the host evaluates the group against the
//     gathered snapshot (the prepare decision), then the decided
//     puts/deletes run as compiled commit units in the owners'
//     writeback kernels. Only the prepare decision of multi-owner
//     groups (and pure cross-DPU reads) remains host-side.
//
// Conflicts inside one batch serialize deterministically: transactions
// that share a key one of them writes — where at least one party is
// multi-op or carries a guarded read-modify-write — execute in batch
// order (the one-tasklet-per-key rule generalized to one tasklet per
// conflict group; cross-DPU groups serialize on the host). Between
// plain single-op transactions the PR 2/3 semantics are preserved
// verbatim: each op is an independent concurrent transaction, reads of
// replicated keys spread over fresh copies, and same-key order within a
// batch is unspecified — which keeps every pre-Txn artifact
// byte-identical.

// Txn is an ordered group of operations committed atomically: all of
// its writes apply, or — when a guarded op (OpAdd/OpSub) fails — none
// do. Later ops observe earlier ops' effects within the transaction,
// and the read results are returned to the client as a unit.
type Txn struct {
	Ops []Op
}

// NewTxn builds a transaction over the given ops.
func NewTxn(ops ...Op) Txn { return Txn{Ops: ops} }

// TxnResult is the outcome of one Txn.
type TxnResult struct {
	// Results holds one OpResult per op, in order. When the transaction
	// aborted, ops after the failing guard are zero.
	Results []OpResult
	// Committed reports whether the transaction's writes applied. A
	// guarded op that fails (missing key, underflow) aborts the whole
	// transaction.
	Committed bool
	// LatencySeconds is the modeled commit latency (queue wait + batch
	// wall clock) when the transaction went through a Submitter; zero
	// for direct ApplyTxns calls.
	LatencySeconds float64
	// Err is the first store-level error the transaction hit (e.g. a
	// partition out of capacity).
	Err error
}

// txnWrite is one pending write in an evaluating transaction's overlay.
type txnWrite struct {
	val uint64
	del bool
}

// Transaction evaluation (overlay semantics, guarded aborts, pre-txn
// images for rollback) lives in evalScratch.run (scratch.go); the hot
// path reuses one evalScratch per host phase and per tasklet slot
// instead of allocating overlay maps per transaction.

// isRMW reports whether the op kind is a guarded read-modify-write.
func isRMW(k OpKind) bool { return k == OpAdd || k == OpSub }

// classifyOps is the shared owner analysis: the single DPU owning
// every key of the op group (-1 when the keys span DPUs), and whether
// the group is serializing (multi-op, or carrying a guarded RMW — the
// transactions that impose batch-order serialization on every
// transaction sharing a written key with them). Both ApplyTxns's
// conflict grouping and the lane schedulers classify through this one
// function, so the store and the scheduler cannot disagree about which
// transactions coordinate.
func classifyOps(ops []Op, owner func(uint64) int) (soleDPU int, serializing bool) {
	if len(ops) == 0 {
		return -1, false
	}
	serializing = len(ops) > 1
	soleDPU = owner(ops[0].Key)
	for _, op := range ops {
		if isRMW(op.Kind) {
			serializing = true
		}
		if soleDPU >= 0 && owner(op.Key) != soleDPU {
			soleDPU = -1
		}
	}
	return soleDPU, serializing
}

// LaneOf classifies one transaction against the store's current
// placement: LaneConfined when a single DPU owns every key (the
// transaction commits natively inside that DPU's batch kernel),
// LaneCoordinated when the keys span DPUs (it pays the CPU-coordinated
// snapshot and writeback rounds). This is the classifier NewSubmitter
// binds into lane-segregating schedulers; it shares classifyOps with
// ApplyTxns, so a batch the scheduler labels confined never
// coordinates on its own (only a placement change between admission
// and flush, or an empty transaction, can shift a lane).
// With split keys active, an OpAdd or OpSub on a split key is a
// chameleon: the split-rewrite pre-pass redirects it onto a local delta
// shard of whichever DPU the transaction already touches, so it never
// constrains the sole owner — only the transaction's other ops can
// force coordination. (A batch that also touches the key
// non-commutatively — or whose subs fail the shard-coverage check —
// suppresses the rewrite and reconciles instead, which can coordinate a
// transaction this classifier admitted as confined — the same
// admission-vs-flush caveat as a placement change.)
func (pm *PartitionedMap) LaneOf(txn Txn) Lane {
	ops := txn.Ops
	if len(ops) == 0 {
		return LaneConfined
	}
	if pm.dir != nil && pm.dir.splitCount() > 0 {
		sole := -1
		for _, op := range ops {
			if isRMW(op.Kind) && pm.dir.isSplit(op.Key) {
				continue
			}
			o := pm.owner(op.Key)
			if sole < 0 {
				sole = o
			} else if o != sole {
				return LaneCoordinated
			}
		}
		return LaneConfined
	}
	if sole, _ := classifyOps(ops, pm.owner); sole < 0 {
		return LaneCoordinated
	}
	return LaneConfined
}

// txnMeta is applyTxns' per-transaction routing analysis.
type txnMeta struct {
	// soleDPU is the single owner DPU of every key (-1 when cross).
	soleDPU int
	// serializing transactions impose batch-order serialization on
	// every transaction they share a written key with: multi-op groups
	// (their atomicity needs an order) and guarded RMW ops (their
	// outcome depends on one).
	serializing bool
	cross       bool
	coordinated bool
	// group pins on-DPU conflict groups to one tasklet (-1 ungrouped).
	group int
	// Kernel-commit classification of coordinated transactions (set by
	// classifyGroups): root is the conflict-group root, and kernelApply
	// marks members of single-owner groups — every written key owned by
	// home — whose apply programs execute in home's writeback kernel.
	kernelApply bool
	home        int
	root        int
}

// ApplyTxnsStats splits one ApplyTxns window's coordinated-commit cost
// by phase, on the modeled clock:
//
//   - GatherSeconds is the wall-clock delta of the prepare round (the
//     coalesced snapshot gather of coordinated operands).
//   - ApplySeconds is the kernel share of the commit round — the
//     cycles the compiled apply programs charge on the DPUs (plus the
//     analytic floor for unsimulated ones in sampled mode). The host
//     work that remains (multi-owner prepare decisions, pure cross-DPU
//     reads) contributes nothing here; that is the honesty caveat
//     DESIGN.md §5.4 documents.
//   - WritebackSeconds is the rest of the commit round's wall-clock
//     delta: the scatter/gather handshakes and payload of shipping the
//     programs down and the results up.
//
// All three are zero for batches with no coordinated transactions.
//
// GuardAborts counts the window's transactions that aborted on a guard
// (a missing key, or an OpSub underflow) — cleanly, with no store-level
// error. Workload abort rates are first-class observable through this
// counter: it flows through SubmitterStats into ServeResult.Stats and
// the bench artifacts.
//
// The Host*Seconds fields are different in kind from everything above:
// they are REAL machine wall-clock, not modeled time — how long the
// simulator itself spent in the window's host-side phases
// (classification and conflict grouping; unit routing through the
// execute round's analysis passes; sampled shadow-shard application;
// writeback-unit compilation). They measure simulator speed — the
// pinned host_ops_per_s_real metric of BENCH_scale.json — so they vary
// run to run and across machines, and are excluded from every
// byte-identity comparison of modeled results.
type ApplyTxnsStats struct {
	GatherSeconds    float64
	ApplySeconds     float64
	WritebackSeconds float64
	GuardAborts      int

	HostClassifySeconds float64
	HostRouteSeconds    float64
	HostShadowSeconds   float64
	HostCompileSeconds  float64
}

// classifyTxns analyzes every transaction and resolves the batch's
// conflict groups: transactions sharing a key at least one of them
// writes — with a serializing party involved — are unioned, and a group
// containing a cross-DPU transaction is coordinated as a whole (its
// single-DPU members cannot run inside their DPU without racing the
// host-applied writes). With coordinateAll every transaction is
// coordinated regardless (the ApplyTransfers compatibility mode, which
// keeps that path's cost model bit-for-bit). A batch of plain single
// ops — the ApplyBatch hot path — takes the early exit and allocates
// nothing per transaction. The returned slice is scratch reused by the
// next batch.
//
// The union order differs from the seed's sorted-key sweep (each
// transaction unions with its keys' first touchers, in batch order),
// but unions with smallest-index roots make the resulting partition and
// root ids independent of union order, so the groups — and therefore
// the tasklet pinning and the modeled schedule — are identical.
//
// HostParallelism == 1 runs the historical serial implementation;
// everything else runs the sharded engine (hostpar.go), whose merged
// tables are equal to the serial fold by construction.
func (pm *PartitionedMap) classifyTxns(txns []Txn, coordinateAll bool) []txnMeta {
	if pm.hostSerial {
		return pm.classifyTxnsSerial(txns, coordinateAll)
	}
	return pm.classifyTxnsPar(txns, coordinateAll)
}

// classifyTxnsSerial is the reference implementation: one sequential
// pass per transaction, then — only for batches that can conflict — the
// sequential per-key table and the union-find.
func (pm *PartitionedMap) classifyTxnsSerial(txns []Txn, coordinateAll bool) []txnMeta {
	sc := &pm.sc
	if cap(sc.metas) < len(txns) {
		sc.metas = make([]txnMeta, len(txns))
	}
	metas := sc.metas[:len(txns)]
	anyTxnSerializing := false
	for i := range txns {
		m := &metas[i]
		*m = txnMeta{group: -1, soleDPU: -1, coordinated: coordinateAll}
		ops := txns[i].Ops
		if len(ops) == 0 {
			continue
		}
		m.soleDPU, m.serializing = classifyOps(ops, pm.owner)
		m.cross = m.soleDPU < 0
		if m.serializing {
			anyTxnSerializing = true
		}
	}
	// No serializing transaction ⇒ no multi-op or RMW party anywhere,
	// so no conflict groups and nothing cross-DPU: done.
	if coordinateAll || !anyTxnSerializing {
		return metas
	}
	pm.buildClassK(txns, metas)
	pm.resolveGroups(txns, metas)
	return metas
}

// buildClassK is the conflict pass, run only for batches that can
// actually conflict: per key, the first toucher in batch order, whether
// any transaction writes it, and whether a serializing party touches
// it.
func (pm *PartitionedMap) buildClassK(txns []Txn, metas []txnMeta) {
	sc := &pm.sc
	clear(sc.classK)
	for i := range txns {
		ser := metas[i].serializing
		for _, op := range txns[i].Ops {
			ci, ok := sc.classK[op.Key]
			if !ok {
				ci.firstT = int32(i)
			}
			if op.Kind != OpGet {
				ci.written = true
			}
			if ser {
				ci.anySer = true
			}
			sc.classK[op.Key] = ci
		}
	}
}

// resolveGroups runs the union-find over the built classK table and
// marks each transaction's conflict group: every toucher of a written
// key with a serializing party unions with that key's first toucher
// (duplicate unions are no-ops), and a group containing a cross-DPU
// member coordinates as a whole. It folds over the merged per-key
// table only, so serial and sharded builds resolve identically.
func (pm *PartitionedMap) resolveGroups(txns []Txn, metas []txnMeta) {
	sc := &pm.sc
	parent := ensureInts(&sc.parent, len(txns))
	for i := range parent {
		parent[i] = i
	}
	for i := range txns {
		for _, op := range txns[i].Ops {
			ci := sc.classK[op.Key]
			if !ci.written || !ci.anySer {
				continue
			}
			ra, rb := ufFind(parent, int(ci.firstT)), ufFind(parent, i)
			if ra == rb {
				continue
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // the smallest txn index roots its group
		}
	}

	// A group is coordinated when any member spans DPUs; group size
	// decides whether on-DPU members need a tasklet pin.
	size := ensureInts(&sc.size, len(txns))
	if cap(sc.coordRoot) < len(txns) {
		sc.coordRoot = make([]bool, len(txns))
	}
	coordRoot := sc.coordRoot[:len(txns)]
	for i := range txns {
		size[i], coordRoot[i] = 0, false
	}
	for i := range txns {
		r := ufFind(parent, i)
		size[r]++
		if metas[i].cross {
			coordRoot[r] = true
		}
	}
	for i := range txns {
		r := ufFind(parent, i)
		if coordRoot[r] {
			metas[i].coordinated = true
			continue
		}
		if size[r] > 1 {
			metas[i].group = r
		}
	}
}

// classifyGroups decides each coordinated conflict group's commit path
// from the owners of its write set: a group whose written keys all
// live on one DPU (and that writes at all) kernel-applies — its
// members' apply programs execute in that home DPU's writeback kernel —
// while a group writing across owners, or not writing, keeps the host
// prepare path. Only valid when classifyTxns ran its union-find, i.e.
// the batch has coordinated groups and coordinateAll is off.
//
// The classification is sound because conflict groups are closed over
// shared keys: every batch toucher of a key a coordinated group writes
// is itself in the group (a serializing party touches that key by the
// union rule), so a single-owner group's writes cannot race any
// confined transaction or other group, and its off-home keys are read-
// only for the whole batch — the gathered operands stay valid through
// the commit round.
func (pm *PartitionedMap) classifyGroups(txns []Txn, metas []txnMeta, coordinated []int) {
	sc := &pm.sc
	rootOwner := ensureInts(&sc.rootOwner, len(txns))
	if cap(sc.rootHasWrite) < len(txns) {
		sc.rootHasWrite = make([]bool, len(txns))
	}
	rootHasWrite := sc.rootHasWrite[:len(txns)]
	for _, ti := range coordinated {
		r := ufFind(sc.parent, ti)
		metas[ti].root = r
		rootHasWrite[r] = false
		rootOwner[r] = -1
	}
	for _, ti := range coordinated {
		r := metas[ti].root
		for _, op := range txns[ti].Ops {
			if op.Kind == OpGet {
				continue
			}
			o := pm.owner(op.Key)
			if !rootHasWrite[r] {
				rootHasWrite[r], rootOwner[r] = true, o
			} else if rootOwner[r] != o {
				rootOwner[r] = -2 // writes span owners: multi-owner commit
			}
		}
	}
	for _, ti := range coordinated {
		r := metas[ti].root
		if rootHasWrite[r] && rootOwner[r] >= 0 {
			metas[ti].kernelApply = true
			metas[ti].home = rootOwner[r]
		}
	}
}

// gatherSources picks the gather source DPU for every key the
// coordinated transactions touch. Writes are always applied at the
// owner, but the read side may be served by any fresh replica — so the
// selector balances the per-DPU gather buckets: each key reads from
// whichever candidate (owner or fresh copy) currently holds the
// smallest bucket, preferring the owner on ties. A fresh replica on an
// already-involved DPU thereby shrinks the round's worst-case bucket,
// which is what the skew-aware transfer model charges.
func (pm *PartitionedMap) gatherSources(keys []uint64) map[uint64]int {
	sc := &pm.sc
	clear(sc.srcOf)
	clear(sc.bucket)
	srcOf, bucket := sc.srcOf, sc.bucket
	replicated := sc.replicated[:0]
	for _, k := range keys {
		if len(pm.place.Replicas(k)) == 0 {
			o := pm.owner(k)
			srcOf[k] = o
			bucket[o]++
			continue
		}
		replicated = append(replicated, k)
	}
	for _, k := range replicated {
		o := pm.owner(k)
		best := o
		for _, r := range pm.place.Replicas(k) {
			if bucket[r] < bucket[best] || (bucket[r] == bucket[best] && best != o && r < best) {
				best = r
			}
		}
		srcOf[k] = best
		bucket[best]++
	}
	sc.replicated = replicated
	return srcOf
}

// ApplyTxns executes one batch of transactions in a single quiescent
// window and returns per-transaction results in order. Single-DPU
// transactions run as native PIM-STM transactions inside their owner's
// batch kernel; cross-DPU transactions (and every transaction in their
// conflict group) are CPU-coordinated through one coalesced snapshot
// gather and one coalesced writeback scatter. Intersecting transactions
// with a serializing party commit in batch order; plain single-op
// transactions keep the concurrent per-op semantics of ApplyBatch.
// BatchSeconds reports the whole window's wall-clock delta.
func (pm *PartitionedMap) ApplyTxns(txns []Txn) ([]TxnResult, error) {
	return pm.applyTxns(txns, false)
}

// applyTxns is ApplyTxns plus the coordinateAll compatibility mode used
// by ApplyTransfers: every transaction is host-coordinated, preserving
// the historical two-round gather/writeback cost model exactly.
func (pm *PartitionedMap) applyTxns(txns []Txn, coordinateAll bool) ([]TxnResult, error) {
	results := make([]TxnResult, len(txns))
	totalOps := 0
	for i := range txns {
		totalOps += len(txns[i].Ops)
	}
	backing := make([]OpResult, totalOps)
	for i := range txns {
		n := len(txns[i].Ops)
		results[i].Results, backing = backing[:n:n], backing[n:]
	}
	if len(txns) == 0 {
		pm.BatchSeconds = 0
		pm.BatchLaunchSeconds, pm.BatchTransferSeconds = 0, 0
		return results, nil
	}
	before := pm.fleet.Stats()
	wallBefore := before.WallSeconds
	sc := &pm.sc
	pm.BatchPhases = ApplyTxnsStats{}

	// Split-key pre-pass (split.go): reconcile the split keys this batch
	// touches non-commutatively (paid rounds, accumulated into
	// BatchPhases), then rewrite the remaining split-key adds onto
	// per-DPU delta shards. work is txns itself whenever no split key is
	// touched, so batches without splits pay nothing.
	work := txns
	if pm.dir != nil && pm.dir.splitCount() > 0 {
		var err error
		if work, err = pm.splitRewrite(txns, coordinateAll); err != nil {
			return nil, err
		}
	}
	classifyStart := time.Now()
	metas := pm.classifyTxns(work, coordinateAll)

	coordinated := sc.coordinated[:0]
	for i := range metas {
		if metas[i].coordinated {
			coordinated = append(coordinated, i)
		}
	}
	sc.coordinated = coordinated

	// Commit-path classification: single-owner write sets kernel-apply,
	// everything else (multi-owner, read-only, and the coordinateAll
	// compatibility mode) prepares host-side. classifyTxns ran its
	// union-find exactly when coordinated groups exist without
	// coordinateAll, which is when the group roots are valid.
	if !coordinateAll && len(coordinated) > 0 {
		pm.classifyGroups(work, metas, coordinated)
	}
	pm.BatchPhases.HostClassifySeconds += time.Since(classifyStart).Seconds()

	// Phase 1 (prepare): one coalesced snapshot gather of every operand
	// the coordination needs, from replica-aware sources — all keys of
	// host-prepared groups, but only the off-home keys of kernel-applied
	// ones, whose home-owned state is read in the kernel where it lives.
	var srcOf map[uint64]int
	state := sc.state
	clear(state)
	if len(coordinated) > 0 {
		clear(sc.keySet)
		for _, ti := range coordinated {
			for _, op := range work[ti].Ops {
				if metas[ti].kernelApply && pm.owner(op.Key) == metas[ti].home {
					continue
				}
				sc.keySet[op.Key] = true
			}
		}
		sc.coordKeys = appendMapKeys(sc.coordKeys[:0], sc.keySet)
		srcOf = pm.gatherSources(sc.coordKeys)
		sc.perSrc.reset()
		for _, k := range sc.coordKeys {
			sc.perSrc.add(srcOf[k], k)
		}
		gatherBefore := pm.fleet.Stats().WallSeconds
		if err := pm.gatherRound(&sc.perSrc, state); err != nil {
			return nil, err
		}
		pm.BatchPhases.GatherSeconds += pm.fleet.Stats().WallSeconds - gatherBefore
	}

	// Phase 2: host-prepare the groups that stay host-side — evaluate
	// them against the snapshot in batch order, the deterministic
	// serialization the conflict rule promises. Kernel-applied groups
	// skip this entirely; their evaluation happens in the writeback
	// kernels. Dirty keys remember their pre-batch presence so a
	// net-nothing delete never pays writeback.
	clear(sc.startPresent)
	clear(sc.dirty)
	for _, ti := range coordinated {
		if metas[ti].kernelApply {
			continue
		}
		order, ok := sc.eval.run(work[ti].Ops, results[ti].Results, stateLookup(state))
		results[ti].Committed = ok
		if !ok {
			continue
		}
		for _, k := range order {
			if !sc.dirty[k] {
				_, sc.startPresent[k] = state[k]
				sc.dirty[k] = true
			}
			if w := sc.eval.writes[k]; w.del {
				delete(state, k)
			} else {
				state[k] = w.val
			}
		}
	}

	// Phase 3: the execute round — on-DPU transactions plus replica
	// maintenance, charged by the worst-case per-DPU bucket.
	clear(sc.coordWritten)
	for _, ti := range coordinated {
		for _, op := range work[ti].Ops {
			if op.Kind != OpGet {
				sc.coordWritten[op.Key] = true
			}
		}
	}
	if err := pm.executeRound(work, metas, results, sc.coordWritten); err != nil {
		return nil, err
	}

	// Phase 4 (commit). coordinateAll keeps the historical host-applied
	// path verbatim — one coalesced writeback scatter of the dirty
	// records through the mutate kernels, the ApplyTransfers cost model
	// bit-for-bit. Everything else commits through the writeback round:
	// kernel-applied groups execute their compiled apply programs on
	// their home DPUs, and the host-prepared groups' decided records run
	// as commit units on their owners.
	if coordinateAll {
		sc.dirtyKeys = appendMapKeys(sc.dirtyKeys[:0], sc.dirty)
		dirtyKeys := sc.dirtyKeys
		wbKeys := dirtyKeys[:0]
		for _, k := range dirtyKeys {
			if _, ok := state[k]; ok || sc.startPresent[k] {
				wbKeys = append(wbKeys, k)
			}
		}
		if len(wbKeys) > 0 {
			sc.wbPut.reset()
			sc.wbDel.reset()
			dropAfter, staleAfter := sc.dropAfter[:0], sc.staleAfter[:0]
			for _, k := range wbKeys {
				o := pm.owner(k)
				if _, ok := state[k]; ok {
					sc.wbPut.add(o, k)
					if pm.dir != nil && len(pm.dir.allReplicas(k)) > 0 {
						// Copies go stale and a later batch refreshes them
						// from the owner — same protocol as transfers.
						staleAfter = append(staleAfter, k)
					}
					continue
				}
				sc.wbDel.add(o, k)
				if pm.dir != nil {
					for _, r := range pm.dir.allReplicas(k) {
						sc.wbDel.add(r, k)
					}
					dropAfter = append(dropAfter, k)
				}
			}
			sc.dropAfter, sc.staleAfter = dropAfter, staleAfter
			commitBefore := pm.fleet.Stats().WallSeconds
			if err := pm.mutateLists(&sc.wbPut, state, &sc.wbDel); err != nil {
				return nil, err
			}
			// The host applied the RMWs for free in this mode; the
			// mutate round is pure writeback.
			pm.BatchPhases.WritebackSeconds += pm.fleet.Stats().WallSeconds - commitBefore
			for _, k := range dropAfter {
				pm.dir.dropReplicas(k)
			}
			for _, k := range staleAfter {
				pm.dir.markStale(k)
			}
		}
	} else if len(coordinated) > 0 {
		if err := pm.writebackRound(work, metas, results, state); err != nil {
			return nil, err
		}
	}

	// Post-batch shard-balance bookkeeping: committed rewritten ops
	// adjust the host's exact per-shard view (aborted transactions
	// applied nothing, so they adjust nothing).
	if len(sc.splitRewrites) > 0 {
		for _, rec := range sc.splitRewrites {
			if !results[rec.ti].Committed {
				continue
			}
			if rec.sub {
				pm.splitTrack[rec.skey] -= rec.val
			} else {
				pm.splitTrack[rec.skey] += rec.val
			}
		}
		sc.splitRewrites = sc.splitRewrites[:0]
	}

	// Guarded-abort accounting: a transaction that did not commit and
	// carries no store-level error aborted on a guard.
	for i := range results {
		if !results[i].Committed && results[i].Err == nil && len(txns[i].Ops) > 0 {
			pm.BatchPhases.GuardAborts++
		}
	}

	pm.TxnsApplied += len(txns)
	pm.TxnsCoordinated += len(coordinated)
	if pm.reb != nil {
		routed := sc.routed[:pm.fleet.Size()]
		for i := range routed {
			routed[i] = 0
		}
		for _, id := range sc.dpuTouched {
			routed[id] = sc.execBuckets[id]
		}
		for _, ti := range coordinated {
			for _, op := range work[ti].Ops {
				if op.Kind == OpGet {
					// A kernel-applied group's home-owned reads are never
					// gathered (the kernel serves them), so they are
					// absent from srcOf and credit the owner directly.
					if src, ok := srcOf[op.Key]; ok {
						routed[src]++
					} else {
						routed[pm.owner(op.Key)]++
					}
				} else {
					routed[pm.owner(op.Key)]++
				}
			}
		}
		// Load is attributed where it physically ran (work — a rewritten
		// add credits its shard's DPU), but the key statistics observe
		// the client's original transactions, so the Rebalancer's per-key
		// view never sees internal shard keys.
		pm.reb.observe(txns, routed)
	}
	after := pm.fleet.Stats()
	pm.BatchSeconds = after.WallSeconds - wallBefore
	pm.BatchLaunchSeconds = after.LaunchSeconds - before.LaunchSeconds
	pm.BatchTransferSeconds = after.TransferSeconds - before.TransferSeconds
	return results, nil
}

// unitKind tags what a routed unit is: a client transaction of the
// execute round, a single-op replica-maintenance shadow, a
// kernel-applied coordinated transaction of the writeback round, or a
// host-prepared commit record of a multi-owner group.
type unitKind uint8

const (
	unitClient unitKind = iota
	unitShadow
	unitApply
	unitCommit
)

// routedUnit is one unit of kernel work bucketed onto a DPU — by the
// execute round (client transactions carrying their result index,
// replica shadows with ti < 0) or by the writeback round (compiled
// apply programs and commit records). Units sharing a group id are
// pinned to one tasklet and commit in batch order.
type routedUnit struct {
	ops   []Op
	ti    int
	group int
	kind  unitKind
	// prog is the compiled apply program of a writeback-round unit; the
	// kernel decodes and executes it, charging one MRAM instruction
	// fetch per ApplyInstr.
	prog []dpu.ApplyInstr
	// rem is the scattered remote-operand table of a kernel-applied
	// unit: the gathered pre-batch values of its off-home keys.
	rem []dpu.ApplyOperand
}

// executeRound routes the on-DPU transactions (plus the replica
// maintenance their writes imply) and launches one program per involved
// DPU. It is the generalization of the PR 2/3 ApplyBatch round and is
// bit-for-bit identical to it when every transaction is a plain single
// op: same routing, same replica read spreading, same tasklet striping,
// same 24-byte-scatter/16-byte-gather worst-case-bucket charging.
func (pm *PartitionedMap) executeRound(txns []Txn, metas []txnMeta, results []TxnResult, coordWritten map[uint64]bool) error {
	routeStart := time.Now()
	sc := &pm.sc
	for _, id := range sc.dpuTouched {
		sc.perDPU[id] = sc.perDPU[id][:0]
		sc.execBuckets[id] = 0
	}
	sc.dpuTouched = sc.dpuTouched[:0]
	sc.shadowOps = sc.shadowOps[:0]
	sc.curResults = results

	// Pass 1: how do the on-DPU transactions write? lastPut is the
	// batch's final put value per key; a key whose final value cannot be
	// known statically (written by a guarded or multi-op transaction)
	// cannot be written through and goes stale instead. Deletes from
	// guarded transactions may abort, so only guard-free deletes
	// (delsCommit) invalidate copies in-round — a conditional delete
	// just stales them, and the next window's refresh either restores
	// or reaps the copies depending on what actually committed.
	//
	// The serial reference runs the historical per-op fold; the engine
	// takes a single-op fast path (or the striped parallel build when
	// the batch is large enough to shard). All three produce the same
	// table — the merge rules are in hostpar.go.
	//
	// Table reclamation differs on purpose. The reference clears the
	// whole map — O(table capacity), so one huge preload batch taxes
	// every later batch. The engine deletes exactly the previous
	// batch's written keys (wroteKeys lists every entry by
	// construction), and without a directory it skips the table
	// entirely: its only consumers are the replica routing rules and
	// the write-through/refresh passes, all directory-gated, so the
	// engine fuses pass 1 and pass 2 into one sweep and sc.keyW stays
	// empty for the store's lifetime.
	hasUnits := false
	fusedRoute := false
	inlineShadow := false
	if pm.hostSerial {
		clear(sc.keyW)
		wroteKeys := sc.wroteKeys[:0]
		for i := range txns {
			if metas[i].coordinated {
				continue
			}
			if len(txns[i].Ops) == 0 {
				results[i].Committed = true // an empty transaction commits trivially
				continue
			}
			hasUnits = true
			guarded := false
			for _, op := range txns[i].Ops {
				if isRMW(op.Kind) {
					guarded = true
				}
			}
			for _, op := range txns[i].Ops {
				if op.Kind == OpGet {
					continue
				}
				kw := sc.keyW[op.Key]
				if !kw.wrote {
					kw.wrote = true
					wroteKeys = append(wroteKeys, op.Key)
				}
				switch op.Kind {
				case OpPut:
					kw.puts++
					if guarded {
						kw.fk = fkFalse
					} else {
						kw.lastPut = op.Value
						kw.fk = fkTrue
					}
				case OpDelete:
					kw.dels = true
					if guarded {
						kw.fk = fkFalse
					} else {
						kw.delsCommit = true
					}
				case OpAdd, OpSub:
					kw.fk = fkFalse
				}
				sc.keyW[op.Key] = kw
			}
		}
		sc.wroteKeys = wroteKeys
	} else if pm.dir == nil {
		fusedRoute = true
		// When every client unit in the batch is single-op, the
		// per-shard apply order is batch order no matter where the op
		// runs, so shadow-shard ops apply inline right here — no unit
		// staging, no dispatch sweep — and only the simulated
		// representatives' units get routed. The shard's analytic op
		// count (execBuckets) and touched tracking still accrue so the
		// round spec charges exactly what the staged path would.
		if pm.sampled {
			inlineShadow = true
			for i := range txns {
				if !metas[i].coordinated && len(txns[i].Ops) > 1 {
					inlineShadow = false
					break
				}
			}
		}
		if inlineShadow {
			w := &pm.par.w[0]
			for i := range txns {
				if metas[i].coordinated {
					continue
				}
				ops := txns[i].Ops
				if len(ops) == 0 {
					results[i].Committed = true // an empty transaction commits trivially
					continue
				}
				hasUnits = true
				id := metas[i].soleDPU
				if pm.sim[id] {
					sc.addUnit(id, routedUnit{ops: ops, ti: i, group: metas[i].group})
					continue
				}
				if sc.execBuckets[id] == 0 && len(sc.perDPU[id]) == 0 {
					sc.dpuTouched = append(sc.dpuTouched, id)
				}
				sc.execBuckets[id]++
				op := &ops[0]
				if op.Kind == OpGet {
					v, ok := pm.shadow[id][op.Key]
					r := &results[i]
					r.Results[0] = OpResult{Value: v, OK: ok}
					r.Committed = true
					r.Err = nil
					continue
				}
				if !isRMW(op.Kind) {
					var res OpResult
					switch op.Kind {
					case OpPut:
						ins, err := pm.shadowPut(id, op.Key, op.Value)
						res.OK, res.Err = ins, err
					case OpDelete:
						res.OK = pm.shadowDelete(id, op.Key)
					}
					results[i].Results[0] = res
					results[i].Committed = res.Err == nil
					results[i].Err = res.Err
					continue
				}
				u := routedUnit{ops: ops, ti: i, group: metas[i].group}
				pm.shadowEvalUnit(w, id, &u, results)
			}
		} else {
			for i := range txns {
				if metas[i].coordinated {
					continue
				}
				ops := txns[i].Ops
				if len(ops) == 0 {
					results[i].Committed = true // an empty transaction commits trivially
					continue
				}
				hasUnits = true
				sc.addUnit(metas[i].soleDPU, routedUnit{ops: ops, ti: i, group: metas[i].group})
			}
		}
		sc.wroteKeys = sc.wroteKeys[:0]
	} else if workers := scaleWorkers(pm.hostWorkers, len(txns), minTxnsPerWorker); workers > 1 {
		for _, k := range sc.wroteKeys {
			delete(sc.keyW, k)
		}
		hasUnits = pm.buildKeyWPar(txns, metas, results, workers)
	} else {
		for _, k := range sc.wroteKeys {
			delete(sc.keyW, k)
		}
		wroteKeys := sc.wroteKeys[:0]
		for i := range txns {
			if metas[i].coordinated {
				continue
			}
			ops := txns[i].Ops
			if len(ops) == 0 {
				results[i].Committed = true // an empty transaction commits trivially
				continue
			}
			hasUnits = true
			if len(ops) == 1 {
				// Single op: guarded iff the op itself is an RMW, so the
				// generic two-scan fold collapses to one table update.
				op := ops[0]
				if op.Kind == OpGet {
					continue
				}
				kw := sc.keyW[op.Key]
				if !kw.wrote {
					kw.wrote = true
					wroteKeys = append(wroteKeys, op.Key)
				}
				switch op.Kind {
				case OpPut:
					kw.puts++
					kw.lastPut = op.Value
					kw.fk = fkTrue
				case OpDelete:
					kw.dels = true
					kw.delsCommit = true
				default: // OpAdd, OpSub
					kw.fk = fkFalse
				}
				sc.keyW[op.Key] = kw
				continue
			}
			foldKeyW(sc.keyW, &wroteKeys, ops)
		}
		sc.wroteKeys = wroteKeys
	}
	wroteKeys := sc.wroteKeys
	if !hasUnits {
		pm.BatchPhases.HostRouteSeconds += time.Since(routeStart).Seconds()
		return nil
	}

	// Pass 2: route the client transactions. Single-op reads of a
	// replicated key that was fresh at batch start round-robin over the
	// owner and its copies (a delete pins them to the owner); single-op
	// puts of a replicated key with siblings are pinned to one owner
	// tasklet so batch order decides the final value; conflict groups
	// are pinned as a whole.
	// putGroups allocates the tasklet-pin ids of the legacy
	// replicated-put rule; the ids are negative below -1 so they can
	// never collide with conflict-group roots (transaction indexes).
	// The engine's fused directory-free sweep routed everything in
	// pass 1 already — without a directory there are no replicas (the
	// Placement contract pins Replicas ≡ nil) and no put groups, so
	// the routing switch below is all no-ops.
	if !fusedRoute {
		clear(sc.putGroups)
		for i := range txns {
			if metas[i].coordinated || len(txns[i].Ops) == 0 {
				continue
			}
			unit := routedUnit{ops: txns[i].Ops, ti: i, group: metas[i].group}
			target := metas[i].soleDPU
			if len(unit.ops) == 1 && unit.group < 0 {
				op := unit.ops[0]
				switch op.Kind {
				case OpGet:
					if !sc.keyW[op.Key].dels {
						if reps := pm.place.Replicas(op.Key); len(reps) > 0 {
							if t := i % (len(reps) + 1); t > 0 {
								target = reps[t-1]
							}
						}
					}
				case OpPut:
					if kw := sc.keyW[op.Key]; pm.dir != nil && kw.puts > 1 && len(pm.dir.allReplicas(op.Key)) > 0 && !kw.dels {
						id, ok := sc.putGroups[op.Key]
						if !ok {
							id = -2 - len(sc.putGroups)
							sc.putGroups[op.Key] = id
						}
						unit.group = id
					}
				}
			}
			sc.addUnit(target, unit)
		}
	}

	// Pass 3: shadow ops for written replicated keys, coalesced into
	// this round. A guaranteed delete invalidates; statically-known
	// puts write through the batch's last value; everything else
	// (guarded or multi-op writers, conditional deletes) leaves the
	// copies stale for a later refresh or reap.
	dropAfter := sc.dropAfter[:0]
	freshAfter := sc.freshAfter[:0]
	staleAfter := sc.staleAfter[:0]
	clear(sc.throughPut)
	throughPut := sc.throughPut
	if pm.dir != nil {
		slices.Sort(wroteKeys)
		for _, k := range wroteKeys {
			kw := sc.keyW[k]
			copies := pm.dir.allReplicas(k)
			if len(copies) == 0 {
				continue
			}
			if kw.delsCommit {
				for _, r := range copies {
					sc.addUnit(r, routedUnit{ops: sc.shadowOp(Op{Kind: OpDelete, Key: k}), ti: -1, group: -1, kind: unitShadow})
				}
				dropAfter = append(dropAfter, k)
				continue
			}
			if kw.dels || kw.fk != fkTrue {
				staleAfter = append(staleAfter, k)
				continue
			}
			for _, r := range copies {
				sc.addUnit(r, routedUnit{ops: sc.shadowOp(Op{Kind: OpPut, Key: k, Value: kw.lastPut}), ti: -1, group: -1, kind: unitShadow})
			}
			freshAfter = append(freshAfter, k)
			throughPut[k] = true
		}

		// Pass 4: refresh the stale copies this window does not write,
		// with the owner's pre-batch value read in the quiescent window.
		for _, k := range pm.dir.staleKeys() {
			kw := sc.keyW[k]
			if kw.wrote || kw.dels || coordWritten[k] {
				continue
			}
			v, ok := pm.hostGet(pm.place.Owner(k), k)
			copies := pm.dir.allReplicas(k)
			if !ok {
				for _, r := range copies {
					sc.addUnit(r, routedUnit{ops: sc.shadowOp(Op{Kind: OpDelete, Key: k}), ti: -1, group: -1, kind: unitShadow})
				}
				dropAfter = append(dropAfter, k)
				continue
			}
			for _, r := range copies {
				sc.addUnit(r, routedUnit{ops: sc.shadowOp(Op{Kind: OpPut, Key: k, Value: v}), ti: -1, group: -1, kind: unitShadow})
			}
			freshAfter = append(freshAfter, k)
		}
	}
	sc.dropAfter, sc.freshAfter, sc.staleAfter = dropAfter, freshAfter, staleAfter

	if !pm.hostSerial && len(sc.dpuTouched)*8 >= len(sc.perDPU) {
		// Dense batch: rebuilding the touched set by an ascending fleet
		// scan beats sorting it (the 2500-DPU sweeps touch nearly every
		// DPU every batch). Same set, same ascending order.
		touched := sc.dpuTouched[:0]
		for id := range sc.perDPU {
			if len(sc.perDPU[id]) > 0 || sc.execBuckets[id] > 0 {
				touched = append(touched, id)
			}
		}
		sc.dpuTouched = touched
	} else {
		slices.Sort(sc.dpuTouched)
	}
	involved := sc.dpuTouched
	clear(sc.shadowFailed)

	// The round takes the slowest DPU, so charge the worst-case bucket
	// in operations — shadow maintenance included, multi-op
	// transactions counted op by op.
	maxOps, maxShadowOps := 0, 0
	for _, id := range involved {
		// Inline-applied shadow ops pre-seeded their bucket during pass
		// 1 (perDPU holds no unit for them); routed units add on top.
		ops := sc.execBuckets[id]
		for _, u := range sc.perDPU[id] {
			ops += len(u.ops)
		}
		sc.execBuckets[id] = ops
		if ops > maxOps {
			maxOps = ops
		}
		if pm.isShadow(id) && ops > maxShadowOps {
			maxShadowOps = ops
		}
	}

	spec := RoundSpec{
		Involved:     len(involved),
		ScatterBytes: 24 * maxOps,
		GatherBytes:  16 * maxOps,
		IDs:          involved,
		Program:      pm.execProgFn,
	}
	if pm.sampled {
		// Launch kernels only on the simulated representatives; the
		// worst unsimulated bucket is charged analytically through the
		// round's kernel floor (transfer costs keep counting every
		// involved DPU either way).
		simIDs := sc.simInvolved[:0]
		for _, id := range involved {
			if pm.sim[id] {
				simIDs = append(simIDs, id)
			}
		}
		sc.simInvolved = simIDs
		spec.IDs = simIDs
		spec.AnalyticKernelSeconds = dpu.EstimateKernelSeconds(pm.opCycles, maxShadowOps, 0)
	}
	pm.BatchPhases.HostRouteSeconds += time.Since(routeStart).Seconds()
	if err := pm.fleet.Round(spec); err != nil {
		return err
	}
	// Shadow-op failures on simulated DPUs were staged per kernel
	// context (tasklets of one DPU serialize cooperatively, so the
	// staging needs no lock); fold them into the batch's failure set.
	// Set-union semantics make the fold order irrelevant.
	for _, id := range spec.IDs {
		for _, k := range pm.exec[id].failed {
			sc.shadowFailed[k] = true
		}
	}
	if pm.sampled {
		// Apply the unsimulated buckets on their host-side shadow
		// shards — exact results, no cycles — then refresh the analytic
		// per-op rate from what the simulated kernels just measured so
		// the next round's floor tracks the live workload.
		shadowStart := time.Now()
		if pm.hostSerial {
			for _, id := range involved {
				if pm.sim[id] {
					continue
				}
				if err := pm.shadowRunUnits(id, sc.perDPU[id], results); err != nil {
					return err
				}
			}
		} else if !inlineShadow {
			if err := pm.shadowApplyEngine(involved, sc.perDPU, results); err != nil {
				return err
			}
		}
		pm.BatchPhases.HostShadowSeconds += time.Since(shadowStart).Seconds()
		var simSecs float64
		simOps := 0
		for _, id := range sc.simInvolved {
			simSecs += pm.exec[id].lastSeconds
			simOps += sc.execBuckets[id]
		}
		if simOps > 0 && simSecs > 0 {
			pm.opCycles = simSecs * dpu.DefaultClockHz / float64(simOps)
		}
	}
	shadowFailed := sc.shadowFailed
	if pm.dir != nil {
		// The shadow ops physically ran; commit the deferred directory
		// mutations, then re-stale any key whose copies or owner put
		// failed (the copy set is behind or ahead of the owner — a later
		// batch refreshes it from the owner).
		for _, k := range dropAfter {
			pm.dir.dropReplicas(k)
		}
		for _, k := range freshAfter {
			pm.dir.markFresh(k)
		}
		for _, k := range staleAfter {
			pm.dir.markStale(k)
		}
		for k := range shadowFailed {
			pm.dir.markStale(k)
		}
		for i := range txns {
			if metas[i].coordinated {
				continue
			}
			// Transactional units record store-level failures at the
			// txn level (their flush rolled back, so the owner kept its
			// old value while the copies got the write-through image);
			// single-op units record them per op.
			failed := results[i].Err != nil
			for j, op := range txns[i].Ops {
				if op.Kind == OpPut && throughPut[op.Key] &&
					(failed || results[i].Results[j].Err != nil) {
					pm.dir.markStale(op.Key)
				}
			}
		}
	}
	return nil
}

// writebackRound is the commit round of the kernel-side commit
// protocol: one fleet round whose kernels execute the batch's compiled
// apply programs. Kernel-applied groups run whole transactions —
// guards, overlay, flush rollback — near their data on their home DPU;
// multi-owner groups' host-decided puts and deletes run as commit
// units on their owners, together with the replica-copy deletes the
// commits imply. Charging follows the execute round's rules: worst
// per-DPU scatter/gather buckets on the wire (instruction stream +
// operand tables down, apply results up), real kernel cycles on
// simulated DPUs, and the calibrated apply-instruction rate — refreshed
// from every round with simulated work — for unsimulated shadow
// shards, which also run the same units host-side so outcomes stay
// exact. Replica directory maintenance is the transfer protocol
// unchanged: copies of kernel-written keys go stale (their outcome was
// decided in-kernel) and a later window refreshes or reaps them;
// copies of host-decided deletes are dropped in-round.
func (pm *PartitionedMap) writebackRound(txns []Txn, metas []txnMeta, results []TxnResult, state map[uint64]uint64) error {
	compileStart := time.Now()
	sc := &pm.sc
	for _, id := range sc.wbTouched {
		sc.wbPerDPU[id] = sc.wbPerDPU[id][:0]
		sc.wbInstrBuckets[id] = 0
	}
	sc.wbTouched = sc.wbTouched[:0]
	sc.wbInstrs = sc.wbInstrs[:0]
	sc.remOps = sc.remOps[:0]

	// Kernel-applied transactions, in batch order; members of one group
	// share the group root, which pins them to one tasklet.
	for _, ti := range sc.coordinated {
		m := &metas[ti]
		if !m.kernelApply {
			continue
		}
		u := routedUnit{ops: txns[ti].Ops, ti: ti, group: m.root, kind: unitApply}
		u.prog = sc.compileApply(u.ops)
		u.rem = sc.remOperands(u.ops, m.home, pm.owner, state)
		sc.addWbUnit(m.home, u)
	}

	// Host-prepared commit records of the multi-owner groups: puts of
	// surviving dirty keys to their owners, deletes for vanished keys
	// and the replica copies of deleted keys.
	sc.dirtyKeys = appendMapKeys(sc.dirtyKeys[:0], sc.dirty)
	dirtyKeys := sc.dirtyKeys
	wbKeys := dirtyKeys[:0]
	for _, k := range dirtyKeys {
		if _, ok := state[k]; ok || sc.startPresent[k] {
			wbKeys = append(wbKeys, k)
		}
	}
	dropAfter, staleAfter := sc.dropAfter[:0], sc.staleAfter[:0]
	for _, k := range wbKeys {
		o := pm.owner(k)
		if v, ok := state[k]; ok {
			sc.addWbUnit(o, sc.commitUnit(Op{Kind: OpPut, Key: k, Value: v}))
			if pm.dir != nil && len(pm.dir.allReplicas(k)) > 0 {
				// Copies go stale and a later batch refreshes them from
				// the owner — same protocol as transfers.
				staleAfter = append(staleAfter, k)
			}
			continue
		}
		sc.addWbUnit(o, sc.commitUnit(Op{Kind: OpDelete, Key: k}))
		if pm.dir != nil {
			for _, r := range pm.dir.allReplicas(k) {
				sc.addWbUnit(r, sc.commitUnit(Op{Kind: OpDelete, Key: k}))
			}
			dropAfter = append(dropAfter, k)
		}
	}

	// Copies of kernel-written keys: the write's outcome (guard aborts,
	// final values) was decided inside the kernel and the host does not
	// re-derive it, so the copies conservatively go stale; the next
	// window's refresh restores or reaps them from the owner.
	if pm.dir != nil {
		for _, ti := range sc.coordinated {
			if !metas[ti].kernelApply {
				continue
			}
			for _, op := range txns[ti].Ops {
				if op.Kind != OpGet && len(pm.dir.allReplicas(op.Key)) > 0 {
					staleAfter = append(staleAfter, op.Key)
				}
			}
		}
	}
	sc.dropAfter, sc.staleAfter = dropAfter, staleAfter

	if len(sc.wbTouched) == 0 {
		pm.BatchPhases.HostCompileSeconds += time.Since(compileStart).Seconds()
		return nil
	}
	before := pm.fleet.Stats()
	slices.Sort(sc.wbTouched)
	involved := sc.wbTouched
	maxScatter, maxGather, maxShadowInstrs := 0, 0, 0
	for _, id := range involved {
		bytes, instrs, gather := 0, 0, 0
		for _, u := range sc.wbPerDPU[id] {
			bytes += len(u.prog)*dpu.ApplyInstrBytes + len(u.rem)*dpu.ApplyOperandBytes
			instrs += len(u.prog) + len(u.rem)
			if u.kind == unitApply {
				gather += 16 * len(u.ops)
			}
		}
		sc.wbInstrBuckets[id] = instrs
		if bytes > maxScatter {
			maxScatter = bytes
		}
		if gather > maxGather {
			maxGather = gather
		}
		if pm.isShadow(id) && instrs > maxShadowInstrs {
			maxShadowInstrs = instrs
		}
	}
	spec := RoundSpec{
		Involved:     len(involved),
		ScatterBytes: maxScatter,
		GatherBytes:  maxGather,
		IDs:          involved,
		Program:      pm.wbProgFn,
	}
	if pm.sampled {
		simIDs := sc.wbSimIDs[:0]
		for _, id := range involved {
			if pm.sim[id] {
				simIDs = append(simIDs, id)
			}
		}
		sc.wbSimIDs = simIDs
		spec.IDs = simIDs
		spec.AnalyticKernelSeconds = dpu.EstimateApplyKernelSeconds(pm.applyCycles, maxShadowInstrs, 0)
	}
	pm.BatchPhases.HostCompileSeconds += time.Since(compileStart).Seconds()
	if err := pm.fleet.Round(spec); err != nil {
		return err
	}
	if pm.sampled {
		shadowStart := time.Now()
		if pm.hostSerial {
			for _, id := range involved {
				if pm.sim[id] {
					continue
				}
				if err := pm.shadowRunUnits(id, sc.wbPerDPU[id], results); err != nil {
					return err
				}
			}
		} else if err := pm.shadowApplyEngine(involved, sc.wbPerDPU, results); err != nil {
			return err
		}
		pm.BatchPhases.HostShadowSeconds += time.Since(shadowStart).Seconds()
		var simSecs float64
		simInstrs := 0
		for _, id := range sc.wbSimIDs {
			simSecs += pm.exec[id].lastSeconds
			simInstrs += sc.wbInstrBuckets[id]
		}
		if simInstrs > 0 && simSecs > 0 {
			pm.applyCycles = simSecs * dpu.DefaultClockHz / float64(simInstrs)
		}
	}
	after := pm.fleet.Stats()
	launch := after.LaunchSeconds - before.LaunchSeconds
	pm.BatchPhases.ApplySeconds += launch
	if wb := (after.WallSeconds - before.WallSeconds) - launch; wb > 0 {
		pm.BatchPhases.WritebackSeconds += wb
	}
	for _, k := range sc.dropAfter {
		pm.dir.dropReplicas(k)
	}
	for _, k := range sc.staleAfter {
		pm.dir.markStale(k)
	}
	return nil
}

// runExecProgram and runWbProgram are the Round program values of the
// execute and writeback rounds on one simulated DPU; both run their
// unit list through runUnitProgram.
func (pm *PartitionedMap) runExecProgram(id int, d *dpu.DPU) (float64, error) {
	return pm.runUnitProgram(id, d, pm.sc.perDPU[id])
}

func (pm *PartitionedMap) runWbProgram(id int, d *dpu.DPU) (float64, error) {
	return pm.runUnitProgram(id, d, pm.sc.wbPerDPU[id])
}

// runUnitProgram stripes one DPU's routed units over tasklets by
// position — grouped units (a conflict group, or the puts of one
// replicated key) pinned to a single tasklet so they commit in batch
// order — and relaunches the DPU's persistent tasklet programs. A
// commit unit's store-level failure fails the whole round: its write
// was already decided by the prepare phase, so dropping it would
// desync the store (the historical host-side writeback was equally
// loud).
func (pm *PartitionedMap) runUnitProgram(id int, d *dpu.DPU, units []routedUnit) (float64, error) {
	e := pm.exec[id]
	e.units = units
	e.wbErr = nil
	e.failed = e.failed[:0]
	d.ResetRun()
	n := pm.tasklets
	if n > len(units) {
		n = len(units)
	}
	for ti := 0; ti < n; ti++ {
		e.lists[ti] = e.lists[ti][:0]
	}
	clear(e.groupTasklet)
	groups := 0
	for j := range units {
		if units[j].group != -1 {
			ti, ok := e.groupTasklet[units[j].group]
			if !ok {
				ti = groups % n
				e.groupTasklet[units[j].group] = ti
				groups++
			}
			e.lists[ti] = append(e.lists[ti], j)
			continue
		}
		e.lists[j%n] = append(e.lists[j%n], j)
	}
	cycles, err := d.Run(e.progs[:n])
	if err != nil {
		return 0, fmt.Errorf("host: batch on dpu %d: %w", id, err)
	}
	if e.wbErr != nil {
		return 0, fmt.Errorf("host: writeback commit on dpu %d: %w", id, e.wbErr)
	}
	secs := d.Seconds(cycles)
	e.lastSeconds = secs
	return secs, nil
}

// runTasklet is the body of one persistent tasklet program: it runs the
// slot's share of the DPU's routed units against the on-DPU map through
// the slot's reusable STM descriptor. Writeback-round units carry a
// compiled apply program: the kernel charges one MRAM instruction fetch
// per ApplyInstr, decodes the program, and for kernel-applied units
// evaluates the decoded ops through the kernelView — remote keys from
// the scattered operand table (paying the operand fetch), home keys
// from this DPU's own partition.
func (e *dpuExec) runTasklet(ti int, t *dpu.Tasklet) {
	pm := e.pm
	m := pm.maps[e.id]
	units := e.units
	results := pm.sc.curResults
	tx := e.txFor(ti, t)
	es := &e.eval[ti]
	es.view.m, es.view.tx = m, tx
	for _, j := range e.lists[ti] {
		u := units[j]
		for range u.prog {
			t.FetchApplyInstr()
		}
		if u.ti < 0 || (len(u.ops) == 1 && !isRMW(u.ops[0].Kind)) {
			// Plain single op (shadow, commit record, or a group member
			// whose sole op needs no overlay): one STM transaction per
			// op, the PR 2 path.
			op := u.ops[0]
			var res OpResult
			switch op.Kind {
			case OpGet:
				tx.Atomic(func(tx *core.Tx) {
					res.Value, res.OK = m.Get(tx, op.Key)
				})
			case OpPut:
				tx.Atomic(func(tx *core.Tx) {
					ins, err := m.Put(tx, op.Key, op.Value)
					res.OK, res.Err = ins, err
				})
			case OpDelete:
				tx.Atomic(func(tx *core.Tx) {
					res.OK = m.Delete(tx, op.Key)
				})
			}
			if u.ti >= 0 {
				results[u.ti].Results[0] = res
				results[u.ti].Committed = res.Err == nil
				results[u.ti].Err = res.Err
			} else if res.Err != nil {
				if u.kind == unitCommit {
					// Prepared writes must land; see runUnitProgram.
					// Tasklets of one DPU serialize cooperatively, so the
					// per-DPU field needs no lock.
					e.wbErr = res.Err
				} else {
					// Staged on this DPU's context (same no-lock argument
					// as wbErr); executeRound folds the stages into
					// shadowFailed after the round.
					e.failed = append(e.failed, op.Key)
				}
			}
			continue
		}
		// Transactional unit: evaluate the whole group of ops with
		// all-or-nothing semantics inside one STM transaction, then
		// flush the overlay. A flush failure (a partition out of
		// capacity) rolls the already-flushed writes back to their
		// pre-txn images, so the abort stays all-or-nothing.
		ops := u.ops
		var lk keyLookup = &es.view
		if u.kind == unitApply {
			ops = es.decodeProg(u.prog)
			es.kview.rem = u.rem
			es.kview.t = t
			lk = &es.kview
		}
		res := results[u.ti].Results
		var committed bool
		var flushErr error
		tx.Atomic(func(tx *core.Tx) {
			flushErr = nil // fresh attempt after an abort
			for r := range res {
				res[r] = OpResult{}
			}
			es.view.tx = tx
			es.kview.local = es.view
			order, ok := es.run(ops, res, lk)
			committed = ok
			if !ok {
				return
			}
			flushed := 0
			for _, k := range order {
				if es.writes[k].del {
					m.Delete(tx, k)
					flushed++
					continue
				}
				if _, err := m.Put(tx, k, es.writes[k].val); err != nil {
					flushErr = err
					break
				}
				flushed++
			}
			if flushErr == nil {
				return
			}
			for r := flushed - 1; r >= 0; r-- {
				k := order[r]
				p := es.prior[k]
				if p.del {
					m.Delete(tx, k) // the put allocated it; free it again
					continue
				}
				// Restoring an overwritten or deleted record reuses its
				// slot (the failed put allocated nothing), so this put
				// cannot itself run out of capacity.
				m.Put(tx, k, p.val)
			}
		})
		results[u.ti].Committed = committed && flushErr == nil
		results[u.ti].Err = flushErr
	}
}

// shadowRunUnits applies one unsimulated DPU's routed units to its
// host-side shadow shard, sequentially in routed order — batch order
// for pinned groups, one valid serialization for independent plain ops
// (whose same-key order within a batch is unspecified by contract).
// Results, guarded aborts, capacity failures and flush rollbacks are
// computed exactly as the tasklet path computes them; only the cycle
// cost is skipped, because the round already charged this bucket
// analytically. Kernel-applied units resolve their remote keys through
// the same operand-table-first view the kernels use (compile∘decode is
// the identity, so the shard executes the original ops directly), and a
// commit unit's store failure is as loud here as on a simulated DPU.
func (pm *PartitionedMap) shadowRunUnits(id int, units []routedUnit, results []TxnResult) error {
	sc := &pm.sc
	for _, u := range units {
		if u.ti < 0 || (len(u.ops) == 1 && !isRMW(u.ops[0].Kind)) {
			op := u.ops[0]
			var res OpResult
			switch op.Kind {
			case OpGet:
				res.Value, res.OK = pm.shadowGet(id, op.Key)
			case OpPut:
				ins, err := pm.shadowPut(id, op.Key, op.Value)
				res.OK, res.Err = ins, err
			case OpDelete:
				res.OK = pm.shadowDelete(id, op.Key)
			}
			if u.ti >= 0 {
				results[u.ti].Results[0] = res
				results[u.ti].Committed = res.Err == nil
				results[u.ti].Err = res.Err
			} else if res.Err != nil {
				if u.kind == unitCommit {
					return fmt.Errorf("host: writeback commit on dpu %d: %w", id, res.Err)
				}
				sc.shadowFailed[op.Key] = true
			}
			continue
		}
		var lk keyLookup = stateLookup(pm.shadow[id])
		if u.kind == unitApply {
			sc.shadowRem.rem = u.rem
			sc.shadowRem.next = pm.shadow[id]
			lk = &sc.shadowRem
		}
		res := results[u.ti].Results
		for r := range res {
			res[r] = OpResult{}
		}
		order, ok := sc.eval.run(u.ops, res, lk)
		var flushErr error
		if ok {
			flushed := 0
			for _, k := range order {
				if sc.eval.writes[k].del {
					pm.shadowDelete(id, k)
					flushed++
					continue
				}
				if _, err := pm.shadowPut(id, k, sc.eval.writes[k].val); err != nil {
					flushErr = err
					break
				}
				flushed++
			}
			if flushErr != nil {
				for r := flushed - 1; r >= 0; r-- {
					k := order[r]
					p := sc.eval.prior[k]
					if p.del {
						pm.shadowDelete(id, k)
						continue
					}
					pm.shadowPut(id, k, p.val)
				}
			}
		}
		results[u.ti].Committed = ok && flushErr == nil
		results[u.ti].Err = flushErr
	}
	return nil
}
