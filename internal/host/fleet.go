package host

import (
	"fmt"

	"pimstm/internal/dpu"
)

// ExecMode selects how a Fleet schedules host↔DPU transfers around
// kernel launches.
type ExecMode int

const (
	// Lockstep is the classic UPMEM host loop the paper's harness uses:
	// scatter, launch, wait, gather — strictly serialized, so every
	// transfer is exposed on the critical path.
	Lockstep ExecMode = iota
	// Pipelined double-buffers the per-DPU input/output regions so the
	// host transfer engine streams round r+1's scatter (and round r-1's
	// gather) while the fleet executes round r; only the part of the
	// transfer work that exceeds the kernel time is exposed
	// (SimplePIM-style batched transfer scheduling).
	Pipelined
)

// String names the mode for reports.
func (m ExecMode) String() string {
	if m == Pipelined {
		return "pipelined"
	}
	return "lockstep"
}

// RoundSpec describes one fleet round: an optional scatter, a kernel
// launch on the involved DPUs, and an optional gather.
type RoundSpec struct {
	// Involved is the number of DPUs taking part in the round's
	// transfers (0 = the whole fleet). Transfers to distinct ranks
	// proceed in parallel, so this scales the bandwidth term of
	// TransferSeconds.
	Involved int
	// ScatterBytes is the per-involved-DPU payload pushed before the
	// launch; 0 skips the scatter entirely (no batch overhead).
	ScatterBytes int
	// GatherBytes is the per-involved-DPU payload pulled after the
	// kernel completes; 0 skips the gather.
	GatherBytes int
	// IDs restricts which simulated DPUs run Program this round
	// (nil = all simulated DPUs). Transfer cost follows Involved,
	// which defaults to len(IDs) when IDs are given.
	IDs []int
	// Program executes the round's kernel on one simulated DPU and
	// returns its modeled seconds. The fleet's round launch time is the
	// slowest program. d is the fleet's persistent DPU for id, or nil
	// when the fleet was built without a factory. A nil Program makes
	// the round transfer-only.
	Program func(id int, d *dpu.DPU) (float64, error)
	// AnalyticKernelSeconds is a floor on the round's kernel time for
	// work charged analytically rather than simulated — the sampled
	// fleet's estimate of its worst unsimulated bucket. The round's
	// kernel is the slower of the slowest Program and this floor
	// (0 = fully simulated round, the exact mode).
	AnalyticKernelSeconds float64
}

// RoundStats is the modeled timing of one executed round.
type RoundStats struct {
	// Scatter, Launch and Gather are the component durations.
	Scatter, Launch, Gather float64
	// Start and End place the round on the fleet's modeled clock
	// (End includes the round's gather, which in pipelined mode may
	// drain during a later round's kernel).
	Start, End float64
}

// FleetStats aggregates the modeled time of a fleet execution.
type FleetStats struct {
	// Rounds executed so far.
	Rounds int
	// LaunchSeconds sums the slowest-DPU kernel time of every round.
	LaunchSeconds float64
	// TransferSeconds sums the host↔DPU engine time (scatter + gather).
	TransferSeconds float64
	// WallSeconds is the modeled end-to-end time under the fleet's
	// mode, including any still-pending gather.
	WallSeconds float64
	// QuiescentSeconds is the host-owned part of the wall clock — the
	// windows where every DPU is idle and the CPU may touch their
	// memory (WallSeconds − LaunchSeconds).
	QuiescentSeconds float64
	// LockstepSeconds is what the same rounds would cost without
	// pipelining (scatter + launch + gather, serialized); in Lockstep
	// mode it equals WallSeconds.
	LockstepSeconds float64
}

// Fleet is a reusable multi-DPU executor: it owns the simulated DPUs of
// a fleet, runs rounds of scatter → launch → gather across them, and
// keeps a modeled clock that either serializes the phases (Lockstep) or
// overlaps transfers with kernels (Pipelined).
//
// The functional execution order is identical in both modes — round r+1
// always runs after round r on every DPU, so data dependencies between
// rounds stay correct; only the modeled wall clock changes. A Fleet is
// not safe for concurrent Round calls (rounds are inherently ordered);
// the parallelism lives inside a round, across DPUs.
type Fleet struct {
	opt  FleetOptions
	mode ExecMode

	ids  []int
	dpus map[int]*dpu.DPU

	// Pipeline clock state.
	started              bool
	engineFree           float64 // host transfer engine free time
	prevKStart, prevKEnd float64 // previous round's kernel interval
	pendingGather        float64 // previous round's gather, not yet drained

	stats  FleetStats
	rounds []RoundStats

	// roundSecs is Round's reusable per-program result scratch; rounds
	// run back to back on the serving hot path, so per-round slices
	// would dominate the allocation profile.
	roundSecs []float64
}

// NewFleet builds a fleet executor. mk, when non-nil, creates the
// persistent simulated DPU for each simulated id (in id order, so
// allocation is deterministic); a nil mk leaves DPU construction to the
// round programs (useful when each round builds fresh shards).
func NewFleet(opt FleetOptions, mode ExecMode, mk func(id int) (*dpu.DPU, error)) (*Fleet, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	f := &Fleet{opt: opt, mode: mode, ids: opt.simulated()}
	if mk != nil {
		f.dpus = make(map[int]*dpu.DPU, len(f.ids))
		for _, id := range f.ids {
			d, err := mk(id)
			if err != nil {
				return nil, fmt.Errorf("host: fleet dpu %d: %w", id, err)
			}
			f.dpus[id] = d
		}
	}
	return f, nil
}

// Size is the fleet size n (not the simulated sample size).
func (f *Fleet) Size() int { return f.opt.DPUs }

// Mode reports the fleet's transfer-scheduling mode.
func (f *Fleet) Mode() ExecMode { return f.mode }

// SimulatedIDs lists the DPU ids actually simulated, ascending: every
// id under Exact, otherwise Sample ids spread deterministically across
// the fleet by ids[i] = i·DPUs/Sample (so id 0 is always simulated and
// the sample covers the id space evenly).
func (f *Fleet) SimulatedIDs() []int { return append([]int(nil), f.ids...) }

// DPU returns the persistent simulated DPU for id (nil without a
// factory or for unsimulated ids).
func (f *Fleet) DPU(id int) *dpu.DPU { return f.dpus[id] }

// Round executes one round: it runs the spec's program on the selected
// simulated DPUs with bounded parallelism, takes the slowest as the
// round's launch time, and advances the modeled clock according to the
// fleet's mode.
func (f *Fleet) Round(spec RoundSpec) error {
	inv := spec.Involved
	if inv <= 0 && spec.IDs != nil {
		// A round restricted to explicit IDs involves exactly those
		// DPUs; defaulting to the whole fleet would over-credit
		// rank-parallel bandwidth for a round touching two DPUs.
		inv = len(spec.IDs)
	}
	if inv <= 0 {
		inv = f.opt.DPUs
	}
	var scatter, gather float64
	if spec.ScatterBytes > 0 {
		scatter = TransferSeconds(inv, spec.ScatterBytes)
	}
	if spec.GatherBytes > 0 {
		gather = TransferSeconds(inv, spec.GatherBytes)
	}

	var kernel float64
	if spec.Program != nil {
		ids := spec.IDs
		if ids == nil {
			ids = f.ids
		}
		if cap(f.roundSecs) < len(ids) {
			f.roundSecs = make([]float64, len(ids))
		}
		secs := f.roundSecs[:len(ids)]
		err := parallelForN(len(ids), f.opt.Parallelism, func(i int) error {
			s, err := spec.Program(ids[i], f.dpus[ids[i]])
			if err != nil {
				return err
			}
			secs[i] = s
			return nil
		})
		if err != nil {
			return err
		}
		for _, s := range secs {
			if s > kernel {
				kernel = s
			}
		}
	}
	if spec.AnalyticKernelSeconds > kernel {
		kernel = spec.AnalyticKernelSeconds
	}

	f.schedule(scatter, kernel, gather)
	f.stats.Rounds++
	f.stats.LaunchSeconds += kernel
	f.stats.TransferSeconds += scatter + gather
	f.stats.LockstepSeconds += scatter + kernel + gather
	return nil
}

// schedule advances the modeled clock by one round.
func (f *Fleet) schedule(scatter, kernel, gather float64) {
	if f.mode == Lockstep {
		// Drain everything serially: scatter, kernel, gather.
		start := f.engineFree
		if f.prevKEnd > start {
			start = f.prevKEnd
		}
		kStart := start + scatter
		kEnd := kStart + kernel
		f.engineFree = kEnd + gather
		f.prevKStart, f.prevKEnd = kStart, kEnd
		f.rounds = append(f.rounds, RoundStats{
			Scatter: scatter, Launch: kernel, Gather: gather,
			Start: start, End: f.engineFree,
		})
		f.started = true
		return
	}

	// Pipelined: the transfer engine is a serial resource distinct from
	// DPU compute. This round's scatter may begin once the engine is
	// free and — double buffering: one standby input region — once the
	// previous round's kernel has launched and released it.
	sStart := f.engineFree
	if f.started && f.prevKStart > sStart {
		sStart = f.prevKStart
	}
	sEnd := sStart + scatter
	f.engineFree = sEnd
	// The previous round's gather drains next on the engine, once its
	// kernel has finished producing the output.
	f.drainPendingGather()
	// This round's kernel needs its input resident and the previous
	// kernel finished (one kernel in flight per DPU).
	kStart := sEnd
	if f.started && f.prevKEnd > kStart {
		kStart = f.prevKEnd
	}
	kEnd := kStart + kernel
	f.prevKStart, f.prevKEnd = kStart, kEnd
	f.pendingGather = gather
	f.started = true
	f.rounds = append(f.rounds, RoundStats{
		Scatter: scatter, Launch: kernel, Gather: gather,
		Start: sStart, End: kEnd, // End grows to the gather end when it drains
	})
}

// drainPendingGather schedules the previous round's gather on the
// engine and stamps that round's End.
func (f *Fleet) drainPendingGather() {
	if f.pendingGather <= 0 {
		if len(f.rounds) > 0 && f.prevKEnd > f.rounds[len(f.rounds)-1].End {
			f.rounds[len(f.rounds)-1].End = f.prevKEnd
		}
		return
	}
	gStart := f.engineFree
	if f.prevKEnd > gStart {
		gStart = f.prevKEnd
	}
	f.engineFree = gStart + f.pendingGather
	f.pendingGather = 0
	if len(f.rounds) > 0 {
		f.rounds[len(f.rounds)-1].End = f.engineFree
	}
}

// AdvanceTo moves the fleet's modeled clock forward so that no later
// round starts before t — the hook the serving layer uses to anchor a
// batch at its modeled flush time. If the transfer engine would sit
// idle until t, the previous round's pending gather drains during the
// idle window (it no longer competes with a scatter). Times already in
// the past are a no-op, so the clock never moves backwards.
func (f *Fleet) AdvanceTo(t float64) {
	if f.pendingGather > 0 {
		gStart := f.engineFree
		if f.prevKEnd > gStart {
			gStart = f.prevKEnd
		}
		if t > gStart {
			f.drainPendingGather()
		}
	}
	if t > f.engineFree {
		f.engineFree = t
	}
}

// wall returns the modeled end-to-end time if the fleet drained now.
func (f *Fleet) wall() float64 {
	w := f.engineFree
	if f.prevKEnd > w {
		w = f.prevKEnd
	}
	if f.pendingGather > 0 {
		w += f.pendingGather
	}
	return w
}

// Stats snapshots the modeled totals, counting any still-pending gather
// as if the fleet drained now.
func (f *Fleet) Stats() FleetStats {
	s := f.stats
	s.WallSeconds = f.wall()
	s.QuiescentSeconds = s.WallSeconds - s.LaunchSeconds
	if f.mode == Lockstep {
		s.LockstepSeconds = s.WallSeconds
	}
	return s
}

// Drain flushes the pending gather onto the clock and returns the
// final stats. Further rounds may still be submitted afterwards.
func (f *Fleet) Drain() FleetStats {
	f.drainPendingGather()
	if f.prevKEnd > f.engineFree {
		f.engineFree = f.prevKEnd
	}
	return f.Stats()
}

// RoundStats lists the per-round timings recorded so far.
func (f *Fleet) RoundStats() []RoundStats {
	return append([]RoundStats(nil), f.rounds...)
}
