package host

import (
	"testing"

	"pimstm/internal/core"
)

func newDirPM(t *testing.T, dpus int) (*PartitionedMap, *Directory) {
	t.Helper()
	dir := NewDirectory(dpus)
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Placement: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pm, dir
}

// keysOwnedBy finds n keys homed on the given DPU by the static hash.
func keysOwnedBy(p Placement, dpu, n int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < n; k++ {
		if p.Owner(k) == dpu {
			out = append(out, k)
		}
	}
	return out
}

func TestPlacementValidation(t *testing.T) {
	if _, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 64, Tasklets: 4,
		Placement: NewDirectory(2),
	}); err == nil {
		t.Fatal("placement/fleet size mismatch accepted")
	}
}

// TestDirectoryRoutesLikeStaticWhenEmpty: an empty directory is the
// static hash — same owners, no replicas — so the two placements are
// interchangeable until the control plane acts.
func TestDirectoryRoutesLikeStaticWhenEmpty(t *testing.T) {
	static := NewStaticHash(8)
	dir := NewDirectory(8)
	for k := uint64(0); k < 2000; k++ {
		if static.Owner(k) != dir.Owner(k) {
			t.Fatalf("key %d: static owner %d, directory owner %d", k, static.Owner(k), dir.Owner(k))
		}
		if static.Replicas(k) != nil || dir.Replicas(k) != nil {
			t.Fatalf("key %d replicated out of nowhere", k)
		}
	}
}

// TestMigrateKeys: migration rehomes keys through two paid fleet
// rounds, conserves the data, and routes subsequent traffic to the new
// owner.
func TestMigrateKeys(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	keys := keysOwnedBy(dir, 0, 6)
	var ops []Op
	for i, k := range keys {
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: uint64(100 + i)})
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()

	moves := map[uint64]int{keys[0]: 2, keys[1]: 2, keys[2]: 3}
	if err := pm.MigrateKeys(moves); err != nil {
		t.Fatal(err)
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("migration took %d rounds, want 2 (gather + scatter)", got)
	}
	if after.TransferSeconds <= before.TransferSeconds {
		t.Fatal("migration transfers modeled as free")
	}
	if pm.BatchSeconds <= 0 {
		t.Fatal("migration window not accounted in BatchSeconds")
	}
	for k, dst := range moves {
		if dir.Owner(k) != dst {
			t.Fatalf("key %d owned by %d, want %d", k, dir.Owner(k), dst)
		}
	}
	if pm.Len() != len(keys) {
		t.Fatalf("len = %d after migration, want %d", pm.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := pm.Get(k); !ok || v != uint64(100+i) {
			t.Fatalf("key %d = %d,%v after migration", k, v, ok)
		}
	}

	// Batches keep working against the overridden homes.
	res, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: keys[0]}, {Kind: OpPut, Key: keys[1], Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK || res[0].Value != 100 {
		t.Fatalf("get after migration = %+v", res[0])
	}
	if v, _ := pm.Get(keys[1]); v != 7 {
		t.Fatalf("put after migration stored %d", v)
	}

	// A no-op move (already home) runs zero rounds.
	pre := pm.Stats().Rounds
	if err := pm.MigrateKeys(map[uint64]int{keys[0]: 2}); err != nil {
		t.Fatal(err)
	}
	if pm.Stats().Rounds != pre {
		t.Fatal("no-op migration charged rounds")
	}

	// Migration needs the directory.
	static := newPM(t, 4)
	if err := static.MigrateKeys(map[uint64]int{1: 0}); err == nil {
		t.Fatal("migration accepted on static placement")
	}
}

// TestReplicateKeysSpreadsReads: a promoted key's reads round-robin
// over owner + copies, shrinking the worst-case bucket — the scatter of
// an all-hot-key batch is charged over three involved DPUs instead of
// one link-bound DPU.
func TestReplicateKeysSpreadsReads(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	k := keysOwnedBy(dir, 0, 1)[0]
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: k, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	before := pm.Stats()
	if err := pm.ReplicateKeys(map[uint64][]int{k: {1, 2}}); err != nil {
		t.Fatal(err)
	}
	after := pm.Stats()
	if got := after.Rounds - before.Rounds; got != 2 {
		t.Fatalf("promotion took %d rounds, want 2", got)
	}
	if after.TransferSeconds <= before.TransferSeconds {
		t.Fatal("promotion transfers modeled as free")
	}
	if got := dir.Replicas(k); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("replicas = %v", got)
	}
	if pm.Len() != 1 {
		t.Fatalf("len = %d with 2 copies, want 1 distinct key", pm.Len())
	}

	// 30 gets of the hot key spread 10/10/10 over owner+copies: the
	// batch charges three involved DPUs at 10 ops each, not one
	// link-bound DPU at 30.
	pre := pm.Stats().TransferSeconds
	ops := make([]Op, 30)
	for i := range ops {
		ops[i] = Op{Kind: OpGet, Key: k}
	}
	res, err := pm.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK || r.Value != 42 {
			t.Fatalf("replicated get %d = %+v", i, r)
		}
	}
	want := TransferSeconds(3, 24*10) + TransferSeconds(3, 16*10)
	if got := pm.Stats().TransferSeconds - pre; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("replicated batch charged %.9fs, want %.9fs spread over 3 DPUs", got, want)
	}

	// The same batch against an unreplicated single-copy key would pay
	// the lone link.
	lone := TransferSeconds(1, 24*30) + TransferSeconds(1, 16*30)
	if want >= lone {
		t.Fatalf("spread (%.9fs) should undercut the lone link (%.9fs)", want, lone)
	}
}

// TestReplicaWriteProtocol drives the three write paths: a lone put
// writes through and the copies stay fresh; a multi-put batch leaves
// them stale until a later batch refreshes them from the owner; a
// delete invalidates the copies physically and in the directory.
func TestReplicaWriteProtocol(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	k := keysOwnedBy(dir, 0, 1)[0]
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: k, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReplicateKeys(map[uint64][]int{k: {1, 2}}); err != nil {
		t.Fatal(err)
	}

	// Lone put: write-through, copies stay fresh and serve the new
	// value immediately.
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: k, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if len(dir.Replicas(k)) != 2 {
		t.Fatalf("write-through dropped replicas: %v", dir.Replicas(k))
	}
	res, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: k}, {Kind: OpGet, Key: k}, {Kind: OpGet, Key: k}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK || r.Value != 2 {
			t.Fatalf("get %d after write-through = %+v", i, r)
		}
	}

	// Multi-put batch: the puts serialize on one owner tasklet, so the
	// batch's last value wins deterministically, the copies get it in
	// the same round, and they stay fresh.
	if _, err := pm.ApplyBatch([]Op{{Kind: OpPut, Key: k, Value: 3}, {Kind: OpPut, Key: k, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	if len(dir.Replicas(k)) != 2 {
		t.Fatalf("multi-put dropped the copies: %v", dir.Replicas(k))
	}
	if v, ok := pm.Get(k); !ok || v != 4 {
		t.Fatalf("owner has %d,%v after multi-put, want the batch's last value 4", v, ok)
	}
	res, err = pm.ApplyBatch([]Op{{Kind: OpGet, Key: k}, {Kind: OpGet, Key: k}, {Kind: OpGet, Key: k}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK || r.Value != 4 {
			t.Fatalf("get %d after multi-put = %+v, want 4 from every copy", i, r)
		}
	}

	// Delete: copies die with the key, in the same round.
	if _, err := pm.ApplyBatch([]Op{{Kind: OpDelete, Key: k}}); err != nil {
		t.Fatal(err)
	}
	if dir.Replicas(k) != nil || dir.allReplicas(k) != nil {
		t.Fatal("delete left replica bookkeeping behind")
	}
	if pm.Len() != 0 {
		t.Fatalf("len = %d after delete, want 0 (copies deleted too)", pm.Len())
	}
	if _, ok := pm.Get(k); ok {
		t.Fatal("deleted key still on owner")
	}
}

// TestTransferMarksReplicasStale: cross-DPU transfers change values
// underneath the copies; the copies must stop serving until refreshed.
func TestTransferMarksReplicasStale(t *testing.T) {
	pm, dir := newDirPM(t, 4)
	a := keysOwnedBy(dir, 0, 1)[0]
	b := keysOwnedBy(dir, 1, 1)[0]
	if _, err := pm.ApplyBatch([]Op{
		{Kind: OpPut, Key: a, Value: 1000},
		{Kind: OpPut, Key: b, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pm.ReplicateKeys(map[uint64][]int{a: {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if ok, err := pm.TransferBetween(a, b, 300); err != nil || !ok {
		t.Fatalf("transfer: %v %v", ok, err)
	}
	if dir.Replicas(a) != nil {
		t.Fatal("transfer left stale copies serving")
	}
	// The next batch refreshes and every read sees the moved total.
	res, err := pm.ApplyBatch([]Op{{Kind: OpGet, Key: a}, {Kind: OpGet, Key: a}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK || r.Value != 700 {
			t.Fatalf("get %d after transfer = %+v, want 700", i, r)
		}
	}
	if len(dir.Replicas(a)) != 2 {
		t.Fatalf("copies not refreshed after transfer: %v", dir.Replicas(a))
	}
	if s := dir.Stats(); s.Invalidations < 1 || s.Refreshes < 1 {
		t.Fatalf("directory stats missed the stale cycle: %+v", s)
	}
	res, err = pm.ApplyBatch([]Op{{Kind: OpGet, Key: a}, {Kind: OpGet, Key: a}, {Kind: OpGet, Key: a}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK || r.Value != 700 {
			t.Fatalf("replicated get %d after refresh = %+v", i, r)
		}
	}
}

// TestBatchSecondsPerBatchDelta is the BatchSeconds audit regression:
// the field is the wall-clock delta of the last batch, not the
// cumulative fleet clock. Under the pre-audit semantics the second
// batch reports the whole run and this test fails.
func TestBatchSecondsPerBatchDelta(t *testing.T) {
	pm := newPM(t, 4)
	var ops []Op
	for k := uint64(0); k < 64; k++ {
		ops = append(ops, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	first := pm.BatchSeconds
	if first <= 0 {
		t.Fatal("first batch not accounted")
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	second := pm.BatchSeconds
	wall := pm.Stats().WallSeconds
	if second <= 0 {
		t.Fatal("second batch not accounted")
	}
	if second >= wall {
		t.Fatalf("BatchSeconds %.9fs is cumulative (wall %.9fs), want the per-batch delta", second, wall)
	}
	// The deltas telescope onto the fleet clock.
	if sum := first + second; sum < wall-1e-12 || sum > wall+1e-12 {
		t.Fatalf("deltas sum to %.9fs, wall is %.9fs", sum, wall)
	}

	// Empty transfer batches are free under delta semantics.
	if _, err := pm.ApplyTransfers(nil); err != nil {
		t.Fatal(err)
	}
	if pm.BatchSeconds != 0 {
		t.Fatalf("empty transfer batch reported %.9fs", pm.BatchSeconds)
	}
}
