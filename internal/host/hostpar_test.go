package host

import (
	"reflect"
	"sync"
	"testing"

	"pimstm/internal/core"
)

// storeContents reads every key the trace could have touched back out
// of the served store — the observable state a differential comparison
// cares about (Get spans simulated DPUs and shadow shards alike).
func storeContents(t *testing.T, pm *PartitionedMap, keyspace int) map[uint64]uint64 {
	t.Helper()
	out := make(map[uint64]uint64)
	for k := uint64(0); k < uint64(keyspace); k++ {
		if v, ok := pm.Get(k); ok {
			out[k] = v
		}
	}
	return out
}

// TestHostParallelismDifferential: every HostParallelism setting —
// GOMAXPROCS engine, explicit 2- and 4-worker engines — produces
// byte-identical modeled results to the HostParallelism=1 serial
// reference, across placement × scheduler × fleet-mode variants:
// exact and sampled fleets, static-hash and directory placement with
// an armed rebalancer (split keys included), FIFO and lane scheduling,
// single-op and cross-DPU multi-op traffic.
func TestHostParallelismDifferential(t *testing.T) {
	type variant struct {
		name     string
		keyspace int
		cfg      func(par int) ServeConfig
	}
	variants := []variant{
		{
			name:     "exact-statichash-multiop",
			keyspace: 256,
			cfg: func(par int) ServeConfig {
				return ServeConfig{
					Map: PartitionedMapConfig{
						DPUs: 8, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
						Mode: Pipelined, HostParallelism: par,
					},
					Submit: SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
					Traffic: TrafficConfig{
						Ops: 600, Rate: 2e5, ReadPct: 70, Keyspace: 256, ZipfS: 1.0, Seed: 7,
						TxnSize: 2, CrossDPU: 0.3, DPUs: 8,
					},
					KeepResults: true,
				}
			},
		},
		{
			name:     "sampled-statichash-multiop",
			keyspace: 1024,
			cfg: func(par int) ServeConfig {
				return ServeConfig{
					Map: PartitionedMapConfig{
						DPUs: 64, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
						Mode: Pipelined, Sample: 4, HostParallelism: par,
					},
					Submit: SubmitterConfig{MaxBatch: 128, MaxDelaySeconds: 300e-6},
					Traffic: TrafficConfig{
						Ops: 600, Rate: 2e5, ReadPct: 80, Keyspace: 1024, ZipfS: 0.9, Seed: 11,
						TxnSize: 2, CrossDPU: 0.2, DPUs: 64,
					},
					KeepResults: true,
				}
			},
		},
		{
			name:     "directory-rebalancer-hotsplit",
			keyspace: 128,
			cfg: func(par int) ServeConfig {
				return ServeConfig{
					Map: PartitionedMapConfig{
						DPUs: 4, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
						Placement: NewDirectory(4), HostParallelism: par,
					},
					Submit: SubmitterConfig{MaxBatch: 64},
					Traffic: TrafficConfig{
						Ops: 1200, Rate: 2e5, ReadPct: 50, Keyspace: 128, Seed: 5,
						HotKeys: 4, HotWriteFrac: 0.6,
					},
					Rebalance: &RebalancerConfig{
						WindowBatches: 3, TopK: 4, MinKeyOps: 8,
						SplitMinAddShare: 0.5,
					},
					KeepResults: true,
				}
			},
		},
		{
			// Single-op traffic on a sampled static-hash fleet takes the
			// inline shadow-apply path (no unit staging at all): mixed
			// gets, puts, deletes via write skew, and guarded adds on hot
			// keys through the RMW eval fallback.
			name:     "sampled-singleop-inline",
			keyspace: 1024,
			cfg: func(par int) ServeConfig {
				return ServeConfig{
					Map: PartitionedMapConfig{
						DPUs: 64, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
						Mode: Pipelined, Sample: 4, HostParallelism: par,
					},
					Submit: SubmitterConfig{MaxBatch: 128, MaxDelaySeconds: 300e-6},
					Traffic: TrafficConfig{
						Ops: 900, Rate: 2e5, ReadPct: 60, Keyspace: 1024, ZipfS: 0.8, Seed: 17,
						HotKeys: 8, HotWriteFrac: 0.5,
					},
					KeepResults: true,
				}
			},
		},
		{
			name:     "sampled-lane-scheduler",
			keyspace: 512,
			cfg: func(par int) ServeConfig {
				return ServeConfig{
					Map: PartitionedMapConfig{
						DPUs: 64, Tasklets: 4, STM: core.Config{Algorithm: core.NOrec},
						Mode: Pipelined, Sample: 4, HostParallelism: par,
					},
					Submit: SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
					Traffic: TrafficConfig{
						Ops: 600, Rate: 2e5, ReadPct: 85, Keyspace: 512, ZipfS: 1.1, Seed: 13,
						TxnSize: 2, CrossDPU: 0.3, DPUs: 64,
					},
					Scheduler: func() Scheduler {
						return NewLaneScheduler(LaneSchedulerConfig{
							Confined:    LaneConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
							Coordinated: LaneConfig{MaxBatch: 64, MaxDelaySeconds: 300e-6},
						})
					},
					KeepResults: true,
				}
			},
		},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(par int) (ServeResult, map[uint64]uint64) {
				res, err := Serve(v.cfg(par))
				if err != nil {
					t.Fatalf("par %d: %v", par, err)
				}
				state := storeContents(t, res.Store, v.keyspace)
				res.Store = nil // pointers differ by construction
				return res, state
			}
			ref, refState := run(1)
			if ref.HostWorkers != 1 {
				t.Fatalf("serial reference reports %d workers", ref.HostWorkers)
			}
			ref.ZeroHostClock()
			for _, par := range []int{0, 2, 4} {
				got, gotState := run(par)
				if got.HostWorkers < 1 {
					t.Fatalf("par %d reports %d workers", par, got.HostWorkers)
				}
				got.ZeroHostClock()
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("par %d diverged from serial reference:\n%+v\n%+v", par, got, ref)
				}
				if !reflect.DeepEqual(gotState, refState) {
					t.Fatalf("par %d store diverged from serial reference", par)
				}
			}
		})
	}
}

// TestHostParallelShadowRaceStress is the -race target for the engine:
// many client goroutines hammer Submit against a sampled-fleet store
// whose shadow application, classification, and write analysis run on
// an explicit 4-worker pool, with batches big enough (1024 single-op
// adds, 248 shadow shards) to cross every parallel-dispatch floor.
// The workload is commutative (guarded OpAdd on preloaded counters,
// some cross-DPU 2-op adds), so despite nondeterministic batch
// formation the final store state must equal both the arithmetic
// expectation and a HostParallelism=1 serial replay of the same
// transaction multiset.
func TestHostParallelShadowRaceStress(t *testing.T) {
	const (
		dpus     = 256
		sample   = 8
		keyspace = 4096
		clients  = 8
		each     = 250
	)
	mkMap := func(par int) *PartitionedMap {
		pm, err := NewPartitionedMap(PartitionedMapConfig{
			DPUs: dpus, Tasklets: 4, Buckets: 64, Capacity: 512,
			STM: core.Config{Algorithm: core.NOrec}, Mode: Pipelined,
			Sample: sample, HostParallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		var preload []Op
		for k := uint64(0); k < keyspace; k++ {
			preload = append(preload, Op{Kind: OpPut, Key: k, Value: k})
		}
		if _, err := pm.ApplyBatch(preload); err != nil {
			t.Fatal(err)
		}
		return pm
	}

	// Deterministic per-client transaction streams: mostly single
	// guarded adds, every 5th a cross-DPU 2-op add.
	txnFor := func(c, i int) Txn {
		k1 := uint64((c*each+i)*2654435761) % keyspace
		if i%5 == 4 {
			k2 := (k1 + keyspace/2) % keyspace
			return Txn{Ops: []Op{
				{Kind: OpAdd, Key: k1, Value: 1},
				{Kind: OpAdd, Key: k2, Value: 1},
			}}
		}
		return Txn{Ops: []Op{{Kind: OpAdd, Key: k1, Value: 1}}}
	}
	adds := make(map[uint64]uint64)
	var allTxns []Txn
	for c := 0; c < clients; c++ {
		for i := 0; i < each; i++ {
			txn := txnFor(c, i)
			for _, op := range txn.Ops {
				adds[op.Key] += op.Value
			}
			allTxns = append(allTxns, txn)
		}
	}

	pm := mkMap(4)
	s := NewSubmitter(pm, SubmitterConfig{MaxBatch: 1024, MaxDelaySeconds: 1, Queue: 64})
	var wg sync.WaitGroup
	futs := make([][]*Future, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f, err := s.Submit(txnFor(c, i), float64(i)*1e-6)
				if err != nil {
					t.Errorf("client %d submit: %v", c, err)
					return
				}
				futs[c] = append(futs[c], f)
			}
		}(c)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for c := range futs {
		for i, f := range futs[c] {
			if res := f.Wait(); res.Err != nil || !res.Committed {
				t.Fatalf("client %d txn %d: %+v", c, i, res)
			}
		}
	}

	// Serial replay of the same multiset on the reference path.
	ref := mkMap(1)
	for lo := 0; lo < len(allTxns); lo += 1024 {
		hi := min(lo+1024, len(allTxns))
		res, err := ref.ApplyTxns(allTxns[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if !res[i].Committed {
				t.Fatalf("reference txn %d aborted: %+v", lo+i, res[i])
			}
		}
	}

	for k := uint64(0); k < keyspace; k++ {
		want := k + adds[k]
		if v, ok := pm.Get(k); !ok || v != want {
			t.Fatalf("key %d: engine store holds (%d,%v), want %d", k, v, ok, want)
		}
		if v, ok := ref.Get(k); !ok || v != want {
			t.Fatalf("key %d: reference store holds (%d,%v), want %d", k, v, ok, want)
		}
	}
}
