package host

import (
	"testing"

	"pimstm/internal/core"
)

// allocTxns builds a steady-state transactional workload for the
// allocation gates: 64 single-op puts when confined is true (every txn
// stays on its owner DPU, the confined fast path), or 32 two-op
// read-modify-write txns spanning two DPUs when it is false (the
// coordinated snapshot/writeback path). Keys cycle over a small
// resident set so repeated batches neither grow the maps nor exhaust
// the pools.
func allocTxns(pm *PartitionedMap, confined bool) []Txn {
	if confined {
		txns := make([]Txn, 64)
		for i := range txns {
			txns[i] = Txn{Ops: []Op{{Kind: OpPut, Key: uint64(i % 32), Value: uint64(i)}}}
		}
		return txns
	}
	// Pick two keys on different DPUs so every txn coordinates.
	a, b := uint64(0), uint64(1)
	for pm.owner(b) == pm.owner(a) {
		b++
	}
	txns := make([]Txn, 32)
	for i := range txns {
		txns[i] = Txn{Ops: []Op{
			{Kind: OpAdd, Key: a, Value: 1},
			{Kind: OpPut, Key: b + uint64(i%8)*64, Value: uint64(i)},
		}}
	}
	return txns
}

// measureApplyTxnsAllocs returns steady-state allocations per ApplyTxns
// batch at the given HostParallelism setting. The first call warms the
// scratch (lazy map growth, pooled tasklet spin-up) and is excluded,
// matching how a serving loop runs.
func measureApplyTxnsAllocs(t *testing.T, confined bool, par int) float64 {
	t.Helper()
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, HostParallelism: par,
	})
	if err != nil {
		t.Fatal(err)
	}
	txns := allocTxns(pm, confined)
	for i := 0; i < 3; i++ {
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
	})
}

// allocGatePaths are the host-execution paths every gate pins: the
// GOMAXPROCS engine default, the HostParallelism=1 serial reference,
// and an explicit multi-worker engine (whose small-batch dispatch
// stays inline below the work floors — the engine must not buy its
// parallelism with per-batch garbage).
var allocGatePaths = []struct {
	name string
	par  int
}{
	{"engine", 0},
	{"serial-ref", 1},
	{"engine-w4", 4},
}

// TestApplyTxnsConfinedAllocGate pins the allocation budget of the
// confined (single-DPU) ApplyTxns hot path. The seed implementation
// spent 677 allocs on this batch (per-batch map storm in classify,
// route and execute plus a fresh STM descriptor per tasklet per round);
// the scratch-reuse rewrite has to stay ≥10× below that. Results and
// their per-op backing are still allocated fresh — callers retain them
// — so the floor is one TxnResult slab plus one OpResult slab per
// batch, not zero.
func TestApplyTxnsConfinedAllocGate(t *testing.T) {
	for _, p := range allocGatePaths {
		t.Run(p.name, func(t *testing.T) {
			got := measureApplyTxnsAllocs(t, true, p.par)
			t.Logf("confined ApplyTxns (%s): %.1f allocs/batch (seed: 677)", p.name, got)
			if got > 67 {
				t.Fatalf("confined ApplyTxns (%s) allocates %.1f per batch, budget 67 (seed 677, required ≥10× reduction)", p.name, got)
			}
		})
	}
}

// TestApplyTxnsCoordinatedAllocGate pins the coordinated path the same
// way: snapshot gather, host-side evaluation and writeback rounds must
// all run out of the PartitionedMap-owned scratch. Seed: 951
// allocs/batch. The workload's write sets span owners, so this gate
// covers the multi-owner prepare/commit path of the kernel-side commit
// (host prepare + compiled commit units).
func TestApplyTxnsCoordinatedAllocGate(t *testing.T) {
	for _, p := range allocGatePaths {
		t.Run(p.name, func(t *testing.T) {
			got := measureApplyTxnsAllocs(t, false, p.par)
			t.Logf("coordinated ApplyTxns (%s): %.1f allocs/batch (seed: 951)", p.name, got)
			if got > 95 {
				t.Fatalf("coordinated ApplyTxns (%s) allocates %.1f per batch, budget 95 (seed 951, required ≥10× reduction)", p.name, got)
			}
		})
	}
}

// TestApplyTxnsKernelApplyAllocGate extends the allocation discipline to
// the kernel-apply fast path: transactions whose write set lives on one
// DPU but whose reads cross, so every conflict group compiles into an
// apply program executed by the home DPU's writeback kernel. Program
// compilation, operand tables, unit routing and the kernel-side decode
// must all run out of the persistent scratch slabs, under the same
// budget as the host-prepared coordinated path.
func TestApplyTxnsKernelApplyAllocGate(t *testing.T) {
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One write key per txn, all owned by the same DPU; one read key on
	// a different DPU, so each txn is cross-DPU with a single-owner
	// write set — the kernelApply classification.
	home := pm.owner(0)
	var writes, reads []uint64
	for k := uint64(0); len(writes) < 8 || len(reads) < 8; k++ {
		if pm.owner(k) == home {
			writes = append(writes, k)
		} else {
			reads = append(reads, k)
		}
	}
	var load []Op
	for _, k := range append(append([]uint64{}, writes[:8]...), reads[:8]...) {
		load = append(load, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	txns := make([]Txn, 32)
	for i := range txns {
		txns[i] = Txn{Ops: []Op{
			{Kind: OpAdd, Key: writes[i%8], Value: 1},
			{Kind: OpGet, Key: reads[i%8]},
		}}
	}
	for i := 0; i < 3; i++ {
		res, err := pm.ApplyTxns(txns)
		if err != nil {
			t.Fatal(err)
		}
		for j := range res {
			if !res[j].Committed || res[j].Err != nil {
				t.Fatalf("txn %d did not commit: %+v", j, res[j])
			}
		}
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("kernel-apply ApplyTxns: %.1f allocs/batch", got)
	if got > 95 {
		t.Fatalf("kernel-apply ApplyTxns allocates %.1f per batch, budget 95", got)
	}
}

// TestApplyTxnsSplitConfinedAllocGate holds the confined budget with
// split shards active: a pure hot-counter batch is rewritten by the
// split pre-pass (touch classification, shard-key rewrite into the
// scratch transaction/op slabs) and then runs as ordinary confined
// adds on the shard keys. The rewrite must be allocation-free in
// steady state — same budget as the unrewritten confined gate.
func TestApplyTxnsSplitConfinedAllocGate(t *testing.T) {
	dir := NewDirectory(4)
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: 4, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Placement: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := []uint64{0, 1, 2, 3}
	var load []Op
	for _, k := range hot {
		load = append(load, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	if err := pm.SplitKeys(hot); err != nil {
		t.Fatal(err)
	}
	txns := make([]Txn, 64)
	for i := range txns {
		txns[i] = Txn{Ops: []Op{{Kind: OpAdd, Key: hot[i%len(hot)], Value: 1}}}
	}
	for i := 0; i < 3; i++ {
		res, err := pm.ApplyTxns(txns)
		if err != nil {
			t.Fatal(err)
		}
		for j := range res {
			if !res[j].Committed || res[j].Err != nil {
				t.Fatalf("txn %d did not commit: %+v", j, res[j])
			}
		}
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("split-rewritten confined ApplyTxns: %.1f allocs/batch", got)
	if got > 67 {
		t.Fatalf("split-rewritten confined ApplyTxns allocates %.1f per batch, budget 67", got)
	}
}

// TestApplyTxnsParallelDispatchAllocGate pins the engine's allocation
// budget when the multi-worker dispatch actually engages: a sampled
// fleet with 248 shadow shards and a 1024-txn batch crosses both the
// shard and transaction work floors, so classification, write analysis
// and shadow application all fan out over the 4-worker pool. Steady
// state measures ~59 allocs for the 1024-txn batch (goroutine spawns
// and a handful of map rehashes); the gate pins a flat 192 so per-batch
// worker garbage can't creep in hidden under the batch size.
func TestApplyTxnsParallelDispatchAllocGate(t *testing.T) {
	const (
		dpus     = 256
		keyspace = 4096
		batch    = 1024
	)
	pm, err := NewPartitionedMap(PartitionedMapConfig{
		DPUs: dpus, Buckets: 64, Capacity: 512, Tasklets: 4,
		STM: core.Config{Algorithm: core.NOrec}, Mode: Pipelined,
		Sample: 8, HostParallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var load []Op
	for k := uint64(0); k < keyspace; k++ {
		load = append(load, Op{Kind: OpPut, Key: k, Value: k})
	}
	if _, err := pm.ApplyBatch(load); err != nil {
		t.Fatal(err)
	}
	txns := make([]Txn, batch)
	for i := range txns {
		k := uint64(i*2654435761) % keyspace
		txns[i] = Txn{Ops: []Op{{Kind: OpAdd, Key: k, Value: 1}}}
	}
	for i := 0; i < 3; i++ {
		res, err := pm.ApplyTxns(txns)
		if err != nil {
			t.Fatal(err)
		}
		for j := range res {
			if !res[j].Committed || res[j].Err != nil {
				t.Fatalf("txn %d did not commit: %+v", j, res[j])
			}
		}
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := pm.ApplyTxns(txns); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("parallel-dispatch ApplyTxns: %.1f allocs/batch (budget 192)", got)
	if got > 192 {
		t.Fatalf("parallel-dispatch ApplyTxns allocates %.1f per batch, budget 192", got)
	}
}
