package host

import (
	"strings"
	"testing"

	"pimstm/internal/lee"
)

func TestTransferModel(t *testing.T) {
	one := TransferSeconds(1, 8)
	if one < 1e-4 || one > 1e-3 {
		t.Fatalf("single-word transfer = %.1f µs, want a few hundred µs", one*1e6)
	}
	if InterDPURead64Seconds() != 331e-6 {
		t.Fatalf("inter-DPU word latency should match the paper's 331 µs")
	}
	// Bandwidth term must dominate for large fleets × large payloads.
	big := TransferSeconds(2500, 1<<20)
	if big < float64(2500)*float64(1<<20)/xferAggregateBW {
		t.Fatal("bulk transfer below aggregate bandwidth bound")
	}
	if TransferSeconds(100, 4096) <= TransferSeconds(10, 4096) {
		t.Fatal("more DPUs must move more bytes")
	}
	// A single DPU's link never reaches the aggregate bandwidth: the
	// same total payload concentrated on one DPU is strictly slower
	// than spread across a rank's worth.
	if TransferSeconds(1, 64<<10) <= TransferSeconds(64, 1<<10) {
		t.Fatal("hot-DPU payload credited with aggregate bandwidth")
	}
	if one := TransferSeconds(1, 1<<20); one < xferBatchOverheadSeconds+float64(1<<20)/xferPerDPUBW {
		t.Fatal("single-link transfer below per-DPU bandwidth bound")
	}
}

func TestFleetOptions(t *testing.T) {
	o := FleetOptions{DPUs: 100}
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	if o.Tasklets != 11 || o.Sample != 4 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	ids := o.simulated()
	if len(ids) != 4 || ids[0] != 0 || ids[3] >= 100 {
		t.Fatalf("sample ids wrong: %v", ids)
	}
	exact := FleetOptions{DPUs: 5, Exact: true}
	if err := exact.fill(); err != nil {
		t.Fatal(err)
	}
	if got := exact.simulated(); len(got) != 5 {
		t.Fatalf("exact mode must simulate all: %v", got)
	}
	bad := FleetOptions{}
	if err := bad.fill(); err == nil {
		t.Fatal("zero DPUs should error")
	}
}

func TestKMeansFleetExactMerges(t *testing.T) {
	cfg := KMeansFleetConfig{K: 3, Dims: 4, PointsPerDPU: 120, Rounds: 2}
	res, err := RunKMeansFleet(cfg, FleetOptions{DPUs: 3, Tasklets: 4, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPoints != 360 {
		t.Fatalf("total points = %d", res.TotalPoints)
	}
	// One commit per point per round across the whole fleet.
	if res.Commits != uint64(res.TotalPoints*cfg.Rounds) {
		t.Fatalf("commits = %d, want %d", res.Commits, res.TotalPoints*cfg.Rounds)
	}
	if len(res.Centers) != cfg.K*cfg.Dims {
		t.Fatalf("centers missing: %d", len(res.Centers))
	}
	if res.DPUSeconds <= 0 || res.TransferSeconds <= 0 || res.TotalSeconds <= res.DPUSeconds {
		t.Fatalf("timing accounting broken: %+v", res)
	}
}

// TestKMeansFleetWeakScaling: the crux of Fig 7 — DPU time stays flat
// as the fleet (and hence the input) grows, because each DPU's shard is
// constant.
func TestKMeansFleetWeakScaling(t *testing.T) {
	cfg := KMeansFleetConfig{K: 2, Dims: 8, PointsPerDPU: 150, Rounds: 1}
	small, err := RunKMeansFleet(cfg, FleetOptions{DPUs: 2, Tasklets: 4, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunKMeansFleet(cfg, FleetOptions{DPUs: 64, Tasklets: 4, Sample: 3})
	if err != nil {
		t.Fatal(err)
	}
	if large.DPUSeconds > small.DPUSeconds*1.5 {
		t.Fatalf("DPU time should stay ~flat under weak scaling: 2→%.4fs, 64→%.4fs",
			small.DPUSeconds, large.DPUSeconds)
	}
}

func TestLabyrinthFleet(t *testing.T) {
	cfg := LabyrinthFleetConfig{X: 12, Y: 12, Z: 3, PathsPerInstance: 10}
	res, err := RunLabyrinthFleet(cfg, FleetOptions{DPUs: 6, Tasklets: 4, Sample: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed == 0 {
		t.Fatal("no paths routed across the fleet")
	}
	if res.DPUSeconds <= 0 || res.TotalSeconds < res.DPUSeconds {
		t.Fatalf("timing accounting broken: %+v", res)
	}
}

func TestKMeansCPUBaseline(t *testing.T) {
	secs, err := KMeansCPUBaseline(3, 6, 3000, 2, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("baseline measured no time")
	}
	per, err := KMeansCPUSecondsPerPoint(2, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if per <= 0 || per > 1e-3 {
		t.Fatalf("per-point cost implausible: %g s", per)
	}
}

func TestLabyrinthCPUInstance(t *testing.T) {
	g := lee.Grid{X: 12, Y: 12, Z: 3}
	secs, routed := LabyrinthCPUInstance(g, 12, 4, 3)
	if secs <= 0 {
		t.Fatal("instance measured no time")
	}
	if routed == 0 {
		t.Fatal("CPU router routed nothing")
	}
	if routed > 12 {
		t.Fatalf("routed %d of 12 jobs", routed)
	}
}

// TestFig7SpeedupGrowsWithFleet checks the structural crossover of
// Fig 7: speedup grows roughly linearly with fleet size, because CPU
// time grows with total input while fleet time stays flat.
func TestFig7SpeedupGrowsWithFleet(t *testing.T) {
	opt := Fig7Options{
		DPUCounts:    []int{1, 32, 256},
		PointsPerDPU: 200,
		Tasklets:     4,
	}
	series, err := Fig7KMeans(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("expected LC and HC curves, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s has %d points", s.Workload, len(s.Points))
		}
		first, last := s.Points[0], s.Points[2]
		if last.Speedup <= first.Speedup {
			t.Fatalf("%s speedup should grow with DPUs: %v → %v", s.Workload, first.Speedup, last.Speedup)
		}
		// Weak scaling: 256x the input for the CPU.
		if last.CPUSeconds <= first.CPUSeconds*100 {
			t.Fatalf("%s CPU time should grow ~linearly with input", s.Workload)
		}
	}
}

func TestFig7LabyrinthStructure(t *testing.T) {
	opt := Fig7Options{
		DPUCounts:        []int{1, 64},
		PathsPerInstance: 8,
		Tasklets:         4,
	}
	// Only the small grid to keep the test fast.
	old := labyrinthVariants
	labyrinthVariants = labyrinthVariants[:1]
	defer func() { labyrinthVariants = old }()
	series, err := Fig7Labyrinth(opt)
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	if s.Points[1].Speedup <= s.Points[0].Speedup {
		t.Fatalf("labyrinth speedup should grow with fleet: %v", s.Points)
	}
}

func TestFig8RowsAndRender(t *testing.T) {
	old := labyrinthVariants
	labyrinthVariants = labyrinthVariants[:1]
	defer func() { labyrinthVariants = old }()
	rows, err := Fig8(64, Fig7Options{PointsPerDPU: 150, PathsPerInstance: 6, Tasklets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1 labyrinth + 2 kmeans
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.EnergyGain <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The paper's headline: energy gains are well below speedups
		// (the DPU system draws 370 W vs ≤218 W CPU baselines).
		if r.EnergyGain >= r.Speedup {
			t.Fatalf("%s: energy gain (%.2f) should trail speedup (%.2f)", r.Workload, r.EnergyGain, r.Speedup)
		}
	}
	var sb strings.Builder
	RenderFig8(&sb, rows)
	RenderFig7(&sb, "fig7a", []Fig7Series{{Workload: "KMeans LC", Points: []Fig7Point{{DPUs: 1, Speedup: 0.5}}}})
	if !strings.Contains(sb.String(), "KMeans") || !strings.Contains(sb.String(), "energy gain") {
		t.Fatal("render output incomplete")
	}
}
