// Package dpu implements a deterministic discrete-event simulator of a
// single UPMEM DPU (Data Processing Unit), the substrate on which the
// PIM-STM library runs.
//
// The simulated DPU reproduces the architectural properties the paper's
// evaluation depends on:
//
//   - Two memory tiers: WRAM (64 KB scratchpad, accessed in one pipeline
//     slot) and MRAM (64 MB DRAM bank, accessed through a DPU-wide FCFS
//     DMA engine with a fixed base latency plus a per-byte cost).
//   - Up to 24 hardware tasklets with an instruction pipeline whose
//     effective depth is 11: a tasklet issues at most one instruction per
//     max(11, T) cycles, so aggregate throughput scales linearly up to 11
//     tasklets and is flat beyond.
//   - A 256-bit atomic register with acquire/release semantics, the only
//     hardware synchronization primitive; addresses map to bits through a
//     hardware hash, so unrelated addresses may alias.
//
// Execution is cooperatively scheduled: exactly one tasklet runs at any
// real instant, and the scheduler always resumes the runnable tasklet
// with the smallest virtual time, so all shared-state accesses happen in
// global virtual-time order. Runs are exactly reproducible.
package dpu

import (
	"fmt"
	"math"
)

// Architectural constants of the UPMEM DPU generation evaluated in the
// paper (see paper §2.1).
const (
	// DefaultWRAMSize is the size of the fast scratchpad memory.
	DefaultWRAMSize = 64 << 10
	// DefaultMRAMSize is the size of the DRAM bank of one DPU.
	DefaultMRAMSize = 64 << 20
	// MaxTasklets is the number of hardware threads per DPU.
	MaxTasklets = 24
	// PipelineDepth is the effective pipeline depth: the tasklet count
	// beyond which no additional parallelism is obtained.
	PipelineDepth = 11
	// DefaultClockHz is the DPU clock frequency.
	DefaultClockHz = 350e6
	// AtomicBits is the width of the hardware atomic register.
	AtomicBits = 256
)

// Cost-model constants, calibrated to the latencies published for the
// UPMEM system. Three figures pin the model down:
//
//   - a 64-bit local MRAM read takes 231 ns ≈ 81 cycles at 350 MHz
//     (paper §3.1): dmaFixedLatency + dmaEngineBase + 8/2 = 81;
//   - large-transfer streaming bandwidth is ≈700 MB/s (2 bytes/cycle);
//   - aggregate 8-byte-granularity bandwidth across tasklets saturates
//     around 100 MB/s (PrIM-style measurements): one 8-byte transfer
//     occupies the engine for 28 cycles, so latency overlaps across
//     tasklets but the engine itself is a serial resource.
const (
	// dmaFixedLatency is the per-transfer pipeline/setup latency seen by
	// the issuing tasklet but overlapped with other tasklets' transfers.
	dmaFixedLatency = 53
	// dmaEngineBase is the serial engine occupancy per transfer.
	dmaEngineBase = 24
	// dmaBytesPerTwoCycles: the engine moves 2 bytes per cycle.
	dmaBytesPerTwoCycles = 2
)

// Addr is a byte address inside one DPU. The top bit selects the tier:
// 0 = MRAM, 1 = WRAM. The zero Addr (MRAM offset 0) is reserved by the
// allocator and never handed out, so it can serve as a nil pointer.
type Addr uint32

// wramBit marks WRAM addresses.
const wramBit Addr = 1 << 31

// NilAddr is the reserved null address.
const NilAddr Addr = 0

// IsWRAM reports whether the address points into the WRAM tier.
func (a Addr) IsWRAM() bool { return a&wramBit != 0 }

// Offset returns the byte offset of the address within its tier.
func (a Addr) Offset() uint32 { return uint32(a &^ wramBit) }

// String renders the address with its tier for diagnostics.
func (a Addr) String() string {
	if a.IsWRAM() {
		return fmt.Sprintf("wram:0x%x", a.Offset())
	}
	return fmt.Sprintf("mram:0x%x", a.Offset())
}

// WRAMAddr builds a WRAM address from a byte offset.
func WRAMAddr(off uint32) Addr { return Addr(off) | wramBit }

// MRAMAddr builds an MRAM address from a byte offset.
func MRAMAddr(off uint32) Addr { return Addr(off) }

// Tier identifies one of the two DPU memory tiers.
type Tier int

// The two memory tiers of a DPU.
const (
	MRAM Tier = iota
	WRAM
)

// String returns the tier name.
func (t Tier) String() string {
	if t == WRAM {
		return "WRAM"
	}
	return "MRAM"
}

// Config parameterizes a simulated DPU. The zero value selects the
// defaults of the UPMEM system evaluated in the paper.
type Config struct {
	// MRAMSize and WRAMSize are the tier capacities in bytes. Tests may
	// shrink MRAM to avoid allocating 64 MB per DPU.
	MRAMSize int
	WRAMSize int
	// ClockHz is the DPU clock used to convert cycles to seconds.
	ClockHz float64
	// Seed perturbs every tasklet PRNG; distinct seeds model the paper's
	// "10 runs" averaging.
	Seed uint64
}

func (c *Config) fill() {
	if c.MRAMSize == 0 {
		c.MRAMSize = DefaultMRAMSize
	}
	if c.WRAMSize == 0 {
		c.WRAMSize = DefaultWRAMSize
	}
	if c.ClockHz == 0 {
		c.ClockHz = DefaultClockHz
	}
}

// DPU is one simulated data processing unit: two memory tiers, a DMA
// engine, an atomic register and a cooperative tasklet scheduler.
// A DPU is not safe for concurrent use; distinct DPUs are independent
// and may be simulated in parallel.
type DPU struct {
	cfg  Config
	mram []byte
	wram []byte

	mramBrk uint32 // bump-allocator break, starts at 8 (0 is nil)
	wramBrk uint32

	tasklets []*Tasklet
	live     int // tasklets not yet finished

	// taskletPool holds reusable tasklet slots with persistent worker
	// goroutines, so steady-state relaunches (the serving hot path
	// relaunches kernels every batch) allocate nothing. A slot's worker
	// parks on its resume channel between runs.
	taskletPool []*Tasklet
	yieldedCh   chan *Tasklet

	dmaBusyUntil uint64
	dmaTransfers uint64 // total DMA transfers issued (stats)
	dmaBytes     uint64

	reg atomicRegister

	finished bool
	totalCyc uint64 // max tasklet time of the last Run
}

// New builds a DPU with the given configuration.
func New(cfg Config) *DPU {
	cfg.fill()
	d := &DPU{
		cfg:  cfg,
		mram: make([]byte, cfg.MRAMSize),
		wram: make([]byte, cfg.WRAMSize),
	}
	d.Reset()
	return d
}

// Reset clears allocators, memory contents and run state so the DPU can
// host a fresh program. Memory is zeroed lazily by reallocation only when
// it was dirtied.
func (d *DPU) Reset() {
	clear(d.mram)
	clear(d.wram)
	d.mramBrk = 8 // keep Addr 0 as nil
	d.wramBrk = 0
	d.dmaBusyUntil = 0
	d.dmaTransfers = 0
	d.dmaBytes = 0
	d.reg = atomicRegister{}
	d.tasklets = nil
	d.live = 0
	d.finished = false
	d.totalCyc = 0
	// A full reset abandons the worker pool: a prior faulted or
	// deadlocked run may have left workers parked mid-program.
	d.taskletPool = nil
	d.yieldedCh = nil
}

// ResetRun clears only the execution state — tasklets, DMA engine,
// atomic register, virtual clock — so the host can launch another
// program against the same memory image, as the CPU relaunching kernels
// between batches on real UPMEM hardware. Memory contents and
// allocations persist.
func (d *DPU) ResetRun() {
	d.dmaBusyUntil = 0
	d.dmaTransfers = 0
	d.dmaBytes = 0
	d.reg = atomicRegister{}
	d.tasklets = nil
	d.live = 0
	d.finished = false
	d.totalCyc = 0
}

// Config returns the configuration the DPU was built with.
func (d *DPU) Config() Config { return d.cfg }

// Seconds converts a cycle count to seconds of DPU time.
func (d *DPU) Seconds(cycles uint64) float64 {
	return float64(cycles) / d.cfg.ClockHz
}

// Cycles returns the virtual duration of the last Run in cycles: the
// largest tasklet completion time.
func (d *DPU) Cycles() uint64 { return d.totalCyc }

// Duration returns the virtual duration of the last Run in seconds.
func (d *DPU) Duration() float64 { return d.Seconds(d.totalCyc) }

// DMATransfers returns the number of MRAM DMA transfers of the last Run.
func (d *DPU) DMATransfers() uint64 { return d.dmaTransfers }

// DMABytes returns the total bytes moved by the MRAM DMA engine.
func (d *DPU) DMABytes() uint64 { return d.dmaBytes }

// issueInterval is the number of cycles between two instructions of the
// same tasklet: the revolver pipeline serves max(PipelineDepth, T) slots.
func (d *DPU) issueInterval() uint64 {
	t := d.live
	if t < PipelineDepth {
		return PipelineDepth
	}
	return uint64(t)
}

// Run launches one tasklet per program and simulates until every tasklet
// finishes. It returns the virtual duration of the run in cycles.
// Programs interact with the DPU exclusively through their *Tasklet.
// Run panics if a previous Run's state was not Reset, if there are no
// programs, or if more than MaxTasklets are requested; it returns an
// error if the simulation deadlocks (every live tasklet blocked).
func (d *DPU) Run(programs []func(t *Tasklet)) (uint64, error) {
	if len(programs) == 0 {
		return 0, fmt.Errorf("dpu: no programs to run")
	}
	if len(programs) > MaxTasklets {
		return 0, fmt.Errorf("dpu: %d tasklets exceed the hardware limit of %d", len(programs), MaxTasklets)
	}
	if d.finished {
		return 0, fmt.Errorf("dpu: Run called twice without Reset")
	}

	if d.yieldedCh == nil {
		d.yieldedCh = make(chan *Tasklet)
	}
	for len(d.taskletPool) < len(programs) {
		t := &Tasklet{
			dpu:    d,
			ID:     len(d.taskletPool),
			resume: make(chan struct{}),
		}
		d.taskletPool = append(d.taskletPool, t)
		go t.work()
	}
	if d.tasklets == nil {
		d.tasklets = make([]*Tasklet, 0, len(programs))
	}
	d.tasklets = d.tasklets[:0]
	d.live = len(programs)
	for i, prog := range programs {
		t := d.taskletPool[i]
		t.now = 0
		t.state = stateRunnable
		t.blockedBit = 0
		t.panicVal = nil
		t.yielded = d.yieldedCh
		t.rng = rngState(d.cfg.Seed, uint64(i))
		t.body = prog
		d.tasklets = append(d.tasklets, t)
	}

	for d.live > 0 {
		next := d.pickRunnable()
		if next == nil {
			d.finished = true
			d.taskletPool = nil // blocked workers are unrecoverable
			d.yieldedCh = nil
			return 0, fmt.Errorf("dpu: deadlock, %d tasklets blocked: %s", d.live, d.blockedReport())
		}
		next.resume <- struct{}{}
		t := <-d.yieldedCh
		if t.state == stateDone {
			d.live--
			if t.now > d.totalCyc {
				d.totalCyc = t.now
			}
			if t.panicVal != nil {
				// A tasklet fault is a programming error in the DPU
				// program; surface it on the caller's goroutine. Other
				// workers may be parked mid-program, so the pool is
				// abandoned.
				d.finished = true
				d.taskletPool = nil
				d.yieldedCh = nil
				panic(t.panicVal)
			}
		}
	}
	d.finished = true
	return d.totalCyc, nil
}

// pickRunnable returns the runnable tasklet with the smallest virtual
// time, breaking ties by tasklet ID for determinism.
func (d *DPU) pickRunnable() *Tasklet {
	var best *Tasklet
	for _, t := range d.tasklets {
		if t.state != stateRunnable {
			continue
		}
		if best == nil || t.now < best.now {
			best = t
		}
	}
	return best
}

func (d *DPU) blockedReport() string {
	s := ""
	for _, t := range d.tasklets {
		if t.state == stateBlocked {
			s += fmt.Sprintf(" t%d@bit%d", t.ID, t.blockedBit)
		}
	}
	if s == "" {
		return " (none blocked: internal error)"
	}
	return s
}

// dma charges one MRAM transfer of n bytes to tasklet time `now`,
// serializing the engine-occupancy part on the shared DMA engine, and
// returns the tasklet's completion time. Loads pay the fixed setup
// latency on top of the engine slot (data must come back); stores are
// posted and release the tasklet at the engine hand-off.
func (d *DPU) dma(now uint64, n int, store bool) uint64 {
	start := now
	if d.dmaBusyUntil > start {
		start = d.dmaBusyUntil
	}
	occupancy := uint64(dmaEngineBase) + uint64(math.Ceil(float64(n)/dmaBytesPerTwoCycles))
	d.dmaBusyUntil = start + occupancy
	d.dmaTransfers++
	d.dmaBytes += uint64(n)
	if store {
		return start + occupancy
	}
	return start + occupancy + dmaFixedLatency
}

// tier returns the backing slice of one tier.
func (d *DPU) tierSlice(a Addr) []byte {
	if a.IsWRAM() {
		return d.wram
	}
	return d.mram
}

// Writeback apply programs. The host's coordinated-transaction commit
// compiles each committed transaction's effects into a small apply
// program — packed instructions staged in the target DPU's MRAM
// alongside a table of gathered remote operands — and a writeback
// kernel executes them near the data. ApplyOp is the opcode set; the
// instruction stream and operand table are what the host↔DPU scatter
// actually carries, so their packed sizes below are also the transfer
// cost model of the commit round.

// ApplyOp is one opcode of a compiled writeback apply program.
type ApplyOp uint8

// Apply program opcodes, mirroring the host's transactional op kinds:
// reads return their value through the result gather, puts/deletes
// mutate the local partition, and the guarded ApplyAdd/ApplySub abort
// the whole program's transaction on a missing key or underflow.
const (
	ApplyGet ApplyOp = iota
	ApplyPut
	ApplyDelete
	ApplyAdd
	ApplySub
)

// ApplyInstr is one packed instruction of an apply program: an opcode
// plus the key it addresses and an immediate operand (the put value or
// RMW delta). On the wire and in MRAM it occupies ApplyInstrBytes.
type ApplyInstr struct {
	Op  ApplyOp
	Key uint64
	Val uint64
}

// ApplyOperand is one gathered remote-operand record scattered
// alongside an apply program: the pre-batch value (and presence) of a
// key the program reads but the executing DPU does not own. It
// occupies ApplyOperandBytes in MRAM and on the wire.
type ApplyOperand struct {
	Key     uint64
	Val     uint64
	Present bool
}

// Packed sizes of the apply-program wire/MRAM format.
const (
	// ApplyInstrBytes is one instruction: opcode + flags padded to a
	// 64-bit word, then the 8-byte key and 8-byte operand.
	ApplyInstrBytes = 24
	// ApplyOperandBytes is one remote-operand record: the 8-byte key
	// and the 8-byte value (presence rides the value word's tag bit
	// space, which the 16-byte record format of the gather rounds
	// already reserves).
	ApplyOperandBytes = 16
)
