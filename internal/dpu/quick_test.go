package dpu

import (
	"testing"
	"testing/quick"
)

// Property-based tests of the simulator's low-level invariants.

// TestQuickAllocatorNonOverlap: allocations never overlap, never hand
// out the nil address, and respect alignment.
func TestQuickAllocatorNonOverlap(t *testing.T) {
	check := func(sizes []uint16) bool {
		d := New(Config{MRAMSize: 1 << 20, WRAMSize: 1 << 14})
		type span struct{ lo, hi uint32 }
		var mram, wram []span
		for i, s := range sizes {
			size := int(s%2048) + 1
			align := 1 << (i % 4) // 1,2,4,8
			tier := MRAM
			spans := &mram
			if i%3 == 0 {
				tier = WRAM
				spans = &wram
			}
			a, err := d.Alloc(tier, size, align)
			if err != nil {
				continue // exhaustion is legal
			}
			if a == NilAddr {
				return false
			}
			if align > 1 && a.Offset()%uint32(align) != 0 {
				return false
			}
			lo := a.Offset()
			hi := lo + uint32(size)
			for _, sp := range *spans {
				if lo < sp.hi && sp.lo < hi {
					return false // overlap
				}
			}
			*spans = append(*spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashBitRange: the hardware hash always lands in [0, 256) and
// is a pure function of the address.
func TestQuickHashBitRange(t *testing.T) {
	check := func(a uint32) bool {
		b := HashBit(Addr(a))
		return b >= 0 && b < AtomicBits && b == HashBit(Addr(a))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWordRoundTrip: Store64/Load64 round-trip arbitrary values at
// arbitrary aligned offsets in both tiers.
func TestQuickWordRoundTrip(t *testing.T) {
	d := New(Config{MRAMSize: 1 << 16})
	check := func(v uint64, off uint16, wramSide bool) bool {
		o := uint32(off) &^ 7
		var a Addr
		if wramSide {
			a = WRAMAddr(o % (64<<10 - 8))
		} else {
			a = MRAMAddr(o % (1<<16 - 8))
		}
		var got uint64
		d.Reset()
		_, err := d.Run([]func(*Tasklet){func(tk *Tasklet) {
			tk.Store64(a, v)
			got = tk.Load64(a)
		}})
		return err == nil && got == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimeMonotonic: a tasklet's clock never moves backwards
// across any operation mix.
func TestQuickTimeMonotonic(t *testing.T) {
	check := func(ops []byte) bool {
		d := New(Config{MRAMSize: 1 << 16, Seed: 5})
		a := d.MustAlloc(MRAM, 64, 8)
		w := d.MustAlloc(WRAM, 64, 8)
		ok := true
		_, err := d.Run([]func(*Tasklet){func(tk *Tasklet) {
			last := tk.Now()
			for _, op := range ops {
				switch op % 6 {
				case 0:
					tk.Exec(int(op))
				case 1:
					tk.Load64(a)
				case 2:
					tk.Store64(w, uint64(op))
				case 3:
					tk.ChargePrivate(MRAM, 16)
				case 4:
					tk.Acquire(a)
					tk.Release(a)
				case 5:
					tk.ChargePrivateStore(WRAM, 8)
				}
				if tk.Now() < last {
					ok = false
				}
				last = tk.Now()
			}
		}})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestResetRunPreservesMemory: run-state reset keeps memory and
// allocations, enabling the relaunch-between-batches host pattern.
func TestResetRunPreservesMemory(t *testing.T) {
	d := New(Config{MRAMSize: 1 << 16})
	a := d.MustAlloc(MRAM, 8, 8)
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) { tk.Store64(a, 777) }})
	d.ResetRun()
	var got uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) { got = tk.Load64(a) }})
	if got != 777 {
		t.Fatalf("memory lost across ResetRun: %d", got)
	}
	// The allocator must continue, not restart.
	b := d.MustAlloc(MRAM, 8, 8)
	if b == a {
		t.Fatal("allocator restarted after ResetRun")
	}
	// Full Reset clears both.
	d.Reset()
	if d.HostRead64(a) != 0 {
		t.Fatal("Reset did not clear memory")
	}
}
