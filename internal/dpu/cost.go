package dpu

import "math"

// This file exports the simulator's analytic cost model — the same
// constants dma() and issueInterval() charge — so higher layers can
// price DPU work they do not simulate. The host's sampled-fleet mode
// runs K representative DPUs for real and charges the remaining N−K
// from these formulas, calibrated against the simulated ones: a
// per-operation cycle rate measured on live kernels, scaled by the
// analytic bucket size. Keeping the formulas here, next to the
// simulator they mirror, means a constant can never drift between the
// two.

// PipelineIssueCycles returns the cycles between two instructions of
// one tasklet when `live` tasklets share the pipeline: the revolver
// pipeline serves max(PipelineDepth, live) slots, which is why
// aggregate throughput scales linearly up to 11 tasklets and is flat
// beyond (paper §2.1).
func PipelineIssueCycles(live int) uint64 {
	if live < PipelineDepth {
		return PipelineDepth
	}
	return uint64(live)
}

// DMALoadCycles returns the tasklet-visible cost of one MRAM load of n
// bytes: the serial engine occupancy plus the fixed setup latency the
// issuing tasklet must wait out (data has to come back). For n = 8
// this is the paper's 231 ns ≈ 81-cycle local read (§3.1).
func DMALoadCycles(n int) uint64 {
	return DMAStoreCycles(n) + dmaFixedLatency
}

// DMAStoreCycles returns the engine occupancy of one MRAM store of n
// bytes; stores are posted, so the tasklet is released at the engine
// hand-off.
func DMAStoreCycles(n int) uint64 {
	return uint64(dmaEngineBase) + uint64(math.Ceil(float64(n)/dmaBytesPerTwoCycles))
}

// KernelCost is the two-phase calibrated cycle model behind the
// sampled fleet's analytic charge. The two kernel shapes the serving
// path launches are calibrated independently because they do different
// work per unit:
//
//   - ExecCyclesPerOp prices one operation of the batch execute
//     kernel: a native STM transaction over client ops, striped across
//     tasklets.
//   - ApplyCyclesPerInstr prices one compiled instruction of a
//     writeback apply kernel: the instruction fetch from the MRAM
//     program buffer plus the STM mutation it decodes into.
//
// Both rates are seeded by a construction-time microbench and
// refreshed from every round with simulated work, so the estimates
// track the live workload.
type KernelCost struct {
	ExecCyclesPerOp     float64
	ApplyCyclesPerInstr float64
}

// Seconds prices one analytic kernel bucket mixing execOps execute
// operations and applyInstrs apply instructions on a clock of clockHz
// (0 selects DefaultClockHz). This is the sampled-fleet charging rule:
// the worst unsimulated bucket costs its unit counts times the
// measured rates.
func (c KernelCost) Seconds(execOps, applyInstrs int, clockHz float64) float64 {
	cycles := 0.0
	if execOps > 0 && c.ExecCyclesPerOp > 0 {
		cycles += c.ExecCyclesPerOp * float64(execOps)
	}
	if applyInstrs > 0 && c.ApplyCyclesPerInstr > 0 {
		cycles += c.ApplyCyclesPerInstr * float64(applyInstrs)
	}
	if cycles == 0 {
		return 0
	}
	if clockHz <= 0 {
		clockHz = DefaultClockHz
	}
	return cycles / clockHz
}

// EstimateKernelSeconds prices an execute-only bucket — the
// single-phase form of KernelCost.Seconds, kept for the callers that
// charge pure execute-round work.
func EstimateKernelSeconds(cyclesPerOp float64, ops int, clockHz float64) float64 {
	return KernelCost{ExecCyclesPerOp: cyclesPerOp}.Seconds(ops, 0, clockHz)
}

// EstimateApplyKernelSeconds prices an apply-only bucket — the
// writeback-kernel twin of EstimateKernelSeconds, used to charge
// unsimulated shadow shards for commit and split-key reconciliation
// rounds that run nothing but compiled apply instructions.
func EstimateApplyKernelSeconds(cyclesPerInstr float64, instrs int, clockHz float64) float64 {
	return KernelCost{ApplyCyclesPerInstr: cyclesPerInstr}.Seconds(0, instrs, clockHz)
}
