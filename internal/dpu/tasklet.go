package dpu

import (
	"encoding/binary"
	"fmt"
)

type taskletState int

const (
	stateRunnable taskletState = iota
	stateBlocked
	stateDone
)

// Tasklet is one simulated hardware thread of a DPU. All memory,
// synchronization and timing operations of a DPU program go through its
// tasklet. Methods on Tasklet must only be called from the program
// function the tasklet was launched with.
type Tasklet struct {
	dpu *DPU
	// ID is the hardware thread index, 0-based, unique within the DPU.
	ID int

	now     uint64
	state   taskletState
	resume  chan struct{}
	yielded chan *Tasklet

	blockedBit int // valid while state == stateBlocked
	panicVal   any // fault captured from the program body

	// body is the program armed for the current run; the persistent
	// worker goroutine reads it after the scheduler's first resume.
	body func(*Tasklet)

	rng uint64
}

// work is the persistent worker loop of one pooled tasklet slot: it
// parks on resume between runs, executes the armed program when the
// scheduler first resumes it, and reports completion (or a captured
// fault) through the yielded channel. Pooling the workers keeps
// steady-state kernel relaunches allocation-free.
func (t *Tasklet) work() {
	for {
		<-t.resume
		t.runBody()
	}
}

// runBody executes one armed program with fault capture.
func (t *Tasklet) runBody() {
	defer func() {
		if r := recover(); r != nil {
			t.panicVal = r
		}
		t.state = stateDone
		t.yielded <- t
	}()
	t.body(t)
}

// DPU returns the hosting DPU.
func (t *Tasklet) DPU() *DPU { return t.dpu }

// Now returns the tasklet's current virtual time in cycles.
func (t *Tasklet) Now() uint64 { return t.now }

// yield hands control back to the scheduler and waits until this tasklet
// is the globally oldest runnable one. Every shared-state access yields
// first so that accesses happen in virtual-time order.
func (t *Tasklet) yield() {
	t.yielded <- t
	<-t.resume
}

// instr charges n instruction issue slots without yielding. Use for
// private computation; shared accesses must go through the Load/Store/
// atomic helpers.
func (t *Tasklet) instr(n int) {
	t.now += uint64(n) * t.dpu.issueInterval()
}

// Exec models n instructions of non-memory application compute
// (arithmetic, branches, private register work).
func (t *Tasklet) Exec(n int) { t.instr(n) }

// AdvanceTo moves the tasklet clock forward to at least cyc. Used by
// host-level coordination (e.g. barrier release at the latest arrival).
func (t *Tasklet) AdvanceTo(cyc uint64) {
	if cyc > t.now {
		t.now = cyc
	}
}

// checkAddr panics on out-of-range accesses: simulated memory faults are
// programming errors in the DPU program, mirroring a hardware fault.
func (t *Tasklet) checkAddr(a Addr, size int) {
	mem := t.dpu.tierSlice(a)
	off := int(a.Offset())
	if off < 0 || off+size > len(mem) {
		panic(fmt.Sprintf("dpu: tasklet %d memory fault at %v size %d", t.ID, a, size))
	}
}

// access charges the latency of one memory access of n bytes at address
// a: one pipeline slot for WRAM, a DMA engine transfer for MRAM. Loads
// pay the full round-trip latency; stores are posted — the tasklet only
// waits for the engine hand-off, not for data to come back. It yields
// before the access so shared state is touched in time order.
func (t *Tasklet) access(a Addr, n int, store bool) {
	t.yield()
	t.instr(1)
	if !a.IsWRAM() {
		t.now = t.dpu.dma(t.now, n, store)
	}
}

// Load64 reads a 64-bit little-endian word from simulated memory.
func (t *Tasklet) Load64(a Addr) uint64 {
	t.checkAddr(a, 8)
	t.access(a, 8, false)
	return binary.LittleEndian.Uint64(t.dpu.tierSlice(a)[a.Offset():])
}

// Store64 writes a 64-bit little-endian word to simulated memory.
func (t *Tasklet) Store64(a Addr, v uint64) {
	t.checkAddr(a, 8)
	t.access(a, 8, true)
	binary.LittleEndian.PutUint64(t.dpu.tierSlice(a)[a.Offset():], v)
}

// Load32 reads a 32-bit word (used for the rw-lock table of the VR STM).
func (t *Tasklet) Load32(a Addr) uint32 {
	t.checkAddr(a, 4)
	t.access(a, 4, false)
	return binary.LittleEndian.Uint32(t.dpu.tierSlice(a)[a.Offset():])
}

// Store32 writes a 32-bit word.
func (t *Tasklet) Store32(a Addr, v uint32) {
	t.checkAddr(a, 4)
	t.access(a, 4, true)
	binary.LittleEndian.PutUint32(t.dpu.tierSlice(a)[a.Offset():], v)
}

// ReadBulk copies len(dst) bytes from simulated memory into dst as a
// single transfer (one DMA for MRAM). Used for block operations such as
// Labyrinth's private grid copies.
func (t *Tasklet) ReadBulk(dst []byte, a Addr) {
	t.checkAddr(a, len(dst))
	t.access(a, len(dst), false)
	copy(dst, t.dpu.tierSlice(a)[a.Offset():])
}

// WriteBulk copies src into simulated memory as a single transfer.
func (t *Tasklet) WriteBulk(a Addr, src []byte) {
	t.checkAddr(a, len(src))
	t.access(a, len(src), true)
	copy(t.dpu.tierSlice(a)[a.Offset():], src)
}

// ChargePrivate charges the cost of loading n bytes of per-tasklet
// private metadata hosted in the given tier, without touching simulated
// memory contents. WRAM-private traffic costs one pipeline slot and does
// not yield (no shared state involved); MRAM-private traffic contends on
// the shared DMA engine like any other transfer.
func (t *Tasklet) ChargePrivate(tier Tier, n int) {
	if tier == WRAM {
		t.instr(1)
		return
	}
	t.yield()
	t.instr(1)
	t.now = t.dpu.dma(t.now, n, false)
}

// ChargePrivateStore is ChargePrivate for writes: MRAM stores are
// posted, so only the engine hand-off is paid.
func (t *Tasklet) ChargePrivateStore(tier Tier, n int) {
	if tier == WRAM {
		t.instr(1)
		return
	}
	t.yield()
	t.instr(1)
	t.now = t.dpu.dma(t.now, n, true)
}

// Rand returns the next value of the tasklet's deterministic PRNG
// (xorshift64*). Each tasklet's stream depends on the DPU seed and the
// tasklet ID only.
func (t *Tasklet) Rand() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// RandN returns a deterministic pseudo-random value in [0, n).
func (t *Tasklet) RandN(n int) int {
	if n <= 0 {
		panic("dpu: RandN with non-positive bound")
	}
	return int(t.Rand() % uint64(n))
}

// rngState derives a non-zero PRNG state from the DPU seed and tasklet
// index using splitmix64.
func rngState(seed, id uint64) uint64 {
	z := seed*0x9E3779B97F4A7C15 + (id+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// FetchApplyInstr charges streaming one packed instruction of a
// writeback apply program from the tasklet's MRAM staging buffer (one
// DMA load of ApplyInstrBytes) plus the decode/dispatch issue slot.
// The kernel-side commit path calls this once per compiled instruction
// before executing it, so apply programs pay for their own code the
// way the real writeback kernels would.
func (t *Tasklet) FetchApplyInstr() {
	t.ChargePrivate(MRAM, ApplyInstrBytes)
	t.instr(1)
}

// FetchApplyOperand charges reading one gathered remote-operand record
// from the apply program's MRAM operand table — the lookup an apply
// instruction performs when its key lives on another DPU and was
// snapshotted by the prepare round.
func (t *Tasklet) FetchApplyOperand() {
	t.ChargePrivate(MRAM, ApplyOperandBytes)
}
