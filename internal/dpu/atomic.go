package dpu

// atomicRegister models the 256-bit hardware atomic register of the DPU.
// acquire/release operate on one bit selected by a hardware hash of the
// target address; two different addresses may hash to the same bit and
// be needlessly serialized (lock aliasing, paper §3.2.1).
type atomicRegister struct {
	owner   [AtomicBits]*Tasklet
	waiters [AtomicBits][]*Tasklet
}

// HashBit is the hardware hash mapping an address to one of the 256
// logical lock bits. The DPU hashes the (4-byte aligned) word address
// with a multiplicative hash; the exact function is unspecified in the
// UPMEM documentation, so we pick a fixed, well-mixing one. It is
// exported so tests can construct deliberate aliasing.
func HashBit(a Addr) int {
	x := uint32(a) >> 2
	x *= 2654435761 // Knuth multiplicative hash
	return int(x >> 24)
}

// Acquire takes the logical lock bit associated with address a. If the
// bit is held the tasklet blocks until it is released (FIFO), mirroring
// the hardware instruction that suspends the issuing thread. Costs one
// instruction plus any wait.
func (t *Tasklet) Acquire(a Addr) { t.AcquireBit(HashBit(a)) }

// Release frees the logical lock bit associated with address a, waking
// the first waiter if any.
func (t *Tasklet) Release(a Addr) { t.ReleaseBit(HashBit(a)) }

// TryAcquire attempts to take the bit for a without blocking and reports
// whether it succeeded.
func (t *Tasklet) TryAcquire(a Addr) bool { return t.TryAcquireBit(HashBit(a)) }

// AcquireBit takes the given register bit directly, blocking if held.
func (t *Tasklet) AcquireBit(bit int) {
	t.yield()
	t.instr(1)
	r := &t.dpu.reg
	if r.owner[bit] == nil {
		r.owner[bit] = t
		return
	}
	if r.owner[bit] == t {
		panic("dpu: tasklet re-acquired an atomic bit it already holds (self-deadlock)")
	}
	r.waiters[bit] = append(r.waiters[bit], t)
	t.state = stateBlocked
	t.blockedBit = bit
	t.yield() // woken by ReleaseBit with ownership already transferred
	t.instr(1)
}

// TryAcquireBit attempts to take the given register bit without
// blocking.
func (t *Tasklet) TryAcquireBit(bit int) bool {
	t.yield()
	t.instr(1)
	r := &t.dpu.reg
	if r.owner[bit] == nil {
		r.owner[bit] = t
		return true
	}
	return false
}

// ReleaseBit frees the given register bit. Releasing a bit the tasklet
// does not hold is a programming error and panics, like the hardware
// raising a fault.
func (t *Tasklet) ReleaseBit(bit int) {
	t.yield()
	t.instr(1)
	r := &t.dpu.reg
	if r.owner[bit] != t {
		panic("dpu: tasklet released an atomic bit it does not hold")
	}
	if len(r.waiters[bit]) == 0 {
		r.owner[bit] = nil
		return
	}
	w := r.waiters[bit]
	next := w[0]
	// Shift in place rather than re-slicing: w[1:] would shed capacity
	// and force AcquireBit to reallocate the queue on every contended
	// acquire (at most MaxTasklets-1 entries, so the copy is trivial).
	copy(w, w[1:])
	r.waiters[bit] = w[:len(w)-1]
	r.owner[bit] = next
	next.AdvanceTo(t.now)
	next.state = stateRunnable
}

// Mutex is the lock abstraction the UPMEM runtime library offers on top
// of the atomic register: each mutex pins one register bit.
type Mutex struct {
	bit int
}

// NewMutex allocates a mutex bound to the register bit hashed from a
// fresh pseudo-address, matching how the UPMEM runtime derives mutex
// bits from the mutex variable's WRAM address.
func NewMutex(addr Addr) *Mutex { return &Mutex{bit: HashBit(addr)} }

// Lock acquires the mutex, blocking the tasklet if contended.
func (m *Mutex) Lock(t *Tasklet) { t.AcquireBit(m.bit) }

// Unlock releases the mutex.
func (m *Mutex) Unlock(t *Tasklet) { t.ReleaseBit(m.bit) }

// Barrier synchronizes all tasklets of a DPU program, like the UPMEM
// runtime's barrier_wait. The zero value is not usable; create one per
// rendezvous group with NewBarrier.
type Barrier struct {
	n       int
	arrived []*Tasklet
	maxTime uint64
}

// NewBarrier creates a barrier for n tasklets.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks the tasklet until all n tasklets have arrived; every
// waiter resumes at the virtual time of the latest arrival.
func (b *Barrier) Wait(t *Tasklet) {
	t.yield()
	t.instr(1)
	if t.now > b.maxTime {
		b.maxTime = t.now
	}
	if len(b.arrived)+1 == b.n {
		for _, w := range b.arrived {
			w.AdvanceTo(b.maxTime)
			w.state = stateRunnable
		}
		b.arrived = b.arrived[:0]
		b.maxTime = 0
		return
	}
	b.arrived = append(b.arrived, t)
	t.state = stateBlocked
	t.blockedBit = -1
	t.yield()
}
