package dpu

import (
	"strings"
	"testing"
)

func newTestDPU() *DPU {
	return New(Config{MRAMSize: 1 << 20, Seed: 1})
}

func mustRun(t *testing.T, d *DPU, progs []func(*Tasklet)) uint64 {
	t.Helper()
	cyc, err := d.Run(progs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cyc
}

func TestAddrTierEncoding(t *testing.T) {
	m := MRAMAddr(0x1234)
	if m.IsWRAM() || m.Offset() != 0x1234 {
		t.Fatalf("MRAM addr mis-encoded: %v", m)
	}
	w := WRAMAddr(0x88)
	if !w.IsWRAM() || w.Offset() != 0x88 {
		t.Fatalf("WRAM addr mis-encoded: %v", w)
	}
	if !strings.Contains(w.String(), "wram") || !strings.Contains(m.String(), "mram") {
		t.Fatalf("String tier tags wrong: %v %v", m, w)
	}
}

func TestAllocatorAlignmentAndNil(t *testing.T) {
	d := newTestDPU()
	a, err := d.AllocMRAM(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == NilAddr {
		t.Fatal("allocator handed out the nil address")
	}
	if a.Offset()%8 != 0 {
		t.Fatalf("alignment violated: %v", a)
	}
	b, _ := d.AllocMRAM(1, 1)
	c, _ := d.AllocMRAM(8, 8)
	if c.Offset()%8 != 0 || c.Offset() <= b.Offset() {
		t.Fatalf("bump allocator order broken: %v %v %v", a, b, c)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	d := New(Config{MRAMSize: 1024, WRAMSize: 512})
	if _, err := d.AllocMRAM(2048, 8); err == nil {
		t.Fatal("expected MRAM exhaustion error")
	}
	if _, err := d.AllocWRAM(1024, 8); err == nil {
		t.Fatal("expected WRAM exhaustion error")
	}
	if d.WRAMFree() != 512 {
		t.Fatalf("WRAMFree = %d, want 512", d.WRAMFree())
	}
}

func TestSingleTaskletLoadStore(t *testing.T) {
	d := newTestDPU()
	a := d.MustAlloc(MRAM, 8, 8)
	w := d.MustAlloc(WRAM, 8, 8)
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		tk.Store64(a, 0xDEADBEEF)
		tk.Store64(w, 42)
		if got := tk.Load64(a); got != 0xDEADBEEF {
			t.Errorf("MRAM load = %#x", got)
		}
		if got := tk.Load64(w); got != 42 {
			t.Errorf("WRAM load = %d", got)
		}
	}})
	if d.HostRead64(a) != 0xDEADBEEF {
		t.Fatal("host view of MRAM inconsistent")
	}
}

// TestMRAMLatencyMatchesPaper checks the calibration target: a 64-bit
// MRAM read costs about 231 ns at 350 MHz (paper §3.1).
func TestMRAMLatencyMatchesPaper(t *testing.T) {
	d := newTestDPU()
	a := d.MustAlloc(MRAM, 8, 8)
	var start, end uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		start = tk.Now()
		tk.Load64(a)
		end = tk.Now()
	}})
	ns := d.Seconds(end-start) * 1e9
	if ns < 200 || ns > 280 {
		t.Fatalf("64-bit MRAM read latency = %.1f ns, want ≈231 ns", ns)
	}
}

func TestWRAMCheaperThanMRAM(t *testing.T) {
	d := newTestDPU()
	m := d.MustAlloc(MRAM, 8, 8)
	w := d.MustAlloc(WRAM, 8, 8)
	var wramCyc, mramCyc uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		t0 := tk.Now()
		tk.Load64(w)
		wramCyc = tk.Now() - t0
		t0 = tk.Now()
		tk.Load64(m)
		mramCyc = tk.Now() - t0
	}})
	if wramCyc*5 > mramCyc {
		t.Fatalf("WRAM (%d cyc) should be far cheaper than MRAM (%d cyc)", wramCyc, mramCyc)
	}
}

// TestPipelineScaling verifies the core scalability property: total
// compute throughput grows linearly with tasklets up to the pipeline
// depth of 11 and is flat beyond.
func TestPipelineScaling(t *testing.T) {
	perTasklet := 1000
	runWith := func(n int) uint64 {
		d := newTestDPU()
		progs := make([]func(*Tasklet), n)
		for i := range progs {
			progs[i] = func(tk *Tasklet) { tk.Exec(perTasklet) }
		}
		return mustRun(t, d, progs)
	}
	one := runWith(1)
	eleven := runWith(11)
	if eleven != one {
		t.Fatalf("11 tasklets of pure compute should overlap perfectly: 1→%d cyc, 11→%d cyc", one, eleven)
	}
	twentytwo := runWith(22)
	if twentytwo <= eleven || twentytwo < 2*eleven*9/10 {
		t.Fatalf("beyond 11 tasklets time must grow ~linearly: 11→%d, 22→%d", eleven, twentytwo)
	}
}

// TestDMAEngineSaturation verifies the memory-bound behaviour that caps
// Labyrinth scalability: concurrent large transfers serialize on the
// DMA engine so run time stops improving with more tasklets.
func TestDMAEngineSaturation(t *testing.T) {
	transfer := 4096
	runWith := func(n int) uint64 {
		d := New(Config{MRAMSize: 1 << 22})
		bufs := make([]Addr, n)
		for i := range bufs {
			bufs[i] = d.MustAlloc(MRAM, transfer, 8)
		}
		progs := make([]func(*Tasklet), n)
		for i := range progs {
			a := bufs[i]
			progs[i] = func(tk *Tasklet) {
				buf := make([]byte, transfer)
				for j := 0; j < 8; j++ {
					tk.ReadBulk(buf, a)
				}
			}
		}
		return mustRun(t, d, progs)
	}
	one := runWith(1)
	eight := runWith(8)
	// With a single shared DMA engine, 8 tasklets moving 8× the bytes
	// cannot be faster than ~8× a single tasklet's engine occupancy.
	if eight < 6*one {
		t.Fatalf("DMA engine should serialize bulk transfers: 1→%d cyc, 8→%d cyc", one, eight)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		d := newTestDPU()
		ctr := d.MustAlloc(WRAM, 8, 8)
		progs := make([]func(*Tasklet), 6)
		for i := range progs {
			progs[i] = func(tk *Tasklet) {
				for j := 0; j < 50; j++ {
					tk.Acquire(ctr)
					v := tk.Load64(ctr)
					tk.Exec(tk.RandN(20))
					tk.Store64(ctr, v+1)
					tk.Release(ctr)
				}
			}
		}
		cyc := mustRun(t, d, progs)
		return cyc, d.HostRead64(ctr)
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", c1, v1, c2, v2)
	}
	if v1 != 300 {
		t.Fatalf("lost updates under mutual exclusion: counter = %d, want 300", v1)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) uint64 {
		d := New(Config{MRAMSize: 1 << 20, Seed: seed})
		progs := make([]func(*Tasklet), 4)
		for i := range progs {
			progs[i] = func(tk *Tasklet) {
				for j := 0; j < 30; j++ {
					tk.Exec(tk.RandN(100) + 1)
				}
			}
		}
		return mustRun(t, d, progs)
	}
	if run(1) == run(2) {
		t.Fatal("different seeds should perturb run time")
	}
}

func TestAtomicRegisterMutualExclusion(t *testing.T) {
	d := newTestDPU()
	word := d.MustAlloc(WRAM, 8, 8)
	const n, iters = 8, 100
	progs := make([]func(*Tasklet), n)
	for i := range progs {
		progs[i] = func(tk *Tasklet) {
			for j := 0; j < iters; j++ {
				tk.Acquire(word)
				v := tk.Load64(word)
				tk.Store64(word, v+1)
				tk.Release(word)
			}
		}
	}
	mustRun(t, d, progs)
	if got := d.HostRead64(word); got != n*iters {
		t.Fatalf("atomic counter = %d, want %d", got, n*iters)
	}
}

func TestAtomicAliasing(t *testing.T) {
	// Two addresses hashing to the same bit serialize; this test builds
	// such a pair explicitly and checks TryAcquire observes the conflict.
	var a1, a2 Addr
	found := false
	base := HashBit(MRAMAddr(8))
search:
	for off := uint32(16); off < 1<<20; off += 4 {
		if HashBit(MRAMAddr(off)) == base {
			a1, a2 = MRAMAddr(8), MRAMAddr(off)
			found = true
			break search
		}
	}
	if !found {
		t.Fatal("could not construct aliasing pair (hash too uniform?)")
	}
	d := newTestDPU()
	var ok bool
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		tk.Acquire(a1)
		ok = tk.TryAcquire(a2) // aliases to the same bit: must fail
		tk.Release(a1)
	}})
	if ok {
		t.Fatal("aliased addresses did not serialize on the atomic register")
	}
}

func TestTryAcquireAndFIFOWake(t *testing.T) {
	d := newTestDPU()
	word := d.MustAlloc(WRAM, 8, 8)
	order := []int{}
	progs := []func(*Tasklet){
		func(tk *Tasklet) {
			tk.Acquire(word)
			tk.Exec(1000) // hold the bit for a while
			tk.Release(word)
		},
		func(tk *Tasklet) {
			tk.Exec(10)
			tk.Acquire(word)
			order = append(order, 1)
			tk.Release(word)
		},
		func(tk *Tasklet) {
			tk.Exec(20)
			tk.Acquire(word)
			order = append(order, 2)
			tk.Release(word)
		},
	}
	mustRun(t, d, progs)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("FIFO wake order violated: %v", order)
	}
}

func TestSelfDeadlockPanics(t *testing.T) {
	d := newTestDPU()
	word := d.MustAlloc(WRAM, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("double acquire of the same bit should panic")
		}
	}()
	_, _ = d.Run([]func(*Tasklet){func(tk *Tasklet) {
		tk.Acquire(word)
		tk.Acquire(word)
	}})
}

func TestBarrier(t *testing.T) {
	d := newTestDPU()
	const n = 5
	b := NewBarrier(n)
	times := make([]uint64, n)
	progs := make([]func(*Tasklet), n)
	for i := range progs {
		progs[i] = func(tk *Tasklet) {
			tk.Exec((tk.ID + 1) * 100)
			b.Wait(tk)
			times[tk.ID] = tk.Now()
		}
	}
	mustRun(t, d, progs)
	for i := 1; i < n; i++ {
		if times[i] != times[0] {
			t.Fatalf("tasklets left the barrier at different times: %v", times)
		}
	}
}

func TestBarrierReuse(t *testing.T) {
	d := newTestDPU()
	const n = 3
	b := NewBarrier(n)
	word := d.MustAlloc(WRAM, 8, 8)
	progs := make([]func(*Tasklet), n)
	for i := range progs {
		progs[i] = func(tk *Tasklet) {
			for round := 0; round < 4; round++ {
				tk.Acquire(word)
				tk.Store64(word, tk.Load64(word)+1)
				tk.Release(word)
				b.Wait(tk)
				if v := tk.Load64(word); v%n != 0 {
					t.Errorf("barrier round leaked: counter=%d", v)
				}
				b.Wait(tk)
			}
		}
	}
	mustRun(t, d, progs)
}

func TestMutex(t *testing.T) {
	d := newTestDPU()
	m := NewMutex(d.MustAlloc(WRAM, 4, 4))
	word := d.MustAlloc(WRAM, 8, 8)
	progs := make([]func(*Tasklet), 6)
	for i := range progs {
		progs[i] = func(tk *Tasklet) {
			for j := 0; j < 40; j++ {
				m.Lock(tk)
				tk.Store64(word, tk.Load64(word)+1)
				m.Unlock(tk)
			}
		}
	}
	mustRun(t, d, progs)
	if got := d.HostRead64(word); got != 240 {
		t.Fatalf("mutex counter = %d, want 240", got)
	}
}

func TestRunErrors(t *testing.T) {
	d := newTestDPU()
	if _, err := d.Run(nil); err == nil {
		t.Fatal("Run with no programs should error")
	}
	progs := make([]func(*Tasklet), MaxTasklets+1)
	for i := range progs {
		progs[i] = func(tk *Tasklet) {}
	}
	if _, err := d.Run(progs); err == nil {
		t.Fatal("Run beyond MaxTasklets should error")
	}
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {}})
	if _, err := d.Run([]func(*Tasklet){func(tk *Tasklet) {}}); err == nil {
		t.Fatal("second Run without Reset should error")
	}
	d.Reset()
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {}})
}

func TestMemoryFaultPanics(t *testing.T) {
	d := New(Config{MRAMSize: 1024})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	_, _ = d.Run([]func(*Tasklet){func(tk *Tasklet) {
		tk.Load64(MRAMAddr(4096))
	}})
}

func TestBulkTransfers(t *testing.T) {
	d := newTestDPU()
	a := d.MustAlloc(MRAM, 256, 8)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	var got [256]byte
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		tk.WriteBulk(a, src)
		tk.ReadBulk(got[:], a)
	}})
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("bulk roundtrip corrupt at %d", i)
		}
	}
	if d.DMATransfers() != 2 {
		t.Fatalf("bulk ops should be single transfers, got %d", d.DMATransfers())
	}
	if d.DMABytes() != 512 {
		t.Fatalf("DMABytes = %d, want 512", d.DMABytes())
	}
}

func TestChargePrivateTiers(t *testing.T) {
	d := newTestDPU()
	var wcost, mcost uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		t0 := tk.Now()
		tk.ChargePrivate(WRAM, 16)
		wcost = tk.Now() - t0
		t0 = tk.Now()
		tk.ChargePrivate(MRAM, 16)
		mcost = tk.Now() - t0
	}})
	if wcost >= mcost {
		t.Fatalf("private WRAM traffic (%d) should be cheaper than MRAM (%d)", wcost, mcost)
	}
}

func TestRandNDeterministicPerSeed(t *testing.T) {
	seq := func(seed uint64) []int {
		d := New(Config{MRAMSize: 1 << 12, Seed: seed})
		var out []int
		mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
			for i := 0; i < 10; i++ {
				out = append(out, tk.RandN(1000))
			}
		}})
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRNG not reproducible for equal seeds")
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("PRNG identical across different seeds")
	}
}
