package dpu

import "testing"

// Cost-model regression tests: the calibration points documented in
// dpu.go must hold, or every experiment shifts.

func TestPostedStoreCheaperThanLoad(t *testing.T) {
	d := newTestDPU()
	a := d.MustAlloc(MRAM, 8, 8)
	var loadCyc, storeCyc uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		t0 := tk.Now()
		tk.Load64(a)
		loadCyc = tk.Now() - t0
		t0 = tk.Now()
		tk.Store64(a, 1)
		storeCyc = tk.Now() - t0
	}})
	if storeCyc >= loadCyc {
		t.Fatalf("posted store (%d cyc) should be cheaper than load (%d cyc)", storeCyc, loadCyc)
	}
}

func TestPostedStoreStillSerializesEngine(t *testing.T) {
	// Stores occupy the engine: many concurrent stores must slow each
	// other down even though each store is posted.
	run := func(n int) uint64 {
		d := newTestDPU()
		a := make([]Addr, n)
		for i := range a {
			a[i] = d.MustAlloc(MRAM, 8, 8)
		}
		progs := make([]func(*Tasklet), n)
		for i := range progs {
			addr := a[i]
			progs[i] = func(tk *Tasklet) {
				for j := 0; j < 200; j++ {
					tk.Store64(addr, uint64(j))
				}
			}
		}
		return mustRun(t, d, progs)
	}
	one := run(1)
	eight := run(8)
	if eight < one*3 {
		t.Fatalf("8 store streams should contend on the engine: 1→%d, 8→%d", one, eight)
	}
}

func TestStoreVisibleToSubsequentLoad(t *testing.T) {
	// Posted stores are applied at issue in simulation order: a later
	// load (same or another tasklet) must observe the value.
	d := newTestDPU()
	a := d.MustAlloc(MRAM, 8, 8)
	var got uint64
	mustRun(t, d, []func(*Tasklet){
		func(tk *Tasklet) {
			tk.Store64(a, 123)
		},
		func(tk *Tasklet) {
			tk.Exec(1000) // run after the store in virtual time
			got = tk.Load64(a)
		},
	})
	if got != 123 {
		t.Fatalf("store not visible: %d", got)
	}
}

// TestStreamingBandwidth: large transfers should move ≈2 bytes/cycle
// (700 MB/s at 350 MHz).
func TestStreamingBandwidth(t *testing.T) {
	d := New(Config{MRAMSize: 4 << 20})
	const total = 1 << 20
	a := d.MustAlloc(MRAM, total, 8)
	buf := make([]byte, 2048)
	var cyc uint64
	mustRun(t, d, []func(*Tasklet){func(tk *Tasklet) {
		t0 := tk.Now()
		for off := 0; off < total; off += len(buf) {
			tk.ReadBulk(buf, a+Addr(off))
		}
		cyc = tk.Now() - t0
	}})
	bytesPerCycle := float64(total) / float64(cyc)
	if bytesPerCycle < 1.2 || bytesPerCycle > 2.0 {
		t.Fatalf("streaming bandwidth = %.2f B/cyc, want ≈1.5-2", bytesPerCycle)
	}
}

// TestSmallTransferAggregateRate: 8-byte loads from many tasklets
// should sustain roughly one transfer per engine occupancy (28 cyc),
// not one per full latency (81 cyc).
func TestSmallTransferAggregateRate(t *testing.T) {
	d := newTestDPU()
	const n, per = 11, 300
	addrs := make([]Addr, n)
	for i := range addrs {
		addrs[i] = d.MustAlloc(MRAM, 8, 8)
	}
	progs := make([]func(*Tasklet), n)
	for i := range progs {
		a := addrs[i]
		progs[i] = func(tk *Tasklet) {
			for j := 0; j < per; j++ {
				tk.Load64(a)
			}
		}
	}
	cyc := mustRun(t, d, progs)
	perTransfer := float64(cyc) / float64(n*per)
	if perTransfer > 45 {
		t.Fatalf("aggregate small-transfer cost = %.1f cyc, engine occupancy should dominate (≈28-39)", perTransfer)
	}
	if perTransfer < 25 {
		t.Fatalf("aggregate small-transfer cost = %.1f cyc, below the engine bound", perTransfer)
	}
}

// TestPipelineAdaptsToLiveCount: the issue interval shrinks once
// tasklets beyond the pipeline depth retire. The surviving tasklet must
// issue through yielding accesses (as real programs do at every memory
// operation) for the new interval to take effect — Exec charges its
// whole block at the rate sampled on entry.
func TestPipelineAdaptsToLiveCount(t *testing.T) {
	d := newTestDPU()
	const n = 22
	w := d.MustAlloc(WRAM, 8, 8)
	progs := make([]func(*Tasklet), n)
	var lateStart, lateEnd uint64
	for i := range progs {
		id := i
		progs[i] = func(tk *Tasklet) {
			if id == 0 {
				// Fall far behind, then issue 1000 yielding WRAM loads
				// once every other tasklet has retired.
				tk.Exec(2000)
				lateStart = tk.Now()
				for j := 0; j < 1000; j++ {
					tk.Load64(w)
				}
				lateEnd = tk.Now()
			} else {
				tk.Exec(10)
			}
		}
	}
	mustRun(t, d, progs)
	perInstr := float64(lateEnd-lateStart) / 1000
	if perInstr > float64(PipelineDepth)+1 {
		t.Fatalf("lone tasklet should issue every ~%d cycles, got %.1f", PipelineDepth, perInstr)
	}
}
