package dpu

import (
	"encoding/binary"
	"fmt"
)

// AllocMRAM reserves size bytes of MRAM with the given power-of-two
// alignment (0 or 1 means byte alignment) and returns the base address.
// Allocation is a bump allocator, like the UPMEM heap: there is no free.
func (d *DPU) AllocMRAM(size, align int) (Addr, error) {
	off, err := bump(&d.mramBrk, len(d.mram), size, align, "MRAM")
	if err != nil {
		return NilAddr, err
	}
	return MRAMAddr(off), nil
}

// AllocWRAM reserves size bytes of WRAM and returns the base address.
func (d *DPU) AllocWRAM(size, align int) (Addr, error) {
	off, err := bump(&d.wramBrk, len(d.wram), size, align, "WRAM")
	if err != nil {
		return NilAddr, err
	}
	return WRAMAddr(off), nil
}

// Alloc reserves size bytes in the requested tier.
func (d *DPU) Alloc(tier Tier, size, align int) (Addr, error) {
	if tier == WRAM {
		return d.AllocWRAM(size, align)
	}
	return d.AllocMRAM(size, align)
}

// MustAlloc is Alloc for static program layout: it panics on exhaustion,
// which in a DPU program corresponds to a link-time failure.
func (d *DPU) MustAlloc(tier Tier, size, align int) Addr {
	a, err := d.Alloc(tier, size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// WRAMFree returns the number of unallocated WRAM bytes, used by
// configurations that spill metadata to MRAM when WRAM is exhausted.
func (d *DPU) WRAMFree() int { return len(d.wram) - int(d.wramBrk) }

// MRAMFree returns the number of unallocated MRAM bytes.
func (d *DPU) MRAMFree() int { return len(d.mram) - int(d.mramBrk) }

func bump(brk *uint32, capacity, size, align int, tier string) (uint32, error) {
	if size < 0 {
		return 0, fmt.Errorf("dpu: negative allocation")
	}
	off := *brk
	if align > 1 {
		a := uint32(align)
		off = (off + a - 1) &^ (a - 1)
	}
	if int(off)+size > capacity {
		return 0, fmt.Errorf("dpu: %s exhausted: need %d bytes at offset %d, capacity %d", tier, size, off, capacity)
	}
	*brk = off + uint32(size)
	return off, nil
}

// Host-side accessors. The CPU may only touch DPU memory while the DPU is
// not running (paper §2.1); in the simulator that means outside Run.
// These helpers are used by the multi-DPU host layer and by tests.

// HostRead64 reads a 64-bit word from simulated memory from the host.
func (d *DPU) HostRead64(a Addr) uint64 {
	return binary.LittleEndian.Uint64(d.tierSlice(a)[a.Offset():])
}

// HostWrite64 writes a 64-bit word into simulated memory from the host.
func (d *DPU) HostWrite64(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(d.tierSlice(a)[a.Offset():], v)
}

// HostRead32 reads a 32-bit word from the host.
func (d *DPU) HostRead32(a Addr) uint32 {
	return binary.LittleEndian.Uint32(d.tierSlice(a)[a.Offset():])
}

// HostWrite32 writes a 32-bit word from the host.
func (d *DPU) HostWrite32(a Addr, v uint32) {
	binary.LittleEndian.PutUint32(d.tierSlice(a)[a.Offset():], v)
}

// HostReadBulk copies simulated memory into dst from the host.
func (d *DPU) HostReadBulk(dst []byte, a Addr) {
	copy(dst, d.tierSlice(a)[a.Offset():])
}

// HostWriteBulk copies src into simulated memory from the host.
func (d *DPU) HostWriteBulk(a Addr, src []byte) {
	copy(d.tierSlice(a)[a.Offset():], src)
}
