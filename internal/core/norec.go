package core

import "pimstm/internal/dpu"

// norecEngine implements NOrec (Dalessandro, Spear & Scott, PPoPP 2010)
// on the DPU: a single sequence lock serializes the commit phase of
// update transactions; reads are invisible and validated by value
// whenever a concurrent commit is detected. Commit-time locking and
// write-back are inherent to the design (Fig 2 of the paper).
type norecEngine struct {
	tm *TM
}

// start snapshots the sequence lock, waiting until it is even (no
// writer committing). The wait doubles as contention management: the
// paper (§3.2.1) describes it as "a simple back-off policy that delays
// transaction start if the lock is found busy", so the retry delay
// grows exponentially (with deterministic per-tasklet jitter) instead
// of hammering the sequence lock through the DMA engine.
func (n *norecEngine) start(tx *Tx) {
	t := tx.t
	backoff := 16
	for {
		s := t.Load64(n.tm.seqLock)
		if s&1 == 0 {
			tx.snapshot = s
			return
		}
		if n.tm.cfg.DisableStartWait {
			// Ablation mode: take the (odd) snapshot's predecessor and
			// let the first read trigger validation instead of waiting.
			tx.snapshot = s - 1
			return
		}
		t.Exec(4 + t.RandN(backoff))
		if backoff < n.tm.cfg.MaxBackoff {
			backoff *= 2
		}
	}
}

// read returns the buffered value for addresses written earlier in the
// transaction, otherwise performs the NOrec post-validated read loop.
func (n *norecEngine) read(tx *Tx, a dpu.Addr) uint64 {
	if v, ok := tx.wsLookup(a); ok {
		return v
	}
	t := tx.t
	v := t.Load64(a)
	for {
		s := t.Load64(n.tm.seqLock)
		if s == tx.snapshot {
			break
		}
		// A concurrent transaction committed: re-validate the readset
		// and re-read the target until a consistent snapshot is found.
		tx.snapshot = n.validate(tx, false)
		v = t.Load64(a)
	}
	tx.rsAdd(a, v)
	return v
}

// write buffers the store; NOrec is write-back by construction.
func (n *norecEngine) write(tx *Tx, a dpu.Addr, v uint64) {
	tx.wsPut(a, v)
}

// validate re-checks every read value against memory and returns the
// sequence-lock snapshot the readset was proven consistent at. It
// unwinds the attempt if any value changed.
func (n *norecEngine) validate(tx *Tx, commitPhase bool) uint64 {
	t := tx.t
	var snap uint64
	ok := tx.validateBracket(commitPhase, func() bool {
		for {
			s := t.Load64(n.tm.seqLock)
			if s&1 == 1 {
				t.Exec(4) // writer in its commit critical section
				continue
			}
			for i := range tx.rs {
				e := &tx.rs[i]
				t.ChargePrivate(tx.metaTier(), 16)
				if t.Load64(e.key) != e.val {
					return false
				}
			}
			if t.Load64(n.tm.seqLock) == s {
				snap = s
				return true
			}
		}
	})
	if !ok {
		tx.abort(AbortValidation)
	}
	return snap
}

// commit serializes update transactions on the sequence lock, validating
// if anyone committed since the snapshot, then writes back.
func (n *norecEngine) commit(tx *Tx) {
	if len(tx.ws) == 0 {
		return // read-only: the readset was valid at tx.snapshot
	}
	t := tx.t
	for !cas64(t, n.tm.seqLock, tx.snapshot, tx.snapshot+1) {
		tx.snapshot = n.validate(tx, true)
	}
	// Sequence lock held (odd): write back and release.
	for i := range tx.ws {
		t.ChargePrivate(tx.metaTier(), 16) // load the buffered entry
		t.Store64(tx.ws[i].addr, tx.ws[i].val)
	}
	t.Store64(n.tm.seqLock, tx.snapshot+2)
}

// rollback: NOrec has no encounter-time effects; an abort can only
// happen while the sequence lock is not held by this transaction.
func (n *norecEngine) rollback(tx *Tx) {}
