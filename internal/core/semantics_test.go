package core

import (
	"testing"

	"pimstm/internal/dpu"
)

// Tests for the semantic differences between the design-space points:
// lock timing, write policy, and the visible-read shortcuts.

// TestCTLDoesNotBlockDuringExecution: a commit-time-locking transaction
// with invisible reads (Tiny CTLWB) holds no locks while executing, so
// a concurrent writer to the same word can commit first. Note VR CTLWB
// does NOT behave this way: its reads are visible (read locks taken at
// encounter), so conflicts still surface during execution — the very
// property the paper credits for VR's early conflict detection.
func TestCTLDoesNotBlockDuringExecution(t *testing.T) {
	for _, alg := range []Algorithm{TinyCTLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Algorithm: alg, LockTableEntries: 256}
			var firstCommitter int
			d, base, _ := runSTM(t, cfg, 1, 2, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				if tk.ID == 0 {
					// Long transaction: writes early, commits late.
					tx.Atomic(func(tx *Tx) {
						tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
						tk.Exec(5000)
					})
					if firstCommitter == 0 {
						firstCommitter = 1
					}
				} else {
					tk.Exec(200) // start after the writer buffered its write
					tx.Atomic(func(tx *Tx) {
						tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
					})
					if firstCommitter == 0 {
						firstCommitter = 2
					}
				}
			})
			if got := d.HostRead64(word(base, 0)); got != 2 {
				t.Fatalf("both increments must survive: %d", got)
			}
			if firstCommitter != 2 {
				t.Fatalf("the short transaction should commit first under CTL, got tasklet %d", firstCommitter)
			}
		})
	}
}

// TestETLBlocksConcurrentWriter: under encounter-time locking (or
// visible reads, for VR CTLWB) the long transaction claims the stripe
// early, so the short writer aborts and retries until the claim is
// released — it cannot commit first.
func TestETLOwnsStripeEarly(t *testing.T) {
	for _, alg := range []Algorithm{TinyETLWB, TinyETLWT, VRETLWB, VRETLWT, VRCTLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Algorithm: alg, LockTableEntries: 256}
			var firstCommitter int
			_, _, txs := runSTM(t, cfg, 1, 2, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				if tk.ID == 0 {
					tx.Atomic(func(tx *Tx) {
						tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
						tk.Exec(5000)
					})
					if firstCommitter == 0 {
						firstCommitter = 1
					}
				} else {
					tk.Exec(200)
					tx.Atomic(func(tx *Tx) {
						tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
					})
					if firstCommitter == 0 {
						firstCommitter = 2
					}
				}
			})
			if firstCommitter != 1 {
				t.Fatalf("ETL: the early acquirer should commit first, got tasklet %d", firstCommitter)
			}
			if txs[1].Stats().Aborts == 0 {
				t.Fatal("the short writer should have aborted against the held stripe")
			}
		})
	}
}

// TestWTExposesUncommittedToNonTransactionalReads: write-through stores
// land in memory before commit. Non-transactional (raw) loads see them
// — which is exactly why WT must undo on abort — while transactional
// readers never do (they abort on the lock instead).
func TestWTExposureAndUndo(t *testing.T) {
	for _, alg := range []Algorithm{TinyETLWT, VRETLWT} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Algorithm: alg, LockTableEntries: 256}
			sawUncommitted := false
			abortedOnce := false
			d, base, _ := runSTM(t, cfg, 1, 2, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				if tk.ID == 0 {
					tx.Start()
					tx.Write(word(base, 0), 77)
					if tk.Load64(word(base, 0)) == 77 {
						sawUncommitted = true // raw load bypassing the STM
					}
					func() {
						defer func() { recover() }()
						tx.Abort()
					}()
					abortedOnce = true
				} else {
					tk.Exec(50)
					var v uint64
					tx.Atomic(func(tx *Tx) { v = tx.Read(word(base, 0)) })
					if v == 77 {
						t.Error("transactional reader observed an uncommitted write-through store")
					}
				}
			})
			if !sawUncommitted || !abortedOnce {
				t.Fatal("test harness did not exercise the WT path")
			}
			if got := d.HostRead64(word(base, 0)); got != 0 {
				t.Fatalf("undo log failed to restore: %d", got)
			}
		})
	}
}

// TestVRWriteLockReadShortcut: with VR ETLWB, a read of a stripe this
// transaction write-locked returns the buffered value (writeset probe),
// and a read of a *different* word in the same stripe returns memory.
func TestVRWriteLockReadShortcut(t *testing.T) {
	// Two words in the same stripe: with a 256-entry table, words 0 and
	// 256 share stripe (word index & 255).
	cfg := Config{Algorithm: VRETLWB, LockTableEntries: 256}
	runSTM(t, cfg, 257, 1, func(tx *Tx, base dpu.Addr) {
		tx.Atomic(func(tx *Tx) {
			sameStripe := word(base, 256)
			if tx.tm.stripe(word(base, 0)) != tx.tm.stripe(sameStripe) {
				t.Fatal("test assumption broken: words must share a stripe")
			}
			tx.Write(word(base, 0), 5)
			if got := tx.Read(word(base, 0)); got != 5 {
				t.Fatalf("buffered read = %d", got)
			}
			if got := tx.Read(sameStripe); got != 0 {
				t.Fatalf("same-stripe other-word read = %d, want memory value 0", got)
			}
		})
	})
}

// TestLockAliasingAcrossTableWrap: words exactly LockTableEntries*8
// bytes apart share an ORec; writing one while reading the other from
// another transaction must conflict even though the addresses differ
// (the false-conflict mechanism of small tables, paper §3.2.1).
func TestLockAliasingAcrossTableWrap(t *testing.T) {
	cfg := Config{Algorithm: TinyETLWB, LockTableEntries: 64}
	_, _, txs := runSTM(t, cfg, 65, 2, func(tx *Tx, base dpu.Addr) {
		tk := tx.Tasklet()
		for i := 0; i < 20; i++ {
			if tk.ID == 0 {
				tx.Atomic(func(tx *Tx) {
					tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
					tk.Exec(300)
				})
			} else {
				tx.Atomic(func(tx *Tx) {
					_ = tx.Read(word(base, 64)) // aliases with word 0
					tk.Exec(300)
				})
			}
		}
	})
	var aborts uint64
	for _, tx := range txs {
		aborts += tx.Stats().Aborts
	}
	if aborts == 0 {
		t.Fatal("aliased stripes should produce false conflicts")
	}
}

// TestCommitAfterManualFalseReturnRestartable: a failed Commit leaves
// the descriptor reusable.
func TestCommitFalseThenRestart(t *testing.T) {
	cfg := Config{Algorithm: NOrec}
	d, base, _ := runSTM(t, cfg, 1, 2, func(tx *Tx, base dpu.Addr) {
		tk := tx.Tasklet()
		for i := 0; i < 10; i++ {
			for {
				tx.Start()
				ok := func() (ok bool) {
					defer func() {
						if r := recover(); r != nil {
							if _, is := r.(abortSignal); !is {
								panic(r)
							}
						}
					}()
					v := tx.Read(word(base, 0))
					tk.Exec(100)
					tx.Write(word(base, 0), v+1)
					return tx.Commit()
				}()
				if ok {
					break
				}
			}
		}
	})
	if got := d.HostRead64(word(base, 0)); got != 20 {
		t.Fatalf("restart loop lost updates: %d", got)
	}
}

// TestReadAfterWriteAcrossStripes exercises write-back readset/writeset
// interaction when a transaction touches many stripes.
func TestReadAfterWriteAcrossStripes(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		runSTM(t, cfg, 64, 1, func(tx *Tx, base dpu.Addr) {
			tx.Atomic(func(tx *Tx) {
				for i := 0; i < 32; i++ {
					tx.Write(word(base, i), uint64(i)*10)
				}
				for i := 31; i >= 0; i-- {
					if got := tx.Read(word(base, i)); got != uint64(i)*10 {
						t.Fatalf("read-own-write[%d] = %d", i, got)
					}
				}
			})
		})
	})
}

// TestWaitOnContention: the bounded-wait policy must preserve
// atomicity, never deadlock (two transactions acquiring stripes in
// opposite order), and typically reduce aborts under short conflicts.
func TestWaitOnContention(t *testing.T) {
	run := func(wait int) (uint64, uint64) {
		cfg := Config{Algorithm: TinyETLWB, LockTableEntries: 256, WaitOnContention: wait}
		d, base, txs := runSTM(t, cfg, 2, 6, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < 25; i++ {
				// Opposite acquisition orders provoke deadlock in
				// wait-forever designs; bounded wait must abort out.
				a, b := 0, 1
				if tk.ID%2 == 1 {
					a, b = 1, 0
				}
				tx.Atomic(func(tx *Tx) {
					tx.Write(word(base, a), tx.Read(word(base, a))+1)
					tk.Exec(30)
					tx.Write(word(base, b), tx.Read(word(base, b))+1)
				})
			}
		})
		sum := d.HostRead64(word(base, 0)) + d.HostRead64(word(base, 1))
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		return sum, st.Aborts
	}
	sumOff, abortsOff := run(0)
	sumOn, abortsOn := run(600)
	if sumOff != 300 || sumOn != 300 {
		t.Fatalf("lost updates: off=%d on=%d, want 300", sumOff, sumOn)
	}
	if abortsOn > abortsOff {
		t.Fatalf("bounded waiting should not increase aborts: off=%d on=%d", abortsOff, abortsOn)
	}
}

// TestAbortsByReasonsAreDisjoint: the per-reason abort counters sum to
// the abort total.
func TestAbortReasonAccounting(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		_, _, txs := runSTM(t, cfg, 4, 6, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < 25; i++ {
				tx.Atomic(func(tx *Tx) {
					a := tk.RandN(4)
					tx.Write(word(base, a), tx.Read(word(base, a))+1)
					tk.Exec(40)
				})
			}
		})
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		var byReason uint64
		for _, n := range st.AbortsBy {
			byReason += n
		}
		if byReason != st.Aborts {
			t.Fatalf("abort reasons (%d) do not sum to aborts (%d)", byReason, st.Aborts)
		}
	})
}
