// Package core implements PIM-STM: seven software transactional memory
// algorithms for the (simulated) UPMEM DPU, covering the design-space
// taxonomy of the paper (Fig 2):
//
//   - NOrec        — no ownership records, invisible reads, commit-time
//     locking, write-back, value-based validation.
//   - TinyETLWB / TinyETLWT / TinyCTLWB — TinySTM-style ownership records
//     (versioned lock table + global clock), invisible reads with
//     timestamp validation and snapshot extension.
//   - VRETLWB / VRETLWT / VRCTLWB — the paper's Visible Reads design:
//     per-stripe 32-bit read-write lock words (Fig 3), no validation.
//
// All algorithms are word-based (64-bit) and single-version, and restrict
// transactions to data hosted on the local DPU, as the paper prescribes.
// Shared metadata (sequence lock, version clock, lock tables) lives in
// simulated WRAM or MRAM according to Config, reproducing the paper's
// metadata-placement study; per-transaction private metadata charges
// accesses to the same tier.
package core

import (
	"fmt"

	"pimstm/internal/dpu"
)

// Algorithm selects one of the seven STM implementations.
type Algorithm int

// The seven viable design-space points of the paper's taxonomy (Fig 2).
const (
	// NOrec: coarse metadata, invisible reads, CTL, write-back.
	NOrec Algorithm = iota
	// TinyETLWB: ORecs, invisible reads, encounter-time locking, write-back.
	TinyETLWB
	// TinyETLWT: ORecs, invisible reads, encounter-time locking, write-through.
	TinyETLWT
	// TinyCTLWB: ORecs, invisible reads, commit-time locking, write-back.
	TinyCTLWB
	// VRETLWB: ORecs, visible reads, encounter-time locking, write-back.
	VRETLWB
	// VRETLWT: ORecs, visible reads, encounter-time locking, write-through.
	VRETLWT
	// VRCTLWB: ORecs, visible reads, commit-time locking, write-back.
	VRCTLWB

	numAlgorithms
)

// Algorithms lists all seven variants in the order the paper's figures
// use.
var Algorithms = []Algorithm{TinyCTLWB, TinyETLWB, TinyETLWT, NOrec, VRETLWT, VRETLWB, VRCTLWB}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case NOrec:
		return "NOrec"
	case TinyETLWB:
		return "Tiny ETLWB"
	case TinyETLWT:
		return "Tiny ETLWT"
	case TinyCTLWB:
		return "Tiny CTLWB"
	case VRETLWB:
		return "VR ETLWB"
	case VRETLWT:
		return "VR ETLWT"
	case VRCTLWB:
		return "VR CTLWB"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a name like "norec" or "Tiny ETLWB".
func ParseAlgorithm(s string) (Algorithm, error) {
	for a := Algorithm(0); a < numAlgorithms; a++ {
		if normalize(a.String()) == normalize(s) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown STM algorithm %q", s)
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == ' ' || c == '-' || c == '_':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Config parameterizes a TM instance. The zero value selects NOrec with
// all metadata in MRAM.
type Config struct {
	// Algorithm is the STM variant.
	Algorithm Algorithm
	// MetaTier is where shared and private STM metadata live (paper's
	// compile-time macro). Default MRAM.
	MetaTier dpu.Tier
	// LockTableTier optionally overrides the tier of the ORec lock table
	// alone; the paper's appendix uses this for ArrayBench A, whose lock
	// table exceeds WRAM. Nil means "same as MetaTier".
	LockTableTier *dpu.Tier
	// LockTableEntries is the number of ORec stripes (power of two).
	// Default 4096. Ignored by NOrec.
	LockTableEntries int
	// DisableStartWait turns off NOrec's wait-until-unlocked contention
	// management at transaction start (ablation knob; paper §4.2.2 F2a).
	DisableStartWait bool
	// DisableExtension turns off Tiny's snapshot extension, degrading it
	// to TL2-style behaviour (ablation knob; paper §3.2.1 "Tiny").
	DisableExtension bool
	// WaitOnContention makes Tiny writers spin briefly on a busy ORec
	// before aborting, the "allow transactions to wait when lock
	// contention is encountered, rather than simply aborting" design the
	// paper's taxonomy mentions but does not explore (§3.2). The value
	// is the maximum wait in instructions; 0 aborts immediately (the
	// paper's behaviour).
	WaitOnContention int
	// MaxBackoff bounds the randomized abort backoff in instructions
	// (0 selects the default of 1024). The backoff breaks retry symmetry
	// between deterministic tasklets, standing in for the timing jitter
	// of real hardware.
	MaxBackoff int
}

func (c *Config) fill() error {
	if c.LockTableEntries == 0 {
		c.LockTableEntries = 4096
	}
	if c.LockTableEntries&(c.LockTableEntries-1) != 0 {
		return fmt.Errorf("core: LockTableEntries must be a power of two, got %d", c.LockTableEntries)
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 1024
	}
	return nil
}

func (c *Config) lockTier() dpu.Tier {
	if c.LockTableTier != nil {
		return *c.LockTableTier
	}
	return c.MetaTier
}

// TM is one transactional-memory instance bound to one DPU. Create it
// before launching the DPU program; every tasklet then obtains its own
// Tx with NewTx.
type TM struct {
	cfg Config
	d   *dpu.DPU
	eng engine

	// NOrec state.
	seqLock dpu.Addr

	// ORec state (Tiny and VR).
	clock     dpu.Addr // Tiny's global version clock
	lockTab   dpu.Addr // base address of the lock table
	entrySize int      // bytes per lock-table entry
	stripeBit uint32   // log2(LockTableEntries)
}

// engine is the algorithm-specific part of a TM.
type engine interface {
	start(tx *Tx)
	read(tx *Tx, a dpu.Addr) uint64
	write(tx *Tx, a dpu.Addr, v uint64)
	// commit either returns normally (committed) or unwinds via
	// tx.abort (which first calls rollback to clean up).
	commit(tx *Tx)
	// rollback undoes encounter-time and partial commit-time effects of
	// an aborting attempt (locks released, write-through stores undone).
	rollback(tx *Tx)
}

// New creates a TM on the given DPU, allocating its shared metadata in
// the configured tiers. It must be called before the DPU program runs.
func New(d *dpu.DPU, cfg Config) (*TM, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	tm := &TM{cfg: cfg, d: d}
	var err error
	switch cfg.Algorithm {
	case NOrec:
		tm.seqLock, err = d.Alloc(cfg.MetaTier, 8, 8)
		if err != nil {
			return nil, err
		}
		tm.eng = &norecEngine{tm: tm}
	case TinyETLWB, TinyETLWT, TinyCTLWB:
		if err = tm.allocORecs(8); err != nil {
			return nil, err
		}
		tm.clock, err = d.Alloc(cfg.MetaTier, 8, 8)
		if err != nil {
			return nil, err
		}
		tm.eng = &tinyEngine{
			tm:  tm,
			ctl: cfg.Algorithm == TinyCTLWB,
			wt:  cfg.Algorithm == TinyETLWT,
		}
	case VRETLWB, VRETLWT, VRCTLWB:
		if err = tm.allocORecs(4); err != nil {
			return nil, err
		}
		tm.eng = &vrEngine{
			tm:  tm,
			ctl: cfg.Algorithm == VRCTLWB,
			wt:  cfg.Algorithm == VRETLWT,
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", cfg.Algorithm)
	}
	return tm, nil
}

func (tm *TM) allocORecs(entrySize int) error {
	tm.entrySize = entrySize
	n := tm.cfg.LockTableEntries
	for n > 1 {
		n >>= 1
		tm.stripeBit++
	}
	var err error
	tm.lockTab, err = tm.d.Alloc(tm.cfg.lockTier(), tm.cfg.LockTableEntries*entrySize, 8)
	return err
}

// Config returns the TM configuration (with defaults filled in).
func (tm *TM) Config() Config { return tm.cfg }

// MetadataBytes reports how many bytes of shared metadata the TM
// allocated, and in which tier, for footprint accounting.
func (tm *TM) MetadataBytes() (tier dpu.Tier, bytes int) {
	if tm.cfg.Algorithm == NOrec {
		return tm.cfg.MetaTier, 8
	}
	return tm.cfg.lockTier(), tm.cfg.LockTableEntries*tm.entrySize + 8
}

// stripe maps a word address to its lock-table entry index. As in
// TinySTM, consecutive words map to consecutive entries and wrap at the
// table size, so an array smaller than the table suffers no aliasing and
// a larger one aliases at table-size strides — the size/aliasing
// trade-off the paper discusses (§3.2.1, "Tiny").
func (tm *TM) stripe(a dpu.Addr) uint32 {
	word := uint32(a) >> 3
	return word & (uint32(tm.cfg.LockTableEntries) - 1)
}

// orecAddr returns the address of the lock word for a stripe index.
func (tm *TM) orecAddr(stripe uint32) dpu.Addr {
	return tm.lockTab + dpu.Addr(int(stripe)*tm.entrySize)
}
