package core

import "pimstm/internal/dpu"

// The UPMEM DPU has no compare-and-swap instruction. As in the paper
// (§3.2.1, "Hardware synchronization primitives"), CAS is emulated by
// taking the hardware atomic-register bit hashed from the target
// address, checking the current value, conditionally storing, and
// releasing the bit. Two words whose addresses hash to the same of the
// 256 register bits serialize needlessly (lock aliasing); the simulator
// reproduces this.

// cas64 atomically replaces the word at a with new if it equals old,
// reporting success.
func cas64(t *dpu.Tasklet, a dpu.Addr, old, new uint64) bool {
	t.Acquire(a)
	v := t.Load64(a)
	ok := v == old
	if ok {
		t.Store64(a, new)
	}
	t.Release(a)
	return ok
}

// cas32 is cas64 for the 32-bit rw-lock words of the VR design.
func cas32(t *dpu.Tasklet, a dpu.Addr, old, new uint32) bool {
	t.Acquire(a)
	v := t.Load32(a)
	ok := v == old
	if ok {
		t.Store32(a, new)
	}
	t.Release(a)
	return ok
}

// fetchAdd64 atomically adds delta to the word at a and returns the new
// value, built from acquire/load/store/release like the C library's
// emulated atomic increment of the version clock.
func fetchAdd64(t *dpu.Tasklet, a dpu.Addr, delta uint64) uint64 {
	t.Acquire(a)
	v := t.Load64(a) + delta
	t.Store64(a, v)
	t.Release(a)
	return v
}

// update32 applies f to the word at a inside the register critical
// section and returns (old, new). Used for read-write lock transitions
// where the new value depends on the old.
func update32(t *dpu.Tasklet, a dpu.Addr, f func(uint32) (uint32, bool)) (uint32, bool) {
	t.Acquire(a)
	v := t.Load32(a)
	nv, ok := f(v)
	if ok && nv != v {
		t.Store32(a, nv)
	}
	t.Release(a)
	return v, ok
}
