package core

import (
	"testing"
	"testing/quick"

	"pimstm/internal/dpu"
)

// Property-based tests (testing/quick) over the core invariants:
// serializability of random workloads, rw-lock word encoding, and
// stripe-mapping stability.

// TestQuickSerializability generates random transactional programs and
// checks that the final memory state equals a sequential replay of the
// committed transactions in their commit order. Each committed
// transaction logs its reads; replaying verifies that what it read is
// exactly what the serial order would have produced.
func TestQuickSerializability(t *testing.T) {
	type opRecord struct {
		addr  int
		write bool
	}
	// One generated scenario: a seed plus a small op script per tasklet.
	check := func(seed uint64, algPick uint8, scriptBytes []byte) bool {
		alg := Algorithms[int(algPick)%len(Algorithms)]
		const words, tasklets = 8, 4
		if len(scriptBytes) == 0 {
			return true
		}
		// Build per-tasklet scripts of (addr, read|write) ops.
		scripts := make([][]opRecord, tasklets)
		for i, b := range scriptBytes {
			tk := i % tasklets
			scripts[tk] = append(scripts[tk], opRecord{addr: int(b) % words, write: b&0x80 != 0})
		}

		d := dpu.New(dpu.Config{MRAMSize: 1 << 18, Seed: seed})
		tm, err := New(d, Config{Algorithm: alg, LockTableEntries: 64})
		if err != nil {
			t.Fatal(err)
		}
		base := d.MustAlloc(dpu.MRAM, words*8, 8)

		// committed records (tasklet, txIndex, reads, writes) in commit
		// order; commit order is captured by a monotonically increasing
		// token handed out inside the (serializable) transaction itself.
		type committedTx struct {
			token      uint64
			reads      map[int]uint64
			writes     map[int]uint64 // final value written per address
			writeCount map[int]int    // increments applied per address
		}
		tokenAddr := d.MustAlloc(dpu.MRAM, 8, 8)
		var log []committedTx

		progs := make([]func(*dpu.Tasklet), tasklets)
		for i := range progs {
			progs[i] = func(tk *dpu.Tasklet) {
				tx := tm.NewTx(tk)
				script := scripts[tk.ID]
				// Split each script into transactions of up to 4 ops.
				for start := 0; start < len(script); start += 4 {
					end := start + 4
					if end > len(script) {
						end = len(script)
					}
					ops := script[start:end]
					var rec committedTx
					tx.Atomic(func(tx *Tx) {
						rec = committedTx{reads: map[int]uint64{}, writes: map[int]uint64{}, writeCount: map[int]int{}}
						for _, op := range ops {
							if op.write {
								v := tx.Read(word(base, op.addr)) + 1
								tx.Write(word(base, op.addr), v)
								rec.writes[op.addr] = v
								rec.writeCount[op.addr]++
							} else {
								v := tx.Read(word(base, op.addr))
								if w, wrote := rec.writes[op.addr]; wrote {
									if w != v {
										t.Errorf("read did not observe own write")
									}
								} else {
									if prev, seen := rec.reads[op.addr]; seen && prev != v {
										t.Errorf("non-repeatable read within a transaction")
									}
									rec.reads[op.addr] = v
								}
							}
						}
						// Commit-order token: reading+writing it inside
						// the transaction makes the token order a valid
						// serialization order of the committed history.
						tok := tx.Read(tokenAddr)
						tx.Write(tokenAddr, tok+1)
						rec.token = tok
					})
					log = append(log, rec)
				}
			}
		}
		if _, err := d.Run(progs); err != nil {
			t.Fatal(err)
		}

		// Replay serially in token order.
		order := make([]*committedTx, len(log))
		for i := range log {
			order[log[i].token] = &log[i]
		}
		state := make([]uint64, words)
		for _, rec := range order {
			if rec == nil {
				return false // token gap: commit order broken
			}
			for a, v := range rec.reads {
				if _, overwritten := rec.writes[a]; overwritten {
					continue // read-after-own-write checked above
				}
				if state[a] != v {
					return false // read something the serial order disallows
				}
			}
			for a, v := range rec.writes {
				if v != state[a]+uint64(rec.writeCount[a]) {
					return false // increments lost or duplicated
				}
				state[a] = v
			}
		}
		// Final memory must match the serial state.
		for a := 0; a < words; a++ {
			if d.HostRead64(word(base, a)) != state[a] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVRLockWord checks the Fig 3 lock-word encoding round-trips
// for arbitrary tasklet subsets: adding then removing every reader
// returns the word to free.
func TestQuickVRLockWord(t *testing.T) {
	check := func(mask uint32) bool {
		mask &= (1 << 24) - 1 // 24 tasklets
		w := uint32(0)
		n := 0
		for id := 0; id < 24; id++ {
			if mask&(1<<id) == 0 {
				continue
			}
			w = (w | vrReadBit | vrReaderFlag(id)) + 1<<26
			n++
		}
		if n == 0 {
			return w == 0
		}
		if w&vrReadBit == 0 || w&vrWriteBit != 0 {
			return false
		}
		if int(vrReaderCount(w)) != n {
			return false
		}
		for id := 0; id < 24; id++ {
			if mask&(1<<id) == 0 {
				continue
			}
			if w&vrReaderFlag(id) == 0 {
				return false
			}
			w = (w &^ vrReaderFlag(id)) - 1<<26
			if vrReaderCount(w) == 0 {
				w = 0
			}
		}
		return w == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVRWriteWord: the write-mode word stores the owner and never
// collides with a read-mode word.
func TestQuickVRWriteWord(t *testing.T) {
	check := func(id uint8) bool {
		tid := int(id) % 24
		w := vrWriteWord(tid)
		if w&vrWriteBit == 0 || w&vrReadBit != 0 {
			return false
		}
		return w>>2 == uint32(tid+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStripeMapping: the stripe hash must be stable, in range, and
// independent of the tier bit's low-order layout assumptions.
func TestQuickStripeMapping(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 16})
	tm, err := New(d, Config{Algorithm: TinyETLWB, LockTableEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	check := func(off uint32) bool {
		a := dpu.MRAMAddr(off % (1 << 16))
		s1 := tm.stripe(a)
		s2 := tm.stripe(a)
		if s1 != s2 {
			return false
		}
		if s1 >= 512 {
			return false
		}
		// Same 8-byte word → same stripe.
		return tm.stripe(a&^7) == s1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTinyLockWord: owner words are always locked and never equal
// version words.
func TestQuickTinyLockWord(t *testing.T) {
	check := func(id uint8, ver uint32) bool {
		tid := int(id) % 24
		w := tinyOwnerWord(tid)
		if w&tinyLockedBit == 0 {
			return false
		}
		versionWord := uint64(ver) << 1
		return versionWord&tinyLockedBit == 0 && w != versionWord
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
