package core

import "pimstm/internal/dpu"

// vrEngine implements the paper's Visible Reads design (§3.2.1, Fig 3):
// every stripe is guarded by a 32-bit read-write lock word; reads take
// the lock in read mode as soon as they execute, so no validation is
// ever needed. A transaction aborts whenever it finds a lock held in an
// incompatible mode — including read→write upgrades while other readers
// hold the lock, the source of VR's spurious aborts.
//
// Lock-word layout (Fig 3):
//
//	bit 0        — read bit
//	bit 1        — write bit
//	read mode:   bits 2..25 reader-flag bitmap (one per tasklet),
//	             bits 26..31 reader count
//	write mode:  bits 2..31 owner. The paper stores the word-aligned
//	             address of the owner's readset; we store tasklet ID+1,
//	             which carries the same information in the simulator.
type vrEngine struct {
	tm  *TM
	ctl bool // commit-time write locking (VRCTLWB)
	wt  bool // write-through (VRETLWT)
}

// Lock-word encoding helpers (exported via smalltest hooks in tests).
const (
	vrReadBit  uint32 = 1 << 0
	vrWriteBit uint32 = 1 << 1
)

func vrReaderFlag(taskletID int) uint32 { return 1 << (2 + uint(taskletID)) }

func vrReaderCount(w uint32) uint32 { return w >> 26 }

func vrWriteWord(taskletID int) uint32 {
	return vrWriteBit | uint32(taskletID+1)<<2
}

func vrSoleReader(taskletID int) uint32 {
	return vrReadBit | vrReaderFlag(taskletID) | 1<<26
}

func (e *vrEngine) start(tx *Tx) {}

// read ensures visibility by acquiring the stripe's lock in read mode
// (unless this transaction already holds it in either mode) and then
// loads the value. Holding read locks to commit keeps the snapshot
// consistent with no validation (2-phase locking).
func (e *vrEngine) read(tx *Tx, a dpu.Addr) uint64 {
	t := tx.t
	s := e.tm.stripe(a)
	if e.ctl {
		// CTL buffers writes without locks, so reads must probe the
		// writeset for read-after-write.
		if v, ok := tx.wsLookup(a); ok {
			return v
		}
	}
	if tx.writeIdx[s] {
		// I hold the write lock: with write-back the freshest value may
		// be buffered; the reader-flag design spares this probe in all
		// other cases (paper §3.2.1).
		if !e.wt {
			if v, ok := tx.wsLookup(a); ok {
				return v
			}
		}
		return t.Load64(a)
	}
	e.acquireRead(tx, s)
	return t.Load64(a)
}

// acquireRead takes the stripe lock in read mode, registering this
// tasklet in the reader flags; it aborts if the stripe is write-locked
// by another transaction.
func (e *vrEngine) acquireRead(tx *Tx, s uint32) {
	if tx.readIdx[s] {
		return // already registered
	}
	t := tx.t
	oa := e.tm.orecAddr(s)
	_, ok := update32(t, oa, func(w uint32) (uint32, bool) {
		if w&vrWriteBit != 0 {
			return w, false // write-locked by another transaction
		}
		nw := (w | vrReadBit | vrReaderFlag(t.ID)) + 1<<26
		return nw, true
	})
	if !ok {
		tx.abort(AbortReadLockBusy)
	}
	tx.readIdx[s] = true
	// The read-lock list is VR's readset: it exists only to release the
	// locks at the end (no validation), but appending it still costs a
	// metadata access.
	t.ChargePrivateStore(tx.metaTier(), 16)
	tx.readLocks = append(tx.readLocks, s)
}

// acquireWrite takes the stripe lock in write mode, upgrading a read
// lock this transaction holds alone; any other holder forces an abort.
func (e *vrEngine) acquireWrite(tx *Tx, s uint32) {
	if tx.writeIdx[s] {
		return
	}
	t := tx.t
	oa := e.tm.orecAddr(s)
	iAmReader := tx.readIdx[s]
	_, ok := update32(t, oa, func(w uint32) (uint32, bool) {
		switch {
		case w&vrWriteBit != 0:
			return w, false // another writer
		case w&vrReadBit != 0:
			if iAmReader && w == vrSoleReader(t.ID) {
				return vrWriteWord(t.ID), true // upgrade
			}
			return w, false // other readers present
		default:
			return vrWriteWord(t.ID), true
		}
	})
	if !ok {
		if iAmReader {
			tx.abort(AbortUpgrade)
		}
		tx.abort(AbortLockBusy)
	}
	if iAmReader {
		tx.readIdx[s] = false // upgraded: release as a write lock only
	}
	tx.writeIdx[s] = true
	tx.writeLocks = append(tx.writeLocks, s)
}

// write: encounter-time variants lock immediately; write-through stores
// in place with an undo record, write-back buffers; commit-time buffers
// without locking.
func (e *vrEngine) write(tx *Tx, a dpu.Addr, v uint64) {
	t := tx.t
	if e.ctl {
		tx.wsPut(a, v)
		return
	}
	e.acquireWrite(tx, e.tm.stripe(a))
	if e.wt {
		tx.undoAdd(a, t.Load64(a))
		t.Store64(a, v)
		return
	}
	tx.wsPut(a, v)
}

// commit: CTL acquires all write locks now (the paper's analysis of
// VR CTLWB's commit-time upgrade storms happens here), write-back
// applies the buffered stores, and every lock is released. There is no
// validation phase by design.
func (e *vrEngine) commit(tx *Tx) {
	t := tx.t
	if e.ctl {
		for i := range tx.ws {
			e.acquireWrite(tx, e.tm.stripe(tx.ws[i].addr))
		}
	}
	if !e.wt {
		for i := range tx.ws {
			t.ChargePrivate(tx.metaTier(), 16)
			t.Store64(tx.ws[i].addr, tx.ws[i].val)
		}
	}
	e.releaseAll(tx)
}

// rollback undoes write-through stores and releases every held lock.
func (e *vrEngine) rollback(tx *Tx) {
	tx.undoAll()
	e.releaseAll(tx)
}

// releaseAll frees write locks and read locks in acquisition order.
func (e *vrEngine) releaseAll(tx *Tx) {
	t := tx.t
	for _, s := range tx.writeLocks {
		if !tx.writeIdx[s] {
			continue
		}
		tx.writeIdx[s] = false
		update32(t, e.tm.orecAddr(s), func(w uint32) (uint32, bool) {
			return 0, true
		})
	}
	tx.writeLocks = tx.writeLocks[:0]
	for _, s := range tx.readLocks {
		if !tx.readIdx[s] {
			continue // upgraded to a write lock and already released
		}
		tx.readIdx[s] = false
		update32(t, e.tm.orecAddr(s), func(w uint32) (uint32, bool) {
			nw := w &^ vrReaderFlag(t.ID)
			nw -= 1 << 26
			if vrReaderCount(nw) == 0 {
				return 0, true
			}
			return nw, true
		})
	}
	tx.readLocks = tx.readLocks[:0]
}
