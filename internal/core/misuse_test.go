package core

import (
	"strings"
	"testing"

	"pimstm/internal/dpu"
)

// Misuse and failure-injection tests: the library must fail loudly and
// predictably on API misuse, and application panics must propagate
// unchanged (not be swallowed by the abort machinery).

func expectPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("unexpected panic payload %T: %v", r, r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	f()
}

func TestOpsOutsideTransactionPanic(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	tm, err := New(d, Config{Algorithm: NOrec})
	if err != nil {
		t.Fatal(err)
	}
	a := d.MustAlloc(dpu.MRAM, 8, 8)
	_, _ = d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		expectPanic(t, "outside an active transaction", func() { tx.Read(a) })
		expectPanic(t, "outside an active transaction", func() { tx.Write(a, 1) })
		expectPanic(t, "outside an active transaction", func() { tx.Commit() })
		expectPanic(t, "outside an active transaction", func() { tx.Abort() })
	}})
}

func TestNestedStartPanics(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	tm, err := New(d, Config{Algorithm: TinyETLWB, LockTableEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Start()
		expectPanic(t, "no nesting", func() { tx.Start() })
	}})
}

// TestApplicationPanicPropagates: a non-abort panic inside an Atomic
// body must reach the caller of DPU.Run, with encounter-time state
// still released by nobody — the process is faulting, not recovering.
func TestApplicationPanicPropagates(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	tm, err := New(d, Config{Algorithm: VRETLWB, LockTableEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	a := d.MustAlloc(dpu.MRAM, 8, 8)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("expected the application panic, got %v", r)
		}
	}()
	_, _ = d.Run([]func(*dpu.Tasklet){func(tk *dpu.Tasklet) {
		tx := tm.NewTx(tk)
		tx.Atomic(func(tx *Tx) {
			tx.Write(a, 1)
			panic("boom")
		})
	}})
	t.Fatal("panic did not propagate")
}

// TestDescriptorReusableAfterCommitAndAbort: the same Tx must drive an
// arbitrary mix of committed, aborted and restarted transactions.
func TestDescriptorLifecycle(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, txs := runSTM(t, cfg, 2, 1, func(tx *Tx, base dpu.Addr) {
			// Commit.
			tx.Atomic(func(tx *Tx) { tx.Write(word(base, 0), 1) })
			// Explicit abort, then a fresh commit.
			tx.Start()
			func() {
				defer func() { recover() }()
				tx.Write(word(base, 1), 99)
				tx.Abort()
			}()
			tx.Atomic(func(tx *Tx) { tx.Write(word(base, 1), 2) })
			// Read-only.
			tx.Atomic(func(tx *Tx) { _ = tx.Read(word(base, 0)) })
		})
		if d.HostRead64(word(base, 0)) != 1 || d.HostRead64(word(base, 1)) != 2 {
			t.Fatal("descriptor reuse corrupted state")
		}
		st := txs[0].Stats()
		if st.Commits != 3 || st.AbortsBy[AbortExplicit] != 1 {
			t.Fatalf("lifecycle stats wrong: %+v", st)
		}
	})
}

// TestLockTableReleaseAfterAbortStorm: after heavy aborting, no ORec
// may remain locked once all transactions are done (lock leak check).
func TestNoLockLeakAfterAbortStorm(t *testing.T) {
	for _, alg := range []Algorithm{TinyETLWB, TinyETLWT, TinyCTLWB, VRETLWB, VRETLWT, VRCTLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Algorithm: alg, LockTableEntries: 64}
			d, _, _ := runSTM(t, cfg, 4, 8, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				for i := 0; i < 30; i++ {
					tx.Atomic(func(tx *Tx) {
						a := tk.RandN(4)
						tx.Write(word(base, a), tx.Read(word(base, a))+1)
						tk.Exec(50)
					})
				}
			})
			// Scan the lock table from the host: every word must be in
			// the released state (version word for Tiny: even; zero or
			// version for VR: no mode bits). The table is the first
			// allocation after the reserved nil word (see New/allocORecs
			// order in runSTM's TM).
			entrySize := 8
			if alg == VRETLWB || alg == VRETLWT || alg == VRCTLWB {
				entrySize = 4
			}
			for i := 0; i < 64; i++ {
				off := dpu.MRAMAddr(uint32(8 + i*entrySize))
				if entrySize == 8 {
					if v := d.HostRead64(off); v&1 != 0 {
						t.Fatalf("Tiny ORec %d still locked: %#x", i, v)
					}
				} else {
					if v := d.HostRead32(off); v&3 != 0 {
						t.Fatalf("VR rw-lock %d still held: %#x", i, v)
					}
				}
			}
		})
	}
}

// TestZeroValueConfigWorks: Config{} must behave as documented (NOrec,
// MRAM).
func TestZeroValueConfig(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	tm, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Config().Algorithm != NOrec || tm.Config().MetaTier != dpu.MRAM {
		t.Fatalf("zero-value defaults wrong: %+v", tm.Config())
	}
	if tm.Config().LockTableEntries != 4096 || tm.Config().MaxBackoff != 1024 {
		t.Fatalf("fill defaults wrong: %+v", tm.Config())
	}
}
