package core

import "pimstm/internal/dpu"

// tinyEngine implements the Tiny family (TinySTM: Felber, Fetzer &
// Riegel, PPoPP 2008): ownership records in a versioned lock table, a
// global version clock, invisible reads validated by timestamps, and
// snapshot extension. Three variants share the code: encounter-time
// locking with write-back or write-through, and commit-time locking
// with write-back.
//
// Lock-word layout (64 bits, one per stripe):
//
//	bit 0       — locked
//	bits 1..63  — owner tasklet ID + 1 when locked, version otherwise
type tinyEngine struct {
	tm  *TM
	ctl bool // commit-time locking (TinyCTLWB)
	wt  bool // write-through (TinyETLWT)
}

const tinyLockedBit = 1

func tinyOwnerWord(taskletID int) uint64 {
	return uint64(taskletID+1)<<1 | tinyLockedBit
}

// start takes the version-clock snapshot that bounds the visible
// interval; extension may later advance the upper bound.
func (e *tinyEngine) start(tx *Tx) {
	tx.ub = tx.t.Load64(e.tm.clock)
}

// read is the invisible, timestamp-validated read: load the ORec, load
// the value, re-load the ORec ("reading twice the lock to detect
// concurrent writes", paper §4.2.1), and extend the snapshot when the
// stripe's version is newer than the upper bound.
func (e *tinyEngine) read(tx *Tx, a dpu.Addr) uint64 {
	t := tx.t
	if e.ctl {
		// Commit-time locking buffers writes without acquiring ORecs, so
		// every read must first probe the writeset (paper §3.2, "Lock
		// timing").
		if v, ok := tx.wsLookup(a); ok {
			return v
		}
	}
	s := e.tm.stripe(a)
	oa := e.tm.orecAddr(s)
	tx.chargeSnapshot()
	for {
		l := t.Load64(oa)
		if l&tinyLockedBit != 0 {
			if !e.ctl && l == tinyOwnerWord(t.ID) {
				// My own encounter-time lock: return my latest write.
				if e.wt {
					return t.Load64(a)
				}
				if v, ok := tx.wsLookup(a); ok {
					return v
				}
				return t.Load64(a)
			}
			tx.abort(AbortLockBusy)
		}
		ver := l >> 1
		v := t.Load64(a)
		if t.Load64(oa) != l {
			continue // the stripe changed under us: retry
		}
		if ver > tx.ub {
			e.extend(tx)
			continue // re-read under the extended snapshot
		}
		tx.rsAdd(dpu.Addr(s), ver)
		return v
	}
}

// extend advances the snapshot upper bound to the current clock after
// proving the readset still valid; otherwise the attempt aborts. This
// is the mechanism that spares Tiny aborts a TL2-style design would
// incur (paper §3.2.1).
func (e *tinyEngine) extend(tx *Tx) {
	if e.tm.cfg.DisableExtension {
		tx.abort(AbortValidation)
	}
	now := tx.t.Load64(e.tm.clock)
	if !tx.validateBracket(false, func() bool { return e.validateRS(tx) }) {
		tx.abort(AbortValidation)
	}
	tx.ub = now
}

// validateRS checks that every stripe read still carries the version
// observed at read time (or is locked by this transaction with that
// same pre-acquisition version).
func (e *tinyEngine) validateRS(tx *Tx) bool {
	t := tx.t
	for i := range tx.rs {
		s := uint32(tx.rs[i].key)
		ver := tx.rs[i].val
		t.ChargePrivate(tx.metaTier(), 16)
		l := t.Load64(e.tm.orecAddr(s))
		if l&tinyLockedBit != 0 {
			if l != tinyOwnerWord(t.ID) {
				return false
			}
			if idx, ok := tx.ownedIdx[s]; !ok || tx.owned[idx].prevVer != ver {
				return false
			}
			continue
		}
		if l>>1 != ver {
			return false
		}
	}
	return true
}

// write: encounter-time variants acquire the ORec immediately;
// write-through stores in place with an undo record, write-back buffers.
func (e *tinyEngine) write(tx *Tx, a dpu.Addr, v uint64) {
	t := tx.t
	if e.ctl {
		tx.wsPut(a, v)
		return
	}
	e.acquire(tx, e.tm.stripe(a))
	if e.wt {
		tx.undoAdd(a, t.Load64(a))
		t.Store64(a, v)
		return
	}
	tx.wsPut(a, v)
}

// acquire takes the ORec of a stripe for writing, aborting on conflict
// (or spinning first under the WaitOnContention policy).
func (e *tinyEngine) acquire(tx *Tx, s uint32) {
	t := tx.t
	if _, mine := tx.ownedIdx[s]; mine {
		return
	}
	oa := e.tm.orecAddr(s)
	waited := 0
	for {
		l := t.Load64(oa)
		if l&tinyLockedBit != 0 {
			// Cannot be mine: ownedIdx says no.
			if w := e.tm.cfg.WaitOnContention; w > 0 && waited < w {
				step := 16 + t.RandN(16)
				t.Exec(step)
				waited += step
				continue
			}
			tx.abort(AbortLockBusy)
		}
		if l>>1 > tx.ub {
			// The stripe moved past the snapshot: extend rather than
			// drag an inconsistent bound to commit validation.
			e.extend(tx)
			continue
		}
		if !cas64(t, oa, l, tinyOwnerWord(t.ID)) {
			continue // raced with another writer: re-inspect
		}
		tx.ownedIdx[s] = len(tx.owned)
		tx.owned = append(tx.owned, ownedStripe{stripe: s, prevVer: l >> 1})
		return
	}
}

// commit: CTL first acquires all write locks; then the clock is bumped,
// the readset validated if anyone committed since the snapshot, buffered
// writes applied and all stripes released at the new version.
func (e *tinyEngine) commit(tx *Tx) {
	t := tx.t
	if e.ctl {
		if len(tx.ws) == 0 {
			return // read-only
		}
		for i := range tx.ws {
			e.acquire(tx, e.tm.stripe(tx.ws[i].addr))
		}
	} else if len(tx.owned) == 0 {
		return // read-only
	}
	wv := fetchAdd64(t, e.tm.clock, 1)
	if wv > tx.ub+1 {
		if !tx.validateBracket(true, func() bool { return e.validateRS(tx) }) {
			tx.abort(AbortValidation)
		}
	}
	if !e.wt {
		for i := range tx.ws {
			t.ChargePrivate(tx.metaTier(), 16)
			t.Store64(tx.ws[i].addr, tx.ws[i].val)
		}
	}
	for i := range tx.owned {
		t.Store64(e.tm.orecAddr(tx.owned[i].stripe), wv<<1)
	}
}

// rollback undoes write-through stores and releases acquired stripes at
// their pre-acquisition versions.
func (e *tinyEngine) rollback(tx *Tx) {
	tx.undoAll()
	for i := range tx.owned {
		o := tx.owned[i]
		tx.t.Store64(e.tm.orecAddr(o.stripe), o.prevVer<<1)
	}
	tx.owned = tx.owned[:0]
	clear(tx.ownedIdx)
}
