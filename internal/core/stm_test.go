package core

import (
	"testing"

	"pimstm/internal/dpu"
)

// allConfigs enumerates every algorithm × metadata tier, the full
// matrix of the paper's single-DPU study.
func allConfigs() []Config {
	var out []Config
	for _, a := range Algorithms {
		for _, tier := range []dpu.Tier{dpu.MRAM, dpu.WRAM} {
			out = append(out, Config{Algorithm: a, MetaTier: tier, LockTableEntries: 256})
		}
	}
	return out
}

func configName(c Config) string {
	return c.Algorithm.String() + "/" + c.MetaTier.String()
}

func forAllConfigs(t *testing.T, f func(t *testing.T, cfg Config)) {
	for _, cfg := range allConfigs() {
		t.Run(configName(cfg), func(t *testing.T) { f(t, cfg) })
	}
}

// runSTM builds a DPU + TM, allocates words of app memory in MRAM, and
// runs one program per tasklet.
func runSTM(t *testing.T, cfg Config, words, tasklets int, body func(tx *Tx, base dpu.Addr)) (*dpu.DPU, dpu.Addr, []*Tx) {
	t.Helper()
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20, Seed: 42})
	tm, err := New(d, cfg)
	if err != nil {
		t.Fatalf("New TM: %v", err)
	}
	base := d.MustAlloc(dpu.MRAM, words*8, 8)
	txs := make([]*Tx, tasklets)
	progs := make([]func(*dpu.Tasklet), tasklets)
	for i := range progs {
		progs[i] = func(tk *dpu.Tasklet) {
			tx := tm.NewTx(tk)
			txs[tk.ID] = tx
			body(tx, base)
		}
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return d, base, txs
}

func word(base dpu.Addr, i int) dpu.Addr { return base + dpu.Addr(i*8) }

func TestAlgorithmStringAndParse(t *testing.T) {
	if len(Algorithms) != 7 {
		t.Fatalf("the paper defines 7 viable STMs, got %d", len(Algorithms))
	}
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("norec"); err != nil {
		t.Fatal("lower-case alias should parse")
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestConfigValidation(t *testing.T) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	if _, err := New(d, Config{Algorithm: TinyETLWB, LockTableEntries: 100}); err == nil {
		t.Fatal("non-power-of-two lock table should be rejected")
	}
	if _, err := New(d, Config{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm should be rejected")
	}
}

func TestMetadataPlacement(t *testing.T) {
	for _, tier := range []dpu.Tier{dpu.MRAM, dpu.WRAM} {
		d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
		tm, err := New(d, Config{Algorithm: TinyETLWB, MetaTier: tier, LockTableEntries: 256})
		if err != nil {
			t.Fatal(err)
		}
		gotTier, bytes := tm.MetadataBytes()
		if gotTier != tier {
			t.Fatalf("metadata tier = %v, want %v", gotTier, tier)
		}
		if bytes < 256*8 {
			t.Fatalf("lock table accounting too small: %d", bytes)
		}
	}
}

func TestLockTableTierOverride(t *testing.T) {
	// ArrayBench A in the paper's WRAM mode spills the lock table to
	// MRAM; the override makes that configuration expressible.
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20})
	mram := dpu.MRAM
	tm, err := New(d, Config{Algorithm: TinyETLWB, MetaTier: dpu.WRAM, LockTableTier: &mram, LockTableEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	tier, _ := tm.MetadataBytes()
	if tier != dpu.MRAM {
		t.Fatalf("lock table tier override ignored: %v", tier)
	}
	if tm.orecAddr(0).IsWRAM() {
		t.Fatal("lock table should live in MRAM")
	}
}

// TestSingleTxReadYourWrites checks basic read-after-write inside one
// transaction for every design.
func TestSingleTxReadYourWrites(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, _ := runSTM(t, cfg, 4, 1, func(tx *Tx, base dpu.Addr) {
			tx.Atomic(func(tx *Tx) {
				tx.Write(word(base, 0), 7)
				if got := tx.Read(word(base, 0)); got != 7 {
					t.Errorf("read-your-write = %d, want 7", got)
				}
				tx.Write(word(base, 0), 9)
				if got := tx.Read(word(base, 0)); got != 9 {
					t.Errorf("second read-your-write = %d, want 9", got)
				}
				tx.Write(word(base, 1), 1)
			})
		})
		if d.HostRead64(word(base, 0)) != 9 || d.HostRead64(word(base, 1)) != 1 {
			t.Fatal("committed values not visible to the host")
		}
	})
}

// TestCounterAtomicity is the classic lost-update test: concurrent
// increments of one word must all survive.
func TestCounterAtomicity(t *testing.T) {
	const tasklets, iters = 8, 30
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, txs := runSTM(t, cfg, 1, tasklets, func(tx *Tx, base dpu.Addr) {
			for i := 0; i < iters; i++ {
				tx.Atomic(func(tx *Tx) {
					tx.Write(word(base, 0), tx.Read(word(base, 0))+1)
				})
			}
		})
		if got := d.HostRead64(word(base, 0)); got != tasklets*iters {
			t.Fatalf("counter = %d, want %d (lost updates)", got, tasklets*iters)
		}
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		if st.Commits != tasklets*iters {
			t.Fatalf("commits = %d, want %d", st.Commits, tasklets*iters)
		}
	})
}

// TestTransferInvariant moves value between accounts; the total must be
// conserved under any interleaving (atomicity + isolation).
func TestTransferInvariant(t *testing.T) {
	const accounts, tasklets, iters, initial = 16, 6, 40, 1000
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, _ := runSTM(t, cfg, accounts, tasklets, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			if tk.ID == 0 {
				// Tasklet 0 seeds the accounts transactionally first.
				tx.Atomic(func(tx *Tx) {
					for i := 0; i < accounts; i++ {
						tx.Write(word(base, i), initial)
					}
				})
			}
			for i := 0; i < iters; i++ {
				from, to := tk.RandN(accounts), tk.RandN(accounts)
				amt := uint64(tk.RandN(10))
				tx.Atomic(func(tx *Tx) {
					f := tx.Read(word(base, from))
					g := tx.Read(word(base, to))
					if from == to {
						return
					}
					tx.Write(word(base, from), f-amt)
					tx.Write(word(base, to), g+amt)
				})
				// Read-only audit: the sum must be consistent or zero
				// (before seeding finished).
				var sum uint64
				tx.Atomic(func(tx *Tx) {
					sum = 0
					for a := 0; a < accounts; a++ {
						sum += tx.Read(word(base, a))
					}
				})
				if sum != 0 && sum != accounts*initial {
					t.Errorf("audit saw inconsistent total %d", sum)
				}
			}
		})
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += d.HostRead64(word(base, i))
		}
		if sum != accounts*initial {
			t.Fatalf("final total = %d, want %d", sum, accounts*initial)
		}
	})
}

// TestOpacitySnapshot checks that a transaction never observes a state
// in which an invariant between two words is broken (x == y always),
// even in attempts that later abort. The body records violations
// directly: with opaque STMs none may occur.
func TestOpacitySnapshot(t *testing.T) {
	const tasklets, iters = 6, 50
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		violations := 0
		runSTM(t, cfg, 2, tasklets, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < iters; i++ {
				if tk.ID%2 == 0 {
					tx.Atomic(func(tx *Tx) {
						v := tx.Read(word(base, 0))
						tx.Write(word(base, 0), v+1)
						tx.Write(word(base, 1), v+1)
					})
				} else {
					tx.Atomic(func(tx *Tx) {
						x := tx.Read(word(base, 0))
						tk.Exec(50) // widen the race window
						y := tx.Read(word(base, 1))
						if x != y {
							violations++
						}
					})
				}
			}
		})
		if violations > 0 {
			t.Fatalf("%d opacity violations: inconsistent snapshots observed", violations)
		}
	})
}

// TestExplicitAbortRollsBack verifies user aborts leave no trace, for
// write-through designs in particular (undo log restore).
func TestExplicitAbortRollsBack(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, txs := runSTM(t, cfg, 2, 1, func(tx *Tx, base dpu.Addr) {
			tx.Atomic(func(tx *Tx) {
				tx.Write(word(base, 0), 111)
			})
			tx.Start()
			func() {
				defer func() { recover() }()
				tx.Write(word(base, 0), 222)
				tx.Write(word(base, 1), 333)
				tx.Abort()
			}()
		})
		if got := d.HostRead64(word(base, 0)); got != 111 {
			t.Fatalf("aborted write leaked: %d", got)
		}
		if got := d.HostRead64(word(base, 1)); got != 0 {
			t.Fatalf("aborted write leaked: %d", got)
		}
		st := txs[0].Stats()
		if st.AbortsBy[AbortExplicit] != 1 {
			t.Fatalf("explicit abort not recorded: %+v", st.AbortsBy)
		}
	})
}

// TestManualCommitConflict drives two transactions by hand through an
// observable conflict: the loser's Commit (or operation) must fail and
// the winner's update must survive.
func TestManualCommitConflict(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		d, base, _ := runSTM(t, cfg, 1, 2, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < 20; i++ {
				committed := false
				for !committed {
					tx.Start()
					committed = func() (ok bool) {
						defer func() {
							if r := recover(); r != nil {
								if _, is := r.(abortSignal); !is {
									panic(r)
								}
							}
						}()
						v := tx.Read(word(base, 0))
						tk.Exec(20)
						tx.Write(word(base, 0), v+1)
						return tx.Commit()
					}()
					if !committed {
						tx.backoff()
					}
				}
			}
		})
		if got := d.HostRead64(word(base, 0)); got != 40 {
			t.Fatalf("manual driving lost updates: %d, want 40", got)
		}
	})
}

// TestReadOnlyCommitsCheaply: read-only transactions must never write
// shared metadata at commit (no clock bump for Tiny, no seqlock CAS for
// NOrec) — checked via zero abort and commit success.
func TestReadOnlyTransactions(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		_, _, txs := runSTM(t, cfg, 8, 4, func(tx *Tx, base dpu.Addr) {
			for i := 0; i < 25; i++ {
				tx.Atomic(func(tx *Tx) {
					var s uint64
					for j := 0; j < 8; j++ {
						s += tx.Read(word(base, j))
					}
					_ = s
				})
			}
		})
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		if st.Commits != 100 {
			t.Fatalf("commits = %d, want 100", st.Commits)
		}
		if st.Aborts != 0 {
			t.Fatalf("pure readers aborted %d times", st.Aborts)
		}
	})
}

// TestWastedTimeAccounting: aborted attempts account their cycles to
// PhaseWasted and committed attempts to the other buckets.
func TestPhaseAccounting(t *testing.T) {
	cfg := Config{Algorithm: TinyETLWB, LockTableEntries: 256}
	_, _, txs := runSTM(t, cfg, 4, 4, func(tx *Tx, base dpu.Addr) {
		tk := tx.Tasklet()
		for i := 0; i < 30; i++ {
			tx.Atomic(func(tx *Tx) {
				v := tx.Read(word(base, 0))
				tk.Exec(30)
				tx.Write(word(base, 0), v+1)
			})
		}
	})
	var st Stats
	for _, tx := range txs {
		st.Merge(tx.Stats())
	}
	if st.Phases[PhaseReading] == 0 || st.Phases[PhaseWriting] == 0 {
		t.Fatalf("read/write phases unaccounted: %+v", st.Phases)
	}
	if st.Phases[PhaseOtherExec] == 0 {
		t.Fatal("application compute inside transactions unaccounted")
	}
	if st.Aborts > 0 && st.Phases[PhaseWasted] == 0 {
		t.Fatal("aborted attempts must charge PhaseWasted")
	}
	if st.AbortRate() < 0 || st.AbortRate() > 1 {
		t.Fatalf("abort rate out of range: %f", st.AbortRate())
	}
}

// TestVRUpgradeAbort reproduces the paper's spurious-abort mechanism:
// two transactions read the same word and both try to upgrade; at least
// one must abort with AbortUpgrade, and the final value must still be
// correct.
func TestVRUpgradeAbort(t *testing.T) {
	for _, alg := range []Algorithm{VRETLWB, VRETLWT, VRCTLWB} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := Config{Algorithm: alg, LockTableEntries: 256}
			d, base, txs := runSTM(t, cfg, 1, 4, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				for i := 0; i < 25; i++ {
					tx.Atomic(func(tx *Tx) {
						v := tx.Read(word(base, 0))
						tk.Exec(40) // every tasklet now holds the read lock
						tx.Write(word(base, 0), v+1)
					})
				}
			})
			if got := d.HostRead64(word(base, 0)); got != 100 {
				t.Fatalf("counter = %d, want 100", got)
			}
			var st Stats
			for _, tx := range txs {
				st.Merge(tx.Stats())
			}
			if st.AbortsBy[AbortUpgrade]+st.AbortsBy[AbortLockBusy]+st.AbortsBy[AbortReadLockBusy] == 0 {
				t.Fatal("expected lock-mode conflicts under read-then-upgrade contention")
			}
		})
	}
}

// TestTinyExtensionSparesAborts compares Tiny with and without snapshot
// extension: a reader that straddles a writer's commit succeeds without
// restart when extension is on.
func TestTinyExtensionSparesAborts(t *testing.T) {
	run := func(disable bool) uint64 {
		cfg := Config{Algorithm: TinyETLWB, LockTableEntries: 256, DisableExtension: disable}
		_, _, txs := runSTM(t, cfg, 64, 8, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < 25; i++ {
				if tk.ID == 0 {
					tx.Atomic(func(tx *Tx) { // writer on a private word
						tx.Write(word(base, 63), tx.Read(word(base, 63))+1)
					})
				} else {
					tx.Atomic(func(tx *Tx) { // long reader over disjoint words
						for j := 0; j < 32; j++ {
							tx.Read(word(base, j))
							tk.Exec(5)
						}
					})
				}
			}
		})
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		return st.Aborts
	}
	with := run(false)
	without := run(true)
	if with > without {
		t.Fatalf("extension should not increase aborts: with=%d without=%d", with, without)
	}
	if without == 0 {
		t.Skip("workload did not provoke snapshot misses; shapes covered by harness tests")
	}
}

// TestNOrecStartWaitReducesWaste compares NOrec with and without the
// start-wait contention management under heavy conflicts.
func TestNOrecStartWait(t *testing.T) {
	run := func(disable bool) (uint64, uint64) {
		cfg := Config{Algorithm: NOrec, DisableStartWait: disable}
		_, _, txs := runSTM(t, cfg, 4, 8, func(tx *Tx, base dpu.Addr) {
			tk := tx.Tasklet()
			for i := 0; i < 30; i++ {
				tx.Atomic(func(tx *Tx) {
					v := tx.Read(word(base, tk.ID%4))
					tk.Exec(10)
					tx.Write(word(base, tk.ID%4), v+1)
				})
			}
		})
		var st Stats
		for _, tx := range txs {
			st.Merge(tx.Stats())
		}
		return st.Commits, st.Aborts
	}
	c1, _ := run(false)
	c2, _ := run(true)
	if c1 != 240 || c2 != 240 {
		t.Fatalf("both modes must commit all transactions: %d %d", c1, c2)
	}
}

// TestDeterministicSchedule: identical configuration and seed must give
// identical cycle counts and stats across runs (foundation of the whole
// evaluation methodology).
func TestDeterministicSchedule(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		run := func() (uint64, uint64, uint64) {
			d, _, txs := runSTM(t, cfg, 8, 6, func(tx *Tx, base dpu.Addr) {
				tk := tx.Tasklet()
				for i := 0; i < 20; i++ {
					tx.Atomic(func(tx *Tx) {
						a := tk.RandN(8)
						tx.Write(word(base, a), tx.Read(word(base, a))+1)
					})
				}
			})
			var st Stats
			for _, tx := range txs {
				st.Merge(tx.Stats())
			}
			return d.Cycles(), st.Commits, st.Aborts
		}
		c1, m1, a1 := run()
		c2, m2, a2 := run()
		if c1 != c2 || m1 != m2 || a1 != a2 {
			t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", c1, m1, a1, c2, m2, a2)
		}
	})
}

// TestWRAMMetadataFaster: the central claim of the tier study — moving
// STM metadata to WRAM speeds up transaction-heavy workloads.
func TestWRAMMetadataFaster(t *testing.T) {
	for _, alg := range Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			run := func(tier dpu.Tier) uint64 {
				cfg := Config{Algorithm: alg, MetaTier: tier, LockTableEntries: 256}
				d, _, _ := runSTM(t, cfg, 32, 6, func(tx *Tx, base dpu.Addr) {
					tk := tx.Tasklet()
					for i := 0; i < 20; i++ {
						tx.Atomic(func(tx *Tx) {
							for j := 0; j < 6; j++ {
								a := tk.RandN(32)
								tx.Write(word(base, a), tx.Read(word(base, a))+1)
							}
						})
					}
				})
				return d.Cycles()
			}
			mram := run(dpu.MRAM)
			wram := run(dpu.WRAM)
			if wram >= mram {
				t.Fatalf("WRAM metadata (%d cyc) not faster than MRAM (%d cyc)", wram, mram)
			}
		})
	}
}

// TestStatsMerge sanity-checks the aggregation arithmetic.
func TestStatsMerge(t *testing.T) {
	a := Stats{Commits: 3, Aborts: 1, Reads: 10, Writes: 5}
	a.Phases[PhaseReading] = 100
	b := Stats{Commits: 2, Aborts: 2, Reads: 4, Writes: 2}
	b.Phases[PhaseReading] = 50
	a.Merge(&b)
	if a.Commits != 5 || a.Aborts != 3 || a.Reads != 14 || a.Writes != 7 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.Phases[PhaseReading] != 150 {
		t.Fatalf("phase merge wrong: %d", a.Phases[PhaseReading])
	}
	if a.AbortRate() != 3.0/8.0 {
		t.Fatalf("abort rate = %f", a.AbortRate())
	}
	if a.TotalCycles() != 150 {
		t.Fatalf("total cycles = %d", a.TotalCycles())
	}
	var zero Stats
	if zero.AbortRate() != 0 {
		t.Fatal("zero stats abort rate should be 0")
	}
}

func TestPhaseAndReasonStrings(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "" {
			t.Fatalf("phase %d has no label", p)
		}
	}
	for r := AbortReason(0); r < numAbortReasons; r++ {
		if r.String() == "" {
			t.Fatalf("reason %d has no label", r)
		}
	}
}
