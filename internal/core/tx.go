package core

import (
	"fmt"

	"pimstm/internal/dpu"
)

// Phase indexes the time-breakdown buckets of the paper's figures
// (Figs 4, 5, 9, 10).
type Phase int

// The breakdown buckets, in the order the paper's legends list them.
const (
	PhaseReading Phase = iota
	PhaseWriting
	PhaseValidateExec
	PhaseOtherExec
	PhaseValidateCommit
	PhaseOtherCommit
	PhaseWasted
	NumPhases
)

// String returns the paper's label for the bucket.
func (p Phase) String() string {
	switch p {
	case PhaseReading:
		return "Reading"
	case PhaseWriting:
		return "Writing"
	case PhaseValidateExec:
		return "Validating (Executing)"
	case PhaseOtherExec:
		return "Other (Executing)"
	case PhaseValidateCommit:
		return "Validating (Commit)"
	case PhaseOtherCommit:
		return "Other (Commit)"
	case PhaseWasted:
		return "Time Wasted"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// AbortReason classifies why an attempt aborted, for diagnostics and
// the analyses of §4.2.1 (e.g. VR's upgrade aborts).
type AbortReason int

// Abort causes.
const (
	AbortLockBusy     AbortReason = iota // ORec/write lock held by another tx
	AbortValidation                      // readset validation failed
	AbortUpgrade                         // VR read→write upgrade with other readers
	AbortReadLockBusy                    // VR read acquisition on write-locked stripe
	AbortExplicit                        // user called Tx.Abort / Restart
	numAbortReasons
)

// String names the abort cause.
func (r AbortReason) String() string {
	switch r {
	case AbortLockBusy:
		return "lock-busy"
	case AbortValidation:
		return "validation"
	case AbortUpgrade:
		return "upgrade"
	case AbortReadLockBusy:
		return "read-lock-busy"
	case AbortExplicit:
		return "explicit"
	}
	return fmt.Sprintf("AbortReason(%d)", int(r))
}

// Stats aggregates transaction outcomes and the cycle-level time
// breakdown for one tasklet (merge across tasklets with Merge).
type Stats struct {
	Commits uint64
	Aborts  uint64
	// Phases holds cycles spent per breakdown bucket.
	Phases [NumPhases]uint64
	// AbortsBy counts aborts per cause.
	AbortsBy [numAbortReasons]uint64
	// Reads and Writes count transactional operations issued (including
	// those of aborted attempts).
	Reads, Writes uint64
}

// Merge accumulates o into s.
func (s *Stats) Merge(o *Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Reads += o.Reads
	s.Writes += o.Writes
	for i := range s.Phases {
		s.Phases[i] += o.Phases[i]
	}
	for i := range s.AbortsBy {
		s.AbortsBy[i] += o.AbortsBy[i]
	}
}

// AbortRate returns aborts / (commits + aborts) in [0, 1].
func (s *Stats) AbortRate() float64 {
	tot := s.Commits + s.Aborts
	if tot == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(tot)
}

// TotalCycles returns the cycles accounted across all buckets.
func (s *Stats) TotalCycles() uint64 {
	var t uint64
	for _, v := range s.Phases {
		t += v
	}
	return t
}

// abortSignal is the panic payload used to unwind an aborted attempt
// back to the Atomic retry loop (the sigsetjmp/longjmp of C STMs).
type abortSignal struct{ reason AbortReason }

// wsEntry is one buffered write (write-back) or one lock record.
type wsEntry struct {
	addr dpu.Addr
	val  uint64
}

// rsEntry is one read record; val holds the observed value (NOrec) or
// the observed ORec version (Tiny).
type rsEntry struct {
	key dpu.Addr // address (NOrec) or stripe index (Tiny)
	val uint64
}

// undoEntry restores a word overwritten by a write-through store.
type undoEntry struct {
	addr dpu.Addr
	old  uint64
}

// Tx is a per-tasklet transaction descriptor, reused across
// transactions. Obtain one per tasklet with TM.NewTx and drive it either
// with Atomic (automatic retry) or manually with Start/Read/Write/Commit.
type Tx struct {
	tm *TM
	t  *dpu.Tasklet

	// Private metadata buffers. These are charged to the metadata tier
	// on every logical access (see dpu.Tasklet.ChargePrivate).
	rs    []rsEntry
	ws    []wsEntry
	wsIdx map[dpu.Addr]int
	undo  []undoEntry

	// Tiny state: acquired stripes with the version to restore on abort.
	// Slices keep acquisition order so release order is deterministic
	// (Go map iteration order is randomized and would perturb the
	// simulation schedule).
	ub       uint64 // snapshot upper bound
	owned    []ownedStripe
	ownedIdx map[uint32]int

	// VR state: read- and write-locked stripes. The maps are the source
	// of truth (an upgraded read lock is flipped to false); the slices
	// preserve order for deterministic release.
	readLocks  []uint32
	readIdx    map[uint32]bool
	writeLocks []uint32
	writeIdx   map[uint32]bool

	// NOrec state.
	snapshot uint64

	status   txStatus
	attempts int

	// Phase accounting for the current attempt.
	attemptStart uint64
	acc          [NumPhases]uint64

	stats Stats
}

type txStatus int

const (
	txIdle txStatus = iota
	txActive
)

// ownedStripe records a Tiny lock acquisition: the stripe index and the
// pre-acquisition version restored if the transaction aborts.
type ownedStripe struct {
	stripe  uint32
	prevVer uint64
}

// NewTx creates the transaction descriptor of one tasklet.
func (tm *TM) NewTx(t *dpu.Tasklet) *Tx {
	return &Tx{
		tm:       tm,
		t:        t,
		wsIdx:    make(map[dpu.Addr]int),
		ownedIdx: make(map[uint32]int),
		readIdx:  make(map[uint32]bool),
		writeIdx: make(map[uint32]bool),
	}
}

// Tasklet returns the tasklet this descriptor is bound to.
func (tx *Tx) Tasklet() *dpu.Tasklet { return tx.t }

// Stats returns the accumulated statistics of this descriptor.
func (tx *Tx) Stats() *Stats { return &tx.stats }

// Atomic executes body as a transaction, retrying on abort until it
// commits. It is the TM_START/TM_COMMIT block of C TM APIs. The body may
// run multiple times and must confine its side effects to Tx operations
// and idempotent private state.
func (tx *Tx) Atomic(body func(*Tx)) {
	tx.attempts = 0
	for {
		tx.Start()
		if tx.attempt(body) {
			return
		}
		tx.backoff()
	}
}

// attempt runs body once, converting execution-time abort panics into a
// false return.
func (tx *Tx) attempt(body func(*Tx)) (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				committed = false
				return
			}
			panic(r)
		}
	}()
	body(tx)
	return tx.Commit()
}

// Start begins a new attempt. Calling Start on an active transaction is
// a programming error.
func (tx *Tx) Start() {
	if tx.status == txActive {
		panic("core: Start on an active transaction (no nesting support)")
	}
	tx.reset()
	tx.status = txActive
	tx.attempts++
	tx.attemptStart = tx.t.Now()
	tx.tm.eng.start(tx)
}

// Read performs a transactional 64-bit load.
func (tx *Tx) Read(a dpu.Addr) uint64 {
	tx.ensureActive("Read")
	tx.stats.Reads++
	t0 := tx.t.Now()
	v0 := tx.acc[PhaseValidateExec]
	v := tx.tm.eng.read(tx, a)
	// Validation nested inside the read is charged to its own bucket.
	tx.acc[PhaseReading] += tx.t.Now() - t0 - (tx.acc[PhaseValidateExec] - v0)
	return v
}

// Write performs a transactional 64-bit store.
func (tx *Tx) Write(a dpu.Addr, v uint64) {
	tx.ensureActive("Write")
	tx.stats.Writes++
	t0 := tx.t.Now()
	v0 := tx.acc[PhaseValidateExec]
	tx.tm.eng.write(tx, a, v)
	tx.acc[PhaseWriting] += tx.t.Now() - t0 - (tx.acc[PhaseValidateExec] - v0)
}

// Commit attempts to commit the transaction and reports success. On
// failure the transaction is already rolled back and may be restarted
// with Start.
func (tx *Tx) Commit() bool {
	tx.ensureActive("Commit")
	commitStart := tx.t.Now()
	execElapsed := commitStart - tx.attemptStart
	if !tx.runCommit() {
		// Bookkeeping (stats, rollback, status) happened in tx.abort.
		return false
	}
	commitElapsed := tx.t.Now() - commitStart
	tx.status = txIdle
	tx.stats.Commits++
	stmExec := tx.acc[PhaseReading] + tx.acc[PhaseWriting] + tx.acc[PhaseValidateExec]
	var otherExec uint64
	if execElapsed > stmExec {
		otherExec = execElapsed - stmExec
	}
	var otherCommit uint64
	if commitElapsed > tx.acc[PhaseValidateCommit] {
		otherCommit = commitElapsed - tx.acc[PhaseValidateCommit]
	}
	tx.stats.Phases[PhaseReading] += tx.acc[PhaseReading]
	tx.stats.Phases[PhaseWriting] += tx.acc[PhaseWriting]
	tx.stats.Phases[PhaseValidateExec] += tx.acc[PhaseValidateExec]
	tx.stats.Phases[PhaseOtherExec] += otherExec
	tx.stats.Phases[PhaseValidateCommit] += tx.acc[PhaseValidateCommit]
	tx.stats.Phases[PhaseOtherCommit] += otherCommit
	return true
}

// runCommit invokes the engine commit, converting an abort unwind into
// a false return so manual drivers see Commit() == false rather than a
// panic.
func (tx *Tx) runCommit() (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				committed = false
				return
			}
			panic(r)
		}
	}()
	tx.tm.eng.commit(tx)
	return true
}

// Abort aborts the current attempt and unwinds to the Atomic loop (or
// to the manual driver via the abort panic). The transaction's
// encounter-time effects are rolled back first.
func (tx *Tx) Abort() {
	tx.abort(AbortExplicit)
}

// abort rolls back and unwinds with an abortSignal panic.
func (tx *Tx) abort(reason AbortReason) {
	tx.ensureActive("abort")
	tx.tm.eng.rollback(tx)
	tx.status = txIdle
	tx.stats.Aborts++
	tx.stats.AbortsBy[reason]++
	tx.stats.Phases[PhaseWasted] += tx.t.Now() - tx.attemptStart
	panic(abortSignal{reason})
}

// backoff injects a short randomized delay after an abort to break the
// retry symmetry of deterministic tasklets (hardware jitter stand-in).
func (tx *Tx) backoff() {
	max := tx.attempts * 64
	if max > tx.tm.cfg.MaxBackoff {
		max = tx.tm.cfg.MaxBackoff
	}
	if max <= 0 {
		return
	}
	tx.t.Exec(tx.t.RandN(max))
}

func (tx *Tx) ensureActive(op string) {
	if tx.status != txActive {
		panic("core: " + op + " outside an active transaction")
	}
}

func (tx *Tx) reset() {
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	tx.undo = tx.undo[:0]
	tx.owned = tx.owned[:0]
	tx.readLocks = tx.readLocks[:0]
	tx.writeLocks = tx.writeLocks[:0]
	clear(tx.wsIdx)
	clear(tx.ownedIdx)
	clear(tx.readIdx)
	clear(tx.writeIdx)
	tx.acc = [NumPhases]uint64{}
}

// metaTier is the tier charged for private metadata traffic.
func (tx *Tx) metaTier() dpu.Tier { return tx.tm.cfg.MetaTier }

// chargeSnapshot models consulting the transaction descriptor's
// snapshot fields, which live in the metadata tier. The invisible-read
// designs pay this on every read (paper §4.2.1: "reading the
// transaction snapshot"); VR has no snapshot to consult.
func (tx *Tx) chargeSnapshot() { tx.t.ChargePrivate(tx.metaTier(), 8) }

// Private-set helpers. Every logical access charges the metadata tier.

func (tx *Tx) rsAdd(key dpu.Addr, val uint64) {
	tx.t.ChargePrivateStore(tx.metaTier(), 16)
	tx.rs = append(tx.rs, rsEntry{key, val})
}

func (tx *Tx) wsPut(a dpu.Addr, v uint64) {
	tx.t.ChargePrivateStore(tx.metaTier(), 16)
	if i, ok := tx.wsIdx[a]; ok {
		tx.ws[i].val = v
		return
	}
	tx.wsIdx[a] = len(tx.ws)
	tx.ws = append(tx.ws, wsEntry{a, v})
}

// wsLookup returns the buffered value for a, charging one probe when the
// writeset is non-empty. CTL and write-back designs pay this on every
// read (paper §3.2, "Lock timing"); an empty writeset is detected from a
// register-resident size counter and costs nothing.
func (tx *Tx) wsLookup(a dpu.Addr) (uint64, bool) {
	if len(tx.ws) == 0 {
		return 0, false
	}
	tx.t.ChargePrivate(tx.metaTier(), 8)
	if i, ok := tx.wsIdx[a]; ok {
		return tx.ws[i].val, true
	}
	return 0, false
}

func (tx *Tx) undoAdd(a dpu.Addr, old uint64) {
	tx.t.ChargePrivateStore(tx.metaTier(), 16)
	tx.undo = append(tx.undo, undoEntry{a, old})
}

// undoAll replays the undo log backwards, restoring overwritten words.
func (tx *Tx) undoAll() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		tx.t.ChargePrivate(tx.metaTier(), 16)
		tx.t.Store64(e.addr, e.old)
	}
	tx.undo = tx.undo[:0]
}

// validateBracket charges elapsed validation cycles to the right bucket.
func (tx *Tx) validateBracket(commitPhase bool, f func() bool) bool {
	t0 := tx.t.Now()
	ok := f()
	d := tx.t.Now() - t0
	if commitPhase {
		tx.acc[PhaseValidateCommit] += d
	} else {
		tx.acc[PhaseValidateExec] += d
	}
	return ok
}
