// Package cpustm is the CPU-side baseline of the paper's §4.3 study: a
// NOrec software transactional memory (Dalessandro, Spear & Scott,
// PPoPP 2010) for real host threads, built on sync/atomic. The paper
// compares its multi-DPU ports of KMeans and Labyrinth against exactly
// this algorithm running on a Xeon; here it runs on whatever host
// executes the benchmarks.
//
// Transactional memory is a slice of 64-bit words (Mem); transactions
// address words by index. NOrec provides opacity through a global
// sequence lock and value-based validation.
package cpustm

import (
	"runtime"
	"sync/atomic"
)

// Mem is a transactional address space: a fixed-size array of words.
type Mem struct {
	words []atomic.Uint64
}

// NewMem allocates a transactional memory of n words, zero-initialized.
func NewMem(n int) *Mem {
	return &Mem{words: make([]atomic.Uint64, n)}
}

// Len returns the number of words.
func (m *Mem) Len() int { return len(m.words) }

// Load reads a word non-transactionally (e.g. for verification or
// read-only snapshots between phases).
func (m *Mem) Load(i int) uint64 { return m.words[i].Load() }

// Store writes a word non-transactionally; only safe while no
// transactions run.
func (m *Mem) Store(i int, v uint64) { m.words[i].Store(v) }

// TM is a NOrec instance guarding one Mem.
type TM struct {
	mem     *Mem
	seqLock atomic.Uint64
}

// New creates a NOrec TM over the given memory.
func New(mem *Mem) *TM { return &TM{mem: mem} }

// Mem returns the underlying memory.
func (tm *TM) Mem() *Mem { return tm.mem }

type readEntry struct {
	idx int
	val uint64
}

// Tx is a per-thread transaction descriptor, reused across transactions.
// It must not be shared between goroutines.
type Tx struct {
	tm       *TM
	snapshot uint64
	rs       []readEntry
	ws       []readEntry
	wsIdx    map[int]int
	active   bool

	// Commits and Aborts count outcomes for reporting.
	Commits, Aborts uint64
}

// NewTx creates a transaction descriptor for one goroutine.
func (tm *TM) NewTx() *Tx {
	return &Tx{tm: tm, wsIdx: make(map[int]int)}
}

type abortSignal struct{}

// Atomic runs body as a transaction, retrying until it commits.
func (tx *Tx) Atomic(body func(*Tx)) {
	for {
		tx.start()
		if tx.attempt(body) {
			return
		}
		tx.Aborts++
	}
}

func (tx *Tx) attempt(body func(*Tx)) (committed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				committed = false
				return
			}
			panic(r)
		}
	}()
	body(tx)
	return tx.commit()
}

func (tx *Tx) start() {
	tx.rs = tx.rs[:0]
	tx.ws = tx.ws[:0]
	clear(tx.wsIdx)
	tx.active = true
	for {
		s := tx.tm.seqLock.Load()
		if s&1 == 0 {
			tx.snapshot = s
			return
		}
		runtime.Gosched() // writer in its commit section: brief back-off
	}
}

// Read performs a transactional load of word i.
func (tx *Tx) Read(i int) uint64 {
	if j, ok := tx.wsIdx[i]; ok {
		return tx.ws[j].val
	}
	v := tx.tm.mem.words[i].Load()
	for {
		s := tx.tm.seqLock.Load()
		if s == tx.snapshot {
			break
		}
		tx.snapshot = tx.validate()
		v = tx.tm.mem.words[i].Load()
	}
	tx.rs = append(tx.rs, readEntry{i, v})
	return v
}

// Write buffers a transactional store to word i.
func (tx *Tx) Write(i int, v uint64) {
	if j, ok := tx.wsIdx[i]; ok {
		tx.ws[j].val = v
		return
	}
	tx.wsIdx[i] = len(tx.ws)
	tx.ws = append(tx.ws, readEntry{i, v})
}

// validate re-checks the readset by value and returns the sequence-lock
// snapshot it was proven consistent at, aborting on any change.
func (tx *Tx) validate() uint64 {
	for {
		s := tx.tm.seqLock.Load()
		if s&1 == 1 {
			runtime.Gosched()
			continue
		}
		ok := true
		for _, e := range tx.rs {
			if tx.tm.mem.words[e.idx].Load() != e.val {
				ok = false
				break
			}
		}
		if !ok {
			tx.active = false
			panic(abortSignal{})
		}
		if tx.tm.seqLock.Load() == s {
			return s
		}
	}
}

// commit serializes update transactions on the sequence lock.
func (tx *Tx) commit() bool {
	if !tx.active {
		return false
	}
	tx.active = false
	if len(tx.ws) == 0 {
		tx.Commits++
		return true
	}
	for !tx.tm.seqLock.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		tx.active = true
		tx.snapshot = tx.validate() // panics on conflict
		tx.active = false
	}
	for _, e := range tx.ws {
		tx.tm.mem.words[e.idx].Store(e.val)
	}
	tx.tm.seqLock.Store(tx.snapshot + 2)
	tx.Commits++
	return true
}

// Abort aborts the current attempt (restarting it if inside Atomic).
func (tx *Tx) Abort() {
	tx.active = false
	panic(abortSignal{})
}
