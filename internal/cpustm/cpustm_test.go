package cpustm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSingleThreadSemantics(t *testing.T) {
	mem := NewMem(8)
	tm := New(mem)
	tx := tm.NewTx()
	tx.Atomic(func(tx *Tx) {
		tx.Write(0, 41)
		if got := tx.Read(0); got != 41 {
			t.Errorf("read-your-write = %d", got)
		}
		tx.Write(0, tx.Read(0)+1)
	})
	if mem.Load(0) != 42 {
		t.Fatalf("committed value = %d", mem.Load(0))
	}
	if tx.Commits != 1 || tx.Aborts != 0 {
		t.Fatalf("stats wrong: %d/%d", tx.Commits, tx.Aborts)
	}
}

func TestCounterParallel(t *testing.T) {
	const threads, iters = 8, 2000
	mem := NewMem(1)
	tm := New(mem)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := tm.NewTx()
			for j := 0; j < iters; j++ {
				tx.Atomic(func(tx *Tx) {
					tx.Write(0, tx.Read(0)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := mem.Load(0); got != threads*iters {
		t.Fatalf("lost updates: %d, want %d", got, threads*iters)
	}
}

func TestTransferInvariantParallel(t *testing.T) {
	const accounts, threads, iters, initial = 32, 6, 3000, 1000
	mem := NewMem(accounts)
	for i := 0; i < accounts; i++ {
		mem.Store(i, initial)
	}
	tm := New(mem)
	var wg sync.WaitGroup
	bad := make(chan uint64, threads*4)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			tx := tm.NewTx()
			rng := uint64(seed + 1)
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for j := 0; j < iters; j++ {
				from, to := next(accounts), next(accounts)
				amt := uint64(next(5))
				tx.Atomic(func(tx *Tx) {
					f, g := tx.Read(from), tx.Read(to)
					if from == to {
						return
					}
					tx.Write(from, f-amt)
					tx.Write(to, g+amt)
				})
				if j%100 == 0 {
					var sum uint64
					tx.Atomic(func(tx *Tx) {
						sum = 0
						for a := 0; a < accounts; a++ {
							sum += tx.Read(a)
						}
					})
					if sum != accounts*initial {
						select {
						case bad <- sum:
						default:
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(bad)
	if s, broke := <-bad; broke {
		t.Fatalf("audit saw inconsistent total %d", s)
	}
	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += mem.Load(i)
	}
	if sum != accounts*initial {
		t.Fatalf("final sum %d, want %d", sum, accounts*initial)
	}
}

func TestExplicitAbort(t *testing.T) {
	mem := NewMem(2)
	tm := New(mem)
	tx := tm.NewTx()
	done := false
	tx.Atomic(func(tx *Tx) {
		if !done {
			done = true
			tx.Write(0, 99)
			tx.Abort() // first attempt aborts; retry writes nothing
		}
	})
	if mem.Load(0) != 0 {
		t.Fatal("aborted write leaked")
	}
	if tx.Aborts != 1 {
		t.Fatalf("aborts = %d", tx.Aborts)
	}
}

func TestReadOnlyNoSeqLockBump(t *testing.T) {
	mem := NewMem(4)
	tm := New(mem)
	tx := tm.NewTx()
	before := tm.seqLock.Load()
	tx.Atomic(func(tx *Tx) {
		_ = tx.Read(0) + tx.Read(1)
	})
	if tm.seqLock.Load() != before {
		t.Fatal("read-only transaction bumped the sequence lock")
	}
}

// TestQuickSequentialEquivalence drives random single-thread programs
// and compares against a plain map: with one thread the STM must be a
// transparent memory.
func TestQuickSequentialEquivalence(t *testing.T) {
	mem := NewMem(16)
	tm := New(mem)
	tx := tm.NewTx()
	shadow := make([]uint64, 16)
	check := func(script []byte) bool {
		tx.Atomic(func(tx *Tx) {
			for _, b := range script {
				i := int(b) % 16
				if b&0x80 != 0 {
					v := tx.Read(i) + uint64(b)
					tx.Write(i, v)
				} else {
					_ = tx.Read(i)
				}
			}
		})
		// Replay on the shadow.
		for _, b := range script {
			i := int(b) % 16
			if b&0x80 != 0 {
				shadow[i] += uint64(b)
			}
		}
		for i := range shadow {
			if mem.Load(i) != shadow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
