module pimstm

go 1.24
