# Development targets. `make ci` is what .github/workflows/ci.yml runs;
# `make verify` is the repo's tier-1 gate.

GO ?= go

.PHONY: all verify fmt vet build test race bench bench-diff multidpu serve serve-smoke rebalance rebalance-smoke splitserve-smoke txnserve txnserve-smoke schedserve-smoke scale scale-smoke apps apps-smoke ci

all: ci

# Tier-1 verify (ROADMAP.md).
verify: build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/host

# Diff two bench JSON artifacts cell by cell (ops/s + p99 deltas).
# Usage: make bench-diff OLD=BENCH_txnserve.json.bak NEW=BENCH_txnserve.json
bench-diff:
	$(GO) run ./cmd/bench-diff $(OLD) $(NEW)

# Regenerate the machine-readable multi-DPU serving sweep.
multidpu:
	$(GO) run ./cmd/pimstm-bench -experiment multidpu

# Regenerate the machine-readable adaptive-batching serving sweep.
serve:
	$(GO) run ./cmd/pimstm-bench -experiment serve

# Short-mode serve invocation so the experiment can't rot in CI
# (no artifact written).
serve-smoke:
	$(GO) run ./cmd/pimstm-bench -experiment serve \
		-serve-dpus 2 -serve-algs norec -serve-skews 0,1.2 \
		-serve-rates 150000 -serve-ops 300 -serve-keys 128 \
		-serve-batch 32 -serve-out ""

# Regenerate the machine-readable skew-adaptive placement sweep.
rebalance:
	$(GO) run ./cmd/pimstm-bench -experiment rebalance

# Short-mode rebalance invocation so the experiment can't rot in CI:
# tiny fleet, one skewed scenario (uniform grid only), no artifact
# written. The bench-diff schema gate fails the target when the
# committed artifact lags the policy-axis schema bump.
rebalance-smoke:
	$(GO) run ./cmd/bench-diff -require-schema 2 BENCH_rebalance.json
	$(GO) run ./cmd/pimstm-bench -experiment rebalance \
		-rebal-dpus 4 -rebal-skews 1.2 -rebal-reads 99 \
		-rebal-cells uniform \
		-rebal-rate 1200000 -rebal-ops 7680 -rebal-keys 2560 \
		-rebal-batch 768 -rebal-out ""

# Short-mode split-key serving smoke so the split policy can't rot in
# CI: the hot write-heavy counter cell (the smallest ablation cell that
# exercises split + reconciliation end to end) plus the differential
# reconciliation invariant across placement × scheduler × Sample.
splitserve-smoke:
	$(GO) run ./cmd/pimstm-bench -experiment rebalance \
		-rebal-dpus 4 -rebal-cells hot -rebal-policies migrate,split \
		-rebal-rate 1200000 -rebal-ops 7680 -rebal-keys 2560 \
		-rebal-batch 768 -rebal-out ""
	$(GO) test ./internal/host/ -run TestDifferentialSplitReconcile -count=1

# Regenerate the machine-readable multi-key transaction serving sweep.
txnserve:
	$(GO) run ./cmd/pimstm-bench -experiment txnserve

# Short-mode txnserve invocation so the experiment can't rot in CI:
# two fleet sizes, one skew, all three cross-DPU fractions, default
# FIFO scheduler only, no artifact written. The bench-diff schema gate
# fails the target when the committed artifact lags a schema bump, so a
# stale v2 BENCH_txnserve.json can't be silently diffed against v3 rows.
txnserve-smoke:
	$(GO) run ./cmd/bench-diff -require-schema 3 BENCH_txnserve.json
	$(GO) run ./cmd/pimstm-bench -experiment txnserve \
		-txn-dpus 2,4 -txn-algs norec -txn-sizes 1,2 \
		-txn-cross 0,0.5,1 -txn-skews 1.2 -txn-txns 200 \
		-txn-keys 128 -txn-batch 32 -txn-scheds fifo -txn-out ""

# Short-mode scheduler-comparison sweep so the batch-scheduler axis
# can't rot in CI: one mixed-fraction cell under all three schedulers,
# no artifact written.
schedserve-smoke:
	$(GO) run ./cmd/pimstm-bench -experiment txnserve \
		-txn-dpus 4 -txn-algs norec -txn-sizes 2 \
		-txn-cross 0.5 -txn-skews 1.2 -txn-txns 200 \
		-txn-keys 128 -txn-batch 32 \
		-txn-scheds fifo,lane,adaptive -txn-out ""

# Regenerate the paper-scale sampled-fleet serving sweep (64 → 2500
# DPUs, BENCH_scale.json).
scale:
	$(GO) run ./cmd/pimstm-bench -experiment scale

# Short-mode scale invocation so sampled-fleet execution can't rot in
# CI: the small end of the fleet sweep, tight wall budget enforced as a
# hard failure, no artifact written. The bench-diff schema gate fails
# the target when the committed artifact lags a schema bump.
scale-smoke:
	$(GO) run ./cmd/bench-diff -require-schema 2 BENCH_scale.json
	$(GO) run ./cmd/pimstm-bench -experiment scale \
		-scale-dpus 64,256 -scale-budget-s 60 -scale-strict-budget -scale-out ""

# Regenerate the application-workload scenario matrix
# (BENCH_apps.json).
apps:
	$(GO) run ./cmd/pimstm-bench -experiment apps

# Short-mode apps invocation so the scenario matrix can't rot in CI:
# the bare pairwise cover with invariants proven per cell, no artifact
# written. The bench-diff schema gate fails the target when the
# committed artifact lags a schema bump.
apps-smoke:
	$(GO) run ./cmd/bench-diff -require-schema 1 BENCH_apps.json
	$(GO) run ./cmd/pimstm-bench -experiment apps \
		-apps-txns 200 -apps-min-cells 1 -apps-out ""

ci: fmt vet build race serve-smoke rebalance-smoke splitserve-smoke txnserve-smoke schedserve-smoke scale-smoke apps-smoke
