# Development targets. `make ci` is what .github/workflows/ci.yml runs;
# `make verify` is the repo's tier-1 gate.

GO ?= go

.PHONY: all verify fmt vet build test race bench multidpu ci

all: ci

# Tier-1 verify (ROADMAP.md).
verify: build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the machine-readable multi-DPU serving sweep.
multidpu:
	$(GO) run ./cmd/pimstm-bench -experiment multidpu

ci: fmt vet build race
