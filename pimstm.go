// Package pimstm is a Go reproduction of PIM-STM (Lopes, Castro &
// Romano, ASPLOS 2024): a library of software transactional memory
// algorithms for UPMEM-style processing-in-memory systems, together
// with the deterministic DPU simulator it runs on, the paper's
// benchmark suite, and the experiment harness that regenerates every
// figure of the paper's evaluation.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - a simulated DPU with WRAM/MRAM tiers, tasklets and the atomic
//     register (NewDPU);
//   - the seven STM variants of the paper's taxonomy (NewTM with a
//     Config selecting the Algorithm and metadata Tier);
//   - per-tasklet transactions (TM.NewTx, Tx.Atomic/Read/Write).
//
// Quick start:
//
//	d := pimstm.NewDPU(pimstm.DPUConfig{})
//	tm, _ := pimstm.NewTM(d, pimstm.Config{Algorithm: pimstm.NOrec})
//	counter := d.MustAlloc(pimstm.MRAM, 8, 8)
//	d.Run([]func(*pimstm.Tasklet){
//		func(t *pimstm.Tasklet) {
//			tx := tm.NewTx(t)
//			tx.Atomic(func(tx *pimstm.Tx) {
//				tx.Write(counter, tx.Read(counter)+1)
//			})
//		},
//	})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the architecture and the per-experiment index.
package pimstm

import (
	"pimstm/internal/core"
	"pimstm/internal/dpu"
)

// Re-exported simulator types.
type (
	// DPU is one simulated UPMEM data processing unit.
	DPU = dpu.DPU
	// DPUConfig parameterizes a DPU (sizes, clock, seed).
	DPUConfig = dpu.Config
	// Tasklet is one of up to 24 hardware threads of a DPU.
	Tasklet = dpu.Tasklet
	// Addr is a WRAM- or MRAM-tagged byte address on a DPU.
	Addr = dpu.Addr
	// Tier selects one of the two DPU memory tiers.
	Tier = dpu.Tier
	// Mutex is the lock the UPMEM runtime offers on the atomic register.
	Mutex = dpu.Mutex
	// Barrier synchronizes the tasklets of one DPU program.
	Barrier = dpu.Barrier
)

// Re-exported STM types.
type (
	// TM is one transactional-memory instance bound to one DPU.
	TM = core.TM
	// Tx is a per-tasklet transaction descriptor.
	Tx = core.Tx
	// Config selects the STM algorithm and its metadata placement.
	Config = core.Config
	// Algorithm identifies one of the seven STM variants.
	Algorithm = core.Algorithm
	// Stats aggregates commits, aborts and the per-phase time breakdown.
	Stats = core.Stats
	// Phase indexes the time-breakdown buckets.
	Phase = core.Phase
)

// Memory tiers.
const (
	// MRAM is the 64 MB DRAM bank of a DPU (large, slow).
	MRAM = dpu.MRAM
	// WRAM is the 64 KB scratchpad of a DPU (small, fast).
	WRAM = dpu.WRAM
)

// The seven STM variants of the paper's taxonomy (Fig 2).
const (
	NOrec     = core.NOrec
	TinyETLWB = core.TinyETLWB
	TinyETLWT = core.TinyETLWT
	TinyCTLWB = core.TinyCTLWB
	VRETLWB   = core.VRETLWB
	VRETLWT   = core.VRETLWT
	VRCTLWB   = core.VRCTLWB
)

// Hardware constants of the simulated DPU.
const (
	// MaxTasklets is the hardware thread count per DPU.
	MaxTasklets = dpu.MaxTasklets
	// PipelineDepth is the tasklet count at which the pipeline saturates.
	PipelineDepth = dpu.PipelineDepth
)

// NewDPU builds a simulated DPU.
func NewDPU(cfg DPUConfig) *DPU { return dpu.New(cfg) }

// NewTM creates a transactional memory on a DPU; call before Run.
func NewTM(d *DPU, cfg Config) (*TM, error) { return core.New(d, cfg) }

// ParseAlgorithm resolves an algorithm name such as "norec" or
// "Tiny ETLWB".
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Algorithms lists the seven variants in the order the paper's figures
// use.
func Algorithms() []Algorithm { return append([]Algorithm(nil), core.Algorithms...) }
