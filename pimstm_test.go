package pimstm_test

import (
	"testing"

	"pimstm"
)

// TestFacadeQuickstart runs the package-doc example end to end through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	d := pimstm.NewDPU(pimstm.DPUConfig{MRAMSize: 1 << 20})
	tm, err := pimstm.NewTM(d, pimstm.Config{Algorithm: pimstm.NOrec})
	if err != nil {
		t.Fatal(err)
	}
	counter := d.MustAlloc(pimstm.MRAM, 8, 8)
	progs := make([]func(*pimstm.Tasklet), 8)
	for i := range progs {
		progs[i] = func(tk *pimstm.Tasklet) {
			tx := tm.NewTx(tk)
			for j := 0; j < 25; j++ {
				tx.Atomic(func(tx *pimstm.Tx) {
					tx.Write(counter, tx.Read(counter)+1)
				})
			}
		}
	}
	if _, err := d.Run(progs); err != nil {
		t.Fatal(err)
	}
	if got := d.HostRead64(counter); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	algs := pimstm.Algorithms()
	if len(algs) != 7 {
		t.Fatalf("expected 7 algorithms, got %d", len(algs))
	}
	for _, a := range algs {
		got, err := pimstm.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	// Mutating the returned slice must not corrupt the package state.
	algs[0] = pimstm.VRCTLWB
	if pimstm.Algorithms()[0] == pimstm.VRCTLWB && pimstm.Algorithms()[1] == pimstm.VRCTLWB {
		t.Fatal("Algorithms leaked internal slice")
	}
}

func TestFacadeEveryAlgorithmAndTier(t *testing.T) {
	for _, alg := range pimstm.Algorithms() {
		for _, tier := range []pimstm.Tier{pimstm.MRAM, pimstm.WRAM} {
			d := pimstm.NewDPU(pimstm.DPUConfig{MRAMSize: 1 << 20})
			tm, err := pimstm.NewTM(d, pimstm.Config{Algorithm: alg, MetaTier: tier, LockTableEntries: 256})
			if err != nil {
				t.Fatal(err)
			}
			word := d.MustAlloc(pimstm.MRAM, 8, 8)
			progs := []func(*pimstm.Tasklet){func(tk *pimstm.Tasklet) {
				tx := tm.NewTx(tk)
				tx.Atomic(func(tx *pimstm.Tx) { tx.Write(word, 7) })
			}}
			if _, err := d.Run(progs); err != nil {
				t.Fatal(err)
			}
			if d.HostRead64(word) != 7 {
				t.Fatalf("%v/%v lost the write", alg, tier)
			}
		}
	}
}
