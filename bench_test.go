// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one target per panel, plus the ablation studies
// listed in DESIGN.md §7. Run them all with:
//
//	go test -bench=. -benchmem
//
// Absolute throughputs are virtual DPU seconds (the substrate is a
// simulator); the orderings, factors and crossovers are the
// reproduction targets — see EXPERIMENTS.md for the paper-vs-measured
// comparison. Each benchmark reports its headline numbers as custom
// metrics.
package pimstm_test

import (
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/harness"
	"pimstm/internal/host"
	"pimstm/internal/workloads"
)

// benchOpts keeps figure sweeps tractable under `go test -bench`.
func benchOpts() harness.Options {
	return harness.Options{
		Scale:    0.2,
		Tasklets: []int{1, 5, 11},
		Seeds:    []uint64{1},
	}
}

// reportPanel publishes the per-algorithm peak throughput of a panel.
func reportPanel(b *testing.B, p harness.Panel) {
	b.Helper()
	for _, s := range p.Series {
		b.ReportMetric(s.Peak(), "tx/s:"+shortName(s.Algorithm))
	}
	b.ReportMetric(p.Best(), "tx/s:best")
}

func shortName(a core.Algorithm) string {
	out := make([]byte, 0, len(a.String()))
	for i := 0; i < len(a.String()); i++ {
		if c := a.String()[i]; c != ' ' {
			out = append(out, c)
		}
	}
	return string(out)
}

func benchPanel(b *testing.B, workload string, tier dpu.Tier) {
	spec, err := harness.SpecByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	var panel harness.Panel
	for i := 0; i < b.N; i++ {
		panel, err = harness.RunPanel(spec, tier, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportPanel(b, panel)
}

// --- Fig 4: MRAM metadata, ArrayBench and Linked-List ---

func BenchmarkFig4ArrayBenchA(b *testing.B)  { benchPanel(b, "ArrayBench A", dpu.MRAM) }
func BenchmarkFig4ArrayBenchB(b *testing.B)  { benchPanel(b, "ArrayBench B", dpu.MRAM) }
func BenchmarkFig4LinkedListLC(b *testing.B) { benchPanel(b, "Linked-List LC", dpu.MRAM) }
func BenchmarkFig4LinkedListHC(b *testing.B) { benchPanel(b, "Linked-List HC", dpu.MRAM) }

// --- Fig 5: MRAM metadata, KMeans and Labyrinth ---

func BenchmarkFig5KMeansLC(b *testing.B)   { benchPanel(b, "KMeans LC", dpu.MRAM) }
func BenchmarkFig5KMeansHC(b *testing.B)   { benchPanel(b, "KMeans HC", dpu.MRAM) }
func BenchmarkFig5LabyrinthS(b *testing.B) { benchPanel(b, "Labyrinth S", dpu.MRAM) }
func BenchmarkFig5LabyrinthL(b *testing.B) { benchPanel(b, "Labyrinth L", dpu.MRAM) }

// --- Fig 6: normalized peak-throughput distributions ---

func benchFig6(b *testing.B, tier dpu.Tier) {
	opt := benchOpts()
	opt.Scale = 0.12
	var rows []harness.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.Fig6(tier, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The winner's mean normalized ratio (1.0 = always best).
	b.ReportMetric(rows[0].Mean, "ratio:"+shortName(rows[0].Algorithm))
	b.ReportMetric(rows[len(rows)-1].Mean, "ratio:worst")
}

func BenchmarkFig6MRAM(b *testing.B) { benchFig6(b, dpu.MRAM) }
func BenchmarkFig6WRAM(b *testing.B) { benchFig6(b, dpu.WRAM) }

// --- Fig 9 / Fig 10: WRAM metadata ---

func BenchmarkFig9ArrayBenchA(b *testing.B)  { benchPanel(b, "ArrayBench A", dpu.WRAM) }
func BenchmarkFig9ArrayBenchB(b *testing.B)  { benchPanel(b, "ArrayBench B", dpu.WRAM) }
func BenchmarkFig9LinkedListLC(b *testing.B) { benchPanel(b, "Linked-List LC", dpu.WRAM) }
func BenchmarkFig9LinkedListHC(b *testing.B) { benchPanel(b, "Linked-List HC", dpu.WRAM) }
func BenchmarkFig10KMeansLC(b *testing.B)    { benchPanel(b, "KMeans LC", dpu.WRAM) }
func BenchmarkFig10KMeansHC(b *testing.B)    { benchPanel(b, "KMeans HC", dpu.WRAM) }

// --- Fig 7: multi-DPU speedups over the CPU baselines ---

func BenchmarkFig7KMeans(b *testing.B) {
	opt := host.Fig7Options{
		DPUCounts:    []int{1, 64, 512},
		PointsPerDPU: 300,
		Tasklets:     11,
	}
	var series []host.Fig7Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = host.Fig7KMeans(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		pts := s.Points
		b.ReportMetric(pts[0].Speedup, "speedup@1:"+shortWorkload(s.Workload))
		b.ReportMetric(pts[len(pts)-1].Speedup, "speedup@512:"+shortWorkload(s.Workload))
	}
}

func BenchmarkFig7Labyrinth(b *testing.B) {
	opt := host.Fig7Options{
		DPUCounts:        []int{1, 64, 512},
		PathsPerInstance: 15,
		Tasklets:         8,
	}
	var series []host.Fig7Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = host.Fig7Labyrinth(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		pts := s.Points
		b.ReportMetric(pts[len(pts)-1].Speedup, "speedup@512:"+shortWorkload(s.Workload))
	}
}

// --- Fig 8: speedup and energy gain at the full fleet ---

func BenchmarkFig8(b *testing.B) {
	opt := host.Fig7Options{PointsPerDPU: 300, PathsPerInstance: 15, Tasklets: 11}
	var rows []host.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = host.Fig8(2500, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "speedup:"+shortWorkload(r.Workload))
		b.ReportMetric(r.EnergyGain, "egain:"+shortWorkload(r.Workload))
	}
}

func shortWorkload(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if c := s[i]; c != ' ' {
			out = append(out, c)
		}
	}
	return string(out)
}

// --- §3.1 latency table ---

func BenchmarkLatencyLocalMRAMRead(b *testing.B) {
	var ns float64
	for i := 0; i < b.N; i++ {
		ns = harness.LocalMRAMReadLatency()
	}
	b.ReportMetric(ns, "ns/read")
	b.ReportMetric(231, "ns/read-paper")
}

func BenchmarkLatencyInterDPURead(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = host.InterDPURead64Seconds()
	}
	b.ReportMetric(s*1e9, "ns/read")
	b.ReportMetric(331e3, "ns/read-paper")
}

// --- §4.2.3 tier gains ---

func BenchmarkTierGains(b *testing.B) {
	opt := harness.Options{Scale: 0.25, Tasklets: []int{5}, Seeds: []uint64{1}}
	heavy, _ := harness.SpecByName("ArrayBench B")
	light, _ := harness.SpecByName("KMeans LC")
	var gHeavy, gLight float64
	var err error
	for i := 0; i < b.N; i++ {
		if gHeavy, err = harness.TierGain(heavy, core.NOrec, opt); err != nil {
			b.Fatal(err)
		}
		if gLight, err = harness.TierGain(light, core.NOrec, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gHeavy, "x:ArrayBenchB")
	b.ReportMetric(gLight, "x:KMeansLC")
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationNOrecStartWait toggles NOrec's start-wait contention
// management on the high-contention ArrayBench B.
func BenchmarkAblationNOrecStartWait(b *testing.B) {
	run := func(disable bool) float64 {
		w := workloads.NewArrayBenchB()
		w.OpsPerTasklet = 40
		res, err := workloads.Run(w, dpu.Config{MRAMSize: 4 << 20, Seed: 1},
			core.Config{Algorithm: core.NOrec, DisableStartWait: disable}, 11)
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputTxS
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = run(false)
		off = run(true)
	}
	b.ReportMetric(on, "tx/s:wait-on")
	b.ReportMetric(off, "tx/s:wait-off")
}

// BenchmarkAblationTinyExtension compares Tiny with and without
// snapshot extension (TL2-style) on the read-heavy ArrayBench A.
func BenchmarkAblationTinyExtension(b *testing.B) {
	run := func(disable bool) (float64, float64) {
		w := workloads.NewArrayBenchA()
		w.OpsPerTasklet = 5
		res, err := workloads.Run(w, dpu.Config{MRAMSize: 4 << 20, Seed: 1},
			core.Config{Algorithm: core.TinyETLWB, LockTableEntries: 16384, DisableExtension: disable}, 11)
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputTxS, res.Stats.AbortRate()
	}
	var tOn, tOff, aOn, aOff float64
	for i := 0; i < b.N; i++ {
		tOn, aOn = run(false)
		tOff, aOff = run(true)
	}
	b.ReportMetric(tOn, "tx/s:ext-on")
	b.ReportMetric(tOff, "tx/s:ext-off")
	b.ReportMetric(aOn*100, "abort%:ext-on")
	b.ReportMetric(aOff*100, "abort%:ext-off")
}

// BenchmarkAblationLockTableSize sweeps the ORec table size on
// ArrayBench A: small tables alias the 12,500-word array and inflate
// false conflicts (paper §3.2.1, "Tiny").
func BenchmarkAblationLockTableSize(b *testing.B) {
	run := func(entries int) (float64, float64) {
		w := workloads.NewArrayBenchA()
		w.OpsPerTasklet = 5
		res, err := workloads.Run(w, dpu.Config{MRAMSize: 4 << 20, Seed: 1},
			core.Config{Algorithm: core.TinyETLWB, LockTableEntries: entries}, 11)
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputTxS, res.Stats.AbortRate()
	}
	sizes := []int{256, 2048, 16384}
	tput := make([]float64, len(sizes))
	abort := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for j, n := range sizes {
			tput[j], abort[j] = run(n)
		}
	}
	for j, n := range sizes {
		b.ReportMetric(tput[j], "tx/s:"+itoa(n))
		b.ReportMetric(abort[j]*100, "abort%:"+itoa(n))
	}
}

// BenchmarkAblationWaitOnContention evaluates the design choice the
// paper's taxonomy mentions but does not explore (§3.2): Tiny writers
// spin briefly on a busy ORec instead of aborting immediately.
func BenchmarkAblationWaitOnContention(b *testing.B) {
	run := func(wait int) (float64, float64) {
		w := workloads.NewLinkedListHC()
		w.OpsPerTasklet = 50
		res, err := workloads.Run(w, dpu.Config{MRAMSize: 4 << 20, Seed: 1},
			core.Config{Algorithm: core.TinyETLWB, WaitOnContention: wait}, 11)
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputTxS, res.Stats.AbortRate()
	}
	var tOff, tOn, aOff, aOn float64
	for i := 0; i < b.N; i++ {
		tOff, aOff = run(0)
		tOn, aOn = run(500)
	}
	b.ReportMetric(tOff, "tx/s:abort-now")
	b.ReportMetric(tOn, "tx/s:wait500")
	b.ReportMetric(aOff*100, "abort%:abort-now")
	b.ReportMetric(aOn*100, "abort%:wait500")
}

// BenchmarkAblationBackoff sweeps the randomized retry backoff bound
// under heavy conflicts.
func BenchmarkAblationBackoff(b *testing.B) {
	run := func(max int) float64 {
		w := workloads.NewArrayBenchB()
		w.OpsPerTasklet = 40
		res, err := workloads.Run(w, dpu.Config{MRAMSize: 4 << 20, Seed: 1},
			core.Config{Algorithm: core.VRETLWB, MaxBackoff: max}, 11)
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputTxS
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = run(64)
		large = run(4096)
	}
	b.ReportMetric(small, "tx/s:backoff64")
	b.ReportMetric(large, "tx/s:backoff4096")
}

// BenchmarkAblationBatchDelay sweeps the serving front-end's MaxDelay
// flush bound at a fixed open-loop arrival rate: small delays flush
// thin batches and pay the transfer handshake per handful of ops;
// large delays amortize it at the cost of baseline wait. Reports
// modeled throughput and p99 per setting.
func BenchmarkAblationBatchDelay(b *testing.B) {
	run := func(delay float64) host.ServeResult {
		res, err := host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: 4, Tasklets: 8,
				STM: core.Config{Algorithm: core.NOrec}, Mode: host.Pipelined,
			},
			Submit: host.SubmitterConfig{MaxBatch: 64, MaxDelaySeconds: delay},
			Traffic: host.TrafficConfig{
				Ops: 800, Rate: 6e4, ReadPct: 90, Keyspace: 256, ZipfS: 1.1, Seed: 1,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	delays := []float64{100e-6, 400e-6, 1600e-6}
	results := make([]host.ServeResult, len(delays))
	for i := 0; i < b.N; i++ {
		for j, d := range delays {
			results[j] = run(d)
		}
	}
	for j, d := range delays {
		label := itoa(int(d*1e6)) + "us"
		b.ReportMetric(results[j].OpsPerSecond, "ops/s:"+label)
		b.ReportMetric(results[j].P99*1e3, "p99ms:"+label)
	}
}

// --- STM operation microbenchmarks ---

func benchOps(b *testing.B, alg core.Algorithm, tier dpu.Tier, readOnly bool) {
	d := dpu.New(dpu.Config{MRAMSize: 1 << 20, Seed: 1})
	tm, err := core.New(d, core.Config{Algorithm: alg, MetaTier: tier, LockTableEntries: 1024})
	if err != nil {
		b.Fatal(err)
	}
	base := d.MustAlloc(dpu.MRAM, 64*8, 8)
	b.ResetTimer()
	var cycles uint64
	progs := []func(*dpu.Tasklet){func(t *dpu.Tasklet) {
		tx := tm.NewTx(t)
		for i := 0; i < b.N; i++ {
			tx.Atomic(func(tx *core.Tx) {
				for j := 0; j < 8; j++ {
					a := base + dpu.Addr((j%64)*8)
					v := tx.Read(a)
					if !readOnly {
						tx.Write(a, v+1)
					}
				}
			})
		}
	}}
	c, err := d.Run(progs)
	if err != nil {
		b.Fatal(err)
	}
	cycles = c
	b.ReportMetric(float64(cycles)/float64(b.N), "dpu-cycles/tx")
}

func BenchmarkTxReadOnlyNOrec(b *testing.B)     { benchOps(b, core.NOrec, dpu.MRAM, true) }
func BenchmarkTxReadOnlyTinyETLWB(b *testing.B) { benchOps(b, core.TinyETLWB, dpu.MRAM, true) }
func BenchmarkTxReadOnlyVRETLWB(b *testing.B)   { benchOps(b, core.VRETLWB, dpu.MRAM, true) }
func BenchmarkTxUpdateNOrec(b *testing.B)       { benchOps(b, core.NOrec, dpu.MRAM, false) }
func BenchmarkTxUpdateTinyETLWB(b *testing.B)   { benchOps(b, core.TinyETLWB, dpu.MRAM, false) }
func BenchmarkTxUpdateVRETLWB(b *testing.B)     { benchOps(b, core.VRETLWB, dpu.MRAM, false) }
func BenchmarkTxUpdateNOrecWRAM(b *testing.B)   { benchOps(b, core.NOrec, dpu.WRAM, false) }
func BenchmarkTxUpdateTinyWRAM(b *testing.B)    { benchOps(b, core.TinyETLWB, dpu.WRAM, false) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
