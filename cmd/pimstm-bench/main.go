// Command pimstm-bench regenerates the tables and figures of the
// PIM-STM paper's evaluation (§4) on the simulated UPMEM system.
//
// Usage:
//
//	pimstm-bench -experiment fig4            # Fig 4 (MRAM: ArrayBench, Linked-List)
//	pimstm-bench -experiment fig5            # Fig 5 (MRAM: KMeans, Labyrinth)
//	pimstm-bench -experiment fig6            # Fig 6a+6b (normalized peak throughput)
//	pimstm-bench -experiment fig7            # Fig 7a+7b (multi-DPU speedups)
//	pimstm-bench -experiment fig8            # Fig 8 (speedup + energy at full fleet)
//	pimstm-bench -experiment fig9            # Fig 9 (WRAM: ArrayBench, Linked-List)
//	pimstm-bench -experiment fig10           # Fig 10 (WRAM: KMeans)
//	pimstm-bench -experiment latency         # §3.1 latency comparison
//	pimstm-bench -experiment tiers           # §4.2.3 WRAM-vs-MRAM gains
//	pimstm-bench -experiment multidpu        # fleet serving sweep (beyond the paper)
//	pimstm-bench -experiment serve           # open-loop adaptive-batching sweep
//	pimstm-bench -experiment rebalance       # static vs skew-adaptive placement sweep
//	pimstm-bench -experiment txnserve        # multi-key transaction serving sweep
//	pimstm-bench -experiment apps            # application-workload scenario matrix
//	pimstm-bench -experiment all             # everything above
//
// -scale trades fidelity for speed (1.0 = paper-sized workloads);
// -seeds controls the run-averaging count (the paper averages 10 runs).
//
// The multidpu experiment sweeps fleet size (-mdpu-dpus) × STM
// algorithm (-mdpu-algs) × read mix (-mdpu-reads) over the partitioned
// KV store served through the host.Fleet transfer pipeline, comparing
// pipelined against lockstep modeled wall-clock, and writes the
// machine-readable result to -mdpu-out (default BENCH_multidpu.json).
//
// The serve experiment drives deterministic open-loop traffic (Zipf
// key popularity × read mix × Poisson arrivals) through the adaptive
// host.Submitter front-end, sweeping fleet size (-serve-dpus) × STM
// algorithm (-serve-algs) × skew (-serve-skews) × arrival rate
// (-serve-rates), and reports modeled ops/s plus p50/p95/p99 latency
// for pipelined and lockstep transfers to -serve-out (default
// BENCH_serve.json). Same seed ⇒ byte-identical artifact.
//
// The rebalance experiment is the placement-policy ablation: it sweeps
// fleet size (-rebal-dpus) × traffic cell × control-plane policy
// (-rebal-policies: none, replicate, migrate, split) at one open-loop
// rate (-rebal-rate) and writes one row per (fleet, cell, policy) to
// -rebal-out (default BENCH_rebalance.json). The cells (-rebal-cells:
// all, uniform, hot) are the classic Zipf × read-mix grid
// (-rebal-skews × -rebal-reads) plus a hot write-heavy counter cell
// (-rebal-hot-keys shared counters taking -rebal-hot-write of the
// arrivals as commutative adds) — the Doppel-style contention that
// migration cannot fix and split-key execution can. Same seed ⇒
// byte-identical artifact.
//
// The txnserve experiment serves open-loop multi-key transactions
// through the Txn front-end, sweeping fleet size (-txn-dpus) ×
// transaction size (-txn-sizes) × cross-DPU fraction (-txn-cross) ×
// Zipf skew (-txn-skews) × STM algorithm (-txn-algs) × batch
// scheduler (-txn-scheds: fifo, lane, adaptive), and reports modeled
// throughput plus per-transaction commit-latency percentiles to
// -txn-out (default BENCH_txnserve.json) — the cross-DPU coordination
// cost the paper's single-DPU evaluation never measures, and how much
// of the mixed-batch cliff lane-segregated batch formation closes.
// Same seed ⇒ byte-identical artifact.
//
// The scale experiment serves the paper-sized fleet: sampled-fleet
// execution (-scale-sample representative DPUs simulated, the rest
// charged from the calibrated cost model) sweeps fleet size
// (-scale-dpus, up to the paper's 2500) × skew (-scale-skews) with a
// weak-scaled workload, reports modeled ops/s and latency percentiles
// to -scale-out (default BENCH_scale.json), and records whether the
// whole sweep finished inside the pinned real-time budget
// (-scale-budget-s).
//
// The apps experiment replaces hand-enumerated sweeps with a declared
// scenario matrix: application workloads (kv, TPC-C-style neworder,
// RUBiS-style auction) × fleet size × skew × transaction shape ×
// cross-DPU fraction × scheduler × placement policy × STM algorithm,
// with exclusion predicates carving out meaningless cells and a seeded
// pairwise-covering expansion (-apps-min-cells floor) choosing which
// cells run. Every cell serves a deterministic application trace and
// then proves the workload's conservation invariant (e.g. Σstock +
// Σordered == initial) against the served store; rows land in
// -apps-out (default BENCH_apps.json) with per-cell axis tags,
// guard-abort counts, and a coverage audit block. Same seed ⇒
// byte-identical artifact.
//
// -cpuprofile and -memprofile write pprof profiles of whatever
// experiment ran (the memory profile is taken at exit), for chasing
// host-side hot spots and allocation regressions.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/harness"
	"pimstm/internal/host"
)

// experimentList names every experiment, in the order `all` runs them.
var experimentList = []string{
	"latency", "fig4", "fig5", "fig6", "fig9", "fig10", "tiers",
	"fig7", "fig8", "multidpu", "serve", "rebalance", "txnserve",
	"scale", "apps",
}

func main() {
	var (
		experiment  = flag.String("experiment", "all", strings.Join(experimentList, "|")+"|all")
		parallelism = flag.Int("parallelism", 0, "host-side worker pool for batch phases and DPU simulation (0 = GOMAXPROCS, 1 = serial reference implementation)")
		scale       = flag.Float64("scale", 0.5, "workload scale factor (1.0 = paper sizes)")
		seeds       = flag.Int("seeds", 3, "runs to average per point (paper: 10)")
		tasklets    = flag.String("tasklets", "1,3,5,7,9,11", "comma-separated tasklet counts")
		dpus        = flag.String("dpus", "1,64,256,1024,2500", "comma-separated fleet sizes for fig7")
		fleet       = flag.Int("fleet", 2500, "fleet size for fig8")
		points      = flag.Int("points-per-dpu", 2000, "KMeans shard size for fig7/fig8 (paper: 200000)")
		paths       = flag.Int("paths", 40, "Labyrinth paths per instance for fig7/fig8 (paper: 100)")

		mdpuDPUs    = flag.String("mdpu-dpus", "1,8,64", "comma-separated fleet sizes for multidpu")
		mdpuAlgs    = flag.String("mdpu-algs", "norec,tinyetlwb,vretlwb", "comma-separated STM algorithms for multidpu")
		mdpuReads   = flag.String("mdpu-reads", "90,50", "comma-separated read percentages for multidpu")
		mdpuBatches = flag.Int("mdpu-batches", 6, "streamed batches per multidpu scenario")
		mdpuOps     = flag.Int("mdpu-ops", 256, "operations per multidpu batch")
		mdpuOut     = flag.String("mdpu-out", "BENCH_multidpu.json", "multidpu JSON artifact path (empty = don't write)")

		serveDPUs    = flag.String("serve-dpus", "1,8", "comma-separated fleet sizes for serve")
		serveAlgs    = flag.String("serve-algs", "norec,tinyetlwb", "comma-separated STM algorithms for serve")
		serveSkews   = flag.String("serve-skews", "0,1.2", "comma-separated Zipf exponents for serve (0 = uniform)")
		serveRates   = flag.String("serve-rates", "40000,200000", "comma-separated open-loop arrival rates (ops per modeled second)")
		serveReads   = flag.Int("serve-reads", 90, "read percentage of the serve traffic")
		serveOps     = flag.Int("serve-ops", 1200, "operations per serve scenario")
		serveKeys    = flag.Int("serve-keys", 512, "distinct keys in the serve traffic")
		serveBatch   = flag.Int("serve-batch", 64, "submitter MaxBatch for serve")
		serveDelayUS = flag.Float64("serve-delay-us", 300, "submitter MaxDelay in modeled microseconds")
		serveSeed    = flag.Uint64("serve-seed", 1, "traffic seed for serve")
		serveOut     = flag.String("serve-out", "BENCH_serve.json", "serve JSON artifact path (empty = don't write)")

		rebalDPUs     = flag.String("rebal-dpus", "4,8", "comma-separated fleet sizes for rebalance")
		rebalSkews    = flag.String("rebal-skews", "0,1.2", "comma-separated Zipf exponents for rebalance (0 = uniform)")
		rebalReads    = flag.String("rebal-reads", "99,50", "comma-separated read percentages for rebalance")
		rebalPolicies = flag.String("rebal-policies", "none,replicate,migrate,split", "comma-separated control-plane policies for rebalance")
		rebalCells    = flag.String("rebal-cells", "all", "rebalance cell families: all, uniform (Zipf × read-mix grid) or hot (counter cell)")
		rebalHotKeys  = flag.Int("rebal-hot-keys", 1, "shared counters in the hot rebalance cell")
		rebalHotWrite = flag.Float64("rebal-hot-write", 0.9, "fraction of hot-cell arrivals that are commutative counter adds")
		rebalRate     = flag.Float64("rebal-rate", 3e6, "open-loop arrival rate for rebalance (ops per modeled second)")
		rebalOps      = flag.Int("rebal-ops", 38400, "operations per rebalance scenario")
		rebalKeys     = flag.Int("rebal-keys", 10240, "distinct keys in the rebalance traffic")
		rebalBatch    = flag.Int("rebal-batch", 2560, "submitter MaxBatch for rebalance")
		rebalWindow   = flag.Int("rebal-window", 1, "rebalancer decision window in batches")
		rebalSeed     = flag.Uint64("rebal-seed", 1, "traffic seed for rebalance")
		rebalOut      = flag.String("rebal-out", "BENCH_rebalance.json", "rebalance JSON artifact path (empty = don't write)")

		txnDPUs    = flag.String("txn-dpus", "2,8", "comma-separated fleet sizes for txnserve")
		txnAlgs    = flag.String("txn-algs", "norec", "comma-separated STM algorithms for txnserve")
		txnSizes   = flag.String("txn-sizes", "1,2,4", "comma-separated ops-per-transaction points for txnserve")
		txnCross   = flag.String("txn-cross", "0,0.5,1", "comma-separated cross-DPU transaction fractions for txnserve")
		txnSkews   = flag.String("txn-skews", "0,1.2", "comma-separated Zipf exponents for txnserve (0 = uniform)")
		txnScheds  = flag.String("txn-scheds", "fifo,lane", "comma-separated batch schedulers for txnserve (fifo, lane, adaptive)")
		txnRate    = flag.Float64("txn-rate", 4e4, "open-loop arrival rate for txnserve (transactions per modeled second)")
		txnReads   = flag.Int("txn-reads", 80, "read percentage of the txnserve traffic")
		txnCount   = flag.Int("txn-txns", 500, "transactions per txnserve scenario")
		txnKeys    = flag.Int("txn-keys", 512, "distinct keys in the txnserve traffic")
		txnBatch   = flag.Int("txn-batch", 64, "submitter MaxBatch (ops) for txnserve")
		txnDelayUS = flag.Float64("txn-delay-us", 300, "submitter MaxDelay in modeled microseconds for txnserve")
		txnSeed    = flag.Uint64("txn-seed", 1, "traffic seed for txnserve")
		txnOut     = flag.String("txn-out", "BENCH_txnserve.json", "txnserve JSON artifact path (empty = don't write)")

		scaleDPUs   = flag.String("scale-dpus", "64,256,1024,2500", "comma-separated fleet sizes for scale")
		scaleSample = flag.Int("scale-sample", 8, "simulated representative DPUs per scale point")
		scaleSkews  = flag.String("scale-skews", "0,1.2", "comma-separated Zipf exponents for scale (0 = uniform)")
		scaleBudget = flag.Float64("scale-budget-s", 120, "pinned real-time budget for the whole scale sweep, seconds")
		scaleKeysPD = flag.Int("scale-keys-per-dpu", 32, "distinct keys per DPU in the scale traffic")
		scaleOpsPD  = flag.Int("scale-ops-per-dpu", 16, "trace length per DPU in the scale traffic")
		scaleRatePD = flag.Float64("scale-rate-per-dpu", 4e3, "open-loop arrival rate per DPU (ops per modeled second)")
		scaleBatch  = flag.Int("scale-batch", 4096, "submitter MaxBatch (ops) for scale")
		scaleSeed   = flag.Uint64("scale-seed", 1, "traffic seed for scale")
		scaleStrict = flag.Bool("scale-strict-budget", false, "fail (non-zero exit) when the scale sweep blows its wall-clock budget")
		scaleOut    = flag.String("scale-out", "BENCH_scale.json", "scale JSON artifact path (empty = don't write)")

		appsTxns     = flag.Int("apps-txns", 400, "transactions per apps cell")
		appsRate     = flag.Float64("apps-rate", 2e5, "open-loop arrival rate for apps (transactions per modeled second)")
		appsKeys     = flag.Int("apps-keys", 128, "distinct keys in the apps KV cells")
		appsReads    = flag.Int("apps-reads", 80, "read percentage of the apps KV traffic")
		appsBatch    = flag.Int("apps-batch", 48, "submitter MaxBatch (ops) for apps")
		appsDelayUS  = flag.Float64("apps-delay-us", 300, "submitter MaxDelay in modeled microseconds for apps")
		appsMinCells = flag.Int("apps-min-cells", 32, "pad the covering cell set to at least this many cells")
		appsSeed     = flag.Uint64("apps-seed", 1, "matrix-expansion and traffic seed for apps")
		appsOut      = flag.String("apps-out", "BENCH_apps.json", "apps JSON artifact path (empty = don't write)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opt := harness.Options{Scale: *scale}
	for i := 0; i < *seeds; i++ {
		opt.Seeds = append(opt.Seeds, uint64(i+1))
	}
	var err error
	if opt.Tasklets, err = parseInts(*tasklets); err != nil {
		fatal(err)
	}
	fleetOpt := host.Fig7Options{PointsPerDPU: *points, PathsPerInstance: *paths}
	if fleetOpt.DPUCounts, err = parseInts(*dpus); err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "fig4", "fig5", "fig9", "fig10":
			fig, err := harness.RunFigure(name, opt)
			if err != nil {
				fatal(err)
			}
			fig.Render(os.Stdout)
		case "fig6":
			rows, err := harness.Fig6(dpu.MRAM, opt)
			if err != nil {
				fatal(err)
			}
			harness.RenderFig6(os.Stdout, "fig6a: normalized peak throughput, metadata in MRAM", rows)
			rows, err = harness.Fig6(dpu.WRAM, opt)
			if err != nil {
				fatal(err)
			}
			harness.RenderFig6(os.Stdout, "fig6b: normalized peak throughput, metadata in WRAM", rows)
		case "fig7":
			km, err := host.Fig7KMeans(fleetOpt)
			if err != nil {
				fatal(err)
			}
			host.RenderFig7(os.Stdout, "fig7a: KMeans speedup vs CPU", km)
			lab, err := host.Fig7Labyrinth(fleetOpt)
			if err != nil {
				fatal(err)
			}
			host.RenderFig7(os.Stdout, "fig7b: Labyrinth speedup vs CPU", lab)
		case "fig8":
			rows, err := host.Fig8(*fleet, fleetOpt)
			if err != nil {
				fatal(err)
			}
			host.RenderFig8(os.Stdout, rows)
		case "latency":
			local := harness.LocalMRAMReadLatency()
			inter := host.InterDPURead64Seconds()
			fmt.Printf("== §3.1 latency comparison ==\n")
			fmt.Printf("local MRAM 64-bit read:    %8.0f ns   (paper: 231 ns)\n", local)
			fmt.Printf("inter-DPU 64-bit read:     %8.0f ns   (paper: 331 µs)\n", inter*1e9)
			fmt.Printf("ratio:                     %8.0fx   (paper: ~1433x, \"three orders of magnitude\")\n",
				inter*1e9/local)
		case "multidpu":
			mopt := multiDPUOptions{
				Batches:     *mdpuBatches,
				OpsPerBatch: *mdpuOps,
				Parallelism: *parallelism,
				Out:         *mdpuOut,
			}
			var err error
			if mopt.Fleets, err = parseInts(*mdpuDPUs); err != nil {
				fatal(err)
			}
			if mopt.Algs, err = parseAlgorithms(*mdpuAlgs); err != nil {
				fatal(err)
			}
			if mopt.ReadPcts, err = parseInts(*mdpuReads); err != nil {
				fatal(err)
			}
			if _, err := runMultiDPU(mopt, os.Stdout); err != nil {
				fatal(err)
			}
		case "serve":
			sopt := serveOptions{
				ReadPct:         *serveReads,
				Ops:             *serveOps,
				Keyspace:        *serveKeys,
				MaxBatch:        *serveBatch,
				MaxDelaySeconds: *serveDelayUS * 1e-6,
				Seed:            *serveSeed,
				Parallelism:     *parallelism,
				Out:             *serveOut,
			}
			var err error
			if sopt.Fleets, err = parseInts(*serveDPUs); err != nil {
				fatal(err)
			}
			if sopt.Algs, err = parseAlgorithms(*serveAlgs); err != nil {
				fatal(err)
			}
			if sopt.Skews, err = parseFloats(*serveSkews); err != nil {
				fatal(err)
			}
			if sopt.Rates, err = parseFloats(*serveRates); err != nil {
				fatal(err)
			}
			if _, err := runServe(sopt, os.Stdout); err != nil {
				fatal(err)
			}
		case "rebalance":
			ropt := rebalanceOptions{
				Cells:         *rebalCells,
				Policies:      parseStrings(*rebalPolicies),
				HotKeys:       *rebalHotKeys,
				HotWriteFrac:  *rebalHotWrite,
				Rate:          *rebalRate,
				Ops:           *rebalOps,
				Keyspace:      *rebalKeys,
				MaxBatch:      *rebalBatch,
				WindowBatches: *rebalWindow,
				Seed:          *rebalSeed,
				Parallelism:   *parallelism,
				Out:           *rebalOut,
			}
			var err error
			if ropt.Fleets, err = parseInts(*rebalDPUs); err != nil {
				fatal(err)
			}
			if ropt.Skews, err = parseFloats(*rebalSkews); err != nil {
				fatal(err)
			}
			if ropt.ReadPcts, err = parseInts(*rebalReads); err != nil {
				fatal(err)
			}
			if _, err := runRebalance(ropt, os.Stdout); err != nil {
				fatal(err)
			}
		case "txnserve":
			topt := txnServeOptions{
				Rate:            *txnRate,
				ReadPct:         *txnReads,
				Txns:            *txnCount,
				Keyspace:        *txnKeys,
				MaxBatch:        *txnBatch,
				MaxDelaySeconds: *txnDelayUS * 1e-6,
				Seed:            *txnSeed,
				Parallelism:     *parallelism,
				Out:             *txnOut,
			}
			var err error
			if topt.Fleets, err = parseInts(*txnDPUs); err != nil {
				fatal(err)
			}
			if topt.Algs, err = parseAlgorithms(*txnAlgs); err != nil {
				fatal(err)
			}
			if topt.TxnSizes, err = parseInts(*txnSizes); err != nil {
				fatal(err)
			}
			if topt.CrossFracs, err = parseFloats(*txnCross); err != nil {
				fatal(err)
			}
			if topt.Skews, err = parseFloats(*txnSkews); err != nil {
				fatal(err)
			}
			topt.Scheds = parseStrings(*txnScheds)
			if _, err := runTxnServe(topt, os.Stdout); err != nil {
				fatal(err)
			}
		case "scale":
			sopt := scaleOptions{
				Sample:            *scaleSample,
				KeysPerDPU:        *scaleKeysPD,
				OpsPerDPU:         *scaleOpsPD,
				RatePerDPU:        *scaleRatePD,
				MaxBatch:          *scaleBatch,
				WallBudgetSeconds: *scaleBudget,
				StrictBudget:      *scaleStrict,
				Seed:              *scaleSeed,
				Parallelism:       *parallelism,
				Out:               *scaleOut,
			}
			var err error
			if sopt.Fleets, err = parseInts(*scaleDPUs); err != nil {
				fatal(err)
			}
			if sopt.Skews, err = parseFloats(*scaleSkews); err != nil {
				fatal(err)
			}
			if _, err := runScale(sopt, os.Stdout); err != nil {
				fatal(err)
			}
		case "apps":
			aopt := appsOptions{
				Txns:            *appsTxns,
				Rate:            *appsRate,
				Keyspace:        *appsKeys,
				ReadPct:         *appsReads,
				MaxBatch:        *appsBatch,
				MaxDelaySeconds: *appsDelayUS * 1e-6,
				MinCells:        *appsMinCells,
				Seed:            *appsSeed,
				Parallelism:     *parallelism,
				Out:             *appsOut,
			}
			if _, err := runApps(aopt, os.Stdout); err != nil {
				fatal(err)
			}
		case "tiers":
			fmt.Printf("== §4.2.3 WRAM-metadata peak-throughput gains (NOrec unless noted) ==\n")
			var gains []float64
			for _, spec := range harness.Specs() {
				if !spec.SupportsWRAM {
					continue
				}
				g, err := harness.TierGain(spec, core.NOrec, opt)
				if err != nil {
					fatal(err)
				}
				gains = append(gains, g)
				fmt.Printf("%-16s %6.2fx\n", spec.Name, g)
			}
			fmt.Printf("geometric mean:  %6.2fx   (paper: 2.86x over tx-heavy workloads, ~5%% for KMeans LC)\n",
				geomean(gains))
		default:
			fatal(fmt.Errorf("unknown experiment %q (valid: %s, all)",
				name, strings.Join(experimentList, ", ")))
		}
	}

	if *experiment == "all" {
		for _, name := range experimentList {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*experiment)
}

// hostParHeader renders the host-execution context line every serving
// experiment prints under its table header: the resolved worker count,
// which implementation it selects, and GOMAXPROCS. It goes to stdout
// only — the pinned JSON artifacts stay machine-independent (the scale
// artifact, whose schema embraces real wall clock, records both fields
// in its report header too).
func hostParHeader(par int) string {
	workers := par
	mode := "engine"
	switch par {
	case 0:
		workers = runtime.GOMAXPROCS(0)
	case 1:
		mode = "serial reference"
	}
	return fmt.Sprintf("host parallelism: %d worker(s), %s path, GOMAXPROCS %d",
		workers, mode, runtime.GOMAXPROCS(0))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseStrings(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimstm-bench:", err)
	os.Exit(1)
}
