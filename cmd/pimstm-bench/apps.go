package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"pimstm/internal/core"
	"pimstm/internal/host"
	"pimstm/internal/workload"
)

// The apps experiment is the application-workload scenario matrix:
// instead of hand-enumerated nested sweeps, it declares the axes
// (workload × fleet × skew × txn shape × cross fraction × scheduler ×
// placement policy × STM algorithm), the exclusion predicates that
// carve out meaningless cells, and lets workload.Matrix expand a
// pairwise-covering cell set. Every cell serves a deterministic
// application trace (KV, TPC-C-style NewOrder, RUBiS-style Auction)
// through the full serving stack and then proves the workload's
// conservation invariant against the served store — a benchmark run
// that silently corrupts state fails loudly instead of publishing
// numbers.
type appsOptions struct {
	// Txns is the trace length per cell.
	Txns int
	// Rate is the open-loop arrival rate in transactions per modeled
	// second.
	Rate float64
	// Keyspace is the KV cells' key count (application cells size their
	// own key layouts).
	Keyspace int
	// ReadPct of the KV traffic is Gets.
	ReadPct int
	// MaxBatch and MaxDelaySeconds tune the batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// Tasklets is the intra-DPU parallelism.
	Tasklets int
	// MinCells pads the covering set to at least this many cells.
	MinCells int
	// Seed drives both the matrix expansion and every cell's traffic.
	Seed uint64
	// Parallelism is the host-side worker-pool setting (0 = GOMAXPROCS,
	// 1 = serial reference).
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *appsOptions) fill() {
	if o.Txns == 0 {
		o.Txns = 400
	}
	if o.Rate == 0 {
		o.Rate = 2e5
	}
	if o.Keyspace == 0 {
		o.Keyspace = 128
	}
	if o.ReadPct == 0 {
		o.ReadPct = 80
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 48
	}
	if o.MaxDelaySeconds == 0 {
		o.MaxDelaySeconds = 300e-6
	}
	if o.Tasklets == 0 {
		o.Tasklets = 4
	}
	if o.MinCells == 0 {
		o.MinCells = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// appsMatrix declares the scenario space. The predicates encode the
// harness's real constraints: transaction-shape and cross-DPU knobs
// only exist on the synthetic KV generator, cross-DPU and non-static
// placement need a fleet, and the split policy is pointless on
// read-mostly KV traffic (the application workloads are the ones with
// commutative hot counters).
func appsMatrix(minCells int) workload.Matrix {
	atLeast := func(c workload.Cell, axis string, n int) bool {
		v, _ := strconv.Atoi(c[axis])
		return v >= n
	}
	return workload.Matrix{
		Axes: []workload.Axis{
			{Name: "workload", Values: []string{"kv", "neworder", "auction"}},
			{Name: "dpus", Values: []string{"1", "4", "8"}},
			{Name: "zipf", Values: []string{"0", "1.1"}},
			{Name: "txn", Values: []string{"1", "3"}},
			{Name: "cross", Values: []string{"0", "0.5"}},
			{Name: "sched", Values: []string{"fifo", "lane"}},
			{Name: "place", Values: []string{"static", "migrate", "split"}},
			{Name: "stm", Values: []string{"norec", "tinyetlwb"}},
		},
		Predicates: []workload.Predicate{
			{Name: "txn-shaping-is-kv-only", Reject: func(c workload.Cell) bool {
				return c["txn"] != "1" && c["workload"] != "kv"
			}},
			{Name: "cross-needs-multiop-multidpu-kv", Reject: func(c workload.Cell) bool {
				return c["cross"] != "0" && (c["workload"] != "kv" || c["txn"] == "1" || !atLeast(c, "dpus", 2))
			}},
			{Name: "placement-needs-multidpu", Reject: func(c workload.Cell) bool {
				return c["place"] != "static" && !atLeast(c, "dpus", 2)
			}},
			{Name: "split-needs-rmw-traffic", Reject: func(c workload.Cell) bool {
				return c["place"] == "split" && c["workload"] == "kv"
			}},
		},
		MinCells: minCells,
	}
}

// appsScenario is one machine-readable cell of BENCH_apps.json.
type appsScenario struct {
	// Cell is the stable "axis=value,…" identity; Axes are the same
	// tags broken out for tooling.
	Cell string            `json:"cell"`
	Axes map[string]string `json:"axes"`

	Txns            int     `json:"txns"`
	Ops             int     `json:"ops"`
	Aborted         int     `json:"aborted"`
	GuardAborts     int     `json:"guard_aborts"`
	CoordinatedTxns int     `json:"coordinated_txns"`
	Batches         int     `json:"batches"`
	OpsPerSecond    float64 `json:"ops_per_s"`
	P50Seconds      float64 `json:"p50_s"`
	P95Seconds      float64 `json:"p95_s"`
	P99Seconds      float64 `json:"p99_s"`
	Makespan        float64 `json:"makespan_s"`
	KeysMigrated    int     `json:"keys_migrated"`
	KeysSplit       int     `json:"keys_split"`
	SplitReconciles int     `json:"split_reconciles"`
	// Invariant records the workload checker's verdict; runs never
	// publish a row that failed (the sweep errors out), so committed
	// artifacts always read "ok".
	Invariant string `json:"invariant"`
}

// appsCoverage is the artifact's audit block.
type appsCoverage struct {
	RawCells     int                 `json:"raw_cells"`
	ValidCells   int                 `json:"valid_cells"`
	Selected     int                 `json:"selected_cells"`
	Excluded     map[string]int      `json:"excluded"`
	PairsTotal   int                 `json:"pairs_total"`
	PairsCovered int                 `json:"pairs_covered"`
	AxisValues   map[string][]string `json:"axis_values"`
}

// appsReport is the top-level JSON artifact.
type appsReport struct {
	SchemaVersion int            `json:"schema_version"`
	Experiment    string         `json:"experiment"`
	Coverage      appsCoverage   `json:"coverage"`
	Scenarios     []appsScenario `json:"scenarios"`
}

// buildAppsWorkload maps a cell to its workload instance. The zipf
// axis steers key popularity in all three (item popularity for the
// application workloads); txn and cross only shape KV.
func buildAppsWorkload(c workload.Cell, opt appsOptions) (workload.Workload, error) {
	zipf, err := strconv.ParseFloat(c["zipf"], 64)
	if err != nil {
		return nil, fmt.Errorf("bad zipf %q: %w", c["zipf"], err)
	}
	switch c["workload"] {
	case "kv":
		txnSize, err := strconv.Atoi(c["txn"])
		if err != nil {
			return nil, fmt.Errorf("bad txn %q: %w", c["txn"], err)
		}
		cross, err := strconv.ParseFloat(c["cross"], 64)
		if err != nil {
			return nil, fmt.Errorf("bad cross %q: %w", c["cross"], err)
		}
		dpus, err := strconv.Atoi(c["dpus"])
		if err != nil {
			return nil, fmt.Errorf("bad dpus %q: %w", c["dpus"], err)
		}
		return workload.NewKV(host.TrafficConfig{
			Ops: opt.Txns, Rate: opt.Rate, ReadPct: opt.ReadPct,
			Keyspace: opt.Keyspace, ZipfS: zipf, Seed: opt.Seed,
			TxnSize: txnSize, CrossDPU: cross, DPUs: dpus,
		}), nil
	case "neworder":
		return workload.NewNewOrder(workload.NewOrderConfig{
			Txns: opt.Txns, Rate: opt.Rate, Seed: opt.Seed, ItemZipfS: zipf,
		})
	case "auction":
		// Funds sized so eager bidders run dry mid-trace: the guard
		// abort path must show up in the artifact, not just in tests.
		return workload.NewAuction(workload.AuctionConfig{
			Txns: opt.Txns, Rate: opt.Rate, Seed: opt.Seed, ItemZipfS: zipf,
			InitialFunds: 40, BidFrac: 0.4,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q", c["workload"])
	}
}

// runAppsCell serves one cell and proves its invariant.
func runAppsCell(m workload.Matrix, c workload.Cell, opt appsOptions) (appsScenario, error) {
	w, err := buildAppsWorkload(c, opt)
	if err != nil {
		return appsScenario{}, err
	}
	dpus, err := strconv.Atoi(c["dpus"])
	if err != nil {
		return appsScenario{}, fmt.Errorf("bad dpus %q: %w", c["dpus"], err)
	}
	alg, err := core.ParseAlgorithm(c["stm"])
	if err != nil {
		return appsScenario{}, err
	}
	factory, err := newServeScheduler(c["sched"], opt.MaxBatch, opt.MaxDelaySeconds)
	if err != nil {
		return appsScenario{}, err
	}
	policy := c["place"]
	if policy == "static" {
		policy = "none"
	}
	placement, reb, err := policyRebalance(policy, dpus, rebalanceOptions{WindowBatches: 3})
	if err != nil {
		return appsScenario{}, err
	}
	trace, err := w.Generate()
	if err != nil {
		return appsScenario{}, err
	}
	res, err := host.Serve(host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: dpus, Tasklets: opt.Tasklets,
			STM: core.Config{Algorithm: alg}, Mode: host.Pipelined,
			Placement:       placement,
			HostParallelism: opt.Parallelism,
		},
		Submit: host.SubmitterConfig{
			MaxBatch:        opt.MaxBatch,
			MaxDelaySeconds: opt.MaxDelaySeconds,
		},
		Rebalance:   reb,
		Scheduler:   factory,
		Trace:       trace,
		Preload:     w.Preload(),
		KeepResults: true,
	})
	if err != nil {
		return appsScenario{}, err
	}
	if res.Errors > 0 {
		return appsScenario{}, fmt.Errorf("%d/%d txns errored", res.Errors, res.Txns)
	}
	if res.Stats.GuardAborts != res.Aborted {
		return appsScenario{}, fmt.Errorf("guard-abort accounting drifted: stats %d, outcomes %d",
			res.Stats.GuardAborts, res.Aborted)
	}
	if err := w.Check(res.Store.Get, res.Results); err != nil {
		return appsScenario{}, fmt.Errorf("invariant: %w", err)
	}
	axes := map[string]string{}
	for k, v := range c {
		axes[k] = v
	}
	return appsScenario{
		Cell: m.CellID(c), Axes: axes,
		Txns: res.Txns, Ops: res.Ops,
		Aborted: res.Aborted, GuardAborts: res.Stats.GuardAborts,
		CoordinatedTxns: res.CoordinatedTxns, Batches: res.Batches,
		OpsPerSecond: res.OpsPerSecond,
		P50Seconds:   res.P50, P95Seconds: res.P95, P99Seconds: res.P99,
		Makespan:     res.MakespanSeconds,
		KeysMigrated: res.Rebalance.KeysMigrated, KeysSplit: res.Rebalance.KeysSplit,
		SplitReconciles: res.SplitReconciles,
		Invariant:       "ok",
	}, nil
}

// runApps expands the matrix, serves every selected cell, renders the
// table to w, and writes BENCH_apps.json when opt.Out is set.
func runApps(opt appsOptions, out io.Writer) ([]appsScenario, error) {
	opt.fill()
	m := appsMatrix(opt.MinCells)
	cells, cov, err := m.Expand(opt.Seed)
	if err != nil {
		return nil, err
	}
	scenarios := make([]appsScenario, 0, len(cells))
	for _, c := range cells {
		sc, err := runAppsCell(m, c, opt)
		if err != nil {
			return nil, fmt.Errorf("apps cell %s: %w", m.CellID(c), err)
		}
		scenarios = append(scenarios, sc)
	}

	fmt.Fprintf(out, "== apps: application-workload scenario matrix (%d of %d valid cells, %d/%d axis pairs, %d txns/cell) ==\n",
		cov.Selected, cov.ValidCells, cov.PairsCovered, cov.PairsTotal, opt.Txns)
	fmt.Fprintln(out, hostParHeader(opt.Parallelism))
	fmt.Fprintf(out, "%-9s %5s %5s %4s %6s %-5s %-8s %-10s %7s %7s %12s %12s %5s\n",
		"workload", "#DPUs", "zipf", "txn", "cross", "sched", "place", "stm", "abort", "guard", "ops/s", "p99 ms", "inv")
	for _, sc := range scenarios {
		fmt.Fprintf(out, "%-9s %5s %5s %4s %6s %-5s %-8s %-10s %7d %7d %12.0f %12.3f %5s\n",
			sc.Axes["workload"], sc.Axes["dpus"], sc.Axes["zipf"], sc.Axes["txn"], sc.Axes["cross"],
			sc.Axes["sched"], sc.Axes["place"], sc.Axes["stm"],
			sc.Aborted, sc.GuardAborts, sc.OpsPerSecond, sc.P99Seconds*1e3, sc.Invariant)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(appsReport{
			SchemaVersion: 1,
			Experiment:    "apps",
			Coverage: appsCoverage{
				RawCells: cov.RawCells, ValidCells: cov.ValidCells, Selected: cov.Selected,
				Excluded:   cov.Excluded,
				PairsTotal: cov.PairsTotal, PairsCovered: cov.PairsCovered,
				AxisValues: cov.AxisValues,
			},
			Scenarios: scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
