package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// findRow pulls one (cell, policy) row out of the sweep.
func findRow(t *testing.T, scenarios []rebalanceScenario, hotFrac float64, zipf float64, policy string) rebalanceScenario {
	t.Helper()
	for _, sc := range scenarios {
		if sc.HotWriteFrac == hotFrac && sc.ZipfS == zipf && sc.Policy == policy {
			return sc
		}
	}
	t.Fatalf("no row for hotFrac %g zipf %g policy %s", hotFrac, zipf, policy)
	return rebalanceScenario{}
}

// TestRunRebalance is the acceptance gate for the placement-policy
// ablation, on a miniature version of the artifact sweep. Three claims:
//
//  1. Uniform traffic: no policy churns, and every policy row carries
//     the exact same serving numbers as the static baseline (the
//     hysteresis guarantee — the sweep itself additionally enforces
//     split == migrate on every add-free cell).
//  2. Skewed read-heavy traffic: replication beats the static baseline
//     on both ops/s and p99, paid for by real control-plane actions.
//  3. The hot write-heavy counter cell: splitting beats migration ≥ 2×
//     on both ops/s and p99 — migration just relocates the bottleneck
//     kernel, per-DPU delta shards dissolve it.
func TestRunRebalance(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_rebalance.json")
	var sb strings.Builder
	scenarios, err := runRebalance(rebalanceOptions{
		Fleets:   []int{4},
		Skews:    []float64{0, 1.2},
		ReadPcts: []int{99},
		Rate:     1.2e6,
		Ops:      7680,
		Keyspace: 2560,
		MaxBatch: 768,
		Out:      out,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// 3 cells (uniform, zipf 1.2, hot counter) × 4 policies.
	if len(scenarios) != 12 {
		t.Fatalf("scenarios = %d, want 12", len(scenarios))
	}

	// Uniform cell: every policy is inert and matches the baseline.
	base := findRow(t, scenarios, 0, 0, "none")
	for _, policy := range []string{"replicate", "migrate", "split"} {
		sc := findRow(t, scenarios, 0, 0, policy)
		if sc.WindowsActed != 0 || sc.KeysReplicated != 0 || sc.KeysMigrated != 0 || sc.KeysSplit != 0 {
			t.Fatalf("uniform cell churned under %s: %+v", policy, sc)
		}
		if !samePolicyNumbers(base, sc) {
			// Control-plane counters differ (WindowsEvaluated ticks), so
			// compare the serving numbers only.
			if sc.OpsPerSecond != base.OpsPerSecond || sc.P99Seconds != base.P99Seconds ||
				sc.Batches != base.Batches || sc.Makespan != base.Makespan {
				t.Fatalf("uniform cell diverged under %s:\nnone %+v\n%s %+v", policy, base, policy, sc)
			}
		}
	}

	// Skewed read-heavy cell: replication wins over static.
	skewNone := findRow(t, scenarios, 0, 1.2, "none")
	skewRepl := findRow(t, scenarios, 0, 1.2, "replicate")
	if skewRepl.OpsPerSecond <= skewNone.OpsPerSecond {
		t.Fatalf("zipf 1.2: replicate ops/s %.0f, static %.0f, want a win",
			skewRepl.OpsPerSecond, skewNone.OpsPerSecond)
	}
	if skewRepl.P99Seconds >= skewNone.P99Seconds {
		t.Fatalf("zipf 1.2: replicate p99 %.6f, static %.6f, want a win",
			skewRepl.P99Seconds, skewNone.P99Seconds)
	}
	if skewRepl.WindowsActed == 0 || skewRepl.KeysReplicated == 0 {
		t.Fatalf("skewed cell won without acting: %+v", skewRepl)
	}

	// Hot counter cell: split is the only policy that dissolves the
	// commutative bottleneck.
	hotMig := findRow(t, scenarios, 0.9, 0, "migrate")
	hotSpl := findRow(t, scenarios, 0.9, 0, "split")
	if hotSpl.KeysSplit == 0 {
		t.Fatalf("hot cell never split: %+v", hotSpl)
	}
	if gain := hotSpl.OpsPerSecond / hotMig.OpsPerSecond; gain < 2 {
		t.Fatalf("hot cell: split ops/s gain %.3fx over migrate, want ≥ 2", gain)
	}
	if gain := hotMig.P99Seconds / hotSpl.P99Seconds; gain < 2 {
		t.Fatalf("hot cell: split p99 gain %.3fx over migrate, want ≥ 2", gain)
	}

	if !strings.Contains(sb.String(), "rebalance") {
		t.Fatalf("table incomplete:\n%s", sb.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report rebalanceReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 2 || report.Experiment != "rebalance" || len(report.Scenarios) != 12 {
		t.Fatalf("artifact wrong: schema %d experiment %q scenarios %d",
			report.SchemaVersion, report.Experiment, len(report.Scenarios))
	}
}

// TestRunRebalanceCellSelectors pins the -rebal-cells knob: "hot" runs
// only the counter cell, "uniform" only the grid, and an unknown
// selector errors.
func TestRunRebalanceCellSelectors(t *testing.T) {
	var sb strings.Builder
	mini := rebalanceOptions{
		Fleets:   []int{4},
		Skews:    []float64{0},
		ReadPcts: []int{99},
		Policies: []string{"none"},
		Rate:     1.2e6,
		Ops:      1920,
		Keyspace: 2560,
		MaxBatch: 768,
	}

	mini.Cells = "hot"
	scenarios, err := runRebalance(mini, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].HotWriteFrac == 0 {
		t.Fatalf("hot selector: %+v", scenarios)
	}

	mini.Cells = "uniform"
	scenarios, err = runRebalance(mini, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 || scenarios[0].HotWriteFrac != 0 {
		t.Fatalf("uniform selector: %+v", scenarios)
	}

	mini.Cells = "bogus"
	if _, err := runRebalance(mini, &sb); err == nil {
		t.Fatal("bogus cell selector accepted")
	}

	mini.Cells = "uniform"
	mini.Policies = []string{"bogus"}
	if _, err := runRebalance(mini, &sb); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
