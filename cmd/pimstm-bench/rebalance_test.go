package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRebalance is the acceptance gate for the skew-adaptive
// placement experiment, on a miniature version of the artifact sweep:
// the directory placement with rebalancing must beat static hash on
// both ops/s and p99 at Zipf 1.2 on the read-heavy mix, and must match
// it exactly on uniform traffic (the hysteresis guarantee — no actions,
// identical routing, identical numbers).
func TestRunRebalance(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_rebalance.json")
	var sb strings.Builder
	scenarios, err := runRebalance(rebalanceOptions{
		Fleets:   []int{4},
		Skews:    []float64{0, 1.2},
		ReadPcts: []int{99},
		Rate:     1.2e6,
		Ops:      7680,
		Keyspace: 2560,
		MaxBatch: 768,
		Out:      out,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	for _, sc := range scenarios {
		if sc.ZipfS == 0 {
			// Uniform: the trigger never fires, the directory stays
			// empty, and both placements route identically.
			if sc.Control.WindowsActed != 0 || sc.Control.KeysReplicated != 0 || sc.Control.KeysMigrated != 0 {
				t.Fatalf("uniform cell churned: %+v", sc.Control)
			}
			if sc.Static != sc.Directory {
				t.Fatalf("uniform cell diverged:\nstatic    %+v\ndirectory %+v", sc.Static, sc.Directory)
			}
			continue
		}
		// Skewed read-heavy: the adaptive placement must win both ways,
		// with the win paid for by real control-plane actions.
		if sc.OpsGain <= 1 {
			t.Fatalf("zipf %.1f: directory ops/s gain %.3fx, want > 1", sc.ZipfS, sc.OpsGain)
		}
		if sc.P99Gain <= 1 {
			t.Fatalf("zipf %.1f: directory p99 gain %.3fx, want > 1", sc.ZipfS, sc.P99Gain)
		}
		if sc.Control.WindowsActed == 0 || sc.Control.KeysReplicated == 0 {
			t.Fatalf("skewed cell won without acting: %+v", sc.Control)
		}
	}
	if !strings.Contains(sb.String(), "rebalance") {
		t.Fatalf("table incomplete:\n%s", sb.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report rebalanceReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 1 || report.Experiment != "rebalance" || len(report.Scenarios) != 2 {
		t.Fatalf("artifact wrong: %+v", report)
	}
}
