package main

import (
	"math"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 3,11")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 11 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %f", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if g := geomean([]float64{3}); g != 3 {
		t.Fatalf("singleton geomean = %f", g)
	}
}
