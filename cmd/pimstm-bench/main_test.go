package main

import (
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pimstm/internal/core"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 3,11")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 11 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseAlgorithms(t *testing.T) {
	got, err := parseAlgorithms("norec, Tiny ETLWB")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != core.NOrec || got[1] != core.TinyETLWB {
		t.Fatalf("parseAlgorithms = %v", got)
	}
	if _, err := parseAlgorithms("norec,nosuch"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

// TestRunMultiDPU drives a miniature sweep end to end: table rendered,
// JSON artifact written and parseable, and the pipelined wall-clock
// beating the lockstep baseline in every scenario.
func TestRunMultiDPU(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_multidpu.json")
	var sb strings.Builder
	scenarios, err := runMultiDPU(multiDPUOptions{
		Fleets:      []int{1, 4},
		Algs:        []core.Algorithm{core.NOrec},
		ReadPcts:    []int{90},
		Batches:     3,
		OpsPerBatch: 48,
		Tasklets:    4,
		Out:         out,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 2 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	for _, sc := range scenarios {
		if sc.PipelinedSeconds >= sc.LockstepSeconds {
			t.Fatalf("%d DPUs: pipelined %.6fs not beating lockstep %.6fs",
				sc.DPUs, sc.PipelinedSeconds, sc.LockstepSeconds)
		}
		if sc.OpsPerSecond <= 0 || sc.LaunchSeconds <= 0 || sc.TransferSeconds <= 0 {
			t.Fatalf("degenerate scenario: %+v", sc)
		}
	}
	if !strings.Contains(sb.String(), "pipelined") || !strings.Contains(sb.String(), "NOrec") {
		t.Fatalf("table incomplete:\n%s", sb.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report multiDPUReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 1 || report.Experiment != "multidpu" || len(report.Scenarios) != 2 {
		t.Fatalf("artifact wrong: %+v", report)
	}
}

// TestUnknownExperimentRejected: a typo'd -experiment must exit
// non-zero and print the valid experiment list, not silently run
// nothing useful.
func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cmd := exec.Command("go", "run", ".", "-experiment", "nosuch")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
	if !strings.Contains(string(out), `unknown experiment "nosuch"`) {
		t.Fatalf("missing error message:\n%s", out)
	}
	for _, name := range experimentList {
		if !strings.Contains(string(out), name) {
			t.Fatalf("valid experiment %q not listed in:\n%s", name, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %f", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if g := geomean([]float64{3}); g != 3 {
		t.Fatalf("singleton geomean = %f", g)
	}
}
