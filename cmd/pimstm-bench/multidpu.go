package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// multiDPUOptions parameterize the multi-DPU serving sweep: fleet size
// × STM algorithm × read/write mix, every cell run through the
// host.Fleet pipeline on the partitioned KV store.
type multiDPUOptions struct {
	// Fleets lists the DPU counts to sweep (acceptance floor: ≥ {1, 8, 64}).
	Fleets []int
	// Algs are the intra-DPU STM algorithms to compare.
	Algs []core.Algorithm
	// ReadPcts lists the read percentages of the mixed batches.
	ReadPcts []int
	// Batches and OpsPerBatch shape the streamed serving load.
	Batches, OpsPerBatch int
	// Tasklets is the intra-DPU parallelism.
	Tasklets int
	// Parallelism is the host-side worker-pool setting (0 = GOMAXPROCS,
	// 1 = serial reference).
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *multiDPUOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{1, 8, 64}
	}
	if len(o.Algs) == 0 {
		o.Algs = []core.Algorithm{core.NOrec, core.TinyETLWB, core.VRETLWB}
	}
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = []int{90, 50}
	}
	if o.Batches == 0 {
		o.Batches = 6
	}
	if o.OpsPerBatch == 0 {
		o.OpsPerBatch = 256
	}
	if o.Tasklets == 0 {
		o.Tasklets = 11
	}
}

// multiDPUScenario is one machine-readable cell of BENCH_multidpu.json.
type multiDPUScenario struct {
	DPUs             int     `json:"dpus"`
	Algorithm        string  `json:"algorithm"`
	ReadPct          int     `json:"read_pct"`
	Batches          int     `json:"batches"`
	OpsPerBatch      int     `json:"ops_per_batch"`
	PipelinedSeconds float64 `json:"pipelined_seconds"`
	LockstepSeconds  float64 `json:"lockstep_seconds"`
	PipelineGain     float64 `json:"pipeline_gain"`
	LaunchSeconds    float64 `json:"launch_seconds"`
	TransferSeconds  float64 `json:"transfer_seconds"`
	QuiescentSeconds float64 `json:"quiescent_seconds"`
	OpsPerSecond     float64 `json:"ops_per_s"`
}

// multiDPUReport is the top-level JSON artifact.
type multiDPUReport struct {
	SchemaVersion int                `json:"schema_version"`
	Experiment    string             `json:"experiment"`
	Scenarios     []multiDPUScenario `json:"scenarios"`
}

// runMultiDPUCell streams the serving workload of one sweep cell
// through a pipelined PartitionedMap and reports its modeled timing
// (the fleet tracks the lockstep-equivalent cost alongside, so one run
// yields both sides of the comparison).
func runMultiDPUCell(dpus int, alg core.Algorithm, readPct int, opt multiDPUOptions) (multiDPUScenario, error) {
	keyspace := 2 * opt.OpsPerBatch
	pm, err := host.NewPartitionedMap(host.PartitionedMapConfig{
		DPUs: dpus, Buckets: 256, Capacity: 2 * keyspace, Tasklets: opt.Tasklets,
		STM: core.Config{Algorithm: alg}, Mode: host.Pipelined,
		HostParallelism: opt.Parallelism,
	})
	if err != nil {
		return multiDPUScenario{}, err
	}

	// Load phase: populate the keyspace in one batch.
	ops := make([]host.Op, keyspace)
	for k := range ops {
		ops[k] = host.Op{Kind: host.OpPut, Key: uint64(k), Value: uint64(k)}
	}
	if _, err := pm.ApplyBatch(ops); err != nil {
		return multiDPUScenario{}, err
	}
	loaded := pm.Stats() // baseline, so the cell reports serving time only

	// Serving phase: Batches mixed batches streamed back to back
	// through the pipeline.
	rng := host.Rand64(uint64(dpus)*1e9 + uint64(readPct)*31 + 1)
	next := rng.Next
	total := 0
	for b := 0; b < opt.Batches; b++ {
		ops = ops[:0]
		for i := 0; i < opt.OpsPerBatch; i++ {
			key := next() % uint64(keyspace)
			if int(next()%100) < readPct {
				ops = append(ops, host.Op{Kind: host.OpGet, Key: key})
			} else {
				ops = append(ops, host.Op{Kind: host.OpPut, Key: key, Value: next()})
			}
		}
		res, err := pm.ApplyBatch(ops)
		if err != nil {
			return multiDPUScenario{}, err
		}
		for i, r := range res {
			if r.Err != nil {
				return multiDPUScenario{}, fmt.Errorf("batch %d op %d: %w", b, i, r.Err)
			}
		}
		total += len(ops)
	}

	// Report the serving phase alone: the cumulative fleet stats minus
	// the load-phase baseline, so ops_per_s and the pipeline gain
	// describe exactly the batches × ops_per_batch sweep of the cell.
	s := pm.Stats()
	wall := s.WallSeconds - loaded.WallSeconds
	lockstep := s.LockstepSeconds - loaded.LockstepSeconds
	launch := s.LaunchSeconds - loaded.LaunchSeconds
	return multiDPUScenario{
		DPUs:             dpus,
		Algorithm:        alg.String(),
		ReadPct:          readPct,
		Batches:          opt.Batches,
		OpsPerBatch:      opt.OpsPerBatch,
		PipelinedSeconds: wall,
		LockstepSeconds:  lockstep,
		PipelineGain:     lockstep / wall,
		LaunchSeconds:    launch,
		TransferSeconds:  s.TransferSeconds - loaded.TransferSeconds,
		QuiescentSeconds: wall - launch,
		OpsPerSecond:     float64(total) / wall,
	}, nil
}

// runMultiDPU sweeps fleet size × algorithm × read mix, renders the
// table to w, and writes BENCH_multidpu.json when opt.Out is set.
func runMultiDPU(opt multiDPUOptions, w io.Writer) ([]multiDPUScenario, error) {
	opt.fill()
	var scenarios []multiDPUScenario
	for _, n := range opt.Fleets {
		for _, alg := range opt.Algs {
			for _, pct := range opt.ReadPcts {
				sc, err := runMultiDPUCell(n, alg, pct, opt)
				if err != nil {
					return nil, fmt.Errorf("multidpu %d DPUs %v %d%% reads: %w", n, alg, pct, err)
				}
				scenarios = append(scenarios, sc)
			}
		}
	}

	fmt.Fprintf(w, "== multidpu: fleet serving sweep (%d batches × %d ops, pipelined vs lockstep) ==\n",
		opt.Batches, opt.OpsPerBatch)
	fmt.Fprintln(w, hostParHeader(opt.Parallelism))
	fmt.Fprintf(w, "%6s %-12s %6s %14s %14s %8s %14s\n",
		"#DPUs", "STM", "reads", "pipelined ms", "lockstep ms", "gain", "ops/s")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %-12s %5d%% %14.3f %14.3f %7.2fx %14.0f\n",
			sc.DPUs, sc.Algorithm, sc.ReadPct,
			sc.PipelinedSeconds*1e3, sc.LockstepSeconds*1e3, sc.PipelineGain, sc.OpsPerSecond)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(multiDPUReport{
			SchemaVersion: 1,
			Experiment:    "multidpu",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}

// parseAlgorithms resolves a comma-separated algorithm list.
func parseAlgorithms(s string) ([]core.Algorithm, error) {
	var out []core.Algorithm
	for _, name := range strings.Split(s, ",") {
		a, err := core.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
