package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimstm/internal/core"
)

// TestRunServe drives a miniature serving sweep end to end: table
// rendered, JSON artifact written, byte-identical across same-seed
// runs, and the pipelined tail beating lockstep at a saturating rate.
func TestRunServe(t *testing.T) {
	opt := serveOptions{
		Fleets:   []int{1, 4},
		Algs:     []core.Algorithm{core.NOrec},
		Skews:    []float64{0, 1.5},
		Rates:    []float64{2e5}, // past lockstep capacity: queueing visible
		ReadPct:  90,
		Ops:      400,
		Keyspace: 256,
		MaxBatch: 32,
		Seed:     1,
	}
	run := func(out string) []serveScenario {
		o := opt
		o.Out = out
		var sb strings.Builder
		scenarios, err := runServe(o, &sb)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "pipe p99") || !strings.Contains(sb.String(), "NOrec") {
			t.Fatalf("table incomplete:\n%s", sb.String())
		}
		return scenarios
	}

	out1 := filepath.Join(t.TempDir(), "a.json")
	out2 := filepath.Join(t.TempDir(), "b.json")
	scenarios := run(out1)
	run(out2)

	if len(scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	for _, sc := range scenarios {
		p, l := sc.Pipelined, sc.Lockstep
		if p.P50Seconds <= 0 || p.P50Seconds > p.P95Seconds || p.P95Seconds > p.P99Seconds {
			t.Fatalf("percentiles degenerate: %+v", sc)
		}
		if p.P99Seconds >= l.P99Seconds {
			t.Fatalf("%d DPUs zipf %g: pipelined p99 %.6fs not beating lockstep %.6fs",
				sc.DPUs, sc.ZipfS, p.P99Seconds, l.P99Seconds)
		}
		if sc.P99Gain <= 1 {
			t.Fatalf("p99 gain %.3f", sc.P99Gain)
		}
		if p.OpsPerSecond <= 0 || p.Batches == 0 || p.MeanBatchOps <= 0 {
			t.Fatalf("degenerate mode result: %+v", sc)
		}
	}

	// Same seed ⇒ byte-identical artifact (the reproducibility
	// acceptance criterion).
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same-seed serve artifacts differ")
	}

	var report serveReport
	if err := json.Unmarshal(a, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 1 || report.Experiment != "serve" || len(report.Scenarios) != 4 {
		t.Fatalf("artifact wrong: %+v", report)
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0, 1.2,2e5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1.2 || got[2] != 2e5 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}
