package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunApps is the acceptance gate for the scenario-matrix
// experiment, on a reduced cell budget. The runner itself enforces the
// hard guarantees per cell (invariant proven, guard-abort accounting
// exact, no errored transactions); this test pins the matrix-level
// contract: every workload and every declared axis value reaches at
// least one executed row, rows are sorted by cell identity, the abort
// paths actually fire somewhere in the matrix, and the artifact is
// well-formed schema-v1 JSON with a balanced coverage ledger.
func TestRunApps(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_apps.json")
	var sb strings.Builder
	scenarios, err := runApps(appsOptions{Txns: 200, MinCells: 1, Out: out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < 10 {
		t.Fatalf("only %d cells ran; the pairwise cover should need more", len(scenarios))
	}

	m := appsMatrix(1)
	seen := map[string]map[string]bool{}
	guardAborts := 0
	for i, sc := range scenarios {
		if i > 0 && scenarios[i-1].Cell >= sc.Cell {
			t.Fatalf("rows unsorted: %q before %q", scenarios[i-1].Cell, sc.Cell)
		}
		if sc.Invariant != "ok" {
			t.Fatalf("cell %s published invariant %q", sc.Cell, sc.Invariant)
		}
		if sc.GuardAborts != sc.Aborted {
			t.Fatalf("cell %s: guard aborts %d != aborted %d", sc.Cell, sc.GuardAborts, sc.Aborted)
		}
		guardAborts += sc.GuardAborts
		for axis, v := range sc.Axes {
			if seen[axis] == nil {
				seen[axis] = map[string]bool{}
			}
			seen[axis][v] = true
		}
	}
	for _, ax := range m.Axes {
		for _, v := range ax.Values {
			if !seen[ax.Name][v] {
				t.Fatalf("axis %s=%s never executed", ax.Name, v)
			}
		}
	}
	if guardAborts == 0 {
		t.Fatal("no cell exercised the guard-abort path")
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep appsReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 1 || rep.Experiment != "apps" {
		t.Fatalf("artifact header: %+v", rep)
	}
	if len(rep.Scenarios) != len(scenarios) {
		t.Fatalf("artifact has %d rows, run produced %d", len(rep.Scenarios), len(scenarios))
	}
	excluded := 0
	for _, n := range rep.Coverage.Excluded {
		excluded += n
	}
	if rep.Coverage.RawCells != rep.Coverage.ValidCells+excluded {
		t.Fatalf("coverage ledger off: %+v", rep.Coverage)
	}
	if rep.Coverage.PairsCovered != rep.Coverage.PairsTotal {
		t.Fatalf("pairwise cover incomplete: %+v", rep.Coverage)
	}
}

// TestRunAppsDeterministic: same options, byte-identical artifact.
func TestRunAppsDeterministic(t *testing.T) {
	run := func(path string) []byte {
		var sb strings.Builder
		if _, err := runApps(appsOptions{Txns: 150, MinCells: 1, Out: path}, &sb); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	dir := t.TempDir()
	a := run(filepath.Join(dir, "a.json"))
	b := run(filepath.Join(dir, "b.json"))
	if string(a) != string(b) {
		t.Fatal("same-seed apps artifacts differ")
	}
}

// TestAppsArtifactPinned: the default apps sweep reproduces the
// committed BENCH_apps.json exactly.
func TestAppsArtifactPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep")
	}
	out := filepath.Join(t.TempDir(), "apps.json")
	_, err := runApps(appsOptions{Out: out}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := repoArtifact(t, "BENCH_apps.json"); string(got) != want {
		t.Fatal("regenerated BENCH_apps.json differs from the committed artifact: the apps matrix or a serving path changed (regenerate with `make apps` if intentional)")
	}
}
