package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimstm/internal/core"
)

// TestRunTxnServe drives a miniature transactional serving sweep end to
// end: table rendered, JSON artifact written and byte-identical across
// same-seed runs, cross-DPU transactions actually coordinated, and the
// mixed-fraction cells paying for their extra coordination rounds.
func TestRunTxnServe(t *testing.T) {
	opt := txnServeOptions{
		Fleets:     []int{2, 4},
		Algs:       []core.Algorithm{core.NOrec},
		TxnSizes:   []int{1, 2},
		CrossFracs: []float64{0, 0.5, 1},
		Skews:      []float64{0},
		Rate:       4e4,
		ReadPct:    80,
		Txns:       200,
		Keyspace:   256,
		MaxBatch:   32,
		Seed:       1,
	}
	run := func(out string) []txnServeScenario {
		o := opt
		o.Out = out
		var sb strings.Builder
		scenarios, err := runTxnServe(o, &sb)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "coord") || !strings.Contains(sb.String(), "NOrec") {
			t.Fatalf("table incomplete:\n%s", sb.String())
		}
		return scenarios
	}

	out1 := filepath.Join(t.TempDir(), "a.json")
	out2 := filepath.Join(t.TempDir(), "b.json")
	scenarios := run(out1)
	run(out2)

	// 2 fleets × (size 1 with cross 0 only, size 2 with three fractions).
	if len(scenarios) != 8 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	cell := func(dpus, size int, cross float64) txnServeScenario {
		for _, sc := range scenarios {
			if sc.DPUs == dpus && sc.TxnSize == size && sc.CrossDPU == cross {
				return sc
			}
		}
		t.Fatalf("cell %d/%d/%g missing", dpus, size, cross)
		return txnServeScenario{}
	}
	for _, sc := range scenarios {
		if sc.P50Seconds <= 0 || sc.P50Seconds > sc.P95Seconds || sc.P95Seconds > sc.P99Seconds {
			t.Fatalf("percentiles degenerate: %+v", sc)
		}
		if sc.OpsPerSecond <= 0 || sc.Batches == 0 {
			t.Fatalf("degenerate cell: %+v", sc)
		}
		if sc.Ops != sc.Txns*sc.TxnSize {
			t.Fatalf("op accounting off: %+v", sc)
		}
		if sc.CrossDPU == 0 && sc.CoordinatedTxns != 0 {
			t.Fatalf("confined cell coordinated %d txns: %+v", sc.CoordinatedTxns, sc)
		}
		if sc.CrossDPU == 1 && sc.TxnSize > 1 && sc.CoordinatedTxns != sc.Txns {
			t.Fatalf("cross cell coordinated only %d/%d txns", sc.CoordinatedTxns, sc.Txns)
		}
	}
	for _, dpus := range []int{2, 4} {
		mixed := cell(dpus, 2, 0.5)
		pure0 := cell(dpus, 2, 0)
		pure1 := cell(dpus, 2, 1)
		if mixed.P99Seconds <= pure0.P99Seconds || mixed.P99Seconds <= pure1.P99Seconds {
			t.Fatalf("%d DPUs: mixed batches must pay the extra coordination rounds: p99 %.6f vs %.6f/%.6f",
				dpus, mixed.P99Seconds, pure0.P99Seconds, pure1.P99Seconds)
		}
	}

	// Same seed ⇒ byte-identical artifact.
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same-seed txnserve artifacts differ")
	}

	var report txnServeReport
	if err := json.Unmarshal(a, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 1 || report.Experiment != "txnserve" || len(report.Scenarios) != 8 {
		t.Fatalf("artifact wrong: %+v", report)
	}
}
