package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimstm/internal/core"
)

// TestRunTxnServe drives a miniature transactional serving sweep end to
// end: table rendered, JSON artifact written and byte-identical across
// same-seed runs, cross-DPU transactions actually coordinated, the
// mixed-fraction cells paying for their extra coordination rounds under
// FIFO, and the lane scheduler closing that cliff — lower mixed-batch
// p99 than FIFO with no throughput regression on pure streams.
func TestRunTxnServe(t *testing.T) {
	opt := txnServeOptions{
		Fleets:     []int{2, 4},
		Algs:       []core.Algorithm{core.NOrec},
		TxnSizes:   []int{1, 2},
		CrossFracs: []float64{0, 0.5, 1},
		Skews:      []float64{0},
		Scheds:     []string{"fifo", "lane"},
		Rate:       4e4,
		ReadPct:    80,
		Txns:       200,
		Keyspace:   256,
		MaxBatch:   32,
		Seed:       1,
	}
	run := func(out string) []txnServeScenario {
		o := opt
		o.Out = out
		var sb strings.Builder
		scenarios, err := runTxnServe(o, &sb)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "coord") || !strings.Contains(sb.String(), "NOrec") ||
			!strings.Contains(sb.String(), "lane") {
			t.Fatalf("table incomplete:\n%s", sb.String())
		}
		return scenarios
	}

	out1 := filepath.Join(t.TempDir(), "a.json")
	out2 := filepath.Join(t.TempDir(), "b.json")
	scenarios := run(out1)
	run(out2)

	// Per scheduler: 2 fleets × (size 1 with cross 0 only, size 2 with
	// three fractions).
	if len(scenarios) != 16 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	cell := func(sched string, dpus, size int, cross float64) txnServeScenario {
		for _, sc := range scenarios {
			if sc.Scheduler == sched && sc.DPUs == dpus && sc.TxnSize == size && sc.CrossDPU == cross {
				return sc
			}
		}
		t.Fatalf("cell %s/%d/%d/%g missing", sched, dpus, size, cross)
		return txnServeScenario{}
	}
	for _, sc := range scenarios {
		if sc.P50Seconds <= 0 || sc.P50Seconds > sc.P95Seconds || sc.P95Seconds > sc.P99Seconds {
			t.Fatalf("percentiles degenerate: %+v", sc)
		}
		if sc.OpsPerSecond <= 0 || sc.Batches == 0 {
			t.Fatalf("degenerate cell: %+v", sc)
		}
		if sc.Ops != sc.Txns*sc.TxnSize {
			t.Fatalf("op accounting off: %+v", sc)
		}
		if sc.CrossDPU == 0 && sc.CoordinatedTxns != 0 {
			t.Fatalf("confined cell coordinated %d txns: %+v", sc.CoordinatedTxns, sc)
		}
		if sc.CrossDPU == 0 && (sc.GatherSeconds != 0 || sc.ApplySeconds != 0 || sc.WritebackSeconds != 0) {
			t.Fatalf("confined cell recorded coordination phases: %+v", sc)
		}
		if sc.CrossDPU > 0 && sc.TxnSize > 1 &&
			(sc.GatherSeconds <= 0 || sc.ApplySeconds <= 0 || sc.WritebackSeconds <= 0) {
			t.Fatalf("coordinating cell missing a phase split: %+v", sc)
		}
		if sc.CrossDPU == 1 && sc.TxnSize > 1 && sc.CoordinatedTxns != sc.Txns {
			t.Fatalf("cross cell coordinated only %d/%d txns", sc.CoordinatedTxns, sc.Txns)
		}
		switch sc.Scheduler {
		case "fifo":
			if sc.ConfinedBatches != 0 || sc.CoordinatedBatches != 0 {
				t.Fatalf("fifo batches must be unlaned: %+v", sc)
			}
		case "lane":
			if sc.ConfinedBatches+sc.CoordinatedBatches != sc.Batches {
				t.Fatalf("lane batches must partition Batches: %+v", sc)
			}
			if sc.CrossDPU == 0 && sc.CoordinatedBatches != 0 {
				t.Fatalf("pure confined cell flushed coordinated batches: %+v", sc)
			}
			if sc.CrossDPU == 1 && sc.TxnSize > 1 && sc.ConfinedBatches != 0 {
				t.Fatalf("pure cross cell flushed confined batches: %+v", sc)
			}
		}
	}
	for _, dpus := range []int{2, 4} {
		mixed := cell("fifo", dpus, 2, 0.5)
		pure0 := cell("fifo", dpus, 2, 0)
		pure1 := cell("fifo", dpus, 2, 1)
		if mixed.P99Seconds <= pure0.P99Seconds || mixed.P99Seconds <= pure1.P99Seconds {
			t.Fatalf("%d DPUs: mixed FIFO batches must pay the extra coordination rounds: p99 %.6f vs %.6f/%.6f",
				dpus, mixed.P99Seconds, pure0.P99Seconds, pure1.P99Seconds)
		}

		// The scheduler-axis acceptance: homogeneous lanes cut the
		// mixed-batch tail and never regress the pure streams.
		lmixed := cell("lane", dpus, 2, 0.5)
		if lmixed.P99Seconds >= mixed.P99Seconds {
			t.Fatalf("%d DPUs: lane scheduling must cut the mixed-batch p99: %.6f vs fifo %.6f",
				dpus, lmixed.P99Seconds, mixed.P99Seconds)
		}
		for _, cross := range []float64{0, 1} {
			f, l := cell("fifo", dpus, 2, cross), cell("lane", dpus, 2, cross)
			if l.OpsPerSecond < f.OpsPerSecond {
				t.Fatalf("%d DPUs cross %g: lane throughput regressed: %.0f vs %.0f",
					dpus, cross, l.OpsPerSecond, f.OpsPerSecond)
			}
		}
		// A pure confined stream takes the identical serving path.
		if f, l := cell("fifo", dpus, 2, 0), cell("lane", dpus, 2, 0); f.P99Seconds != l.P99Seconds || f.OpsPerSecond != l.OpsPerSecond {
			t.Fatalf("%d DPUs: pure confined stream must be identical under lane: %+v vs %+v", dpus, l, f)
		}
	}

	// Same seed ⇒ byte-identical artifact.
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same-seed txnserve artifacts differ")
	}

	var report txnServeReport
	if err := json.Unmarshal(a, &report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != 3 || report.Experiment != "txnserve" || len(report.Scenarios) != 16 {
		t.Fatalf("artifact wrong: %+v", report)
	}
}

// TestNewServeScheduler: every sweepable name resolves, unknown names
// are rejected with the valid list.
func TestNewServeScheduler(t *testing.T) {
	for _, name := range []string{"lane", "adaptive"} {
		f, err := newServeScheduler(name, 32, 300e-6)
		if err != nil || f == nil {
			t.Fatalf("%s: factory nil=%v, err=%v", name, f == nil, err)
		}
		if got := f().Name(); got != name {
			t.Fatalf("factory for %q built a %q scheduler", name, got)
		}
	}
	if f, err := newServeScheduler("fifo", 32, 300e-6); err != nil || f != nil {
		t.Fatalf("fifo must map to the submitter default (nil factory), got nil=%v, err=%v", f == nil, err)
	}
	if _, err := newServeScheduler("sjf", 32, 300e-6); err == nil || !strings.Contains(err.Error(), "fifo, lane, adaptive") {
		t.Fatalf("unknown scheduler accepted or error unhelpful: %v", err)
	}
}
