package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// rebalanceOptions parameterize the skew-adaptive placement sweep:
// fleet size × key-popularity skew × read mix, each cell served twice
// through the pipelined adaptive batcher — once on the static hash
// placement, once on a Directory placement with the Rebalancer in the
// loop — at the same open-loop arrival rate.
//
// The interesting regime is kernel-bound batches: MaxBatch is sized so
// a Zipf-skewed batch's worst-case per-DPU bucket costs more kernel
// time than the ~600 µs of transfer handshakes, which is exactly when
// spreading hot reads over replicas and migrating hot keys off the
// hottest DPU buys modeled throughput and tail latency.
type rebalanceOptions struct {
	// Fleets lists the DPU counts to sweep.
	Fleets []int
	// Skews are Zipf key-popularity exponents (0 = uniform).
	Skews []float64
	// ReadPcts lists the read mixes.
	ReadPcts []int
	// Rate is the open-loop arrival rate in ops per modeled second.
	Rate float64
	// Ops per scenario and the Keyspace they draw from.
	Ops, Keyspace int
	// MaxBatch and MaxDelaySeconds tune the adaptive batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// WindowBatches is the rebalancer's decision window.
	WindowBatches int
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *rebalanceOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{4, 8}
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = []int{99, 50}
	}
	if o.Rate == 0 {
		o.Rate = 3e6
	}
	if o.Ops == 0 {
		o.Ops = 38400
	}
	if o.Keyspace == 0 {
		o.Keyspace = 10240
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 2560
	}
	if o.MaxDelaySeconds == 0 {
		// Large enough that MaxBatch, not the delay bound, shapes the
		// batches at the default rate: the experiment studies placement
		// under kernel-bound batches, not thin delay-flushed ones.
		o.MaxDelaySeconds = 2e-3
	}
	if o.WindowBatches == 0 {
		o.WindowBatches = 3
	}
	if o.Tasklets == 0 {
		o.Tasklets = 11
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// rebalancePlacement is one placement's modeled outcome of a cell.
type rebalancePlacement struct {
	OpsPerSecond float64 `json:"ops_per_s"`
	P50Seconds   float64 `json:"p50_s"`
	P95Seconds   float64 `json:"p95_s"`
	P99Seconds   float64 `json:"p99_s"`
	Batches      int     `json:"batches"`
	Makespan     float64 `json:"makespan_s"`
}

// rebalanceControl reports what the control plane did in a cell.
type rebalanceControl struct {
	WindowsEvaluated int `json:"windows_evaluated"`
	WindowsActed     int `json:"windows_acted"`
	KeysReplicated   int `json:"keys_replicated"`
	KeysMigrated     int `json:"keys_migrated"`
}

// rebalanceScenario is one machine-readable cell of
// BENCH_rebalance.json.
type rebalanceScenario struct {
	DPUs          int                `json:"dpus"`
	ReadPct       int                `json:"read_pct"`
	ZipfS         float64            `json:"zipf_s"`
	RatePerSecond float64            `json:"rate_ops_per_s"`
	Ops           int                `json:"ops"`
	MaxBatch      int                `json:"max_batch"`
	Static        rebalancePlacement `json:"static"`
	Directory     rebalancePlacement `json:"directory"`
	Control       rebalanceControl   `json:"control"`
	// P99Gain is static p99 over directory p99, OpsGain directory
	// ops/s over static ops/s (> 1 = adaptive placement wins).
	P99Gain float64 `json:"p99_gain"`
	OpsGain float64 `json:"ops_gain"`
}

// rebalanceReport is the top-level JSON artifact.
type rebalanceReport struct {
	SchemaVersion int                 `json:"schema_version"`
	Experiment    string              `json:"experiment"`
	Scenarios     []rebalanceScenario `json:"scenarios"`
}

// runRebalanceCell serves one cell's trace under both placements.
func runRebalanceCell(dpus int, skew float64, readPct int, opt rebalanceOptions) (rebalanceScenario, error) {
	serve := func(placement host.Placement, reb *host.RebalancerConfig) (host.ServeResult, error) {
		return host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: dpus, Tasklets: opt.Tasklets,
				STM:       core.Config{Algorithm: core.NOrec},
				Mode:      host.Pipelined,
				Placement: placement,
			},
			Submit: host.SubmitterConfig{
				MaxBatch:        opt.MaxBatch,
				MaxDelaySeconds: opt.MaxDelaySeconds,
			},
			Traffic: host.TrafficConfig{
				Ops: opt.Ops, Rate: opt.Rate, ReadPct: readPct,
				Keyspace: opt.Keyspace, ZipfS: skew, Seed: opt.Seed,
			},
			Rebalance: reb,
		})
	}
	static, err := serve(nil, nil)
	if err != nil {
		return rebalanceScenario{}, err
	}
	rebCfg := host.KernelBoundServingRebalance(opt.WindowBatches)
	adaptive, err := serve(host.NewDirectory(dpus), &rebCfg)
	if err != nil {
		return rebalanceScenario{}, err
	}
	if static.Errors > 0 || adaptive.Errors > 0 {
		return rebalanceScenario{}, fmt.Errorf("%d/%d ops errored", static.Errors+adaptive.Errors, 2*opt.Ops)
	}
	pack := func(r host.ServeResult) rebalancePlacement {
		return rebalancePlacement{
			OpsPerSecond: r.OpsPerSecond,
			P50Seconds:   r.P50, P95Seconds: r.P95, P99Seconds: r.P99,
			Batches: r.Batches, Makespan: r.MakespanSeconds,
		}
	}
	sc := rebalanceScenario{
		DPUs: dpus, ReadPct: readPct, ZipfS: skew,
		RatePerSecond: opt.Rate, Ops: opt.Ops, MaxBatch: opt.MaxBatch,
		Static: pack(static), Directory: pack(adaptive),
		Control: rebalanceControl{
			WindowsEvaluated: adaptive.Rebalance.WindowsEvaluated,
			WindowsActed:     adaptive.Rebalance.WindowsActed,
			KeysReplicated:   adaptive.Rebalance.KeysReplicated,
			KeysMigrated:     adaptive.Rebalance.KeysMigrated,
		},
	}
	if adaptive.P99 > 0 {
		sc.P99Gain = static.P99 / adaptive.P99
	}
	if static.OpsPerSecond > 0 {
		sc.OpsGain = adaptive.OpsPerSecond / static.OpsPerSecond
	}
	return sc, nil
}

// runRebalance sweeps fleet × skew × read mix, renders the table to w,
// and writes BENCH_rebalance.json when opt.Out is set.
func runRebalance(opt rebalanceOptions, w io.Writer) ([]rebalanceScenario, error) {
	opt.fill()
	var scenarios []rebalanceScenario
	for _, n := range opt.Fleets {
		for _, skew := range opt.Skews {
			for _, pct := range opt.ReadPcts {
				sc, err := runRebalanceCell(n, skew, pct, opt)
				if err != nil {
					return nil, fmt.Errorf("rebalance %d DPUs zipf %g %d%% reads: %w", n, skew, pct, err)
				}
				scenarios = append(scenarios, sc)
			}
		}
	}

	fmt.Fprintf(w, "== rebalance: static hash vs directory placement with hot-key rebalancing (%d ops/cell, batch ≤ %d, %.0f ops/s open loop) ==\n",
		opt.Ops, opt.MaxBatch, opt.Rate)
	fmt.Fprintf(w, "%6s %6s %5s %13s %13s %8s %13s %13s %8s %5s %5s\n",
		"#DPUs", "reads", "zipf", "static ops/s", "dir ops/s", "gain",
		"static p99ms", "dir p99ms", "gain", "repl", "migr")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %5d%% %5.2f %13.0f %13.0f %7.2fx %13.3f %13.3f %7.2fx %5d %5d\n",
			sc.DPUs, sc.ReadPct, sc.ZipfS,
			sc.Static.OpsPerSecond, sc.Directory.OpsPerSecond, sc.OpsGain,
			sc.Static.P99Seconds*1e3, sc.Directory.P99Seconds*1e3, sc.P99Gain,
			sc.Control.KeysReplicated, sc.Control.KeysMigrated)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(rebalanceReport{
			SchemaVersion: 1,
			Experiment:    "rebalance",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
