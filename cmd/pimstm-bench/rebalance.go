package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// rebalanceOptions parameterize the placement-policy ablation: fleet
// size × traffic cell × control-plane policy, every cell served through
// the pipelined adaptive batcher at the same open-loop arrival rate.
//
// The policy axis isolates each remedy of the Rebalancer:
//
//	none       static hash, no control plane — the baseline
//	replicate  every hot key is promoted to read replicas
//	migrate    every hot key is migrated to the least-loaded DPU
//	split      migrate, plus commutative hot keys enter split-key
//	           execution (per-DPU delta shards, epoch reconciliation)
//
// The cell axis holds the uniform/skewed read-mix grid of the original
// experiment (no hot counters, so the split policy is provably inert
// there — the sweep verifies its rows byte-identical to migrate's) plus
// one hot write-heavy counter cell: uniform background traffic with
// HotWriteFrac of the arrivals hammering HotKeys shared counters with
// commutative adds — the Doppel-style contention that migration cannot
// fix (the bottleneck kernel just moves) and splitting can.
//
// The interesting regime is kernel-bound batches: MaxBatch is sized so
// a skewed batch's worst-case per-DPU bucket costs more kernel time
// than the ~600 µs of transfer handshakes, which is when spreading the
// load — replicas, migrations, or delta shards — buys modeled
// throughput and tail latency.
type rebalanceOptions struct {
	// Fleets lists the DPU counts to sweep.
	Fleets []int
	// Skews are Zipf key-popularity exponents for the uniform-grid
	// cells (0 = uniform).
	Skews []float64
	// ReadPcts lists the read mixes of the uniform-grid cells.
	ReadPcts []int
	// Policies selects the control-plane arms (default all four).
	Policies []string
	// Cells selects the cell families: "all", "uniform" (the classic
	// grid only) or "hot" (the counter cell only).
	Cells string
	// HotKeys and HotWriteFrac shape the hot counter cell.
	HotKeys      int
	HotWriteFrac float64
	// Rate is the open-loop arrival rate in ops per modeled second.
	Rate float64
	// Ops per scenario and the Keyspace they draw from.
	Ops, Keyspace int
	// MaxBatch and MaxDelaySeconds tune the adaptive batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// WindowBatches is the rebalancer's decision window.
	WindowBatches int
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// Parallelism is the host-side worker-pool setting (0 = GOMAXPROCS,
	// 1 = serial reference).
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *rebalanceOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{4, 8}
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = []int{99, 50}
	}
	if len(o.Policies) == 0 {
		o.Policies = []string{"none", "replicate", "migrate", "split"}
	}
	if o.Cells == "" {
		o.Cells = "all"
	}
	if o.HotKeys == 0 {
		// One counter: the canonical Doppel bottleneck. Migration can
		// spread several hot keys across the fleet, but a single hot
		// counter pins one DPU's kernel no matter where it lives —
		// only splitting dissolves it.
		o.HotKeys = 1
	}
	if o.HotWriteFrac == 0 {
		o.HotWriteFrac = 0.9
	}
	if o.Rate == 0 {
		o.Rate = 3e6
	}
	if o.Ops == 0 {
		o.Ops = 38400
	}
	if o.Keyspace == 0 {
		o.Keyspace = 10240
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 2560
	}
	if o.MaxDelaySeconds == 0 {
		// Large enough that MaxBatch, not the delay bound, shapes the
		// batches at the default rate: the experiment studies placement
		// under kernel-bound batches, not thin delay-flushed ones.
		o.MaxDelaySeconds = 2e-3
	}
	if o.WindowBatches == 0 {
		// One batch per decision window: the ablation studies where each
		// remedy's steady state lands, so the control plane reacts at
		// batch granularity instead of spending a fifth of the run
		// undecided (a 2560-op batch is plenty of window statistics).
		o.WindowBatches = 1
	}
	if o.Tasklets == 0 {
		o.Tasklets = 11
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// rebalanceCell is one traffic shape of the sweep.
type rebalanceCell struct {
	skew    float64
	readPct int
	hotKeys int
	hotFrac float64
}

// rebalanceScenario is one (fleet, cell, policy) row of
// BENCH_rebalance.json — schema 2 flattened the old per-cell
// static/directory pair into one row per policy so the policy axis can
// grow without another schema bump.
type rebalanceScenario struct {
	DPUs          int     `json:"dpus"`
	Policy        string  `json:"policy"`
	ReadPct       int     `json:"read_pct"`
	ZipfS         float64 `json:"zipf_s"`
	HotKeys       int     `json:"hot_keys"`
	HotWriteFrac  float64 `json:"hot_write_frac"`
	RatePerSecond float64 `json:"rate_ops_per_s"`
	Ops           int     `json:"ops"`
	MaxBatch      int     `json:"max_batch"`

	OpsPerSecond float64 `json:"ops_per_s"`
	P50Seconds   float64 `json:"p50_s"`
	P95Seconds   float64 `json:"p95_s"`
	P99Seconds   float64 `json:"p99_s"`
	Batches      int     `json:"batches"`
	Makespan     float64 `json:"makespan_s"`

	WindowsEvaluated int `json:"windows_evaluated"`
	WindowsActed     int `json:"windows_acted"`
	KeysReplicated   int `json:"keys_replicated"`
	KeysMigrated     int `json:"keys_migrated"`
	KeysSplit        int `json:"keys_split"`
	KeysUnsplit      int `json:"keys_unsplit"`
	SplitReconciles  int `json:"split_reconciles"`
}

// rebalanceReport is the top-level JSON artifact.
type rebalanceReport struct {
	SchemaVersion int                 `json:"schema_version"`
	Experiment    string              `json:"experiment"`
	Scenarios     []rebalanceScenario `json:"scenarios"`
}

// rebalanceSchemaVersion bumps when row identity or fields change:
// v2 = policy-axis rows (none/replicate/migrate/split) with the
// hot-counter cell knobs in the identity.
const rebalanceSchemaVersion = 2

// policyRebalance maps a policy arm to its placement + control plane.
func policyRebalance(policy string, dpus int, opt rebalanceOptions) (host.Placement, *host.RebalancerConfig, error) {
	if policy == "none" {
		return nil, nil, nil
	}
	cfg := host.KernelBoundServingRebalance(opt.WindowBatches)
	switch policy {
	case "replicate":
		cfg.ReplicateMaxWriteShare = 1.0
	case "migrate":
		// Effectively zero: every hot key is write-heavy enough to move.
		cfg.ReplicateMaxWriteShare = 1e-9
	case "split":
		cfg.ReplicateMaxWriteShare = 1e-9
		cfg.SplitMinAddShare = 0.5
	default:
		return nil, nil, fmt.Errorf("unknown rebalance policy %q (want none, replicate, migrate or split)", policy)
	}
	return host.NewDirectory(dpus), &cfg, nil
}

// runRebalanceCell serves one cell's trace under one policy.
func runRebalanceCell(dpus int, cell rebalanceCell, policy string, opt rebalanceOptions) (rebalanceScenario, error) {
	placement, reb, err := policyRebalance(policy, dpus, opt)
	if err != nil {
		return rebalanceScenario{}, err
	}
	res, err := host.Serve(host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: dpus, Tasklets: opt.Tasklets,
			STM:             core.Config{Algorithm: core.NOrec},
			Mode:            host.Pipelined,
			Placement:       placement,
			HostParallelism: opt.Parallelism,
		},
		Submit: host.SubmitterConfig{
			MaxBatch:        opt.MaxBatch,
			MaxDelaySeconds: opt.MaxDelaySeconds,
		},
		Traffic: host.TrafficConfig{
			Ops: opt.Ops, Rate: opt.Rate, ReadPct: cell.readPct,
			Keyspace: opt.Keyspace, ZipfS: cell.skew, Seed: opt.Seed,
			HotKeys: cell.hotKeys, HotWriteFrac: cell.hotFrac,
		},
		Rebalance: reb,
	})
	if err != nil {
		return rebalanceScenario{}, err
	}
	if res.Errors > 0 {
		return rebalanceScenario{}, fmt.Errorf("%d/%d ops errored", res.Errors, opt.Ops)
	}
	return rebalanceScenario{
		DPUs: dpus, Policy: policy,
		ReadPct: cell.readPct, ZipfS: cell.skew,
		HotKeys: cell.hotKeys, HotWriteFrac: cell.hotFrac,
		RatePerSecond: opt.Rate, Ops: opt.Ops, MaxBatch: opt.MaxBatch,
		OpsPerSecond: res.OpsPerSecond,
		P50Seconds:   res.P50, P95Seconds: res.P95, P99Seconds: res.P99,
		Batches: res.Batches, Makespan: res.MakespanSeconds,
		WindowsEvaluated: res.Rebalance.WindowsEvaluated,
		WindowsActed:     res.Rebalance.WindowsActed,
		KeysReplicated:   res.Rebalance.KeysReplicated,
		KeysMigrated:     res.Rebalance.KeysMigrated,
		KeysSplit:        res.Rebalance.KeysSplit,
		KeysUnsplit:      res.Rebalance.KeysUnsplit,
		SplitReconciles:  res.SplitReconciles,
	}, nil
}

// samePolicyNumbers reports whether two rows of one cell produced
// byte-identical serving numbers (everything but the policy label and
// control-plane counters).
func samePolicyNumbers(a, b rebalanceScenario) bool {
	a.Policy, b.Policy = "", ""
	return a == b
}

// runRebalance sweeps fleet × cell × policy, renders the table to w,
// and writes BENCH_rebalance.json when opt.Out is set. On every cell
// without hot counters it verifies the split arm byte-identical to the
// migrate arm — no commutative adds means the split trigger must be
// provably inert, the hysteresis guarantee of the policy.
func runRebalance(opt rebalanceOptions, w io.Writer) ([]rebalanceScenario, error) {
	opt.fill()
	var cells []rebalanceCell
	if opt.Cells == "all" || opt.Cells == "uniform" {
		for _, skew := range opt.Skews {
			for _, pct := range opt.ReadPcts {
				cells = append(cells, rebalanceCell{skew: skew, readPct: pct})
			}
		}
	}
	if opt.Cells == "all" || opt.Cells == "hot" {
		// Uniform background so the only hotspot is the counters
		// themselves; the heavily commutative mix is the regime the
		// split remedy exists for, with the background's stray
		// reads/writes of the counter forcing occasional paid
		// reconciliations.
		cells = append(cells, rebalanceCell{
			skew: 0, readPct: 50,
			hotKeys: opt.HotKeys, hotFrac: opt.HotWriteFrac,
		})
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("unknown cell selector %q (want all, uniform or hot)", opt.Cells)
	}

	var scenarios []rebalanceScenario
	for _, n := range opt.Fleets {
		for _, cell := range cells {
			rows := make(map[string]rebalanceScenario, len(opt.Policies))
			for _, policy := range opt.Policies {
				sc, err := runRebalanceCell(n, cell, policy, opt)
				if err != nil {
					return nil, fmt.Errorf("rebalance %d DPUs zipf %g %d%% reads hot %g×%d policy %s: %w",
						n, cell.skew, cell.readPct, cell.hotFrac, cell.hotKeys, policy, err)
				}
				rows[policy] = sc
				scenarios = append(scenarios, sc)
			}
			if cell.hotFrac == 0 {
				mig, hasMig := rows["migrate"]
				spl, hasSpl := rows["split"]
				if hasMig && hasSpl && !samePolicyNumbers(mig, spl) {
					return nil, fmt.Errorf("rebalance %d DPUs zipf %g %d%% reads: split diverged from migrate without commutative traffic:\nmigrate %+v\nsplit   %+v",
						n, cell.skew, cell.readPct, mig, spl)
				}
				if hasSpl && (spl.KeysSplit != 0 || spl.SplitReconciles != 0) {
					return nil, fmt.Errorf("rebalance %d DPUs zipf %g %d%% reads: split policy acted on add-free traffic: %+v",
						n, cell.skew, cell.readPct, spl)
				}
			}
		}
	}

	fmt.Fprintf(w, "== rebalance: placement-policy ablation — none / replicate / migrate / split (%d ops/cell, batch ≤ %d, %.0f ops/s open loop) ==\n",
		opt.Ops, opt.MaxBatch, opt.Rate)
	fmt.Fprintln(w, hostParHeader(opt.Parallelism))
	fmt.Fprintf(w, "%6s %5s %5s %4s %5s %10s %13s %12s %5s %5s %5s %6s\n",
		"#DPUs", "reads", "zipf", "hotk", "hotw", "policy", "ops/s", "p99ms", "repl", "migr", "split", "recon")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %4d%% %5.2f %4d %5.2f %10s %13.0f %12.3f %5d %5d %5d %6d\n",
			sc.DPUs, sc.ReadPct, sc.ZipfS, sc.HotKeys, sc.HotWriteFrac, sc.Policy,
			sc.OpsPerSecond, sc.P99Seconds*1e3,
			sc.KeysReplicated, sc.KeysMigrated, sc.KeysSplit, sc.SplitReconciles)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(rebalanceReport{
			SchemaVersion: rebalanceSchemaVersion,
			Experiment:    "rebalance",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
