package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// serveOptions parameterize the adaptive-batching serving sweep: fleet
// size × STM algorithm × key-popularity skew × open-loop arrival rate,
// each cell served through a host.Submitter in both transfer modes.
type serveOptions struct {
	// Fleets lists the DPU counts to sweep.
	Fleets []int
	// Algs are the intra-DPU STM algorithms to compare.
	Algs []core.Algorithm
	// Skews are Zipf key-popularity exponents (0 = uniform).
	Skews []float64
	// Rates are open-loop arrival rates in ops per modeled second.
	Rates []float64
	// ReadPct of the traffic is Gets.
	ReadPct int
	// Ops per scenario and the Keyspace they draw from.
	Ops, Keyspace int
	// MaxBatch and MaxDelaySeconds tune the adaptive batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// Parallelism is the host-side worker-pool setting (0 = GOMAXPROCS,
	// 1 = serial reference).
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *serveOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{1, 8}
	}
	if len(o.Algs) == 0 {
		o.Algs = []core.Algorithm{core.NOrec, core.TinyETLWB}
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{4e4, 2e5}
	}
	// ReadPct 0 is a legitimate write-only workload: the 90% default
	// comes from the -serve-reads flag, not from here.
	if o.Ops == 0 {
		o.Ops = 1200
	}
	if o.Keyspace == 0 {
		o.Keyspace = 512
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelaySeconds == 0 {
		o.MaxDelaySeconds = 300e-6
	}
	if o.Tasklets == 0 {
		o.Tasklets = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// serveModeResult is one transfer mode's modeled outcome of a cell.
type serveModeResult struct {
	OpsPerSecond float64 `json:"ops_per_s"`
	P50Seconds   float64 `json:"p50_s"`
	P95Seconds   float64 `json:"p95_s"`
	P99Seconds   float64 `json:"p99_s"`
	Batches      int     `json:"batches"`
	MeanBatchOps float64 `json:"mean_batch_ops"`
	Makespan     float64 `json:"makespan_s"`
}

// serveScenario is one machine-readable cell of BENCH_serve.json.
type serveScenario struct {
	DPUs            int             `json:"dpus"`
	Algorithm       string          `json:"algorithm"`
	ReadPct         int             `json:"read_pct"`
	ZipfS           float64         `json:"zipf_s"`
	RatePerSecond   float64         `json:"rate_ops_per_s"`
	Ops             int             `json:"ops"`
	MaxBatch        int             `json:"max_batch"`
	MaxDelaySeconds float64         `json:"max_delay_s"`
	Pipelined       serveModeResult `json:"pipelined"`
	Lockstep        serveModeResult `json:"lockstep"`
	// P99Gain is lockstep p99 over pipelined p99 (> 1 = pipelining
	// shortens the modeled tail).
	P99Gain float64 `json:"p99_gain"`
}

// serveReport is the top-level JSON artifact.
type serveReport struct {
	SchemaVersion int             `json:"schema_version"`
	Experiment    string          `json:"experiment"`
	Scenarios     []serveScenario `json:"scenarios"`
}

// runServeCell serves one cell's trace in both transfer modes.
func runServeCell(dpus int, alg core.Algorithm, skew, rate float64, opt serveOptions) (serveScenario, error) {
	mode := func(m host.ExecMode) (host.ServeResult, error) {
		return host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: dpus, Tasklets: opt.Tasklets,
				STM: core.Config{Algorithm: alg}, Mode: m,
				HostParallelism: opt.Parallelism,
			},
			Submit: host.SubmitterConfig{
				MaxBatch:        opt.MaxBatch,
				MaxDelaySeconds: opt.MaxDelaySeconds,
			},
			Traffic: host.TrafficConfig{
				Ops: opt.Ops, Rate: rate, ReadPct: opt.ReadPct,
				Keyspace: opt.Keyspace, ZipfS: skew, Seed: opt.Seed,
			},
		})
	}
	pipe, err := mode(host.Pipelined)
	if err != nil {
		return serveScenario{}, err
	}
	lock, err := mode(host.Lockstep)
	if err != nil {
		return serveScenario{}, err
	}
	if pipe.Errors > 0 || lock.Errors > 0 {
		return serveScenario{}, fmt.Errorf("%d/%d ops errored", pipe.Errors+lock.Errors, 2*opt.Ops)
	}
	pack := func(r host.ServeResult) serveModeResult {
		return serveModeResult{
			OpsPerSecond: r.OpsPerSecond,
			P50Seconds:   r.P50, P95Seconds: r.P95, P99Seconds: r.P99,
			Batches: r.Batches, MeanBatchOps: r.MeanBatchOps,
			Makespan: r.MakespanSeconds,
		}
	}
	sc := serveScenario{
		DPUs: dpus, Algorithm: alg.String(), ReadPct: opt.ReadPct,
		ZipfS: skew, RatePerSecond: rate, Ops: opt.Ops,
		MaxBatch: opt.MaxBatch, MaxDelaySeconds: opt.MaxDelaySeconds,
		Pipelined: pack(pipe), Lockstep: pack(lock),
	}
	if pipe.P99 > 0 {
		sc.P99Gain = lock.P99 / pipe.P99
	}
	return sc, nil
}

// runServe sweeps fleet × algorithm × skew × rate, renders the table
// to w, and writes BENCH_serve.json when opt.Out is set.
func runServe(opt serveOptions, w io.Writer) ([]serveScenario, error) {
	opt.fill()
	var scenarios []serveScenario
	for _, n := range opt.Fleets {
		for _, alg := range opt.Algs {
			for _, skew := range opt.Skews {
				for _, rate := range opt.Rates {
					sc, err := runServeCell(n, alg, skew, rate, opt)
					if err != nil {
						return nil, fmt.Errorf("serve %d DPUs %v zipf %g rate %g: %w", n, alg, skew, rate, err)
					}
					scenarios = append(scenarios, sc)
				}
			}
		}
	}

	fmt.Fprintf(w, "== serve: adaptive-batching open-loop sweep (%d ops/cell, batch ≤ %d, delay ≤ %.0f µs) ==\n",
		opt.Ops, opt.MaxBatch, opt.MaxDelaySeconds*1e6)
	fmt.Fprintln(w, hostParHeader(opt.Parallelism))
	fmt.Fprintf(w, "%6s %-12s %5s %9s %12s %12s %12s %12s %7s\n",
		"#DPUs", "STM", "zipf", "rate/s", "pipe ops/s", "pipe p50 ms", "pipe p99 ms", "lock p99 ms", "gain")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %-12s %5.2f %9.0f %12.0f %12.3f %12.3f %12.3f %6.2fx\n",
			sc.DPUs, sc.Algorithm, sc.ZipfS, sc.RatePerSecond,
			sc.Pipelined.OpsPerSecond, sc.Pipelined.P50Seconds*1e3,
			sc.Pipelined.P99Seconds*1e3, sc.Lockstep.P99Seconds*1e3, sc.P99Gain)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(serveReport{
			SchemaVersion: 1,
			Experiment:    "serve",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
