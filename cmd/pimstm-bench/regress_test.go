package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// These tests pin the committed serving artifacts byte-for-byte: they
// regenerate the full default sweeps into a temp file and compare
// against the repository copies. BENCH_serve.json is produced entirely
// by the default FIFOScheduler, so the pin proves the scheduler
// extraction preserves the historical serving path bit-for-bit;
// BENCH_txnserve.json pins both the FIFO rows (same guarantee) and the
// lane rows (the scheduler axis itself is reproducible). Regenerating
// an artifact deliberately (make serve / make txnserve) updates the
// committed file and keeps the pin honest.

// repoArtifact reads a committed artifact from the repository root
// (two levels up from this package).
func repoArtifact(t *testing.T, name string) string {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestServeArtifactPinned: the default serve sweep — the options
// mirror the pimstm-bench flag defaults — reproduces the committed
// BENCH_serve.json exactly under the default FIFOScheduler.
func TestServeArtifactPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep")
	}
	out := filepath.Join(t.TempDir(), "serve.json")
	_, err := runServe(serveOptions{ReadPct: 90, Out: out}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := repoArtifact(t, "BENCH_serve.json"); string(got) != want {
		t.Fatal("regenerated BENCH_serve.json differs from the committed artifact: the default FIFO serving path changed (regenerate with `make serve` if intentional)")
	}
}

// TestTxnServeArtifactPinned: the default txnserve sweep reproduces
// the committed BENCH_txnserve.json exactly — FIFO rows pin the
// default path, lane rows pin the scheduler axis.
func TestTxnServeArtifactPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full default sweep")
	}
	out := filepath.Join(t.TempDir(), "txnserve.json")
	_, err := runTxnServe(txnServeOptions{Out: out}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := repoArtifact(t, "BENCH_txnserve.json"); string(got) != want {
		t.Fatal("regenerated BENCH_txnserve.json differs from the committed artifact: the txn serving path changed (regenerate with `make txnserve` if intentional)")
	}
}

// TestServeExplicitFIFOMatchesDefault: a Serve run with an explicit
// FIFOScheduler factory is identical to the nil-scheduler default the
// serve experiment's cells use, so the BENCH_serve.json pin really
// covers the extracted policy and not a divergent default.
func TestServeExplicitFIFOMatchesDefault(t *testing.T) {
	run := func(factory func() host.Scheduler) host.ServeResult {
		res, err := host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: 2, Tasklets: 8,
				STM: core.Config{Algorithm: core.NOrec}, Mode: host.Pipelined,
			},
			Submit: host.SubmitterConfig{MaxBatch: 32, MaxDelaySeconds: 300e-6},
			Traffic: host.TrafficConfig{
				Ops: 300, Rate: 2e5, ReadPct: 90, Keyspace: 128, ZipfS: 1.2, Seed: 1,
			},
			Scheduler: factory,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run(nil)
	exp := run(func() host.Scheduler { return host.NewFIFOScheduler(32, 300e-6) })
	def.ZeroHostClock()
	exp.ZeroHostClock()
	if !reflect.DeepEqual(def, exp) {
		t.Fatalf("explicit FIFOScheduler diverged from the nil default:\n%+v\n%+v", def, exp)
	}
	if def.Ops != 300 || def.Batches == 0 {
		t.Fatalf("degenerate run: %+v", def)
	}
}
