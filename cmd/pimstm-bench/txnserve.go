package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// txnServeOptions parameterize the multi-key transactional serving
// sweep: fleet size × transaction size × cross-DPU fraction × skew ×
// STM algorithm, each cell an open-loop trace of Txns served through
// the transactional Submitter. The sweep charts the cost cliff the
// paper's single-DPU evaluation never measures: transactions confined
// to one DPU commit inside the batch kernel (STM-native atomicity),
// while cross-DPU transactions pay the CPU-coordinated snapshot and
// writeback rounds.
type txnServeOptions struct {
	// Fleets lists the DPU counts to sweep.
	Fleets []int
	// Algs are the intra-DPU STM algorithms to compare.
	Algs []core.Algorithm
	// TxnSizes are the ops-per-transaction points.
	TxnSizes []int
	// CrossFracs are the cross-DPU transaction fractions (0..1).
	CrossFracs []float64
	// Skews are Zipf key-popularity exponents (0 = uniform).
	Skews []float64
	// Rate is the open-loop arrival rate in transactions per modeled
	// second.
	Rate float64
	// ReadPct of the traffic is Gets.
	ReadPct int
	// Txns per scenario and the Keyspace they draw from.
	Txns, Keyspace int
	// MaxBatch and MaxDelaySeconds tune the adaptive batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *txnServeOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{2, 8}
	}
	if len(o.Algs) == 0 {
		o.Algs = []core.Algorithm{core.NOrec}
	}
	if len(o.TxnSizes) == 0 {
		o.TxnSizes = []int{1, 2, 4}
	}
	if len(o.CrossFracs) == 0 {
		// The extremes coalesce into two handshakes per batch either
		// way; the mixed fraction is where batches pay the execute
		// round plus both coordination rounds — the interesting cliff.
		o.CrossFracs = []float64{0, 0.5, 1}
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if o.Rate == 0 {
		o.Rate = 4e4
	}
	if o.ReadPct == 0 {
		o.ReadPct = 80
	}
	if o.Txns == 0 {
		o.Txns = 500
	}
	if o.Keyspace == 0 {
		o.Keyspace = 512
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelaySeconds == 0 {
		o.MaxDelaySeconds = 300e-6
	}
	if o.Tasklets == 0 {
		o.Tasklets = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// txnServeScenario is one machine-readable cell of BENCH_txnserve.json.
type txnServeScenario struct {
	DPUs            int     `json:"dpus"`
	Algorithm       string  `json:"algorithm"`
	TxnSize         int     `json:"txn_size"`
	CrossDPU        float64 `json:"cross_dpu_frac"`
	ZipfS           float64 `json:"zipf_s"`
	ReadPct         int     `json:"read_pct"`
	RatePerSecond   float64 `json:"rate_txns_per_s"`
	Txns            int     `json:"txns"`
	Ops             int     `json:"ops"`
	CoordinatedTxns int     `json:"coordinated_txns"`
	Batches         int     `json:"batches"`
	OpsPerSecond    float64 `json:"ops_per_s"`
	P50Seconds      float64 `json:"p50_s"`
	P95Seconds      float64 `json:"p95_s"`
	P99Seconds      float64 `json:"p99_s"`
	Makespan        float64 `json:"makespan_s"`
}

// txnServeReport is the top-level JSON artifact.
type txnServeReport struct {
	SchemaVersion int                `json:"schema_version"`
	Experiment    string             `json:"experiment"`
	Scenarios     []txnServeScenario `json:"scenarios"`
}

// runTxnServeCell serves one cell's transactional trace.
func runTxnServeCell(dpus int, alg core.Algorithm, size int, cross, skew float64, opt txnServeOptions) (txnServeScenario, error) {
	res, err := host.Serve(host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: dpus, Tasklets: opt.Tasklets,
			STM: core.Config{Algorithm: alg}, Mode: host.Pipelined,
		},
		Submit: host.SubmitterConfig{
			MaxBatch:        opt.MaxBatch,
			MaxDelaySeconds: opt.MaxDelaySeconds,
		},
		Traffic: host.TrafficConfig{
			Ops: opt.Txns, Rate: opt.Rate, ReadPct: opt.ReadPct,
			Keyspace: opt.Keyspace, ZipfS: skew, Seed: opt.Seed,
			TxnSize: size, CrossDPU: cross,
		},
	})
	if err != nil {
		return txnServeScenario{}, err
	}
	if res.Errors > 0 {
		return txnServeScenario{}, fmt.Errorf("%d/%d txns errored", res.Errors, res.Txns)
	}
	return txnServeScenario{
		DPUs: dpus, Algorithm: alg.String(), TxnSize: size, CrossDPU: cross,
		ZipfS: skew, ReadPct: opt.ReadPct, RatePerSecond: opt.Rate,
		Txns: res.Txns, Ops: res.Ops, CoordinatedTxns: res.CoordinatedTxns,
		Batches: res.Batches, OpsPerSecond: res.OpsPerSecond,
		P50Seconds: res.P50, P95Seconds: res.P95, P99Seconds: res.P99,
		Makespan: res.MakespanSeconds,
	}, nil
}

// runTxnServe sweeps fleet × txn size × cross fraction × skew ×
// algorithm, renders the table to w, and writes BENCH_txnserve.json
// when opt.Out is set. Single-op cells never cross DPUs, so only the
// zero cross fraction is run for them.
func runTxnServe(opt txnServeOptions, w io.Writer) ([]txnServeScenario, error) {
	opt.fill()
	var scenarios []txnServeScenario
	for _, n := range opt.Fleets {
		for _, alg := range opt.Algs {
			for _, size := range opt.TxnSizes {
				for _, cross := range opt.CrossFracs {
					if size == 1 && cross > 0 {
						continue // a 1-op txn cannot span DPUs
					}
					for _, skew := range opt.Skews {
						sc, err := runTxnServeCell(n, alg, size, cross, skew, opt)
						if err != nil {
							return nil, fmt.Errorf("txnserve %d DPUs %v size %d cross %g zipf %g: %w",
								n, alg, size, cross, skew, err)
						}
						scenarios = append(scenarios, sc)
					}
				}
			}
		}
	}

	fmt.Fprintf(w, "== txnserve: multi-key transactional serving sweep (%d txns/cell, %.0f txns/s open loop, batch ≤ %d ops) ==\n",
		opt.Txns, opt.Rate, opt.MaxBatch)
	fmt.Fprintf(w, "%6s %-12s %5s %6s %5s %7s %12s %12s %12s\n",
		"#DPUs", "STM", "size", "cross", "zipf", "coord", "ops/s", "p50 ms", "p99 ms")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %-12s %5d %6.2f %5.2f %7d %12.0f %12.3f %12.3f\n",
			sc.DPUs, sc.Algorithm, sc.TxnSize, sc.CrossDPU, sc.ZipfS,
			sc.CoordinatedTxns, sc.OpsPerSecond, sc.P50Seconds*1e3, sc.P99Seconds*1e3)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(txnServeReport{
			SchemaVersion: 1,
			Experiment:    "txnserve",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
