package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// txnServeOptions parameterize the multi-key transactional serving
// sweep: fleet size × transaction size × cross-DPU fraction × skew ×
// STM algorithm × batch scheduler, each cell an open-loop trace of
// Txns served through the transactional Submitter. The sweep charts
// the cost cliff the paper's single-DPU evaluation never measures —
// transactions confined to one DPU commit inside the batch kernel
// (STM-native atomicity), while cross-DPU transactions pay the
// CPU-coordinated snapshot and writeback rounds — and, on the
// scheduler axis, how much of the mixed-batch cliff lane-segregated
// batch formation closes.
type txnServeOptions struct {
	// Fleets lists the DPU counts to sweep.
	Fleets []int
	// Algs are the intra-DPU STM algorithms to compare.
	Algs []core.Algorithm
	// TxnSizes are the ops-per-transaction points.
	TxnSizes []int
	// CrossFracs are the cross-DPU transaction fractions (0..1).
	CrossFracs []float64
	// Skews are Zipf key-popularity exponents (0 = uniform).
	Skews []float64
	// Scheds are the batch schedulers to compare ("fifo", "lane",
	// "adaptive").
	Scheds []string
	// Rate is the open-loop arrival rate in transactions per modeled
	// second.
	Rate float64
	// ReadPct of the traffic is Gets.
	ReadPct int
	// Txns per scenario and the Keyspace they draw from.
	Txns, Keyspace int
	// MaxBatch and MaxDelaySeconds tune the adaptive batcher.
	MaxBatch        int
	MaxDelaySeconds float64
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// Parallelism is the host-side worker-pool setting (0 = GOMAXPROCS,
	// 1 = serial reference).
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *txnServeOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{2, 8}
	}
	if len(o.Algs) == 0 {
		o.Algs = []core.Algorithm{core.NOrec}
	}
	if len(o.TxnSizes) == 0 {
		o.TxnSizes = []int{1, 2, 4}
	}
	if len(o.CrossFracs) == 0 {
		// The extremes coalesce into two handshakes per batch either
		// way; the mixed fraction is where batches pay the execute
		// round plus both coordination rounds — the interesting cliff.
		o.CrossFracs = []float64{0, 0.5, 1}
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if len(o.Scheds) == 0 {
		o.Scheds = []string{"fifo", "lane"}
	}
	if o.Rate == 0 {
		o.Rate = 4e4
	}
	if o.ReadPct == 0 {
		o.ReadPct = 80
	}
	if o.Txns == 0 {
		o.Txns = 500
	}
	if o.Keyspace == 0 {
		o.Keyspace = 512
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelaySeconds == 0 {
		o.MaxDelaySeconds = 300e-6
	}
	if o.Tasklets == 0 {
		o.Tasklets = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// txnServeScenario is one machine-readable cell of BENCH_txnserve.json.
type txnServeScenario struct {
	DPUs               int     `json:"dpus"`
	Algorithm          string  `json:"algorithm"`
	Scheduler          string  `json:"scheduler"`
	TxnSize            int     `json:"txn_size"`
	CrossDPU           float64 `json:"cross_dpu_frac"`
	ZipfS              float64 `json:"zipf_s"`
	ReadPct            int     `json:"read_pct"`
	RatePerSecond      float64 `json:"rate_txns_per_s"`
	Txns               int     `json:"txns"`
	Ops                int     `json:"ops"`
	CoordinatedTxns    int     `json:"coordinated_txns"`
	Batches            int     `json:"batches"`
	ConfinedBatches    int     `json:"confined_batches"`
	CoordinatedBatches int     `json:"coordinated_batches"`
	OpsPerSecond       float64 `json:"ops_per_s"`
	P50Seconds         float64 `json:"p50_s"`
	P95Seconds         float64 `json:"p95_s"`
	P99Seconds         float64 `json:"p99_s"`
	Makespan           float64 `json:"makespan_s"`
	// Schema v3: the coordinated-commit phase split accumulated over the
	// cell's batches — prepare gathers, kernel apply-program cycles, and
	// writeback transfer time (all zero for cells that never coordinate).
	GatherSeconds    float64 `json:"gather_s"`
	ApplySeconds     float64 `json:"apply_s"`
	WritebackSeconds float64 `json:"writeback_s"`
}

// txnServeReport is the top-level JSON artifact.
type txnServeReport struct {
	SchemaVersion int                `json:"schema_version"`
	Experiment    string             `json:"experiment"`
	Scenarios     []txnServeScenario `json:"scenarios"`
}

// newServeScheduler maps a scheduler name to the factory the serve
// driver needs, parameterized on the sweep's batch bounds. The
// confined lane inherits them; the coordinated lane gets double the
// size and delay budget — its windows are pure handshake (no batch
// kernel), so fewer, fuller coordination rounds amortize strictly
// better, and the starvation bound still ships stragglers behind a
// confined flood. "fifo" returns nil: the Submitter's default path,
// untouched by the scheduler flag.
func newServeScheduler(name string, maxBatch int, maxDelaySeconds float64) (func() host.Scheduler, error) {
	lanes := host.LaneSchedulerConfig{
		Confined:    host.LaneConfig{MaxBatch: maxBatch, MaxDelaySeconds: maxDelaySeconds},
		Coordinated: host.LaneConfig{MaxBatch: 2 * maxBatch, MaxDelaySeconds: 2 * maxDelaySeconds},
	}
	switch name {
	case "fifo":
		return nil, nil
	case "lane":
		return func() host.Scheduler { return host.NewLaneScheduler(lanes) }, nil
	case "adaptive":
		return func() host.Scheduler { return host.NewAdaptiveScheduler(lanes, host.AdaptiveConfig{}) }, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (valid: fifo, lane, adaptive)", name)
	}
}

// runTxnServeCell serves one cell's transactional trace.
func runTxnServeCell(dpus int, alg core.Algorithm, sched string, size int, cross, skew float64, opt txnServeOptions) (txnServeScenario, error) {
	factory, err := newServeScheduler(sched, opt.MaxBatch, opt.MaxDelaySeconds)
	if err != nil {
		return txnServeScenario{}, err
	}
	res, err := host.Serve(host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: dpus, Tasklets: opt.Tasklets,
			STM: core.Config{Algorithm: alg}, Mode: host.Pipelined,
			HostParallelism: opt.Parallelism,
		},
		Submit: host.SubmitterConfig{
			MaxBatch:        opt.MaxBatch,
			MaxDelaySeconds: opt.MaxDelaySeconds,
		},
		Traffic: host.TrafficConfig{
			Ops: opt.Txns, Rate: opt.Rate, ReadPct: opt.ReadPct,
			Keyspace: opt.Keyspace, ZipfS: skew, Seed: opt.Seed,
			TxnSize: size, CrossDPU: cross,
		},
		Scheduler: factory,
	})
	if err != nil {
		return txnServeScenario{}, err
	}
	if res.Errors > 0 {
		return txnServeScenario{}, fmt.Errorf("%d/%d txns errored", res.Errors, res.Txns)
	}
	return txnServeScenario{
		DPUs: dpus, Algorithm: alg.String(), Scheduler: sched,
		TxnSize: size, CrossDPU: cross,
		ZipfS: skew, ReadPct: opt.ReadPct, RatePerSecond: opt.Rate,
		Txns: res.Txns, Ops: res.Ops, CoordinatedTxns: res.CoordinatedTxns,
		Batches:         res.Batches,
		ConfinedBatches: res.Stats.ConfinedBatches, CoordinatedBatches: res.Stats.CoordinatedBatches,
		OpsPerSecond: res.OpsPerSecond,
		P50Seconds:   res.P50, P95Seconds: res.P95, P99Seconds: res.P99,
		Makespan:      res.MakespanSeconds,
		GatherSeconds: res.Stats.GatherSeconds, ApplySeconds: res.Stats.ApplySeconds,
		WritebackSeconds: res.Stats.WritebackSeconds,
	}, nil
}

// runTxnServe sweeps scheduler × fleet × txn size × cross fraction ×
// skew × algorithm, renders the table to w, and writes
// BENCH_txnserve.json when opt.Out is set. Single-op cells never cross
// DPUs, so only the zero cross fraction is run for them.
func runTxnServe(opt txnServeOptions, w io.Writer) ([]txnServeScenario, error) {
	opt.fill()
	var scenarios []txnServeScenario
	for _, sched := range opt.Scheds {
		for _, n := range opt.Fleets {
			for _, alg := range opt.Algs {
				for _, size := range opt.TxnSizes {
					for _, cross := range opt.CrossFracs {
						if size == 1 && cross > 0 {
							continue // a 1-op txn cannot span DPUs
						}
						for _, skew := range opt.Skews {
							sc, err := runTxnServeCell(n, alg, sched, size, cross, skew, opt)
							if err != nil {
								return nil, fmt.Errorf("txnserve %s %d DPUs %v size %d cross %g zipf %g: %w",
									sched, n, alg, size, cross, skew, err)
							}
							scenarios = append(scenarios, sc)
						}
					}
				}
			}
		}
	}

	fmt.Fprintf(w, "== txnserve: multi-key transactional serving sweep (%d txns/cell, %.0f txns/s open loop, batch ≤ %d ops) ==\n",
		opt.Txns, opt.Rate, opt.MaxBatch)
	fmt.Fprintln(w, hostParHeader(opt.Parallelism))
	fmt.Fprintf(w, "%6s %-12s %-8s %5s %6s %5s %7s %12s %12s %12s\n",
		"#DPUs", "STM", "sched", "size", "cross", "zipf", "coord", "ops/s", "p50 ms", "p99 ms")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %-12s %-8s %5d %6.2f %5.2f %7d %12.0f %12.3f %12.3f\n",
			sc.DPUs, sc.Algorithm, sc.Scheduler, sc.TxnSize, sc.CrossDPU, sc.ZipfS,
			sc.CoordinatedTxns, sc.OpsPerSecond, sc.P50Seconds*1e3, sc.P99Seconds*1e3)
	}

	if opt.Out != "" {
		blob, err := json.MarshalIndent(txnServeReport{
			SchemaVersion: 3,
			Experiment:    "txnserve",
			Scenarios:     scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	return scenarios, nil
}
