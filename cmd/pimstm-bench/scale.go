package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

// scaleOptions parameterize the paper-scale serving sweep: fleet sizes
// up to the paper's 2500-DPU system served in sampled-fleet mode, where
// only Sample representative DPUs are simulated and the rest are
// charged from the calibrated per-round cost model. The workload weak-
// scales with the fleet (keys, arrival rate and trace length all grow
// per DPU) so every point stresses the same per-DPU load, and the whole
// sweep must finish inside a pinned real-time budget — the point of
// sampling is that fleet size stops being the simulation bottleneck.
type scaleOptions struct {
	// Fleets lists the DPU counts to sweep (the paper's full system is
	// 2500).
	Fleets []int
	// Sample is how many representative DPUs to simulate per point.
	Sample int
	// Skews are Zipf key-popularity exponents (0 = uniform).
	Skews []float64
	// ReadPct of the traffic is Gets.
	ReadPct int
	// KeysPerDPU, OpsPerDPU and RatePerDPU scale the keyspace, trace
	// length and open-loop arrival rate with the fleet.
	KeysPerDPU, OpsPerDPU int
	RatePerDPU            float64
	// MaxBatch is the submitter's batch bound in ops — large, so the
	// fleet amortizes its round handshakes over paper-scale batches.
	MaxBatch        int
	MaxDelaySeconds float64
	// Tasklets is the intra-DPU parallelism; Seed the traffic seed.
	Tasklets int
	Seed     uint64
	// WallBudgetSeconds is the pinned real-time budget for the whole
	// sweep; the artifact records whether the run stayed inside it.
	WallBudgetSeconds float64
	// StrictBudget fails the sweep (non-zero exit) when the real wall
	// clock blows the pinned budget, instead of printing a warning.
	StrictBudget bool
	// Parallelism is the host-side worker-pool setting of the measured
	// run (0 = GOMAXPROCS). Every cell also runs the HostParallelism=1
	// serial reference to price the engine and prove the modeled
	// outputs identical.
	Parallelism int
	// Out is the JSON artifact path ("" = don't write).
	Out string
}

func (o *scaleOptions) fill() {
	if len(o.Fleets) == 0 {
		o.Fleets = []int{64, 256, 1024, 2500}
	}
	if o.Sample == 0 {
		o.Sample = 8
	}
	if len(o.Skews) == 0 {
		o.Skews = []float64{0, 1.2}
	}
	if o.ReadPct == 0 {
		o.ReadPct = 90
	}
	if o.KeysPerDPU == 0 {
		o.KeysPerDPU = 32
	}
	if o.OpsPerDPU == 0 {
		o.OpsPerDPU = 16
	}
	if o.RatePerDPU == 0 {
		o.RatePerDPU = 4e3
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 4096
	}
	if o.MaxDelaySeconds == 0 {
		o.MaxDelaySeconds = 500e-6
	}
	if o.Tasklets == 0 {
		o.Tasklets = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.WallBudgetSeconds == 0 {
		o.WallBudgetSeconds = 120
	}
}

// scaleScenario is one machine-readable cell of BENCH_scale.json.
// The modeled fields (ops/s, latency percentiles, makespan) are a pure
// function of the config and reproduce byte-for-byte run to run; the
// host_* fields (schema 2) are this machine's real wall clock for the
// host side of the cell — how long classify, route, shadow apply and
// program compilation actually took — on the engine and on the
// HostParallelism=1 serial reference. Both runs must produce identical
// modeled outputs (asserted per cell), so host_speedup prices the
// engine without any fidelity caveat.
type scaleScenario struct {
	DPUs          int     `json:"dpus"`
	SimulatedDPUs int     `json:"simulated_dpus"`
	ZipfS         float64 `json:"zipf_s"`
	ReadPct       int     `json:"read_pct"`
	RatePerSecond float64 `json:"rate_ops_per_s"`
	Keyspace      int     `json:"keys"`
	Ops           int     `json:"ops"`
	Batches       int     `json:"batches"`
	OpsPerSecond  float64 `json:"ops_per_s"`
	P50Seconds    float64 `json:"p50_s"`
	P99Seconds    float64 `json:"p99_s"`
	Makespan      float64 `json:"makespan_s"`

	HostWorkers           int     `json:"host_workers"`
	HostWallSeconds       float64 `json:"host_wall_s"`
	HostOpsPerSecondReal  float64 `json:"host_ops_per_s_real"`
	HostWallSerialSeconds float64 `json:"host_wall_serial_s"`
	HostSpeedup           float64 `json:"host_speedup"`
}

// scaleReport is the top-level JSON artifact. WithinBudget, GOMAXPROCS
// and the per-scenario host_* wall clocks depend on the machine; every
// other field reproduces byte-for-byte. Schema 2 added the host-side
// real-time measurements and the parallelism context they ran under.
type scaleReport struct {
	SchemaVersion     int             `json:"schema_version"`
	Experiment        string          `json:"experiment"`
	SampleDPUs        int             `json:"sample_dpus"`
	GOMAXPROCS        int             `json:"gomaxprocs"`
	HostParallelism   int             `json:"host_parallelism"`
	WallBudgetSeconds float64         `json:"wall_budget_s"`
	WithinBudget      bool            `json:"within_budget"`
	Scenarios         []scaleScenario `json:"scenarios"`
}

// scaleCellReps is how many times each path of a cell is served; the
// modeled outputs are identical across repetitions (and asserted so),
// while the host wall clock keeps the best repetition — a best-of-N
// floor is the standard way to strip scheduler noise from a
// millisecond-scale measurement.
const scaleCellReps = 3

// runScaleCell serves one fleet-size point in sampled-fleet mode on
// two paths: the configured engine and the HostParallelism=1 serial
// reference. The two paths must agree on every modeled output — the
// engine is pure mechanism — and their best-of-N host-side wall clocks
// become the cell's host_speedup.
func runScaleCell(dpus int, skew float64, opt scaleOptions) (scaleScenario, error) {
	keys := opt.KeysPerDPU * dpus
	rate := opt.RatePerDPU * float64(dpus)
	ops := opt.OpsPerDPU * dpus
	serve := func(par int) (host.ServeResult, error) {
		return host.Serve(host.ServeConfig{
			Map: host.PartitionedMapConfig{
				DPUs: dpus, Tasklets: opt.Tasklets, Sample: opt.Sample,
				Buckets: 64, Capacity: 8 * opt.KeysPerDPU,
				STM: core.Config{Algorithm: core.NOrec}, Mode: host.Pipelined,
				HostParallelism: par,
			},
			Submit: host.SubmitterConfig{
				MaxBatch:        opt.MaxBatch,
				MaxDelaySeconds: opt.MaxDelaySeconds,
			},
			Traffic: host.TrafficConfig{
				Ops: ops, Rate: rate, ReadPct: opt.ReadPct,
				Keyspace: keys, ZipfS: skew, Seed: opt.Seed,
			},
		})
	}
	// best serves one path scaleCellReps times and keeps the repetition
	// with the lowest host wall clock; modeled outputs don't vary.
	best := func(par int) (host.ServeResult, error) {
		r, err := serve(par)
		if err != nil {
			return r, err
		}
		for i := 1; i < scaleCellReps; i++ {
			again, err := serve(par)
			if err != nil {
				return r, err
			}
			if again.HostSeconds < r.HostSeconds {
				r = again
			}
		}
		return r, nil
	}
	res, err := best(opt.Parallelism)
	if err != nil {
		return scaleScenario{}, err
	}
	if res.Errors > 0 {
		return scaleScenario{}, fmt.Errorf("%d/%d txns errored", res.Errors, res.Txns)
	}
	ref, err := best(1)
	if err != nil {
		return scaleScenario{}, fmt.Errorf("serial reference: %w", err)
	}
	// Modeled outputs must be byte-identical across host parallelism:
	// zero the real-time counters and compare everything else.
	engCmp, refCmp := res, ref
	engCmp.Store, refCmp.Store = nil, nil
	engCmp.ZeroHostClock()
	refCmp.ZeroHostClock()
	if !reflect.DeepEqual(engCmp, refCmp) {
		return scaleScenario{}, fmt.Errorf("engine (%d workers) diverged from the serial reference on modeled outputs", res.HostWorkers)
	}
	sc := scaleScenario{
		DPUs: dpus, SimulatedDPUs: res.SimulatedDPUs,
		ZipfS: skew, ReadPct: opt.ReadPct, RatePerSecond: rate,
		Keyspace: keys, Ops: res.Ops, Batches: res.Batches,
		OpsPerSecond: res.OpsPerSecond,
		P50Seconds:   res.P50, P99Seconds: res.P99,
		Makespan: res.MakespanSeconds,

		HostWorkers:           res.HostWorkers,
		HostWallSeconds:       res.HostSeconds,
		HostWallSerialSeconds: ref.HostSeconds,
	}
	if res.HostSeconds > 0 {
		sc.HostOpsPerSecondReal = float64(res.Ops) / res.HostSeconds
		sc.HostSpeedup = ref.HostSeconds / res.HostSeconds
	}
	return sc, nil
}

// runScale sweeps fleet size × skew under sampled-fleet execution,
// renders the table to w, and writes BENCH_scale.json when opt.Out is
// set.
func runScale(opt scaleOptions, w io.Writer) ([]scaleScenario, error) {
	opt.fill()
	start := time.Now()
	var scenarios []scaleScenario
	for _, n := range opt.Fleets {
		for _, skew := range opt.Skews {
			sc, err := runScaleCell(n, skew, opt)
			if err != nil {
				return nil, fmt.Errorf("scale %d DPUs zipf %g: %w", n, skew, err)
			}
			scenarios = append(scenarios, sc)
		}
	}
	elapsed := time.Since(start).Seconds()
	within := elapsed <= opt.WallBudgetSeconds

	fmt.Fprintf(w, "== scale: paper-scale sampled-fleet serving sweep (%d of n DPUs simulated, batch ≤ %d ops) ==\n",
		opt.Sample, opt.MaxBatch)
	fmt.Fprintln(w, hostParHeader(opt.Parallelism))
	fmt.Fprintf(w, "%6s %6s %5s %9s %9s %14s %12s %12s %12s %8s\n",
		"#DPUs", "#sim", "zipf", "keys", "ops", "modeled ops/s", "p50 ms", "p99 ms", "host ms", "host ×")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%6d %6d %5.2f %9d %9d %14.0f %12.3f %12.3f %12.3f %8.2f\n",
			sc.DPUs, sc.SimulatedDPUs, sc.ZipfS, sc.Keyspace, sc.Ops,
			sc.OpsPerSecond, sc.P50Seconds*1e3, sc.P99Seconds*1e3,
			sc.HostWallSeconds*1e3, sc.HostSpeedup)
	}
	fmt.Fprintf(w, "real wall clock: %.1fs (budget %.0fs, within budget: %v)\n",
		elapsed, opt.WallBudgetSeconds, within)

	if opt.Out != "" {
		blob, err := json.MarshalIndent(scaleReport{
			SchemaVersion:     2,
			Experiment:        "scale",
			SampleDPUs:        opt.Sample,
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			HostParallelism:   opt.Parallelism,
			WallBudgetSeconds: opt.WallBudgetSeconds,
			WithinBudget:      within,
			Scenarios:         scenarios,
		}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.Out, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s (%d scenarios)\n", opt.Out, len(scenarios))
	}
	if !within {
		if opt.StrictBudget {
			return nil, fmt.Errorf("sweep took %.1fs, over its pinned %.0fs wall-clock budget", elapsed, opt.WallBudgetSeconds)
		}
		fmt.Fprintf(w, "WARNING: sweep exceeded its pinned wall-clock budget\n")
	}
	return scenarios, nil
}
