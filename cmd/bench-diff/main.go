// Command bench-diff compares two pimstm-bench JSON artifacts cell by
// cell and prints the ops/s and p99 deltas, so a refactor's performance
// impact is read off the committed artifact history instead of eyeballed
// from two table dumps. Cells are matched on their configuration fields
// (fleet size, algorithm, scheduler, txn shape, skew, rates); measurement
// fields are never part of the match key. Artifacts with different
// schema versions refuse to diff — a v2-vs-v3 comparison would silently
// pair rows whose meanings drifted.
//
// Usage:
//
//	bench-diff [-top N] OLD.json NEW.json
//	bench-diff -require-schema N FILE.json
//
// Besides the modeled ops/s and p99 metrics, rows carrying the scale
// experiment's real host wall clock (host_wall_s, host_ops_per_s_real)
// get those deltas printed too — the simulator-throughput regression
// view.
//
// -top N prints only the N matched cells with the largest relative
// change in p99 or host wall clock (regressions and improvements
// alike), worst first — the triage view for artifacts with dozens of
// cells. The second form only checks FILE's schema_version against N
// and exits non-zero on mismatch; CI smoke targets use it to fail fast
// when a committed artifact lags a schema bump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// report is the shared top-level shape of every pimstm-bench artifact.
// Scenario rows stay generic maps so one tool diffs every experiment.
type report struct {
	SchemaVersion int              `json:"schema_version"`
	Experiment    string           `json:"experiment"`
	Scenarios     []map[string]any `json:"scenarios"`
}

// idKeys are the configuration fields (across all experiments) that
// identify a cell. Only keys present in a row contribute to its key, so
// the same list serves serve, rebalance, txnserve, scale and apps
// artifacts ("cell" is the apps matrix's pre-rendered axis identity;
// "workload" tags application rows).
var idKeys = []string{
	"cell", "workload", "dpus", "simulated_dpus", "algorithm", "scheduler",
	"policy", "txn_size", "cross_dpu_frac", "zipf_s", "read_pct", "hot_keys",
	"hot_write_frac", "rate_txns_per_s", "rate_ops_per_s", "txns", "ops",
	"keys", "max_batch", "max_delay_s", "ops_per_batch",
}

func cellKey(row map[string]any) string {
	var b strings.Builder
	for _, k := range idKeys {
		if v, ok := row[k]; ok {
			fmt.Fprintf(&b, "%s=%v ", k, v)
		}
	}
	return strings.TrimSpace(b.String())
}

func load(path string) (report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(blob, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.SchemaVersion == 0 || len(r.Scenarios) == 0 {
		return report{}, fmt.Errorf("%s: not a bench artifact (schema_version %d, %d scenarios)",
			path, r.SchemaVersion, len(r.Scenarios))
	}
	return r, nil
}

// metric pulls a float field out of a row; ok is false when absent.
func metric(row map[string]any, key string) (float64, bool) {
	v, ok := row[key].(float64)
	return v, ok
}

// deltaPct formats a relative change, guarding the zero baseline.
func deltaPct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "±0.0%"
		}
		return "new≠0"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// matchedCell is one paired row with its rendered line and the largest
// relative change across its ranked metrics — p99_s and host_wall_s —
// used by -top ranking (hasRank is false when neither metric exists on
// both sides).
type matchedCell struct {
	line    string
	rankRel float64
	hasRank bool
}

// rank folds a metric's relative change into the cell's -top key.
func (c *matchedCell) rank(old, new float64) {
	if old == 0 {
		return
	}
	if rel := (new - old) / old; !c.hasRank || math.Abs(rel) > math.Abs(c.rankRel) {
		c.rankRel = rel
		c.hasRank = true
	}
}

func diff(oldPath, newPath string, top int) error {
	oldR, err := load(oldPath)
	if err != nil {
		return err
	}
	newR, err := load(newPath)
	if err != nil {
		return err
	}
	if oldR.SchemaVersion != newR.SchemaVersion {
		return fmt.Errorf("schema mismatch: %s is v%d, %s is v%d — refusing to pair rows across schema versions",
			oldPath, oldR.SchemaVersion, newPath, newR.SchemaVersion)
	}
	if oldR.Experiment != newR.Experiment {
		return fmt.Errorf("experiment mismatch: %s is %q, %s is %q",
			oldPath, oldR.Experiment, newPath, newR.Experiment)
	}

	oldCells := make(map[string]map[string]any, len(oldR.Scenarios))
	for _, row := range oldR.Scenarios {
		oldCells[cellKey(row)] = row
	}
	fmt.Printf("%s v%d: %s → %s (%d vs %d cells)\n",
		oldR.Experiment, oldR.SchemaVersion, oldPath, newPath,
		len(oldR.Scenarios), len(newR.Scenarios))

	var unmatched []string
	var cells []matchedCell
	for _, row := range newR.Scenarios {
		key := cellKey(row)
		old, ok := oldCells[key]
		if !ok {
			unmatched = append(unmatched, key)
			continue
		}
		delete(oldCells, key)
		cell := matchedCell{line: fmt.Sprintf("  %s:", key)}
		any := false
		if no, okO := metric(old, "ops_per_s"); okO {
			if nn, okN := metric(row, "ops_per_s"); okN {
				cell.line += fmt.Sprintf(" ops/s %.0f → %.0f (%s)", no, nn, deltaPct(no, nn))
				any = true
			}
		}
		if po, okO := metric(old, "p99_s"); okO {
			if pn, okN := metric(row, "p99_s"); okN {
				cell.line += fmt.Sprintf("  p99 %.3fms → %.3fms (%s)", po*1e3, pn*1e3, deltaPct(po, pn))
				any = true
				cell.rank(po, pn)
			}
		}
		if ho, okO := metric(old, "host_wall_s"); okO {
			if hn, okN := metric(row, "host_wall_s"); okN {
				cell.line += fmt.Sprintf("  host %.1fms → %.1fms (%s)", ho*1e3, hn*1e3, deltaPct(ho, hn))
				any = true
				cell.rank(ho, hn)
			}
		}
		if ro, okO := metric(old, "host_ops_per_s_real"); okO {
			if rn, okN := metric(row, "host_ops_per_s_real"); okN {
				cell.line += fmt.Sprintf("  host ops/s %.0f → %.0f (%s)", ro, rn, deltaPct(ro, rn))
				any = true
			}
		}
		if !any {
			cell.line += " (no ops_per_s/p99_s/host_wall_s fields to compare)"
		}
		cells = append(cells, cell)
	}
	matched := len(cells)
	if top > 0 {
		// Worst regressions first — by tail latency or real host wall
		// clock, whichever moved more: the cells a perf change most
		// needs eyes on. Cells without a ranked metric on both sides
		// sort last.
		sort.SliceStable(cells, func(i, j int) bool {
			if cells[i].hasRank != cells[j].hasRank {
				return cells[i].hasRank
			}
			return math.Abs(cells[i].rankRel) > math.Abs(cells[j].rankRel)
		})
		if len(cells) > top {
			fmt.Printf("  (top %d of %d matched cells by |p99|/|host wall| change)\n", top, len(cells))
			cells = cells[:top]
		}
	}
	for _, c := range cells {
		fmt.Println(c.line)
	}
	for key := range oldCells {
		unmatched = append(unmatched, key+" (only in old)")
	}
	sort.Strings(unmatched)
	for _, key := range unmatched {
		fmt.Printf("  UNMATCHED %s\n", key)
	}
	if matched == 0 {
		return fmt.Errorf("no cells matched between %s and %s", oldPath, newPath)
	}
	if len(unmatched) > 0 {
		return fmt.Errorf("%d cells had no counterpart", len(unmatched))
	}
	return nil
}

func main() {
	requireSchema := flag.Int("require-schema", 0,
		"check that FILE's schema_version equals N and exit (no diff)")
	top := flag.Int("top", 0,
		"print only the N matched cells with the largest relative p99 or host wall-clock change (0 = all, in artifact order)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench-diff [-top N] OLD.json NEW.json\n"+
			"       bench-diff -require-schema N FILE.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *requireSchema > 0 {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		r, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-diff:", err)
			os.Exit(1)
		}
		if r.SchemaVersion != *requireSchema {
			fmt.Fprintf(os.Stderr, "bench-diff: %s: schema_version %d, want %d — regenerate the artifact\n",
				flag.Arg(0), r.SchemaVersion, *requireSchema)
			os.Exit(1)
		}
		fmt.Printf("%s: schema v%d ok (%s, %d cells)\n",
			flag.Arg(0), r.SchemaVersion, r.Experiment, len(r.Scenarios))
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := diff(flag.Arg(0), flag.Arg(1), *top); err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff:", err)
		os.Exit(1)
	}
}
