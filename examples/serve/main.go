// Open-loop serving demo: many clients submit single ops against the
// partitioned KV store through the adaptive-batching Submitter, which
// flushes at MaxBatch ops or once the oldest op has waited MaxDelay on
// the modeled clock. The traffic is a deterministic Zipf-skewed Poisson
// stream, so hot keys concentrate on their owner DPU and the transfer
// model's skew charging is visible in the latency tail.
//
//	go run ./examples/serve -dpus 8 -ops 2000 -rate 150000 -skew 1.2
//	go run ./examples/serve -dpus 8 -ops 2000 -rate 150000 -lockstep
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm/internal/core"
	"pimstm/internal/host"
)

func main() {
	var (
		dpus     = flag.Int("dpus", 8, "fleet size")
		ops      = flag.Int("ops", 2000, "operations to serve")
		rate     = flag.Float64("rate", 150000, "open-loop arrival rate (ops per modeled second)")
		reads    = flag.Int("reads", 90, "read percentage")
		keys     = flag.Int("keys", 512, "distinct keys")
		skew     = flag.Float64("skew", 1.2, "Zipf key-popularity exponent (0 = uniform)")
		batch    = flag.Int("batch", 64, "submitter MaxBatch")
		delayUS  = flag.Float64("delay-us", 300, "submitter MaxDelay (modeled µs)")
		stm      = flag.String("stm", "norec", "STM algorithm inside each DPU")
		seed     = flag.Uint64("seed", 1, "traffic seed")
		lockstep = flag.Bool("lockstep", false, "disable transfer pipelining")
	)
	flag.Parse()

	alg, err := core.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	mode := host.Pipelined
	if *lockstep {
		mode = host.Lockstep
	}
	res, err := host.Serve(host.ServeConfig{
		Map: host.PartitionedMapConfig{
			DPUs: *dpus, Tasklets: 11,
			STM: core.Config{Algorithm: alg}, Mode: mode,
		},
		Submit: host.SubmitterConfig{MaxBatch: *batch, MaxDelaySeconds: *delayUS * 1e-6},
		Traffic: host.TrafficConfig{
			Ops: *ops, Rate: *rate, ReadPct: *reads,
			Keyspace: *keys, ZipfS: *skew, Seed: *seed,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Adaptive-batching serving front-end — %d DPUs, %v inside each DPU, %v transfers\n",
		*dpus, alg, mode)
	fmt.Printf("  traffic: %d ops at %.0f ops/s open-loop, %d%% reads, zipf %.2f over %d keys\n",
		res.Ops, *rate, *reads, *skew, *keys)
	fmt.Printf("  batches: %d applied (mean %.1f ops; %d size / %d delay / %d drain flushes)\n",
		res.Batches, res.MeanBatchOps,
		res.Stats.SizeFlushes, res.Stats.DelayFlushes, res.Stats.DrainFlushes)
	fmt.Printf("  modeled throughput: %.0f ops/s over a %.3f ms makespan\n",
		res.OpsPerSecond, res.MakespanSeconds*1e3)
	fmt.Printf("  modeled latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
		res.P50*1e3, res.P95*1e3, res.P99*1e3)
	if res.Errors > 0 {
		fmt.Printf("  WARNING: %d ops errored\n", res.Errors)
	}
}
