// Labyrinth: transactional maze routing on one simulated DPU (the
// paper's port of the STAMP benchmark). Tasklets pop jobs from a shared
// queue, run the Lee wavefront on a private snapshot of the grid, and
// commit each path transactionally; conflicting paths are re-expanded.
// The routed top layer of the grid is printed as ASCII art.
//
//	go run ./examples/labyrinth
//	go run ./examples/labyrinth -stm "VR ETLWB" -paths 12
package main

import (
	"flag"
	"fmt"
	"log"

	"pimstm"
	"pimstm/internal/core"
	"pimstm/internal/dpu"
	"pimstm/internal/workloads"
)

func main() {
	var (
		stm      = flag.String("stm", "norec", "STM algorithm")
		paths    = flag.Int("paths", 10, "routing jobs")
		tasklets = flag.Int("tasklets", 6, "tasklets")
		size     = flag.Int("size", 20, "grid side (size x size x 2)")
	)
	flag.Parse()

	alg, err := pimstm.ParseAlgorithm(*stm)
	if err != nil {
		log.Fatal(err)
	}
	w := &workloads.Labyrinth{
		X: *size, Y: *size, Z: 2,
		NumPaths: *paths, Seed: 12345, ExpandCost: 8,
	}

	d := dpu.New(dpu.Config{MRAMSize: 8 << 20, Seed: 5})
	tm, err := core.New(d, core.Config{Algorithm: alg})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Setup(d); err != nil {
		log.Fatal(err)
	}
	txs := make([]*core.Tx, *tasklets)
	progs := make([]func(*dpu.Tasklet), *tasklets)
	for i := range progs {
		progs[i] = func(t *dpu.Tasklet) {
			tx := tm.NewTx(t)
			txs[t.ID] = tx
			w.Body(tx, t.ID, *tasklets)
		}
	}
	cycles, err := d.Run(progs)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(d); err != nil {
		log.Fatal("path invariants violated: ", err)
	}

	var st core.Stats
	for _, tx := range txs {
		st.Merge(tx.Stats())
	}
	fmt.Printf("Labyrinth on one DPU — %v, %d tasklets, %dx%dx2 grid\n", alg, *tasklets, *size, *size)
	fmt.Printf("  routed %d/%d paths (%d unroutable), %d commits, %.1f%% aborts, %.3f ms virtual\n\n",
		w.Routed(), *paths, w.Failed(), st.Commits, st.AbortRate()*100, d.Seconds(cycles)*1e3)

	// Draw layer z=0; each path gets a letter.
	fmt.Println("  top layer (letters = paths, '.' = free):")
	for y := 0; y < *size; y++ {
		fmt.Print("    ")
		for x := 0; x < *size; x++ {
			v := w.CellValue(d, y**size+x)
			if v == 0 {
				fmt.Print(".")
			} else {
				fmt.Print(string(rune('A' + int(v-1)%26)))
			}
		}
		fmt.Println()
	}
}
